# BRISK build and evaluation targets. Standard library only; Go ≥ 1.22.

GO ?= go

# Tolerated fractional ingest-throughput loss vs BENCH_baseline.json.
# The baseline numbers are machine-dependent, so CI loosens this knob
# (absolute throughput on shared runners is noisy) while the allocation
# and shard-scaling gates stay strict everywhere.
BENCH_MAXLOSS ?= 0.15

# COVER=1 folds a coverage profile into the `test` target (and therefore
# into `check`) instead of adding a separate test run: the same suite
# executes once, writing coverage.out for CI's summary table.
COVER ?=
ifeq ($(COVER),1)
TESTFLAGS += -coverprofile=coverage.out -covermode=atomic
endif

.PHONY: all check build vet staticcheck staticcheck-strict test test-race race bench bench-check sync-gate scenario-smoke scenario-full fuzz fuzz-smoke eval examples docs-check clean

all: build vet test test-race

# The default gate: compile, lint, docs, tests, perf regression, the
# smoke slice of the scenario matrix, and a short fuzz smoke over the
# wire decoder and the scenario-spec parser.
check: build vet staticcheck docs-check test bench-check scenario-smoke fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs when installed and is skipped (with a note) when not,
# so the gate works in minimal containers without network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# CI variant: staticcheck is mandatory — the workflow installs a pinned
# version, so "not installed" is a broken pipeline, not a soft skip.
staticcheck-strict:
	staticcheck ./...

# Documentation gate: every relative Markdown link must resolve, and all
# source must be gofmt-clean.
docs-check:
	$(GO) run ./cmd/docscheck
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test $(TESTFLAGS) ./...

# Race-detector pass over the concurrent core: the packages where
# reconnect, resume, fault injection, sharded sorting, subscription
# fan-out, rate-extrapolating clocks, and the pooled record paths hammer
# shared state.
test-race:
	$(GO) test -race ./internal/exs ./internal/ism ./internal/relay ./internal/faultnet ./internal/wire ./internal/metrics ./internal/ols ./internal/cre ./internal/record ./internal/shm ./internal/scenario ./internal/subscribe ./internal/workload ./internal/clocksync ./internal/vclock

# Full suite under the race detector (slower).
race:
	$(GO) test -race ./...

# One benchmark per paper experiment (see bench_test.go, EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Performance-regression gate: the zero-allocation contracts (exact, via
# testing.AllocsPerRun), the short ingest benchmark compared against the
# committed baseline — fails on >BENCH_MAXLOSS fractional throughput loss
# or on any real allocs-per-record growth — and the sorter-stage matrix
# over cores {calendar, heap} × shards {1, 4}: the calendar core must
# scale ≥1.5× at 4 shards and beat the heap core ≥1.3× single-shard
# (both skipped below 4 CPUs; skipped rows are announced but omitted
# from the JSON body). Writes the current numbers to BENCH_current.json
# (gitignored; CI uploads it as an artifact).
bench-check:
	$(GO) test -run 'TestAllocs' ./internal/record ./internal/ols ./internal/picl ./internal/shm ./internal/wire ./internal/clocksync
	$(GO) run ./cmd/briskbench benchgate -baseline BENCH_baseline.json -out BENCH_current.json -maxloss $(BENCH_MAXLOSS)

# Probe-efficiency gate: the model-based sync scheduler must hit the E6
# skew bounds at ≥5× fewer probe RTTs than fixed cadence on both the
# quiet and disturbed LANs (deterministic simulation; skipped below
# 4 CPUs like the sorter-scaling gate).
sync-gate:
	$(GO) run ./cmd/briskbench sync -assert-reduction 5

# The smoke slice of the declarative scenario matrix (scenarios/*.json):
# every smoke-tagged workload × topology × clock × fault cell runs against
# a real EXS↔ISM pipeline under the race detector, asserting the pipeline
# contracts (conservation, monotone emission, acked⇒emitted-or-marker)
# and writing the per-cell numbers to BENCH_scenarios.json (gitignored).
scenario-smoke:
	$(GO) run -race ./cmd/briskbench matrix -scenarios scenarios -filter smoke -out BENCH_scenarios.json

# The full matrix (nightly in CI; slow): every full-tagged cell.
scenario-full:
	$(GO) run ./cmd/briskbench matrix -scenarios scenarios -filter full -out BENCH_scenarios_full.json

# Ten-second fuzz smokes of the decoders that ingest untrusted or
# hand-edited bytes: the data-batch frame decoder (every sensor link) and
# the scenario-spec parser (every scenarios/*.json file). Quick enough to
# sit in the default gate.
fuzz-smoke:
	$(GO) test -fuzz FuzzDataBatch -fuzztime 10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz FuzzScenarioSpec -fuzztime 10s -run '^$$' ./internal/scenario/
	$(GO) test -fuzz FuzzFilterExpr -fuzztime 10s -run '^$$' ./internal/subscribe/

# Short fuzzing pass over the decoders.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/record/
	$(GO) test -fuzz FuzzRecv -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDataBatch -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzReader -fuzztime 30s ./internal/picl/
	$(GO) test -fuzz FuzzDecoder -fuzztime 30s ./internal/xdr/
	$(GO) test -fuzz FuzzScenarioSpec -fuzztime 30s ./internal/scenario/
	$(GO) test -fuzz FuzzFilterExpr -fuzztime 30s ./internal/subscribe/

# Regenerate every table of the paper's evaluation.
eval:
	$(GO) run ./cmd/briskbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distributed
	$(GO) run ./examples/causal
	$(GO) run ./examples/clocksync
	$(GO) run ./examples/profiling

clean:
	$(GO) clean ./...
