module brisk

go 1.22
