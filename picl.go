package brisk

import (
	"strings"

	"brisk/internal/picl"
)

// PICLLine renders one record as a PICL ASCII trace line (without the
// trailing newline) — the "supplied code that creates PICL strings" the
// paper provides for consumers reading the manager's memory buffer.
// Timestamps are rendered as integer microseconds of UTC.
func PICLLine(rec *Record) string {
	var sb strings.Builder
	w := picl.NewWriter(&sb, picl.TimeUTC, 0)
	if err := w.WriteRecord(rec); err != nil {
		return ""
	}
	if err := w.Flush(); err != nil {
		return ""
	}
	return strings.TrimRight(sb.String(), "\n")
}
