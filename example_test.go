package brisk_test

import (
	"fmt"
	"time"

	"brisk"
)

// Example shows the complete minimal deployment: one manager, one node,
// one instrumented goroutine and a consumer reading the sorted stream.
func Example() {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{Logf: func(string, ...any) {}})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer mgr.Close()

	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:   mgr.Addr(),
		Name:          "example",
		FlushInterval: time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	s := node.NewSensor("app")
	s.Notice6i(1, 10, 20, 30, 40, 50, 60)

	c := mgr.Consume()
	rec, ok := c.Next()
	if ok {
		fmt.Println(rec.Event, rec.Fields[1].Int(), rec.HasTS)
	}
	// Output: 1 10 true
}

// ExampleFilterEvents restricts the delivered stream to chosen event
// classes.
func ExampleFilterEvents() {
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		Filter: brisk.FilterEvents(3),
		Logf:   func(string, ...any) {},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer mgr.Close()
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:   mgr.Addr(),
		FlushInterval: time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	s := node.NewSensor("app")
	s.Notice2i(9, 1, 0) // suppressed by the filter
	s.Notice2i(3, 2, 0) // delivered

	c := mgr.Consume()
	rec, _ := c.Next()
	fmt.Println(rec.Event, rec.Fields[1].Int())
	// Output: 3 2
}

// ExamplePICLLine renders a record the way the PICL trace sink would.
func ExamplePICLLine() {
	rec := brisk.NewRecord(5, brisk.TSField(1000), brisk.I32(7), brisk.Str("phase"))
	rec.Node = 2
	fmt.Println(brisk.PICLLine(&rec))
	// Output: -4 5 1000 2 2 i32:7 str:"phase"
}
