package shm

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing(0).Cap(); got != MinRingBytes {
		t.Errorf("NewRing(0).Cap() = %d, want %d", got, MinRingBytes)
	}
	if got := NewRing(100).Cap(); got != 128 {
		t.Errorf("NewRing(100).Cap() = %d, want 128", got)
	}
	if got := NewRing(128).Cap(); got != 128 {
		t.Errorf("NewRing(128).Cap() = %d, want 128", got)
	}
}

func TestRingWriteDrain(t *testing.T) {
	r := NewRing(256)
	recs := [][]byte{[]byte("alpha"), []byte("b"), []byte("charlie3")}
	for _, rec := range recs {
		if !r.Write(rec) {
			t.Fatalf("Write(%q) failed", rec)
		}
	}
	if r.Written() != 3 || r.Dropped() != 0 {
		t.Fatalf("written/dropped = %d/%d", r.Written(), r.Dropped())
	}
	var got [][]byte
	n := r.Drain(0, func(rec []byte) {
		got = append(got, append([]byte(nil), rec...))
	})
	if n != 3 {
		t.Fatalf("Drain consumed %d, want 3", n)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.Len())
	}
}

func TestRingDrainMaxRecords(t *testing.T) {
	r := NewRing(256)
	for i := 0; i < 5; i++ {
		r.Write([]byte{byte(i)})
	}
	count := 0
	if n := r.Drain(2, func([]byte) { count++ }); n != 2 || count != 2 {
		t.Fatalf("Drain(2) = %d, emitted %d", n, count)
	}
	if n := r.Drain(0, func([]byte) { count++ }); n != 3 || count != 5 {
		t.Fatalf("second drain = %d, total %d", n, count)
	}
}

func TestRingFullDrops(t *testing.T) {
	r := NewRing(64) // exactly MinRingBytes
	rec := make([]byte, 20)
	wrote := 0
	for i := 0; i < 10; i++ {
		if r.Write(rec) {
			wrote++
		}
	}
	if wrote == 10 || r.Dropped() == 0 {
		t.Fatalf("expected drops: wrote=%d dropped=%d", wrote, r.Dropped())
	}
	if r.Written() != uint64(wrote) {
		t.Fatalf("written counter %d != %d", r.Written(), wrote)
	}
	// After draining, writes succeed again.
	r.Drain(0, func([]byte) {})
	if !r.Write(rec) {
		t.Fatal("write after drain failed")
	}
}

func TestRingEntryTooLarge(t *testing.T) {
	r := NewRing(64)
	if r.Write(make([]byte, MaxEntryBytes+1)) {
		t.Fatal("oversized write succeeded")
	}
	if r.Write(make([]byte, 80)) {
		t.Fatal("write larger than ring succeeded")
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(64)
	// Repeatedly fill and drain so head/tail wrap the buffer many times
	// and records straddle the boundary.
	rng := rand.New(rand.NewSource(7))
	var expect [][]byte
	var got [][]byte
	for i := 0; i < 500; i++ {
		rec := make([]byte, 1+rng.Intn(24))
		binary.BigEndian.PutUint32(append(rec[:0], 0, 0, 0, 0), uint32(i))
		for j := 4; j < len(rec); j++ {
			rec[j] = byte(rng.Intn(256))
		}
		if r.Write(rec) {
			expect = append(expect, append([]byte(nil), rec...))
		}
		if rng.Intn(3) == 0 {
			r.Drain(0, func(p []byte) { got = append(got, append([]byte(nil), p...)) })
		}
	}
	r.Drain(0, func(p []byte) { got = append(got, append([]byte(nil), p...)) })
	if len(got) != len(expect) {
		t.Fatalf("got %d records, want %d", len(got), len(expect))
	}
	for i := range got {
		if !bytes.Equal(got[i], expect[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRingDrainAppend(t *testing.T) {
	r := NewRing(256)
	r.Write([]byte("aaaa"))
	r.Write([]byte("bbbbbb"))
	r.Write([]byte("cc"))
	dst, n := r.DrainAppend(nil, 0)
	if n != 3 || string(dst) != "aaaabbbbbbcc" {
		t.Fatalf("DrainAppend = %q (%d records)", dst, n)
	}
}

func TestRingDrainAppendMaxBytes(t *testing.T) {
	r := NewRing(256)
	r.Write([]byte("0123456789")) // 10 bytes
	r.Write([]byte("0123456789"))
	r.Write([]byte("0123456789"))
	dst, n := r.DrainAppend(nil, 15)
	if n != 1 || len(dst) != 10 {
		t.Fatalf("first DrainAppend = %d records, %d bytes; want 1, 10", n, len(dst))
	}
	// A single record larger than maxBytes is still taken (progress).
	dst2, n2 := r.DrainAppend(nil, 5)
	if n2 != 1 || len(dst2) != 10 {
		t.Fatalf("oversized-first DrainAppend = %d records, %d bytes", n2, len(dst2))
	}
}

// TestRingSPSCConcurrent hammers the ring from one producer and one
// consumer goroutine and verifies no tearing, loss (beyond counted drops),
// or reordering.
func TestRingSPSCConcurrent(t *testing.T) {
	r := NewRing(1 << 10)
	const total = 200_000
	var wg sync.WaitGroup
	wg.Add(1)

	written := make([]uint32, 0, total)
	go func() {
		defer wg.Done()
		var rec [12]byte
		for i := uint32(0); i < total; i++ {
			binary.BigEndian.PutUint32(rec[:], i)
			binary.BigEndian.PutUint32(rec[4:], i*2654435761)
			binary.BigEndian.PutUint32(rec[8:], ^i)
			if r.Write(rec[:]) {
				written = append(written, i)
			}
		}
	}()

	var got []uint32
	dch := done(&wg)
	for {
		n := r.Drain(0, func(rec []byte) {
			if len(rec) != 12 {
				t.Errorf("torn record of %d bytes", len(rec))
				return
			}
			i := binary.BigEndian.Uint32(rec)
			if binary.BigEndian.Uint32(rec[4:]) != i*2654435761 ||
				binary.BigEndian.Uint32(rec[8:]) != ^i {
				t.Errorf("corrupt record for seq %d", i)
			}
			got = append(got, i)
		})
		if n == 0 {
			// Producer may have finished; check then spin once more.
			select {
			case <-dch:
				r.Drain(0, func(rec []byte) { got = append(got, binary.BigEndian.Uint32(rec)) })
				goto check
			default:
			}
		}
	}
check:
	if uint64(len(written)) != r.Written() {
		t.Fatalf("writer saw %d successes, ring counted %d", len(written), r.Written())
	}
	if len(got) != len(written) {
		t.Fatalf("consumer got %d records, producer wrote %d (dropped %d)",
			len(got), len(written), r.Dropped())
	}
	for i := range got {
		if got[i] != written[i] {
			t.Fatalf("order violated at %d: got %d want %d", i, got[i], written[i])
		}
	}
}

// done adapts a WaitGroup to a select-able channel.
func done(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

func TestRegion(t *testing.T) {
	g := NewRegion()
	r1 := g.Attach("app1", 128)
	r2 := g.Attach("app2", 128)
	r1.Write([]byte("x"))
	r1.Write([]byte("y"))
	r2.Write([]byte("z"))
	rings := g.Rings()
	if len(rings) != 2 {
		t.Fatalf("Rings() returned %d", len(rings))
	}
	w, d := g.Stats()
	if w != 3 || d != 0 {
		t.Fatalf("Stats = %d, %d", w, d)
	}
	if g.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkRingWrite(b *testing.B) {
	r := NewRing(1 << 16)
	rec := make([]byte, 40) // the paper's record size
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Write(rec) {
			r.Drain(0, func([]byte) {})
		}
	}
}

func BenchmarkRingWriteDrainPaired(b *testing.B) {
	r := NewRing(1 << 16)
	rec := make([]byte, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Write(rec)
		if i%512 == 511 {
			r.Drain(0, func([]byte) {})
		}
	}
}
