package shm

import (
	"sync"
)

// Buffer is the manager's default output: a bounded, single-writer record
// buffer that multiple consumer tools read concurrently, each through its
// own Cursor. The writer never blocks; when a slow reader is lapped, its
// next read reports ErrOverrun together with how many records it lost,
// reproducing the ISM's event-dropping behaviour for slow consumers.
type Buffer struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots [][]byte // record payloads, recycled in place
	seq   uint64   // total records ever written
	cap   uint64
	done  bool
}

// NewBuffer returns a buffer that retains the last capacity records.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	b := &Buffer{slots: make([][]byte, capacity), cap: uint64(capacity)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Publish appends one record, overwriting the oldest if full. The record
// bytes are copied.
func (b *Buffer) Publish(rec []byte) {
	b.mu.Lock()
	slot := b.seq % b.cap
	b.slots[slot] = append(b.slots[slot][:0], rec...)
	b.seq++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// PublishBatch appends a run of records under a single lock acquisition
// and a single reader wakeup — the manager's batched sink delivery. Each
// record is copied into a recycled slot, as with Publish.
func (b *Buffer) PublishBatch(recs [][]byte) {
	if len(recs) == 0 {
		return
	}
	b.mu.Lock()
	for _, rec := range recs {
		slot := b.seq % b.cap
		b.slots[slot] = append(b.slots[slot][:0], rec...)
		b.seq++
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Close marks the stream finished; blocked readers wake and see EOF after
// draining.
func (b *Buffer) Close() {
	b.mu.Lock()
	b.done = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Written returns the total number of records published.
func (b *Buffer) Written() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Cursor is one consumer's read position in a Buffer.
type Cursor struct {
	b   *Buffer
	pos uint64
}

// NewCursor returns a cursor positioned at the oldest retained record.
func (b *Buffer) NewCursor() *Cursor {
	b.mu.Lock()
	defer b.mu.Unlock()
	pos := uint64(0)
	if b.seq > b.cap {
		pos = b.seq - b.cap
	}
	return &Cursor{b: b, pos: pos}
}

// Next returns the next record, blocking until one is available or the
// buffer is closed. On EOF it returns (nil, 0, false). If the consumer was
// lapped, lost reports how many records were skipped; the read still
// succeeds with the oldest retained record.
func (c *Cursor) Next() (rec []byte, lost uint64, ok bool) {
	b := c.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for c.pos == b.seq && !b.done {
		b.cond.Wait()
	}
	if c.pos == b.seq {
		return nil, 0, false
	}
	if b.seq-c.pos > b.cap {
		lost = b.seq - b.cap - c.pos
		c.pos = b.seq - b.cap
	}
	out := append([]byte(nil), b.slots[c.pos%b.cap]...)
	c.pos++
	return out, lost, true
}

// TryNext is the non-blocking variant of Next. ok is false when no record
// is currently available (which does not imply EOF).
func (c *Cursor) TryNext() (rec []byte, lost uint64, ok bool) {
	b := c.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if c.pos == b.seq {
		return nil, 0, false
	}
	if b.seq-c.pos > b.cap {
		lost = b.seq - b.cap - c.pos
		c.pos = b.seq - b.cap
	}
	out := append([]byte(nil), b.slots[c.pos%b.cap]...)
	c.pos++
	return out, lost, true
}
