package shm

import "testing"

// TestAllocsPublishBatch pins the memory-buffer sink's batched delivery:
// once the ring's slots have grown to the record size, publishing a batch
// copies into recycled slot storage and allocates nothing.
func TestAllocsPublishBatch(t *testing.T) {
	b := NewBuffer(1024)
	recs := make([][]byte, 64)
	for i := range recs {
		recs[i] = make([]byte, 48)
	}
	// Warm every slot once so each has capacity for the record size.
	for i := 0; i < 1024/len(recs)+1; i++ {
		b.PublishBatch(recs)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b.PublishBatch(recs)
	})
	if allocs != 0 {
		t.Fatalf("PublishBatch allocates %.1f times per batch, want 0", allocs)
	}
}
