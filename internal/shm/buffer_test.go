package shm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBufferBasicPublishRead(t *testing.T) {
	b := NewBuffer(8)
	c := b.NewCursor()
	b.Publish([]byte("one"))
	b.Publish([]byte("two"))

	rec, lost, ok := c.Next()
	if !ok || lost != 0 || string(rec) != "one" {
		t.Fatalf("first = %q lost=%d ok=%v", rec, lost, ok)
	}
	rec, _, ok = c.Next()
	if !ok || string(rec) != "two" {
		t.Fatalf("second = %q", rec)
	}
	if _, _, ok := c.TryNext(); ok {
		t.Fatal("TryNext on empty buffer returned ok")
	}
	if b.Written() != 2 {
		t.Fatalf("Written = %d", b.Written())
	}
}

func TestBufferOverrun(t *testing.T) {
	b := NewBuffer(4)
	c := b.NewCursor()
	for i := 0; i < 10; i++ {
		b.Publish([]byte{byte(i)})
	}
	rec, lost, ok := c.Next()
	if !ok || lost != 6 || rec[0] != 6 {
		t.Fatalf("after overrun: rec=%v lost=%d ok=%v; want rec=6 lost=6", rec, lost, ok)
	}
	// Subsequent reads are contiguous.
	for want := byte(7); want < 10; want++ {
		rec, lost, ok = c.Next()
		if !ok || lost != 0 || rec[0] != want {
			t.Fatalf("rec=%v lost=%d ok=%v want=%d", rec, lost, ok, want)
		}
	}
}

func TestBufferCursorStartsAtOldestRetained(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Publish([]byte{byte(i)})
	}
	c := b.NewCursor()
	rec, lost, ok := c.Next()
	if !ok || lost != 0 || rec[0] != 2 {
		t.Fatalf("late cursor first read = %v lost=%d", rec, lost)
	}
}

func TestBufferCloseWakesReaders(t *testing.T) {
	b := NewBuffer(4)
	c := b.NewCursor()
	doneCh := make(chan bool)
	go func() {
		_, _, ok := c.Next()
		doneCh <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case ok := <-doneCh:
		if ok {
			t.Fatal("Next returned ok after Close with no data")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not woken by Close")
	}
}

func TestBufferDrainAfterClose(t *testing.T) {
	b := NewBuffer(4)
	b.Publish([]byte("a"))
	b.Close()
	c := b.NewCursor()
	if rec, _, ok := c.Next(); !ok || string(rec) != "a" {
		t.Fatalf("drain after close: %q %v", rec, ok)
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("EOF not reported after drain")
	}
}

func TestBufferMultipleReaders(t *testing.T) {
	b := NewBuffer(1024)
	const n = 500
	const readers = 4
	var wg sync.WaitGroup
	results := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		c := b.NewCursor()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				rec, lost, ok := c.Next()
				if lost != 0 {
					t.Errorf("reader %d lost %d", i, lost)
				}
				if !ok {
					return
				}
				results[i] = append(results[i], rec[0])
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		b.Publish([]byte{byte(i % 251)})
	}
	b.Close()
	wg.Wait()
	for i := 0; i < readers; i++ {
		if len(results[i]) != n {
			t.Fatalf("reader %d saw %d records, want %d", i, len(results[i]), n)
		}
		for j := range results[i] {
			if results[i][j] != byte(j%251) {
				t.Fatalf("reader %d record %d = %d", i, j, results[i][j])
			}
		}
	}
}

func TestBufferMinimumCapacity(t *testing.T) {
	b := NewBuffer(0)
	b.Publish([]byte("only"))
	c := b.NewCursor()
	rec, _, ok := c.Next()
	if !ok || string(rec) != "only" {
		t.Fatalf("cap-0 buffer: %q %v", rec, ok)
	}
}

func ExampleBuffer() {
	b := NewBuffer(16)
	c := b.NewCursor()
	b.Publish([]byte("evt"))
	b.Close()
	for {
		rec, _, ok := c.Next()
		if !ok {
			break
		}
		fmt.Println(string(rec))
	}
	// Output: evt
}
