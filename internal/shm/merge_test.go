package shm

import (
	"bytes"
	"math"
	"testing"

	"brisk/internal/record"
)

func encTS(t *testing.T, event uint8, ts int64) []byte {
	t.Helper()
	rec := record.New(event, record.TSVal(ts), record.I32Val(7))
	b, err := rec.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHeadTSPeeksWithoutConsuming(t *testing.T) {
	r := NewRing(1 << 10)
	if _, ok := r.HeadTS(); ok {
		t.Fatal("HeadTS on empty ring reported ok")
	}
	r.Write(encTS(t, 1, 1000))
	r.Write(encTS(t, 1, 2000))
	for i := 0; i < 3; i++ {
		ts, ok := r.HeadTS()
		if !ok || ts != 1000 {
			t.Fatalf("HeadTS = (%d, %v), want (1000, true)", ts, ok)
		}
	}
	if r.Len() == 0 {
		t.Fatal("HeadTS consumed the record")
	}
}

func TestDrainOneConsumesInOrder(t *testing.T) {
	r := NewRing(1 << 10)
	want := [][]byte{encTS(t, 1, 10), encTS(t, 2, 20), encTS(t, 3, 30)}
	for _, rec := range want {
		if !r.Write(rec) {
			t.Fatal("write refused")
		}
	}
	var dst []byte
	for i, w := range want {
		start := len(dst)
		var ok bool
		dst, ok = r.DrainOne(dst)
		if !ok {
			t.Fatalf("DrainOne #%d reported empty", i)
		}
		if !bytes.Equal(dst[start:], w) {
			t.Fatalf("DrainOne #%d bytes mismatch", i)
		}
	}
	if _, ok := r.DrainOne(dst); ok {
		t.Fatal("DrainOne on empty ring reported a record")
	}
}

// TestHeadTSAcrossWraparound forces the head record to straddle the ring
// boundary, exercising the copy-out slow path of HeadTS.
func TestHeadTSAcrossWraparound(t *testing.T) {
	rec := encTS(t, 1, 0)
	step := len(rec) + 4
	r := NewRing(MinRingBytes)
	// Advance head/tail until a record wraps the physical end of the buffer.
	wrapped := false
	for i := int64(1); i < 200 && !wrapped; i++ {
		w := encTS(t, 1, i*100)
		if !r.Write(w) {
			t.Fatal("write refused")
		}
		pos := (int(r.head.Load()) + 4) % r.Cap()
		if pos+len(w) > r.Cap() {
			wrapped = true
			ts, ok := r.HeadTS()
			if !ok || ts != i*100 {
				t.Fatalf("wrapped HeadTS = (%d, %v), want (%d, true)", ts, ok, i*100)
			}
		}
		var ok bool
		if _, ok = r.DrainOne(nil); !ok {
			t.Fatal("DrainOne reported empty after write")
		}
	}
	if !wrapped {
		t.Fatalf("no wraparound hit in 200 steps (cap=%d step=%d)", r.Cap(), step)
	}
}

func TestHeadTSTimestamplessRecord(t *testing.T) {
	r := NewRing(1 << 10)
	rec := record.New(9, record.I32Val(1), record.I32Val(2))
	b, err := rec.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Write(b)
	ts, ok := r.HeadTS()
	if !ok || ts != math.MinInt64 {
		t.Fatalf("HeadTS = (%d, %v), want (MinInt64, true)", ts, ok)
	}
}
