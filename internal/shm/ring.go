// Package shm provides BRISK's "shared memory" substrate.
//
// In the paper, internal sensors are cpp macros that write instrumentation
// data records into a ring buffer in shared memory; the external sensor is
// a separate process on the same node that reads the ring. This Go
// reproduction keeps the same data path — application thread writes a
// pre-encoded record into a ring, the external sensor drains it — using a
// lock-free single-producer/single-consumer byte ring per sensor and a
// Region that groups all rings on one node.
//
// The package also provides Buffer, the manager's default output: a
// single-writer memory buffer that any number of consumer tools read at
// their own pace through cursors, with overrun detection (the paper's
// "event dropping" when a consumer cannot keep up).
package shm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"brisk/internal/record"
)

// Ring buffer geometry limits.
const (
	// MinRingBytes is the smallest permitted ring capacity.
	MinRingBytes = 64
	// MaxEntryBytes is the largest single record a ring accepts. Larger
	// writes fail immediately rather than deadlocking the producer.
	MaxEntryBytes = 1 << 15
)

var (
	// ErrEntryTooLarge reports a record bigger than MaxEntryBytes or the
	// ring itself.
	ErrEntryTooLarge = errors.New("shm: entry too large for ring")
	// ErrOverrun reports that a Buffer reader was lapped by the writer
	// and lost records.
	ErrOverrun = errors.New("shm: reader overrun, records dropped")
)

// pad keeps hot atomics on separate cache lines to avoid false sharing
// between the producer and consumer cores.
type pad [56]byte

// Ring is a lock-free single-producer/single-consumer ring buffer of
// length-prefixed byte records. The producer (an internal sensor) calls
// Write; the consumer (the external sensor) calls Drain or DrainAppend.
// When the ring is full the write is dropped and counted, mirroring the
// paper's bounded-intrusion design: the application never blocks on the
// instrumentation system.
type Ring struct {
	buf  []byte
	mask uint64

	_    pad
	head atomic.Uint64 // next byte to read; owned by the consumer
	_    pad
	tail atomic.Uint64 // next byte to write; owned by the producer
	_    pad

	dropped atomic.Uint64
	written atomic.Uint64
}

// NewRing returns a ring with the given capacity in bytes, rounded up to a
// power of two and at least MinRingBytes.
func NewRing(capacity int) *Ring {
	c := MinRingBytes
	for c < capacity {
		c <<= 1
	}
	return &Ring{buf: make([]byte, c), mask: uint64(c - 1)}
}

// Cap returns the ring capacity in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns the number of records dropped because the ring was full.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// Written returns the number of records successfully written.
func (r *Ring) Written() uint64 { return r.written.Load() }

// used returns the number of occupied bytes as seen by the producer.
func (r *Ring) used() uint64 { return r.tail.Load() - r.head.Load() }

// Write copies one record into the ring. It returns false and counts a
// drop if the ring lacks space. Only one goroutine may call Write.
func (r *Ring) Write(rec []byte) bool {
	need := uint64(4 + len(rec))
	if len(rec) > MaxEntryBytes || need > uint64(len(r.buf)) {
		r.dropped.Add(1)
		return false
	}
	tail := r.tail.Load()
	if uint64(len(r.buf))-(tail-r.head.Load()) < need {
		r.dropped.Add(1)
		return false
	}
	r.putUint32(tail, uint32(len(rec)))
	r.copyIn(tail+4, rec)
	r.tail.Store(tail + need) // release: publishes the record bytes
	r.written.Add(1)
	return true
}

// putUint32 writes a big-endian length prefix at pos, handling wraparound.
func (r *Ring) putUint32(pos uint64, v uint32) {
	i := pos & r.mask
	if i+4 <= uint64(len(r.buf)) {
		r.buf[i] = byte(v >> 24)
		r.buf[i+1] = byte(v >> 16)
		r.buf[i+2] = byte(v >> 8)
		r.buf[i+3] = byte(v)
		return
	}
	var tmp [4]byte
	tmp[0] = byte(v >> 24)
	tmp[1] = byte(v >> 16)
	tmp[2] = byte(v >> 8)
	tmp[3] = byte(v)
	r.copyIn(pos, tmp[:])
}

func (r *Ring) getUint32(pos uint64) uint32 {
	i := pos & r.mask
	if i+4 <= uint64(len(r.buf)) {
		return uint32(r.buf[i])<<24 | uint32(r.buf[i+1])<<16 |
			uint32(r.buf[i+2])<<8 | uint32(r.buf[i+3])
	}
	var tmp [4]byte
	r.copyOut(pos, tmp[:])
	return uint32(tmp[0])<<24 | uint32(tmp[1])<<16 | uint32(tmp[2])<<8 | uint32(tmp[3])
}

func (r *Ring) copyIn(pos uint64, p []byte) {
	i := pos & r.mask
	n := copy(r.buf[i:], p)
	if n < len(p) {
		copy(r.buf, p[n:])
	}
}

func (r *Ring) copyOut(pos uint64, p []byte) {
	i := pos & r.mask
	n := copy(p, r.buf[i:])
	if n < len(p) {
		copy(p[n:], r.buf[:len(p)-n])
	}
}

// Drain consumes up to maxRecords records (0 means no limit), invoking
// emit for each. The slice passed to emit is only valid during the call.
// Only one goroutine may call Drain/DrainAppend. It returns the number of
// records consumed.
func (r *Ring) Drain(maxRecords int, emit func(rec []byte)) int {
	head := r.head.Load()
	tail := r.tail.Load() // acquire: record bytes below tail are published
	n := 0
	scratch := drainScratch.Get().(*[]byte)
	defer drainScratch.Put(scratch)
	for head < tail {
		if maxRecords > 0 && n >= maxRecords {
			break
		}
		size := uint64(r.getUint32(head))
		if cap(*scratch) < int(size) {
			*scratch = make([]byte, size)
		}
		rec := (*scratch)[:size]
		r.copyOut(head+4, rec)
		head += 4 + size
		r.head.Store(head) // free space before emit so producers progress
		emit(rec)
		n++
	}
	return n
}

var drainScratch = sync.Pool{New: func() any { return new([]byte) }}

// DrainAppend consumes records, appending their raw bytes to dst until the
// appended payload would exceed maxBytes (0 means no limit) or the ring is
// empty. Records are self-framing (BRISK record headers carry a length),
// so concatenation preserves boundaries. It returns the extended slice and
// the number of records consumed.
func (r *Ring) DrainAppend(dst []byte, maxBytes int) ([]byte, int) {
	head := r.head.Load()
	tail := r.tail.Load()
	start := len(dst)
	n := 0
	for head < tail {
		size := uint64(r.getUint32(head))
		if maxBytes > 0 && len(dst)-start+int(size) > maxBytes && n > 0 {
			break
		}
		off := len(dst)
		dst = append(dst, make([]byte, size)...)
		r.copyOut(head+4, dst[off:])
		head += 4 + size
		n++
	}
	r.head.Store(head)
	return dst, n
}

// HeadTS peeks the timestamp of the oldest record without consuming it.
// ok is false when the ring is empty. A head record with no parseable
// timestamp reports math.MinInt64 so a timestamp-ordered merge across
// rings drains it immediately rather than stalling behind it. Only the
// drain goroutine may call it.
func (r *Ring) HeadTS() (ts int64, ok bool) {
	head := r.head.Load()
	tail := r.tail.Load() // acquire: record bytes below tail are published
	if head >= tail {
		return 0, false
	}
	size := uint64(r.getUint32(head))
	i := (head + 4) & r.mask
	if i+size <= uint64(len(r.buf)) {
		// Contiguous: peek in place, no copy.
		if ts, _, hasTS := record.PeekTS(r.buf[i : i+size]); hasTS {
			return ts, true
		}
		return math.MinInt64, true
	}
	scratch := drainScratch.Get().(*[]byte)
	defer drainScratch.Put(scratch)
	if cap(*scratch) < int(size) {
		*scratch = make([]byte, size)
	}
	rec := (*scratch)[:size]
	r.copyOut(head+4, rec)
	if ts, _, hasTS := record.PeekTS(rec); hasTS {
		return ts, true
	}
	return math.MinInt64, true
}

// DrainOne consumes exactly the oldest record, appending its bytes to
// dst. It returns the extended slice and false when the ring is empty.
// Together with HeadTS it lets a consumer merge several rings in
// timestamp order. Only one goroutine may call Drain/DrainAppend/DrainOne.
func (r *Ring) DrainOne(dst []byte) ([]byte, bool) {
	head := r.head.Load()
	tail := r.tail.Load()
	if head >= tail {
		return dst, false
	}
	size := uint64(r.getUint32(head))
	off := len(dst)
	dst = append(dst, make([]byte, size)...)
	r.copyOut(head+4, dst[off:])
	r.head.Store(head + 4 + size)
	return dst, true
}

// Len returns the approximate number of unread bytes.
func (r *Ring) Len() int { return int(r.used()) }

// Region groups the sensor rings of one node, the structure the external
// sensor scans. Sensors attach rings as they start; the external sensor
// snapshots the ring list per drain pass.
type Region struct {
	mu    sync.RWMutex
	rings []*Ring
	names []string
}

// NewRegion returns an empty region.
func NewRegion() *Region { return &Region{} }

// Attach creates a ring of the given byte capacity for a named sensor and
// returns it.
func (g *Region) Attach(name string, capacity int) *Ring {
	r := NewRing(capacity)
	g.mu.Lock()
	g.rings = append(g.rings, r)
	g.names = append(g.names, name)
	g.mu.Unlock()
	return r
}

// Rings returns a snapshot of the attached rings.
func (g *Region) Rings() []*Ring {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Ring, len(g.rings))
	copy(out, g.rings)
	return out
}

// Stats summarizes all rings: total records written and dropped.
func (g *Region) Stats() (written, dropped uint64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.rings {
		written += r.Written()
		dropped += r.Dropped()
	}
	return written, dropped
}

// String describes the region for diagnostics.
func (g *Region) String() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return fmt.Sprintf("shm.Region{%d rings}", len(g.rings))
}
