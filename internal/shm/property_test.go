package shm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyRingMatchesModelQueue drives the ring with a random
// interleaving of writes and drains and checks it behaves exactly like a
// FIFO queue with drop-when-full semantics.
func TestPropertyRingMatchesModelQueue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRing(1 << (6 + rng.Intn(5))) // 64..1024 bytes
		var model [][]byte                   // what the ring should hold
		var wrote, dropped uint64
		used := 0

		for op := 0; op < 400; op++ {
			if rng.Intn(3) != 0 {
				// Write a random record.
				n := 1 + rng.Intn(40)
				rec := make([]byte, n)
				rng.Read(rec)
				ok := r.Write(rec)
				fits := used+4+n <= r.Cap()
				if ok != fits {
					t.Errorf("write accept mismatch: ok=%v fits=%v (used %d, n %d, cap %d)",
						ok, fits, used, n, r.Cap())
					return false
				}
				if ok {
					model = append(model, rec)
					used += 4 + n
					wrote++
				} else {
					dropped++
				}
			} else {
				// Drain a random number of records.
				max := rng.Intn(5)
				var got [][]byte
				r.Drain(max, func(p []byte) {
					got = append(got, append([]byte(nil), p...))
				})
				if max > 0 && len(got) > max {
					t.Errorf("drained %d > max %d", len(got), max)
					return false
				}
				for _, g := range got {
					if len(model) == 0 {
						t.Error("drained more than written")
						return false
					}
					if !bytes.Equal(g, model[0]) {
						t.Errorf("FIFO order broken")
						return false
					}
					used -= 4 + len(model[0])
					model = model[1:]
				}
			}
		}
		return r.Written() == wrote && r.Dropped() == dropped && r.Len() == used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBufferEveryReaderSeesSuffix: however records are published,
// any cursor's reads are a contiguous suffix-aligned subsequence of the
// published stream, and Lost accounting is exact.
func TestPropertyBufferEveryReaderSeesSuffix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capr := 1 + rng.Intn(16)
		b := NewBuffer(capr)
		cur := b.NewCursor()
		published := 0
		readIdx := 0 // index of the next record this cursor should logically see
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 {
				b.Publish([]byte{byte(published >> 8), byte(published)})
				published++
			} else {
				rec, lost, ok := cur.TryNext()
				if !ok {
					if readIdx != published {
						t.Error("TryNext empty while records pending")
						return false
					}
					continue
				}
				readIdx += int(lost)
				got := int(rec[0])<<8 | int(rec[1])
				if got != readIdx {
					t.Errorf("read %d, want %d (lost %d)", got, readIdx, lost)
					return false
				}
				readIdx++
				// Loss only happens when the writer lapped the reader.
				if lost > 0 && published-int(lost)-readIdx+1 > capr {
					t.Error("lost accounting inconsistent")
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
