package ism

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
)

// TestCreditDisabledByDefault pins backward compatibility: without a
// sorter bound the manager runs without flow control, its acks carry a
// zero window, and the sensor reports credit as disabled.
func TestCreditDisabledByDefault(t *testing.T) {
	m := newManager(t, Config{})
	e, region := newNode(t, m, "n1", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 50; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	drainCursor(t, m, 50, 10*time.Second)
	waitUntil(t, 5*time.Second, "queue acked", func() bool {
		return e.Stats().QueuedBytes == 0
	})
	if st := e.Stats(); st.CreditWindow != -1 || st.CreditStalls != 0 {
		t.Fatalf("flow control engaged without a bound: %+v", st)
	}
	if st := m.Stats(); st.AckDeferred != 0 || st.CreditGateClosed {
		t.Fatalf("ack gate engaged without a bound: deferred=%d closed=%v",
			st.AckDeferred, st.CreditGateClosed)
	}
}

// TestCreditWindowGranted pins that a flow-controlled manager's acks
// carry a nonzero window, visible at the sensor.
func TestCreditWindowGranted(t *testing.T) {
	m := newManager(t, Config{
		Sorter: ols.Config{InitialT: 1000, MaxBuffered: 10_000},
	})
	e, region := newNode(t, m, "n1", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 50; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	drainCursor(t, m, 50, 10*time.Second)
	waitUntil(t, 5*time.Second, "credit grant arrived", func() bool {
		return e.Stats().CreditWindow > 0
	})
}

// TestAckGateClosesUnderBacklog is the deterministic gate test: with a
// bounded sorter whose records never age out (huge T, no decay), a
// sustained stream must close the ack gate at the high watermark, defer
// acknowledgements, stall the sensor's credit, and hold sorter occupancy
// at most MaxBuffered — instead of acking everything and dropping the
// overflow on the floor.
func TestAckGateClosesUnderBacklog(t *testing.T) {
	const maxBuffered = 100
	m := newManager(t, Config{
		Sorter: ols.Config{InitialT: 60_000_000, MaxBuffered: maxBuffered},
	})
	region := shm.NewRegion()
	// Tiny batches keep the always-send-one-batch allowance well inside
	// the gap between the high watermark (75) and the hard bound.
	e, err := exs.Dial(exs.Config{
		ManagerAddr:   m.Addr(),
		NodeName:      "backlog",
		Region:        region,
		BatchBytes:    256,
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		Logf:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	s := sensor.New(region, "app", sensor.Options{})

	// Offer far more than the sorter may hold. The sensor keeps draining
	// the ring into its spill queue while stalled, so production never
	// wedges; the credit gate is the only thing throttling admission.
	for i := 0; i < 10*maxBuffered; i++ {
		for !s.Notice2i(1, int32(i), 0) {
			time.Sleep(20 * time.Microsecond)
		}
	}

	waitUntil(t, 15*time.Second, "ack gate closed", func() bool {
		st := m.Stats()
		return st.CreditGateClosed && st.AckDeferred > 0
	})
	waitUntil(t, 15*time.Second, "sensor stalled on credit", func() bool {
		return e.Stats().CreditStalls > 0
	})
	if got := m.Stats().SorterBuffered; got > maxBuffered {
		t.Fatalf("sorter holds %d records, bound is %d", got, maxBuffered)
	}
	// Nothing ages out, so nothing may have been emitted or dropped: the
	// gate alone must be holding the line.
	if st := m.Stats(); st.Sorter.DroppedFull != 0 {
		t.Fatalf("sorter dropped %d records despite the ack gate", st.Sorter.DroppedFull)
	}
}

// TestOverloadSoakNoSilentLoss is the overload acceptance soak: four
// sessions push a sustained backlog through flapping faultnet links into
// a manager whose sorter is bounded far below the offered load. The run
// must end with every produced record accounted for — emitted exactly
// once, or covered by a loss-marker record in the merged stream — with
// sorter occupancy never exceeding MaxBuffered and the ack gate observed
// doing its job. Run under -race via `make test-race`.
func TestOverloadSoakNoSilentLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		sessions    = 4
		perNode     = 2500
		flapEvery   = 700 // records between link cuts, per flapping node
		maxBuffered = 2000
	)
	m := newManager(t, Config{
		BufferRecords: sessions * perNode * 2,
		// Records age out only after 150 ms: the sorter is a bottleneck
		// holding a deep standing backlog, so the gate cycles open/closed
		// for the whole run.
		Sorter: ols.Config{InitialT: 150_000, MaxBuffered: maxBuffered},
	})

	type node struct {
		e     *exs.EXS
		s     *sensor.Sensor
		proxy *faultnet.Proxy
	}
	nodes := make([]*node, sessions)
	for i := range nodes {
		proxy, err := faultnet.Listen(m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		region := shm.NewRegion()
		e, err := exs.Dial(exs.Config{
			ManagerAddr: proxy.Addr(),
			NodeName:    fmt.Sprintf("overload-%d", i),
			Region:      region,
			// A small batch and spill bound make overload bite: flap
			// outages overflow the spill queue, and the evictions must
			// surface as loss markers rather than vanish.
			BatchBytes:           1024,
			SpillBytes:           16 << 10,
			FlushInterval:        time.Millisecond,
			PollInterval:         200 * time.Microsecond,
			ReconnectBase:        2 * time.Millisecond,
			ReconnectMax:         10 * time.Millisecond,
			MaxReconnectAttempts: -1,
			Logf:                 quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		nodes[i] = &node{e: e, s: sensor.New(region, "app", sensor.Options{}), proxy: proxy}
	}

	// Watch the sorter bound for the whole run.
	var maxSeen atomic.Int64
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-tick.C:
				if b := int64(m.Stats().SorterBuffered); b > maxSeen.Load() {
					maxSeen.Store(b)
				}
			}
		}
	}()

	// All sessions produce flat out (retrying ring-full rejections, so
	// the produced total is exact); odd nodes flap their links mid-run.
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			for seq := int32(0); seq < perNode; seq++ {
				if i%2 == 1 && seq > 0 && seq%flapEvery == 0 {
					n.proxy.CutNow()
				}
				for !n.s.Notice2i(1, seq, int32(i)) {
					time.Sleep(5 * time.Microsecond)
				}
			}
			n.e.Flush()
		}(i, n)
	}
	wg.Wait()

	// Let every sensor drain what it still holds, then close them so the
	// final batches — including any marker-only batch covering tail
	// drops — are shipped and acknowledged.
	for i, n := range nodes {
		waitUntil(t, 60*time.Second, fmt.Sprintf("node %d drained", i), func() bool {
			st := n.e.Stats()
			return st.Online && st.QueuedBytes == 0
		})
	}
	for _, n := range nodes {
		if err := n.e.Close(); err != nil {
			t.Fatalf("exs close: %v", err)
		}
	}

	// Drain the merged stream until every produced record is accounted
	// for: as a data record (exactly once) or inside a loss marker.
	const total = sessions * perNode
	type ident struct{ writer, seq int32 }
	seen := make(map[ident]int)
	var markerCovered uint64
	var markers int
	cur := m.NewCursor()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			t.Fatalf("consumer lost %d records", lost)
		}
		if !ok {
			var refused uint64
			for _, n := range nodes {
				refused += n.e.Stats().RingDropped
			}
			if uint64(len(seen))+markerCovered >= total+refused {
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		rec, err := DecodeBuffered(raw)
		if err != nil {
			t.Fatalf("DecodeBuffered: %v", err)
		}
		if record.IsLossMarker(&rec) {
			n, first, last, _ := record.LossInfo(&rec)
			if first > last {
				t.Fatalf("loss marker range inverted: [%d, %d]", first, last)
			}
			markerCovered += n
			markers++
			continue
		}
		id := ident{writer: int32(rec.Fields[2].Int()), seq: int32(rec.Fields[1].Int())}
		if seen[id]++; seen[id] > 1 {
			t.Fatalf("record %+v emitted %d times", id, seen[id])
		}
	}
	close(stopSampling)
	samplerWG.Wait()

	emitted := len(seen)
	// Every refused Notice attempt is counted by the ring as a drop and is
	// therefore marker-covered too (the successful retry is a distinct
	// notice), so the no-silent-loss bound must hold over produced records
	// AND refused attempts together. Marker coverage may legitimately
	// exceed that floor — a sent-but-unacknowledged batch evicted during an
	// outage is conservatively marked even though the manager may have
	// delivered it — but it must never fall below it.
	var ringRefused uint64
	for _, n := range nodes {
		ringRefused += n.e.Stats().RingDropped
	}
	accounted := uint64(emitted) + markerCovered
	if accounted < total+ringRefused {
		t.Fatalf("silent loss: %d produced + %d refused attempts, but %d emitted + %d marker-covered = %d accounted",
			total, ringRefused, emitted, markerCovered, accounted)
	}
	if emitted > total {
		t.Fatalf("emitted %d distinct records from %d produced", emitted, total)
	}
	// Loss markers are exempt from the sorter bound by design (dropping
	// one would erase the testimony of a loss), so occupancy may exceed
	// MaxBuffered by at most the markers that passed through.
	if got := maxSeen.Load(); got > int64(maxBuffered+markers) {
		t.Fatalf("sorter occupancy reached %d, bound is %d (+%d markers in flight)",
			got, maxBuffered, markers)
	}

	st := m.Stats()
	var stalls, exsMarkers uint64
	for _, n := range nodes {
		es := n.e.Stats()
		stalls += es.CreditStalls
		exsMarkers += es.LossMarkers
	}
	if st.AckDeferred == 0 {
		t.Fatal("overload never deferred an ack — the gate did not engage")
	}
	if stalls == 0 {
		t.Fatal("no sensor ever stalled on credit — the overload did not bite")
	}
	if st.ResumedSessions == 0 {
		t.Fatal("no session ever resumed — the flaps did not bite")
	}
	t.Logf("soak: %d/%d emitted, %d records covered by %d markers (%d shipped by sensors), "+
		"%d acks deferred, %d stalls, %d resumes, sorter peak %d/%d",
		emitted, total, markerCovered, markers, exsMarkers,
		st.AckDeferred, stalls, st.ResumedSessions, maxSeen.Load(), maxBuffered)
}
