package ism

import (
	"net"
	"testing"

	"brisk/internal/clocksync"
	"brisk/internal/wire"
)

// TestHelloVersionNegotiation covers the manager's side of the v3/v4
// protocol negotiation: a v3 peer is accepted and spoken to in v3 frames
// (no version echo in the ack), a current peer gets the negotiated
// version echoed, and out-of-range versions are refused at the handshake
// instead of aborting later mid-stream.
func TestHelloVersionNegotiation(t *testing.T) {
	m := newManager(t, Config{})

	dial := func(version uint32, name string) (*wire.Conn, func()) {
		t.Helper()
		raw, err := net.Dial("tcp", m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wc := wire.NewConn(raw)
		// A real old binary's codec has no v4 fields at all; pinning the
		// test conn to the claimed version models that.
		wc.SetVersion(version)
		if err := wc.Send(&wire.Hello{Version: version, Name: name}); err != nil {
			t.Fatal(err)
		}
		return wc, func() { raw.Close() }
	}

	// A v3 peer attaches, and its ack is v3-shaped (Version echo absent).
	wc, closeFn := dial(3, "legacy")
	msg, err := wc.Recv()
	if err != nil {
		t.Fatalf("v3 hello refused: %v", err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		t.Fatalf("got %v, want HELLO_ACK", msg.Type())
	}
	if ack.Version != 0 {
		t.Fatalf("v3 ack decoded Version = %d, want 0", ack.Version)
	}
	closeFn()

	// A current peer gets the negotiated version echoed.
	wc, closeFn = dial(wire.ProtocolVersion, "current")
	msg, err = wc.Recv()
	if err != nil {
		t.Fatalf("v%d hello refused: %v", wire.ProtocolVersion, err)
	}
	if ack := msg.(*wire.HelloAck); ack.Version != wire.ProtocolVersion {
		t.Fatalf("ack Version = %d, want %d", ack.Version, wire.ProtocolVersion)
	}
	closeFn()

	// Versions outside [MinProtocolVersion, ProtocolVersion] are refused:
	// the manager closes the connection without an ack.
	for _, v := range []uint32{wire.MinProtocolVersion - 1, wire.ProtocolVersion + 1} {
		wc, closeFn = dial(v, "timetraveler")
		if msg, err := wc.Recv(); err == nil {
			t.Fatalf("version %d accepted with %v", v, msg.Type())
		}
		closeFn()
	}
}

// TestSyncDriftGaugePruned verifies that brisk_sync_drift_ppm series of
// departed nodes are unregistered, so a long-lived manager with churning
// node ids does not accumulate gauges without bound.
func TestSyncDriftGaugePruned(t *testing.T) {
	m := newManager(t, Config{})
	rep := clocksync.RoundReport{
		DriftPPM:      []float64{1.5},
		UncertaintyUS: []float64{10},
	}
	m.publishSyncModel([]int32{1}, rep)
	m.publishSyncModel([]int32{2}, rep)
	// Node 1 is gone; once the gauge map outgrows the fleet it is pruned.
	m.publishSyncModel([]int32{2}, rep)
	if len(m.driftGauges) != 1 {
		t.Fatalf("driftGauges holds %d entries after churn, want 1", len(m.driftGauges))
	}
	for _, fam := range m.Metrics().Snapshot() {
		if fam.Name != "brisk_sync_drift_ppm" {
			continue
		}
		if len(fam.Series) != 1 {
			t.Fatalf("registry holds %d drift series, want 1", len(fam.Series))
		}
		s := fam.Series[0]
		if len(s.Labels) != 1 || s.Labels[0].Value != "2" {
			t.Fatalf("surviving drift series labels = %+v, want slave=2", s.Labels)
		}
		return
	}
	t.Fatal("brisk_sync_drift_ppm family missing from snapshot")
}
