package ism

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/sensor"
	"brisk/internal/shm"
)

// TestNodeChurnSoak runs the manager under node churn: waves of nodes
// join, stream records, and leave while the clock-synchronization master
// keeps polling. Every record shipped must be emitted, the connection
// table must end empty, and nothing may deadlock.
func TestNodeChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	m := newManager(t, Config{
		SyncPeriod:   20 * time.Millisecond,
		ProbeTimeout: time.Second,
	})

	const waves = 5
	const nodesPerWave = 4
	const perNode = 200
	var totalShipped atomic.Uint64

	for w := 0; w < waves; w++ {
		var wave sync.WaitGroup
		for i := 0; i < nodesPerWave; i++ {
			wave.Add(1)
			go func() {
				defer wave.Done()
				region := shm.NewRegion()
				e, err := exs.Dial(exs.Config{
					ManagerAddr:   m.Addr(),
					NodeName:      "churn",
					Region:        region,
					FlushInterval: time.Millisecond,
					PollInterval:  200 * time.Microsecond,
					Logf:          quietLog,
				})
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				s := sensor.New(region, "app", sensor.Options{})
				for k := 0; k < perNode; k++ {
					for !s.Notice2i(1, int32(k), 0) {
						time.Sleep(time.Microsecond)
					}
					if k%20 == 0 {
						time.Sleep(2 * time.Millisecond) // let sync rounds interleave
					}
				}
				if err := e.Close(); err != nil { // ships the final batch
					t.Errorf("close: %v", err)
					return
				}
				totalShipped.Add(e.Stats().Sent)
			}()
		}
		// Ask for extra rounds while the wave's nodes are connected.
		for j := 0; j < 3; j++ {
			time.Sleep(5 * time.Millisecond)
			m.SyncRound()
		}
		wave.Wait()
	}

	want := totalShipped.Load()
	if want != uint64(waves*nodesPerWave*perNode) {
		t.Fatalf("nodes shipped %d of %d", want, waves*nodesPerWave*perNode)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := m.Stats()
		if st.Emitted == want && st.Connected == 0 {
			if st.SyncRounds == 0 {
				t.Fatal("no synchronization rounds ran during churn")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("churn did not settle: %+v (want emitted %d)", m.Stats(), want)
}

// TestLinkFlapSoak runs several nodes through a faultnet proxy whose link
// randomly flaps — cuts, stalls, and refuse-accept windows from a seeded
// source — while the nodes stream records. Once the faults stop, every
// record must be delivered exactly once: reconnection, session resume,
// retransmission, and dedupe working together under sustained abuse.
func TestLinkFlapSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	m := newManager(t, Config{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	proxy, err := faultnet.Listen(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const nodes = 3
	const perNode = 600
	type nodeState struct {
		e *exs.EXS
		s *sensor.Sensor
	}
	states := make([]nodeState, nodes)
	for i := range states {
		region := shm.NewRegion()
		e, err := exs.Dial(exs.Config{
			ManagerAddr:          proxy.Addr(),
			NodeName:             "flap",
			Region:               region,
			FlushInterval:        time.Millisecond,
			PollInterval:         200 * time.Microsecond,
			ReconnectBase:        2 * time.Millisecond,
			ReconnectMax:         10 * time.Millisecond,
			MaxReconnectAttempts: -1,      // the soak must never give up
			SpillBytes:           8 << 20, // never drop under this load
			Logf:                 quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		states[i] = nodeState{e: e, s: sensor.New(region, "app", sensor.Options{})}
	}

	// The flapper: seeded random faults while the writers stream.
	flapsDone := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-flapsDone:
				// Leave the link healthy.
				proxy.SetAccepting(true)
				proxy.Stall(false)
				return
			case <-time.After(time.Duration(2+rng.Intn(10)) * time.Millisecond):
			}
			switch rng.Intn(4) {
			case 0:
				proxy.CutNow()
			case 1:
				proxy.CutAfter(int64(1 + rng.Intn(500)))
			case 2:
				proxy.SetAccepting(false)
				time.Sleep(time.Duration(1+rng.Intn(10)) * time.Millisecond)
				proxy.SetAccepting(true)
			case 3:
				proxy.Stall(true)
				time.Sleep(time.Duration(1+rng.Intn(10)) * time.Millisecond)
				proxy.Stall(false)
			}
		}
	}()

	// Guarantee at least one mid-stream severance regardless of the
	// flapper's timing.
	proxy.CutAfter(64)

	var writers sync.WaitGroup
	for i := range states {
		writers.Add(1)
		go func(ns nodeState) {
			defer writers.Done()
			for k := 0; k < perNode; k++ {
				for !ns.s.Notice2i(1, int32(k), 0) {
					time.Sleep(time.Microsecond)
				}
				if k%10 == 0 {
					time.Sleep(time.Millisecond) // let flaps land mid-stream
				}
			}
		}(states[i])
	}
	writers.Wait()
	close(flapsDone)
	flapWG.Wait()

	// With the link healthy again, every queue must drain to acked-empty.
	const total = nodes * perNode
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		allDrained := true
		for _, ns := range states {
			ns.e.Flush()
			st := ns.e.Stats()
			if !st.Online || st.QueuedBytes != 0 || st.Sent != perNode {
				allDrained = false
			}
			if st.Dropped != 0 || st.LostOffline != 0 {
				t.Fatalf("soak lost records: %+v", st)
			}
		}
		if allDrained && m.Stats().Emitted == total {
			st := m.Stats()
			if st.Received != total {
				t.Fatalf("Received = %d, want exactly %d (dedupe leak)", st.Received, total)
			}
			if st.Connected != nodes || st.Sessions != nodes {
				t.Fatalf("Connected=%d Sessions=%d, want %d/%d", st.Connected, st.Sessions, nodes, nodes)
			}
			var reconnects uint64
			for _, ns := range states {
				reconnects += ns.e.Stats().Reconnects
			}
			if reconnects == 0 || proxy.Cuts() == 0 {
				t.Fatalf("soak exercised no faults: reconnects=%d cuts=%d", reconnects, proxy.Cuts())
			}
			t.Logf("soak: reconnects=%d resumed=%d deduped=%d cuts=%d refused=%d",
				reconnects, st.ResumedSessions, st.DedupedBatches,
				proxy.Cuts(), proxy.Refused())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, ns := range states {
		t.Logf("exs: %+v", ns.e.Stats())
	}
	t.Fatalf("flap soak did not settle: %+v (want emitted %d)", m.Stats(), total)
}
