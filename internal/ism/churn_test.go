package ism

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/sensor"
	"brisk/internal/shm"
)

// TestNodeChurnSoak runs the manager under node churn: waves of nodes
// join, stream records, and leave while the clock-synchronization master
// keeps polling. Every record shipped must be emitted, the connection
// table must end empty, and nothing may deadlock.
func TestNodeChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	m := newManager(t, Config{
		SyncPeriod:   20 * time.Millisecond,
		ProbeTimeout: time.Second,
	})

	const waves = 5
	const nodesPerWave = 4
	const perNode = 200
	var totalShipped atomic.Uint64

	for w := 0; w < waves; w++ {
		var wave sync.WaitGroup
		for i := 0; i < nodesPerWave; i++ {
			wave.Add(1)
			go func() {
				defer wave.Done()
				region := shm.NewRegion()
				e, err := exs.Dial(exs.Config{
					ManagerAddr:   m.Addr(),
					NodeName:      "churn",
					Region:        region,
					FlushInterval: time.Millisecond,
					PollInterval:  200 * time.Microsecond,
					Logf:          quietLog,
				})
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				s := sensor.New(region, "app", sensor.Options{})
				for k := 0; k < perNode; k++ {
					for !s.Notice2i(1, int32(k), 0) {
						time.Sleep(time.Microsecond)
					}
					if k%20 == 0 {
						time.Sleep(2 * time.Millisecond) // let sync rounds interleave
					}
				}
				if err := e.Close(); err != nil { // ships the final batch
					t.Errorf("close: %v", err)
					return
				}
				totalShipped.Add(e.Stats().Sent)
			}()
		}
		// Ask for extra rounds while the wave's nodes are connected.
		for j := 0; j < 3; j++ {
			time.Sleep(5 * time.Millisecond)
			m.SyncRound()
		}
		wave.Wait()
	}

	want := totalShipped.Load()
	if want != uint64(waves*nodesPerWave*perNode) {
		t.Fatalf("nodes shipped %d of %d", want, waves*nodesPerWave*perNode)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := m.Stats()
		if st.Emitted == want && st.Connected == 0 {
			if st.SyncRounds == 0 {
				t.Fatal("no synchronization rounds ran during churn")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("churn did not settle: %+v (want emitted %d)", m.Stats(), want)
}
