package ism

import (
	"net"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/wire"
)

// waitUntil polls cond until it holds or the timeout passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestResumeExactlyOnceThroughFaultyLink is the flagship fault-injection
// test: an external sensor streams records through a faultnet proxy that
// severs the link mid-frame several times. The sensor must reconnect and
// resume its session, and the manager's output must contain every record
// exactly once — no gaps (retransmission works) and no duplicates
// (sequence dedupe works) — with the same node id throughout.
func TestResumeExactlyOnceThroughFaultyLink(t *testing.T) {
	m := newManager(t, Config{})
	proxy, err := faultnet.Listen(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	region := shm.NewRegion()
	e, err := exs.Dial(exs.Config{
		ManagerAddr:          proxy.Addr(),
		NodeName:             "flaky",
		Region:               region,
		FlushInterval:        time.Millisecond,
		PollInterval:         200 * time.Microsecond,
		ReconnectBase:        2 * time.Millisecond,
		ReconnectMax:         10 * time.Millisecond,
		MaxReconnectAttempts: -1,
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	node := e.Node()
	s := sensor.New(region, "app", sensor.Options{})

	const rounds = 4
	const perRound = 200
	seq := int32(0)
	for r := 0; r < rounds; r++ {
		if r > 0 {
			// Sever deterministically mid-frame: 7 more upstream bytes
			// pass, then the link dies — a frame header is 5 bytes, so
			// this round's first DATA frame is truncated in its body.
			proxy.CutAfter(7)
		}
		for i := 0; i < perRound; i++ {
			for !s.Notice2i(1, seq, 0) {
				time.Sleep(time.Microsecond)
			}
			seq++
		}
		e.Flush()
		if r > 0 {
			waitUntil(t, 10*time.Second, "reconnect", func() bool {
				st := e.Stats()
				return st.Online && st.Reconnects >= uint64(r)
			})
		}
	}
	const total = rounds * perRound

	// Everything must land and be acknowledged: the sensor's retransmit
	// queue drains to zero only once the manager accepted every batch.
	waitUntil(t, 15*time.Second, "all records acknowledged", func() bool {
		st := e.Stats()
		return st.Online && st.QueuedBytes == 0 && st.Sent == total
	})
	waitUntil(t, 15*time.Second, "all records emitted", func() bool {
		return m.Stats().Emitted >= total
	})

	got := drainCursor(t, m, total, 15*time.Second)
	seen := make(map[int64]int)
	for _, r := range got {
		seen[r.Fields[1].Int()]++
		if r.Node != node {
			t.Fatalf("record attributed to node %d, want %d", r.Node, node)
		}
	}
	for i := int64(0); i < total; i++ {
		switch seen[i] {
		case 1:
		case 0:
			t.Fatalf("record %d lost across reconnects (gap)", i)
		default:
			t.Fatalf("record %d delivered %d times (duplicate)", i, seen[i])
		}
	}
	if len(got) != total {
		t.Fatalf("emitted %d records, want exactly %d", len(got), total)
	}

	st := m.Stats()
	if st.ResumedSessions < uint64(rounds-1) {
		t.Fatalf("ResumedSessions = %d, want >= %d", st.ResumedSessions, rounds-1)
	}
	if e.Node() != node {
		t.Fatalf("node id changed across resume: %d -> %d", node, e.Node())
	}
	// One logical node: one connection, one session, and therefore one
	// clock-sync slave entry when rounds run.
	if st.Connected != 1 || st.Sessions != 1 {
		t.Fatalf("Connected=%d Sessions=%d, want 1/1", st.Connected, st.Sessions)
	}
	if es := e.Stats(); es.Reconnects < uint64(rounds-1) || es.Retransmits == 0 {
		t.Fatalf("exs stats: %+v — expected reconnects and retransmits", es)
	}
}

// dialRaw opens a raw wire client and completes the HELLO exchange.
func dialRaw(t *testing.T, m *Manager, session uint64, resume bool) (*wire.Conn, *wire.HelloAck, func()) {
	t.Helper()
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{
		Version: wire.ProtocolVersion, Name: "raw", Session: session, Resume: resume,
	}); err != nil {
		t.Fatal(err)
	}
	msg, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		t.Fatalf("expected HELLO_ACK, got %v", msg.Type())
	}
	return wc, ack, func() { raw.Close() }
}

// recvAck reads frames until a DATA_ACK arrives (skipping heartbeats).
func recvAck(t *testing.T, wc *wire.Conn) *wire.DataAck {
	t.Helper()
	for {
		msg, err := wc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if a, ok := msg.(*wire.DataAck); ok {
			return a
		}
	}
}

// TestSequenceDedupeAndResumeHandshake drives the session protocol with
// handcrafted frames: replayed sequence numbers are dropped and re-acked,
// and a resumed HELLO reports the node id and high-water mark.
func TestSequenceDedupeAndResumeHandshake(t *testing.T) {
	m := newManager(t, Config{HeartbeatInterval: -1})
	const session = 0xABCD
	payload := newRecordBytes(t)

	wc, ack, closeFn := dialRaw(t, m, session, false)
	if ack.Resumed || ack.LastSeq != 0 {
		t.Fatalf("fresh session acked as resumed: %+v", ack)
	}
	node := ack.Node

	if err := wc.Send(&wire.DataBatch{Seq: 1, Count: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if a := recvAck(t, wc); a.Seq != 1 {
		t.Fatalf("ack seq = %d, want 1", a.Seq)
	}
	// Replay the same batch: dropped, but re-acked so the sender drains.
	if err := wc.Send(&wire.DataBatch{Seq: 1, Count: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if a := recvAck(t, wc); a.Seq != 1 {
		t.Fatalf("replay re-ack seq = %d, want 1", a.Seq)
	}
	// Decode runs on the session's worker, so Received trails the ack.
	waitUntil(t, 5*time.Second, "replay dropped", func() bool {
		st := m.Stats()
		return st.DedupedBatches == 1 && st.Received == 1
	})
	closeFn()
	waitUntil(t, 5*time.Second, "detach", func() bool { return m.Stats().Connected == 0 })

	// Resume: same node id, high-water mark reported, replays still dropped.
	wc2, ack2, closeFn2 := dialRaw(t, m, session, true)
	defer closeFn2()
	if !ack2.Resumed || ack2.Node != node || ack2.LastSeq != 1 {
		t.Fatalf("resume ack = %+v, want Resumed node=%d lastSeq=1", ack2, node)
	}
	if err := wc2.Send(&wire.DataBatch{Seq: 1, Count: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if a := recvAck(t, wc2); a.Seq != 1 {
		t.Fatalf("post-resume re-ack seq = %d", a.Seq)
	}
	if err := wc2.Send(&wire.DataBatch{Seq: 2, Count: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if a := recvAck(t, wc2); a.Seq != 2 {
		t.Fatalf("new batch ack seq = %d, want 2", a.Seq)
	}
	waitUntil(t, 5*time.Second, "final stats", func() bool {
		st := m.Stats()
		return st.DedupedBatches == 2 && st.Received == 2 && st.ResumedSessions == 1
	})
}

// TestSessionRetentionExpiry verifies a detached session past the
// retention window loses its identity: a later resume gets a fresh node.
func TestSessionRetentionExpiry(t *testing.T) {
	m := newManager(t, Config{
		HeartbeatInterval: 5 * time.Millisecond, // drives the purge loop
		SessionRetention:  10 * time.Millisecond,
	})
	_, ack, closeFn := dialRaw(t, m, 99, false)
	closeFn()
	waitUntil(t, 5*time.Second, "session expiry", func() bool { return m.Stats().Sessions == 0 })

	_, ack2, closeFn2 := dialRaw(t, m, 99, true)
	defer closeFn2()
	if ack2.Resumed {
		t.Fatal("expired session resumed")
	}
	if ack2.Node == ack.Node {
		t.Fatalf("expired session kept node id %d", ack.Node)
	}
}

// TestHeartbeatReapsSilentPeer verifies a half-open connection — one that
// never answers pings — is detected and severed.
func TestHeartbeatReapsSilentPeer(t *testing.T) {
	m := newManager(t, Config{HeartbeatInterval: 10 * time.Millisecond})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "mute"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Recv(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "attach", func() bool { return m.Stats().Connected == 1 })
	// Say nothing, answer nothing. The manager must reap us.
	waitUntil(t, 10*time.Second, "dead-peer reap", func() bool {
		st := m.Stats()
		return st.Connected == 0 && st.DeadPeers >= 1
	})
}
