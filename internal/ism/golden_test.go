package ism

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/picl"
	"brisk/internal/record"
	"brisk/internal/vclock"
	"brisk/internal/wire"
	"brisk/internal/workload"
)

// goldenTrace runs a fixed-seed workload through a full manager — raw
// session connections, per-session decode workers, sorter, sinks — and
// returns the PICL trace it produced. The manager clock is pinned below
// every record timestamp so nothing is emitted until Close's ordered
// flush; unique timestamps then make the merged order, and therefore the
// trace bytes, a pure function of the workload — for any shard count.
func goldenTrace(t *testing.T, shards int, tap SinkTap) []byte {
	t.Helper()
	trace, _ := goldenTraceSync(t, shards, tap, false)
	return trace
}

// goldenTraceSync is goldenTrace with an optional model-based sync
// scheduler: when sync is true the manager runs the uncertainty-driven
// probe master over the same raw sessions — a round forced between
// batches, probes answered from the pinned clock — so control traffic
// interleaves with the data batches on the same connections. Returns the
// trace plus the manager's final counters.
func goldenTraceSync(t *testing.T, shards int, tap SinkTap, sync bool) ([]byte, Stats) {
	t.Helper()
	var trace bytes.Buffer
	pw := picl.NewWriter(&trace, picl.TimeUTC, 0)
	clock := vclock.NewManual(1)
	cfg := Config{
		Addr:              "127.0.0.1:0",
		Clock:             clock,
		PICL:              pw,
		MergeInterval:     time.Millisecond,
		HeartbeatInterval: -1,
		OLSShards:         shards,
		Tap:               tap,
		Logf:              quietLog,
	}
	if sync {
		// Rounds are driven explicitly via SyncRound; the hour-long
		// period keeps the ticker from racing the forced rounds.
		cfg.SyncPeriod = time.Hour
		cfg.Sync = clocksync.Config{
			UncertaintyBound: 100,
			MinProbeInterval: 1_000,
			MaxProbeInterval: 50_000,
			MeasurementNoise: 30,
			DriftWalkPPM:     0.01,
		}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()

	// The paper's delayed-stream workload, fixed seed. Timestamps are
	// spread so no two sources ever collide (ts*4+source), keeping the
	// merged (TS, Seq) order independent of cross-session merge races.
	const sources = 3
	specs := make([]workload.StreamSpec, sources)
	for i := range specs {
		specs[i] = workload.StreamSpec{
			Source:  int32(i + 1),
			MeanGap: 300,
			Delay:   workload.DelayParams{Base: 50, JitterMean: 200, SpikeProb: 0.05, SpikeMean: 3000},
		}
	}
	events := workload.GenDelayedStreams(specs, 120, 0xB1253)
	perSource := make(map[int32][]record.Record, sources)
	for _, ev := range events {
		rec := record.New(1, record.TSVal(ev.TS*4+int64(ev.Source)), record.I32Val(ev.Source))
		perSource[ev.Source] = append(perSource[ev.Source], rec)
	}

	// Sessions attach sequentially so node ids are deterministic. Every
	// batch is acked before the next is sent, so by the time Close runs
	// the ordered shutdown (readers → workers → merger flush), each
	// record is queued and none can be lost.
	const batchLen = 7
	for src := int32(1); src <= sources; src++ {
		wc, ack, closeFn := dialRaw(t, m, 0xD00+uint64(src), false)
		if ack.Node != src {
			t.Fatalf("session %d got node id %d; connect order must pin ids", src, ack.Node)
		}
		recs := perSource[src]
		seq := uint64(0)
		for off := 0; off < len(recs); off += batchLen {
			end := off + batchLen
			if end > len(recs) {
				end = len(recs)
			}
			var payload []byte
			for i := off; i < end; i++ {
				var err error
				payload, err = recs[i].Append(payload)
				if err != nil {
					t.Fatal(err)
				}
			}
			seq++
			if err := wc.Send(&wire.DataBatch{Seq: seq, Count: uint32(end - off), Payload: payload}); err != nil {
				t.Fatal(err)
			}
			if sync && end < len(recs) {
				m.SyncRound()
			}
			if a := recvAckSync(t, wc, clock); a.Seq != seq {
				t.Fatalf("ack %d, want %d", a.Seq, seq)
			}
		}
		closeFn()
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if got, want := int(st.Emitted), len(events); got != want {
		t.Fatalf("emitted %d records, want %d", got, want)
	}
	return trace.Bytes(), st
}

// recvAckSync reads until a DataAck arrives, answering the sync master's
// probes from the pinned slave clock along the way (and ignoring any
// other control frames) — the client half of the control plane the
// sync-enabled golden run exercises.
func recvAckSync(t *testing.T, wc *wire.Conn, slave vclock.Clock) *wire.DataAck {
	t.Helper()
	for {
		msg, err := wc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch f := msg.(type) {
		case *wire.DataAck:
			return f
		case *wire.Probe:
			reply := &wire.ProbeReply{Seq: f.Seq, MasterSend: f.MasterSend, SlaveTime: slave.NowMicros()}
			if err := wc.Send(reply); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGoldenTraceDeterminism locks the pipeline's output bytes: the same
// fixed-seed workload must produce the identical PICL trace on every run
// — across the pooled decode path, parallel session workers, and batched
// sink delivery — and that trace must match the committed golden file.
// Regenerate with GOLDEN_UPDATE=1 after an intentional format change.
func TestGoldenTraceDeterminism(t *testing.T) {
	first := goldenTrace(t, 1, nil)
	second := goldenTrace(t, 1, nil)
	if !bytes.Equal(first, second) {
		t.Fatal("two identical runs produced different traces (nondeterminism in the pipeline)")
	}
	golden := filepath.Join("testdata", "golden_trace.picl")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("trace differs from %s: got %d bytes, want %d bytes", golden, len(first), len(want))
	}
}

// TestGoldenTraceShardTransparent locks the tentpole's shard-transparency
// contract at the byte level: because the workload's timestamps are
// unique, the k-way merged emission order is pure timestamp order, so a
// sharded sorter must produce the exact trace bytes the single sorter
// does — same golden file, any shard count.
func TestGoldenTraceShardTransparent(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.picl"))
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	for _, shards := range []int{2, 4, 8} {
		got := goldenTrace(t, shards, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: trace diverges from the single-sorter golden trace (%d bytes vs %d)",
				shards, len(got), len(want))
		}
	}
}

// TestGoldenTraceModelSyncTransparent locks the probe scheduler's
// data-path transparency at the byte level: with the model-based sync
// master enabled, probes and replies interleave with the data batches on
// the same session connections, yet the emitted trace must equal the
// committed golden file byte for byte. The scheduler may touch slave-side
// corrections, never the records in flight.
func TestGoldenTraceModelSyncTransparent(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.picl"))
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	got, st := goldenTraceSync(t, 1, nil, true)
	if st.SyncProbes == 0 {
		t.Fatal("sync master issued no probes; the scheduler never engaged")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sync-enabled trace diverges from the golden file (%d bytes vs %d): control traffic must not perturb the data path",
			len(got), len(want))
	}
}
