package ism

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/metrics"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// scrape fetches one exposition from the introspection endpoint.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return string(body)
}

// metricValue extracts an unlabeled series' value from an exposition, or
// -1 when the series is absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestObservabilityEndToEndUnderFaults runs the whole pipeline — manager
// and two sensor nodes sharing one registry, one node behind a faultnet
// proxy with a skewed clock — and asserts through real /metrics scrapes
// that the fault counters move: a tachyon from the skewed clock, spill
// drops from an outage with a tiny spill budget, and a reconnection once
// the link heals.
func TestObservabilityEndToEndUnderFaults(t *testing.T) {
	reg := metrics.NewRegistry()
	m := newManager(t, Config{
		Metrics:    reg,
		SyncPeriod: time.Hour, // only tachyon-triggered rounds
	})
	obs, err := metrics.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	url := "http://" + obs.Addr() + "/metrics"

	proxy, err := faultnet.Listen(m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Node A: healthy clock, direct link, its own private registry.
	_, regionA := newNode(t, m, "a", nil)
	sa := sensor.New(regionA, "app", sensor.Options{})

	// Node B: clock 200 ms behind, link through the fault proxy, a spill
	// budget small enough that an outage must evict batches, and series
	// registered in the shared registry the endpoint serves.
	behind := vclock.NewCorrected(vclock.NewDrift(vclock.System{}, -200_000, 0))
	regionB := shm.NewRegion()
	eB, err := exs.Dial(exs.Config{
		ManagerAddr:          proxy.Addr(),
		NodeName:             "b",
		Region:               regionB,
		Clock:                behind,
		FlushInterval:        time.Millisecond,
		PollInterval:         200 * time.Microsecond,
		ReconnectBase:        2 * time.Millisecond,
		ReconnectMax:         10 * time.Millisecond,
		MaxReconnectAttempts: -1,
		SpillBytes:           256,
		Metrics:              reg,
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eB.Close() })
	sb := sensor.New(regionB, "app", sensor.Options{Clock: behind})

	// A reason from the healthy node, then its consequence from the node
	// whose clock runs behind: the consequence is stamped before its
	// reason, which the matcher must count as a tachyon.
	sa.NoticeReason(1, 42, 0)
	time.Sleep(20 * time.Millisecond)
	sb.NoticeConseq(2, 42, 0)
	waitUntil(t, 10*time.Second, "tachyon on /metrics", func() bool {
		return metricValue(scrape(t, url), "brisk_cre_tachyons_total") >= 1
	})

	// Outage: sever the link and refuse reconnection, then write far more
	// than the spill budget holds. The sensor must evict (and count) the
	// oldest batches.
	proxy.SetAccepting(false)
	proxy.CutNow()
	for i := 0; i < 400; i++ {
		for !sb.Notice2i(3, int32(i), 0) {
			time.Sleep(time.Microsecond)
		}
		if i%50 == 0 {
			eB.Flush()
			time.Sleep(2 * time.Millisecond)
		}
	}
	eB.Flush()
	waitUntil(t, 10*time.Second, "spill drops on /metrics", func() bool {
		return metricValue(scrape(t, url), "brisk_exs_dropped_records_total") >= 1
	})

	// Heal the link: the sensor reconnects and the counter shows it.
	proxy.SetAccepting(true)
	waitUntil(t, 10*time.Second, "reconnect on /metrics", func() bool {
		return metricValue(scrape(t, url), "brisk_exs_reconnects_total") >= 1
	})

	// The shared exposition carries both component prefixes.
	body := scrape(t, url)
	for _, name := range []string{
		"brisk_ism_records_received_total",
		"brisk_ols_window_microseconds",
		"brisk_exs_records_sent_total",
		"brisk_pipeline_stage_age_microseconds_bucket",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
