package ism

import (
	"testing"
	"time"

	"brisk/internal/ols"
	"brisk/internal/sensor"
	"brisk/internal/vclock"
)

// TestShardedPipelineEndToEnd runs the full pipeline — EXS nodes, wire
// transport, parallel decode workers pushing into sorter shards, k-way
// merge, sinks — with more sessions than shards and verifies nothing is
// lost, duplicated or reordered per source.
func TestShardedPipelineEndToEnd(t *testing.T) {
	// A 1 s window comfortably covers e2e delivery lateness, so the
	// merged emission must be globally monotone, not just per source.
	m := newManager(t, Config{OLSShards: 3, Sorter: ols.Config{InitialT: 1_000_000}})
	const nodes = 8
	const perNode = 300
	sensors := make([]*sensor.Sensor, nodes)
	for i := 0; i < nodes; i++ {
		_, region := newNode(t, m, "n", nil)
		sensors[i] = sensor.New(region, "app", sensor.Options{})
	}
	for i := 0; i < perNode; i++ {
		for n := 0; n < nodes; n++ {
			if !sensors[n].Notice6i(7, int32(i), int32(n), 3, 4, 5, 6) {
				t.Fatal("ring overflow")
			}
		}
	}
	got := drainCursor(t, m, nodes*perNode, 20*time.Second)
	if len(got) != nodes*perNode {
		t.Fatalf("received %d records, want %d (stats %+v)", len(got), nodes*perNode, m.Stats())
	}
	perSourceLastIdx := map[int32]int64{}
	var lastTS int64
	for i, r := range got {
		idx := r.Fields[1].Int()
		if last, ok := perSourceLastIdx[r.Node]; ok && idx != last+1 {
			t.Fatalf("source %d: index %d after %d (lost or reordered)", r.Node, idx, last)
		}
		perSourceLastIdx[r.Node] = idx
		if r.TS < lastTS {
			t.Fatalf("global order violated at %d: %d after %d", i, r.TS, lastTS)
		}
		lastTS = r.TS
	}
	st := m.Stats()
	if st.SorterShards != 3 {
		t.Fatalf("SorterShards = %d, want 3", st.SorterShards)
	}
	if st.Sorter.Pushed != uint64(nodes*perNode) {
		t.Fatalf("aggregate pushed %d, want %d", st.Sorter.Pushed, nodes*perNode)
	}
}

// TestShardBoundaryCREMatch is the regression test for causally-related
// pairs split across shards: with two shards, the reason lands on node
// 1's shard and the consequence on node 2's, and only the post-merge
// matcher can pair them — a naive per-shard CRE would miss the match.
// The consequence is also a tachyon (its source clock runs behind), so
// the repair path must see the reason first in merged order.
func TestShardBoundaryCREMatch(t *testing.T) {
	m := newManager(t, Config{OLSShards: 2, Sorter: ols.Config{InitialT: 1000}})
	_, regionA := newNode(t, m, "a", nil)
	behind := vclock.NewCorrected(vclock.NewDrift(vclock.System{}, -200_000, 0))
	_, regionB := newNode(t, m, "b", behind)

	sa := sensor.New(regionA, "app", sensor.Options{})
	sb := sensor.New(regionB, "app", sensor.Options{Clock: behind})

	sa.NoticeReason(1, 42, 0)
	time.Sleep(20 * time.Millisecond) // let the reason flow through
	sb.NoticeConseq(2, 42, 0)

	got := drainCursor(t, m, 2, 10*time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d records (stats %+v)", len(got), m.Stats())
	}
	if got[0].Reason != 42 || got[1].Conseq != 42 {
		t.Fatalf("order wrong: %+v", got)
	}
	// Nodes 1 and 2 hash to different shards (1%2 vs 2%2) — the pair
	// crossed the shard boundary and still matched after the merge.
	if got[0].Node%2 == got[1].Node%2 {
		t.Fatalf("test premise broken: nodes %d and %d landed on the same shard", got[0].Node, got[1].Node)
	}
	if got[1].TS <= got[0].TS {
		t.Fatalf("tachyon not repaired across shards: conseq ts %d ≤ reason ts %d", got[1].TS, got[0].TS)
	}
	st := m.Stats()
	if st.CRE.Matched != 1 || st.CRE.Tachyons != 1 {
		t.Fatalf("CRE stats = %+v, want one matched tachyon", st.CRE)
	}
}

// TestShardedCloseDrainsEverything: the ordered shutdown (readers →
// decode workers → merger flush) must deliver every acked record with
// shards > 1, where decode workers push into shards directly instead of
// through the merge channel.
func TestShardedCloseDrainsEverything(t *testing.T) {
	// Huge T: nothing ages out before Close's flush.
	m := newManager(t, Config{OLSShards: 4, Sorter: ols.Config{InitialT: 60_000_000}})
	const nodes = 5
	const perNode = 200
	for i := 0; i < nodes; i++ {
		_, region := newNode(t, m, "n", nil)
		s := sensor.New(region, "app", sensor.Options{})
		for j := 0; j < perNode; j++ {
			if !s.Notice6i(9, int32(j), 0, 0, 0, 0, 0) {
				t.Fatal("ring overflow")
			}
		}
		// Wait until the manager has accepted this node's records before
		// closing (accepted ⇒ must survive shutdown).
		deadline := time.Now().Add(10 * time.Second)
		for m.Stats().Received < uint64((i+1)*perNode) {
			if time.Now().After(deadline) {
				t.Fatalf("node %d never drained: %+v", i, m.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	cur := m.NewCursor()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			t.Fatalf("consumer lost %d records", lost)
		}
		if !ok {
			break
		}
		if _, err := DecodeBuffered(raw); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != nodes*perNode {
		t.Fatalf("drained %d records after Close, want %d (stats %+v)", n, nodes*perNode, m.Stats())
	}
}
