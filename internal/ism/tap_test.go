package ism

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"brisk/internal/record"
	"brisk/internal/subscribe"
)

// TestGoldenTraceWithSubscribeTap locks the read side's transparency
// contract at the byte level: running the golden workload with the
// subscription engine tapped into the sink flush must produce the exact
// trace bytes the untapped pipeline does — the tap observes the stream,
// it never perturbs it.
func TestGoldenTraceWithSubscribeTap(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.picl"))
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	eng := subscribe.New(subscribe.Config{Shards: 4, WindowBytes: 1 << 20})
	sub, err := eng.Subscribe(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenTrace(t, 4, eng)
	if !bytes.Equal(got, want) {
		t.Fatalf("trace with subscribe tap diverges from golden (%d bytes vs %d): the tap must not perturb the pipeline",
			len(got), len(want))
	}

	// The tap saw every emitted record; a catch-up subscriber reads them
	// all back out of the hot window in emission order (the window was
	// large enough that nothing was evicted — no markers expected).
	eng.Close()
	var n int
	var lastSeq uint64
	for {
		evs, err := sub.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range evs {
			if record.IsLossMarker(&evs[i].Record) {
				t.Fatal("unexpected loss marker: nothing was evicted")
			}
			if n > 0 && evs[i].Seq != lastSeq+1 {
				t.Fatalf("subscriber saw seq %d after %d", evs[i].Seq, lastSeq)
			}
			lastSeq = evs[i].Seq
			n++
		}
	}
	// goldenTrace emits one PICL line per record; line count is the
	// emitted record count.
	want = bytes.TrimRight(want, "\n")
	if emitted := bytes.Count(want, []byte("\n")) + 1; n != emitted {
		t.Fatalf("subscriber drained %d records, pipeline emitted %d", n, emitted)
	}
}
