// Package ism implements the BRISK instrumentation-system manager.
//
// The ISM accepts TCP connections from external sensors, keeps the
// arriving record batches in per-sensor queues (in-order arrival being
// guaranteed by the stream socket), merges them with the heap-based
// on-line sorter, matches causally-related events, and fans the sorted
// stream out to its sinks:
//
//   - a memory buffer read by instrumentation-data consumer tools (the
//     default output mode),
//   - optional PICL ASCII trace logging, and
//   - an optional list of remote visual objects.
//
// The ISM is also the clock-synchronization master: it polls the external
// sensors in rounds and issues corrections, and the causally-related-event
// matcher requests an immediate extra round whenever a tachyon shows the
// clocks have come apart.
package ism

import (
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/cre"
	"brisk/internal/metrics"
	"brisk/internal/ols"
	"brisk/internal/picl"
	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/visual"
	"brisk/internal/wire"
)

// Config configures a Manager. The zero value (plus an Addr) is a working
// configuration with the defaults noted per field.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7411". Use port 0
	// for an ephemeral port (see Manager.Addr).
	Addr string
	// Clock is the manager clock; nil means the system clock.
	Clock vclock.Clock
	// Sorter tunes the on-line sorting algorithm.
	Sorter ols.Config
	// OLSShards is the number of independent on-line sorter shards.
	// Sources are partitioned across shards (each with its own heap and
	// adaptive time frame) and the shard outputs are recombined through
	// a timestamp-keyed k-way merge, so decode workers push in parallel
	// instead of funnelling through one merge channel. 0 or 1 means a
	// single sorter — the exact unsharded code path; negative means one
	// shard per CPU (GOMAXPROCS). Values above GOMAXPROCS are honoured
	// but add no parallelism.
	OLSShards int
	// CRETimeout bounds retention of unmatched causal records (µs);
	// 0 means cre.DefaultTimeout.
	CRETimeout int64
	// MergeInterval is how often the merger extracts aged records; it is
	// the manager-side latency-control knob. Default 5 ms. (The paper's
	// worst-case latency lower bound comes from exactly this kind of
	// waiting select call.)
	MergeInterval time.Duration
	// BufferRecords is the memory-buffer capacity in records. Default
	// 65536.
	BufferRecords int
	// PICL, when non-nil, receives every sorted record as a trace line.
	PICL *picl.Writer
	// Visual, when non-nil, receives every sorted record as a PICL
	// string, fan-out to remote visual objects.
	Visual *visual.Dispatcher
	// Sync configures the clock-synchronization master.
	Sync clocksync.Config
	// SyncPeriod is the polling round period; 0 disables the master.
	SyncPeriod time.Duration
	// ProbeTimeout bounds one probe exchange. Default 250 ms.
	ProbeTimeout time.Duration
	// HeartbeatInterval is the per-connection PING period. A sensor that
	// sends nothing (not even a PONG) for HeartbeatMisses intervals is
	// declared dead and disconnected, so half-open links from crashed or
	// partitioned nodes cannot pin queue state forever. Default 1 s;
	// negative disables heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals kill a peer. Default 3.
	HeartbeatMisses int
	// SessionRetention bounds how long a detached session (its node id
	// and dedupe state) is kept for resumption after its connection
	// drops. Default 2 min; negative drops sessions immediately.
	SessionRetention time.Duration
	// DecodeQueueDepth is the per-session decode-worker queue depth in
	// batches: how many received-but-undecoded data batches may be
	// buffered per session before its reader blocks, pushing backpressure
	// into TCP. N sessions decode on N workers in parallel; the merger
	// stays single-threaded. Default 4.
	DecodeQueueDepth int
	// SinkBatchRecords caps how many sorted records accumulate before an
	// intra-merge sink flush. Larger batches amortize the per-flush costs
	// (one clock read, one memory-buffer lock) over more records at the
	// price of peak latency jitter. Default 512.
	SinkBatchRecords int
	// AckHighWater and AckLowWater are sorter-occupancy watermarks (in
	// records) for the ack gate. When the sorter's buffered count rises to
	// AckHighWater the manager stops acknowledging data batches (a
	// deferred ack is the halt signal — the sensor's credit runs out and
	// it pauses); when it falls back to AckLowWater the deferred acks are
	// released. Defaults derive from Sorter.MaxBuffered (¾ and ½ of it);
	// flow control is disabled when both resolve to 0, and a negative
	// AckHighWater disables it explicitly even with MaxBuffered set.
	AckHighWater int
	AckLowWater  int
	// MaxCreditWindow caps any single credit grant (records in flight per
	// sensor). Default 4096.
	MaxCreditWindow int
	// Filter, when non-nil, selects which sorted records reach the
	// sinks; records it rejects are counted but not delivered. It runs
	// downstream of the causal matcher so causal bookkeeping stays
	// complete even when only a subset is consumed — the tool-side
	// "specify what to monitor" hook of the paper's transparent
	// monitoring discussion.
	Filter func(rec *record.Record) bool
	// Forward, when non-nil, receives every sorted record the sinks
	// accept (loss markers included — they are exempt from Filter),
	// called on the merger goroutine with the pipeline lock held. The
	// relay tier uses it as its uplink tap. The record borrows merge
	// staging storage: implementations must encode or copy what they
	// keep before returning, and must never block.
	Forward func(rec *record.Record)
	// Tap, when non-nil, is the read-side subscription tap: it receives
	// every record the sinks accept (loss markers included) together
	// with the node-prefixed encoding the memory-buffer sink produced
	// and the flush's manager-clock instant, then one EndFlush per sink
	// flush to amortize subscriber wake-ups. Both calls run on the
	// merger goroutine with the pipeline lock held: implementations
	// must never block and must not allocate on the Publish path — the
	// ingest pipeline's zero-allocation contract extends through the
	// tap. The record and encoding borrow merge staging storage and
	// must be copied if kept.
	Tap SinkTap
	// GateBacklog, when non-nil, reports extra records that should count
	// toward the ack-gate occupancy on top of the sorter's own buffered
	// count. A relay manager points it at its uplink backlog, so a
	// parent withholding acks closes this manager's gate too — the
	// mechanism that composes backpressure across tiers. Called on every
	// gate update; must be fast and lock-free.
	GateBacklog func() int
	// Logf logs diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, is the registry the manager registers its
	// series in; nil means a private registry (see Manager.Metrics).
	Metrics *metrics.Registry
	// TraceSampleEvery is the pipeline stage tracer's sampling period:
	// every Nth record through a stage has its age measured. 0 means
	// DefaultTraceSampleEvery; negative disables tracing.
	TraceSampleEvery int
}

// DefaultTraceSampleEvery is the default pipeline-trace sampling period.
const DefaultTraceSampleEvery = 64

// SinkTap consumes the sorted stream at the sink stage — the
// subscription engine's attachment point (see Config.Tap).
type SinkTap interface {
	// Publish receives one sink-accepted record, its node-prefixed
	// encoding, and the manager clock of the flush. Borrowed storage;
	// must not block or allocate.
	Publish(rec *record.Record, encoded []byte, now int64)
	// EndFlush marks the end of one sink flush.
	EndFlush()
}

// Stats is a snapshot of manager counters.
type Stats struct {
	// Connected is the number of external sensors currently attached.
	Connected int
	// Received counts records accepted from all sensors.
	Received uint64
	// Emitted counts records that left the sorter toward the sinks.
	Emitted uint64
	// Batches counts data batches received.
	Batches uint64
	// RelayBatches counts relay batches (origin-attributed batches from
	// a downstream relay-tier ISM) among them.
	RelayBatches uint64
	// BytesIn counts wire payload bytes received.
	BytesIn uint64
	// Sorter and CRE expose the subsystem counters.
	Sorter ols.Stats
	CRE    cre.Stats
	// SyncRounds counts completed synchronization rounds.
	SyncRounds uint64
	// SyncProbes counts probe round trips the synchronization master has
	// issued — the traffic the model-based scheduler trades against
	// skew; SyncFallbacks counts model-divergence events that forced
	// full-round fallbacks.
	SyncProbes    uint64
	SyncFallbacks uint64
	// TachyonSyncs counts extra rounds requested by the CRE matcher.
	TachyonSyncs uint64
	// Filtered counts sorted records suppressed by the configured filter.
	Filtered uint64
	// ResumedSessions counts reconnections that reattached an existing
	// session (same node id, dedupe state intact).
	ResumedSessions uint64
	// DedupedBatches counts replayed data batches dropped by the
	// sequence-number filter (already merged before the link broke).
	DedupedBatches uint64
	// AckDeferred counts data-batch acks withheld by the overload gate.
	AckDeferred uint64
	// LossMarkers counts loss-marker records the manager synthesized for
	// records it dropped at the sorter bound; MarkedLost is the total
	// record count those markers represent.
	LossMarkers uint64
	MarkedLost  uint64
	// CreditGateClosed reports whether the ack gate is currently closed
	// (sorter occupancy between the watermarks after crossing the high
	// one).
	CreditGateClosed bool
	// SorterBuffered is the sorter's current occupancy in records,
	// aggregated across shards — the quantity the ack gate watches.
	SorterBuffered int
	// SorterShards is the configured number of on-line sorter shards.
	SorterShards int
	// DeadPeers counts connections severed by heartbeat timeout.
	DeadPeers uint64
	// Sessions is the number of live sessions (attached or within the
	// retention window).
	Sessions int
	// EmitLatencyMeanMicros and EmitLatencyP99Micros summarize delivery
	// latency (manager clock at emission minus the record's corrected
	// timestamp) over the manager's lifetime.
	EmitLatencyMeanMicros float64
	EmitLatencyP99Micros  float64
}

// conn is one attached external sensor.
type conn struct {
	node     int32
	name     string
	wc       *wire.Conn
	raw      net.Conn
	replies  chan *wire.ProbeReply
	seq      atomic.Uint32
	gone     atomic.Bool
	sess     *session     // nil for sessionless (v1-style) sensors
	lastRecv atomic.Int64 // UnixNano of the last frame received
	pingSeq  atomic.Uint32
}

// session is the durable identity of one external sensor across
// reconnections: the node id the sorter and clock-sync master key on, and
// the batch-sequence high-water mark that makes replays idempotent.
type session struct {
	id   uint64
	node int32

	// batchesC and dedupedC are this session's labeled batch and replay
	// counters; nil for sessionless sensors. They live as long as the
	// session: expiry unregisters them from the registry.
	batchesC *metrics.Counter
	dedupedC *metrics.Counter

	mu         sync.Mutex
	name       string
	lastSeq    uint64 // highest batch sequence accepted into the merger
	cur        *conn  // attached connection, nil while detached
	detachedAt time.Time

	// work feeds the session's decode worker; free recycles payload
	// buffers back to the reader so a steady batch stream is copied zero
	// times and allocated never. Both channels outlive any one connection:
	// the worker is per session, which is what preserves per-source FIFO
	// order across a resume.
	work     chan pending
	free     chan []byte
	quit     chan struct{}
	stopOnce sync.Once

	// inflight counts records accepted from this session's link but not
	// yet through the sorter (queued for decode or in the merge channel);
	// the credit grant subtracts it so a sensor's window shrinks as its
	// backlog inside the manager grows.
	inflight atomic.Int64
	// deferred holds the highest batch sequence whose ack the overload
	// gate withheld (0 = none). The merger releases it when the sorter
	// drains below the low watermark.
	deferred atomic.Uint64
}

// stop retires the session's decode worker (it drains queued work first).
func (s *session) stop() { s.stopOnce.Do(func() { close(s.quit) }) }

// severCurrent kills the session's attached connection, if any; the
// decode worker uses it to surface a malformed batch as a link error.
func (s *session) severCurrent() {
	s.mu.Lock()
	c := s.cur
	s.mu.Unlock()
	if c != nil {
		c.gone.Store(true)
		c.raw.Close()
	}
}

// pending is one received-but-undecoded data batch queued to a session's
// decode worker. relay marks a RelayBatch payload: node-prefixed entries
// carrying their own origin ids instead of the session's node.
type pending struct {
	count   uint32
	payload []byte
	relay   bool
}

// Manager is the ISM. Create with New, start with Serve (or let New's
// listener run), stop with Close.
type Manager struct {
	cfg   Config
	clock vclock.Clock
	logf  func(string, ...any)

	ln     net.Listener
	buffer *shm.Buffer

	mu       sync.Mutex
	conns    map[int32]*conn
	sessions map[uint64]*session
	nextNode int32

	merge       chan srcBatch
	extractNow  chan struct{} // sharded mode: wakes the merger when a backlog builds
	syncNow     chan struct{}
	done        chan struct{}
	stopWorkers chan struct{} // closed after the readers exit; workers drain and stop
	wg          sync.WaitGroup
	wgConns     sync.WaitGroup // connection reader goroutines
	wgWorkers   sync.WaitGroup // per-session decode workers
	closed      atomic.Bool

	reg          *metrics.Registry
	tracer       *metrics.StageTracer
	received     *metrics.Counter
	batches      *metrics.Counter
	relayBatches *metrics.Counter
	bytesIn      *metrics.Counter
	emitted      *metrics.Counter

	// sorterMu guards the merger-owned pipeline state downstream of the
	// sorter (matcher, out, sinkBufs, emitNow). The sorter itself locks
	// internally per shard: with one shard pushes still funnel through
	// the merge channel, with several the decode workers push into their
	// shards directly and contend only inside ols.Sharded.
	sorterMu sync.Mutex
	sorter   *ols.Sharded
	shardN   int
	matcher  *cre.Matcher
	emitLat  *metrics.Histogram
	windowT  *metrics.Histogram

	// Batched sink delivery, owned by the merge goroutine (sorterMu).
	// out collects fully-processed records between flushes; sinkBufs holds
	// one recycled encode buffer per record of the largest flush so far.
	out       []record.Record
	sinkBufs  [][]byte
	emitNow   int64 // manager clock for the current merge event
	sinkBatch int

	workersLive atomic.Int64
	queueStalls *metrics.Counter
	sinkBatchH  *metrics.Histogram

	// Credit-based flow control. Gate transitions run under gateMu —
	// with one shard only the merger takes it, with several every decode
	// worker updates the gate after its pushes; the per-connection
	// readers read the atomics to size (or defer) each ack's window
	// grant.
	flowEnabled bool
	ackHigh     int
	ackLow      int
	maxWindow   int

	gateMu          sync.Mutex
	headroom        atomic.Int64 // ackHigh − sorter.Buffered(), gate-updated
	gateClosed      atomic.Bool
	gateClosedAt    int64 // manager µs when the gate closed; gateMu-owned
	attachedN       atomic.Int64
	deferredPending atomic.Int64

	connScratch []*conn // gateMu-owned snapshot scratch for releaseDeferred

	creditWindowH *metrics.Histogram
	ackDeferredC  *metrics.Counter
	overloadPause *metrics.Histogram
	lossMarkersC  *metrics.Counter
	markedLostC   *metrics.Counter
	srcDropC      map[int32]*metrics.Counter // merger-owned label cache

	syncRounds   *metrics.Counter
	tachyonSyncs *metrics.Counter
	filtered     *metrics.Counter
	resumed      *metrics.Counter
	deduped      *metrics.Counter
	deadPeers    *metrics.Counter
	syncFailed   *metrics.Counter
	syncSkew     *metrics.Histogram

	// Model-based synchronization state, owned by the syncLoop goroutine:
	// the persistent master (estimators survive across rounds, keyed by
	// node id so they survive reconnects too) and its exported series.
	syncMaster      *clocksync.Master
	syncProbes      *metrics.Counter
	syncFallbacks   *metrics.Counter
	syncUncertainty *metrics.Gauge
	driftGauges     map[int32]*atomic.Uint64 // float64 bits, per slave node

	visualBuf  *lineBuffer
	visualPICL *picl.Writer
}

// Pipeline tracer stages owned by the manager side.
const (
	stageIngest      = iota // batch decoded off the wire, entering the merge queue
	stageSorterEmit         // record left the on-line sorter
	stageSinkDeliver        // record delivered to the sinks
)

// srcBatch hands one decoded batch from a session's decode worker to the
// merge goroutine. The batch pointer comes from record.GetBatch; the
// merger returns it to the pool after pushing every record, and credits
// the records back against the session's inflight count. mixed marks a
// relay batch whose records carry their own origins in rec.Node.
type srcBatch struct {
	node  int32
	batch *[]record.Record
	sess  *session
	mixed bool
}

// lineBuffer renders one PICL line at a time for the visual dispatcher.
type lineBuffer struct {
	buf []byte
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// New creates a manager and starts listening. Call Serve to begin
// accepting external sensors.
func New(cfg Config) (*Manager, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.System{}
	}
	if cfg.MergeInterval <= 0 {
		cfg.MergeInterval = 5 * time.Millisecond
	}
	if cfg.BufferRecords <= 0 {
		cfg.BufferRecords = 65536
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 250 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.SessionRetention == 0 {
		cfg.SessionRetention = 2 * time.Minute
	}
	if cfg.DecodeQueueDepth <= 0 {
		cfg.DecodeQueueDepth = 4
	}
	if cfg.SinkBatchRecords <= 0 {
		cfg.SinkBatchRecords = 512
	}
	if cfg.AckHighWater < 0 {
		cfg.AckHighWater = 0 // explicit disable
	} else if cfg.AckHighWater == 0 && cfg.Sorter.MaxBuffered > 0 {
		cfg.AckHighWater = cfg.Sorter.MaxBuffered * 3 / 4
	}
	if cfg.AckLowWater <= 0 {
		cfg.AckLowWater = cfg.AckHighWater / 2
	}
	if cfg.AckLowWater >= cfg.AckHighWater {
		cfg.AckLowWater = cfg.AckHighWater - 1
	}
	if cfg.MaxCreditWindow <= 0 {
		cfg.MaxCreditWindow = 4096
	}
	if cfg.OLSShards < 0 {
		cfg.OLSShards = runtime.GOMAXPROCS(0)
	}
	if cfg.OLSShards < 1 {
		cfg.OLSShards = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ism: listen: %w", err)
	}
	m := &Manager{
		cfg:         cfg,
		clock:       cfg.Clock,
		logf:        logf,
		ln:          ln,
		buffer:      shm.NewBuffer(cfg.BufferRecords),
		conns:       make(map[int32]*conn),
		sessions:    make(map[uint64]*session),
		merge:       make(chan srcBatch, 256),
		extractNow:  make(chan struct{}, 1),
		syncNow:     make(chan struct{}, 1),
		done:        make(chan struct{}),
		stopWorkers: make(chan struct{}),
		sorter:      ols.NewSharded(cfg.Sorter, cfg.OLSShards),
		shardN:      cfg.OLSShards,
		sinkBatch:   cfg.SinkBatchRecords,
		flowEnabled: cfg.AckHighWater > 0,
		ackHigh:     cfg.AckHighWater,
		ackLow:      cfg.AckLowWater,
		maxWindow:   cfg.MaxCreditWindow,
		srcDropC:    make(map[int32]*metrics.Counter),
	}
	m.headroom.Store(int64(m.ackHigh))
	m.registerMetrics(cfg.Metrics)
	m.matcher = cre.New(cre.Config{
		Timeout: cfg.CRETimeout,
		OnTachyon: func(int64, *record.Record) {
			m.tachyonSyncs.Inc()
			select {
			case m.syncNow <- struct{}{}:
			default:
			}
		},
	})
	if cfg.Visual != nil {
		m.visualBuf = &lineBuffer{}
		m.visualPICL = picl.NewWriter(m.visualBuf, picl.TimeUTC, 0)
	}
	return m, nil
}

// registerMetrics creates (or adopts) the registry and binds every
// manager-side series: live counters for the record path, histograms for
// emit latency and the sorter's window trajectory, and func-backed views
// over state owned by the merger (sorterMu) and the session table (m.mu).
// Func-backed series are evaluated outside the registry lock, so the
// closures here may take those locks freely.
func (m *Manager) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m.reg = reg
	m.received = reg.Counter(metrics.Desc{Name: "brisk_ism_records_received_total",
		Help: "records accepted from all external sensors", Unit: "records"})
	m.batches = reg.Counter(metrics.Desc{Name: "brisk_ism_batches_received_total",
		Help: "data-batch frames received, including replays", Unit: "batches"})
	m.relayBatches = reg.Counter(metrics.Desc{Name: "brisk_ism_relay_batches_received_total",
		Help: "relay-batch frames received from downstream relay-tier managers", Unit: "batches"})
	m.bytesIn = reg.Counter(metrics.Desc{Name: "brisk_ism_wire_bytes_in_total",
		Help: "wire payload bytes received from all sensors", Unit: "bytes"})
	m.emitted = reg.Counter(metrics.Desc{Name: "brisk_ism_records_emitted_total",
		Help: "sorted records delivered to the sinks", Unit: "records"})
	m.syncRounds = reg.Counter(metrics.Desc{Name: "brisk_ism_sync_rounds_total",
		Help: "completed clock-synchronization rounds", Unit: "rounds"})
	m.tachyonSyncs = reg.Counter(metrics.Desc{Name: "brisk_ism_tachyon_syncs_total",
		Help: "extra synchronization rounds requested by the causal matcher", Unit: "rounds"})
	m.filtered = reg.Counter(metrics.Desc{Name: "brisk_ism_records_filtered_total",
		Help: "sorted records suppressed by the configured filter", Unit: "records"})
	m.resumed = reg.Counter(metrics.Desc{Name: "brisk_ism_sessions_resumed_total",
		Help: "reconnections that reattached an existing session", Unit: "sessions"})
	m.deduped = reg.Counter(metrics.Desc{Name: "brisk_ism_batches_deduped_total",
		Help: "replayed batches dropped by the sequence-number filter", Unit: "batches"})
	m.deadPeers = reg.Counter(metrics.Desc{Name: "brisk_ism_dead_peers_total",
		Help: "connections severed by heartbeat timeout", Unit: "connections"})
	m.syncFailed = reg.Counter(metrics.Desc{Name: "brisk_ism_sync_failed_probes_total",
		Help: "slaves that yielded no usable offset estimate in a round", Unit: "slaves"})
	m.emitLat = reg.Histogram(metrics.Desc{Name: "brisk_ism_emit_latency_microseconds",
		Help: "delivery latency: manager clock at emission minus the record's corrected timestamp",
		Unit: "microseconds"})
	m.windowT = reg.Histogram(metrics.Desc{Name: "brisk_ols_window_trajectory_microseconds",
		Help: "on-line sorter window T sampled at every merge tick (its adaptation trajectory)",
		Unit: "microseconds"})
	m.syncSkew = reg.Histogram(metrics.Desc{Name: "brisk_ism_sync_skew_microseconds",
		Help: "mean relative clock skew observed per synchronization round",
		Unit: "microseconds"})
	m.syncProbes = reg.Counter(metrics.Desc{Name: "brisk_sync_probes_total",
		Help: "clock-synchronization probe round trips issued", Unit: "probes"})
	m.syncFallbacks = reg.Counter(metrics.Desc{Name: "brisk_sync_model_fallback_total",
		Help: "model-divergence events that forced full-round fallbacks", Unit: "events"})
	m.syncUncertainty = reg.Gauge(metrics.Desc{Name: "brisk_sync_uncertainty_us",
		Help: "largest predicted one-sigma offset uncertainty across slaves at the last sync round",
		Unit: "microseconds"})
	m.driftGauges = make(map[int32]*atomic.Uint64)
	m.queueStalls = reg.Counter(metrics.Desc{Name: "brisk_ism_decode_queue_stalls_total",
		Help: "data batches that found their session's decode queue full (the reader blocked, pushing backpressure into TCP)",
		Unit: "batches"})
	m.sinkBatchH = reg.Histogram(metrics.Desc{Name: "brisk_ism_sink_batch_records",
		Help: "records delivered per batched sink flush", Unit: "records"})
	m.creditWindowH = reg.Histogram(metrics.Desc{Name: "brisk_ism_credit_window",
		Help: "credit window granted per data-batch ack (records in flight the sensor may hold)",
		Unit: "records"})
	m.ackDeferredC = reg.Counter(metrics.Desc{Name: "brisk_ism_ack_deferred_total",
		Help: "data-batch acks withheld by the overload gate (released once the sorter drains)",
		Unit: "acks"})
	m.overloadPause = reg.Histogram(metrics.Desc{Name: "brisk_ism_overload_pause_microseconds",
		Help: "how long the ack gate stayed closed per overload episode (high watermark to low watermark)",
		Unit: "microseconds"})
	m.lossMarkersC = reg.Counter(metrics.Desc{Name: "brisk_ism_loss_markers_total",
		Help: "loss-marker records synthesized for records dropped at the sorter bound",
		Unit: "markers"})
	m.markedLostC = reg.Counter(metrics.Desc{Name: "brisk_ism_marked_lost_records_total",
		Help: "records represented by manager-synthesized loss markers",
		Unit: "records"})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ism_ack_gate_closed",
		Help: "1 while the overload gate is withholding acks, else 0"},
		func() float64 {
			if m.gateClosed.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ism_decode_workers",
		Help: "per-session decode workers currently running"},
		func() float64 { return float64(m.workersLive.Load()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ism_connected_sensors",
		Help: "external sensors currently attached"},
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.conns))
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ism_sessions",
		Help: "live sessions (attached or within the retention window)"},
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.sessions))
		})
	// The sharded sorter locks internally (per shard), so its views need
	// no sorterMu; the matcher views below still do.
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ols_window_microseconds",
		Help: "current on-line sorter window T (the adaptive time frame; max across shards)", Unit: "microseconds"},
		func() float64 { return float64(m.sorter.TimeFrame()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ols_heap_depth",
		Help: "records currently buffered inside the sorter's delay window (aggregate across shards, either core)", Unit: "records"},
		func() float64 { return float64(m.sorter.Buffered()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_ols_bucket_occupancy",
		Help: "live records in the fullest calendar bucket across shards (0 on the heap core or while the heap fallback is active)", Unit: "records"},
		func() float64 { return float64(m.sorter.MaxBucketOccupancy()) })
	reg.CounterFunc(metrics.Desc{Name: "brisk_ols_fallback_heap_total",
		Help: "times a calendar-core shard fell back to its binary heap (timestamp regression, tachyon beyond re-anchor reach, or hot-bucket imbalance)",
		Unit: "fallbacks"},
		func() uint64 { return m.sorter.Stats().HeapFallbacks })
	reg.CounterFunc(metrics.Desc{Name: "brisk_ols_calendar_rebuilds_total",
		Help: "times a calendar-core shard re-bucketed its ring at a doubled width (in-flight span outgrew the ring)",
		Unit: "rebuilds"},
		func() uint64 { return m.sorter.Stats().CalendarRebuilds })
	olsCounter := func(name, help string, get func(ols.Stats) uint64) {
		reg.CounterFunc(metrics.Desc{Name: name, Help: help, Unit: "records"}, func() uint64 {
			return get(m.sorter.Stats())
		})
	}
	olsCounter("brisk_ols_pushed_total", "records pushed into the on-line sorter",
		func(s ols.Stats) uint64 { return s.Pushed })
	olsCounter("brisk_ols_emitted_total", "records extracted from the on-line sorter in order",
		func(s ols.Stats) uint64 { return s.Emitted })
	olsCounter("brisk_ols_inversions_total", "records that arrived after a later-stamped record was emitted",
		func(s ols.Stats) uint64 { return s.Inversions })
	if m.shardN > 1 {
		reg.CounterFunc(metrics.Desc{Name: "brisk_ols_merge_stalls_total",
			Help: "extraction passes that emitted nothing while records were buffered (every shard head still inside its delay window)",
			Unit: "passes"},
			func() uint64 { return m.sorter.MergeStalls() })
		for i := 0; i < m.shardN; i++ {
			i := i
			labels := metrics.L("shard", strconv.Itoa(i))
			reg.GaugeFunc(metrics.Desc{Name: "brisk_ols_shard_window_microseconds",
				Help: "shard's current adaptive time frame T", Unit: "microseconds", Labels: labels},
				func() float64 { return float64(m.sorter.ShardTimeFrame(i)) })
			reg.GaugeFunc(metrics.Desc{Name: "brisk_ols_shard_buffered",
				Help: "records currently buffered in this shard's heaps", Unit: "records", Labels: labels},
				func() float64 { return float64(m.sorter.ShardBuffered(i)) })
			shardCounter := func(name, help string, get func(ols.Stats) uint64) {
				reg.CounterFunc(metrics.Desc{Name: name, Help: help, Unit: "records", Labels: labels},
					func() uint64 { return get(m.sorter.ShardStats(i)) })
			}
			shardCounter("brisk_ols_shard_pushed_total", "records pushed into this sorter shard",
				func(s ols.Stats) uint64 { return s.Pushed })
			shardCounter("brisk_ols_shard_emitted_total", "records this sorter shard handed to the k-way merge",
				func(s ols.Stats) uint64 { return s.Emitted })
			shardCounter("brisk_ols_shard_inversions_total", "records that arrived behind the merged emission frontier at this shard",
				func(s ols.Stats) uint64 { return s.Inversions })
			shardCounter("brisk_ols_shard_dropped_full_total", "records this shard dropped at the aggregate MaxBuffered or per-source quota bound",
				func(s ols.Stats) uint64 { return s.DroppedFull })
			reg.CounterFunc(metrics.Desc{Name: "brisk_ols_shard_fallback_heap_total",
				Help: "times this shard's calendar core fell back to its binary heap", Unit: "fallbacks", Labels: labels},
				func() uint64 { return m.sorter.ShardStats(i).HeapFallbacks })
		}
	}
	creCounter := func(name, help string, get func(cre.Stats) uint64) {
		reg.CounterFunc(metrics.Desc{Name: name, Help: help, Unit: "records"}, func() uint64 {
			m.sorterMu.Lock()
			defer m.sorterMu.Unlock()
			return get(m.matcher.Stats())
		})
	}
	creCounter("brisk_cre_processed_total", "records passed through the causal matcher",
		func(s cre.Stats) uint64 { return s.Processed })
	creCounter("brisk_cre_matched_total", "consequence records whose reason was found",
		func(s cre.Stats) uint64 { return s.Matched })
	creCounter("brisk_cre_tachyons_total", "consequence records whose timestamps had to be overridden",
		func(s cre.Stats) uint64 { return s.Tachyons })
	creCounter("brisk_cre_held_timed_out_total", "held consequences released because their reason never arrived",
		func(s cre.Stats) uint64 { return s.HeldTimedOut })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_cre_held_now",
		Help: "consequence records currently held awaiting their reason", Unit: "records"},
		func() float64 {
			m.sorterMu.Lock()
			defer m.sorterMu.Unlock()
			return float64(m.matcher.Stats().HeldNow)
		})
	reg.CounterFunc(metrics.Desc{Name: "brisk_ism_buffer_written_total",
		Help: "records published to the memory buffer sink", Unit: "records"},
		func() uint64 { return m.buffer.Written() })
	if m.cfg.Visual != nil {
		reg.CounterFunc(metrics.Desc{Name: "brisk_visual_lines_sent_total",
			Help: "PICL lines delivered to remote visual objects", Unit: "lines"},
			func() uint64 { sent, _ := m.cfg.Visual.Totals(); return sent })
		reg.CounterFunc(metrics.Desc{Name: "brisk_visual_lines_dropped_total",
			Help: "PICL lines dropped at slow visual consumers", Unit: "lines"},
			func() uint64 { _, dropped := m.cfg.Visual.Totals(); return dropped })
	}
	if m.cfg.TraceSampleEvery >= 0 {
		every := m.cfg.TraceSampleEvery
		if every == 0 {
			every = DefaultTraceSampleEvery
		}
		m.tracer = metrics.NewStageTracer(reg, "brisk_pipeline_stage_age_microseconds",
			"age of a sampled record (local clock minus record timestamp) on reaching each pipeline stage",
			every, "ism_ingest", "sorter_emit", "sink_deliver")
	}
}

// Metrics returns the registry holding the manager's series, for serving
// through an introspection endpoint.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Addr returns the bound listen address.
func (m *Manager) Addr() string { return m.ln.Addr().String() }

// Buffer returns the memory buffer consumer tools read.
func (m *Manager) Buffer() *shm.Buffer { return m.buffer }

// NewCursor returns a cursor over the sorted output stream. Records are
// stored framed exactly as the NOTICE encoders wrote them, prefixed with a
// 4-byte big-endian node id for attribution.
func (m *Manager) NewCursor() *shm.Cursor { return m.buffer.NewCursor() }

// DecodeBuffered decodes one memory-buffer entry produced by this manager.
func DecodeBuffered(p []byte) (record.Record, error) {
	if len(p) < 4 {
		return record.Record{}, errors.New("ism: short buffer entry")
	}
	node := int32(uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3]))
	rec, _, err := record.Decode(p[4:])
	if err != nil {
		return record.Record{}, err
	}
	rec.Node = node
	return rec, nil
}

// Serve runs the accept loop, merger, and synchronization master until
// Close. It always returns a non-nil error (net.ErrClosed after Close).
func (m *Manager) Serve() error {
	m.wg.Add(1)
	go m.mergeLoop()
	if m.cfg.SyncPeriod > 0 {
		m.wg.Add(1)
		go m.syncLoop()
	}
	if m.cfg.HeartbeatInterval > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return err
		}
		m.wgConns.Add(1)
		go func() {
			defer m.wgConns.Done()
			m.handleConn(raw)
		}()
	}
}

// Start launches Serve on its own goroutine.
func (m *Manager) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		if err := m.Serve(); err != nil && !errors.Is(err, net.ErrClosed) {
			m.logf("ism: serve: %v", err)
		}
	}()
}

func (m *Manager) handleConn(raw net.Conn) {
	defer raw.Close()
	wc := wire.NewConn(raw)
	msg, err := wc.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok || hello.Version < wire.MinProtocolVersion || hello.Version > wire.ProtocolVersion {
		m.logf("ism: bad hello from %v", raw.RemoteAddr())
		return
	}
	// Pin the connection to the peer's version: a v3 sensor or relay gets
	// v3-shaped frames (no ADJUST rate field, no ack version echo) in both
	// directions for the life of the connection.
	wc.SetVersion(hello.Version)
	c := &conn{
		name:    hello.Name,
		wc:      wc,
		raw:     raw,
		replies: make(chan *wire.ProbeReply, 8),
	}
	c.lastRecv.Store(time.Now().UnixNano())

	var sess *session
	var evict *conn
	resumed := false
	m.mu.Lock()
	if hello.Session != 0 {
		if s, ok := m.sessions[hello.Session]; ok && hello.Resume {
			// Reattach: same node id, dedupe state intact. If the old
			// connection is still draining (half-open link the sensor gave
			// up on first), evict it — the session follows the newest link.
			sess = s
			resumed = true
		}
	}
	if sess == nil {
		m.nextNode++
		sess = &session{
			node: m.nextNode,
			work: make(chan pending, m.cfg.DecodeQueueDepth),
			free: make(chan []byte, m.cfg.DecodeQueueDepth+2),
			quit: make(chan struct{}),
		}
		if hello.Session != 0 {
			sess.id = hello.Session
			m.sessions[hello.Session] = sess
			labels := metrics.L(
				"node", strconv.FormatInt(int64(sess.node), 10),
				"session", strconv.FormatUint(sess.id, 16))
			sess.batchesC = m.reg.Counter(metrics.Desc{
				Name: "brisk_ism_session_batches_total",
				Help: "data batches accepted into the merger, per session",
				Unit: "batches", Labels: labels})
			sess.dedupedC = m.reg.Counter(metrics.Desc{
				Name: "brisk_ism_session_deduped_total",
				Help: "replayed batches dropped by the sequence filter, per session",
				Unit: "batches", Labels: labels})
		}
		m.wgWorkers.Add(1)
		go m.decodeLoop(sess)
	}
	c.node = sess.node
	c.sess = sess
	sess.mu.Lock()
	evict = sess.cur
	sess.cur = c
	sess.name = hello.Name
	lastSeq := sess.lastSeq
	sess.mu.Unlock()
	m.conns[c.node] = c
	m.attachedN.Store(int64(len(m.conns)))
	closing := m.closed.Load()
	m.mu.Unlock()
	if closing {
		// Raced with Close after it snapshotted the connection table: sever
		// ourselves so shutdown does not wait on this reader forever.
		c.gone.Store(true)
		raw.Close()
	}
	if evict != nil && evict != c {
		evict.gone.Store(true)
		evict.raw.Close()
	}
	if resumed {
		m.resumed.Inc()
	}
	defer func() {
		c.gone.Store(true)
		m.mu.Lock()
		// Resume may already have replaced this node's entry; only remove
		// what is still ours.
		if m.conns[c.node] == c {
			delete(m.conns, c.node)
			m.attachedN.Store(int64(len(m.conns)))
		}
		sess.mu.Lock()
		if sess.cur == c {
			sess.cur = nil
			sess.detachedAt = time.Now()
		}
		sess.mu.Unlock()
		if sess.id == 0 {
			// Sessionless sensors die with their connection; retire the
			// decode worker once it drains what we queued.
			sess.stop()
		} else if m.cfg.SessionRetention < 0 {
			delete(m.sessions, sess.id)
			m.unregisterSession(sess)
			sess.stop()
		}
		m.mu.Unlock()
	}()
	// The hello ack cannot be deferred — the sensor needs it to finish its
	// handshake — so a closed gate grants a trickle window of 1: enough to
	// keep the resume protocol moving without feeding the overload.
	helloWindow, open := m.grantWindow(sess)
	if !open {
		helloWindow = 1
	}
	if err := wc.Send(&wire.HelloAck{Node: c.node, Resumed: resumed, LastSeq: lastSeq,
		Window: helloWindow, Version: hello.Version}); err != nil {
		return
	}
	if resumed {
		m.logf("ism: node %d (%s) resumed session (last seq %d)", c.node, c.name, lastSeq)
	} else {
		m.logf("ism: node %d (%s) connected", c.node, c.name)
	}

	for {
		msg, err := wc.RecvReuse()
		if err != nil {
			if !m.closed.Load() && !c.gone.Load() {
				m.logf("ism: node %d: %v", c.node, err)
			}
			return
		}
		c.lastRecv.Store(time.Now().UnixNano())
		switch t := msg.(type) {
		case *wire.DataBatch:
			if !m.acceptBatch(wc, sess, t.Seq, t.Count, &t.Payload, false) {
				return
			}
		case *wire.RelayBatch:
			m.relayBatches.Inc()
			if !m.acceptBatch(wc, sess, t.Seq, t.Count, &t.Payload, true) {
				return
			}
		case *wire.ProbeReply:
			// The reused message is recycled on the next RecvReuse; the
			// sync master holds replies across frames, so copy.
			pr := *t
			select {
			case c.replies <- &pr:
			default: // stale reply, drop
			}
		case *wire.Pong:
			// Heartbeat answer; lastRecv above is all it needed to say.
		case *wire.Bye:
			return
		default:
			m.logf("ism: node %d: unexpected %v", c.node, msg.Type())
			return
		}
	}
}

// acceptBatch runs the shared ingest path for one DataBatch or RelayBatch
// frame: dedupe by session sequence, hand the payload to the session's
// decode worker (swapping a recycled buffer into the reused wire message
// via payload), and ack or defer. Returns false when the connection must
// be dropped.
func (m *Manager) acceptBatch(wc *wire.Conn, sess *session, seq uint64, count uint32, payload *[]byte, relay bool) bool {
	m.batches.Inc()
	m.bytesIn.Add(uint64(len(*payload)))
	if seq != 0 && sess.id != 0 {
		sess.mu.Lock()
		dup := seq <= sess.lastSeq
		high := sess.lastSeq
		sess.mu.Unlock()
		if dup {
			// Replay of a batch merged before the link broke. Re-ack so
			// the sender can release it (or defer the re-ack like any
			// other when the gate is closed).
			m.deduped.Inc()
			if sess.dedupedC != nil {
				sess.dedupedC.Inc()
			}
			return m.ackOrDefer(wc, sess, high) == nil
		}
	}
	// Hand the payload to the session's decode worker. RecvReuse lets us
	// take ownership by swapping in a recycled buffer: the next frame
	// decodes into that instead, so a steady stream allocates no payload
	// storage at all.
	pb := pending{count: count, payload: *payload, relay: relay}
	select {
	case *payload = <-sess.free:
	default:
		*payload = nil
	}
	sess.inflight.Add(int64(pb.count))
	select {
	case sess.work <- pb:
	default:
		// Queue full: the decode worker is behind. Block here so
		// backpressure reaches the sender through TCP.
		m.queueStalls.Inc()
		select {
		case sess.work <- pb:
		case <-sess.quit:
			return false
		case <-m.done:
			return false
		}
	}
	if sess.batchesC != nil {
		sess.batchesC.Inc()
	}
	// Ack once the batch is queued: the worker owns it from here and
	// shutdown drains the queue, so an acked batch is never lost — under
	// overload it is either merged or represented by a loss-marker
	// record, never silently discarded. When the sorter is past its high
	// watermark the ack is deferred instead: the sender's credit runs dry
	// and it pauses until the merger releases the ack.
	if seq != 0 && sess.id != 0 {
		sess.mu.Lock()
		if seq > sess.lastSeq {
			sess.lastSeq = seq
		}
		sess.mu.Unlock()
		if err := m.ackOrDefer(wc, sess, seq); err != nil {
			return false
		}
	}
	return true
}

// unregisterSession drops a dead session's labeled series so the registry
// does not accumulate one pair of counters per sensor lifetime forever.
func (m *Manager) unregisterSession(s *session) {
	if s.batchesC == nil {
		return
	}
	labels := metrics.L(
		"node", strconv.FormatInt(int64(s.node), 10),
		"session", strconv.FormatUint(s.id, 16))
	m.reg.Unregister("brisk_ism_session_batches_total", labels)
	m.reg.Unregister("brisk_ism_session_deduped_total", labels)
}

// grantWindow sizes a credit grant for one session: its fair share of the
// sorter headroom below the high watermark, minus what it already has in
// flight inside the manager. ok is false when the ack must be deferred
// (gate closed or the share is exhausted). With flow control disabled it
// returns (0, true): window 0 on the wire means unlimited credit.
func (m *Manager) grantWindow(s *session) (uint32, bool) {
	if !m.flowEnabled {
		return 0, true
	}
	if m.gateClosed.Load() {
		return 0, false
	}
	att := m.attachedN.Load()
	if att < 1 {
		att = 1
	}
	w := m.headroom.Load()/att - s.inflight.Load()
	if w <= 0 {
		return 0, false
	}
	if w > int64(m.maxWindow) {
		w = int64(m.maxWindow)
	}
	return uint32(w), true
}

// ackOrDefer sends a cumulative data ack carrying a credit window, or —
// when the overload gate withholds it — records the sequence for the
// merger to acknowledge once the sorter drains. A deferred ack is the
// protocol's halt signal: the manager never sends an explicit zero
// window, so a sensor out of credit is always woken by a later ack.
func (m *Manager) ackOrDefer(wc *wire.Conn, s *session, seq uint64) error {
	w, ok := m.grantWindow(s)
	if ok {
		if m.flowEnabled {
			m.creditWindowH.Observe(int64(w))
		}
		return wc.Send(&wire.DataAck{Seq: seq, Window: w})
	}
	if s.deferred.Swap(seq) == 0 {
		m.deferredPending.Add(1)
	}
	m.ackDeferredC.Inc()
	return nil
}

// updateGate runs the watermark hysteresis after a merge event. buffered
// is the aggregate sorter occupancy just sampled; the call itself runs
// outside the sorter locks so releasing deferred acks (which takes m.mu
// and writes to peer connections) never extends a merge critical
// section. gateMu serializes concurrent callers — in sharded mode every
// decode worker updates the gate after its pushes, not just the merger.
func (m *Manager) updateGate(buffered int, now int64) {
	if !m.flowEnabled {
		return
	}
	if m.cfg.GateBacklog != nil {
		// Records stalled downstream of this manager (a relay's uplink
		// backlog) occupy the same budget as records inside the sorter:
		// a parent withholding acks closes this gate too.
		buffered += m.cfg.GateBacklog()
	}
	m.gateMu.Lock()
	defer m.gateMu.Unlock()
	m.headroom.Store(int64(m.ackHigh - buffered))
	if m.gateClosed.Load() {
		if buffered <= m.ackLow {
			m.gateClosed.Store(false)
			m.overloadPause.Observe(now - m.gateClosedAt)
		}
	} else if buffered >= m.ackHigh {
		m.gateClosed.Store(true)
		m.gateClosedAt = now
	}
	if !m.gateClosed.Load() {
		m.releaseDeferred()
	}
}

// releaseDeferred acknowledges every deferred batch whose session can be
// granted credit again. Runs under gateMu; the scratch slice is reused
// so an idle manager's ticks stay allocation-free.
func (m *Manager) releaseDeferred() {
	if m.deferredPending.Load() == 0 {
		return
	}
	m.mu.Lock()
	conns := m.connScratch[:0]
	for _, c := range m.conns {
		conns = append(conns, c)
	}
	m.connScratch = conns
	m.mu.Unlock()
	for _, c := range conns {
		s := c.sess
		if s == nil || c.gone.Load() {
			continue
		}
		seq := s.deferred.Load()
		if seq == 0 {
			continue
		}
		w, ok := m.grantWindow(s)
		if !ok {
			continue
		}
		// The reader may have deferred a newer sequence meanwhile; the
		// failed swap keeps it pending for the next tick.
		if !s.deferred.CompareAndSwap(seq, 0) {
			continue
		}
		m.deferredPending.Add(-1)
		m.creditWindowH.Observe(int64(w))
		if err := c.wc.Send(&wire.DataAck{Seq: seq, Window: w}); err != nil {
			c.raw.Close() // the reader notices and cleans up
		}
	}
}

// harvestLosses converts the sorter's per-source drop accumulators into
// loss-marker records injected into the output stream, and reconciles the
// per-source drop counters. Runs with sorterMu held, after a merge event's
// pushes; the markers bypass the causal matcher (they carry no causal
// fields) and are exempt from the sink filter.
func (m *Manager) harvestLosses() {
	m.sorter.TakeLosses(func(src int32, count uint64, firstTS, lastTS int64) {
		rec := record.NewLossMarker(count, firstTS, lastTS)
		rec.Node = src
		m.lossMarkersC.Inc()
		m.markedLostC.Add(count)
		m.srcDropCounter(src).Add(count)
		m.collect(rec)
	})
}

// srcDropCounter returns the per-source labeled drop counter, creating it
// on the source's first drop. Merger-owned.
func (m *Manager) srcDropCounter(src int32) *metrics.Counter {
	if c, ok := m.srcDropC[src]; ok {
		return c
	}
	c := m.reg.Counter(metrics.Desc{
		Name:   "brisk_ols_dropped_full_total",
		Help:   "records dropped at the sorter's MaxBuffered or per-source quota bound",
		Unit:   "records",
		Labels: metrics.L("source", strconv.FormatInt(int64(src), 10)),
	})
	m.srcDropC[src] = c
	return c
}

// decodeLoop is one session's decode worker: it turns queued wire payloads
// into pooled record batches and feeds the merger. One worker per session —
// not per connection — so N sessions decode in parallel while each source's
// batches stay FIFO, across reconnects included. The worker outlives its
// connections and stops either with its session or at shutdown (after the
// readers are gone), draining queued work first so acked batches survive.
func (m *Manager) decodeLoop(s *session) {
	defer m.wgWorkers.Done()
	m.workersLive.Add(1)
	defer m.workersLive.Add(-1)
	for {
		select {
		case pb := <-s.work:
			m.decodeOne(s, pb)
		case <-s.quit:
			m.drainWork(s)
			return
		case <-m.stopWorkers:
			m.drainWork(s)
			return
		}
	}
}

// drainWork decodes everything still queued; the readers have stopped, so
// the queue can only shrink.
func (m *Manager) drainWork(s *session) {
	for {
		select {
		case pb := <-s.work:
			m.decodeOne(s, pb)
		default:
			return
		}
	}
}

// decodeOne decodes one batch into a pooled record slice and hands it to
// the merger. The payload buffer goes back to the session's reader; the
// batch comes back from the merger via the pool. A malformed batch severs
// the link — it was already acked, so the sensor must not replay the
// poison frame forever.
func (m *Manager) decodeOne(s *session, pb pending) {
	bp := record.GetBatch()
	var recs []record.Record
	var err error
	if pb.relay {
		recs, err = record.DecodeNodeAppend((*bp)[:0], pb.payload)
	} else {
		recs, err = record.DecodeAppend((*bp)[:0], pb.payload)
	}
	if err == nil && uint32(len(recs)) != pb.count {
		err = fmt.Errorf("batch declared %d records, contained %d", pb.count, len(recs))
	}
	select {
	case s.free <- pb.payload[:0]:
	default:
	}
	if err != nil {
		*bp = recs
		record.PutBatch(bp)
		s.inflight.Add(-int64(pb.count))
		m.logf("ism: node %d: bad batch: %v", s.node, err)
		s.severCurrent()
		return
	}
	*bp = recs
	m.received.Add(uint64(len(recs)))
	if m.tracer != nil && len(recs) > 0 && m.tracer.ShouldSample(stageIngest) {
		if r := &recs[0]; r.HasTS {
			m.tracer.Observe(stageIngest, m.clock.NowMicros()-r.TS)
		}
	}
	if m.shardN > 1 {
		// Sharded mode: push straight into this source's sorter shard
		// instead of funnelling through the merge channel — decode workers
		// for sources on different shards no longer serialize. Extraction
		// (and everything downstream of it) stays with the merger; wake it
		// when a sink batch's worth has built up so backlog drains at
		// ingest rate, not merge-tick rate.
		now := m.clock.NowMicros()
		if pb.relay {
			m.sorter.PushMixed(recs, now)
		} else {
			m.sorter.PushBatch(s.node, recs, now)
		}
		record.PutBatch(bp)
		s.inflight.Add(-int64(pb.count))
		m.updateGate(m.sorter.Buffered(), now)
		if m.sorter.Buffered() >= m.sinkBatch {
			select {
			case m.extractNow <- struct{}{}:
			default:
			}
		}
		return
	}
	select {
	case m.merge <- srcBatch{node: s.node, batch: bp, sess: s, mixed: pb.relay}:
	case <-m.done:
		record.PutBatch(bp)
		s.inflight.Add(-int64(pb.count))
	}
}

// mergeLoop is the single goroutine that owns the sorter, the matcher and
// the sinks.
func (m *Manager) mergeLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.MergeInterval)
	defer ticker.Stop()
	for {
		select {
		case b := <-m.merge:
			m.mergeBatch(b)
		case <-m.extractNow:
			m.extractTick()
		case <-ticker.C:
			m.extractTick()
		case <-m.done:
			// The readers and decode workers are gone (Close waits on them
			// before closing done), so the merge channel can only shrink:
			// drain it, then flush everything still buffered.
			for {
				select {
				case b := <-m.merge:
					now := m.clock.NowMicros()
					m.sorterMu.Lock()
					if b.mixed {
						m.sorter.PushMixed(*b.batch, now)
					} else {
						m.sorter.PushBatch(b.node, *b.batch, now)
					}
					m.sorterMu.Unlock()
					if b.sess != nil {
						b.sess.inflight.Add(-int64(len(*b.batch)))
					}
					record.PutBatch(b.batch)
					continue
				default:
				}
				break
			}
			now := m.clock.NowMicros()
			m.sorterMu.Lock()
			m.emitNow = now
			m.sorter.Flush(m.sinkRecord)
			m.matcher.Flush(m.collect)
			m.harvestLosses()
			m.flushSinks(now)
			m.sorterMu.Unlock()
			m.buffer.Close()
			if m.cfg.PICL != nil {
				if err := m.cfg.PICL.Flush(); err != nil {
					m.logf("ism: picl flush: %v", err)
				}
			}
			return
		}
	}
}

// extractTick is one merger extraction pass: drain every aged record
// out of the sorter (merged across shards), tick the matcher, harvest
// losses, and flush the sinks. With one shard it runs on the merge
// interval; with several it also runs whenever a decode worker signals
// a built-up backlog.
func (m *Manager) extractTick() {
	now := m.clock.NowMicros()
	m.sorterMu.Lock()
	m.emitNow = now
	m.windowT.Observe(m.sorter.TimeFrame())
	m.sorter.Extract(now, m.sinkRecord)
	m.matcher.Tick(now, m.collect)
	m.harvestLosses()
	m.flushSinks(now)
	buffered := m.sorter.Buffered()
	m.sorterMu.Unlock()
	m.updateGate(buffered, now)
}

// mergeBatch pushes one decoded batch through the sorter and flushes the
// emitted records to the sinks as a unit — one clock read, one buffer lock
// per merge event instead of per record.
func (m *Manager) mergeBatch(b srcBatch) {
	now := m.clock.NowMicros()
	m.sorterMu.Lock()
	if b.mixed {
		m.sorter.PushMixed(*b.batch, now)
	} else {
		m.sorter.PushBatch(b.node, *b.batch, now)
	}
	n := len(*b.batch)
	// Push deep-copies into sorter-owned storage; the batch can go back to
	// the pool before extraction.
	record.PutBatch(b.batch)
	m.emitNow = now
	m.sorter.Extract(now, m.sinkRecord)
	m.harvestLosses()
	m.flushSinks(now)
	buffered := m.sorter.Buffered()
	m.sorterMu.Unlock()
	if b.sess != nil {
		b.sess.inflight.Add(-int64(n))
	}
	m.updateGate(buffered, now)
}

// sinkRecord feeds one sorted record through the CRE matcher toward the
// sinks. Runs with sorterMu held.
func (m *Manager) sinkRecord(rec record.Record) {
	if m.tracer != nil && rec.HasTS && m.tracer.ShouldSample(stageSorterEmit) {
		m.tracer.Observe(stageSorterEmit, m.emitNow-rec.TS)
	}
	m.matcher.Process(rec, m.emitNow, m.collect)
}

// collect accumulates one fully-processed record for the next sink flush.
// The record still borrows sorter-slot Fields storage; that stays valid
// because nothing is pushed into the sorter before flushSinks runs.
func (m *Manager) collect(rec record.Record) {
	m.out = append(m.out, rec)
	if len(m.out) >= m.sinkBatch {
		m.flushSinks(m.emitNow)
	}
}

// flushSinks delivers every collected record to the sinks in one pass:
// encodes into recycled per-record buffers, publishes them to the memory
// buffer under a single lock, and streams PICL/visual lines. Runs with
// sorterMu held.
func (m *Manager) flushSinks(now int64) {
	if len(m.out) == 0 {
		return
	}
	n := 0
	for i := range m.out {
		rec := &m.out[i]
		// Loss markers are exempt from the filter: the whole point of the
		// marker is that no consumer can miss the gap.
		if m.cfg.Filter != nil && rec.Event != record.LossEvent && !m.cfg.Filter(rec) {
			m.filtered.Inc()
			continue
		}
		m.emitted.Inc()
		if m.cfg.Forward != nil {
			m.cfg.Forward(rec)
		}
		if rec.HasTS {
			age := now - rec.TS
			m.emitLat.Observe(age)
			if m.tracer != nil && m.tracer.ShouldSample(stageSinkDeliver) {
				m.tracer.Observe(stageSinkDeliver, age)
			}
		}
		// Memory buffer: node prefix + the NOTICE binary structure.
		for n >= len(m.sinkBufs) {
			m.sinkBufs = append(m.sinkBufs, nil)
		}
		buf := append(m.sinkBufs[n][:0],
			byte(uint32(rec.Node)>>24), byte(uint32(rec.Node)>>16),
			byte(uint32(rec.Node)>>8), byte(uint32(rec.Node)))
		buf, err := rec.Append(buf)
		if err != nil {
			m.logf("ism: encode for buffer: %v", err)
		} else {
			m.sinkBufs[n] = buf
			n++
			if m.cfg.Tap != nil {
				m.cfg.Tap.Publish(rec, buf, now)
			}
		}
		if m.cfg.PICL != nil {
			if err := m.cfg.PICL.WriteRecord(rec); err != nil {
				m.logf("ism: picl write: %v", err)
			}
		}
		if m.cfg.Visual != nil && m.cfg.Visual.Len() > 0 {
			m.visualBuf.buf = m.visualBuf.buf[:0]
			if err := m.visualPICL.WriteRecord(rec); err == nil {
				if err := m.visualPICL.Flush(); err == nil {
					line := string(m.visualBuf.buf)
					if l := len(line); l > 0 && line[l-1] == '\n' {
						line = line[:l-1]
					}
					m.cfg.Visual.Dispatch(line)
				}
			}
		}
	}
	m.buffer.PublishBatch(m.sinkBufs[:n])
	if m.cfg.Tap != nil {
		m.cfg.Tap.EndFlush()
	}
	m.sinkBatchH.Observe(int64(len(m.out)))
	m.out = m.out[:0]
}

// heartbeatLoop pings every attached sensor each interval and severs
// peers that have been silent for HeartbeatMisses intervals — the
// half-open links a stalled network leaves behind. It also expires
// detached sessions past the retention window.
func (m *Manager) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
		}
		deadline := time.Now().Add(-time.Duration(m.cfg.HeartbeatMisses) * m.cfg.HeartbeatInterval).UnixNano()
		m.mu.Lock()
		conns := make([]*conn, 0, len(m.conns))
		for _, c := range m.conns {
			conns = append(conns, c)
		}
		if m.cfg.SessionRetention > 0 {
			cutoff := time.Now().Add(-m.cfg.SessionRetention)
			for id, s := range m.sessions {
				s.mu.Lock()
				expired := s.cur == nil && !s.detachedAt.IsZero() && s.detachedAt.Before(cutoff)
				s.mu.Unlock()
				if expired {
					delete(m.sessions, id)
					m.unregisterSession(s)
					s.stop()
					m.logf("ism: session of node %d expired", s.node)
				}
			}
		}
		m.mu.Unlock()
		for _, c := range conns {
			if c.gone.Load() {
				continue
			}
			if c.lastRecv.Load() < deadline {
				m.deadPeers.Inc()
				m.logf("ism: node %d (%s) missed %d heartbeats, disconnecting",
					c.node, c.name, m.cfg.HeartbeatMisses)
				c.raw.Close() // handleConn's Recv fails and cleans up
				continue
			}
			if err := c.wc.Send(&wire.Ping{Seq: c.pingSeq.Add(1)}); err != nil {
				c.raw.Close()
			}
		}
	}
}

// connSlave adapts an attached external sensor to clocksync.SlaveConn.
type connSlave struct {
	m *Manager
	c *conn
}

// Exchange implements clocksync.SlaveConn over the wire protocol.
func (s *connSlave) Exchange() (int64, error) {
	if s.c.gone.Load() {
		return 0, errors.New("ism: slave disconnected")
	}
	seq := s.c.seq.Add(1)
	if err := s.c.wc.Send(&wire.Probe{Seq: seq, MasterSend: s.m.clock.NowMicros()}); err != nil {
		return 0, err
	}
	deadline := time.NewTimer(s.m.cfg.ProbeTimeout)
	defer deadline.Stop()
	for {
		select {
		case r := <-s.c.replies:
			if r.Seq != seq {
				continue // stale
			}
			return r.SlaveTime, nil
		case <-deadline.C:
			return 0, errors.New("ism: probe timeout")
		case <-s.m.done:
			return 0, errors.New("ism: shutting down")
		}
	}
}

// Adjust implements clocksync.SlaveConn. RatePPB −1 leaves the slave's
// extrapolation rate untouched: under the fixed-cadence master slaves
// never extrapolate, exactly as before rates existed.
func (s *connSlave) Adjust(delta int64) error {
	return s.c.wc.Send(&wire.Adjust{DeltaMicros: delta, RatePPB: -1})
}

// AdjustRate implements clocksync.RateConn: a zero-step adjustment whose
// rate field steers the slave's correction growth between probes. A v3
// peer has no rate field to steer, so the command is refused and the
// master leaves the slave on step corrections only.
func (s *connSlave) AdjustRate(ppm float64) error {
	if s.c.wc.Version() < wire.VersionRates {
		return errors.New("ism: peer protocol version predates rate steering")
	}
	return s.c.wc.Send(&wire.Adjust{RatePPB: int64(ppm * 1000)})
}

// syncLoop runs periodic synchronization rounds, plus the immediate extra
// rounds requested by the CRE matcher after a tachyon.
func (m *Manager) syncLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SyncPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.runSyncRound()
		case <-m.syncNow:
			m.runSyncRound()
		case <-m.done:
			return
		}
	}
}

// runSyncRound builds the slave set from the currently attached sensors
// and performs one round. The master persists across rounds: under
// model-based scheduling (Sync.UncertaintyBound > 0) each slave's drift +
// offset estimator is keyed by node id, so it survives both round
// boundaries and reconnections, and only the slaves whose model
// uncertainty demands it are actually probed.
func (m *Manager) runSyncRound() {
	m.mu.Lock()
	slaves := make([]clocksync.SlaveConn, 0, len(m.conns))
	keys := make([]uint64, 0, len(m.conns))
	nodes := make([]int32, 0, len(m.conns))
	for _, c := range m.conns {
		slaves = append(slaves, &connSlave{m: m, c: c})
		keys = append(keys, uint64(uint32(c.node)))
		nodes = append(nodes, c.node)
	}
	m.mu.Unlock()
	if len(slaves) == 0 {
		return
	}
	if m.syncMaster == nil {
		m.syncMaster = clocksync.NewMaster(m.clock, m.cfg.Sync, nil)
	}
	m.syncMaster.SetSlaves(slaves, keys)
	rep, err := m.syncMaster.Round()
	m.syncProbes.Add(uint64(rep.Probes))
	m.publishSyncModel(nodes, rep)
	if err != nil {
		m.logf("ism: sync round: %v", err)
		return
	}
	if rep.Failed > 0 {
		m.logf("ism: sync round %d: %d slave(s) unreachable", rep.Round, rep.Failed)
		m.syncFailed.Add(uint64(rep.Failed))
	}
	if rep.Fallbacks > 0 {
		m.logf("ism: sync round %d: %d model divergence(s), falling back to full rounds", rep.Round, rep.Fallbacks)
		m.syncFallbacks.Add(uint64(rep.Fallbacks))
	}
	m.syncSkew.Observe(int64(rep.Corrections.AvgRelSkew))
	m.syncRounds.Inc()
}

// publishSyncModel exports the round's per-slave model state: one
// brisk_sync_drift_ppm gauge per node (milli-ppm resolution) and the
// fleet-wide worst predicted uncertainty. Gauges of nodes that left the
// fleet are unregistered so a long-lived manager with churning node ids
// does not accumulate series without bound.
func (m *Manager) publishSyncModel(nodes []int32, rep clocksync.RoundReport) {
	if len(m.driftGauges) > len(nodes) {
		current := make(map[int32]bool, len(nodes))
		for _, node := range nodes {
			current[node] = true
		}
		for node := range m.driftGauges {
			if !current[node] {
				m.reg.Unregister("brisk_sync_drift_ppm",
					metrics.L("slave", strconv.FormatInt(int64(node), 10)))
				delete(m.driftGauges, node)
			}
		}
	}
	var maxU float64
	haveU := false
	for i, node := range nodes {
		if i < len(rep.UncertaintyUS) && !math.IsNaN(rep.UncertaintyUS[i]) {
			if !haveU || rep.UncertaintyUS[i] > maxU {
				maxU = rep.UncertaintyUS[i]
				haveU = true
			}
		}
		if i >= len(rep.DriftPPM) || math.IsNaN(rep.DriftPPM[i]) {
			continue
		}
		v, ok := m.driftGauges[node]
		if !ok {
			v = new(atomic.Uint64)
			vv := v
			m.reg.GaugeFunc(metrics.Desc{Name: "brisk_sync_drift_ppm",
				Help:   "estimated residual clock drift per slave",
				Unit:   "ppm",
				Labels: metrics.L("slave", strconv.FormatInt(int64(node), 10))},
				func() float64 { return math.Float64frombits(vv.Load()) })
			m.driftGauges[node] = v
		}
		v.Store(math.Float64bits(rep.DriftPPM[i]))
	}
	if haveU {
		m.syncUncertainty.Set(int64(maxU))
	}
}

// SyncRound triggers one synchronization round immediately (used by tests
// and tools).
func (m *Manager) SyncRound() {
	select {
	case m.syncNow <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	connected := len(m.conns)
	sessions := len(m.sessions)
	m.mu.Unlock()
	m.sorterMu.Lock()
	cs := m.matcher.Stats()
	m.sorterMu.Unlock()
	ss := m.sorter.Stats()
	buffered := m.sorter.Buffered()
	lat := m.emitLat.Snapshot()
	return Stats{
		Connected:             connected,
		Received:              m.received.Value(),
		Emitted:               m.emitted.Value(),
		Batches:               m.batches.Value(),
		RelayBatches:          m.relayBatches.Value(),
		BytesIn:               m.bytesIn.Value(),
		Sorter:                ss,
		CRE:                   cs,
		SyncRounds:            m.syncRounds.Value(),
		SyncProbes:            m.syncProbes.Value(),
		SyncFallbacks:         m.syncFallbacks.Value(),
		TachyonSyncs:          m.tachyonSyncs.Value(),
		Filtered:              m.filtered.Value(),
		ResumedSessions:       m.resumed.Value(),
		DedupedBatches:        m.deduped.Value(),
		DeadPeers:             m.deadPeers.Value(),
		AckDeferred:           m.ackDeferredC.Value(),
		LossMarkers:           m.lossMarkersC.Value(),
		MarkedLost:            m.markedLostC.Value(),
		CreditGateClosed:      m.gateClosed.Load(),
		SorterBuffered:        buffered,
		SorterShards:          m.shardN,
		Sessions:              sessions,
		EmitLatencyMeanMicros: lat.Mean(),
		EmitLatencyP99Micros:  lat.Quantile(0.99),
	}
}

// Close shuts the manager down in pipeline order: stop accepting, sever
// the sensors and wait for their readers, retire the decode workers (they
// drain their queues first), then close done so the merger drains the
// merge channel and flushes the sorter and sinks. Every batch that was
// acked before Close is delivered.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	err := m.ln.Close()
	m.mu.Lock()
	for _, c := range m.conns {
		c.gone.Store(true)
		c.raw.Close()
	}
	m.mu.Unlock()
	m.wgConns.Wait()
	close(m.stopWorkers)
	m.wgWorkers.Wait()
	close(m.done)
	m.wg.Wait()
	return err
}
