package ism

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/ols"
	"brisk/internal/sensor"
	"brisk/internal/shm"
)

// TestSoakEightSessionsWithFlaps is the parallel-ingest soak: eight
// sessions stream concurrently through individual faultnet proxies whose
// links flap mid-run, exercising eight decode workers, session resume and
// retransmission all at once (run under -race via `make test-race`). The
// manager's output must contain every record from every session exactly
// once (multiset equality), per-session emission must preserve source
// order, and — because the sorter window is configured to cover even the
// flap-induced retransmission lateness — global emission must be monotone
// in timestamp.
func TestSoakEightSessionsWithFlaps(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		sessions  = 8
		perNode   = 400
		flapEvery = 120 // records between link cuts, per flapping node
	)
	m := newManager(t, Config{
		BufferRecords: sessions * perNode * 2,
		// A 2 s window dwarfs any reconnect-and-retransmit delay the flaps
		// can cause, so every record ages into order before emission.
		Sorter: ols.Config{InitialT: 2_000_000},
	})

	type node struct {
		e     *exs.EXS
		s     *sensor.Sensor
		proxy *faultnet.Proxy
	}
	nodes := make([]*node, sessions)
	for i := range nodes {
		proxy, err := faultnet.Listen(m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		region := shm.NewRegion()
		e, err := exs.Dial(exs.Config{
			ManagerAddr:          proxy.Addr(),
			NodeName:             fmt.Sprintf("soak-%d", i),
			Region:               region,
			FlushInterval:        time.Millisecond,
			PollInterval:         200 * time.Microsecond,
			ReconnectBase:        2 * time.Millisecond,
			ReconnectMax:         10 * time.Millisecond,
			MaxReconnectAttempts: -1,
			Logf:                 quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		nodes[i] = &node{e: e, s: sensor.New(region, "app", sensor.Options{}), proxy: proxy}
	}

	// All sessions emit concurrently; odd-numbered nodes flap their links
	// every flapEvery records, cutting mid-stream wherever the bytes land.
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			for seq := int32(0); seq < perNode; seq++ {
				if i%2 == 1 && seq > 0 && seq%flapEvery == 0 {
					n.proxy.CutNow()
				}
				for !n.s.Notice2i(1, seq, int32(i)) {
					time.Sleep(time.Microsecond)
				}
			}
			n.e.Flush()
		}(i, n)
	}
	wg.Wait()

	const total = sessions * perNode
	// Every sensor must drain: online with an empty retransmit queue means
	// the manager acked (and therefore queued for merge) everything.
	for i, n := range nodes {
		waitUntil(t, 30*time.Second, fmt.Sprintf("node %d drained", i), func() bool {
			st := n.e.Stats()
			return st.Online && st.QueuedBytes == 0 && st.Sent == perNode
		})
	}
	waitUntil(t, 30*time.Second, "all records emitted", func() bool {
		return m.Stats().Emitted >= total
	})

	got := drainCursor(t, m, total, 30*time.Second)
	if len(got) != total {
		t.Fatalf("emitted %d records, want exactly %d", len(got), total)
	}

	// Exactly-once, per-session FIFO, and globally monotone emission.
	type ident struct {
		writer int32 // the i the sensor stamped (stable across resumes)
		seq    int32
	}
	seen := make(map[ident]int, total)
	lastPerWriter := make(map[int32]int32)
	var lastTS int64
	var orderViolations uint64
	for _, r := range got {
		id := ident{writer: int32(r.Fields[2].Int()), seq: int32(r.Fields[1].Int())}
		seen[id]++
		if last, ok := lastPerWriter[id.writer]; ok && id.seq <= last {
			t.Fatalf("session %d: seq %d emitted after %d (per-source order broken)",
				id.writer, id.seq, last)
		}
		lastPerWriter[id.writer] = id.seq
		if r.TS < lastTS {
			orderViolations++
		} else {
			lastTS = r.TS
		}
	}
	for w := int32(0); w < sessions; w++ {
		for s := int32(0); s < perNode; s++ {
			switch seen[ident{w, s}] {
			case 1:
			case 0:
				t.Fatalf("session %d record %d lost", w, s)
			default:
				t.Fatalf("session %d record %d duplicated (%d copies)", w, s, seen[ident{w, s}])
			}
		}
	}
	st := m.Stats()
	if orderViolations != 0 {
		t.Fatalf("%d global order violations (sorter counted %d inversions); emit order must be monotone",
			orderViolations, st.Sorter.Inversions)
	}
	if st.ResumedSessions == 0 {
		t.Fatal("no session ever resumed — the flaps did not bite")
	}
	t.Logf("soak: %d records, %d resumes, %d deduped batches, %d inversions",
		total, st.ResumedSessions, st.DedupedBatches, st.Sorter.Inversions)
}
