package ism

import (
	"net"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/ols"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/wire"
)

// TestAbruptNodeDisconnectDoesNotDisturbOthers kills one node's TCP
// connection mid-stream and verifies the manager keeps serving the
// remaining node and cleans up its connection table.
func TestAbruptNodeDisconnectDoesNotDisturbOthers(t *testing.T) {
	m := newManager(t, Config{})
	eA, regionA := newNode(t, m, "victim", nil)
	_, regionB := newNode(t, m, "survivor", nil)
	sa := sensor.New(regionA, "a", sensor.Options{})
	sb := sensor.New(regionB, "b", sensor.Options{})

	sa.Notice2i(1, 1, 0)
	sb.Notice2i(2, 1, 0)
	drainCursor(t, m, 2, 5*time.Second)
	if m.Stats().Connected != 2 {
		t.Fatalf("connected = %d", m.Stats().Connected)
	}

	// Abruptly kill A's socket (no BYE): simulate a node crash.
	eA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Connected != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Stats().Connected != 1 {
		t.Fatalf("manager did not reap dead node: connected = %d", m.Stats().Connected)
	}

	// The survivor still flows (a fresh cursor replays the retained
	// stream; the third record is the new one).
	sb.Notice2i(2, 2, 0)
	got := drainCursor(t, m, 3, 5*time.Second)
	if len(got) != 3 || got[2].Event != 2 || got[2].Fields[1].Int() != 2 {
		t.Fatalf("survivor blocked after peer crash: %+v", got)
	}
}

// TestNodeReconnectGetsFreshID verifies a node can reconnect after a
// crash and is assigned a new id, with records flowing again.
func TestNodeReconnectGetsFreshID(t *testing.T) {
	m := newManager(t, Config{})
	e1, _ := newNode(t, m, "n", nil)
	id1 := e1.Node()
	e1.Close()

	e2, region := newNode(t, m, "n", nil)
	if e2.Node() == id1 {
		t.Fatalf("reconnect reused node id %d", id1)
	}
	s := sensor.New(region, "app", sensor.Options{})
	s.Notice2i(1, 7, 0)
	got := drainCursor(t, m, 1, 5*time.Second)
	if len(got) != 1 || got[0].Node != e2.Node() {
		t.Fatalf("post-reconnect record: %+v", got)
	}
}

// TestMalformedBatchDropsConnection sends a corrupt record batch and
// verifies the manager severs that connection without crashing.
func TestMalformedBatchDropsConnection(t *testing.T) {
	m := newManager(t, Config{})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "evil"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Recv(); err != nil {
		t.Fatal(err)
	}
	// A batch whose payload is garbage.
	if err := wc.Send(&wire.DataBatch{Count: 1, Payload: []byte{0xFF, 0xFF, 0xFF}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Connected != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Stats().Connected != 0 {
		t.Fatal("manager kept the connection after a malformed batch")
	}
	if m.Stats().Received != 0 {
		t.Fatalf("malformed records counted: %+v", m.Stats())
	}
}

// TestBatchCountMismatchRejected sends a well-formed record but lies
// about the count.
func TestBatchCountMismatchRejected(t *testing.T) {
	m := newManager(t, Config{})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "liar"})
	if _, err := wc.Recv(); err != nil {
		t.Fatal(err)
	}
	region := newRecordBytes(t)
	if err := wc.Send(&wire.DataBatch{Count: 5, Payload: region}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Connected != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Stats().Connected != 0 {
		t.Fatal("count mismatch accepted")
	}
}

func newRecordBytes(t *testing.T) []byte {
	t.Helper()
	s := sensor.New(newTestRegion(), "x", sensor.Options{})
	s.Notice2i(1, 1, 2)
	var out []byte
	s.Ring().Drain(1, func(b []byte) { out = append([]byte(nil), b...) })
	return out
}

// TestSlowConsumerOverrunCounted verifies that a consumer that falls
// behind the manager's memory buffer observes the loss (the ISM's event
// dropping) rather than stale data.
func TestSlowConsumerOverrunCounted(t *testing.T) {
	m := newManager(t, Config{BufferRecords: 16, Sorter: ols.Config{InitialT: 1}})
	_, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	cur := m.NewCursor() // positioned, then intentionally not read
	const n = 500
	for i := 0; i < n; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Emitted < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Stats().Emitted != n {
		t.Fatalf("emitted = %d", m.Stats().Emitted)
	}
	_, lost, ok := cur.TryNext()
	if !ok {
		t.Fatal("nothing readable")
	}
	if lost == 0 {
		t.Fatal("slow consumer reported no loss despite a 16-record buffer")
	}
}

// TestManagerSurvivesByeThenData checks that a BYE cleanly detaches even
// with data still buffered locally on the node.
func TestManagerSurvivesByeThenData(t *testing.T) {
	m := newManager(t, Config{})
	e, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 20; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	// Close ships the final batch then says BYE.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got := drainCursor(t, m, 20, 5*time.Second)
	if len(got) != 20 {
		t.Fatalf("final batch lost on close: %d/20 (stats %+v)", len(got), m.Stats())
	}
}

func newTestRegion() *shm.Region { return shm.NewRegion() }

// TestEXSSurvivesManagerDeath kills the manager and verifies the external
// sensor — its reconnect budget exhausted — degrades to
// draining-and-discarding rather than blocking the application or
// spamming failed sends.
func TestEXSSurvivesManagerDeath(t *testing.T) {
	m := newManager(t, Config{})
	region := shm.NewRegion()
	e, err := exs.Dial(exs.Config{
		ManagerAddr:          m.Addr(),
		NodeName:             "n",
		Region:               region,
		FlushInterval:        time.Millisecond,
		PollInterval:         200 * time.Microsecond,
		ReconnectBase:        time.Millisecond,
		ReconnectMax:         5 * time.Millisecond,
		MaxReconnectAttempts: 2,
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	s := sensor.New(region, "app", sensor.Options{RingBytes: 1 << 12})
	s.Notice2i(1, 1, 0)
	drainCursor(t, m, 1, 5*time.Second)

	m.Close() // manager gone

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 100; i++ {
			s.Notice2i(1, int32(i), 0)
		}
		e.Flush()
		st := e.Stats()
		if st.LostOffline > 0 {
			// Ring keeps getting drained: the application never jams.
			if s.Dropped() > 0 && st.LostOffline == 0 {
				t.Fatalf("ring backed up instead of discarding: %+v", st)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("EXS never entered offline-discard mode: %+v", e.Stats())
}
