package ism

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/ols"
	"brisk/internal/picl"
	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/visual"
	"brisk/internal/wire"
)

func quietLog(string, ...any) {}

// newManager starts a manager on an ephemeral port with fast merge cycles.
func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.MergeInterval == 0 {
		cfg.MergeInterval = time.Millisecond
	}
	if cfg.Sorter.InitialT == 0 {
		cfg.Sorter = ols.Config{InitialT: 1000} // 1 ms window
	}
	if cfg.Logf == nil {
		cfg.Logf = quietLog
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	t.Cleanup(func() { m.Close() })
	return m
}

// newNode attaches an EXS with its own region and returns it with the
// region for sensor creation.
func newNode(t *testing.T, m *Manager, name string, clock *vclock.Corrected) (*exs.EXS, *shm.Region) {
	t.Helper()
	region := shm.NewRegion()
	e, err := exs.Dial(exs.Config{
		ManagerAddr:   m.Addr(),
		NodeName:      name,
		Region:        region,
		Clock:         clock,
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  25 * time.Millisecond,
		Logf:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, region
}

// drainCursor reads records from the manager's buffer until n records
// arrive or the deadline passes.
func drainCursor(t *testing.T, m *Manager, n int, timeout time.Duration) []record.Record {
	t.Helper()
	cur := m.NewCursor()
	out := make([]record.Record, 0, n)
	deadline := time.Now().Add(timeout)
	for len(out) < n && time.Now().Before(deadline) {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			t.Fatalf("consumer lost %d records", lost)
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		rec, err := DecodeBuffered(raw)
		if err != nil {
			t.Fatalf("DecodeBuffered: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

func TestSingleNodePipeline(t *testing.T) {
	m := newManager(t, Config{})
	e, region := newNode(t, m, "n1", nil)

	s := sensor.New(region, "app", sensor.Options{})
	const n = 500
	for i := 0; i < n; i++ {
		if !s.Notice6i(7, int32(i), 2, 3, 4, 5, 6) {
			t.Fatal("ring overflow")
		}
	}
	got := drainCursor(t, m, n, 10*time.Second)
	if len(got) != n {
		t.Fatalf("received %d records, want %d (stats %+v, exs %+v)", len(got), n, m.Stats(), e.Stats())
	}
	for i, r := range got {
		if r.Event != 7 || r.Fields[1].Int() != int64(i) {
			t.Fatalf("record %d corrupted: %+v", i, r)
		}
		if r.Node != e.Node() {
			t.Fatalf("record %d node = %d, want %d", i, r.Node, e.Node())
		}
		if i > 0 && r.TS < got[i-1].TS {
			t.Fatalf("out of order at %d", i)
		}
	}
	st := m.Stats()
	if st.Received != n || st.Emitted != n || st.Batches == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiNodeMergeOrdering(t *testing.T) {
	m := newManager(t, Config{Sorter: ols.Config{InitialT: 20_000}})
	const nodes = 3
	const per = 300
	var sensors []*sensor.Sensor
	for i := 0; i < nodes; i++ {
		_, region := newNode(t, m, "node", nil)
		sensors = append(sensors, sensor.New(region, "app", sensor.Options{}))
	}
	var wg sync.WaitGroup
	for _, s := range sensors {
		wg.Add(1)
		go func(s *sensor.Sensor) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Notice6i(1, int32(i), 0, 0, 0, 0, 0)
				time.Sleep(50 * time.Microsecond)
			}
		}(s)
	}
	wg.Wait()
	got := drainCursor(t, m, nodes*per, 15*time.Second)
	if len(got) != nodes*per {
		t.Fatalf("received %d, want %d", len(got), nodes*per)
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			inversions++
		}
	}
	// All nodes share the true system clock here, so the sorted stream
	// should be clean given the 20 ms window.
	if inversions != 0 {
		t.Fatalf("%d inversions in merged stream", inversions)
	}
	seen := map[int32]int{}
	for _, r := range got {
		seen[r.Node]++
	}
	if len(seen) != nodes {
		t.Fatalf("nodes seen = %v", seen)
	}
}

func TestPICLSink(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	sw := &syncWriter{w: &buf, mu: &mu}
	pw := picl.NewWriter(sw, picl.TimeUTC, 0)
	m := newManager(t, Config{PICL: pw})
	_, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 10; i++ {
		s.Notice2i(3, int32(i), 9)
	}
	drainCursor(t, m, 10, 5*time.Second)
	m.Close() // flushes PICL
	mu.Lock()
	text := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 10 {
		t.Fatalf("picl lines = %d:\n%s", len(lines), text)
	}
	rd := picl.NewReader(strings.NewReader(text))
	ln, err := rd.Next()
	if err != nil || ln.Event != 3 {
		t.Fatalf("picl parse: %+v %v", ln, err)
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestVisualSink(t *testing.T) {
	vs := visual.NewServer()
	addr, err := vs.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	var mu sync.Mutex
	var lines []string
	vs.Register("view", visual.ObjectFunc(func(l string) error {
		mu.Lock()
		lines = append(lines, l)
		mu.Unlock()
		return nil
	}))
	disp := visual.NewDispatcher()
	remote, err := visual.Dial(addr, "view", 256)
	if err != nil {
		t.Fatal(err)
	}
	disp.Attach(remote)

	m := newManager(t, Config{Visual: disp})
	_, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 20; i++ {
		s.Notice2i(5, int32(i), 0)
	}
	drainCursor(t, m, 20, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("visual received %d lines, want 20", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	first := lines[0]
	mu.Unlock()
	if !strings.HasPrefix(first, "-4 5 ") {
		t.Fatalf("line = %q", first)
	}
	disp.Close()
}

func TestClockSyncAdjustsSkewedSlave(t *testing.T) {
	m := newManager(t, Config{
		SyncPeriod:   50 * time.Millisecond,
		ProbeTimeout: time.Second,
	})
	// Two nodes: one on the system clock, one 50 ms behind.
	_, _ = newNode(t, m, "ontime", nil)
	behindRaw := vclock.NewDrift(vclock.System{}, -50_000, 0)
	behind := vclock.NewCorrected(behindRaw)
	eBehind, _ := newNode(t, m, "behind", behind)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := eBehind.Stats(); st.Adjusts > 0 && st.Correction > 40_000 {
			// The slow clock was advanced toward the reference.
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("behind node never corrected: %+v (rounds %d)", eBehind.Stats(), m.Stats().SyncRounds)
}

func TestTachyonTriggersExtraSyncRound(t *testing.T) {
	m := newManager(t, Config{
		Sorter:       ols.Config{InitialT: 1000},
		SyncPeriod:   time.Hour, // periodic rounds effectively off
		ProbeTimeout: time.Second,
	})
	// Node B's clock is far behind, so its consequence to A's reason is
	// stamped before the reason: a tachyon.
	_, regionA := newNode(t, m, "a", nil)
	behind := vclock.NewCorrected(vclock.NewDrift(vclock.System{}, -200_000, 0))
	eB, regionB := newNode(t, m, "b", behind)

	sa := sensor.New(regionA, "app", sensor.Options{})
	sb := sensor.New(regionB, "app", sensor.Options{Clock: behind})

	sa.NoticeReason(1, 42, 0)
	time.Sleep(20 * time.Millisecond) // let the reason flow through
	sb.NoticeConseq(2, 42, 0)

	got := drainCursor(t, m, 2, 10*time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d records (stats %+v)", len(got), m.Stats())
	}
	if got[0].Reason != 42 || got[1].Conseq != 42 {
		t.Fatalf("order wrong: %+v", got)
	}
	if got[1].TS <= got[0].TS {
		t.Fatalf("tachyon not repaired: conseq ts %d ≤ reason ts %d", got[1].TS, got[0].TS)
	}
	st := m.Stats()
	if st.CRE.Tachyons != 1 || st.TachyonSyncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The extra round should eventually reach the skewed slave.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if eB.Stats().Probes > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("extra sync round never probed the slave")
}

func TestManagerCloseFlushesAndEOF(t *testing.T) {
	m := newManager(t, Config{Sorter: ols.Config{InitialT: 60_000_000}}) // huge T: records held
	_, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 50; i++ {
		s.Notice2i(1, int32(i), 0)
	}
	// Give the EXS time to ship.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Received < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Stats().Received != 50 {
		t.Fatalf("manager received %d", m.Stats().Received)
	}
	cur := m.NewCursor()
	m.Close() // must flush the held records and close the buffer
	count := 0
	for {
		_, _, ok := cur.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 50 {
		t.Fatalf("flushed %d records at close, want 50", count)
	}
}

func TestBadHelloRejected(t *testing.T) {
	m := newManager(t, Config{})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	// Wrong first message type.
	if err := wc.Send(&wire.Adjust{DeltaMicros: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Recv(); err == nil {
		t.Fatal("manager acked a non-hello first message")
	}
	if m.Stats().Connected != 0 {
		t.Fatal("bad client counted as connected")
	}
}

func TestEXSStatsAndFlush(t *testing.T) {
	m := newManager(t, Config{})
	e, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	s.Notice6i(1, 1, 2, 3, 4, 5, 6)
	e.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Sent == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := e.Stats()
	if st.Sent != 1 || st.Batches == 0 || st.BytesOut == 0 || st.Node == 0 {
		t.Fatalf("exs stats = %+v", st)
	}
}

func TestDialFailsWithoutRegion(t *testing.T) {
	if _, err := exs.Dial(exs.Config{ManagerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("Dial without region succeeded")
	}
}

func TestManagerDoubleClose(t *testing.T) {
	m := newManager(t, Config{})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAllSinksTogether drives the memory buffer, PICL trace, visual
// dispatch and event filter simultaneously — the full Figure-1 sink
// fan-out.
func TestAllSinksTogether(t *testing.T) {
	vs := visual.NewServer()
	vaddr, err := vs.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	var vmu sync.Mutex
	var vlines []string
	vs.Register("v", visual.ObjectFunc(func(l string) error {
		vmu.Lock()
		vlines = append(vlines, l)
		vmu.Unlock()
		return nil
	}))
	disp := visual.NewDispatcher()
	remote, err := visual.Dial(vaddr, "v", 128)
	if err != nil {
		t.Fatal(err)
	}
	disp.Attach(remote)

	var pmu sync.Mutex
	var pbuf bytes.Buffer
	pw := picl.NewWriter(&syncWriter{w: &pbuf, mu: &pmu}, picl.TimeUTC, 0)

	m := newManager(t, Config{
		PICL:   pw,
		Visual: disp,
		Filter: func(r *record.Record) bool { return r.Event != 99 },
	})
	_, region := newNode(t, m, "n", nil)
	s := sensor.New(region, "app", sensor.Options{})
	for i := 0; i < 15; i++ {
		s.Notice2i(1, int32(i), 0)
		s.Notice2i(99, int32(i), 0) // filtered everywhere
	}
	got := drainCursor(t, m, 15, 10*time.Second)
	if len(got) != 15 {
		t.Fatalf("memory buffer got %d", len(got))
	}
	for _, r := range got {
		if r.Event == 99 {
			t.Fatal("filtered event reached the memory buffer")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		vmu.Lock()
		n := len(vlines)
		vmu.Unlock()
		if n == 15 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := m.Stats()
	if st.Filtered != 15 {
		t.Fatalf("filtered = %d", st.Filtered)
	}
	if st.EmitLatencyMeanMicros <= 0 {
		t.Fatalf("emit latency not tracked: %+v", st)
	}
	m.Close()
	pmu.Lock()
	lines := strings.Count(pbuf.String(), "\n")
	pmu.Unlock()
	if lines != 15 {
		t.Fatalf("picl lines = %d", lines)
	}
	vmu.Lock()
	vn := len(vlines)
	vmu.Unlock()
	if vn != 15 {
		t.Fatalf("visual lines = %d", vn)
	}
	disp.Close()
}
