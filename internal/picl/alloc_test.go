package picl

import (
	"io"
	"testing"

	"brisk/internal/record"
)

// TestAllocsWriteRecord pins the trace writer's place on the manager's
// sink hot path: rendering a line into the recycled scratch buffer with
// the strconv append functions must not allocate in steady state.
func TestAllocsWriteRecord(t *testing.T) {
	for _, mode := range []TimeMode{TimeUTC, TimeRelative} {
		w := NewWriter(io.Discard, mode, 0)
		rec := record.New(3, record.TSVal(1234567), record.I32Val(1),
			record.I32Val(2), record.F64Val(3.25), record.BoolVal(true))
		if err := w.WriteRecord(&rec); err != nil { // warm the scratch buffer
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := w.WriteRecord(&rec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("mode %v: WriteRecord allocates %.1f times, want 0", mode, allocs)
		}
	}
}
