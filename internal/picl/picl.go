// Package picl writes and reads instrumentation-data trace files in the
// PICL ASCII style [P. H. Worley, "A new PICL trace file format",
// ORNL/TM-12125, 1992], the format the BRISK ISM optionally logs to so
// that existing trace-analysis tools can consume its output.
//
// Each trace record is one ASCII line:
//
//	<rectype> <event> <timestamp> <node> <nfields> <field>...
//
// where rectype is -4 (user-defined trace event, the only type BRISK
// emits), event is the record's event class, node the originating node,
// and each field is rendered as <typecode>:<value> with strings quoted.
// Per the paper, timestamps are written either in the UTC format (integer
// microseconds) or as the floating-point number of seconds since the ISM
// was started.
//
// This is a faithful rendering of the PICL record discipline (typed ASCII
// lines, one event per line, node and time attribution) rather than a
// byte-exact reimplementation of the ORNL tooling; the Reader makes the
// format round-trippable for downstream consumers.
package picl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"brisk/internal/record"
)

// UserEventType is the PICL record type BRISK emits.
const UserEventType = -4

// TimeMode selects the timestamp rendering.
type TimeMode int

const (
	// TimeUTC writes integer microseconds of UTC.
	TimeUTC TimeMode = iota
	// TimeRelative writes floating-point seconds since the writer's
	// start time.
	TimeRelative
)

// Errors reported by the reader.
var (
	ErrSyntax = errors.New("picl: malformed trace line")
)

// Writer emits PICL trace lines. Not safe for concurrent use.
type Writer struct {
	bw      *bufio.Writer
	mode    TimeMode
	start   int64 // µs, zero point for TimeRelative
	lines   uint64
	scratch []byte // one rendered line, recycled across records
}

// NewWriter returns a writer in the given time mode; start is the UTC
// microsecond instant used as second-zero in TimeRelative mode.
func NewWriter(w io.Writer, mode TimeMode, start int64) *Writer {
	return &Writer{bw: bufio.NewWriter(w), mode: mode, start: start}
}

// Lines returns the number of records written.
func (w *Writer) Lines() uint64 { return w.lines }

// WriteRecord renders one record as a trace line. The line is built in a
// recycled scratch buffer with the strconv append functions, so writing a
// record allocates nothing in steady state — the writer sits on the
// manager's sink hot path.
func (w *Writer) WriteRecord(r *record.Record) error {
	w.lines++
	b := w.scratch[:0]
	b = strconv.AppendInt(b, UserEventType, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(r.Event), 10)
	b = append(b, ' ')
	switch w.mode {
	case TimeRelative:
		b = strconv.AppendFloat(b, float64(r.TS-w.start)/1e6, 'f', 6, 64)
	default:
		b = strconv.AppendInt(b, r.TS, 10)
	}
	// Data fields exclude the timestamp (already the time column).
	n := 0
	for _, f := range r.Fields {
		if f.Type != record.TS {
			n++
		}
	}
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Node), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(n), 10)
	for _, f := range r.Fields {
		if f.Type == record.TS {
			continue
		}
		b = append(b, ' ')
		b = appendField(b, f)
	}
	b = append(b, '\n')
	w.scratch = b
	_, err := w.bw.Write(b)
	return err
}

func appendField(b []byte, f record.Value) []byte {
	b = append(b, f.Type.String()...)
	b = append(b, ':')
	switch f.Type {
	case record.Int8, record.Int16, record.Int32, record.Int64:
		b = strconv.AppendInt(b, f.Int(), 10)
	case record.Uint8, record.Uint16, record.Uint32, record.Uint64,
		record.Reason, record.Conseq:
		b = strconv.AppendUint(b, f.Uint(), 10)
	case record.Float32, record.Float64:
		b = strconv.AppendFloat(b, f.Float(), 'g', -1, 64)
	case record.Bool:
		b = strconv.AppendBool(b, f.Bool())
	case record.String:
		b = strconv.AppendQuote(b, f.Str)
	}
	return b
}

// Flush writes buffered lines to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Line is one parsed trace record.
type Line struct {
	RecType int
	Event   uint8
	// TimeMicros holds the timestamp in µs; in TimeRelative files it is
	// the relative time scaled back to µs.
	TimeMicros int64
	Node       int32
	// Fields are the typed data payloads.
	Fields []record.Value
}

// Reader parses PICL trace lines.
type Reader struct {
	sc    *bufio.Scanner
	lines uint64
}

// NewReader returns a reader over a trace stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &Reader{sc: sc}
}

// Next parses the next trace line. It returns io.EOF at end of stream.
func (r *Reader) Next() (Line, error) {
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return Line{}, err
			}
			return Line{}, io.EOF
		}
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		r.lines++
		return parseLine(text)
	}
}

func parseLine(text string) (Line, error) {
	tok := strings.Fields(text)
	if len(tok) < 5 {
		return Line{}, fmt.Errorf("%w: %d columns", ErrSyntax, len(tok))
	}
	var ln Line
	rt, err := strconv.Atoi(tok[0])
	if err != nil {
		return Line{}, fmt.Errorf("%w: rectype %q", ErrSyntax, tok[0])
	}
	ln.RecType = rt
	ev, err := strconv.ParseUint(tok[1], 10, 8)
	if err != nil {
		return Line{}, fmt.Errorf("%w: event %q", ErrSyntax, tok[1])
	}
	ln.Event = uint8(ev)
	if strings.ContainsAny(tok[2], ".eE") {
		sec, err := strconv.ParseFloat(tok[2], 64)
		if err != nil {
			return Line{}, fmt.Errorf("%w: time %q", ErrSyntax, tok[2])
		}
		ln.TimeMicros = int64(sec * 1e6)
	} else {
		us, err := strconv.ParseInt(tok[2], 10, 64)
		if err != nil {
			return Line{}, fmt.Errorf("%w: time %q", ErrSyntax, tok[2])
		}
		ln.TimeMicros = us
	}
	node, err := strconv.ParseInt(tok[3], 10, 32)
	if err != nil {
		return Line{}, fmt.Errorf("%w: node %q", ErrSyntax, tok[3])
	}
	ln.Node = int32(node)
	n, err := strconv.Atoi(tok[4])
	if err != nil || n < 0 {
		return Line{}, fmt.Errorf("%w: field count %q", ErrSyntax, tok[4])
	}
	if len(tok) != 5+n {
		// Quoted strings may contain spaces; re-join and split carefully.
		fields, ferr := splitFields(strings.Join(tok[5:], " "), n)
		if ferr != nil {
			return Line{}, ferr
		}
		ln.Fields = fields
		return ln, nil
	}
	for _, ftok := range tok[5:] {
		v, err := parseField(ftok)
		if err != nil {
			return Line{}, err
		}
		ln.Fields = append(ln.Fields, v)
	}
	return ln, nil
}

// splitFields handles data sections whose string fields contain spaces.
func splitFields(s string, n int) ([]record.Value, error) {
	var out []record.Value
	rest := s
	for i := 0; i < n; i++ {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, fmt.Errorf("%w: expected %d fields, found %d", ErrSyntax, n, i)
		}
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: field %q", ErrSyntax, rest)
		}
		if strings.HasPrefix(rest[colon+1:], `"`) {
			// Quoted string: find its end with the Go quoting rules.
			q := rest[colon+1:]
			val, rem, err := unquotePrefix(q)
			if err != nil {
				return nil, fmt.Errorf("%w: string field: %v", ErrSyntax, err)
			}
			out = append(out, record.StrVal(val))
			rest = rem
			continue
		}
		end := strings.IndexByte(rest, ' ')
		var tokn string
		if end < 0 {
			tokn, rest = rest, ""
		} else {
			tokn, rest = rest[:end], rest[end:]
		}
		v, err := parseField(tokn)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("%w: trailing data %q", ErrSyntax, rest)
	}
	return out, nil
}

// unquotePrefix unquotes the Go-quoted string at the start of s and
// returns the remainder.
func unquotePrefix(s string) (val, rest string, err error) {
	// Scan for the closing quote, honoring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}

var typeByName = map[string]record.Type{}

func init() {
	for t := record.Int8; t <= record.Conseq; t++ {
		typeByName[t.String()] = t
	}
}

func parseField(tok string) (record.Value, error) {
	colon := strings.IndexByte(tok, ':')
	if colon < 0 {
		return record.Value{}, fmt.Errorf("%w: field %q", ErrSyntax, tok)
	}
	t, ok := typeByName[tok[:colon]]
	if !ok {
		return record.Value{}, fmt.Errorf("%w: field type %q", ErrSyntax, tok[:colon])
	}
	body := tok[colon+1:]
	switch t {
	case record.Int8, record.Int16, record.Int32, record.Int64:
		v, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.Value{Type: t, Bits: uint64(v)}, nil
	case record.Uint8, record.Uint16, record.Uint32, record.Uint64,
		record.Reason, record.Conseq:
		v, err := strconv.ParseUint(body, 10, 64)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.Value{Type: t, Bits: v}, nil
	case record.Float32:
		v, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.F32Val(float32(v)), nil
	case record.Float64:
		v, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.F64Val(v), nil
	case record.Bool:
		v, err := strconv.ParseBool(body)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.BoolVal(v), nil
	case record.String:
		v, err := strconv.Unquote(body)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.StrVal(v), nil
	case record.TS:
		v, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return record.Value{}, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return record.TSVal(v), nil
	default:
		return record.Value{}, fmt.Errorf("%w: unsupported type %v", ErrSyntax, t)
	}
}
