package picl

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"brisk/internal/record"
)

func writeOne(t *testing.T, mode TimeMode, start int64, r record.Record) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, mode, start)
	if err := w.WriteRecord(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteUTCLine(t *testing.T) {
	r := record.New(7, record.TSVal(1_000_500), record.I32Val(-3), record.StrVal("hi"))
	r.Node = 2
	got := writeOne(t, TimeUTC, 0, r)
	want := "-4 7 1000500 2 2 i32:-3 str:\"hi\"\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestWriteRelativeLine(t *testing.T) {
	r := record.New(1, record.TSVal(2_500_000))
	got := writeOne(t, TimeRelative, 1_000_000, r)
	want := "-4 1 1.500000 0 0\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestRoundTripAllFieldKinds(t *testing.T) {
	r := record.New(9,
		record.TSVal(123),
		record.I8Val(-5), record.U16Val(60000), record.I64Val(-1<<40),
		record.F64Val(2.625), record.BoolVal(true),
		record.StrVal(`with "quotes" and spaces`),
		record.ReasonVal(42),
	)
	r.Node = 3
	text := writeOne(t, TimeUTC, 0, r)
	rd := NewReader(strings.NewReader(text))
	ln, err := rd.Next()
	if err != nil {
		t.Fatalf("Next: %v (line %q)", err, text)
	}
	if ln.RecType != UserEventType || ln.Event != 9 || ln.Node != 3 || ln.TimeMicros != 123 {
		t.Fatalf("header = %+v", ln)
	}
	if len(ln.Fields) != 7 {
		t.Fatalf("fields = %d: %+v", len(ln.Fields), ln.Fields)
	}
	if ln.Fields[0].Int() != -5 || ln.Fields[1].Uint() != 60000 || ln.Fields[2].Int() != -(1<<40) {
		t.Fatalf("int fields wrong: %+v", ln.Fields)
	}
	if ln.Fields[3].Float() != 2.625 || !ln.Fields[4].Bool() {
		t.Fatalf("float/bool wrong: %+v", ln.Fields)
	}
	if ln.Fields[5].Str != `with "quotes" and spaces` {
		t.Fatalf("string = %q", ln.Fields[5].Str)
	}
	if ln.Fields[6].Type != record.Reason || ln.Fields[6].Uint() != 42 {
		t.Fatalf("reason field = %+v", ln.Fields[6])
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRelativeTimeParsesBack(t *testing.T) {
	r := record.New(1, record.TSVal(3_250_000), record.I32Val(1))
	text := writeOne(t, TimeRelative, 1_000_000, r)
	ln, err := NewReader(strings.NewReader(text)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if ln.TimeMicros != 2_250_000 {
		t.Fatalf("relative time = %d, want 2250000", ln.TimeMicros)
	}
}

func TestReaderSkipsBlanksAndComments(t *testing.T) {
	text := "\n# a comment\n-4 1 5 0 0\n\n"
	rd := NewReader(strings.NewReader(text))
	ln, err := rd.Next()
	if err != nil || ln.TimeMicros != 5 {
		t.Fatalf("ln=%+v err=%v", ln, err)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderSyntaxErrors(t *testing.T) {
	bad := []string{
		"-4 1 5 0",               // too few columns
		"x 1 5 0 0",              // bad rectype
		"-4 999 5 0 0",           // event out of uint8
		"-4 1 zz 0 0",            // bad time
		"-4 1 5 zz 0",            // bad node
		"-4 1 5 0 xx",            // bad count
		"-4 1 5 0 1 notyped",     // field without type
		"-4 1 5 0 1 q32:5",       // unknown type
		"-4 1 5 0 1 i32:abc",     // bad int
		"-4 1 5 0 2 i32:1",       // missing field
		`-4 1 5 0 1 str:"open`,   // unterminated quote
		"-4 1 5 0 1 i32:1 i32:2", // trailing data
	}
	for _, line := range bad {
		if _, err := NewReader(strings.NewReader(line + "\n")).Next(); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

func TestMultipleRecordsStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, TimeUTC, 0)
	for i := 0; i < 100; i++ {
		r := record.New(uint8(i%5), record.TSVal(int64(i)), record.I32Val(int32(i)))
		r.Node = int32(i % 3)
		if err := w.WriteRecord(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Lines() != 100 {
		t.Fatalf("Lines = %d", w.Lines())
	}
	rd := NewReader(&buf)
	for i := 0; i < 100; i++ {
		ln, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ln.TimeMicros != int64(i) || ln.Fields[0].Int() != int64(i) {
			t.Fatalf("record %d corrupted: %+v", i, ln)
		}
	}
}

func TestRecordWithoutTimestamp(t *testing.T) {
	r := record.New(1, record.I32Val(5)) // HasTS false, TS zero
	text := writeOne(t, TimeUTC, 0, r)
	ln, err := NewReader(strings.NewReader(text)).Next()
	if err != nil || ln.TimeMicros != 0 || len(ln.Fields) != 1 {
		t.Fatalf("ln=%+v err=%v", ln, err)
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	r := record.New(1, record.TSVal(1),
		record.I32Val(1), record.I32Val(2), record.I32Val(3),
		record.I32Val(4), record.I32Val(5), record.I32Val(6))
	w := NewWriter(io.Discard, TimeUTC, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteRecord(&r); err != nil {
			b.Fatal(err)
		}
	}
}
