package picl

import (
	"errors"
	"io"
	"strings"
	"testing"

	"brisk/internal/record"
)

// FuzzReader checks that arbitrary text never panics the trace parser and
// that accepted lines re-render losslessly through the writer.
func FuzzReader(f *testing.F) {
	f.Add("-4 7 1000500 2 2 i32:-3 str:\"hi\"\n")
	f.Add("-4 1 1.500000 0 0\n")
	f.Add("# comment\n\n-4 1 5 0 1 X_REASON:9\n")
	f.Add("-4 1 5 0 1 str:\"a b c\"\n")
	f.Add("garbage\n")

	f.Fuzz(func(t *testing.T, text string) {
		rd := NewReader(strings.NewReader(text))
		for {
			ln, err := rd.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // malformed input is fine; panics are not
			}
			// Accepted lines must round-trip through the writer.
			rec := record.New(ln.Event,
				append([]record.Value{record.TSVal(ln.TimeMicros)}, ln.Fields...)...)
			rec.Node = ln.Node
			var sb strings.Builder
			w := NewWriter(&sb, TimeUTC, 0)
			if err := w.WriteRecord(&rec); err != nil {
				t.Fatalf("accepted line does not re-render: %v", err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			ln2, err := NewReader(strings.NewReader(sb.String())).Next()
			if err != nil {
				t.Fatalf("re-rendered line does not parse: %v (%q)", err, sb.String())
			}
			if ln2.Event != ln.Event || ln2.Node != ln.Node || ln2.TimeMicros != ln.TimeMicros {
				t.Fatalf("round trip drift: %+v vs %+v", ln, ln2)
			}
		}
	})
}
