package bench

import (
	"strings"
	"testing"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/ols"
	"brisk/internal/simnet"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bee"}}
	tb.Add(1, 2.5)
	tb.Add("xxxx", "y")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "a", "bee", "2.50", "xxxx", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRunNoticeCost(t *testing.T) {
	res := RunNoticeCost(20_000)
	if res.SpecializedNanos <= 0 || res.DynamicNanos <= 0 ||
		res.StringNanos <= 0 || res.DrainNanos <= 0 {
		t.Fatalf("zero timings: %+v", res)
	}
	// The specialized path must not be slower than ~2x the dynamic one
	// (it is the point of specialization that it is faster; allow jitter).
	if res.SpecializedNanos > 2*res.DynamicNanos {
		t.Fatalf("specialized %v ns vs dynamic %v ns", res.SpecializedNanos, res.DynamicNanos)
	}
	if res.Table() == nil || len(res.Table().Rows) != 4 {
		t.Fatal("table shape wrong")
	}
}

func TestRunThroughputSmall(t *testing.T) {
	res, err := RunThroughput(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 20_000 || res.EventsPS <= 0 {
		t.Fatalf("res = %+v", res)
	}
	// The paper's testbed reached 90k events/s; the reproduction must at
	// least be in that order of magnitude on any modern host.
	if res.EventsPS < 30_000 {
		t.Fatalf("throughput suspiciously low: %.0f events/s", res.EventsPS)
	}
	if len(res.Table().Rows) != 1 {
		t.Fatal("table shape")
	}
}

func TestRunSyncQuietConverges(t *testing.T) {
	sc := SyncScenario{
		Name: "test", Nodes: 8, OffsetSpread: 5_000_000, DriftSpread: 2,
		Net: simnet.QuietLAN(3), Rounds: 40, PollPeriod: 5_000_000, Seed: 3,
	}
	res := RunSync(sc)
	if res.RoundsToConverge < 0 {
		t.Fatalf("no convergence: %+v", res.Series)
	}
	if res.SteadyMeanMicros > 100 {
		t.Fatalf("steady mean %v µs not 'tens of microseconds'", res.SteadyMeanMicros)
	}
	if res.Under200Pct < 99 {
		t.Fatalf("quiet LAN under-200 fraction = %v", res.Under200Pct)
	}
}

func TestDefaultSyncScenariosShape(t *testing.T) {
	scs := DefaultSyncScenarios(1)
	if len(scs) != 4 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	var results []SyncResult
	for _, sc := range scs {
		sc.Rounds = 30 // keep the test fast
		results = append(results, RunSync(sc))
	}
	// BRISK (index 2) must converge faster than amortized Cristian
	// (index 3) from the same 50 ms spread.
	b, c := results[2], results[3]
	if b.RoundsToConverge < 0 {
		t.Fatal("BRISK did not converge")
	}
	if c.RoundsToConverge >= 0 && b.RoundsToConverge >= c.RoundsToConverge {
		t.Fatalf("BRISK %d rounds vs Cristian %d", b.RoundsToConverge, c.RoundsToConverge)
	}
	if tb := SyncTable(results); len(tb.Rows) != 4 {
		t.Fatal("sync table shape")
	}
}

func TestRunOLSPolicyOrdering(t *testing.T) {
	mk := func(cfg ols.Config) OLSResult {
		return RunOLS(OLSScenario{
			Name: "t", Sources: 4, Events: 5000,
			DelayProfile: "skewed", Sorter: cfg, Seed: 11,
		})
	}
	fixed := mk(ols.Config{InitialT: 100, Grow: ols.GrowFixed})
	lateness := mk(ols.Config{InitialT: 100, Grow: ols.GrowToLateness})
	// The paper's finding: sizing T to the latest lateness suppresses
	// disorder that a small fixed T cannot.
	if fixed.OutOfOrderPct <= lateness.OutOfOrderPct {
		t.Fatalf("fixed %.3f%% vs lateness %.3f%% out of order",
			fixed.OutOfOrderPct, lateness.OutOfOrderPct)
	}
	if lateness.OutOfOrderPct > 0.5 {
		t.Fatalf("adaptive policy left %.3f%% disorder", lateness.OutOfOrderPct)
	}
	// And the latency price: the adaptive window delays records longer.
	if lateness.MeanLatencyMicros <= fixed.MeanLatencyMicros {
		t.Fatalf("no ordering/latency trade-off visible: %v vs %v",
			lateness.MeanLatencyMicros, fixed.MeanLatencyMicros)
	}
}

func TestRunOLSDecayTradeOff(t *testing.T) {
	mk := func(halfLife int64) OLSResult {
		return RunOLS(OLSScenario{
			Name: "t", Sources: 4, Events: 8000,
			DelayProfile: "spiky",
			Sorter:       ols.Config{InitialT: 100, Grow: ols.GrowToLateness, HalfLife: halfLife},
			Seed:         5,
		})
	}
	fast := mk(1_000)
	slow := mk(1_000_000)
	// Fast decay reduces latency but admits more disorder; slow decay
	// (large half-life) holds ordering — the paper's second finding.
	if fast.MeanLatencyMicros >= slow.MeanLatencyMicros {
		t.Fatalf("fast decay mean latency %v ≥ slow %v",
			fast.MeanLatencyMicros, slow.MeanLatencyMicros)
	}
	if fast.OutOfOrderPct <= slow.OutOfOrderPct {
		t.Fatalf("fast decay disorder %v ≤ slow %v",
			fast.OutOfOrderPct, slow.OutOfOrderPct)
	}
}

func TestDefaultOLSScenariosRun(t *testing.T) {
	scs := DefaultOLSScenarios(1)
	if len(scs) < 8 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	var results []OLSResult
	for _, sc := range scs {
		sc.Events = 1000
		r := RunOLS(sc)
		if r.Emitted == 0 {
			t.Fatalf("%s emitted nothing", sc.Name)
		}
		results = append(results, r)
	}
	if tb := OLSTable(results); len(tb.Rows) != len(scs) {
		t.Fatal("ols table shape")
	}
}

func TestRunLatencyMonotoneInKnobs(t *testing.T) {
	rows, err := RunLatency(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Coarse shape: the 40 ms setting must cost far more than the 500 µs
	// setting (the paper's waiting-call bound scales with the knob).
	if rows[len(rows)-1].MeanMicros < 4*rows[0].MeanMicros {
		t.Fatalf("latency does not track the knobs: first %v µs, last %v µs",
			rows[0].MeanMicros, rows[len(rows)-1].MeanMicros)
	}
	if tb := LatencyTable(rows); len(tb.Rows) != 6 {
		t.Fatal("latency table shape")
	}
}

func TestRunScaleSmall(t *testing.T) {
	rows, err := RunScale(2, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].AggregatePS <= 0 || rows[1].AggregatePS <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if tb := ScaleTable(rows); len(tb.Rows) != 2 {
		t.Fatal("scale table shape")
	}
}

func TestRunEXSUtilSmall(t *testing.T) {
	rows, err := RunEXSUtil([]int{2000}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].TotalCPUPct < 0 || rows[0].ExsCPUPct < 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if tb := UtilTable(rows); len(tb.Rows) != 1 {
		t.Fatal("util table shape")
	}
}

func TestRunSyncDisturbedMostlyUnder200(t *testing.T) {
	sc := SyncScenario{
		Name: "disturbed", Nodes: 8, OffsetSpread: 5_000_000, DriftSpread: 2,
		Net: simnet.LAN(2), Rounds: 60, PollPeriod: 5_000_000,
		Sync: clocksync.Config{MaxRTT: 1500}, Seed: 2,
	}
	res := RunSync(sc)
	if res.Under200Pct < 70 {
		t.Fatalf("disturbed LAN under-200%% = %v, want 'most of the time'", res.Under200Pct)
	}
}

func TestRunIntrusionShape(t *testing.T) {
	rows, err := RunIntrusion(300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].NoticeEveryK != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Overhead must grow with instrumentation density.
	for i := 2; i < len(rows); i++ {
		if rows[i].SlowdownPct < rows[i-1].SlowdownPct-5 {
			t.Fatalf("slowdown not monotone in density: %+v", rows)
		}
	}
	// Sparse instrumentation must be cheap (paper objective): the
	// 1-notice-per-100-iterations row stays in low single digits (the
	// race detector inflates the instrumented path, so allow more there).
	limit := 15.0
	if raceEnabled {
		limit = 80.0
	}
	if rows[1].SlowdownPct > limit {
		t.Fatalf("sparse instrumentation costs %.1f%%", rows[1].SlowdownPct)
	}
	if tb := IntrusionTable(rows); len(tb.Rows) != 4 {
		t.Fatal("intrusion table shape")
	}
}
