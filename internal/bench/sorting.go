package bench

import (
	"fmt"

	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/stats"
	"brisk/internal/workload"
)

// OLSScenario is one parameter setting of experiment E7: the on-line
// sorting algorithm evaluated on streams of artificially delayed event
// records, varying the paper's four qualitative/quantitative parameters —
// delay profile, growth policy, decay half-life and source count.
type OLSScenario struct {
	Name string
	// Sources is the number of event streams.
	Sources int
	// Events per source.
	Events int
	// DelayProfile shapes the per-source artificial delays.
	DelayProfile string // "uniform", "skewed", "spiky"
	// Sorter is the configuration under test.
	Sorter ols.Config
	// Seed makes the run reproducible.
	Seed uint64
}

// OLSResult summarizes one E7 run.
type OLSResult struct {
	Scenario OLSScenario
	// OutOfOrderPct is the fraction of emitted records that broke global
	// timestamp order (the residual the adaptive T could not absorb).
	OutOfOrderPct float64
	// MeanLatencyMicros/P99 are emission latencies (emit time − creation).
	MeanLatencyMicros float64
	P99LatencyMicros  float64
	// FinalT and MaxT are the time frame at the end and its peak.
	FinalT, MaxT int64
	// Emitted counts records that flowed through.
	Emitted uint64
}

// delaySpecs builds per-source stream specs for a profile.
func delaySpecs(profile string, sources int) []workload.StreamSpec {
	specs := make([]workload.StreamSpec, sources)
	for i := range specs {
		sp := workload.StreamSpec{
			Source:  int32(i + 1),
			MeanGap: 200, // ≈5000 events/s per source
		}
		switch profile {
		case "skewed":
			// One slow source far behind the others, the paper's
			// inversion-generating case.
			if i == sources-1 {
				sp.Delay = workload.DelayParams{Base: 2000, JitterMean: 500}
			} else {
				sp.Delay = workload.DelayParams{Base: 100, JitterMean: 50}
			}
		case "spiky":
			// Heavy-tailed delays: occasional multi-millisecond spikes.
			sp.Delay = workload.DelayParams{Base: 100, JitterMean: 100, SpikeProb: 0.02, SpikeMean: 5000}
		default: // uniform
			sp.Delay = workload.DelayParams{Base: 100, JitterMean: 100}
		}
		specs[i] = sp
	}
	return specs
}

// RunOLS executes one E7 scenario: the delayed streams are replayed in
// arrival order against the sorter, and ordering/latency are measured on
// the emitted stream.
func RunOLS(sc OLSScenario) OLSResult {
	events := workload.GenDelayedStreams(delaySpecs(sc.DelayProfile, sc.Sources), sc.Events, sc.Seed)
	s := ols.New(sc.Sorter)
	var lastTS int64
	var outOfOrder, emitted uint64
	var lat stats.Running
	rsv := stats.NewReservoir(4096)
	var maxT int64

	emit := func(now int64) func(rec record.Record) {
		return func(rec record.Record) {
			if emitted > 0 && rec.TS < lastTS {
				outOfOrder++
			}
			lastTS = rec.TS
			emitted++
			d := float64(now - rec.TS)
			lat.Add(d)
			rsv.Add(d)
		}
	}
	for _, ev := range events {
		s.Push(ev.Source, ev.Record(), ev.Arrival)
		s.Extract(ev.Arrival, emit(ev.Arrival))
		if s.TimeFrame() > maxT {
			maxT = s.TimeFrame()
		}
	}
	last := events[len(events)-1].Arrival
	s.Flush(emit(last))

	res := OLSResult{
		Scenario:          sc,
		MeanLatencyMicros: lat.Mean(),
		P99LatencyMicros:  rsv.Quantile(0.99),
		FinalT:            s.TimeFrame(),
		MaxT:              maxT,
		Emitted:           emitted,
	}
	if emitted > 0 {
		res.OutOfOrderPct = 100 * float64(outOfOrder) / float64(emitted)
	}
	return res
}

// DefaultOLSScenarios sweeps the paper's four parameters.
func DefaultOLSScenarios(seed uint64) []OLSScenario {
	mk := func(name, profile string, sources int, cfg ols.Config) OLSScenario {
		return OLSScenario{
			Name: name, Sources: sources, Events: 20_000,
			DelayProfile: profile, Sorter: cfg, Seed: seed,
		}
	}
	return []OLSScenario{
		// Parameter 1: growth policy (paper finding: lateness-sizing is
		// the good strategy for latency-critical applications).
		mk("fixed small T, skewed delays", "skewed", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowFixed}),
		mk("grow-to-lateness, skewed delays", "skewed", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness}),
		mk("grow-double, skewed delays", "skewed", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowDouble}),
		// Parameter 2: decay half-life (paper: a large half-life helps
		// outside latency-critical use).
		mk("lateness + fast decay (1 ms half-life), spiky", "spiky", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness, HalfLife: 1_000}),
		mk("lateness + slow decay (1 s half-life), spiky", "spiky", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness, HalfLife: 1_000_000}),
		mk("lateness + no decay, spiky", "spiky", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness}),
		// Parameter 3: delay profile.
		mk("lateness, uniform delays", "uniform", 4,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness}),
		// Parameter 4: source count.
		mk("lateness, skewed, 2 sources", "skewed", 2,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness}),
		mk("lateness, skewed, 8 sources", "skewed", 8,
			ols.Config{InitialT: 100, Grow: ols.GrowToLateness}),
	}
}

// OLSTable renders a set of E7 results.
func OLSTable(results []OLSResult) *Table {
	t := &Table{
		Title: "E7: on-line sorting parameter sweep (paper: T sized to the latest lateness is " +
			"best when latency-critical; a large T half-life helps otherwise)",
		Header: []string{"scenario", "out-of-order %", "mean lat µs", "p99 lat µs", "final T µs", "peak T µs"},
	}
	for _, r := range results {
		t.Add(r.Scenario.Name, fmt.Sprintf("%.3f", r.OutOfOrderPct),
			r.MeanLatencyMicros, r.P99LatencyMicros, r.FinalT, r.MaxT)
	}
	return t
}
