package bench

import (
	"strconv"
	"time"

	"brisk"
)

// IntrusionRow is one instrumentation density of the intrusion ablation:
// the paper's first design objective is that the overhead on the target
// application be small and predictable, so that perturbation analyses can
// be performed. The ablation runs a fixed synthetic computation with a
// notice every k iterations and reports the slowdown against the
// uninstrumented run.
type IntrusionRow struct {
	// NoticeEveryK is the instrumentation density (0 = uninstrumented).
	NoticeEveryK int
	// NanosPerIter is the measured cost of one work iteration.
	NanosPerIter float64
	// SlowdownPct is the relative overhead against the baseline.
	SlowdownPct float64
	// PredictedPct is the overhead predicted from the standalone notice
	// cost (E1) — closeness of the two columns is the predictability
	// claim.
	PredictedPct float64
}

// work is the synthetic unit of application computation: enough arithmetic
// to dwarf loop overhead but small enough that instrumenting every few
// iterations is meaningful.
func work(x uint64) uint64 {
	for i := 0; i < 60; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		x *= 0x2545F4914F6CDD1D
	}
	return x
}

// benchSink defeats dead-code elimination of the synthetic computation;
// without it the uninstrumented baseline measures an empty loop.
var benchSink uint64

// RunIntrusion measures instrumentation overhead at several densities.
func RunIntrusion(iters int) ([]IntrusionRow, error) {
	if iters <= 0 {
		iters = 2_000_000
	}
	// Baseline: no instrumentation at all.
	var sink uint64
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink = work(sink + uint64(i))
	}
	baseNanos := float64(time.Since(start).Nanoseconds()) / float64(iters)
	benchSink += sink

	// Standalone notice cost for the prediction column.
	noticeNanos := RunNoticeCost(iters / 4).SpecializedNanos

	rows := []IntrusionRow{{NoticeEveryK: 0, NanosPerIter: baseNanos}}
	for _, k := range []int{100, 10, 1} {
		mgr, err := brisk.StartManager(brisk.ManagerOptions{
			MergeInterval: time.Millisecond,
			BufferRecords: 1024,
			Logf:          quiet,
		})
		if err != nil {
			return nil, err
		}
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr:   mgr.Addr(),
			FlushInterval: time.Millisecond,
			Logf:          quiet,
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s := node.NewSensor("intr", brisk.SensorOptions{RingBytes: 1 << 22})
		var x uint64
		start := time.Now()
		for i := 0; i < iters; i++ {
			x = work(x + uint64(i))
			if i%k == 0 {
				s.Notice2i(1, int32(i), int32(x))
			}
		}
		nanos := float64(time.Since(start).Nanoseconds()) / float64(iters)
		benchSink += x
		node.Close()
		mgr.Close()
		rows = append(rows, IntrusionRow{
			NoticeEveryK: k,
			NanosPerIter: nanos,
			SlowdownPct:  100 * (nanos - baseNanos) / baseNanos,
			PredictedPct: 100 * (noticeNanos / float64(k)) / baseNanos,
		})
	}
	return rows, nil
}

// IntrusionTable renders the intrusion ablation.
func IntrusionTable(rows []IntrusionRow) *Table {
	t := &Table{
		Title: "Intrusion ablation: overhead on an instrumented computation " +
			"(paper objective: small, predictable perturbation)",
		Header: []string{"notice every", "ns/iteration", "slowdown %", "predicted %"},
	}
	for _, r := range rows {
		every := "never"
		if r.NoticeEveryK > 0 {
			every = strconv.Itoa(r.NoticeEveryK)
		}
		t.Add(every, r.NanosPerIter, r.SlowdownPct, r.PredictedPct)
	}
	return t
}
