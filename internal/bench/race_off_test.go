//go:build !race

package bench

// raceEnabled reports whether the race detector is active; thresholds on
// CPU-proportional assertions are relaxed under it.
const raceEnabled = false
