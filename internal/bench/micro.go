package bench

import (
	"time"

	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
)

// NoticeCostResult is experiment E1: the per-notice CPU cost of the
// instrumented application's hot path, for the specialized six-int notice
// (the paper's workload), the dynamic notice, and a string notice, plus
// the external sensor's amortized per-record drain cost.
type NoticeCostResult struct {
	Iterations       int
	SpecializedNanos float64
	DynamicNanos     float64
	StringNanos      float64
	DrainNanos       float64
}

// RunNoticeCost measures E1 with the given iteration count (≤0 picks a
// default of two million).
func RunNoticeCost(iters int) NoticeCostResult {
	if iters <= 0 {
		iters = 2_000_000
	}
	res := NoticeCostResult{Iterations: iters}

	// Specialized path: the paper's six-int record.
	{
		s := sensor.New(shm.NewRegion(), "e1", sensor.Options{RingBytes: 1 << 22})
		start := time.Now()
		for i := 0; i < iters; i++ {
			if !s.Notice6i(1, int32(i), 2, 3, 4, 5, 6) {
				s.Ring().Drain(0, func([]byte) {})
			}
		}
		res.SpecializedNanos = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	// Dynamic path: same record through the general Notice.
	{
		s := sensor.New(shm.NewRegion(), "e1d", sensor.Options{RingBytes: 1 << 22})
		start := time.Now()
		for i := 0; i < iters; i++ {
			ok := s.Notice(1, record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
				record.I32Val(4), record.I32Val(5), record.I32Val(6))
			if !ok {
				s.Ring().Drain(0, func([]byte) {})
			}
		}
		res.DynamicNanos = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	// String payload.
	{
		s := sensor.New(shm.NewRegion(), "e1s", sensor.Options{RingBytes: 1 << 22})
		start := time.Now()
		for i := 0; i < iters; i++ {
			if !s.Notice1s(1, "instrumented message") {
				s.Ring().Drain(0, func([]byte) {})
			}
		}
		res.StringNanos = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	// Drain cost per record (the external sensor's side of the ring).
	{
		s := sensor.New(shm.NewRegion(), "e1r", sensor.Options{RingBytes: 1 << 22})
		var total time.Duration
		drained := 0
		batch := make([]byte, 0, 1<<20)
		for drained < iters {
			n := 0
			for s.Notice6i(1, 0, 0, 0, 0, 0, 0) {
				n++
				if n >= 50_000 {
					break
				}
			}
			start := time.Now()
			var got int
			batch, got = s.Ring().DrainAppend(batch[:0], 0)
			total += time.Since(start)
			drained += got
		}
		res.DrainNanos = float64(total.Nanoseconds()) / float64(drained)
	}
	return res
}

// Table renders E1.
func (r NoticeCostResult) Table() *Table {
	t := &Table{
		Title:  "E1: notice cost (paper: 3.6–18.6 µs per average notice)",
		Header: []string{"path", "ns/notice"},
	}
	t.Add("Notice6i (specialized, 40-byte record)", r.SpecializedNanos)
	t.Add("Notice (dynamic, same record)", r.DynamicNanos)
	t.Add("Notice1s (string payload)", r.StringNanos)
	t.Add("EXS ring drain (per record)", r.DrainNanos)
	return t
}
