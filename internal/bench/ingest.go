package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/wire"
)

// IngestResult is one configuration of the manager-side ingest benchmark:
// N synthetic sessions flood the manager with pre-encoded record batches
// over TCP, and the decode → merge → sort → sink path is measured end to
// end at the manager. The clients reuse one pre-encoded payload, so the
// manager is the bottleneck and the number reported is the ISM's ingest
// capacity, not the sensors'.
type IngestResult struct {
	Name            string  `json:"name"`
	Sessions        int     `json:"sessions"`
	Shards          int     `json:"shards,omitempty"`
	Core            string  `json:"core,omitempty"`
	Records         int     `json:"records"`
	ElapsedMicros   int64   `json:"elapsed_micros"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	MBPerSec        float64 `json:"mb_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// Skipped, when non-empty, says why this configuration was not run
	// on this box (e.g. a shard-scaling number that would be misleading
	// without enough CPUs). Skipped rows carry no numbers and are
	// excluded from baseline comparison.
	Skipped string `json:"skipped,omitempty"`
}

// BenchEnv records the machine a bench file was produced on, so numbers
// from incomparable boxes are never compared silently.
type BenchEnv struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// BenchFile is the JSON layout of BENCH_baseline.json (the committed
// reference numbers) and BENCH_current.json (the bench-check gate's
// per-run output, compared against the baseline and never committed).
type BenchFile struct {
	Schema int `json:"schema"`
	// Env is the producing machine; absent in files written before it
	// was recorded.
	Env     *BenchEnv      `json:"env,omitempty"`
	Results []IngestResult `json:"results"`
}

// BenchSchema versions the BenchFile layout.
const BenchSchema = 1

// RunIngest floods a manager with pre-encoded record batches from
// `sessions` synthetic sensors and reports the sustained delivery rate at
// the sinks, plus the whole-process allocation cost per record.
func RunIngest(sessions, perSession, batchRecords int) (IngestResult, error) {
	if sessions <= 0 {
		sessions = 1
	}
	if perSession <= 0 {
		perSession = 150_000
	}
	if batchRecords <= 0 {
		batchRecords = 256
	}
	batches := perSession / batchRecords
	if batches == 0 {
		batches = 1
	}
	perSession = batches * batchRecords
	total := sessions * perSession

	m, err := ism.New(ism.Config{
		Addr:              "127.0.0.1:0",
		MergeInterval:     time.Millisecond,
		BufferRecords:     1 << 16,
		Sorter:            ols.Config{InitialT: 100},
		HeartbeatInterval: -1,
		Logf:              quiet,
	})
	if err != nil {
		return IngestResult{}, err
	}
	m.Start()
	defer m.Close()

	// The evaluation record: an embedded timestamp plus six ints, 40 bytes
	// on the wire. Stamped well in the past so extraction never waits on T.
	ts := time.Now().UnixMicro() - 10_000_000
	var payload []byte
	for i := 0; i < batchRecords; i++ {
		rec := record.New(1,
			record.TSVal(ts),
			record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
		payload, err = rec.Append(payload)
		if err != nil {
			return IngestResult{}, err
		}
	}

	conns := make([]*wire.Conn, sessions)
	for i := range conns {
		raw, err := net.Dial("tcp", m.Addr())
		if err != nil {
			return IngestResult{}, err
		}
		defer raw.Close()
		wc := wire.NewConn(raw)
		if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "bench"}); err != nil {
			return IngestResult{}, err
		}
		if _, err := wc.Recv(); err != nil {
			return IngestResult{}, fmt.Errorf("bench: hello ack: %w", err)
		}
		conns[i] = wc
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for _, wc := range conns {
		wg.Add(1)
		go func(wc *wire.Conn) {
			defer wg.Done()
			b := &wire.DataBatch{Count: uint32(batchRecords), Payload: payload}
			for i := 0; i < batches; i++ {
				if err := wc.Send(b); err != nil {
					errs <- err
					return
				}
			}
		}(wc)
	}
	wg.Wait()
	deadline := time.Now().Add(120 * time.Second)
	for int(m.Stats().Emitted) < total && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return IngestResult{}, err
	default:
	}
	st := m.Stats()
	if int(st.Emitted) < total {
		return IngestResult{}, fmt.Errorf("bench: manager emitted %d of %d", st.Emitted, total)
	}
	return IngestResult{
		Name:            fmt.Sprintf("ingest/sessions=%d", sessions),
		Sessions:        sessions,
		Records:         total,
		ElapsedMicros:   elapsed.Microseconds(),
		RecordsPerSec:   float64(total) / elapsed.Seconds(),
		MBPerSec:        float64(st.BytesIn) / 1e6 / elapsed.Seconds(),
		AllocsPerRecord: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}, nil
}

// RunIngestSuite runs the ingest benchmark at each session count.
func RunIngestSuite(sessionCounts []int, perSession, batchRecords int) ([]IngestResult, error) {
	if len(sessionCounts) == 0 {
		sessionCounts = []int{1, 8}
	}
	var out []IngestResult
	for _, n := range sessionCounts {
		r, err := RunIngest(n, perSession, batchRecords)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// IngestTable renders the suite.
func IngestTable(rows []IngestResult) *Table {
	t := &Table{
		Title:  "ingest: manager decode→merge→sink capacity vs session count",
		Header: []string{"sessions", "records", "elapsed", "records/s", "MB/s", "allocs/record"},
	}
	for _, r := range rows {
		t.Add(r.Sessions, r.Records,
			(time.Duration(r.ElapsedMicros) * time.Microsecond).Round(time.Millisecond),
			r.RecordsPerSec, r.MBPerSec, r.AllocsPerRecord)
	}
	return t
}

// WriteBenchFile writes the suite results as a bench-check reference
// file, stamped with the producing machine's CPU budget. Skipped rows
// are omitted from the file entirely — they carry no numbers, and a
// `records: 0` row in the JSON invites downstream tooling to divide by
// zero; the skip reason still appears on the rendered table and in the
// gate's log.
func WriteBenchFile(path string, results []IngestResult) error {
	kept := make([]IngestResult, 0, len(results))
	for _, r := range results {
		if r.Skipped == "" {
			kept = append(kept, r)
		}
	}
	f := BenchFile{
		Schema:  BenchSchema,
		Env:     &BenchEnv{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()},
		Results: kept,
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchFile loads a bench-check reference file.
func ReadBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != BenchSchema {
		return f, fmt.Errorf("%s: schema %d, want %d", path, f.Schema, BenchSchema)
	}
	return f, nil
}

// CompareBench checks the current results against a baseline: every
// baseline configuration must be present, within maxLoss fractional
// throughput regression, and within allocSlack extra allocations per
// record (absolute; the exact zero-allocation floor is asserted separately
// by the AllocsPerRun tests, this guards the whole-process number against
// reintroduced hot-path allocations while tolerating GC/runtime noise).
// It returns a description of each violation, empty when the gate passes.
func CompareBench(baseline, current []IngestResult, maxLoss, allocSlack float64) []string {
	cur := make(map[string]IngestResult, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var bad []string
	for _, b := range baseline {
		if b.Skipped != "" {
			continue
		}
		c, ok := cur[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		// A configuration this box cannot run honestly is announced, not
		// compared: a SKIP row beats a misleading number.
		if c.Skipped != "" {
			continue
		}
		if c.RecordsPerSec < b.RecordsPerSec*(1-maxLoss) {
			bad = append(bad, fmt.Sprintf("%s: throughput %.0f rec/s is %.1f%% below baseline %.0f",
				b.Name, c.RecordsPerSec, 100*(1-c.RecordsPerSec/b.RecordsPerSec), b.RecordsPerSec))
		}
		if c.AllocsPerRecord > b.AllocsPerRecord+allocSlack {
			bad = append(bad, fmt.Sprintf("%s: %.2f allocs/record exceeds baseline %.2f (+%.2f slack)",
				b.Name, c.AllocsPerRecord, b.AllocsPerRecord, allocSlack))
		}
	}
	return bad
}
