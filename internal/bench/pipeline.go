package bench

import (
	"fmt"
	"runtime"
	"sync"
	"syscall"
	"time"

	"brisk"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/stats"
	"brisk/internal/workload"
)

func quiet(string, ...any) {}

// ThroughputResult is experiment E3: the maximum sustainable EXS→ISM
// event rate for the paper's 40-byte records.
type ThroughputResult struct {
	Events    int
	Elapsed   time.Duration
	EventsPS  float64
	MBytesPS  float64
	RingDrops uint64
}

// RunThroughput measures E3 by pushing events unpaced through one node
// into the manager until all arrive.
func RunThroughput(events int) (ThroughputResult, error) {
	if events <= 0 {
		events = 500_000
	}
	mgr, err := brisk.StartManager(brisk.ManagerOptions{
		MergeInterval: time.Millisecond,
		BufferRecords: 4096,
		Logf:          quiet,
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer mgr.Close()
	node, err := brisk.ConnectNode(brisk.NodeOptions{
		ManagerAddr:   mgr.Addr(),
		FlushInterval: time.Millisecond,
		PollInterval:  100 * time.Microsecond,
		Logf:          quiet,
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	defer node.Close()

	// The application retries when the ring is momentarily full so that
	// the result is the pipeline's sustained delivered rate, not the rate
	// at which the ring can shed load.
	s := node.NewSensor("tp", brisk.SensorOptions{RingBytes: 1 << 22})
	start := time.Now()
	for i := 0; i < events; i++ {
		for !s.Notice6i(1, int32(i), 2, 3, 4, 5, 6) {
			runtime.Gosched()
		}
	}
	node.Flush()
	deadline := time.Now().Add(120 * time.Second)
	for int(mgr.Stats().Received) < events && time.Now().Before(deadline) {
		node.Flush()
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	st := mgr.Stats()
	if int(st.Received) < events {
		return ThroughputResult{}, fmt.Errorf("bench: manager received %d of %d", st.Received, events)
	}
	return ThroughputResult{
		Events:    events,
		Elapsed:   elapsed,
		EventsPS:  float64(events) / elapsed.Seconds(),
		MBytesPS:  float64(st.BytesIn) / 1e6 / elapsed.Seconds(),
		RingDrops: node.Stats().RingDropped,
	}, nil
}

// Table renders E3.
func (r ThroughputResult) Table() *Table {
	t := &Table{
		Title:  "E3: EXS→ISM throughput (paper: max ≈ 90,000 events/s)",
		Header: []string{"events", "elapsed", "events/s", "MB/s", "ring drops"},
	}
	t.Add(r.Events, r.Elapsed.Round(time.Millisecond), r.EventsPS, r.MBytesPS, r.RingDrops)
	return t
}

// LatencyRow is one knob setting of experiment E4.
type LatencyRow struct {
	FlushInterval time.Duration
	MergeInterval time.Duration
	MeanMicros    float64
	P99Micros     float64
	MaxMicros     float64
}

// RunLatency measures E4: end-to-end latency (notice to consumer) as a
// function of the batching/merging knobs — the waiting-call bound the
// paper identifies as the worst-case latency floor.
func RunLatency(eventsPerSetting int) ([]LatencyRow, error) {
	if eventsPerSetting <= 0 {
		eventsPerSetting = 200
	}
	type setting struct{ flush, merge time.Duration }
	settings := []setting{
		{500 * time.Microsecond, time.Millisecond},
		{2 * time.Millisecond, 2 * time.Millisecond},
		{5 * time.Millisecond, 5 * time.Millisecond},
		{10 * time.Millisecond, 10 * time.Millisecond},
		{20 * time.Millisecond, 20 * time.Millisecond},
		{40 * time.Millisecond, 40 * time.Millisecond},
	}
	var rows []LatencyRow
	for _, cfg := range settings {
		mgr, err := brisk.StartManager(brisk.ManagerOptions{
			MergeInterval: cfg.merge,
			Sorter:        brisk.SorterOptions{InitialT: 100},
			Logf:          quiet,
		})
		if err != nil {
			return nil, err
		}
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr:   mgr.Addr(),
			FlushInterval: cfg.flush,
			Logf:          quiet,
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s := node.NewSensor("lat")
		c := mgr.Consume()
		res := stats.NewReservoir(eventsPerSetting)
		var run stats.Running
		for i := 0; i < eventsPerSetting; i++ {
			t0 := time.Now()
			s.Notice2i(1, int32(i), 0)
			for {
				if _, ok := c.TryNext(); ok {
					break
				}
				time.Sleep(20 * time.Microsecond)
			}
			d := float64(time.Since(t0).Microseconds())
			res.Add(d)
			run.Add(d)
			time.Sleep(time.Millisecond)
		}
		node.Close()
		mgr.Close()
		rows = append(rows, LatencyRow{
			FlushInterval: cfg.flush,
			MergeInterval: cfg.merge,
			MeanMicros:    run.Mean(),
			P99Micros:     res.Quantile(0.99),
			MaxMicros:     run.Max(),
		})
	}
	return rows, nil
}

// LatencyTable renders E4.
func LatencyTable(rows []LatencyRow) *Table {
	t := &Table{
		Title:  "E4: end-to-end latency vs batching knobs (paper: waiting calls bound worst case ≈ 40 ms)",
		Header: []string{"flush", "merge", "mean µs", "p99 µs", "max µs"},
	}
	for _, r := range rows {
		t.Add(r.FlushInterval, r.MergeInterval, r.MeanMicros, r.P99Micros, r.MaxMicros)
	}
	return t
}

// ScaleRow is one cluster size of experiment E5.
type ScaleRow struct {
	Nodes       int
	AggregatePS float64
	PerNodePS   float64
}

// RunScale measures E5: aggregate manager throughput as nodes are added,
// each node pushing unpaced. The paper found the ISM's CPU demand the
// bottleneck, with aggregate throughput roughly constant from 1 to 8
// nodes.
func RunScale(maxNodes int, perNodeEvents int) ([]ScaleRow, error) {
	if maxNodes <= 0 {
		maxNodes = 8
	}
	if perNodeEvents <= 0 {
		perNodeEvents = 100_000
	}
	var rows []ScaleRow
	for n := 1; n <= maxNodes; n++ {
		mgr, err := brisk.StartManager(brisk.ManagerOptions{
			MergeInterval: time.Millisecond,
			BufferRecords: 4096,
			Logf:          quiet,
		})
		if err != nil {
			return nil, err
		}
		var nodes []*brisk.Node
		ok := true
		for i := 0; i < n; i++ {
			node, err := brisk.ConnectNode(brisk.NodeOptions{
				ManagerAddr:   mgr.Addr(),
				FlushInterval: time.Millisecond,
				PollInterval:  100 * time.Microsecond,
				Logf:          quiet,
			})
			if err != nil {
				ok = false
				break
			}
			nodes = append(nodes, node)
		}
		if !ok {
			mgr.Close()
			return nil, fmt.Errorf("bench: node connect failed at n=%d", n)
		}
		total := n * perNodeEvents
		start := time.Now()
		var wg sync.WaitGroup
		for _, node := range nodes {
			wg.Add(1)
			go func(node *brisk.Node) {
				defer wg.Done()
				s := node.NewSensor("scale", brisk.SensorOptions{RingBytes: 1 << 22})
				for i := 0; i < perNodeEvents; i++ {
					for !s.Notice6i(1, int32(i), 2, 3, 4, 5, 6) {
						runtime.Gosched()
					}
				}
				node.Flush()
			}(node)
		}
		wg.Wait()
		deadline := time.Now().Add(180 * time.Second)
		for int(mgr.Stats().Received) < total && time.Now().Before(deadline) {
			for _, node := range nodes {
				node.Flush()
			}
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		recv := mgr.Stats().Received
		for _, node := range nodes {
			node.Close()
		}
		mgr.Close()
		if int(recv) < total {
			return nil, fmt.Errorf("bench: scale n=%d received %d of %d", n, recv, total)
		}
		agg := float64(total) / elapsed.Seconds()
		rows = append(rows, ScaleRow{Nodes: n, AggregatePS: agg, PerNodePS: agg / float64(n)})
	}
	return rows, nil
}

// ScaleTable renders E5.
func ScaleTable(rows []ScaleRow) *Table {
	t := &Table{
		Title:  "E5: aggregate throughput vs nodes (paper: ≈constant, ISM CPU-bound, 1–8 EXS)",
		Header: []string{"nodes", "aggregate events/s", "per-node events/s"},
	}
	for _, r := range rows {
		t.Add(r.Nodes, r.AggregatePS, r.PerNodePS)
	}
	return t
}

// UtilRow is one event rate of experiment E2.
type UtilRow struct {
	RatePS      int
	TotalCPUPct float64
	ExsCPUPct   float64
}

// cpuTime returns the process's user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// RunEXSUtil measures E2: the external sensor's CPU share while the node
// runs a paced application. Since application and external sensor share
// one process here, the EXS share is estimated differentially: total CPU
// of the full pipeline minus the CPU of the same paced application whose
// ring is drained by a no-op collector.
func RunEXSUtil(rates []int, dur time.Duration) ([]UtilRow, error) {
	if len(rates) == 0 {
		rates = []int{1000, 5000, 10000, 20000, 38000}
	}
	if dur <= 0 {
		dur = 2 * time.Second
	}
	var rows []UtilRow
	for _, rate := range rates {
		// Baseline: paced application + no-op drain, no EXS/manager.
		base, err := runBaseline(rate, dur)
		if err != nil {
			return nil, err
		}
		// Full pipeline.
		mgr, err := brisk.StartManager(brisk.ManagerOptions{
			MergeInterval: 2 * time.Millisecond,
			BufferRecords: 1024,
			Logf:          quiet,
		})
		if err != nil {
			return nil, err
		}
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr:   mgr.Addr(),
			FlushInterval: 5 * time.Millisecond,
			Logf:          quiet,
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s := node.NewSensor("util", brisk.SensorOptions{RingBytes: 1 << 22})
		l := &workload.Looper{Sensor: s, Event: 1, Rate: rate}
		c0 := cpuTime()
		start := time.Now()
		l.RunFor(dur)
		elapsed := time.Since(start)
		full := cpuTime() - c0
		node.Close()
		mgr.Close()

		totalPct := 100 * full.Seconds() / elapsed.Seconds()
		exsPct := 100 * (full - base).Seconds() / elapsed.Seconds()
		if exsPct < 0 {
			exsPct = 0
		}
		rows = append(rows, UtilRow{RatePS: rate, TotalCPUPct: totalPct, ExsCPUPct: exsPct})
	}
	return rows, nil
}

// runBaseline runs the paced application alone (ring drained by a no-op
// goroutine standing in for "no external sensor") and returns CPU used.
func runBaseline(rate int, dur time.Duration) (time.Duration, error) {
	region := shm.NewRegion()
	s := sensor.New(region, "base", sensor.Options{RingBytes: 1 << 22})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, ring := range region.Rings() {
					ring.Drain(0, func([]byte) {})
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	l := &workload.Looper{Sensor: s, Event: 1, Rate: rate}
	c0 := cpuTime()
	l.RunFor(dur)
	base := cpuTime() - c0
	close(stop)
	wg.Wait()
	return base, nil
}

// UtilTable renders E2.
func UtilTable(rows []UtilRow) *Table {
	t := &Table{
		Title:  "E2: EXS CPU share at fixed event rates (paper: < 1 % up to 38,000 events/s)",
		Header: []string{"events/s", "pipeline CPU %", "EXS share %"},
	}
	for _, r := range rows {
		t.Add(r.RatePS, r.TotalCPUPct, r.ExsCPUPct)
	}
	return t
}

// BatchRow is one batch-size setting of the E3 batching ablation.
type BatchRow struct {
	BatchBytes int
	EventsPS   float64
	Batches    uint64
}

// RunBatchAblation sweeps the external sensor's batch-size knob at a
// fixed event volume: the throughput/latency trade the paper's "batching,
// latency control" stage exists to tune.
func RunBatchAblation(events int) ([]BatchRow, error) {
	if events <= 0 {
		events = 200_000
	}
	var rows []BatchRow
	for _, bb := range []int{512, 2048, 16384, 65536} {
		mgr, err := brisk.StartManager(brisk.ManagerOptions{
			MergeInterval: time.Millisecond,
			BufferRecords: 1024,
			Logf:          quiet,
		})
		if err != nil {
			return nil, err
		}
		node, err := brisk.ConnectNode(brisk.NodeOptions{
			ManagerAddr:   mgr.Addr(),
			BatchBytes:    bb,
			FlushInterval: time.Millisecond,
			PollInterval:  100 * time.Microsecond,
			Logf:          quiet,
		})
		if err != nil {
			mgr.Close()
			return nil, err
		}
		s := node.NewSensor("ba", brisk.SensorOptions{RingBytes: 1 << 22})
		start := time.Now()
		for i := 0; i < events; i++ {
			for !s.Notice6i(1, int32(i), 0, 0, 0, 0, 0) {
				runtime.Gosched()
			}
		}
		node.Flush()
		deadline := time.Now().Add(120 * time.Second)
		for int(mgr.Stats().Received) < events && time.Now().Before(deadline) {
			node.Flush()
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		batches := node.Stats().Batches
		node.Close()
		mgr.Close()
		rows = append(rows, BatchRow{
			BatchBytes: bb,
			EventsPS:   float64(events) / elapsed.Seconds(),
			Batches:    batches,
		})
	}
	return rows, nil
}

// BatchTable renders the batching ablation.
func BatchTable(rows []BatchRow) *Table {
	t := &Table{
		Title:  "E3 ablation: throughput vs batch size (the EXS batching knob)",
		Header: []string{"batch bytes", "events/s", "batches sent"},
	}
	for _, r := range rows {
		t.Add(r.BatchBytes, r.EventsPS, r.Batches)
	}
	return t
}
