package bench

import (
	"fmt"

	"brisk/internal/clocksync"
	"brisk/internal/simnet"
	"brisk/internal/stats"
)

// SyncScenario configures one clock-synchronization run of experiment E6.
type SyncScenario struct {
	Name string
	// Nodes is the cluster size (the paper used 8).
	Nodes int
	// OffsetSpread is the half-width of the initial offsets (µs).
	OffsetSpread int64
	// DriftSpread is the half-width of the frequency errors (ppm).
	DriftSpread float64
	// Net is the latency model.
	Net simnet.Params
	// Rounds at PollPeriod µs (the paper: 5 s rounds over 10 minutes).
	Rounds     int
	PollPeriod int64
	// Sync is the algorithm configuration.
	Sync clocksync.Config
	// Seed makes the run reproducible.
	Seed uint64
}

// SyncResult summarizes one E6 run.
type SyncResult struct {
	Scenario         SyncScenario
	RoundsToConverge int
	// Probes is the total probe round trips issued over the run — the
	// traffic the model-based scheduler trades against skew.
	Probes int
	// Fallbacks counts model-divergence events (0 in fixed-cadence mode).
	Fallbacks uint64
	// SteadyMeanMicros/SteadyP95/SteadyMax summarize the post-convergence
	// (second-half) mutual skew.
	SteadyMeanMicros float64
	SteadyP95Micros  float64
	SteadyMaxMicros  float64
	// Under200Pct is the fraction of second-half rounds with skew under
	// 200 µs (the paper's disturbed-LAN bound).
	Under200Pct float64
	// Series is the per-round max mutual skew.
	Series []int64
}

// RunSync executes one E6 scenario.
func RunSync(sc SyncScenario) SyncResult {
	c := clocksync.NewSimCluster(sc.Nodes, sc.Net, sc.OffsetSpread, sc.DriftSpread, sc.Seed)
	run := c.Run(sc.Sync, sc.Rounds, sc.PollPeriod, 100)
	res := SyncResult{
		Scenario:         sc,
		RoundsToConverge: run.RoundsToConverge,
		Probes:           run.TotalProbes,
		Fallbacks:        run.Fallbacks,
		Series:           run.SkewAfterRound,
	}
	half := run.SkewAfterRound[len(run.SkewAfterRound)/2:]
	var running stats.Running
	rsv := stats.NewReservoir(len(half))
	under := 0
	for _, s := range half {
		running.Add(float64(s))
		rsv.Add(float64(s))
		if s < 200 {
			under++
		}
	}
	res.SteadyMeanMicros = running.Mean()
	res.SteadyP95Micros = rsv.Quantile(0.95)
	res.SteadyMaxMicros = running.Max()
	res.Under200Pct = 100 * float64(under) / float64(len(half))
	return res
}

// DefaultSyncScenarios reproduces the paper's E6 conditions: 8 nodes,
// 5-second polling over 10 minutes (120 rounds), quiet and disturbed
// LANs, plus the BRISK-vs-Cristian convergence ablation.
func DefaultSyncScenarios(seed uint64) []SyncScenario {
	const fiveSeconds = 5_000_000
	base := SyncScenario{
		Nodes:        8,
		OffsetSpread: 5_000_000, // start up to ±5 s apart
		DriftSpread:  2,
		Rounds:       120,
		PollPeriod:   fiveSeconds,
		Seed:         seed,
	}
	quietSc := base
	quietSc.Name = "quiet LAN (light conditions)"
	quietSc.Net = simnet.QuietLAN(seed)

	disturbed := base
	disturbed.Name = "disturbed LAN"
	disturbed.Net = simnet.LAN(seed + 1)
	disturbed.Sync = clocksync.Config{MaxRTT: 1500}

	briskAlg := base
	briskAlg.Name = "BRISK algorithm, 50 ms initial spread"
	briskAlg.OffsetSpread = 50_000
	briskAlg.Net = simnet.QuietLAN(seed + 2)

	cristian := briskAlg
	cristian.Name = "original Cristian (amortized slew), 50 ms initial spread"
	cristian.Sync = clocksync.Config{Algorithm: clocksync.AlgCristian, MaxSlew: 2500}

	return []SyncScenario{quietSc, disturbed, briskAlg, cristian}
}

// SyncTable renders a set of E6 results.
func SyncTable(results []SyncResult) *Table {
	t := &Table{
		Title: "E6: clock synchronization, 8 nodes, 5 s rounds (paper: tens of µs quiet; " +
			"<200 µs most of the time disturbed; faster convergence than Cristian)",
		Header: []string{"scenario", "converge (rounds)", "steady mean µs", "steady p95 µs", "steady max µs", "<200µs %"},
	}
	for _, r := range results {
		t.Add(r.Scenario.Name, r.RoundsToConverge, r.SteadyMeanMicros,
			r.SteadyP95Micros, r.SteadyMaxMicros, r.Under200Pct)
	}
	return t
}

// FilterAblationScenarios compares probe-sample reductions under the
// disturbed LAN: the paper's plain mean, Cristian's min-RTT refinement,
// and the mean with the congested-probe (MaxRTT) filter — the knob a
// BRISK user would turn when LAN disturbances pollute estimates.
func FilterAblationScenarios(seed uint64) []SyncScenario {
	base := SyncScenario{
		Nodes:        8,
		OffsetSpread: 5_000_000,
		DriftSpread:  2,
		Net:          simnet.LAN(seed + 10),
		Rounds:       120,
		PollPeriod:   5_000_000,
		Seed:         seed,
	}
	mean := base
	mean.Name = "mean of 5 probes (paper default)"
	minRTT := base
	minRTT.Name = "min-RTT probe"
	minRTT.Sync = clocksync.Config{Filter: clocksync.FilterMinRTT}
	filtered := base
	filtered.Name = "mean + MaxRTT 1.5 ms filter"
	filtered.Sync = clocksync.Config{MaxRTT: 1500}
	return []SyncScenario{mean, minRTT, filtered}
}

// ModelSyncConfig is the tuned model-based scheduler configuration the
// probe-efficiency comparison (and the CI sync-gate) runs: probe a slave
// when its predicted one-σ offset uncertainty crosses 150 µs, never
// sooner than the 5 s poll period, never later than every 2 minutes.
func ModelSyncConfig() clocksync.Config {
	return clocksync.Config{
		MaxRTT:           1500,
		UncertaintyBound: 150,
		MinProbeInterval: 5_000_000,
		MaxProbeInterval: 120_000_000,
		MeasurementNoise: 30,
		DriftWalkPPM:     0.01,
	}
}

// SyncEfficiencyResult pairs a fixed-cadence run with its model-based
// twin on identical seeds: same cluster, same latency draws, only the
// scheduler differs.
type SyncEfficiencyResult struct {
	Name         string
	Fixed, Model SyncResult
	// Reduction is fixed probes over model probes — the factor the
	// ROADMAP targets at 5–10×.
	Reduction float64
}

// SyncEfficiencyScenarios builds the fixed/model scenario pairs: the E6
// quiet and disturbed LANs.
func SyncEfficiencyScenarios(seed uint64) []SyncScenario {
	base := SyncScenario{
		Nodes:        8,
		OffsetSpread: 5_000_000,
		DriftSpread:  2,
		Rounds:       120,
		PollPeriod:   5_000_000,
		Seed:         seed,
	}
	quietSc := base
	quietSc.Name = "quiet LAN"
	quietSc.Net = simnet.QuietLAN(seed)
	disturbed := base
	disturbed.Name = "disturbed LAN"
	disturbed.Net = simnet.LAN(seed + 1)
	disturbed.Sync = clocksync.Config{MaxRTT: 1500}
	return []SyncScenario{quietSc, disturbed}
}

// RunSyncEfficiency runs each scenario twice — fixed cadence as given,
// then model-based under ModelSyncConfig — and reports the probe
// reduction alongside both skew summaries.
func RunSyncEfficiency(scenarios []SyncScenario) []SyncEfficiencyResult {
	var out []SyncEfficiencyResult
	for _, sc := range scenarios {
		fixed := RunSync(sc)
		msc := sc
		msc.Sync = ModelSyncConfig()
		model := RunSync(msc)
		r := SyncEfficiencyResult{Name: sc.Name, Fixed: fixed, Model: model}
		if model.Probes > 0 {
			r.Reduction = float64(fixed.Probes) / float64(model.Probes)
		}
		out = append(out, r)
	}
	return out
}

// SyncEfficiencyTable renders the fixed-vs-model comparison.
func SyncEfficiencyTable(results []SyncEfficiencyResult) *Table {
	t := &Table{
		Title: "sync probe efficiency: fixed cadence vs model-based scheduling " +
			"(ROADMAP target: equal-or-better skew at 5–10× fewer probe RTTs)",
		Header: []string{"scenario", "sched", "probes", "reduction",
			"steady p95 µs", "steady max µs", "fallbacks"},
	}
	for _, r := range results {
		t.Add(r.Name, "fixed", r.Fixed.Probes, "",
			r.Fixed.SteadyP95Micros, r.Fixed.SteadyMaxMicros, r.Fixed.Fallbacks)
		t.Add(r.Name, "model", r.Model.Probes, fmt.Sprintf("%.1fx", r.Reduction),
			r.Model.SteadyP95Micros, r.Model.SteadyMaxMicros, r.Model.Fallbacks)
	}
	return t
}
