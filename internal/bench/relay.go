package bench

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/relay"
	"brisk/internal/wire"
)

// RunRelayIngest is the federated counterpart of RunIngest: `sessions`
// synthetic sensors flood ONE relay with pre-encoded batches, the relay
// locally sorts and forwards its merged regional stream upstream as a
// single RelayBatch session, and the root re-merges it. The reported rate
// is sustained end-to-end delivery at the root's sinks, so it prices the
// whole extra hop: relay decode → sort → forward tap → uplink encode →
// root decode → merge. Compare against ingest/sessions=N for the relay
// tier's overhead.
func RunRelayIngest(sessions, perSession, batchRecords int) (IngestResult, error) {
	if sessions <= 0 {
		sessions = 1
	}
	if perSession <= 0 {
		perSession = 150_000
	}
	if batchRecords <= 0 {
		batchRecords = 256
	}
	batches := perSession / batchRecords
	if batches == 0 {
		batches = 1
	}
	perSession = batches * batchRecords
	total := sessions * perSession

	root, err := ism.New(ism.Config{
		Addr:              "127.0.0.1:0",
		MergeInterval:     time.Millisecond,
		BufferRecords:     1 << 16,
		Sorter:            ols.Config{InitialT: 100},
		HeartbeatInterval: -1,
		Logf:              quiet,
	})
	if err != nil {
		return IngestResult{}, err
	}
	root.Start()
	defer root.Close()

	rl, err := relay.New(relay.Config{
		Addr:   "127.0.0.1:0",
		Parent: root.Addr(),
		Name:   "bench-relay",
		ISM: ism.Config{
			MergeInterval:     time.Millisecond,
			BufferRecords:     1 << 16,
			Sorter:            ols.Config{InitialT: 100},
			HeartbeatInterval: -1,
		},
		BatchRecords:  batchRecords,
		FlushInterval: time.Millisecond,
		Logf:          quiet,
	})
	if err != nil {
		return IngestResult{}, err
	}
	defer rl.Close()

	ts := time.Now().UnixMicro() - 10_000_000
	var payload []byte
	for i := 0; i < batchRecords; i++ {
		rec := record.New(1,
			record.TSVal(ts),
			record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
		payload, err = rec.Append(payload)
		if err != nil {
			return IngestResult{}, err
		}
	}

	conns := make([]*wire.Conn, sessions)
	for i := range conns {
		raw, err := net.Dial("tcp", rl.Addr())
		if err != nil {
			return IngestResult{}, err
		}
		defer raw.Close()
		wc := wire.NewConn(raw)
		if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "bench"}); err != nil {
			return IngestResult{}, err
		}
		if _, err := wc.Recv(); err != nil {
			return IngestResult{}, fmt.Errorf("bench: relay hello ack: %w", err)
		}
		conns[i] = wc
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for _, wc := range conns {
		wg.Add(1)
		go func(wc *wire.Conn) {
			defer wg.Done()
			b := &wire.DataBatch{Count: uint32(batchRecords), Payload: payload}
			for i := 0; i < batches; i++ {
				if err := wc.Send(b); err != nil {
					errs <- err
					return
				}
			}
		}(wc)
	}
	wg.Wait()
	deadline := time.Now().Add(120 * time.Second)
	for int(root.Stats().Emitted) < total && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	select {
	case err := <-errs:
		return IngestResult{}, err
	default:
	}
	st := root.Stats()
	if int(st.Emitted) < total {
		return IngestResult{}, fmt.Errorf("bench: root emitted %d of %d through the relay", st.Emitted, total)
	}
	return IngestResult{
		Name:            fmt.Sprintf("relay/sessions=%d", sessions),
		Sessions:        sessions,
		Records:         total,
		ElapsedMicros:   elapsed.Microseconds(),
		RecordsPerSec:   float64(total) / elapsed.Seconds(),
		MBPerSec:        float64(st.BytesIn) / 1e6 / elapsed.Seconds(),
		AllocsPerRecord: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}, nil
}

// RelayTable renders the relay-hop rows next to nothing else: the
// interesting comparison (direct ingest at the same session count) lives
// in the ingest table above it.
func RelayTable(rows []IngestResult) *Table {
	t := &Table{
		Title:  "relay: leaf→relay→root federated delivery vs session count",
		Header: []string{"sessions", "records", "elapsed", "records/s", "MB/s", "allocs/record"},
	}
	for _, r := range rows {
		t.Add(r.Sessions, r.Records,
			(time.Duration(r.ElapsedMicros) * time.Microsecond).Round(time.Millisecond),
			r.RecordsPerSec, r.MBPerSec, r.AllocsPerRecord)
	}
	return t
}
