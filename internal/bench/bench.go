// Package bench implements BRISK's evaluation harness: one entry point
// per experiment of the paper's Section 4, each regenerating the
// corresponding measurement on the reproduction. cmd/briskbench is the
// command-line driver; the repository-root benchmarks wrap the same
// entry points.
//
// Experiment index (see DESIGN.md and EXPERIMENTS.md):
//
//	E1 notice-cost   — CPU time per NOTICE (paper: 3.6–18.6 µs)
//	E2 exs-util      — EXS CPU share at fixed event rates (paper: <1 % up to 38 k ev/s)
//	E3 throughput    — max EXS→ISM event throughput (paper: 90 k ev/s)
//	E4 latency       — end-to-end latency vs batching knobs (paper: ≤40 ms select bound)
//	E5 scale         — aggregate ISM throughput vs number of EXS nodes (paper: ≈constant, 1–8)
//	E6 clocksync     — mutual clock skew over 5 s rounds (paper: tens of µs quiet, <200 µs disturbed)
//	E7 ols           — ordering/latency trade-off of the on-line sorter parameter sweep
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table used by all experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends one row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}
