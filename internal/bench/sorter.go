package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"brisk/internal/ols"
	"brisk/internal/record"
)

// RunSorterStage measures the on-line sorter stage in isolation: `sources`
// parallel pushers feed pre-built records into a sharded sorter while a
// single merger loop extracts the k-way-merged output, mirroring the
// manager's decode-workers/merger split without the wire and decode cost.
// This is the number that should scale with shard count on multi-core
// machines; the end-to-end ingest benchmark dilutes it with TCP and
// decode work. The core axis (calendar vs heap) isolates the per-shard
// data-structure cost on the same workload.
func RunSorterStage(core ols.CoreKind, shards, sources, perSource int) (IngestResult, error) {
	if shards <= 0 {
		shards = 1
	}
	if sources <= 0 {
		sources = 8
	}
	if perSource <= 0 {
		perSource = 100_000
	}
	total := sources * perSource

	// Fixed tiny T: every record is past its deadline the moment it
	// arrives, so the merger is always busy and the measurement is pure
	// sorter+merge throughput, not window latency.
	sh := ols.NewSharded(ols.Config{InitialT: 1, Grow: ols.GrowFixed, Core: core}, shards)
	protos := make([]record.Record, sources)
	for i := range protos {
		protos[i] = record.New(1,
			record.TSVal(0),
			record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for src := int32(1); src <= int32(sources); src++ {
		wg.Add(1)
		go func(src int32) {
			defer wg.Done()
			r := protos[src-1]
			for i := 0; i < perSource; i++ {
				// Interleaved globally-unique timestamps, already aged
				// far past T at push time.
				ts := int64(i)*int64(sources) + int64(src)
				r.SetTS(ts)
				sh.Push(src, r, ts+1_000_000)
			}
		}(src)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	emitted := 0
	emit := func(record.Record) { emitted++ }
	horizon := int64(perSource)*int64(sources) + 2_000_000
loop:
	for {
		select {
		case <-done:
			sh.Flush(emit)
			break loop
		default:
			sh.Extract(horizon, emit)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if emitted != total {
		return IngestResult{}, fmt.Errorf("bench: sorter emitted %d of %d", emitted, total)
	}
	return IngestResult{
		Name:            fmt.Sprintf("sorter/%s/shards=%d", core, shards),
		Sessions:        sources,
		Shards:          shards,
		Core:            core.String(),
		Records:         total,
		ElapsedMicros:   elapsed.Microseconds(),
		RecordsPerSec:   float64(total) / elapsed.Seconds(),
		AllocsPerRecord: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}, nil
}

// RunSorterSuite runs the sorter-stage benchmark for each core at each
// shard count.
func RunSorterSuite(cores []ols.CoreKind, shardCounts []int, sources, perSource int) ([]IngestResult, error) {
	if len(cores) == 0 {
		cores = []ols.CoreKind{ols.CoreCalendar, ols.CoreHeap}
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	var out []IngestResult
	for _, core := range cores {
		for _, n := range shardCounts {
			r, err := RunSorterStage(core, n, sources, perSource)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// SorterTable renders the sorter-stage suite. Skipped configurations
// render their skip reason in place of numbers; WriteBenchFile drops
// them from the JSON entirely.
func SorterTable(rows []IngestResult) *Table {
	t := &Table{
		Title:  "sorter: shard→merge stage throughput vs core and shard count",
		Header: []string{"core", "shards", "sources", "records", "elapsed", "records/s", "allocs/record"},
	}
	for _, r := range rows {
		if r.Skipped != "" {
			t.Add(r.Core, r.Shards, "-", "-", "-", "SKIP: "+r.Skipped, "-")
			continue
		}
		t.Add(r.Core, r.Shards, r.Sessions, r.Records,
			(time.Duration(r.ElapsedMicros) * time.Microsecond).Round(time.Millisecond),
			r.RecordsPerSec, r.AllocsPerRecord)
	}
	return t
}
