package bench

import (
	"fmt"
	"runtime"
	"testing"

	"brisk/internal/ols"
)

// TestRunSorterStageBothCores: both cores complete the stage, conserve
// the record count, and name their rows on the core/shard matrix the
// bench gate keys on.
func TestRunSorterStageBothCores(t *testing.T) {
	for _, core := range []ols.CoreKind{ols.CoreCalendar, ols.CoreHeap} {
		r, err := RunSorterStage(core, 1, 4, 2_000)
		if err != nil {
			t.Fatalf("%s: %v", core, err)
		}
		if want := fmt.Sprintf("sorter/%s/shards=1", core); r.Name != want {
			t.Fatalf("row name %q, want %q", r.Name, want)
		}
		if r.Core != core.String() || r.Records != 8_000 || r.RecordsPerSec <= 0 {
			t.Fatalf("%s row: %+v", core, r)
		}
	}
}

// TestWriteBenchFileOmitsSkippedRows pins the bugfix: a skipped
// configuration is announced on the rendered table but never written to
// the JSON body, so downstream tooling cannot divide by its zero counts.
func TestWriteBenchFileOmitsSkippedRows(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	rows := []IngestResult{
		{Name: "sorter/calendar/shards=1", Records: 100, RecordsPerSec: 1},
		{Name: "sorter/calendar/shards=4", Skipped: "GOMAXPROCS=1 < 4"},
	}
	if err := WriteBenchFile(path, rows); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 1 || f.Results[0].Name != "sorter/calendar/shards=1" {
		t.Fatalf("bench file kept %+v, want only the measured row", f.Results)
	}
}

// BenchmarkSorterStage is the acceptance benchmark for the calendar
// core: single-shard sorter-stage throughput per core, so the ≥1.3×
// calendar-over-heap claim is checkable with `go test -bench`. Shard
// scaling below 4 CPUs is not measurable; those sub-benchmarks SKIP, the
// same honesty rule the bench gate applies.
func BenchmarkSorterStage(b *testing.B) {
	for _, core := range []ols.CoreKind{ols.CoreCalendar, ols.CoreHeap} {
		core := core
		for _, shards := range []int{1, 4} {
			shards := shards
			b.Run(fmt.Sprintf("core=%s/shards=%d", core, shards), func(b *testing.B) {
				if shards > 1 && runtime.GOMAXPROCS(0) < 4 {
					b.Skipf("GOMAXPROCS=%d < 4: shard scaling not measurable on this box", runtime.GOMAXPROCS(0))
				}
				const sources = 8
				perSource := b.N/sources + 1
				b.ResetTimer()
				r, err := RunSorterStage(core, shards, sources, perSource)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.RecordsPerSec, "records/s")
			})
		}
	}
}
