package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/subscribe"
	"brisk/internal/wire"
)

// RunSubscribeIngest reruns the ingest benchmark with the subscription
// engine tapped into the sink flush and `subscribers` idle readers
// attached. The readers' filters match nothing the workload emits, so
// the measured cost is the tap itself: the per-record Publish into the
// hot window plus the per-flush wake scan over the subscriber list.
// Compare against subscribers=0 — the acceptance bar is that 1024 idle
// readers price in under a few percent of ingest throughput.
func RunSubscribeIngest(subscribers, perSession, batchRecords int) (IngestResult, error) {
	if subscribers < 0 {
		subscribers = 0
	}
	if perSession <= 0 {
		perSession = 150_000
	}
	if batchRecords <= 0 {
		batchRecords = 256
	}
	batches := perSession / batchRecords
	if batches == 0 {
		batches = 1
	}
	perSession = batches * batchRecords
	total := perSession

	eng := subscribe.New(subscribe.Config{WindowBytes: 8 << 20})
	defer eng.Close()

	m, err := ism.New(ism.Config{
		Addr:              "127.0.0.1:0",
		MergeInterval:     time.Millisecond,
		BufferRecords:     1 << 16,
		Sorter:            ols.Config{InitialT: 100},
		HeartbeatInterval: -1,
		Tap:               eng,
		Logf:              quiet,
	})
	if err != nil {
		return IngestResult{}, err
	}
	m.Start()
	defer m.Close()

	// The workload emits event class 1 only; the idle readers subscribe
	// to class 200, so wake suppression keeps every one of them parked.
	var readers sync.WaitGroup
	defer readers.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < subscribers; i++ {
		f, err := subscribe.ParseFilter("event=200")
		if err != nil {
			return IngestResult{}, err
		}
		sub, err := eng.Subscribe(f, false)
		if err != nil {
			return IngestResult{}, err
		}
		readers.Add(1)
		go func(sub *subscribe.Subscription) {
			defer readers.Done()
			defer sub.Close()
			for {
				if _, err := sub.Next(ctx); err != nil {
					return
				}
			}
		}(sub)
	}

	ts := time.Now().UnixMicro() - 10_000_000
	var payload []byte
	for i := 0; i < batchRecords; i++ {
		rec := record.New(1,
			record.TSVal(ts),
			record.I32Val(int32(i)), record.I32Val(2), record.I32Val(3),
			record.I32Val(4), record.I32Val(5), record.I32Val(6))
		payload, err = rec.Append(payload)
		if err != nil {
			return IngestResult{}, err
		}
	}

	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		return IngestResult{}, err
	}
	defer raw.Close()
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "bench"}); err != nil {
		return IngestResult{}, err
	}
	if _, err := wc.Recv(); err != nil {
		return IngestResult{}, fmt.Errorf("bench: hello ack: %w", err)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	b := &wire.DataBatch{Count: uint32(batchRecords), Payload: payload}
	for i := 0; i < batches; i++ {
		if err := wc.Send(b); err != nil {
			return IngestResult{}, err
		}
	}
	deadline := time.Now().Add(120 * time.Second)
	for int(m.Stats().Emitted) < total && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	st := m.Stats()
	if int(st.Emitted) < total {
		return IngestResult{}, fmt.Errorf("bench: manager emitted %d of %d with %d subscribers", st.Emitted, total, subscribers)
	}
	return IngestResult{
		Name:            fmt.Sprintf("subscribe/subscribers=%d", subscribers),
		Sessions:        subscribers,
		Records:         total,
		ElapsedMicros:   elapsed.Microseconds(),
		RecordsPerSec:   float64(total) / elapsed.Seconds(),
		MBPerSec:        float64(st.BytesIn) / 1e6 / elapsed.Seconds(),
		AllocsPerRecord: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}, nil
}

// RunSubscribeSuite runs the tapped-ingest benchmark at each subscriber
// count. This row is informational, not gated: CompareBench only
// enforces names present in the committed baseline.
func RunSubscribeSuite(subCounts []int, perSession, batchRecords int) ([]IngestResult, error) {
	if len(subCounts) == 0 {
		subCounts = []int{0, 64, 1024}
	}
	var out []IngestResult
	for _, n := range subCounts {
		r, err := RunSubscribeIngest(n, perSession, batchRecords)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SubscribeTable renders the suite; the subscribers=0 row is the
// tap-attached baseline the others are read against.
func SubscribeTable(rows []IngestResult) *Table {
	t := &Table{
		Title:  "subscribe: ingest capacity vs idle subscriber count (tap attached)",
		Header: []string{"subscribers", "records", "elapsed", "records/s", "MB/s", "allocs/record"},
	}
	for _, r := range rows {
		t.Add(r.Sessions, r.Records,
			(time.Duration(r.ElapsedMicros) * time.Microsecond).Round(time.Millisecond),
			r.RecordsPerSec, r.MBPerSec, r.AllocsPerRecord)
	}
	return t
}
