package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPad(t *testing.T) {
	cases := []struct{ n, pad, padded int }{
		{0, 0, 0}, {1, 3, 4}, {2, 2, 4}, {3, 1, 4}, {4, 0, 4},
		{5, 3, 8}, {7, 1, 8}, {8, 0, 8}, {100, 0, 100}, {101, 3, 104},
	}
	for _, c := range cases {
		if got := Pad(c.n); got != c.pad {
			t.Errorf("Pad(%d) = %d, want %d", c.n, got, c.pad)
		}
		if got := PaddedLen(c.n); got != c.padded {
			t.Errorf("PaddedLen(%d) = %d, want %d", c.n, got, c.padded)
		}
	}
}

func TestOpaqueLen(t *testing.T) {
	if got := OpaqueLen(0); got != 4 {
		t.Errorf("OpaqueLen(0) = %d, want 4", got)
	}
	if got := OpaqueLen(5); got != 12 {
		t.Errorf("OpaqueLen(5) = %d, want 12", got)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		e := NewEncoder(8)
		e.Uint32(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint32()
		return err == nil && got == v && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	f := func(v int32) bool {
		e := NewEncoder(8)
		e.Int32(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Int32()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(8)
		e.Uint64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Uint64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MinInt64, math.MaxInt64, 123456789012345} {
		e := NewEncoder(8)
		e.Int64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Int64()
		if err != nil || got != v {
			t.Errorf("Int64 round trip of %d: got %d, err %v", v, got, err)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f32 := func(v float32) bool {
		e := NewEncoder(8)
		e.Float32(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Float32()
		if err != nil {
			return false
		}
		// NaN does not compare equal; compare bit patterns.
		return math.Float32bits(got) == math.Float32bits(v)
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Fatal(err)
	}
	f64 := func(v float64) bool {
		e := NewEncoder(8)
		e.Float64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Float64()
		if err != nil {
			return false
		}
		return math.Float64bits(got) == math.Float64bits(v)
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBool(t *testing.T) {
	e := NewEncoder(8)
	e.Bool(true)
	e.Bool(false)
	want := []byte{0, 0, 0, 1, 0, 0, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("bool encoding = %v, want %v", e.Bytes(), want)
	}
	d := NewDecoder(e.Bytes())
	v1, err1 := d.Bool()
	v2, err2 := d.Bool()
	if err1 != nil || err2 != nil || !v1 || v2 {
		t.Fatalf("bool decode got (%v,%v) errs (%v,%v)", v1, v2, err1, err2)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(64)
		e.String(s)
		if e.Len()%Unit != 0 {
			return false
		}
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		return err == nil && got == s && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		e := NewEncoder(64)
		e.Opaque(p)
		if e.Len()%Unit != 0 {
			return false
		}
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOpaqueRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 17} {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i + 1)
		}
		e := NewEncoder(32)
		e.FixedOpaque(p)
		if e.Len() != PaddedLen(n) {
			t.Errorf("FixedOpaque(%d) encoded %d bytes, want %d", n, e.Len(), PaddedLen(n))
		}
		d := NewDecoder(e.Bytes())
		got, err := d.FixedOpaque(n)
		if err != nil || !bytes.Equal(got, p) {
			t.Errorf("FixedOpaque(%d) round trip failed: %v %v", n, got, err)
		}
	}
}

func TestKnownEncodings(t *testing.T) {
	// Fixed vectors from RFC 4506 layout rules.
	e := NewEncoder(64)
	e.Int32(-1)
	if !bytes.Equal(e.Bytes(), []byte{0xff, 0xff, 0xff, 0xff}) {
		t.Errorf("Int32(-1) = % x", e.Bytes())
	}
	e.Reset()
	e.String("hi")
	want := []byte{0, 0, 0, 2, 'h', 'i', 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("String(hi) = % x, want % x", e.Bytes(), want)
	}
	e.Reset()
	e.Uint64(0x0102030405060708)
	want = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("Uint64 = % x, want % x", e.Bytes(), want)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint32 on short buffer: err = %v, want ErrShortBuffer", err)
	}
	d.Reset([]byte{0, 0, 0, 9, 'x'})
	if _, err := d.Opaque(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Opaque with truncated payload: err = %v, want ErrShortBuffer", err)
	}
	d.Reset([]byte{0, 0, 0, 1})
	if _, err := d.Uint64(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint64 on 4 bytes: err = %v, want ErrShortBuffer", err)
	}
}

func TestDecoderBadPadding(t *testing.T) {
	// String "a" with a nonzero pad byte.
	buf := []byte{0, 0, 0, 1, 'a', 0xFF, 0, 0}
	d := NewDecoder(buf)
	if _, err := d.String(); !errors.Is(err, ErrBadPadding) {
		t.Errorf("String with dirty padding: err = %v, want ErrBadPadding", err)
	}
	d.Reset([]byte{'a', 0xFF, 0, 0})
	if _, err := d.FixedOpaque(1); !errors.Is(err, ErrBadPadding) {
		t.Errorf("FixedOpaque with dirty padding: err = %v, want ErrBadPadding", err)
	}
}

func TestDecoderLengthRange(t *testing.T) {
	d := NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := d.Opaque(); !errors.Is(err, ErrLengthRange) {
		t.Errorf("huge opaque length: err = %v, want ErrLengthRange", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	d.MaxOpaque = 4
	if _, err := d.Opaque(); !errors.Is(err, ErrLengthRange) {
		t.Errorf("opaque over MaxOpaque: err = %v, want ErrLengthRange", err)
	}
	if _, err := d.FixedOpaque(-1); !errors.Is(err, ErrLengthRange) {
		t.Errorf("negative FixedOpaque: err = %v, want ErrLengthRange", err)
	}
	if err := d.Skip(-3); !errors.Is(err, ErrLengthRange) {
		t.Errorf("negative Skip: err = %v, want ErrLengthRange", err)
	}
}

func TestDecoderSkipAndOffset(t *testing.T) {
	e := NewEncoder(32)
	e.Uint32(7)
	e.Uint32(8)
	e.Uint32(9)
	d := NewDecoder(e.Bytes())
	if err := d.Skip(4); err != nil {
		t.Fatal(err)
	}
	v, err := d.Uint32()
	if err != nil || v != 8 {
		t.Fatalf("after skip, Uint32 = %d, %v; want 8", v, err)
	}
	if d.Offset() != 8 || d.Remaining() != 4 {
		t.Fatalf("offset/remaining = %d/%d, want 8/4", d.Offset(), d.Remaining())
	}
}

func TestAppendHelpersMatchEncoder(t *testing.T) {
	e := NewEncoder(64)
	e.Uint32(42)
	e.Int32(-7)
	e.Uint64(1 << 40)
	e.Int64(-(1 << 40))
	e.Float32(3.5)
	e.Float64(-2.25)
	e.String("abc")
	e.Opaque([]byte{9, 8})

	var b []byte
	b = AppendUint32(b, 42)
	b = AppendInt32(b, -7)
	b = AppendUint64(b, 1<<40)
	b = AppendInt64(b, -(1 << 40))
	b = AppendFloat32(b, 3.5)
	b = AppendFloat64(b, -2.25)
	b = AppendString(b, "abc")
	b = AppendOpaque(b, []byte{9, 8})

	if !bytes.Equal(e.Bytes(), b) {
		t.Fatalf("append helpers disagree with encoder:\n% x\n% x", e.Bytes(), b)
	}
}

func TestPutAndAt(t *testing.T) {
	b := make([]byte, 8)
	PutUint32(b, 0xDEADBEEF)
	if Uint32At(b) != 0xDEADBEEF {
		t.Fatalf("PutUint32/Uint32At mismatch: % x", b[:4])
	}
	PutUint64(b, 0x0102030405060708)
	if Uint64At(b) != 0x0102030405060708 {
		t.Fatalf("PutUint64/Uint64At mismatch: % x", b)
	}
}

func TestEncoderRawAndReuse(t *testing.T) {
	e := NewEncoder(16)
	e.Uint32(1)
	first := append([]byte(nil), e.Bytes()...)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear length")
	}
	e.Raw(first)
	if !bytes.Equal(e.Bytes(), first) {
		t.Fatal("Raw did not copy bytes verbatim")
	}
}

func BenchmarkEncodeSixInts(b *testing.B) {
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Int64(int64(i)) // timestamp
		for j := int32(0); j < 6; j++ {
			e.Int32(j)
		}
	}
}

func BenchmarkDecodeSixInts(b *testing.B) {
	e := NewEncoder(64)
	e.Int64(12345)
	for j := int32(0); j < 6; j++ {
		e.Int32(j)
	}
	buf := e.Bytes()
	d := NewDecoder(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Reset(buf)
		if _, err := d.Int64(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			if _, err := d.Int32(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
