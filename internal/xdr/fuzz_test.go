package xdr

import (
	"bytes"
	"testing"
)

// FuzzDecoder checks that arbitrary input never panics any decode path
// and that accepted opaques/strings round-trip canonically.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(64)
	e.Uint32(7)
	e.String("seed")
	e.Opaque([]byte{1, 2, 3})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.MaxOpaque = 1 << 16
		// Walk the buffer with a mixed decode sequence; errors are fine,
		// panics are not.
		for d.Remaining() > 0 {
			switch d.Remaining() % 5 {
			case 0:
				if _, err := d.Uint32(); err != nil {
					return
				}
			case 1:
				if _, err := d.Uint64(); err != nil {
					return
				}
			case 2:
				p, err := d.Opaque()
				if err != nil {
					return
				}
				// Canonical re-encode.
				e := NewEncoder(len(p) + 8)
				e.Opaque(p)
				if e.Len()%Unit != 0 {
					t.Fatal("opaque encoding not unit aligned")
				}
			case 3:
				s, err := d.String()
				if err != nil {
					return
				}
				e := NewEncoder(len(s) + 8)
				e.String(s)
				src := data[d.Offset()-e.Len() : d.Offset()]
				if !bytes.Equal(e.Bytes(), src) {
					t.Fatalf("string round trip not canonical: % x vs % x", e.Bytes(), src)
				}
			default:
				if _, err := d.Float64(); err != nil {
					return
				}
			}
		}
	})
}
