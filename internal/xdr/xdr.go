// Package xdr implements the subset of the External Data Representation
// standard (RFC 4506) used by the BRISK transfer protocol.
//
// XDR lays every item out on a 4-byte boundary in big-endian byte order.
// Variable-length items (strings, opaques) carry a 4-byte length and are
// padded with zero bytes to the next 4-byte boundary. BRISK uses XDR so
// that instrumentation data can cross heterogeneous nodes unchanged; the
// encoder here is allocation-free on the hot path (it appends into a
// caller-owned buffer) so that external sensors can package large event
// batches without garbage-collector pressure.
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// Unit is the XDR basic block size: every encoded item occupies a multiple
// of this many bytes.
const Unit = 4

// Errors returned by the decoder.
var (
	// ErrShortBuffer reports that a decode ran past the end of the input.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrBadPadding reports nonzero bytes in the pad region of a
	// variable-length item.
	ErrBadPadding = errors.New("xdr: nonzero padding")
	// ErrLengthRange reports a variable-length item whose declared length
	// exceeds the decoder's configured maximum.
	ErrLengthRange = errors.New("xdr: declared length out of range")
)

// Pad returns the number of zero bytes needed after n payload bytes to
// reach the next 4-byte boundary.
func Pad(n int) int {
	return (Unit - n%Unit) % Unit
}

// PaddedLen returns n rounded up to the next multiple of the XDR unit.
func PaddedLen(n int) int {
	return n + Pad(n)
}

// OpaqueLen returns the full encoded size of a variable-length opaque of n
// bytes: the 4-byte length word plus the padded payload.
func OpaqueLen(n int) int {
	return Unit + PaddedLen(n)
}

// Encoder appends XDR-encoded items to an internal buffer. The zero value
// is ready to use. Buffers may be reused across messages via Reset.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder whose buffer has the given initial
// capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Reset discards the buffered encoding but keeps the allocation.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded buffer. The slice is valid until the next
// mutating call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes buffered so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer (XDR "int").
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) {
	e.buf = AppendUint64(e.buf, v)
}

// Int64 encodes a 64-bit signed integer (XDR "hyper").
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as an XDR int of value 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Float32 encodes an IEEE-754 single-precision float.
func (e *Encoder) Float32(v float32) { e.Uint32(math.Float32bits(v)) }

// Float64 encodes an IEEE-754 double-precision float.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Opaque encodes a variable-length opaque: length word, payload, zero pad.
func (e *Encoder) Opaque(p []byte) {
	e.Uint32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	for i := 0; i < Pad(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// String encodes a string as a variable-length opaque.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < Pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// FixedOpaque encodes payload bytes with zero padding but no length word
// (XDR fixed-length opaque). The receiver must know the length.
func (e *Encoder) FixedOpaque(p []byte) {
	e.buf = append(e.buf, p...)
	for i := 0; i < Pad(len(p)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// Raw appends pre-encoded bytes verbatim. The caller asserts that p is
// already a whole number of XDR units.
func (e *Encoder) Raw(p []byte) {
	e.buf = append(e.buf, p...)
}

// AppendUint32 appends the XDR encoding of v to dst and returns the
// extended slice. It is the allocation-free building block used by the
// sensor hot path.
func AppendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendInt32 appends the XDR encoding of a signed 32-bit integer.
func AppendInt32(dst []byte, v int32) []byte {
	return AppendUint32(dst, uint32(v))
}

// AppendUint64 appends the XDR encoding of an unsigned hyper.
func AppendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendInt64 appends the XDR encoding of a hyper.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v))
}

// AppendFloat32 appends the XDR encoding of a single-precision float.
func AppendFloat32(dst []byte, v float32) []byte {
	return AppendUint32(dst, math.Float32bits(v))
}

// AppendFloat64 appends the XDR encoding of a double-precision float.
func AppendFloat64(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// AppendString appends the XDR encoding of a string (length, bytes, pad).
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	dst = append(dst, s...)
	for i := 0; i < Pad(len(s)); i++ {
		dst = append(dst, 0)
	}
	return dst
}

// AppendOpaque appends the XDR encoding of a variable-length opaque.
func AppendOpaque(dst []byte, p []byte) []byte {
	dst = AppendUint32(dst, uint32(len(p)))
	dst = append(dst, p...)
	for i := 0; i < Pad(len(p)); i++ {
		dst = append(dst, 0)
	}
	return dst
}

// PutUint32 writes the XDR encoding of v at b[0:4]. The slice must have at
// least 4 bytes.
func PutUint32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// PutUint64 writes the XDR encoding of v at b[0:8]. The slice must have at
// least 8 bytes.
func PutUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// Uint32At reads a big-endian 32-bit word from b[0:4].
func Uint32At(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Uint64At reads a big-endian 64-bit word from b[0:8].
func Uint64At(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Decoder consumes XDR items from a byte slice. It performs strict bounds
// and padding checks so that a malformed or truncated message from a remote
// external sensor cannot crash the manager.
type Decoder struct {
	buf []byte
	off int

	// MaxOpaque bounds the declared length of variable-length items; a
	// larger declared length fails with ErrLengthRange instead of causing
	// a huge allocation. Zero means DefaultMaxOpaque.
	MaxOpaque int
}

// DefaultMaxOpaque is the decoder's default bound on variable-length items.
const DefaultMaxOpaque = 1 << 20

// NewDecoder returns a decoder positioned at the start of buf. The decoder
// does not copy buf; decoded strings and opaques alias it unless otherwise
// documented.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Reset repositions the decoder at the start of buf, reusing the struct.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
}

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) need(n int) error {
	if d.Remaining() < n {
		return fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrShortBuffer, n, d.off, d.Remaining())
	}
	return nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := Uint32At(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an unsigned hyper.
func (d *Decoder) Uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := Uint64At(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a hyper.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean. Any nonzero word decodes as true, matching
// the lenient behaviour of the reference Sun implementation.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// Float32 decodes a single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes a double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

func (d *Decoder) maxOpaque() int {
	if d.MaxOpaque > 0 {
		return d.MaxOpaque
	}
	return DefaultMaxOpaque
}

// Opaque decodes a variable-length opaque. The returned slice aliases the
// decoder's input buffer.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(d.maxOpaque()) {
		return nil, fmt.Errorf("%w: opaque length %d > max %d", ErrLengthRange, n, d.maxOpaque())
	}
	total := PaddedLen(int(n))
	if err := d.need(total); err != nil {
		return nil, err
	}
	p := d.buf[d.off : d.off+int(n)]
	for _, b := range d.buf[d.off+int(n) : d.off+total] {
		if b != 0 {
			return nil, ErrBadPadding
		}
	}
	d.off += total
	return p, nil
}

// OpaqueInto decodes a variable-length opaque by appending its payload
// onto dst and returning the extended slice. Unlike Opaque the result does
// not alias the input buffer, and unlike append(dst, Opaque()...) at the
// call site the copy reuses dst's capacity, so a caller recycling its
// buffer decodes with zero steady-state allocations.
func (d *Decoder) OpaqueInto(dst []byte) ([]byte, error) {
	p, err := d.Opaque()
	if err != nil {
		return dst, err
	}
	return append(dst, p...), nil
}

// String decodes a string. The result copies out of the input buffer (Go
// strings are immutable, so aliasing is impossible anyway).
func (d *Decoder) String() (string, error) {
	p, err := d.Opaque()
	return string(p), err
}

// FixedOpaque decodes n payload bytes plus padding, with no length word.
// The returned slice aliases the input buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative fixed length %d", ErrLengthRange, n)
	}
	total := PaddedLen(n)
	if err := d.need(total); err != nil {
		return nil, err
	}
	p := d.buf[d.off : d.off+n]
	for _, b := range d.buf[d.off+n : d.off+total] {
		if b != 0 {
			return nil, ErrBadPadding
		}
	}
	d.off += total
	return p, nil
}

// Skip advances past n raw bytes without interpreting them.
func (d *Decoder) Skip(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative skip %d", ErrLengthRange, n)
	}
	if err := d.need(n); err != nil {
		return err
	}
	d.off += n
	return nil
}
