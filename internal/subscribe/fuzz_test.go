package subscribe

import (
	"testing"

	"brisk/internal/record"
)

// FuzzFilterExpr throws arbitrary expressions at the filter compiler and,
// when one compiles, at the evaluator. The properties under test: the
// parser never panics, a compiled filter never panics on any record
// shape, and evaluation is pure (same record, same verdict twice).
func FuzzFilterExpr(f *testing.F) {
	for _, seed := range []string{
		"",
		"node=1,2,3",
		"event=5,7,255",
		"ts>=100 ts<200",
		"node=3 && event=1,2 && ts>=10",
		"f0>100 && f2==\"checkout\"",
		"f1<=3.5 f3=true",
		"source=9 f7!='x'",
		"node=-1 ts=0",
		"f0<!3",
		"ts>9223372036854775807",
		"node=999999999999",
		"f0='unterminated",
	} {
		f.Add(seed)
	}
	recs := []record.Record{
		record.New(1),
		record.New(5, record.TSVal(150), record.I32Val(-7)),
		record.New(255, record.StrVal("checkout"), record.F64Val(3.5), record.BoolVal(true)),
		record.New(7, record.U64Val(1<<63), record.ReasonVal(3), record.ConseqVal(4)),
		record.NewLossMarker(10, 0, 99),
	}
	f.Fuzz(func(t *testing.T, expr string) {
		flt, err := ParseFilter(expr)
		if err != nil {
			return
		}
		if flt.String() != expr {
			t.Fatalf("String() = %q, want the source expression %q", flt.String(), expr)
		}
		for i := range recs {
			r := &recs[i]
			m1 := flt.MatchMeta(r.Node, r.Event, r.TS, r.HasTS)
			m2 := flt.MatchMeta(r.Node, r.Event, r.TS, r.HasTS)
			if m1 != m2 {
				t.Fatalf("MatchMeta not deterministic for %q", expr)
			}
			f1 := flt.MatchFields(r)
			f2 := flt.MatchFields(r)
			if f1 != f2 {
				t.Fatalf("MatchFields not deterministic for %q", expr)
			}
		}
		var seen [4]uint64
		flt.eventOverlap(&seen)
		for _, shards := range []int{1, 2, 8, 64} {
			if m := flt.shardMask(shards); shards < 64 && m>>shards != 0 {
				t.Fatalf("shardMask(%d) = %#x has bits past the shard count", shards, m)
			}
		}
	})
}
