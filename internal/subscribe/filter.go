// Package subscribe is the read side of the BRISK pipeline: a consumer
// layer tapped into the manager's post-merge sorted stream that serves
// many heterogeneous readers — live streaming subscribers, bounded
// catch-up queries, and cheap top-K frequency summaries — without
// perturbing the ingest path.
//
// The design center is the asymmetry of real instrumentation
// deployments: far more readers than writers. The single merger
// goroutine publishes each sink-accepted record exactly once into a
// sharded in-memory hot window (power-of-two shards keyed by source,
// ring retention bounded by a byte budget and a TTL); subscribers pull
// from the shared window at their own pace through per-subscriber
// cursors. A slow or dead subscriber is never allowed to back-pressure
// the sorter: when the window's retention overruns a lagging cursor the
// gap is made explicit with a loss-marker record (the 0xFF convention of
// internal/record), extending the pipeline's "delivered means emitted or
// marker-covered" contract to the read side.
package subscribe

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"brisk/internal/record"
)

// Filter is a compiled subscription filter: the conjunction of an
// optional source set, event-class set, timestamp range, and simple
// per-field predicates. Compile one with ParseFilter; compilation
// happens once at subscribe time, evaluation is allocation-free.
//
// The textual grammar is a whitespace- or '&&'-separated conjunction of
// clauses:
//
//	node=1,2,3        source (node id) is one of the listed ids
//	event=5,7         event class is one of the listed classes
//	ts>=N  ts<N ...   record timestamp (µs UTC) compares against N
//	fI OP literal     field I (0-based) compares against a literal
//
// where OP is one of == != < <= > >= (= is accepted for ==) and a
// literal is an integer, a float, true/false, or a single- or
// double-quoted string. Examples:
//
//	node=3 event=1,2 ts>=1700000000000000
//	f0>100 && f2=="checkout" && event=7
//
// Numeric field predicates compare the field's numeric value regardless
// of its exact integer width; string predicates apply only to string
// fields; a predicate on a missing field never matches. Records without
// a timestamp fail every ts clause. Loss markers are exempt from the
// filter — a gap must be visible to every subscriber that could have
// missed records in it.
type Filter struct {
	nodes    map[int32]struct{} // nil = every source
	events   [4]uint64          // class bitmap; hasEvents gates it
	hasEvent bool
	tsMin    int64
	tsMax    int64 // inclusive
	preds    []fieldPred
	expr     string
}

type predOp uint8

const (
	opEQ predOp = iota
	opNE
	opLT
	opLE
	opGT
	opGE
)

// fieldPred is one compiled field predicate. Numeric comparisons are
// performed in float64 (every BRISK numeric field value fits); string
// comparisons are lexicographic.
type fieldPred struct {
	idx   int
	op    predOp
	isStr bool
	num   float64
	str   string
}

// ParseFilter compiles a filter expression. The empty string compiles to
// the match-everything filter.
func ParseFilter(expr string) (*Filter, error) {
	f := &Filter{tsMin: math.MinInt64, tsMax: math.MaxInt64, expr: expr}
	s := strings.ReplaceAll(expr, "&&", " ")
	for _, clause := range strings.Fields(s) {
		if err := f.addClause(clause); err != nil {
			return nil, fmt.Errorf("subscribe: filter %q: %w", expr, err)
		}
	}
	return f, nil
}

// String returns the source expression the filter was compiled from.
func (f *Filter) String() string { return f.expr }

func (f *Filter) addClause(c string) error {
	key, op, val, err := splitClause(c)
	if err != nil {
		return err
	}
	switch {
	case key == "node" || key == "source":
		if op != opEQ {
			return fmt.Errorf("clause %q: source sets only support '='", c)
		}
		if f.nodes == nil {
			f.nodes = make(map[int32]struct{})
		}
		for _, part := range strings.Split(val, ",") {
			n, err := strconv.ParseInt(part, 10, 32)
			if err != nil {
				return fmt.Errorf("clause %q: bad node id %q", c, part)
			}
			f.nodes[int32(n)] = struct{}{}
		}
	case key == "event":
		if op != opEQ {
			return fmt.Errorf("clause %q: event sets only support '='", c)
		}
		f.hasEvent = true
		for _, part := range strings.Split(val, ",") {
			n, err := strconv.ParseUint(part, 10, 8)
			if err != nil {
				return fmt.Errorf("clause %q: bad event class %q", c, part)
			}
			f.events[n>>6] |= 1 << (n & 63)
		}
	case key == "ts":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("clause %q: bad timestamp %q", c, val)
		}
		switch op {
		case opEQ:
			f.tsMin, f.tsMax = maxi64(f.tsMin, n), mini64(f.tsMax, n)
		case opGE:
			f.tsMin = maxi64(f.tsMin, n)
		case opGT:
			if n == math.MaxInt64 {
				return fmt.Errorf("clause %q: ts>max", c)
			}
			f.tsMin = maxi64(f.tsMin, n+1)
		case opLE:
			f.tsMax = mini64(f.tsMax, n)
		case opLT:
			if n == math.MinInt64 {
				return fmt.Errorf("clause %q: ts<min", c)
			}
			f.tsMax = mini64(f.tsMax, n-1)
		default:
			return fmt.Errorf("clause %q: ts does not support '!='", c)
		}
	case len(key) >= 2 && key[0] == 'f':
		idx, err := strconv.Atoi(key[1:])
		if err != nil || idx < 0 || idx >= record.MaxFields {
			return fmt.Errorf("clause %q: field index out of range", c)
		}
		p := fieldPred{idx: idx, op: op}
		switch {
		case len(val) >= 2 && (val[0] == '"' || val[0] == '\''):
			if val[len(val)-1] != val[0] {
				return fmt.Errorf("clause %q: unterminated string literal", c)
			}
			p.isStr = true
			p.str = val[1 : len(val)-1]
		case val == "true" || val == "false":
			p.num = 0
			if val == "true" {
				p.num = 1
			}
		default:
			n, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("clause %q: bad literal %q", c, val)
			}
			p.num = n
		}
		f.preds = append(f.preds, p)
	default:
		return fmt.Errorf("clause %q: unknown key %q", c, key)
	}
	return nil
}

// splitClause cuts one clause into key, operator, and value text.
func splitClause(c string) (key string, op predOp, val string, err error) {
	for i := 0; i < len(c); i++ {
		switch c[i] {
		case '=', '!', '<', '>':
			key = c[i:]
			switch {
			case strings.HasPrefix(key, "=="), strings.HasPrefix(key, "!="),
				strings.HasPrefix(key, "<="), strings.HasPrefix(key, ">="):
				val = key[2:]
			default:
				val = key[1:]
			}
			switch {
			case key[0] == '=':
				op = opEQ
			case strings.HasPrefix(key, "!="):
				op = opNE
			case strings.HasPrefix(key, "<="):
				op = opLE
			case key[0] == '<':
				op = opLT
			case strings.HasPrefix(key, ">="):
				op = opGE
			case key[0] == '>':
				op = opGT
			default:
				return "", 0, "", fmt.Errorf("clause %q: bad operator", c)
			}
			if val == "" {
				return "", 0, "", fmt.Errorf("clause %q: missing value", c)
			}
			return c[:i], op, val, nil
		}
	}
	return "", 0, "", fmt.Errorf("clause %q: no operator", c)
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MatchMeta evaluates the metadata clauses (source set, event set, ts
// range) — everything decidable from a cache entry's header without
// decoding the record. Allocation-free.
func (f *Filter) MatchMeta(node int32, event uint8, ts int64, hasTS bool) bool {
	if f.nodes != nil {
		if _, ok := f.nodes[node]; !ok {
			return false
		}
	}
	if f.hasEvent && f.events[event>>6]&(1<<(event&63)) == 0 {
		return false
	}
	if f.tsMin != math.MinInt64 || f.tsMax != math.MaxInt64 {
		if !hasTS || ts < f.tsMin || ts > f.tsMax {
			return false
		}
	}
	return true
}

// NeedsFields reports whether the filter carries field predicates, i.e.
// whether matching requires a decoded record on top of MatchMeta.
func (f *Filter) NeedsFields() bool { return len(f.preds) > 0 }

// MatchFields evaluates the field predicates against a decoded record.
// Allocation-free.
func (f *Filter) MatchFields(rec *record.Record) bool {
	for i := range f.preds {
		p := &f.preds[i]
		if p.idx >= len(rec.Fields) {
			return false
		}
		v := &rec.Fields[p.idx]
		if p.isStr {
			if v.Type != record.String || !cmpOK(p.op, strings.Compare(v.Str, p.str)) {
				return false
			}
			continue
		}
		if v.Type == record.String {
			return false
		}
		var n float64
		switch v.Type {
		case record.Float32, record.Float64:
			n = v.Float()
		case record.Uint64, record.Reason, record.Conseq:
			n = float64(v.Bits)
		default:
			n = float64(int64(v.Bits))
		}
		var c int
		switch {
		case n < p.num:
			c = -1
		case n > p.num:
			c = 1
		}
		if !cmpOK(p.op, c) {
			return false
		}
	}
	return true
}

func cmpOK(op predOp, c int) bool {
	switch op {
	case opEQ:
		return c == 0
	case opNE:
		return c != 0
	case opLT:
		return c < 0
	case opLE:
		return c <= 0
	case opGT:
		return c > 0
	default:
		return c >= 0
	}
}

// shardMask returns the bitmap of cache shards (given the power-of-two
// shard count) the filter's source set can reach; a filter with no
// source clause reaches every shard. The engine uses it to skip whole
// shards on reads and to suppress wake-ups for flushes that cannot
// contain a match.
func (f *Filter) shardMask(shards int) uint64 {
	if f.nodes == nil || shards >= 64 {
		if shards >= 64 {
			return ^uint64(0)
		}
		return (uint64(1) << shards) - 1
	}
	var m uint64
	for n := range f.nodes {
		m |= 1 << (uint32(n) & uint32(shards-1))
	}
	return m
}

// eventOverlap reports whether the filter's event set intersects a
// flush's seen-class bitmap. A filter without an event clause always
// overlaps.
func (f *Filter) eventOverlap(seen *[4]uint64) bool {
	if !f.hasEvent {
		return true
	}
	for i := range seen {
		if f.events[i]&seen[i] != 0 {
			return true
		}
	}
	return false
}
