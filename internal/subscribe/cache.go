package subscribe

import (
	"sync"
)

// entry is one cached record of the hot window: the node-prefixed
// encoding exactly as the memory-buffer sink stores it, plus the header
// metadata needed to pre-filter without decoding. Entry storage is
// recycled in place as the ring wraps, so a steady publish stream
// allocates nothing.
type entry struct {
	seq   uint64 // global emission sequence (publish order across shards)
	ts    int64  // record timestamp (µs UTC), 0 if absent
	wall  int64  // publish instant (µs) for TTL eviction
	node  int32
	event uint8
	hasTS bool
	buf   []byte // 4-byte node prefix + encoded record, entry-owned
}

// shard is one slice of the hot window: a ring of entries covering the
// sources that hash here, with dense head/tail indices. entries[i&mask]
// holds logical index i for tail <= i < head. Retention is bounded
// jointly by the per-shard byte budget and the window TTL; eviction only
// ever advances tail, so "index < tail" is exactly "evicted".
type shard struct {
	mu      sync.Mutex
	entries []entry // power-of-two ring
	head    uint64  // next logical index to write
	tail    uint64  // oldest retained logical index
	bytes   int     // retained payload bytes

	// lastEvictedTS is the timestamp of the newest evicted entry — the
	// end of the gap any cursor left behind tail has missed, used to
	// stamp the loss marker covering it.
	lastEvictedTS int64
	evictedN      uint64 // entries evicted over the shard's lifetime
}

// cache is the sharded hot window. The publisher (the manager's merger
// goroutine) appends to one shard per record; subscribers and queries
// batch-copy entries out under the shard lock.
type cache struct {
	shards    []*shard
	mask      uint32
	byteLimit int   // per-shard byte budget
	ttl       int64 // µs; 0 = no TTL eviction
	maxRing   int   // per-shard entry-count ceiling (power of two)
}

func newCache(shards, windowBytes int, ttlMicros int64) *cache {
	c := &cache{
		shards:    make([]*shard, shards),
		mask:      uint32(shards - 1),
		byteLimit: windowBytes / shards,
		ttl:       ttlMicros,
		maxRing:   1 << 16,
	}
	if c.byteLimit < 1024 {
		c.byteLimit = 1024
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make([]entry, 64)}
	}
	return c
}

// shardFor maps a source to its shard: low bits of the node id. The
// identity mapping (rather than a scrambling hash) keeps the
// source→shard relation transparent for operators and tests; BRISK node
// ids are small dense integers assigned at HELLO, so low bits spread
// them evenly.
func (c *cache) shardFor(node int32) *shard {
	return c.shards[uint32(node)&c.mask]
}

// put appends one encoded record to the shard's ring, evicting by TTL
// and byte budget. It returns the number of entries evicted to make
// room. Steady state allocates nothing: a recycled slot's buf is
// append-reused, and the ring only grows until it reaches the byte
// budget or the entry ceiling.
func (s *shard) put(c *cache, seq uint64, node int32, event uint8, ts int64, hasTS bool, wall int64, encoded []byte) (evicted int) {
	s.mu.Lock()
	// TTL first: age out entries regardless of space pressure.
	if c.ttl > 0 {
		cutoff := wall - c.ttl
		for s.tail < s.head {
			e := &s.entries[s.tail&uint64(len(s.entries)-1)]
			if e.wall >= cutoff {
				break
			}
			s.evict(e)
			evicted++
		}
	}
	// Byte budget: evict oldest until the new entry fits.
	for s.bytes+len(encoded) > c.byteLimit && s.tail < s.head {
		s.evict(&s.entries[s.tail&uint64(len(s.entries)-1)])
		evicted++
	}
	if live := s.head - s.tail; live == uint64(len(s.entries)) {
		if len(s.entries) < c.maxRing {
			s.grow()
		} else {
			s.evict(&s.entries[s.tail&uint64(len(s.entries)-1)])
			evicted++
		}
	}
	e := &s.entries[s.head&uint64(len(s.entries)-1)]
	e.seq, e.node, e.event, e.ts, e.hasTS, e.wall = seq, node, event, ts, hasTS, wall
	e.buf = append(e.buf[:0], encoded...)
	s.bytes += len(e.buf)
	s.head++
	s.mu.Unlock()
	return evicted
}

// evict retires the tail entry. Shard lock held. The entry's buf stays
// allocated for reuse by a future head.
func (s *shard) evict(e *entry) {
	s.bytes -= len(e.buf)
	if e.hasTS {
		s.lastEvictedTS = e.ts
	}
	s.evictedN++
	s.tail++
}

// grow doubles the ring, relocating live entries to their slots under
// the wider mask. Shard lock held. Growth stops at the cache ceiling;
// after warm-up the ring size is stable and put never allocates.
func (s *shard) grow() {
	bigger := make([]entry, len(s.entries)*2)
	for i := s.tail; i < s.head; i++ {
		bigger[i&uint64(len(bigger)-1)] = s.entries[i&uint64(len(s.entries)-1)]
	}
	s.entries = bigger
}

// loaded is one batch-copied cache entry: the subscriber- or query-owned
// copy of an entry's metadata with its encoding appended to a caller
// arena (offsets into it, so one arena allocation serves the batch).
type loaded struct {
	seq      uint64
	ts       int64
	node     int32
	event    uint8
	hasTS    bool
	off, end int // slice bounds into the caller's arena
}

// load batch-copies up to max entries with logical index >= from into
// out/arena, pre-filtering on entry metadata under one lock hold — the
// shared batch loader for subscriber catch-up and bounded queries. It
// reports the entries scanned (not just matched) so cursors advance past
// non-matching records, the gap [from, tail) if the cursor was overrun,
// and the shard's current tail and head.
func (s *shard) load(f *Filter, from uint64, max int, out []loaded, arena []byte) (res []loaded, ar []byte, scanned uint64, gap uint64, gapTS int64, tail, head uint64) {
	s.mu.Lock()
	tail, head = s.tail, s.head
	if from < tail {
		gap = tail - from
		gapTS = s.lastEvictedTS
		from = tail
	}
	for i := from; i < head && scanned < uint64(max); i++ {
		e := &s.entries[i&uint64(len(s.entries)-1)]
		scanned++
		if f != nil && !f.MatchMeta(e.node, e.event, e.ts, e.hasTS) {
			continue
		}
		off := len(arena)
		arena = append(arena, e.buf...)
		out = append(out, loaded{
			seq: e.seq, ts: e.ts, node: e.node, event: e.event,
			hasTS: e.hasTS, off: off, end: len(arena),
		})
	}
	s.mu.Unlock()
	return out, arena, scanned, gap, gapTS, tail, head
}

// bounds returns the shard's current retention window without copying.
func (s *shard) bounds() (tail, head uint64) {
	s.mu.Lock()
	tail, head = s.tail, s.head
	s.mu.Unlock()
	return
}

// stats sums the cache's current occupancy.
func (c *cache) stats() (entries uint64, bytes int, evicted uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		entries += s.head - s.tail
		bytes += s.bytes
		evicted += s.evictedN
		s.mu.Unlock()
	}
	return
}
