package subscribe

import (
	"context"
	"io"
	"testing"
	"time"

	"brisk/internal/record"
)

// encode renders a record exactly as the manager's memory-buffer sink
// does: 4-byte big-endian node prefix + the NOTICE binary structure.
func encode(t testing.TB, rec *record.Record) []byte {
	t.Helper()
	buf := []byte{
		byte(uint32(rec.Node) >> 24), byte(uint32(rec.Node) >> 16),
		byte(uint32(rec.Node) >> 8), byte(uint32(rec.Node)),
	}
	buf, err := rec.Append(buf)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf
}

// publish pushes one record through the tap the way the merger does.
func publish(t testing.TB, e *Engine, node int32, event uint8, ts int64, now int64, extra ...record.Value) {
	t.Helper()
	fields := append([]record.Value{record.TSVal(ts)}, extra...)
	rec := record.New(event, fields...)
	rec.Node = node
	e.Publish(&rec, encode(t, &rec), now)
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestEngineLiveTail(t *testing.T) {
	e := New(Config{Shards: 4})
	defer e.Close()
	sub, err := e.Subscribe(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 10; i++ {
		publish(t, e, int32(i%3), uint8(i), int64(1000+i), 1, record.I32Val(int32(i)))
	}
	e.EndFlush()
	var got []Event
	for len(got) < 10 {
		evs, err := sub.Next(ctxShort(t))
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := range evs {
			ev := evs[i]
			got = append(got, ev)
		}
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d: seq=%d, want %d (global emission order)", i, ev.Seq, i)
		}
		if ev.Record.Node != int32(i%3) || ev.Record.Event != uint8(i) || ev.Record.TS != int64(1000+i) {
			t.Fatalf("event %d decoded wrong: %v", i, ev.Record.String())
		}
		if len(ev.Record.Fields) != 2 || ev.Record.Fields[1].Int() != int64(i) {
			t.Fatalf("event %d payload field wrong: %v", i, ev.Record.String())
		}
	}
	if d, dr := sub.Stats(); d != 10 || dr != 0 {
		t.Fatalf("Stats = (%d, %d), want (10, 0)", d, dr)
	}
}

func TestEngineSubscribeSeesOnlyNewWithoutReplay(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	publish(t, e, 1, 1, 100, 1)
	e.EndFlush()
	sub, _ := e.Subscribe(nil, false)
	defer sub.Close()
	publish(t, e, 1, 2, 200, 1)
	e.EndFlush()
	evs, err := sub.Next(ctxShort(t))
	if err != nil || len(evs) != 1 || evs[0].Record.Event != 2 {
		t.Fatalf("head subscription got %v, %v; want the one post-subscribe record", evs, err)
	}

	old, _ := e.Subscribe(nil, true)
	defer old.Close()
	var replay []uint8
	for len(replay) < 2 {
		evs, err := old.Next(ctxShort(t))
		if err != nil {
			t.Fatal(err)
		}
		for i := range evs {
			replay = append(replay, evs[i].Record.Event)
		}
	}
	if replay[0] != 1 || replay[1] != 2 {
		t.Fatalf("replay=oldest got events %v, want [1 2]", replay)
	}
}

func TestEngineFilterSkipsAndWakeSuppression(t *testing.T) {
	e := New(Config{Shards: 4})
	defer e.Close()
	f := mustFilter(t, "event=7")
	sub, _ := e.Subscribe(f, false)
	defer sub.Close()
	// A flush carrying no class-7 records must not wake the subscriber.
	publish(t, e, 1, 3, 100, 1)
	e.EndFlush()
	if got := e.wakeupsC.Value(); got != 0 {
		t.Fatalf("wakeups after non-matching flush = %d, want 0 (mask suppression)", got)
	}
	publish(t, e, 1, 7, 200, 1)
	e.EndFlush()
	if got := e.wakeupsC.Value(); got != 1 {
		t.Fatalf("wakeups after matching flush = %d, want 1", got)
	}
	evs, err := sub.Next(ctxShort(t))
	if err != nil || len(evs) != 1 || evs[0].Record.Event != 7 {
		t.Fatalf("filtered Next got %v, %v; want just the class-7 record", evs, err)
	}
}

func TestEngineOverrunSynthesizesLossMarker(t *testing.T) {
	// One shard with the smallest byte budget: retention a handful of
	// records deep, so a parked cursor is quickly overrun.
	e := New(Config{Shards: 1, WindowBytes: 1}) // floor: 1024 bytes/shard
	defer e.Close()
	sub, _ := e.Subscribe(nil, true)
	defer sub.Close()
	const total = 1000
	for i := 0; i < total; i++ {
		publish(t, e, 1, 1, int64(i), 1, record.StrVal("padding-padding-padding"))
	}
	e.EndFlush()
	var data, lost uint64
	var lastSeq uint64
	first := true
	var markerLastTS int64
	for data+lost < total {
		evs, err := sub.Next(ctxShort(t))
		if err != nil {
			t.Fatalf("Next: %v (data=%d lost=%d)", err, data, lost)
		}
		for i := range evs {
			ev := &evs[i]
			if count, _, lastTS, ok := record.LossInfo(&ev.Record); ok {
				lost += count
				markerLastTS = lastTS
				continue
			}
			if !first && ev.Seq != lastSeq+1 {
				t.Fatalf("non-contiguous data after marker accounting: %d -> %d", lastSeq, ev.Seq)
			}
			first = false
			lastSeq = ev.Seq
			data++
		}
	}
	if lost == 0 {
		t.Fatal("expected an overrun cursor to produce a loss marker")
	}
	if data+lost != total {
		t.Fatalf("conservation broken: delivered %d + dropped %d != published %d", data, lost, total)
	}
	// The marker's covered range ends at the newest evicted record's TS,
	// which is the record just before the first delivered one.
	if want := int64(lost - 1); markerLastTS != want {
		t.Fatalf("marker lastTS = %d, want %d", markerLastTS, want)
	}
	if d, dr := sub.Stats(); d != data || dr != lost {
		t.Fatalf("Stats = (%d, %d), want (%d, %d)", d, dr, data, lost)
	}
}

func TestEngineTTLEviction(t *testing.T) {
	e := New(Config{Shards: 1, WindowTTL: time.Second}) // 1e6 µs
	defer e.Close()
	publish(t, e, 1, 1, 100, 1_000_000)
	publish(t, e, 1, 2, 200, 1_500_000)
	// Publishing at now=2_400_000 ages out the first record
	// (wall 1_000_000 < cutoff 1_400_000) but keeps the second.
	publish(t, e, 1, 3, 300, 2_400_000)
	e.EndFlush()
	evs := e.Query(nil, 10)
	if len(evs) != 2 || evs[0].Record.Event != 2 || evs[1].Record.Event != 3 {
		t.Fatalf("after TTL eviction Query returned %d events (want the 2 young ones)", len(evs))
	}
	if n, _, _ := e.cache.stats(); n != 2 {
		t.Fatalf("cache entries = %d, want 2", n)
	}
}

func TestEngineQuery(t *testing.T) {
	e := New(Config{Shards: 4})
	defer e.Close()
	for i := 0; i < 50; i++ {
		publish(t, e, int32(i%5), uint8(i%4), int64(i), 1, record.I32Val(int32(i)))
	}
	e.EndFlush()

	all := e.Query(nil, 1000)
	if len(all) != 50 {
		t.Fatalf("unfiltered query: %d events, want 50", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatal("query results must be in ascending emission order")
		}
	}

	// limit keeps the newest.
	newest := e.Query(nil, 10)
	if len(newest) != 10 || newest[0].Seq != 40 || newest[9].Seq != 49 {
		t.Fatalf("limited query kept seqs [%d..%d], want [40..49]",
			newest[0].Seq, newest[len(newest)-1].Seq)
	}

	byNode := e.Query(mustFilter(t, "node=2"), 1000)
	if len(byNode) != 10 {
		t.Fatalf("node=2 query: %d events, want 10", len(byNode))
	}
	for _, ev := range byNode {
		if ev.Record.Node != 2 {
			t.Fatalf("node=2 query returned node %d", ev.Record.Node)
		}
	}

	byField := e.Query(mustFilter(t, "f1>=45"), 1000)
	if len(byField) != 5 {
		t.Fatalf("f1>=45 query: %d events, want 5", len(byField))
	}
}

func TestEngineTopK(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	// Node 9 and class 3 dominate.
	for i := 0; i < 100; i++ {
		publish(t, e, 9, 3, int64(i), 1)
	}
	for i := 0; i < 10; i++ {
		publish(t, e, int32(i), uint8(i), int64(i), 1)
	}
	e.EndFlush()
	srcs := e.TopSources(3)
	if len(srcs) == 0 || srcs[0].Key != 9 || srcs[0].Count < 100 {
		t.Fatalf("TopSources = %v, want node 9 first with count >= 100", srcs)
	}
	evts := e.TopEvents(3)
	if len(evts) == 0 || evts[0].Key != 3 || evts[0].Count < 100 {
		t.Fatalf("TopEvents = %v, want class 3 first with count >= 100", evts)
	}
}

func TestEngineCloseDrainsThenEOF(t *testing.T) {
	e := New(Config{Shards: 2})
	sub, _ := e.Subscribe(nil, true)
	publish(t, e, 1, 1, 100, 1)
	publish(t, e, 1, 2, 200, 1)
	e.EndFlush()
	e.Close()
	var events []uint8
	for {
		evs, err := sub.Next(ctxShort(t))
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := range evs {
			events = append(events, evs[i].Record.Event)
		}
	}
	if len(events) != 2 {
		t.Fatalf("drained %d events before EOF, want 2", len(events))
	}
	if _, err := e.Subscribe(nil, false); err != ErrClosed {
		t.Fatalf("Subscribe on closed engine: %v, want ErrClosed", err)
	}
}

func TestSubscriptionCloseUnblocksNext(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	sub, _ := e.Subscribe(nil, false)
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Fatalf("Next after Close: %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not return after Close")
	}
}

func TestEngineNextContext(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	sub, _ := e.Subscribe(nil, false)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Next with expired context: %v, want DeadlineExceeded", err)
	}
}

func TestEngineMetricsConservation(t *testing.T) {
	e := New(Config{Shards: 4})
	defer e.Close()
	sub, _ := e.Subscribe(nil, true)
	defer sub.Close()
	const total = 64
	for i := 0; i < total; i++ {
		publish(t, e, int32(i), uint8(i), int64(i), 1)
	}
	e.EndFlush()
	var n int
	for n < total {
		evs, err := sub.Next(ctxShort(t))
		if err != nil {
			t.Fatal(err)
		}
		n += len(evs)
	}
	if got := e.publishedC.Value(); got != total {
		t.Fatalf("published counter = %d, want %d", got, total)
	}
	if got := e.deliveredC.Value(); got != total {
		t.Fatalf("delivered counter = %d, want %d", got, total)
	}
	if got := e.droppedC.Value(); got != 0 {
		t.Fatalf("dropped counter = %d, want 0", got)
	}
}

func TestCacheRingGrowAndWrap(t *testing.T) {
	// Small budget so the ring wraps; verifies entries survive growth.
	c := newCache(1, 1<<20, 0)
	s := c.shards[0]
	payload := make([]byte, 16)
	for i := 0; i < 1000; i++ {
		s.put(c, uint64(i), int32(i), 1, int64(i), true, 1, payload)
	}
	tail, head := s.bounds()
	if head != 1000 {
		t.Fatalf("head = %d, want 1000", head)
	}
	var out []loaded
	var arena []byte
	out, _, scanned, gap, _, _, _ := s.load(nil, tail, 1<<20, out, arena)
	if gap != 0 || scanned != head-tail || uint64(len(out)) != head-tail {
		t.Fatalf("load after wrap: scanned=%d gap=%d out=%d window=%d", scanned, gap, len(out), head-tail)
	}
	for i, l := range out {
		if l.seq != tail+uint64(i) {
			t.Fatalf("entry %d has seq %d, want %d (ring relocation broke order)", i, l.seq, tail+uint64(i))
		}
	}
}

func TestTopKDisplacement(t *testing.T) {
	tk := newTopK(2)
	tk.offer(1, 5)
	tk.offer(2, 3)
	tk.offer(3, 10) // displaces key 2
	top := tk.top(2)
	if len(top) != 2 || top[0].Key != 3 || top[1].Key != 1 {
		t.Fatalf("top = %v, want [{3 10} {1 5}]", top)
	}
	tk.offer(1, 20) // update in place
	if top := tk.top(1); top[0].Key != 1 || top[0].Count != 20 {
		t.Fatalf("top after update = %v, want key 1 count 20", top)
	}
}

func TestSketchEstimates(t *testing.T) {
	sk := newSketch(1024, 4)
	for i := 0; i < 500; i++ {
		sk.add(42)
	}
	sk.add(7)
	if got := sk.estimate(42); got < 500 {
		t.Fatalf("estimate(42) = %d, want >= 500 (CM sketch never undercounts)", got)
	}
	if got := sk.estimate(7); got < 1 || got > 501 {
		t.Fatalf("estimate(7) = %d, out of sane range", got)
	}
	if got := sk.estimate(999); got > 501 {
		t.Fatalf("estimate(unseen) = %d, collision bound blown", got)
	}
}
