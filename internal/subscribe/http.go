package subscribe

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"brisk/internal/record"
)

// wireEvent is the JSON rendering of one delivered event — one NDJSON
// line on /subscribe, one array element on /query.
type wireEvent struct {
	Seq   uint64      `json:"seq"`
	Node  int32       `json:"node"`
	Event uint8       `json:"event"`
	TS    *int64      `json:"ts,omitempty"`
	Loss  *wireLoss   `json:"loss,omitempty"`
	Field []wireField `json:"fields,omitempty"`
}

// wireLoss makes a read-side gap explicit on the wire: count records
// were missed; the marker's shard locates it; last_ts ends the covered
// range (first_ts is 0 when unknown).
type wireLoss struct {
	Count   uint64 `json:"count"`
	Shard   int    `json:"shard"`
	FirstTS int64  `json:"first_ts"`
	LastTS  int64  `json:"last_ts"`
}

type wireField struct {
	Type string  `json:"type"`
	Int  *int64  `json:"int,omitempty"`
	Uint *uint64 `json:"uint,omitempty"`
	F    *string `json:"float,omitempty"` // rendered, avoids NaN/Inf JSON issues
	Str  *string `json:"str,omitempty"`
	Bool *bool   `json:"bool,omitempty"`
}

func renderEvent(ev *Event) wireEvent {
	w := wireEvent{Seq: ev.Seq, Node: ev.Record.Node, Event: ev.Record.Event}
	if count, firstTS, lastTS, ok := record.LossInfo(&ev.Record); ok {
		w.Loss = &wireLoss{Count: count, Shard: ev.Shard, FirstTS: firstTS, LastTS: lastTS}
		return w
	}
	if ev.Record.HasTS {
		ts := ev.Record.TS
		w.TS = &ts
	}
	for _, f := range ev.Record.Fields {
		wf := wireField{Type: f.Type.String()}
		switch f.Type {
		case record.TS:
			continue // already on the event envelope
		case record.Int8, record.Int16, record.Int32, record.Int64:
			v := f.Int()
			wf.Int = &v
		case record.Uint8, record.Uint16, record.Uint32, record.Uint64,
			record.Reason, record.Conseq:
			v := f.Uint()
			wf.Uint = &v
		case record.Float32, record.Float64:
			v := strconv.FormatFloat(f.Float(), 'g', -1, 64)
			wf.F = &v
		case record.String:
			s := f.Str
			wf.Str = &s
		case record.Bool:
			v := f.Bool()
			wf.Bool = &v
		}
		w.Field = append(w.Field, wf)
	}
	return w
}

// Handler returns the engine's HTTP API as one handler serving
//
//   - /subscribe — streaming NDJSON tail of the sorted stream
//     (?filter=expr&replay=oldest to catch up from the hot window)
//   - /query     — bounded window read (?filter=expr&limit=N), JSON array
//   - /topk      — heavy hitters (?by=source|event&k=N), JSON array
//
// Mount it (or the individual methods below) on the observability
// server. See OBSERVABILITY.md for the filter grammar.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/subscribe", e.ServeSubscribe)
	mux.HandleFunc("/query", e.ServeQuery)
	mux.HandleFunc("/topk", e.ServeTopK)
	return mux
}

func parseFilterParam(w http.ResponseWriter, req *http.Request) (*Filter, bool) {
	f, err := ParseFilter(req.URL.Query().Get("filter"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return f, true
}

// ServeSubscribe streams matching events as NDJSON until the client
// disconnects or the engine shuts down; shutdown ends the response
// cleanly (terminated chunked body), so well-behaved clients see EOF,
// not a reset.
func (e *Engine) ServeSubscribe(w http.ResponseWriter, req *http.Request) {
	f, ok := parseFilterParam(w, req)
	if !ok {
		return
	}
	fromOldest := req.URL.Query().Get("replay") == "oldest"
	sub, err := e.Subscribe(f, fromOldest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers so the client sees the stream open
	}
	enc := json.NewEncoder(w)
	ctx := req.Context()
	for {
		evs, err := sub.Next(ctx)
		if err != nil {
			return // client gone or engine closed: end the body cleanly
		}
		for i := range evs {
			we := renderEvent(&evs[i])
			if err := enc.Encode(&we); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// ServeQuery answers a bounded catch-up read from the hot window.
func (e *Engine) ServeQuery(w http.ResponseWriter, req *http.Request) {
	f, ok := parseFilterParam(w, req)
	if !ok {
		return
	}
	limit := 1000
	if s := req.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", s), http.StatusBadRequest)
			return
		}
		limit = n
	}
	evs := e.Query(f, limit)
	out := make([]wireEvent, 0, len(evs))
	for i := range evs {
		out = append(out, renderEvent(&evs[i]))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(out)
}

// ServeTopK answers the sketch's heavy-hitter estimate.
func (e *Engine) ServeTopK(w http.ResponseWriter, req *http.Request) {
	k := 10
	if s := req.URL.Query().Get("k"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("bad k %q", s), http.StatusBadRequest)
			return
		}
		k = n
	}
	by := req.URL.Query().Get("by")
	var entries []TopEntry
	switch by {
	case "", "source", "node":
		by = "source"
		entries = e.TopSources(k)
	case "event":
		entries = e.TopEvents(k)
	default:
		http.Error(w, fmt.Sprintf("bad by %q (want source or event)", by), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(struct {
		By      string     `json:"by"`
		Entries []TopEntry `json:"entries"`
	}{By: by, Entries: entries})
}
