package subscribe

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"brisk/internal/record"
)

// TestSoakConservation runs the read side under -race conditions: one
// publisher (the merger-goroutine role), a set of durable subscribers
// that read slowly enough to be overrun by the tiny hot window, and a
// churn of short-lived subscribers attaching and detaching throughout.
// The invariant under test is the read-side delivery contract: for every
// durable subscriber and every shard, records delivered plus records
// covered by loss markers equals records published — loss is always
// explicit, never silent.
func TestSoakConservation(t *testing.T) {
	const (
		shards   = 4
		perNode  = 3000 // records per source; node i -> shard i (identity low bits)
		durable  = 4
		churners = 6
	)
	e := New(Config{Shards: shards, WindowBytes: 4 * 1024 * shards, BatchRecords: 64})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	type tally struct {
		data [shards]uint64
		lost [shards]uint64
	}
	results := make([]tally, durable)
	var wg sync.WaitGroup

	// Durable subscribers: subscribe from the stream head before the
	// first publish, read with small sleeps so cursors fall behind.
	for d := 0; d < durable; d++ {
		sub, err := e.Subscribe(nil, true)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(d int, sub *Subscription) {
			defer wg.Done()
			defer sub.Close()
			res := &results[d]
			for {
				evs, err := sub.Next(ctx)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("durable %d: Next: %v", d, err)
					return
				}
				for i := range evs {
					ev := &evs[i]
					if count, _, _, ok := record.LossInfo(&ev.Record); ok {
						res.lost[ev.Shard] += count
						continue
					}
					res.data[ev.Shard]++
				}
				if d%2 == 0 {
					time.Sleep(time.Millisecond) // slow reader: forces overruns
				}
			}
		}(d, sub)
	}

	// Churners: attach with assorted filters, read a little, detach,
	// repeat until the publisher finishes. They assert nothing — they
	// exist to race subscribe/close against publish and other readers.
	pubDone := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			exprs := []string{"", "event=1", fmt.Sprintf("node=%d", c%shards), "f1>100"}
			for i := 0; ; i++ {
				select {
				case <-pubDone:
					return
				case <-ctx.Done():
					return
				default:
				}
				sub, err := e.Subscribe(mustFilter(t, exprs[i%len(exprs)]), i%2 == 0)
				if err != nil {
					return // engine closed under us: churn is over
				}
				short, cancelShort := context.WithTimeout(ctx, 2*time.Millisecond)
				for {
					if _, err := sub.Next(short); err != nil {
						break
					}
				}
				cancelShort()
				sub.Close()
			}
		}(c)
	}

	// Publisher: interleave sources so every shard grows together.
	go func() {
		defer close(pubDone)
		for i := 0; i < perNode; i++ {
			for node := 0; node < shards; node++ {
				rec := record.New(uint8(i%4), record.TSVal(int64(i)), record.I32Val(int32(i)))
				rec.Node = int32(node)
				e.Publish(&rec, encode(t, &rec), int64(i))
			}
			if i%16 == 0 {
				e.EndFlush()
			}
		}
		e.EndFlush()
	}()

	<-pubDone
	// Close detaches everyone; durable readers drain what they reached
	// and then see EOF with their tallies complete.
	e.Close()
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("soak timed out")
	}

	for d := range results {
		for s := 0; s < shards; s++ {
			got := results[d].data[s] + results[d].lost[s]
			if got != perNode {
				t.Errorf("durable %d shard %d: delivered %d + marker-covered %d = %d, want %d",
					d, s, results[d].data[s], results[d].lost[s], got, perNode)
			}
		}
	}
}
