package subscribe

import (
	"math"
	"strings"
	"testing"

	"brisk/internal/record"
)

func mustFilter(t *testing.T, expr string) *Filter {
	t.Helper()
	f, err := ParseFilter(expr)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", expr, err)
	}
	return f
}

func TestParseFilterEmpty(t *testing.T) {
	f := mustFilter(t, "")
	if !f.MatchMeta(7, 200, 123, true) || !f.MatchMeta(-1, 0, 0, false) {
		t.Fatal("empty filter must match everything")
	}
	if f.NeedsFields() {
		t.Fatal("empty filter must not need fields")
	}
	if f.shardMask(8) != 0xFF {
		t.Fatalf("shardMask = %#x, want 0xFF", f.shardMask(8))
	}
}

func TestParseFilterNodes(t *testing.T) {
	f := mustFilter(t, "node=1,3,5")
	for _, tc := range []struct {
		node int32
		want bool
	}{{1, true}, {3, true}, {5, true}, {2, false}, {0, false}, {-1, false}} {
		if got := f.MatchMeta(tc.node, 0, 0, false); got != tc.want {
			t.Errorf("node %d: match=%v, want %v", tc.node, got, tc.want)
		}
	}
	// source= is an alias.
	g := mustFilter(t, "source=1")
	if !g.MatchMeta(1, 0, 0, false) || g.MatchMeta(2, 0, 0, false) {
		t.Fatal("source= alias broken")
	}
}

func TestParseFilterEvents(t *testing.T) {
	f := mustFilter(t, "event=5,7,255")
	for _, tc := range []struct {
		ev   uint8
		want bool
	}{{5, true}, {7, true}, {255, true}, {6, false}, {0, false}} {
		if got := f.MatchMeta(0, tc.ev, 0, false); got != tc.want {
			t.Errorf("event %d: match=%v, want %v", tc.ev, got, tc.want)
		}
	}
}

func TestParseFilterTSRange(t *testing.T) {
	f := mustFilter(t, "ts>=100 ts<200")
	for _, tc := range []struct {
		ts    int64
		hasTS bool
		want  bool
	}{
		{100, true, true}, {199, true, true},
		{99, true, false}, {200, true, false},
		// Records without a timestamp fail every ts clause.
		{150, false, false},
	} {
		if got := f.MatchMeta(0, 0, tc.ts, tc.hasTS); got != tc.want {
			t.Errorf("ts=%d hasTS=%v: match=%v, want %v", tc.ts, tc.hasTS, got, tc.want)
		}
	}
	eq := mustFilter(t, "ts=150")
	if !eq.MatchMeta(0, 0, 150, true) || eq.MatchMeta(0, 0, 151, true) {
		t.Fatal("ts= must pin the range to one instant")
	}
	gt := mustFilter(t, "ts>100 ts<=200")
	if gt.MatchMeta(0, 0, 100, true) || !gt.MatchMeta(0, 0, 101, true) ||
		!gt.MatchMeta(0, 0, 200, true) || gt.MatchMeta(0, 0, 201, true) {
		t.Fatal("strict/inclusive ts bounds wrong")
	}
}

func TestParseFilterConjunction(t *testing.T) {
	// && and whitespace separate clauses interchangeably.
	f := mustFilter(t, "node=3 && event=1,2&&ts>=10")
	if !f.MatchMeta(3, 1, 10, true) {
		t.Fatal("conjunction should match")
	}
	if f.MatchMeta(3, 1, 9, true) || f.MatchMeta(3, 3, 10, true) || f.MatchMeta(4, 1, 10, true) {
		t.Fatal("one failing clause must fail the conjunction")
	}
}

func TestParseFilterFieldPredicates(t *testing.T) {
	rec := record.New(9,
		record.I32Val(42),         // f0
		record.F64Val(3.5),        // f1
		record.StrVal("checkout"), // f2
		record.BoolVal(true),      // f3
		record.U64Val(1<<63),      // f4: above int64 range
	)
	for _, tc := range []struct {
		expr string
		want bool
	}{
		{"f0=42", true}, {"f0==42", true}, {"f0!=42", false}, {"f0>41", true},
		{"f0>=42", true}, {"f0<42", false}, {"f0<=42", true}, {"f0>42", false},
		{"f1>3", true}, {"f1<3.6", true}, {"f1=3.5", true},
		{"f2=\"checkout\"", true}, {"f2='checkout'", true}, {"f2!='cart'", true},
		{"f2<'d'", true}, {"f2>'d'", false},
		{"f3=true", true}, {"f3=false", false}, {"f3!=false", true},
		// Uint64 compares by its unsigned value.
		{"f4>0", true},
		// Missing field never matches.
		{"f7=1", false},
		// String predicate on a numeric field (and vice versa) never matches.
		{"f0='x'", false}, {"f2=42", false},
		// Mixed with metadata clauses.
		{"event=9 f0=42", true}, {"event=8 f0=42", false},
	} {
		f := mustFilter(t, tc.expr)
		got := f.MatchMeta(rec.Node, rec.Event, rec.TS, rec.HasTS) &&
			(!f.NeedsFields() || f.MatchFields(&rec))
		if got != tc.want {
			t.Errorf("%q: match=%v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, expr := range []string{
		"node=x",                      // bad node id
		"node>3",                      // source sets only support '='
		"event=256",                   // event class out of uint8 range
		"event!=1",                    // event sets only support '='
		"ts=abc",                      // bad timestamp
		"ts!=5",                       // ts does not support !=
		"f9=1",                        // field index out of range
		"f=1",                         // no index digits
		"fx=1",                        // non-numeric index
		"f0='oops",                    // unterminated string
		"f0=zzz",                      // bad literal
		"bogus=1",                     // unknown key
		"node",                        // no operator
		"node=",                       // missing value
		"f0<!3",                       // mangled operator
		"ts>" + "9223372036854775807", // ts>max overflows
	} {
		if _, err := ParseFilter(expr); err == nil {
			t.Errorf("ParseFilter(%q): expected error", expr)
		}
	}
}

func TestFilterString(t *testing.T) {
	const expr = "node=1 event=2"
	f := mustFilter(t, expr)
	if f.String() != expr {
		t.Fatalf("String() = %q, want %q", f.String(), expr)
	}
}

func TestShardMask(t *testing.T) {
	// Low bits of the node id select the shard.
	f := mustFilter(t, "node=0,9") // 0&7=0, 9&7=1
	if got := f.shardMask(8); got != 0b11 {
		t.Fatalf("shardMask(8) = %#b, want 0b11", got)
	}
	if got := f.shardMask(64); got == 0 {
		t.Fatal("64-shard mask must not be empty")
	}
	all := mustFilter(t, "event=5")
	if got := all.shardMask(4); got != 0xF {
		t.Fatalf("no-source filter shardMask(4) = %#x, want 0xF", got)
	}
}

func TestEventOverlap(t *testing.T) {
	f := mustFilter(t, "event=5,70")
	var seen [4]uint64
	if f.eventOverlap(&seen) {
		t.Fatal("empty seen set must not overlap an event filter")
	}
	seen[70>>6] |= 1 << (70 & 63)
	if !f.eventOverlap(&seen) {
		t.Fatal("seen class 70 must overlap event=5,70")
	}
	any := mustFilter(t, "node=1")
	var none [4]uint64
	if !any.eventOverlap(&none) {
		t.Fatal("filter without event clause must always overlap")
	}
}

func TestFilterTSOpenRange(t *testing.T) {
	f := mustFilter(t, "node=1")
	// No ts clause: records without timestamps still match.
	if !f.MatchMeta(1, 0, 0, false) {
		t.Fatal("no-ts-clause filter must accept timestamp-less records")
	}
	if f.tsMin != math.MinInt64 || f.tsMax != math.MaxInt64 {
		t.Fatal("default ts range must be open")
	}
}

func TestMatchFieldsAllocationFree(t *testing.T) {
	rec := record.New(9, record.I32Val(42), record.StrVal(strings.Repeat("x", 64)))
	f := mustFilter(t, "f0>=42 f1!='y'")
	allocs := testing.AllocsPerRun(1000, func() {
		if !f.MatchFields(&rec) {
			t.Fatal("must match")
		}
		if !f.MatchMeta(rec.Node, rec.Event, rec.TS, rec.HasTS) {
			t.Fatal("must match")
		}
	})
	if allocs != 0 {
		t.Fatalf("filter evaluation allocates %v per run, want 0", allocs)
	}
}
