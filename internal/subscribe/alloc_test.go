package subscribe

import (
	"fmt"
	"testing"

	"brisk/internal/record"
)

// tapAllocs measures steady-state allocations of one Publish+EndFlush
// round — the full per-record tap cost on the merger goroutine — after
// warming the hot window past its byte budget so rings and entry buffers
// have reached their stable sizes.
func tapAllocs(t *testing.T, e *Engine) float64 {
	t.Helper()
	const nodes = 32
	recs := make([]record.Record, nodes)
	encs := make([][]byte, nodes)
	for i := range recs {
		recs[i] = record.New(uint8(i%8), record.TSVal(int64(i)), record.I32Val(int32(i)), record.U64Val(7))
		recs[i].Node = int32(i)
		encs[i] = encode(t, &recs[i])
	}
	// Warm: push every shard well past eviction so put recycles slots
	// instead of growing.
	for round := 0; round < 5000; round++ {
		for i := range recs {
			e.Publish(&recs[i], encs[i], int64(round))
		}
		e.EndFlush()
	}
	i, now := 0, int64(5000)
	return testing.AllocsPerRun(2000, func() {
		e.Publish(&recs[i%nodes], encs[i%nodes], now)
		i++
		if i%8 == 0 {
			e.EndFlush()
			now++
		}
	})
}

// TestTapZeroAllocNoSubscribers proves the hard requirement of the read
// side: the tap adds zero allocations to the ingest path.
func TestTapZeroAllocNoSubscribers(t *testing.T) {
	e := New(Config{Shards: 8, WindowBytes: 64 << 10})
	defer e.Close()
	if allocs := tapAllocs(t, e); allocs != 0 {
		t.Fatalf("tap allocates %v per record with no subscribers, want 0", allocs)
	}
}

// TestTapZeroAllocWithSubscribers repeats the contract with a population
// of attached subscribers — idle ones whose filters cannot match (wake
// suppression must keep them completely off the publish path) and
// matching ones that never read (the full wake channel must be a
// non-blocking no-op, not a buffer growth).
func TestTapZeroAllocWithSubscribers(t *testing.T) {
	e := New(Config{Shards: 8, WindowBytes: 64 << 10})
	defer e.Close()
	for i := 0; i < 64; i++ {
		var f *Filter
		if i%2 == 0 {
			f = mustFilter(t, "event=200") // never published: idle
		} else {
			f = mustFilter(t, fmt.Sprintf("node=%d", i%32)) // matches, never reads
		}
		sub, err := e.Subscribe(f, false)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
	}
	if allocs := tapAllocs(t, e); allocs != 0 {
		t.Fatalf("tap allocates %v per record with 64 subscribers, want 0", allocs)
	}
}
