package subscribe

import (
	"sort"
	"sync"
)

// sketch is a count-min sketch: depth rows of width counters, each row
// indexed by an independent hash of the key. A point estimate reads the
// minimum across rows and therefore only ever over-counts (by hash
// collisions bounded by N/width per row with high probability). It
// answers "which sources / event classes are noisiest" with a few KB of
// fixed storage, no matter how many distinct sources the stream carries.
//
// Updates run on the publisher's hot path, so the structure is fixed
// arrays and arithmetic only — no allocation, no per-key state.
type sketch struct {
	width uint64
	depth int
	rows  []uint64 // depth*width, row-major
}

func newSketch(width, depth int) *sketch {
	return &sketch{width: uint64(width), depth: depth, rows: make([]uint64, width*depth)}
}

// mix64 is SplitMix64's finalizer — a cheap, well-distributed 64-bit
// mixer. Each sketch row perturbs the key with a different odd constant
// so the row hashes are pairwise independent enough in practice.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add increments the key and returns its new point estimate (the
// minimum across rows).
func (sk *sketch) add(key uint64) uint64 {
	est := ^uint64(0)
	for d := 0; d < sk.depth; d++ {
		h := mix64(key + uint64(d)*0x9e3779b97f4a7c15)
		slot := &sk.rows[uint64(d)*sk.width+h%sk.width]
		*slot++
		if *slot < est {
			est = *slot
		}
	}
	return est
}

// estimate reads the key's point estimate without updating.
func (sk *sketch) estimate(key uint64) uint64 {
	est := ^uint64(0)
	for d := 0; d < sk.depth; d++ {
		h := mix64(key + uint64(d)*0x9e3779b97f4a7c15)
		if v := sk.rows[uint64(d)*sk.width+h%sk.width]; v < est {
			est = v
		}
	}
	return est
}

// TopEntry is one row of a top-K answer.
type TopEntry struct {
	Key   int64  `json:"key"`
	Count uint64 `json:"count"`
}

// topk tracks the K heaviest keys seen by a sketch dimension: a fixed
// candidate array updated with the sketch estimate on every add. A key
// enters by displacing the current minimum once its estimate exceeds it
// — the classic sketch+heap heavy-hitters loop, array-shaped so the
// hot-path update allocates nothing and K stays cache-resident.
type topk struct {
	keys   []int64
	counts []uint64
	n      int
}

func newTopK(k int) *topk {
	return &topk{keys: make([]int64, k), counts: make([]uint64, k)}
}

// offer updates key's candidate count (or displaces the minimum).
func (t *topk) offer(key int64, est uint64) {
	minI, minC := -1, ^uint64(0)
	for i := 0; i < t.n; i++ {
		if t.keys[i] == key {
			if est > t.counts[i] {
				t.counts[i] = est
			}
			return
		}
		if t.counts[i] < minC {
			minI, minC = i, t.counts[i]
		}
	}
	if t.n < len(t.keys) {
		t.keys[t.n], t.counts[t.n] = key, est
		t.n++
		return
	}
	if minI >= 0 && est > minC {
		t.keys[minI], t.counts[minI] = key, est
	}
}

// top returns up to k entries, heaviest first. Called off the hot path.
func (t *topk) top(k int) []TopEntry {
	out := make([]TopEntry, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, TopEntry{Key: t.keys[i], Count: t.counts[i]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// freq is the engine's frequency summary: one sketch shared by the two
// key dimensions (sources and event classes, namespaced into disjoint
// key ranges) with a top-K tracker per dimension. The publisher updates
// it under its own mutex — contention is publisher vs. the occasional
// /topk read, never publisher vs. publisher.
type freq struct {
	mu     sync.Mutex
	sk     *sketch
	bySrc  *topk
	byType *topk
}

const (
	keySource = uint64(1) << 40 // namespace tag for source keys
	keyEvent  = uint64(2) << 40 // namespace tag for event-class keys
)

func newFreq(width, depth, k int) *freq {
	return &freq{sk: newSketch(width, depth), bySrc: newTopK(k), byType: newTopK(k)}
}

// observe records one published record. Allocation-free.
func (q *freq) observe(node int32, event uint8) {
	q.mu.Lock()
	q.bySrc.offer(int64(node), q.sk.add(keySource|uint64(uint32(node))))
	q.byType.offer(int64(event), q.sk.add(keyEvent|uint64(event)))
	q.mu.Unlock()
}

// topSources and topEvents answer /topk.
func (q *freq) topSources(k int) []TopEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bySrc.top(k)
}

func (q *freq) topEvents(k int) []TopEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.byType.top(k)
}
