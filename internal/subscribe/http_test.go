package subscribe

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"brisk/internal/record"
)

func newHTTPEngine(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(Config{Shards: 4})
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(e.Close)
	return e, srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp
}

func TestServeQuery(t *testing.T) {
	e, srv := newHTTPEngine(t)
	for i := 0; i < 20; i++ {
		publish(t, e, int32(i%4), uint8(i%2), int64(100+i), 1, record.StrVal("payload"))
	}
	e.EndFlush()

	var evs []wireEvent
	getJSON(t, srv.URL+"/query?filter=node%3D2&limit=3", &evs)
	if len(evs) != 3 {
		t.Fatalf("query returned %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Node != 2 {
			t.Fatalf("filtered query returned node %d", ev.Node)
		}
		if ev.TS == nil || *ev.TS < 100 {
			t.Fatalf("event missing its timestamp: %+v", ev)
		}
		if len(ev.Field) != 1 || ev.Field[0].Str == nil || *ev.Field[0].Str != "payload" {
			t.Fatalf("event payload fields wrong: %+v", ev)
		}
	}

	resp, err := http.Get(srv.URL + "/query?filter=bogus%3D1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad filter: status %d, want 400", resp.StatusCode)
	}
}

func TestServeTopK(t *testing.T) {
	e, srv := newHTTPEngine(t)
	for i := 0; i < 50; i++ {
		publish(t, e, 7, 3, int64(i), 1)
	}
	publish(t, e, 1, 1, 0, 1)
	e.EndFlush()

	var got struct {
		By      string     `json:"by"`
		Entries []TopEntry `json:"entries"`
	}
	getJSON(t, srv.URL+"/topk?by=source&k=2", &got)
	if got.By != "source" || len(got.Entries) == 0 || got.Entries[0].Key != 7 {
		t.Fatalf("topk by source = %+v, want node 7 first", got)
	}
	getJSON(t, srv.URL+"/topk?by=event", &got)
	if got.By != "event" || got.Entries[0].Key != 3 {
		t.Fatalf("topk by event = %+v, want class 3 first", got)
	}
	resp, _ := http.Get(srv.URL + "/topk?by=nonsense")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad by: status %d, want 400", resp.StatusCode)
	}
}

func TestServeSubscribeStreams(t *testing.T) {
	e, srv := newHTTPEngine(t)
	publish(t, e, 1, 1, 100, 1)
	publish(t, e, 2, 2, 200, 1)
	e.EndFlush()

	resp, err := http.Get(srv.URL + "/subscribe?replay=oldest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events []uint8
	for len(events) < 3 && sc.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev.Event)
		if len(events) == 2 {
			// Stream is live: a record published after the response
			// started must arrive on the same body.
			publish(t, e, 3, 9, 300, 1)
			e.EndFlush()
		}
	}
	if len(events) != 3 || events[0] != 1 || events[1] != 2 || events[2] != 9 {
		t.Fatalf("streamed events %v, want [1 2 9]", events)
	}

	// Engine shutdown must end the body cleanly (EOF, not an error).
	e.Close()
	for sc.Scan() {
	}
	if sc.Err() != nil {
		t.Fatalf("stream did not end cleanly after engine close: %v", sc.Err())
	}
}

func TestServeSubscribeBadFilter(t *testing.T) {
	_, srv := newHTTPEngine(t)
	resp, err := http.Get(srv.URL + "/subscribe?filter=zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad filter: status %d, want 400", resp.StatusCode)
	}
}

func TestRenderEventLossMarker(t *testing.T) {
	ev := Event{Seq: 5, Shard: 2, Record: record.NewLossMarker(10, 3, 99)}
	w := renderEvent(&ev)
	if w.Loss == nil || w.Loss.Count != 10 || w.Loss.Shard != 2 ||
		w.Loss.FirstTS != 3 || w.Loss.LastTS != 99 {
		t.Fatalf("loss marker rendered wrong: %+v", w)
	}
	if w.TS != nil || len(w.Field) != 0 {
		t.Fatalf("loss marker must not carry data fields: %+v", w)
	}
}
