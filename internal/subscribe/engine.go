package subscribe

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/metrics"
	"brisk/internal/record"
)

// Config tunes an Engine. The zero value is a working configuration.
type Config struct {
	// Shards is the hot-window shard count (power of two, max 64;
	// default 8). Sources are mapped to shards by the low bits of their
	// node id, so one hot source contends on one shard only.
	Shards int
	// WindowBytes is the hot window's total byte budget across shards
	// (default 8 MiB). The oldest entries of a shard are evicted when
	// its slice of the budget fills.
	WindowBytes int
	// WindowTTL bounds entry age; entries older than it are evicted on
	// the next publish to their shard (default 30 s; negative disables).
	WindowTTL time.Duration
	// BatchRecords caps how many entries one reader copies out of one
	// shard per lock hold — the batch loader's unit for catch-up reads
	// and live tailing (default 256).
	BatchRecords int
	// SketchWidth and SketchDepth size the count-min sketch behind
	// /topk (defaults 1024 and 4 — ~32 KiB of counters).
	SketchWidth, SketchDepth int
	// TopK is how many heavy-hitter candidates are tracked per
	// dimension (default 16).
	TopK int
	// Metrics, when non-nil, receives the brisk_sub_* series.
	Metrics *metrics.Registry
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > 64 {
		cfg.Shards = 64
	}
	// Round up to a power of two so the source→shard map is a mask.
	for cfg.Shards&(cfg.Shards-1) != 0 {
		cfg.Shards++
	}
	if cfg.WindowBytes <= 0 {
		cfg.WindowBytes = 8 << 20
	}
	if cfg.WindowTTL == 0 {
		cfg.WindowTTL = 30 * time.Second
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 256
	}
	if cfg.SketchWidth <= 0 {
		cfg.SketchWidth = 1024
	}
	if cfg.SketchDepth <= 0 {
		cfg.SketchDepth = 4
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 16
	}
	return cfg
}

// Event is one delivery to a subscriber or query: either a data record
// or a loss marker covering records the reader missed (hot-window
// retention overran its cursor). The marker reuses the pipeline's 0xFF
// loss-record convention, so "delivered means emitted or marker-covered"
// holds on the read side exactly as it does on the write side.
type Event struct {
	// Seq is the global emission sequence the manager published the
	// record at; loss markers carry the sequence of the first record
	// delivered after the gap (0 when the gap reaches the stream head).
	Seq uint64
	// Shard is the hot-window shard the event came from — the loss
	// marker's locus, since a marker can cover several sources.
	Shard int
	// Record is the event payload with a private Fields array. For loss
	// markers (record.IsLossMarker) the count and covered range are in
	// the marker fields; Node is 0 because a shard-level gap has no
	// single source.
	Record record.Record
}

// Engine is the subscription engine: one per manager, fed by the
// merger's sink flush via Publish/EndFlush (the ism.Config.Tap
// contract), read by any number of subscribers and queries.
type Engine struct {
	cfg   Config
	cache *cache
	fr    *freq

	// Publisher-owned state (the merger goroutine): the global emission
	// sequence and the dirty masks accumulated between sink flushes.
	pubSeq      uint64
	dirtyShards uint64
	dirtyEvents [4]uint64
	dirty       bool

	mu     sync.RWMutex
	subs   []*Subscription
	closed bool

	subsN      atomic.Int64
	publishedC *metrics.Counter
	deliveredC *metrics.Counter
	droppedC   *metrics.Counter
	markersC   *metrics.Counter
	hitsC      *metrics.Counter
	evictionsC *metrics.Counter
	wakeupsC   *metrics.Counter
	queriesC   *metrics.Counter
}

// New creates an engine.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	var ttl int64
	if cfg.WindowTTL > 0 {
		ttl = cfg.WindowTTL.Microseconds()
	}
	e := &Engine{
		cfg:   cfg,
		cache: newCache(cfg.Shards, cfg.WindowBytes, ttl),
		fr:    newFreq(cfg.SketchWidth, cfg.SketchDepth, cfg.TopK),
	}
	e.registerMetrics(cfg.Metrics)
	return e
}

func (e *Engine) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e.publishedC = reg.Counter(metrics.Desc{Name: "brisk_sub_published_total",
		Help: "sorted records published into the subscription hot window", Unit: "records"})
	e.deliveredC = reg.Counter(metrics.Desc{Name: "brisk_sub_delivered_total",
		Help: "records delivered to streaming subscribers", Unit: "records"})
	e.droppedC = reg.Counter(metrics.Desc{Name: "brisk_sub_dropped_total",
		Help: "records a lagging subscriber missed, covered by read-side loss markers", Unit: "records"})
	e.markersC = reg.Counter(metrics.Desc{Name: "brisk_sub_loss_markers_total",
		Help: "read-side loss markers synthesized for overrun subscriber cursors", Unit: "markers"})
	e.hitsC = reg.Counter(metrics.Desc{Name: "brisk_sub_cache_hits_total",
		Help: "records served to readers out of the hot-window cache (live tails, catch-up and queries)", Unit: "records"})
	e.evictionsC = reg.Counter(metrics.Desc{Name: "brisk_sub_cache_evictions_total",
		Help: "hot-window entries evicted by the byte budget or TTL", Unit: "records"})
	e.wakeupsC = reg.Counter(metrics.Desc{Name: "brisk_sub_wakeups_total",
		Help: "subscriber wake-ups issued at sink flushes (mask-suppressed flushes send none)", Unit: "wakeups"})
	e.queriesC = reg.Counter(metrics.Desc{Name: "brisk_sub_queries_total",
		Help: "bounded /query reads served from the hot window", Unit: "queries"})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_subscribers",
		Help: "streaming subscriptions currently attached"},
		func() float64 { return float64(e.subsN.Load()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_cache_entries",
		Help: "records currently retained in the hot window", Unit: "records"},
		func() float64 { n, _, _ := e.cache.stats(); return float64(n) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_cache_bytes",
		Help: "encoded bytes currently retained in the hot window", Unit: "bytes"},
		func() float64 { _, b, _ := e.cache.stats(); return float64(b) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_queue_depth",
		Help: "deepest subscriber backlog (hot-window entries published but not yet read)", Unit: "records"},
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			var max int64
			for _, s := range e.subs {
				if l := s.lag.Load(); l > max {
					max = l
				}
			}
			return float64(max)
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_sketch_width",
		Help: "count-min sketch width (counters per row)"},
		func() float64 { return float64(e.cfg.SketchWidth) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_sub_sketch_depth",
		Help: "count-min sketch depth (hash rows)"},
		func() float64 { return float64(e.cfg.SketchDepth) })
}

// Publish appends one sink-accepted record to the hot window and the
// frequency sketch. It is the ism.Config.Tap hot path: called on the
// merger goroutine for every emitted record with the node-prefixed
// encoding the memory-buffer sink produced (borrowed — copied here) and
// the flush's manager-clock instant. It never blocks on subscribers and
// allocates nothing in steady state.
func (e *Engine) Publish(rec *record.Record, encoded []byte, now int64) {
	seq := e.pubSeq
	e.pubSeq++
	sh := uint32(rec.Node) & e.cache.mask
	evicted := e.cache.shards[sh].put(e.cache, seq, rec.Node, rec.Event, rec.TS, rec.HasTS, now, encoded)
	if evicted > 0 {
		e.evictionsC.Add(uint64(evicted))
	}
	e.fr.observe(rec.Node, rec.Event)
	e.publishedC.Inc()
	e.dirtyShards |= 1 << sh
	e.dirtyEvents[rec.Event>>6] |= 1 << (rec.Event & 63)
	e.dirty = true
}

// EndFlush wakes the subscribers whose filters can match something in
// the records published since the last flush. Called once per sink
// flush on the merger goroutine, so fan-out cost is per flush, not per
// record — and the shard/event masks suppress wake-ups entirely for
// subscribers that cannot match, which is what keeps thousands of idle
// subscribers nearly free on the ingest path.
func (e *Engine) EndFlush() {
	if !e.dirty {
		return
	}
	shards, events := e.dirtyShards, e.dirtyEvents
	e.dirtyShards, e.dirtyEvents, e.dirty = 0, [4]uint64{}, false
	e.mu.RLock()
	for _, s := range e.subs {
		if s.mask&shards == 0 || !s.f.eventOverlap(&events) {
			continue
		}
		select {
		case s.wake <- struct{}{}:
			e.wakeupsC.Inc()
		default:
		}
	}
	e.mu.RUnlock()
}

// ErrClosed is returned by Subscribe on a closed engine.
var ErrClosed = errors.New("subscribe: engine closed")

// Subscription is one attached streaming reader. Read with Next from a
// single goroutine; stop with Close.
type Subscription struct {
	e    *Engine
	f    *Filter
	mask uint64
	wake chan struct{}
	done chan struct{}
	once sync.Once

	cursors []uint64 // per shard: next logical index to read
	shards  []int    // shard indices the filter can reach

	lag       atomic.Int64 // entries published but not yet read, last collect
	delivered uint64       // reader-goroutine-owned totals
	dropped   uint64

	loadBuf []loaded
	arena   []byte
	events  []Event
	dec     record.Record
}

// Subscribe attaches a streaming subscription. With fromOldest the
// cursor starts at the oldest retained entry of each shard (catch-up
// replay from the hot window); otherwise it starts at the head and sees
// only records published after the call.
func (e *Engine) Subscribe(f *Filter, fromOldest bool) (*Subscription, error) {
	if f == nil {
		f = &Filter{tsMin: -1 << 63, tsMax: 1<<63 - 1}
	}
	s := &Subscription{
		e:       e,
		f:       f,
		mask:    f.shardMask(len(e.cache.shards)),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		cursors: make([]uint64, len(e.cache.shards)),
	}
	for i := range e.cache.shards {
		if s.mask&(1<<i) == 0 {
			continue
		}
		s.shards = append(s.shards, i)
		tail, head := e.cache.shards[i].bounds()
		if fromOldest {
			s.cursors[i] = tail
		} else {
			s.cursors[i] = head
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.subs = append(e.subs, s)
	e.subsN.Store(int64(len(e.subs)))
	return s, nil
}

// Close detaches the subscription. Next drains what the reader already
// reached, then reports io.EOF.
func (s *Subscription) Close() {
	s.once.Do(func() {
		e := s.e
		e.mu.Lock()
		for i, other := range e.subs {
			if other == s {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				break
			}
		}
		e.subsN.Store(int64(len(e.subs)))
		e.mu.Unlock()
		close(s.done)
	})
}

// Stats reports the subscription's delivery totals. Call from the
// reader goroutine (the totals are reader-owned).
func (s *Subscription) Stats() (delivered, dropped uint64) {
	return s.delivered, s.dropped
}

// Next blocks until the subscription has events, the context ends, or
// the subscription (or engine) is closed. The returned slice is reused
// by the next call; events hold private Fields storage and may be
// retained. After Close, Next drains remaining reachable events and
// then returns io.EOF — the clean end-of-stream.
func (s *Subscription) Next(ctx context.Context) ([]Event, error) {
	for {
		evs, progressed := s.collect()
		if len(evs) > 0 {
			return evs, nil
		}
		if progressed {
			// Scanned entries that all filtered out: more may remain
			// past the batch bound, so poll again before blocking.
			continue
		}
		select {
		case <-s.wake:
		case <-s.done:
			if evs, _ := s.collect(); len(evs) > 0 {
				return evs, nil
			}
			return nil, io.EOF
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// collect performs one batched read pass over the subscription's shards:
// copy out up to BatchRecords matching entries per shard (metadata
// pre-filtered under the shard lock), synthesize loss markers for
// overrun cursors, decode and field-filter outside the locks, and merge
// to global emission order. progressed reports whether any cursor moved.
func (s *Subscription) collect() ([]Event, bool) {
	e := s.e
	s.events = s.events[:0]
	s.arena = s.arena[:0]
	progressed := false
	var lag int64
	for _, i := range s.shards {
		cursor := s.cursors[i]
		s.loadBuf = s.loadBuf[:0]
		loadedE, arena, scanned, gap, gapTS, tail, head :=
			e.cache.shards[i].load(s.f, cursor, e.cfg.BatchRecords, s.loadBuf, s.arena)
		s.arena = arena
		if gap > 0 {
			cursor = tail
			s.dropped += gap
			e.droppedC.Add(gap)
			e.markersC.Inc()
			var markerSeq uint64
			if len(loadedE) > 0 {
				markerSeq = loadedE[0].seq
			}
			m := Event{Seq: markerSeq, Shard: i}
			m.Record = record.NewLossMarker(gap, 0, gapTS)
			s.events = append(s.events, m)
			progressed = true
		}
		if scanned > 0 {
			progressed = true
		}
		cursor += scanned
		s.cursors[i] = cursor
		lag += int64(head - cursor)
		for j := range loadedE {
			l := &loadedE[j]
			buf := s.arena[l.off:l.end]
			if _, err := record.DecodeInto(&s.dec, buf[4:]); err != nil {
				continue // cannot happen: the cache stores what the sink encoded
			}
			s.dec.Node = l.node
			if s.f.NeedsFields() && !s.f.MatchFields(&s.dec) {
				continue
			}
			ev := Event{Seq: l.seq, Shard: i, Record: s.dec}
			ev.Record.Detach()
			s.events = append(s.events, ev)
		}
		s.loadBuf = loadedE[:0]
	}
	s.lag.Store(lag)
	if len(s.events) > 0 {
		sortEvents(s.events)
		n := uint64(0)
		for i := range s.events {
			if !record.IsLossMarker(&s.events[i].Record) {
				n++
			}
		}
		s.delivered += n
		e.deliveredC.Add(n)
		e.hitsC.Add(n)
	}
	return s.events, progressed
}

// sortEvents orders a collected batch by global emission sequence, loss
// markers first among equals (a marker covers records published before
// the record carrying the same sequence). Insertion sort: batches are
// small and almost sorted (each shard contributes an ascending run).
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && eventLess(&evs[j], &evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func eventLess(a, b *Event) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return record.IsLossMarker(&a.Record) && !record.IsLossMarker(&b.Record)
}

// Query reads a bounded window from the hot cache without subscribing:
// up to limit matching records, newest-last (ascending emission order).
// The scan is bounded by the cache retention itself — the hot window is
// the query's universe; older data is not reachable from this engine.
func (e *Engine) Query(f *Filter, limit int) []Event {
	if f == nil {
		f = &Filter{tsMin: -1 << 63, tsMax: 1<<63 - 1}
	}
	if limit <= 0 {
		limit = 1000
	}
	e.queriesC.Inc()
	var out []Event
	var arena []byte
	var dec record.Record
	mask := f.shardMask(len(e.cache.shards))
	for i, sh := range e.cache.shards {
		if mask&(1<<i) == 0 {
			continue
		}
		cursor, _ := sh.bounds()
		for {
			var loadedE []loaded
			arena = arena[:0]
			loadedE, arena2, scanned, _, _, _, head := sh.load(f, cursor, e.cfg.BatchRecords, loadedE, arena)
			arena = arena2
			for j := range loadedE {
				l := &loadedE[j]
				buf := arena[l.off:l.end]
				if _, err := record.DecodeInto(&dec, buf[4:]); err != nil {
					continue
				}
				dec.Node = l.node
				if f.NeedsFields() && !f.MatchFields(&dec) {
					continue
				}
				ev := Event{Seq: l.seq, Shard: i, Record: dec}
				ev.Record.Detach()
				out = append(out, ev)
			}
			cursor += scanned
			if scanned == 0 || cursor >= head {
				break
			}
		}
	}
	sortEvents(out)
	if len(out) > limit {
		out = out[len(out)-limit:] // keep the newest
	}
	e.hitsC.Add(uint64(len(out)))
	return out
}

// TopSources returns the estimated K noisiest sources (node ids) seen
// by the count-min sketch since start, heaviest first.
func (e *Engine) TopSources(k int) []TopEntry { return e.fr.topSources(k) }

// TopEvents returns the estimated K noisiest event classes.
func (e *Engine) TopEvents(k int) []TopEntry { return e.fr.topEvents(k) }

// Close detaches every subscription (each drains what it reached, then
// sees io.EOF) and refuses new ones. Safe to call more than once.
// Publish must not be called after Close — the manager guarantees that
// by closing its pipeline first.
func (e *Engine) Close() {
	e.mu.Lock()
	subs := e.subs
	e.subs = nil
	e.closed = true
	e.subsN.Store(0)
	e.mu.Unlock()
	for _, s := range subs {
		s.once.Do(func() { close(s.done) })
	}
}
