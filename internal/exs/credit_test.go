package exs

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/wire"
)

// creditISM is a fake manager that grants a credit window in its
// HELLO_ACK and acknowledges batches only when told to, so tests can
// observe the sensor honoring (and stalling on) the window.
type creditISM struct {
	ln     net.Listener
	window uint32 // HELLO_ACK grant
	acking atomic.Bool
	mu     sync.Mutex
	wc     *wire.Conn
	maxSeq uint64
	recs   uint64 // data records received (batch counts summed)
	bodies [][]byte
	wg     sync.WaitGroup
}

func newCreditISM(t *testing.T, window uint32) *creditISM {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &creditISM{ln: ln, window: window}
	f.wg.Add(1)
	go f.acceptLoop()
	t.Cleanup(func() {
		f.ln.Close()
		f.mu.Lock()
		if f.wc != nil {
			f.wc = nil
		}
		f.mu.Unlock()
		f.wg.Wait()
	})
	return f
}

func (f *creditISM) addr() string { return f.ln.Addr().String() }

func (f *creditISM) acceptLoop() {
	defer f.wg.Done()
	for {
		raw, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer raw.Close()
			wc := wire.NewConn(raw)
			if msg, err := wc.Recv(); err != nil {
				return
			} else if _, ok := msg.(*wire.Hello); !ok {
				return
			}
			if wc.Send(&wire.HelloAck{Node: 1, Window: f.window}) != nil {
				return
			}
			f.mu.Lock()
			f.wc = wc
			f.mu.Unlock()
			for {
				msg, err := wc.Recv()
				if err != nil {
					return
				}
				b, ok := msg.(*wire.DataBatch)
				if !ok {
					continue
				}
				f.mu.Lock()
				f.recs += uint64(b.Count)
				if b.Seq > f.maxSeq {
					f.maxSeq = b.Seq
				}
				f.bodies = append(f.bodies, append([]byte(nil), b.Payload...))
				f.mu.Unlock()
				if f.acking.Load() {
					if wc.Send(&wire.DataAck{Seq: b.Seq}) != nil {
						return
					}
				}
			}
		}()
	}
}

func (f *creditISM) received() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recs
}

// releaseAll turns on per-batch acking (Window 0 = flow control off) and
// acknowledges everything received so far.
func (f *creditISM) releaseAll() {
	f.acking.Store(true)
	f.mu.Lock()
	wc, seq := f.wc, f.maxSeq
	f.mu.Unlock()
	if wc != nil {
		wc.Send(&wire.DataAck{Seq: seq})
	}
}

// markerTotals decodes every received payload and sums loss-marker
// coverage and plain data records.
func (f *creditISM) markerTotals(t *testing.T) (data, covered uint64) {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, body := range f.bodies {
		for len(body) > 0 {
			rec, n, err := record.Decode(body)
			if err != nil {
				t.Fatalf("decode received payload: %v", err)
			}
			body = body[n:]
			if c, _, _, ok := record.LossInfo(&rec); ok {
				covered += c
			} else {
				data++
			}
		}
	}
	return data, covered
}

// TestCreditWindowStallsPump pins the sensor side of flow control: with a
// granted window of 10 and no acknowledgements coming back, the sensor
// may put at most window + one batch on the wire (the first batch is
// always sendable — a halt must leave an ack in flight to carry the next
// grant), counts a stall, and resumes the moment an ack releases credit.
func TestCreditWindowStallsPump(t *testing.T) {
	f := newCreditISM(t, 10)
	region := shm.NewRegion()
	e, err := Dial(Config{
		ManagerAddr:   f.addr(),
		Region:        region,
		BatchBytes:    64, // a handful of records per batch
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		Logf:          quietTestLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if st := e.Stats(); st.CreditWindow != 10 {
		t.Fatalf("CreditWindow after HELLO = %d, want 10", st.CreditWindow)
	}

	s := sensor.New(region, "app", sensor.Options{})
	const produced = 100
	for i := 0; i < produced; i++ {
		for !s.Notice2i(1, int32(i), 0) {
			time.Sleep(10 * time.Microsecond)
		}
	}

	waitFor(t, 10*time.Second, func() bool { return e.Stats().CreditStalls > 0 })
	// Window 10 plus at most one batch of overshoot; a 64-byte batch
	// holds only a few records, so 2× the window is a generous ceiling.
	if got := f.received(); got > 20 || got == produced {
		t.Fatalf("fake manager received %d records against a window of 10", got)
	}

	f.releaseAll()
	waitFor(t, 10*time.Second, func() bool { return f.received() == produced })
	waitFor(t, 10*time.Second, func() bool { return e.Stats().QueuedBytes == 0 })
	if st := e.Stats(); st.CreditWindow != -1 {
		t.Fatalf("CreditWindow after a zero-window ack = %d, want -1 (disabled)", st.CreditWindow)
	}
}

// TestSpillEvictionShipsLossMarker pins the sensor's loss testimony: when
// the bounded spill queue evicts batches (manager granting no credit, tiny
// SpillBytes), the records are not silently gone — once credit returns,
// the sensor ships a loss-marker record covering at least the evicted
// count, and delivered data + marker coverage accounts for everything
// produced.
func TestSpillEvictionShipsLossMarker(t *testing.T) {
	f := newCreditISM(t, 4)
	region := shm.NewRegion()
	e, err := Dial(Config{
		ManagerAddr:   f.addr(),
		Region:        region,
		BatchBytes:    128,
		SpillBytes:    1024, // a handful of batches, then eviction
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		Logf:          quietTestLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	s := sensor.New(region, "app", sensor.Options{})
	const produced = 500
	for i := 0; i < produced; i++ {
		for !s.Notice2i(1, int32(i), 0) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return e.Stats().Dropped > 0 })

	f.releaseAll()
	waitFor(t, 10*time.Second, func() bool {
		st := e.Stats()
		return st.QueuedBytes == 0 && st.LossMarkers > 0
	})
	st := e.Stats()
	if st.MarkedLost < st.Dropped {
		t.Fatalf("markers cover %d records but %d were dropped", st.MarkedLost, st.Dropped)
	}
	data, covered := f.markerTotals(t)
	if data+covered < produced {
		t.Fatalf("silent loss: produced %d, received %d data + %d marker-covered",
			produced, data, covered)
	}
	// The ship-time counter may legitimately exceed wire coverage — a
	// marker batch that was itself evicted has its coverage re-marked,
	// counting twice at the sensor but once on the wire — but the wire
	// must never carry more than the sensor accounted for.
	if covered == 0 || covered > st.MarkedLost {
		t.Fatalf("markers on the wire cover %d, sensor accounted %d", covered, st.MarkedLost)
	}
}

func quietTestLog(string, ...any) {}
