package exs

import (
	"testing"

	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// decodeTimestamps walks an encoded region and returns every record's TS.
func decodeTimestamps(t *testing.T, region []byte) []int64 {
	t.Helper()
	var out []int64
	for len(region) > 0 {
		rec, n, err := record.Decode(region)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range rec.Fields {
			if f.Type == record.TS {
				out = append(out, int64(f.Bits))
				break
			}
		}
		region = region[n:]
	}
	return out
}

func writeTS(t *testing.T, r *shm.Ring, ts int64) {
	t.Helper()
	if !r.Write(encodeRecord(t, record.New(1, record.TSVal(ts), record.I32Val(0)))) {
		t.Fatalf("ring refused record ts=%d", ts)
	}
}

// TestCollectMergesRingsByTimestamp loads two rings with disjoint,
// alternating timestamp runs — the pattern a sequential per-ring drain
// scrambles — and checks collect ships one nondecreasing stream. The
// manager's sorter preserves per-node order, so this is the only place
// intra-node order can be established.
func TestCollectMergesRingsByTimestamp(t *testing.T) {
	region := shm.NewRegion()
	r0 := region.Attach("a", 1<<14)
	r1 := region.Attach("b", 1<<14)
	// Ring 0 holds runs {0..9, 20..29, ...}, ring 1 {10..19, 30..39, ...}.
	for run := int64(0); run < 10; run++ {
		r := r0
		if run%2 == 1 {
			r = r1
		}
		for i := int64(0); i < 10; i++ {
			writeTS(t, r, run*10+i)
		}
	}
	e := &EXS{
		cfg:   Config{Region: region, BatchBytes: 1 << 16},
		clock: vclock.NewCorrected(vclock.ClockFunc(func() int64 { return 0 })),
	}
	var batch []byte
	count := 0
	if got := e.collect(&batch, &count); got != 100 {
		t.Fatalf("collect returned %d records, want 100", got)
	}
	ts := decodeTimestamps(t, batch)
	if len(ts) != 100 {
		t.Fatalf("decoded %d records, want 100", len(ts))
	}
	for i, v := range ts {
		if int64(i) != v {
			t.Fatalf("position %d holds ts %d: stream not timestamp-sorted", i, v)
		}
	}
}

// TestCollectMergeOrderAcrossBatchBoundaries shrinks the batch budget so
// the merge spans several collect passes and checks order still holds
// end to end.
func TestCollectMergeOrderAcrossBatchBoundaries(t *testing.T) {
	region := shm.NewRegion()
	r0 := region.Attach("a", 1<<14)
	r1 := region.Attach("b", 1<<14)
	for i := int64(0); i < 60; i++ {
		if i%3 == 0 {
			writeTS(t, r1, i)
		} else {
			writeTS(t, r0, i)
		}
	}
	e := &EXS{
		cfg:   Config{Region: region, BatchBytes: 64},
		clock: vclock.NewCorrected(vclock.ClockFunc(func() int64 { return 0 })),
	}
	var all []int64
	for {
		var batch []byte
		count := 0
		if e.collect(&batch, &count) == 0 {
			break
		}
		all = append(all, decodeTimestamps(t, batch)...)
	}
	if len(all) != 60 {
		t.Fatalf("collected %d records across passes, want 60", len(all))
	}
	for i, v := range all {
		if int64(i) != v {
			t.Fatalf("position %d holds ts %d: order broken across batch boundary", i, v)
		}
	}
}

// TestCollectMergeAppliesCorrection checks the merge path patches the
// clock correction exactly like the single-ring bulk path.
func TestCollectMergeAppliesCorrection(t *testing.T) {
	region := shm.NewRegion()
	r0 := region.Attach("a", 1<<12)
	r1 := region.Attach("b", 1<<12)
	writeTS(t, r0, 100)
	writeTS(t, r1, 50)
	clock := vclock.NewCorrected(vclock.ClockFunc(func() int64 { return 0 }))
	clock.Adjust(1000)
	e := &EXS{cfg: Config{Region: region, BatchBytes: 1 << 12}, clock: clock}
	var batch []byte
	count := 0
	e.collect(&batch, &count)
	ts := decodeTimestamps(t, batch)
	if len(ts) != 2 || ts[0] != 1050 || ts[1] != 1100 {
		t.Fatalf("corrected timestamps = %v, want [1050 1100]", ts)
	}
}
