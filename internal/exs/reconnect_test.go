package exs

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/wire"
)

// fakeISM is a minimal manager: it completes the HELLO exchange, records
// what it receives, and (optionally) acknowledges batches.
type fakeISM struct {
	ln      net.Listener
	ackAll  bool
	mu      sync.Mutex
	conns   []net.Conn
	hellos  []wire.Hello
	batches []wire.DataBatch
	wg      sync.WaitGroup
}

func newFakeISM(t *testing.T, ackAll bool) *fakeISM {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeISM{ln: ln, ackAll: ackAll}
	f.wg.Add(1)
	go f.acceptLoop()
	t.Cleanup(func() { f.Close() })
	return f
}

func (f *fakeISM) addr() string { return f.ln.Addr().String() }

func (f *fakeISM) acceptLoop() {
	defer f.wg.Done()
	node := int32(0)
	for {
		raw, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns = append(f.conns, raw)
		f.mu.Unlock()
		node++
		f.wg.Add(1)
		go f.serve(raw, node)
	}
}

func (f *fakeISM) serve(raw net.Conn, node int32) {
	defer f.wg.Done()
	wc := wire.NewConn(raw)
	msg, err := wc.Recv()
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return
	}
	f.mu.Lock()
	f.hellos = append(f.hellos, *hello)
	f.mu.Unlock()
	if wc.Send(&wire.HelloAck{Node: node}) != nil {
		return
	}
	for {
		msg, err := wc.Recv()
		if err != nil {
			return
		}
		if b, ok := msg.(*wire.DataBatch); ok {
			f.mu.Lock()
			f.batches = append(f.batches, wire.DataBatch{Seq: b.Seq, Count: b.Count})
			f.mu.Unlock()
			if f.ackAll {
				if wc.Send(&wire.DataAck{Seq: b.Seq}) != nil {
					return
				}
			}
		}
	}
}

// Close severs everything: listener and all accepted connections.
func (f *fakeISM) Close() {
	f.ln.Close()
	f.mu.Lock()
	for _, c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

func fixedRand(v float64) func() float64 { return func() float64 { return v } }

// TestBackoffDelaySchedule verifies the exponential schedule and its cap
// with jitter disabled.
func TestBackoffDelaySchedule(t *testing.T) {
	const base = 10 * time.Millisecond
	const max = 80 * time.Millisecond
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		got := backoffDelay(attempt, base, max, 0, fixedRand(0))
		if got != w*time.Millisecond {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
}

// TestBackoffDelayJitterBounds verifies the ±jitter fraction holds at the
// extremes of the random source and in between.
func TestBackoffDelayJitterBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	const jitter = 0.2
	cases := []struct {
		rnd  float64
		want time.Duration
	}{
		{0, 80 * time.Millisecond},    // 1 + 0.2*(-1)
		{0.5, 100 * time.Millisecond}, // 1 + 0.2*0
		{1, 120 * time.Millisecond},   // 1 + 0.2*(+1)
	}
	for _, c := range cases {
		got := backoffDelay(0, base, time.Second, jitter, fixedRand(c.rnd))
		if got != c.want {
			t.Errorf("rnd=%v: delay = %v, want %v", c.rnd, got, c.want)
		}
	}
	// Any rnd value must land inside the band.
	for _, rnd := range []float64{0.1, 0.25, 0.33, 0.7, 0.99} {
		got := backoffDelay(3, base, 10*time.Second, jitter, fixedRand(rnd))
		lo := time.Duration(float64(8*base) * (1 - jitter))
		hi := time.Duration(float64(8*base) * (1 + jitter))
		if got < lo || got > hi {
			t.Errorf("rnd=%v: delay %v outside [%v, %v]", rnd, got, lo, hi)
		}
	}
}

// TestBackoffDelayFloor verifies sub-millisecond results are clamped, so
// a zero base cannot spin-dial.
func TestBackoffDelayFloor(t *testing.T) {
	if got := backoffDelay(0, 1, time.Second, 0, fixedRand(0)); got < time.Millisecond {
		t.Fatalf("delay = %v, want >= 1ms", got)
	}
}

// TestEnqueueDropOldestAccounting exercises the spill bound directly: the
// queue keeps the newest batches, evicts from the front, and counts every
// dropped record.
func TestEnqueueDropOldestAccounting(t *testing.T) {
	e := &EXS{cfg: Config{SpillBytes: 100}}
	e.registerMetrics(nil)
	e.state.Store(stateReconnecting)

	payload := make([]byte, 40)
	for i := 0; i < 5; i++ { // 200 bytes total against a 100-byte budget
		e.enqueue(payload, 3)
	}
	st := struct {
		dropped uint64
		spilled uint64
	}{e.dropped.Value(), e.spilled.Value()}
	e.qMu.Lock()
	n := len(e.queue)
	bytes := e.qBytes
	firstSeq := e.queue[0].seq
	lastSeq := e.queue[n-1].seq
	e.qMu.Unlock()

	if bytes > 100 {
		t.Fatalf("queue holds %d bytes, budget 100", bytes)
	}
	if n != 2 || firstSeq != 4 || lastSeq != 5 {
		t.Fatalf("queue = %d entries, seqs [%d..%d]; want the 2 newest (4..5)", n, firstSeq, lastSeq)
	}
	if st.dropped != 9 { // 3 evicted batches × 3 records
		t.Fatalf("Dropped = %d, want 9", st.dropped)
	}
	if st.spilled != 15 { // all 5 batches enqueued while offline
		t.Fatalf("Spilled = %d, want 15", st.spilled)
	}
}

// TestEnqueueKeepsOversizedBatch verifies a single batch larger than the
// whole budget is still retained (the bound drops oldest, never newest).
func TestEnqueueKeepsOversizedBatch(t *testing.T) {
	e := &EXS{cfg: Config{SpillBytes: 10}}
	e.registerMetrics(nil)
	e.state.Store(stateReconnecting)
	e.enqueue(make([]byte, 50), 2)
	e.qMu.Lock()
	defer e.qMu.Unlock()
	if len(e.queue) != 1 || e.dropped.Value() != 0 {
		t.Fatalf("oversized batch evicted: queue=%d dropped=%d", len(e.queue), e.dropped.Value())
	}
}

// TestAckToReleasesPrefix verifies cumulative acknowledgement frees
// exactly the acked prefix.
func TestAckToReleasesPrefix(t *testing.T) {
	e := &EXS{cfg: Config{SpillBytes: 1 << 20}}
	e.registerMetrics(nil)
	for i := 0; i < 4; i++ {
		e.enqueue(make([]byte, 8), 1)
	}
	e.ackTo(2)
	e.qMu.Lock()
	defer e.qMu.Unlock()
	if len(e.queue) != 2 || e.queue[0].seq != 3 {
		t.Fatalf("after ackTo(2): %d entries, head seq %d", len(e.queue), e.queue[0].seq)
	}
	if e.qBytes != 16 {
		t.Fatalf("qBytes = %d, want 16", e.qBytes)
	}
}

// dialFake connects an EXS to a fake manager with fast test timings.
func dialFake(t *testing.T, f *fakeISM, mutate func(*Config)) (*EXS, *shm.Region) {
	t.Helper()
	region := shm.NewRegion()
	cfg := Config{
		ManagerAddr:   f.addr(),
		NodeName:      "t",
		Region:        region,
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
		Logf:          func(string, ...any) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, region
}

// TestRetryCapDegradesToOffline kills the manager for good and verifies
// the sensor runs its capped schedule, gives up, counts the stranded
// queue as dropped, and keeps draining (LostOffline grows, ring empties).
func TestRetryCapDegradesToOffline(t *testing.T) {
	f := newFakeISM(t, false)
	e, region := dialFake(t, f, func(c *Config) { c.MaxReconnectAttempts = 2 })
	s := sensor.New(region, "app", sensor.Options{})

	s.Notice2i(1, 1, 0)
	e.Flush()
	waitFor(t, 5*time.Second, func() bool { return e.Stats().Sent == 1 })

	f.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.Notice2i(1, 2, 0)
		e.Flush()
		st := e.Stats()
		if !st.Online && st.LostOffline > 0 {
			// The unacked in-flight record was stranded in the queue and
			// counted when the sensor gave up.
			if st.Dropped == 0 {
				t.Fatalf("stranded queue not counted: %+v", st)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sensor never degraded to offline: %+v", e.Stats())
}

// TestReconnectResumesAndRetransmits bounces every connection after the
// first batch and verifies the sensor reconnects (new HELLO carries the
// same session id with Resume set) and replays the unacked batch.
func TestReconnectResumesAndRetransmits(t *testing.T) {
	f := newFakeISM(t, false) // never acks: everything stays queued
	e, region := dialFake(t, f, nil)
	s := sensor.New(region, "app", sensor.Options{})

	s.Notice2i(1, 1, 0)
	e.Flush()
	waitFor(t, 5*time.Second, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.batches) >= 1
	})

	// Kill the live connection only; the listener stays up.
	f.mu.Lock()
	for _, c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()

	waitFor(t, 5*time.Second, func() bool {
		st := e.Stats()
		return st.Online && st.Reconnects >= 1
	})
	waitFor(t, 5*time.Second, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.batches) >= 2 // the unacked batch was replayed
	})
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.hellos) < 2 {
		t.Fatalf("hellos = %d, want 2", len(f.hellos))
	}
	h0, h1 := f.hellos[0], f.hellos[1]
	if h0.Session == 0 || h0.Session != h1.Session {
		t.Fatalf("session ids: first %d, second %d — must match and be nonzero", h0.Session, h1.Session)
	}
	if h0.Resume || !h1.Resume {
		t.Fatalf("resume flags: first %v, second %v", h0.Resume, h1.Resume)
	}
	if f.batches[0].Seq != f.batches[len(f.batches)-1].Seq {
		t.Fatalf("replayed batch changed seq: %d vs %d", f.batches[0].Seq, f.batches[len(f.batches)-1].Seq)
	}
	if e.Stats().Retransmits == 0 {
		t.Fatal("Retransmits not counted")
	}
	if e.Stats().Sent != 1 {
		t.Fatalf("Sent = %d after replay, want 1 (no double count)", e.Stats().Sent)
	}
}

// TestCloseDuringReconnectDoesNotBlock is the regression test for Close
// racing an active reconnect loop: with the manager gone and an
// effectively unbounded retry schedule, Close must still return promptly
// and leave no goroutine wedged in a backoff sleep or dial.
func TestCloseDuringReconnectDoesNotBlock(t *testing.T) {
	f := newFakeISM(t, false)
	e, region := dialFake(t, f, func(c *Config) {
		c.MaxReconnectAttempts = -1 // retry forever
		c.ReconnectBase = 10 * time.Second
		c.ReconnectMax = 10 * time.Second
	})
	s := sensor.New(region, "app", sensor.Options{})
	s.Notice2i(1, 1, 0)
	e.Flush()
	waitFor(t, 5*time.Second, func() bool { return e.Stats().Sent == 1 })

	f.Close()
	waitFor(t, 5*time.Second, func() bool { return !e.Stats().Online })

	closed := make(chan error, 1)
	go func() { closed <- e.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on an active reconnect loop")
	}
	// The stranded queue is accounted for, not leaked.
	if st := e.Stats(); st.Dropped == 0 {
		t.Fatalf("unacked records not counted at close: %+v", st)
	}
}

// TestDialContextCancelAbortsBackoff verifies canceling the lifetime
// context mid-outage stops reconnection permanently.
func TestDialContextCancelAbortsBackoff(t *testing.T) {
	f := newFakeISM(t, false)
	region := shm.NewRegion()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e, err := DialContext(ctx, Config{
		ManagerAddr:          f.addr(),
		Region:               region,
		FlushInterval:        time.Millisecond,
		PollInterval:         200 * time.Microsecond,
		ReconnectBase:        time.Hour, // would block Close without ctx
		ReconnectMax:         time.Hour,
		MaxReconnectAttempts: -1,
		Logf:                 func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	f.Close()
	waitFor(t, 5*time.Second, func() bool { return !e.Stats().Online })
	cancel()
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked despite canceled context")
	}
}

// TestReplayAbortRetransmitsWrittenPrefix is the regression test for the
// silent-loss hole where a redial's replay pump dies mid-pass: batches it
// had already written into the doomed socket stayed flagged sent, the
// next replay skipped them, and the manager's cumulative ack for a later
// sequence (gaps are legal — eviction creates them) released them without
// delivery. The fake manager here never acks on the first connection,
// accepts the resume on the second and immediately resets it mid-replay,
// then behaves on the third — which must receive every sequence.
func TestReplayAbortRetransmitsWrittenPrefix(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Enough queued bytes that the second connection's replay overflows
	// the loopback socket buffers (the kernel autotunes the send buffer
	// up to ~4 MiB) and blocks mid-pass: ~330 batches of ~16 KiB
	// (batchRecords records of 24 bytes each) ≈ 5.4 MiB.
	const conn1Batches = 330
	const batchRecords = 680

	var mu sync.Mutex
	seqs := make(map[int][]uint64) // connection ordinal → batch seqs received
	conn1Done := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 1; ; n++ {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wc := wire.NewConn(raw)
			msg, err := wc.Recv()
			if err != nil {
				raw.Close()
				continue
			}
			hello, ok := msg.(*wire.Hello)
			if !ok {
				raw.Close()
				continue
			}
			ack := &wire.HelloAck{Node: 1, Resumed: hello.Resume}
			if wc.Send(ack) != nil {
				raw.Close()
				continue
			}
			if n == 2 {
				// Read nothing: the replay pump fills the socket buffers,
				// marks those batches sent, and blocks. Then reset the
				// link so the blocked write fails partway through the
				// replay pass.
				time.Sleep(50 * time.Millisecond)
				if tc, ok := raw.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				raw.Close()
				continue
			}
			conn := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer raw.Close()
				for {
					msg, err := wc.Recv()
					if err != nil {
						return
					}
					b, ok := msg.(*wire.DataBatch)
					if !ok {
						continue
					}
					mu.Lock()
					seqs[conn] = append(seqs[conn], b.Seq)
					got := len(seqs[conn])
					mu.Unlock()
					if conn == 1 {
						// Never ack; once the queue holds well over a
						// socket buffer's worth of unacked batches, cut.
						if got == conn1Batches {
							if tc, ok := raw.(*net.TCPConn); ok {
								tc.SetLinger(0)
							}
							raw.Close()
							close(conn1Done)
							return
						}
						continue
					}
					if wc.Send(&wire.DataAck{Seq: b.Seq}) != nil {
						return
					}
				}
			}()
			if conn >= 3 {
				return // accept loop done; connection 3 is the keeper
			}
		}
	}()

	region := shm.NewRegion()
	cfg := Config{
		ManagerAddr:   ln.Addr().String(),
		NodeName:      "t",
		Region:        region,
		FlushInterval: time.Millisecond,
		PollInterval:  200 * time.Microsecond,
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
		SpillBytes:    16 << 20, // hold the whole backlog; no eviction
		Logf:          func(string, ...any) {},
	}
	e, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := sensor.New(region, "app", sensor.Options{})

	// Ship the backlog one batch at a time (paced on the fake's receive
	// count so the ring never overruns); the fake cuts after the last.
	for i := 0; i < conn1Batches; i++ {
		for j := 0; j < batchRecords; j++ {
			s.Notice2i(1, int32(i), int32(j))
		}
		e.Flush()
		waitFor(t, 5*time.Second, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(seqs[1]) >= i+1
		})
	}
	<-conn1Done

	// The sensor must reconnect (twice: the mid-replay reset, then the
	// good connection) and drain its whole queue.
	waitFor(t, 10*time.Second, func() bool {
		e.qMu.Lock()
		empty := len(e.queue) == 0
		e.qMu.Unlock()
		return e.Stats().Online && empty
	})

	st := e.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", st.Dropped)
	}
	mu.Lock()
	defer mu.Unlock()
	var maxSeq uint64
	for _, batch := range seqs {
		for _, q := range batch {
			if q > maxSeq {
				maxSeq = q
			}
		}
	}
	got := make(map[uint64]bool, len(seqs[3]))
	for _, q := range seqs[3] {
		got[q] = true
	}
	for q := uint64(1); q <= maxSeq; q++ {
		if !got[q] {
			t.Errorf("seq %d never delivered on the surviving connection (conn3 saw %v)", q, seqs[3])
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestReconnectRandInjectable verifies Config.ReconnectRand is the
// source the live reconnect schedule draws from: with a deterministic
// injected source, the sensor's per-attempt delays are an exact,
// reproducible function of the attempt number, and a real outage
// consumes draws from that source (not a hidden wall-clock-seeded RNG).
func TestReconnectRandInjectable(t *testing.T) {
	f := newFakeISM(t, true)
	var calls atomic.Int64
	const base, max = 10 * time.Millisecond, 80 * time.Millisecond
	e, _ := dialFake(t, f, func(c *Config) {
		c.ReconnectBase = base
		c.ReconnectMax = max
		c.ReconnectJitter = 0.2
		c.MaxReconnectAttempts = 2
		// rnd=0.5 makes the jitter factor exactly 1, so the schedule is
		// the pure exponential — byte-exact assertions below.
		c.ReconnectRand = func() float64 { calls.Add(1); return 0.5 }
	})
	want := []time.Duration{base, 2 * base, 4 * base, max, max}
	for attempt, w := range want {
		if got := e.nextReconnectDelay(attempt); got != w {
			t.Errorf("attempt %d: delay = %v, want %v (injected source must pin the schedule)", attempt, got, w)
		}
	}
	probes := calls.Load() // draws consumed by the assertions above

	// A real outage must draw its backoff jitter from the same source.
	f.Close()
	waitFor(t, 10*time.Second, func() bool { return e.state.Load() == stateDead })
	if calls.Load() <= probes {
		t.Fatal("outage reconnect schedule did not draw from the injected jitter source")
	}
}
