package exs

import (
	"testing"

	"brisk/internal/record"
)

func encodeRecord(t *testing.T, r record.Record) []byte {
	t.Helper()
	buf, err := r.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestPatchRegionCorrectsEveryTimestamp(t *testing.T) {
	var region []byte
	for i := int64(0); i < 5; i++ {
		region = append(region, encodeRecord(t, record.New(1,
			record.TSVal(1000+i), record.I32Val(int32(i))))...)
	}
	patchRegion(region, 250)
	rest := region
	for i := int64(0); i < 5; i++ {
		rec, n, err := record.Decode(rest)
		if err != nil {
			t.Fatal(err)
		}
		if rec.TS != 1250+i {
			t.Fatalf("record %d ts = %d, want %d", i, rec.TS, 1250+i)
		}
		rest = rest[n:]
	}
}

func TestPatchRegionSkipsTimestamplessRecords(t *testing.T) {
	region := encodeRecord(t, record.New(1, record.I32Val(7)))
	region = append(region, encodeRecord(t, record.New(2, record.TSVal(100)))...)
	patchRegion(region, 50)
	r1, n, err := record.Decode(region)
	if err != nil || r1.HasTS {
		t.Fatalf("r1 = %+v, %v", r1, err)
	}
	r2, _, err := record.Decode(region[n:])
	if err != nil || r2.TS != 150 {
		t.Fatalf("r2 = %+v, %v", r2, err)
	}
}

func TestPatchRegionNegativeCorrection(t *testing.T) {
	region := encodeRecord(t, record.New(1, record.TSVal(1000)))
	patchRegion(region, -400)
	r, _, err := record.Decode(region)
	if err != nil || r.TS != 600 {
		t.Fatalf("r = %+v, %v", r, err)
	}
}

func TestPatchRegionTruncatedTailIgnored(t *testing.T) {
	region := encodeRecord(t, record.New(1, record.TSVal(10)))
	full := len(region)
	region = append(region, encodeRecord(t, record.New(1, record.TSVal(20)))[:5]...)
	// Must not panic; the intact prefix is still patched.
	patchRegion(region, 5)
	r, _, err := record.Decode(region[:full])
	if err != nil || r.TS != 15 {
		t.Fatalf("r = %+v, %v", r, err)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Fatal("Dial without region must fail")
	}
	// Unreachable manager: dial error surfaces.
	if _, err := Dial(Config{Region: nil, ManagerAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("expected error")
	}
}
