// Package exs implements the BRISK external sensor: the per-node process
// that completes a local instrumentation server (LIS).
//
// The external sensor runs beside the instrumented applications (in the
// paper, as a separate process that "may be assigned a lower priority"),
// reads the instrumentation data the internal sensors wrote into the
// node's shared-memory rings, adds the clock-correction value it maintains
// to each embedded timestamp, packages records in the XDR transfer
// protocol, and ships them to the manager over a TCP stream socket.
//
// Two knobs trade throughput against latency, BRISK's central tension:
// BatchBytes (bigger batches amortize transfer cost) and FlushInterval
// (how long a partial batch may wait — the source of the paper's
// worst-case latency bound from waiting select calls).
//
// The external sensor is also the clock-synchronization slave: it answers
// the manager's probes with its corrected clock and applies adjustment
// messages to the correction value.
package exs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/wire"
)

// Config configures an external sensor.
type Config struct {
	// ManagerAddr is the ISM's TCP address.
	ManagerAddr string
	// NodeName identifies this node in the HELLO exchange.
	NodeName string
	// Region is the node's shared-memory region holding sensor rings.
	Region *shm.Region
	// Clock is the node clock with its correction layer. Sensors write
	// raw timestamps from the same underlying clock; the external sensor
	// patches the correction in at ship time. nil means a fresh
	// Corrected over the system clock.
	Clock *vclock.Corrected
	// BatchBytes triggers a send once a batch reaches this size.
	// Default 16384.
	BatchBytes int
	// FlushInterval bounds how long a non-empty partial batch waits.
	// Default 5 ms.
	FlushInterval time.Duration
	// PollInterval is the ring-scan period while idle. Default 500 µs.
	PollInterval time.Duration
	// Logf logs diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of external-sensor counters.
type Stats struct {
	// Node is the manager-assigned node id (0 before HELLO completes).
	Node int32
	// Sent counts records shipped to the manager.
	Sent uint64
	// Batches counts data batches sent.
	Batches uint64
	// BytesOut counts wire payload bytes sent.
	BytesOut uint64
	// RingDropped counts records lost at the sensor rings (application
	// outran the drain).
	RingDropped uint64
	// Probes counts clock-synchronization probes answered.
	Probes uint64
	// Adjusts counts clock adjustments applied.
	Adjusts uint64
	// Correction is the current clock-correction value (µs).
	Correction int64
	// LostOffline counts records discarded after the manager connection
	// failed (the external sensor keeps draining so the application
	// never blocks).
	LostOffline uint64
}

// EXS is one running external sensor. Create with Dial, stop with Close.
type EXS struct {
	cfg   Config
	clock *vclock.Corrected
	logf  func(string, ...any)

	raw  net.Conn
	conn *wire.Conn
	node int32

	sent    atomic.Uint64
	batches atomic.Uint64
	probes  atomic.Uint64
	adjusts atomic.Uint64
	// dead is set when the manager connection fails; the drain loop then
	// keeps emptying the rings (so the application never blocks or leaks
	// memory) but discards the records, counting them.
	dead        atomic.Bool
	lostOffline atomic.Uint64

	done    chan struct{}
	wgDrain sync.WaitGroup
	wgCtl   sync.WaitGroup
	closed  atomic.Bool

	// flushNow lets tests and latency-sensitive callers force a send.
	flushNow chan struct{}
}

// Dial connects to the manager, performs the HELLO exchange, and starts
// the drain and control loops.
func Dial(cfg Config) (*EXS, error) {
	if cfg.Region == nil {
		return nil, errors.New("exs: Config.Region is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewCorrected(vclock.System{})
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 16384
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Microsecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	raw, err := net.Dial("tcp", cfg.ManagerAddr)
	if err != nil {
		return nil, fmt.Errorf("exs: dial manager: %w", err)
	}
	conn := wire.NewConn(raw)
	if err := conn.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: cfg.NodeName}); err != nil {
		raw.Close()
		return nil, fmt.Errorf("exs: hello: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("exs: hello ack: %w", err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		raw.Close()
		return nil, fmt.Errorf("exs: expected HELLO_ACK, got %v", msg.Type())
	}
	e := &EXS{
		cfg:      cfg,
		clock:    cfg.Clock,
		logf:     cfg.Logf,
		raw:      raw,
		conn:     conn,
		node:     ack.Node,
		done:     make(chan struct{}),
		flushNow: make(chan struct{}, 1),
	}
	e.wgDrain.Add(1)
	go e.drainLoop()
	e.wgCtl.Add(1)
	go e.controlLoop()
	return e, nil
}

// Node returns the manager-assigned node id.
func (e *EXS) Node() int32 { return e.node }

// Clock returns the node's corrected clock.
func (e *EXS) Clock() *vclock.Corrected { return e.clock }

// Flush asks the drain loop to ship any buffered records immediately.
func (e *EXS) Flush() {
	select {
	case e.flushNow <- struct{}{}:
	default:
	}
}

// drainLoop scans the sensor rings, patches timestamps with the current
// correction value, and ships batches under the batching/latency policy.
func (e *EXS) drainLoop() {
	defer e.wgDrain.Done()
	batch := make([]byte, 0, e.cfg.BatchBytes*2)
	count := 0
	var oldestAt time.Time // wall time the current partial batch started

	ship := func() {
		if count == 0 {
			return
		}
		if e.dead.Load() {
			e.lostOffline.Add(uint64(count))
			batch = batch[:0]
			count = 0
			return
		}
		msg := &wire.DataBatch{Count: uint32(count), Payload: batch}
		if err := e.conn.Send(msg); err != nil {
			if !e.closed.Load() && !e.dead.Swap(true) {
				e.logf("exs: manager unreachable, discarding records: %v", err)
			}
			e.lostOffline.Add(uint64(count))
			batch = batch[:0]
			count = 0
			return
		}
		e.sent.Add(uint64(count))
		e.batches.Add(1)
		batch = batch[:0]
		count = 0
	}

	ticker := time.NewTicker(e.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			for e.collect(&batch, &count) > 0 || count > 0 {
				ship()
			}
			return
		case <-e.flushNow:
			e.collect(&batch, &count)
			ship()
			oldestAt = time.Time{}
		case <-ticker.C:
			// Drain in batch-sized chunks until the rings empty; the
			// bound on passes keeps control-channel latency sane under
			// sustained overload.
			for pass := 0; pass < 64; pass++ {
				got := e.collect(&batch, &count)
				if count > 0 && oldestAt.IsZero() {
					oldestAt = time.Now()
				}
				if len(batch) >= e.cfg.BatchBytes {
					ship()
					oldestAt = time.Time{}
					continue
				}
				if got == 0 {
					break
				}
			}
			if count > 0 && time.Since(oldestAt) >= e.cfg.FlushInterval {
				ship()
				oldestAt = time.Time{}
			}
			if count == 0 {
				oldestAt = time.Time{}
			}
		}
	}
}

// collect drains the rings into the batch up to roughly the batch-size
// budget, correcting timestamps as it goes. It returns the number of
// records collected this pass.
func (e *EXS) collect(batch *[]byte, count *int) int {
	correction := e.clock.Correction()
	total := 0
	for _, ring := range e.cfg.Region.Rings() {
		budget := e.cfg.BatchBytes - len(*batch)
		if budget <= 0 {
			break
		}
		start := len(*batch)
		var n int
		*batch, n = ring.DrainAppend(*batch, budget)
		if n == 0 {
			continue
		}
		total += n
		*count += n
		if correction != 0 {
			patchRegion((*batch)[start:], correction)
		}
	}
	return total
}

// patchRegion adds the correction to the TS field of every record in an
// encoded region.
func patchRegion(region []byte, correction int64) {
	for len(region) > 0 {
		size, err := record.PeekSize(region)
		if err != nil || size > len(region) {
			return // malformed; leave as-is, the manager will reject it
		}
		if ts, off, ok := record.PeekTS(region[:size]); ok {
			record.PatchTS(region, off, ts+correction)
		}
		region = region[size:]
	}
}

// controlLoop services manager messages: clock probes and adjustments.
func (e *EXS) controlLoop() {
	defer e.wgCtl.Done()
	for {
		msg, err := e.conn.Recv()
		if err != nil {
			if !e.closed.Load() {
				e.logf("exs: manager connection: %v", err)
			}
			return
		}
		switch t := msg.(type) {
		case *wire.Probe:
			e.probes.Add(1)
			reply := &wire.ProbeReply{
				Seq:        t.Seq,
				MasterSend: t.MasterSend,
				SlaveTime:  e.clock.NowMicros(),
			}
			if err := e.conn.Send(reply); err != nil {
				return
			}
		case *wire.Adjust:
			e.adjusts.Add(1)
			e.clock.Adjust(t.DeltaMicros)
		case *wire.Bye:
			return
		default:
			e.logf("exs: unexpected %v from manager", msg.Type())
			return
		}
	}
}

// Stats returns a snapshot of counters.
func (e *EXS) Stats() Stats {
	_, ringDropped := e.cfg.Region.Stats()
	return Stats{
		Node:        e.node,
		Sent:        e.sent.Load(),
		Batches:     e.batches.Load(),
		BytesOut:    e.conn.BytesOut(),
		RingDropped: ringDropped,
		Probes:      e.probes.Load(),
		Adjusts:     e.adjusts.Load(),
		Correction:  e.clock.Correction(),
		LostOffline: e.lostOffline.Load(),
	}
}

// Close ships any buffered records, announces BYE, and disconnects.
func (e *EXS) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.done)
	// Let the drain loop ship its final batch before the socket goes.
	e.wgDrain.Wait()
	_ = e.conn.Send(&wire.Bye{})
	err := e.raw.Close() // unblocks the control loop's Recv
	e.wgCtl.Wait()
	return err
}
