// Package exs implements the BRISK external sensor: the per-node process
// that completes a local instrumentation server (LIS).
//
// The external sensor runs beside the instrumented applications (in the
// paper, as a separate process that "may be assigned a lower priority"),
// reads the instrumentation data the internal sensors wrote into the
// node's shared-memory rings, adds the clock-correction value it maintains
// to each embedded timestamp, packages records in the XDR transfer
// protocol, and ships them to the manager over a TCP stream socket.
//
// Two knobs trade throughput against latency, BRISK's central tension:
// BatchBytes (bigger batches amortize transfer cost) and FlushInterval
// (how long a partial batch may wait — the source of the paper's
// worst-case latency bound from waiting select calls).
//
// The external sensor is also the clock-synchronization slave: it answers
// the manager's probes with its corrected clock and applies adjustment
// messages to the correction value.
//
// # Fault tolerance
//
// The manager link is treated as lossy. Every shipped batch carries a
// per-session sequence number and is retained in a bounded in-memory
// queue until the manager acknowledges it. When the connection breaks the
// sensor keeps draining the shm rings into that queue (so the application
// never blocks) and reconnects with exponential backoff plus jitter; on
// resume the manager reports the last sequence it accepted, acknowledged
// batches are released, and the remainder replayed — the manager dedupes
// anything that was in flight, giving exactly-once delivery to the sinks.
// If the queue overflows, the oldest batches are dropped and counted
// (Stats.Dropped); if the retry cap is exhausted the sensor degrades to
// drain-and-discard (Stats.LostOffline) so the node never wedges.
package exs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/metrics"
	"brisk/internal/record"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/wire"
)

// Pipeline trace stages observed by the external sensor (see
// metrics.StageTracer): a record's age when it leaves the shared-memory
// ring, and again when its batch is written to the wire.
const (
	stageRingDrain = iota
	stageWireSend
)

// DefaultReconnectAttempts is the reconnect cap used when
// Config.MaxReconnectAttempts is zero.
const DefaultReconnectAttempts = 20

// Config configures an external sensor.
type Config struct {
	// ManagerAddr is the ISM's TCP address.
	ManagerAddr string
	// NodeName identifies this node in the HELLO exchange.
	NodeName string
	// Region is the node's shared-memory region holding sensor rings.
	Region *shm.Region
	// Clock is the node clock with its correction layer. Sensors write
	// raw timestamps from the same underlying clock; the external sensor
	// patches the correction in at ship time. nil means a fresh
	// Corrected over the system clock.
	Clock *vclock.Corrected
	// BatchBytes triggers a send once a batch reaches this size.
	// Default 16384.
	BatchBytes int
	// FlushInterval bounds how long a non-empty partial batch waits.
	// Default 5 ms.
	FlushInterval time.Duration
	// MaxFlushInterval bounds how far the sensor widens its effective
	// flush interval while the manager withholds credit (each stalled
	// flush doubles it). Larger batches shipped less often are exactly
	// what an overloaded manager wants. Default 8 × FlushInterval.
	MaxFlushInterval time.Duration
	// PollInterval is the ring-scan period while idle. Default 500 µs.
	PollInterval time.Duration
	// ReconnectBase is the first backoff delay after a lost manager
	// connection; it doubles per failed attempt. Default 50 ms.
	ReconnectBase time.Duration
	// ReconnectMax caps the exponential backoff. Default 5 s.
	ReconnectMax time.Duration
	// ReconnectJitter is the ± fraction of uniform jitter applied to
	// every backoff delay (0.2 = ±20%). Default 0.2; negative disables.
	ReconnectJitter float64
	// ReconnectRand, when non-nil, is the [0,1) source the reconnect
	// jitter is drawn from, called only on the reconnector goroutine.
	// Injectable so backoff schedules are deterministic under test; nil
	// uses a private PRNG seeded from the session id and the wall clock.
	ReconnectRand func() float64
	// MaxReconnectAttempts caps consecutive failed reconnect attempts
	// per outage before the sensor gives up and degrades to
	// drain-and-discard. 0 means DefaultReconnectAttempts; negative
	// means retry forever.
	MaxReconnectAttempts int
	// SpillBytes bounds the in-memory retransmit/spill queue holding
	// unacknowledged and offline batches. When exceeded, the oldest
	// batches are dropped and their records counted in Stats.Dropped.
	// Default 4 MiB.
	SpillBytes int
	// DialTimeout bounds one connection attempt including the HELLO
	// exchange. Default 5 s.
	DialTimeout time.Duration
	// Metrics is the registry the sensor's counters live in; nil means a
	// fresh private registry (see EXS.Metrics).
	Metrics *metrics.Registry
	// TraceSampleEvery is the pipeline-trace sampling period: every Nth
	// drained batch has one record's stage ages recorded. 0 means
	// DefaultTraceSampleEvery; negative disables tracing.
	TraceSampleEvery int
	// Logf logs diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// DefaultTraceSampleEvery is the pipeline-trace sampling period used when
// Config.TraceSampleEvery is zero.
const DefaultTraceSampleEvery = 64

// Stats is a snapshot of external-sensor counters.
type Stats struct {
	// Node is the manager-assigned node id (0 before HELLO completes).
	Node int32
	// Session is the node's resume-session identifier.
	Session uint64
	// Online reports whether the manager connection is currently up.
	Online bool
	// Sent counts records shipped to the manager (first transmission;
	// replays after a resume are not double-counted).
	Sent uint64
	// Batches counts data-batch frames written, including retransmits.
	Batches uint64
	// BytesOut counts wire payload bytes sent across all connections.
	BytesOut uint64
	// RingDropped counts records lost at the sensor rings (application
	// outran the drain).
	RingDropped uint64
	// Probes counts clock-synchronization probes answered.
	Probes uint64
	// Adjusts counts clock adjustments applied.
	Adjusts uint64
	// Correction is the current clock-correction value (µs).
	Correction int64
	// Reconnects counts successful reconnections to the manager.
	Reconnects uint64
	// Retransmits counts batches replayed after a resume.
	Retransmits uint64
	// Spilled counts records buffered while the manager was unreachable.
	Spilled uint64
	// Dropped counts records evicted from the bounded spill queue
	// (drop-oldest) or discarded with it at shutdown.
	Dropped uint64
	// QueuedBytes is the current size of the unacknowledged/spill queue.
	QueuedBytes int
	// LostOffline counts records discarded after the sensor gave up
	// reconnecting (the drain keeps running so the application never
	// blocks).
	LostOffline uint64
	// CreditWindow is the manager's latest credit grant (records in
	// flight allowed); -1 when the manager has flow control disabled.
	CreditWindow int64
	// CreditStalls counts pump passes that paused on exhausted credit.
	CreditStalls uint64
	// LossMarkers counts loss-marker records shipped to account for
	// records this sensor dropped; MarkedLost is the record total those
	// markers represent.
	LossMarkers uint64
	MarkedLost  uint64
}

// Connection states.
const (
	stateOnline int32 = iota
	stateReconnecting
	stateDead
)

// qEntry is one batch retained until the manager acknowledges it.
type qEntry struct {
	seq      uint64
	count    int
	payload  []byte
	sent     bool // written to the current connection
	everSent bool // written to some connection at least once
}

// EXS is one running external sensor. Create with Dial or DialContext,
// stop with Close.
type EXS struct {
	cfg   Config
	clock *vclock.Corrected
	logf  func(string, ...any)

	session uint64
	ctx     context.Context
	cancel  context.CancelFunc

	connMu sync.Mutex
	conn   *wire.Conn // nil while disconnected
	raw    net.Conn
	node   atomic.Int32

	state       atomic.Int32
	reconnectCh chan struct{}

	// qMu guards the retransmit queue; pump holds it across sends so
	// replayed and fresh batches stay sequence-ordered on the wire.
	qMu     sync.Mutex
	queue   []qEntry
	qBytes  int
	nextSeq uint64
	// Credit flow control (qMu): the manager's latest window grant and
	// the records currently in flight (sent, unacknowledged) against it.
	// creditOn is false until the manager grants a nonzero window — a
	// zero window on the wire means flow control is disabled.
	creditOn bool
	creditW  int64
	inflight int64
	stalled  bool // last pump paused on exhausted credit
	// Pending loss accumulator (qMu): records this sensor dropped (ring
	// overruns, spill evictions) not yet represented by a shipped
	// loss-marker record, with the covered timestamp range.
	pendingLossN     uint64
	pendingLossFirst int64
	pendingLossLast  int64
	// freeBufs recycles acked batch payloads back into enqueue, so a
	// steadily-acked stream stops allocating copies. Bounded; see
	// maxFreeBufs.
	freeBufs [][]byte

	// Counters live in the metrics registry; the Stats snapshot is a
	// typed view over them.
	reg          *metrics.Registry
	tracer       *metrics.StageTracer // nil when tracing is disabled
	sent         *metrics.Counter
	batches      *metrics.Counter
	probes       *metrics.Counter
	adjusts      *metrics.Counter
	reconnects   *metrics.Counter
	retransmits  *metrics.Counter
	spilled      *metrics.Counter
	dropped      *metrics.Counter
	lostOffline  *metrics.Counter
	creditStalls *metrics.Counter
	lossMarkers  *metrics.Counter
	markedLost   *metrics.Counter
	drainPauseH  *metrics.Histogram
	bytesOutBase atomic.Uint64 // BytesOut of finished connections

	jitterRand func() float64 // jitter source; reconnector-goroutine only

	mergeTS []int64 // per-ring head-TS scratch; drain-goroutine only

	done     chan struct{}
	wgDrain  sync.WaitGroup
	wgCtl    sync.WaitGroup // control loops + reconnector
	closed   atomic.Bool
	flushNow chan struct{}
}

// Dial connects to the manager, performs the HELLO exchange, and starts
// the drain, control and reconnect loops.
func Dial(cfg Config) (*EXS, error) {
	return DialContext(context.Background(), cfg)
}

// DialContext is Dial with a lifetime context: canceling ctx aborts any
// in-flight dial or backoff wait and permanently stops reconnection (the
// drain keeps discarding so the application never blocks); call Close to
// release the remaining resources.
func DialContext(ctx context.Context, cfg Config) (*EXS, error) {
	if cfg.Region == nil {
		return nil, errors.New("exs: Config.Region is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewCorrected(vclock.System{})
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 16384
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.MaxFlushInterval <= 0 {
		cfg.MaxFlushInterval = 8 * cfg.FlushInterval
	}
	if cfg.MaxFlushInterval < cfg.FlushInterval {
		cfg.MaxFlushInterval = cfg.FlushInterval
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Microsecond
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 50 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 5 * time.Second
	}
	if cfg.ReconnectJitter == 0 {
		cfg.ReconnectJitter = 0.2
	} else if cfg.ReconnectJitter < 0 {
		cfg.ReconnectJitter = 0
	}
	if cfg.MaxReconnectAttempts == 0 {
		cfg.MaxReconnectAttempts = DefaultReconnectAttempts
	}
	if cfg.SpillBytes <= 0 {
		cfg.SpillBytes = 4 << 20
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	e := &EXS{
		cfg:         cfg,
		clock:       cfg.Clock,
		logf:        cfg.Logf,
		session:     newSessionID(),
		reconnectCh: make(chan struct{}, 1),
		done:        make(chan struct{}),
		flushNow:    make(chan struct{}, 1),
	}
	e.registerMetrics(cfg.Metrics)
	e.ctx, e.cancel = context.WithCancel(ctx)
	e.jitterRand = cfg.ReconnectRand
	if e.jitterRand == nil {
		e.jitterRand = mrand.New(mrand.NewSource(int64(e.session) ^ time.Now().UnixNano())).Float64
	}
	raw, conn, ack, err := e.connect(false)
	if err != nil {
		e.cancel()
		return nil, err
	}
	e.raw, e.conn = raw, conn
	e.node.Store(ack.Node)
	e.applyWindow(ack.Window)
	e.wgDrain.Add(1)
	go e.drainLoop()
	e.wgCtl.Add(1)
	go e.controlLoop(conn)
	e.wgCtl.Add(1)
	go e.reconnector()
	return e, nil
}

// newSessionID returns a random non-zero session identifier.
func newSessionID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the clock; uniqueness only needs to hold per
			// manager across the retention window.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// registerMetrics creates (or adopts) the registry and binds every
// external-sensor series: live counters for the event path, func-backed
// counters and gauges over state owned elsewhere (the rings, the spill
// queue, the connection), and the pipeline stage tracer.
func (e *EXS) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e.reg = reg
	e.sent = reg.Counter(metrics.Desc{Name: "brisk_exs_records_sent_total",
		Help: "records shipped to the manager (first transmission only)", Unit: "records"})
	e.batches = reg.Counter(metrics.Desc{Name: "brisk_exs_batches_sent_total",
		Help: "data-batch frames written, including retransmits", Unit: "batches"})
	e.probes = reg.Counter(metrics.Desc{Name: "brisk_exs_clock_probes_total",
		Help: "clock-synchronization probes answered", Unit: "probes"})
	e.adjusts = reg.Counter(metrics.Desc{Name: "brisk_exs_clock_adjusts_total",
		Help: "clock adjustments applied", Unit: "adjustments"})
	e.reconnects = reg.Counter(metrics.Desc{Name: "brisk_exs_reconnects_total",
		Help: "successful reconnections to the manager", Unit: "connections"})
	e.retransmits = reg.Counter(metrics.Desc{Name: "brisk_exs_retransmit_batches_total",
		Help: "batches replayed after a session resume", Unit: "batches"})
	e.spilled = reg.Counter(metrics.Desc{Name: "brisk_exs_spilled_records_total",
		Help: "records buffered while the manager was unreachable", Unit: "records"})
	e.dropped = reg.Counter(metrics.Desc{Name: "brisk_exs_dropped_records_total",
		Help: "records evicted from the bounded spill queue or discarded at shutdown", Unit: "records"})
	e.lostOffline = reg.Counter(metrics.Desc{Name: "brisk_exs_lost_offline_records_total",
		Help: "records discarded after reconnection was abandoned", Unit: "records"})
	e.creditStalls = reg.Counter(metrics.Desc{Name: "brisk_exs_credit_stalls_total",
		Help: "pump passes that paused because the manager's credit window was exhausted", Unit: "stalls"})
	e.lossMarkers = reg.Counter(metrics.Desc{Name: "brisk_exs_loss_markers_total",
		Help: "loss-marker records shipped to account for sensor-side drops", Unit: "markers"})
	e.markedLost = reg.Counter(metrics.Desc{Name: "brisk_exs_marked_lost_records_total",
		Help: "records represented by sensor-shipped loss markers", Unit: "records"})
	e.drainPauseH = reg.Histogram(metrics.Desc{Name: "brisk_exs_drain_pause_microseconds",
		Help: "how long ring collection stayed paused per credit-exhaustion episode",
		Unit: "microseconds"})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_exs_credit_window",
		Help: "the manager's latest credit grant (records in flight allowed); -1 when flow control is disabled",
		Unit: "records"},
		func() float64 {
			e.qMu.Lock()
			defer e.qMu.Unlock()
			if !e.creditOn {
				return -1
			}
			return float64(e.creditW)
		})
	reg.CounterFunc(metrics.Desc{Name: "brisk_exs_ring_records_written_total",
		Help: "records accepted by the node's sensor rings", Unit: "records"},
		func() uint64 { written, _ := e.cfg.Region.Stats(); return written })
	reg.CounterFunc(metrics.Desc{Name: "brisk_exs_ring_records_dropped_total",
		Help: "records dropped at the sensor rings (application outran the drain)", Unit: "records"},
		func() uint64 { _, dropped := e.cfg.Region.Stats(); return dropped })
	reg.CounterFunc(metrics.Desc{Name: "brisk_exs_wire_bytes_out_total",
		Help: "wire frame bytes written across all manager connections", Unit: "bytes"},
		func() uint64 {
			e.connMu.Lock()
			var live uint64
			if e.conn != nil {
				live = e.conn.BytesOut()
			}
			e.connMu.Unlock()
			return e.bytesOutBase.Load() + live
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_exs_online",
		Help: "1 while the manager connection is up, else 0"},
		func() float64 {
			if e.state.Load() == stateOnline {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_exs_queue_bytes",
		Help: "current bytes held in the unacknowledged/spill queue", Unit: "bytes"},
		func() float64 {
			e.qMu.Lock()
			defer e.qMu.Unlock()
			return float64(e.qBytes)
		})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_exs_clock_correction_microseconds",
		Help: "current clock-correction value", Unit: "microseconds"},
		func() float64 { return float64(e.clock.Correction()) })
	if e.cfg.TraceSampleEvery >= 0 {
		every := e.cfg.TraceSampleEvery
		if every == 0 {
			every = DefaultTraceSampleEvery
		}
		e.tracer = metrics.NewStageTracer(reg, "brisk_pipeline_stage_age_microseconds",
			"age of a sampled record (local clock minus record timestamp) on reaching each pipeline stage",
			every, "ring_drain", "wire_send")
	}
}

// Metrics returns the registry holding the sensor's counters, for serving
// through an introspection endpoint or merging into snapshots.
func (e *EXS) Metrics() *metrics.Registry { return e.reg }

// connect dials the manager and runs the HELLO exchange, bounded by
// DialTimeout and the sensor's context.
func (e *EXS) connect(resume bool) (net.Conn, *wire.Conn, *wire.HelloAck, error) {
	d := net.Dialer{Timeout: e.cfg.DialTimeout}
	raw, err := d.DialContext(e.ctx, "tcp", e.cfg.ManagerAddr)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("exs: dial manager: %w", err)
	}
	raw.SetDeadline(time.Now().Add(e.cfg.DialTimeout))
	conn := wire.NewConn(raw)
	hello := &wire.Hello{
		Version: wire.ProtocolVersion,
		Name:    e.cfg.NodeName,
		Session: e.session,
		Resume:  resume,
	}
	if err := conn.Send(hello); err != nil {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("exs: hello: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("exs: hello ack: %w", err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("exs: expected HELLO_ACK, got %v", msg.Type())
	}
	if ack.Version >= wire.MinProtocolVersion && ack.Version <= wire.ProtocolVersion {
		// Pin the connection to the version the manager negotiated.
		conn.SetVersion(ack.Version)
	}
	raw.SetDeadline(time.Time{})
	return raw, conn, ack, nil
}

// Node returns the manager-assigned node id.
func (e *EXS) Node() int32 { return e.node.Load() }

// Session returns the node's resume-session identifier.
func (e *EXS) Session() uint64 { return e.session }

// Clock returns the node's corrected clock.
func (e *EXS) Clock() *vclock.Corrected { return e.clock }

// Flush asks the drain loop to ship any buffered records immediately.
func (e *EXS) Flush() {
	select {
	case e.flushNow <- struct{}{}:
	default:
	}
}

// liveConn returns the current connection, or nil while disconnected.
func (e *EXS) liveConn() *wire.Conn {
	e.connMu.Lock()
	defer e.connMu.Unlock()
	return e.conn
}

// maxFreeBufs bounds the recycled-payload free list so a burst of large
// batches cannot pin their storage forever.
const maxFreeBufs = 8

// recycleBuf returns an acked or evicted payload's storage to the free
// list. Caller holds qMu.
func (e *EXS) recycleBuf(b []byte) {
	if b != nil && len(e.freeBufs) < maxFreeBufs {
		e.freeBufs = append(e.freeBufs, b[:0])
	}
}

// applyWindow installs a credit grant from a HELLO_ACK or DATA_ACK.
// Window 0 means the manager runs without flow control.
func (e *EXS) applyWindow(w uint32) {
	e.qMu.Lock()
	if w == 0 {
		e.creditOn, e.creditW = false, 0
	} else {
		e.creditOn, e.creditW = true, int64(w)
	}
	e.qMu.Unlock()
}

// addLoss folds dropped records into the pending loss accumulator; the
// next shipped batch carries a loss-marker record representing them.
// Caller holds qMu.
func (e *EXS) addLossLocked(count uint64, firstTS, lastTS int64) {
	if count == 0 {
		return
	}
	if e.pendingLossN == 0 {
		e.pendingLossFirst, e.pendingLossLast = firstTS, lastTS
	} else {
		if firstTS < e.pendingLossFirst {
			e.pendingLossFirst = firstTS
		}
		if lastTS > e.pendingLossLast {
			e.pendingLossLast = lastTS
		}
	}
	e.pendingLossN += count
}

// addLoss is addLossLocked for callers not holding qMu.
func (e *EXS) addLoss(count uint64, firstTS, lastTS int64) {
	e.qMu.Lock()
	e.addLossLocked(count, firstTS, lastTS)
	e.qMu.Unlock()
}

// hasPendingLoss reports whether dropped records await a loss marker.
func (e *EXS) hasPendingLoss() bool {
	e.qMu.Lock()
	defer e.qMu.Unlock()
	return e.pendingLossN > 0
}

// takePendingLoss drains the loss accumulator for marker synthesis.
func (e *EXS) takePendingLoss() (count uint64, firstTS, lastTS int64) {
	e.qMu.Lock()
	count, firstTS, lastTS = e.pendingLossN, e.pendingLossFirst, e.pendingLossLast
	e.pendingLossN, e.pendingLossFirst, e.pendingLossLast = 0, 0, 0
	e.qMu.Unlock()
	return count, firstTS, lastTS
}

// tallyEvicted walks an evicted batch payload and returns the data-record
// count and timestamp range it covered, folding in the covered counts of
// any loss markers the batch itself carried (so a dropped marker's losses
// are never forgotten). Evictions only happen under overload, so the
// decode walk is off the steady-state path.
func tallyEvicted(payload []byte) (count uint64, firstTS, lastTS int64) {
	first := true
	note := func(ts int64) {
		if first {
			firstTS, lastTS, first = ts, ts, false
			return
		}
		if ts < firstTS {
			firstTS = ts
		}
		if ts > lastTS {
			lastTS = ts
		}
	}
	for len(payload) > 0 {
		rec, n, err := record.Decode(payload)
		if err != nil || n == 0 {
			break
		}
		payload = payload[n:]
		if c, f, l, ok := record.LossInfo(&rec); ok {
			count += c
			note(f)
			note(l)
			continue
		}
		count++
		if rec.HasTS {
			note(rec.TS)
		}
	}
	return count, firstTS, lastTS
}

// enqueue copies one batch into the retransmit queue, assigning its
// sequence number and applying the drop-oldest bound. The copy reuses
// storage released by earlier acks, so a flowing, acked stream allocates
// no queue memory. Evicted batches feed the pending-loss accumulator so a
// later batch's loss marker testifies to them.
func (e *EXS) enqueue(payload []byte, count int) {
	e.qMu.Lock()
	var cp []byte
	if n := len(e.freeBufs); n > 0 {
		cp = e.freeBufs[n-1]
		e.freeBufs = e.freeBufs[:n-1]
	}
	cp = append(cp, payload...)
	e.nextSeq++
	e.queue = append(e.queue, qEntry{seq: e.nextSeq, count: count, payload: cp})
	e.qBytes += len(cp)
	var evicted uint64
	for e.qBytes > e.cfg.SpillBytes && len(e.queue) > 1 {
		old := e.queue[0]
		e.queue = e.queue[1:]
		e.qBytes -= len(old.payload)
		if old.sent {
			e.inflight -= int64(old.count)
		}
		if n, f, l := tallyEvicted(old.payload); n > 0 {
			e.addLossLocked(n, f, l)
		}
		e.recycleBuf(old.payload)
		evicted += uint64(old.count)
	}
	e.qMu.Unlock()
	if evicted > 0 {
		e.dropped.Add(evicted)
	}
	if e.state.Load() != stateOnline {
		e.spilled.Add(uint64(count))
	}
}

// pump writes every not-yet-sent queued batch to c in sequence order.
// Holding qMu across the sends keeps replays and fresh batches ordered;
// the ack path contends on the same mutex but never blocks the socket.
//
// Under credit flow control a batch is only sent while the in-flight
// record count fits the manager's window — except that the first batch is
// always sendable (the grant is never zero, and a halt must still leave
// one batch in flight whose ack will carry the next grant). Exhausted
// credit stops the pass; the next DATA_ACK's grant resumes it.
func (e *EXS) pump(c *wire.Conn) error {
	e.qMu.Lock()
	defer e.qMu.Unlock()
	blocked := false
	for i := range e.queue {
		ent := &e.queue[i]
		if ent.sent {
			continue
		}
		if e.creditOn && e.inflight > 0 && e.inflight+int64(ent.count) > e.creditW {
			blocked = true
			if !e.stalled {
				e.stalled = true
				e.creditStalls.Add(1)
			}
			break
		}
		msg := &wire.DataBatch{Seq: ent.seq, Count: uint32(ent.count), Payload: ent.payload}
		if err := c.Send(msg); err != nil {
			return err
		}
		if e.tracer != nil && !ent.everSent && e.tracer.ShouldSample(stageWireSend) {
			if ts, ok := peekFirstTS(ent.payload); ok {
				e.tracer.Observe(stageWireSend, e.clock.NowMicros()-ts)
			}
		}
		ent.sent = true
		e.inflight += int64(ent.count)
		e.batches.Add(1)
		if ent.everSent {
			e.retransmits.Add(1)
		} else {
			ent.everSent = true
			e.sent.Add(uint64(ent.count))
		}
	}
	if !blocked {
		e.stalled = false
	}
	return nil
}

// creditStalled reports whether the last pump pass stopped on exhausted
// credit — the signal for the drain loop to widen its flush interval.
func (e *EXS) creditStalled() bool {
	e.qMu.Lock()
	defer e.qMu.Unlock()
	return e.stalled
}

// ackTo releases every queued batch with sequence ≤ seq; the released
// payload storage feeds later enqueues and their records leave the
// credit-window in-flight count.
func (e *EXS) ackTo(seq uint64) {
	e.qMu.Lock()
	for len(e.queue) > 0 && e.queue[0].seq <= seq {
		if e.queue[0].sent {
			e.inflight -= int64(e.queue[0].count)
		}
		e.qBytes -= len(e.queue[0].payload)
		e.recycleBuf(e.queue[0].payload)
		e.queue = e.queue[1:]
	}
	if len(e.queue) == 0 {
		e.queue = nil // let the backing array go
	}
	if e.inflight < 0 {
		e.inflight = 0
	}
	e.qMu.Unlock()
}

// markDisconnected tears down the given connection (if it is still the
// current one), flags queued batches for retransmission, and wakes the
// reconnector. Safe to call from any goroutine; duplicate reports against
// the same connection are ignored.
func (e *EXS) markDisconnected(c *wire.Conn, err error) {
	e.connMu.Lock()
	if e.conn != c || c == nil {
		e.connMu.Unlock()
		return
	}
	e.bytesOutBase.Add(c.BytesOut())
	raw := e.raw
	e.conn, e.raw = nil, nil
	e.connMu.Unlock()
	raw.Close()
	e.resetTransmitState()
	if e.closed.Load() {
		return
	}
	if e.state.CompareAndSwap(stateOnline, stateReconnecting) {
		e.logf("exs: manager connection lost (%v), reconnecting", err)
	}
	select {
	case e.reconnectCh <- struct{}{}:
	default:
	}
}

// resetTransmitState flags every queued batch for retransmission and
// clears the in-flight window. It must run whenever a connection is
// abandoned — including a redial whose replay failed before the link
// went online. Skipping it leaves sent-but-undelivered batches marked
// sent: the next replay pass would omit them, and a cumulative ack for
// a later sequence (the manager tolerates gaps because spill eviction
// creates legitimate ones) would then release them silently.
func (e *EXS) resetTransmitState() {
	e.qMu.Lock()
	for i := range e.queue {
		e.queue[i].sent = false
	}
	e.inflight = 0 // nothing is in flight on a dead link
	e.stalled = false
	e.qMu.Unlock()
}

// markDead gives up on the manager permanently: the queue is discarded
// (counted) and the drain degrades to discarding new records.
func (e *EXS) markDead(reason string) {
	if e.state.Swap(stateDead) == stateDead {
		return
	}
	e.qMu.Lock()
	var lost uint64
	for _, ent := range e.queue {
		lost += uint64(ent.count)
	}
	e.queue, e.qBytes = nil, 0
	e.inflight = 0
	e.stalled = false
	e.qMu.Unlock()
	if lost > 0 {
		e.dropped.Add(lost)
	}
	if !e.closed.Load() {
		e.logf("exs: giving up on manager (%s), discarding records", reason)
	}
}

// backoffDelay computes the exponential-backoff delay for the given
// 0-based attempt: base·2^attempt capped at max, with ±jitter uniform
// noise drawn from rnd (a [0,1) source).
func backoffDelay(attempt int, base, max time.Duration, jitter float64, rnd func() float64) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		f := 1 + jitter*(2*rnd()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// nextReconnectDelay is the delay the reconnector sleeps before the
// given 0-based attempt — the configured schedule with jitter drawn
// from the (injectable) source.
func (e *EXS) nextReconnectDelay(attempt int) time.Duration {
	return backoffDelay(attempt, e.cfg.ReconnectBase, e.cfg.ReconnectMax,
		e.cfg.ReconnectJitter, e.jitterRand)
}

// reconnector owns redialing: it sleeps through the backoff schedule,
// re-runs the HELLO exchange with the session id, trims the queue to the
// manager's resume point, replays the backlog, and only then marks the
// link online.
func (e *EXS) reconnector() {
	defer e.wgCtl.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.reconnectCh:
		}
		if e.state.Load() != stateReconnecting {
			continue
		}
		if !e.reconnectLoop() {
			return
		}
	}
}

// reconnectLoop runs one outage's retry schedule. It returns false when
// the reconnector should exit (shutdown or permanent give-up).
func (e *EXS) reconnectLoop() bool {
	max := e.cfg.MaxReconnectAttempts
	for attempt := 0; ; attempt++ {
		if max >= 0 && attempt >= max {
			e.markDead(fmt.Sprintf("retry cap %d reached", max))
			return false
		}
		delay := e.nextReconnectDelay(attempt)
		timer := time.NewTimer(delay)
		select {
		case <-e.done:
			timer.Stop()
			return false
		case <-e.ctx.Done():
			timer.Stop()
			e.markDead("context canceled")
			return false
		case <-timer.C:
		}
		raw, conn, ack, err := e.connect(true)
		if err != nil {
			if e.ctx.Err() != nil {
				e.markDead("context canceled")
				return false
			}
			continue
		}
		e.node.Store(ack.Node)
		e.applyWindow(ack.Window)
		if ack.Resumed {
			// Everything the manager already accepted is delivered.
			e.ackTo(ack.LastSeq)
		}
		// Replay the backlog before going online so fresh batches cannot
		// overtake older sequence numbers. A failure here abandons a
		// connection markDisconnected never saw (e.conn is still nil), so
		// the batches this pump wrote into the dead socket must be
		// re-flagged for retransmission by hand.
		if err := e.pump(conn); err != nil {
			raw.Close()
			e.resetTransmitState()
			continue
		}
		e.connMu.Lock()
		e.raw, e.conn = raw, conn
		e.connMu.Unlock()
		e.state.Store(stateOnline)
		e.reconnects.Add(1)
		e.logf("exs: reconnected to manager as node %d (resumed=%v)", ack.Node, ack.Resumed)
		e.wgCtl.Add(1)
		go e.controlLoop(conn)
		// Catch anything queued while we were replaying.
		if err := e.pump(conn); err != nil {
			e.markDisconnected(conn, err)
		}
		return true
	}
}

// drainLoop scans the sensor rings, patches timestamps with the current
// correction value, and ships batches under the batching/latency policy.
//
// Overload reaction: while the manager withholds credit (the pump is
// stalled) the loop widens its effective flush interval — bigger batches
// shipped less often are exactly what an overloaded manager wants — and,
// once the spill queue is half full, stops collecting from the rings
// entirely so new records are dropped at the ring (counted, cheap,
// oldest-first) instead of growing the queue. Every drop the sensor
// observes (ring overruns, spill evictions) is folded into a loss-marker
// record carried by the next shipped batch, so the merged stream always
// testifies to what is missing.
func (e *EXS) drainLoop() {
	defer e.wgDrain.Done()
	batch := make([]byte, 0, e.cfg.BatchBytes*2)
	count := 0
	var oldestAt time.Time // wall time the current partial batch started
	effFlush := e.cfg.FlushInterval
	var pauseStart time.Time // nonzero while ring collection is paused
	_, lastRingDropped := e.cfg.Region.Stats()

	// noteRingDrops folds newly observed ring drops into the pending-loss
	// accumulator. The ring does not record dropped timestamps, so the
	// covered range collapses to "now" on the corrected clock.
	noteRingDrops := func() {
		if _, rd := e.cfg.Region.Stats(); rd > lastRingDropped {
			now := e.clock.NowMicros()
			e.addLoss(rd-lastRingDropped, now, now)
			lastRingDropped = rd
		}
	}

	ship := func() {
		if e.state.Load() == stateDead {
			// No link will ever carry a marker again; the drops stay
			// visible through the Dropped/RingDropped counters.
			e.takePendingLoss()
			if count > 0 {
				e.lostOffline.Add(uint64(count))
				batch = batch[:0]
				count = 0
			}
			return
		}
		if n, f, l := e.takePendingLoss(); n > 0 {
			m := record.NewLossMarker(n, f, l)
			if nb, err := m.Append(batch); err == nil {
				batch = nb
				count++
				e.lossMarkers.Add(1)
				e.markedLost.Add(n)
			} else {
				e.addLoss(n, f, l) // keep it for the next batch
			}
		}
		if count == 0 {
			return
		}
		e.enqueue(batch, count)
		batch = batch[:0]
		count = 0
		if e.state.Load() == stateOnline {
			if c := e.liveConn(); c != nil {
				if err := e.pump(c); err != nil {
					e.markDisconnected(c, err)
				}
			}
		}
	}

	ticker := time.NewTicker(e.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			noteRingDrops()
			for e.collect(&batch, &count) > 0 || count > 0 || e.hasPendingLoss() {
				ship()
			}
			return
		case <-e.flushNow:
			e.collect(&batch, &count)
			ship()
			oldestAt = time.Time{}
		case <-ticker.C:
			noteRingDrops()
			stalled := e.creditStalled()
			if !stalled {
				effFlush = e.cfg.FlushInterval
			}
			if stalled && e.queuedBytes() >= e.cfg.SpillBytes/2 {
				// Further collection would only evict older queued batches;
				// prefer counted drops at the ring until credit returns.
				if pauseStart.IsZero() {
					pauseStart = time.Now()
				}
				continue
			}
			if !pauseStart.IsZero() {
				e.drainPauseH.Observe(time.Since(pauseStart).Microseconds())
				pauseStart = time.Time{}
			}
			// Drain in batch-sized chunks until the rings empty; the
			// bound on passes keeps control-channel latency sane under
			// sustained overload.
			for pass := 0; pass < 64; pass++ {
				got := e.collect(&batch, &count)
				if count > 0 && oldestAt.IsZero() {
					oldestAt = time.Now()
				}
				if len(batch) >= e.cfg.BatchBytes {
					ship()
					oldestAt = time.Time{}
					continue
				}
				if got == 0 {
					break
				}
			}
			if count > 0 && time.Since(oldestAt) >= effFlush {
				ship()
				oldestAt = time.Time{}
				if stalled && effFlush < e.cfg.MaxFlushInterval {
					effFlush *= 2
					if effFlush > e.cfg.MaxFlushInterval {
						effFlush = e.cfg.MaxFlushInterval
					}
				}
			}
			if count == 0 {
				oldestAt = time.Time{}
				// Quiescent with unshipped loss testimony: ship a
				// marker-only batch rather than letting the record of the
				// loss linger until shutdown. Gated on an empty queue and
				// live credit so a stalled sensor cannot flood its own
				// spill queue with marker batches.
				if !stalled && e.state.Load() == stateOnline &&
					e.queuedBytes() == 0 && e.hasPendingLoss() {
					ship()
				}
			}
		}
	}
}

// queuedBytes returns the current spill-queue size.
func (e *EXS) queuedBytes() int {
	e.qMu.Lock()
	defer e.qMu.Unlock()
	return e.qBytes
}

// collect drains the rings into the batch up to roughly the batch-size
// budget, correcting timestamps as it goes. It returns the number of
// records collected this pass.
//
// A node with several sensor rings must ship a single timestamp-ordered
// stream: the manager's sorter preserves per-node arrival order by design
// (a "source" is a node, and only stream heads enter its heap), so an
// interleaving scrambled here could never be repaired downstream. With
// one ring the ring's own FIFO order is the timestamp order and the bulk
// path applies; with more, collect k-way-merges the ring heads.
func (e *EXS) collect(batch *[]byte, count *int) int {
	correction := e.clock.Correction()
	rings := e.cfg.Region.Rings()
	if len(rings) > 1 {
		return e.collectMerge(rings, batch, count, correction)
	}
	total := 0
	for _, ring := range rings {
		budget := e.cfg.BatchBytes - len(*batch)
		if budget <= 0 {
			break
		}
		start := len(*batch)
		var n int
		*batch, n = ring.DrainAppend(*batch, budget)
		if n == 0 {
			continue
		}
		total += n
		*count += n
		if correction != 0 {
			patchRegion((*batch)[start:], correction)
		}
		if e.tracer != nil && e.tracer.ShouldSample(stageRingDrain) {
			// The timestamp is already corrected here, so age against the
			// corrected clock measures ring dwell plus drain latency.
			if ts, ok := peekFirstTS((*batch)[start:]); ok {
				e.tracer.Observe(stageRingDrain, e.clock.NowMicros()-ts)
			}
		}
	}
	return total
}

// collectMerge drains several rings into the batch in timestamp order,
// popping whichever ring's head record is oldest until the batch budget
// is spent or every ring is empty. Raw (uncorrected) timestamps compare
// correctly because all rings on a node share one clock; the correction
// is patched in after each pop, like the bulk path.
func (e *EXS) collectMerge(rings []*shm.Ring, batch *[]byte, count *int, correction int64) int {
	// tsEmpty marks a drained ring; a real timestamp never reaches it.
	const tsEmpty = int64(^uint64(0) >> 1)
	if cap(e.mergeTS) < len(rings) {
		e.mergeTS = make([]int64, len(rings))
	}
	heads := e.mergeTS[:len(rings)]
	for i, r := range rings {
		if ts, ok := r.HeadTS(); ok {
			heads[i] = ts
		} else {
			heads[i] = tsEmpty
		}
	}
	total := 0
	for len(*batch) < e.cfg.BatchBytes {
		best := -1
		for i := range heads {
			if heads[i] == tsEmpty {
				continue
			}
			if best == -1 || heads[i] < heads[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		start := len(*batch)
		var ok bool
		*batch, ok = rings[best].DrainOne(*batch)
		if !ok {
			heads[best] = tsEmpty
			continue
		}
		total++
		*count++
		if correction != 0 {
			patchRegion((*batch)[start:], correction)
		}
		if e.tracer != nil && e.tracer.ShouldSample(stageRingDrain) {
			if ts, ok := peekFirstTS((*batch)[start:]); ok {
				e.tracer.Observe(stageRingDrain, e.clock.NowMicros()-ts)
			}
		}
		if ts, ok := rings[best].HeadTS(); ok {
			heads[best] = ts
		} else {
			heads[best] = tsEmpty
		}
	}
	return total
}

// peekFirstTS reads the (possibly corrected) timestamp of the first record
// in an encoded region without decoding it.
func peekFirstTS(region []byte) (int64, bool) {
	size, err := record.PeekSize(region)
	if err != nil || size > len(region) {
		return 0, false
	}
	ts, _, ok := record.PeekTS(region[:size])
	return ts, ok
}

// patchRegion adds the correction to the TS field of every record in an
// encoded region.
func patchRegion(region []byte, correction int64) {
	for len(region) > 0 {
		size, err := record.PeekSize(region)
		if err != nil || size > len(region) {
			return // malformed; leave as-is, the manager will reject it
		}
		if ts, off, ok := record.PeekTS(region[:size]); ok {
			record.PatchTS(region, off, ts+correction)
		}
		region = region[size:]
	}
}

// controlLoop services manager messages on one connection: clock probes,
// adjustments, batch acknowledgements and heartbeats. It exits when the
// connection dies, handing recovery to the reconnector.
func (e *EXS) controlLoop(c *wire.Conn) {
	defer e.wgCtl.Done()
	for {
		msg, err := c.Recv()
		if err != nil {
			if !e.closed.Load() {
				e.markDisconnected(c, err)
			}
			return
		}
		switch t := msg.(type) {
		case *wire.Probe:
			e.probes.Add(1)
			reply := &wire.ProbeReply{
				Seq:        t.Seq,
				MasterSend: t.MasterSend,
				SlaveTime:  e.clock.NowMicros(),
			}
			if err := c.Send(reply); err != nil {
				e.markDisconnected(c, err)
				return
			}
		case *wire.Adjust:
			e.adjusts.Add(1)
			e.clock.Adjust(t.DeltaMicros)
			if t.RatePPB >= 0 {
				// Model-based master: track the reference clock between
				// probes by extrapolating the correction at this rate.
				e.clock.SetRatePPM(float64(t.RatePPB) / 1000)
			}
		case *wire.DataAck:
			e.ackTo(t.Seq)
			e.applyWindow(t.Window)
			// The ack both freed credit and (possibly) carried a fresh
			// grant, so batches parked on an exhausted window can go now.
			if err := e.pump(c); err != nil {
				e.markDisconnected(c, err)
				return
			}
		case *wire.Ping:
			if err := c.Send(&wire.Pong{Seq: t.Seq}); err != nil {
				e.markDisconnected(c, err)
				return
			}
		case *wire.Bye:
			// Manager announced shutdown; treat it like a lost link so a
			// restarted manager picks the session back up.
			e.markDisconnected(c, errors.New("manager sent BYE"))
			return
		default:
			e.logf("exs: unexpected %v from manager", msg.Type())
			e.markDisconnected(c, fmt.Errorf("unexpected %v", msg.Type()))
			return
		}
	}
}

// Stats returns a snapshot of counters.
func (e *EXS) Stats() Stats {
	_, ringDropped := e.cfg.Region.Stats()
	var liveBytes uint64
	e.connMu.Lock()
	if e.conn != nil {
		liveBytes = e.conn.BytesOut()
	}
	e.connMu.Unlock()
	e.qMu.Lock()
	queued := e.qBytes
	creditW := int64(-1)
	if e.creditOn {
		creditW = e.creditW
	}
	e.qMu.Unlock()
	return Stats{
		Node:         e.node.Load(),
		Session:      e.session,
		Online:       e.state.Load() == stateOnline,
		Sent:         e.sent.Value(),
		Batches:      e.batches.Value(),
		BytesOut:     e.bytesOutBase.Load() + liveBytes,
		RingDropped:  ringDropped,
		Probes:       e.probes.Value(),
		Adjusts:      e.adjusts.Value(),
		Correction:   e.clock.Correction(),
		Reconnects:   e.reconnects.Value(),
		Retransmits:  e.retransmits.Value(),
		Spilled:      e.spilled.Value(),
		Dropped:      e.dropped.Value(),
		QueuedBytes:  queued,
		LostOffline:  e.lostOffline.Value(),
		CreditWindow: creditW,
		CreditStalls: e.creditStalls.Value(),
		LossMarkers:  e.lossMarkers.Value(),
		MarkedLost:   e.markedLost.Value(),
	}
}

// Close ships any buffered records, announces BYE, and disconnects. It
// returns promptly even while a reconnect loop is mid-backoff or
// mid-dial; records still unacknowledged at that point are dropped and
// counted.
func (e *EXS) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.cancel() // abort any in-flight dial or backoff wait
	// Bound the final sends so a wedged peer cannot block Close.
	e.connMu.Lock()
	if e.raw != nil {
		e.raw.SetWriteDeadline(time.Now().Add(2 * time.Second))
	}
	e.connMu.Unlock()
	close(e.done)
	// Let the drain loop ship its final batch before the socket goes.
	e.wgDrain.Wait()
	// Wait (bounded) for the manager to acknowledge the tail. Closing the
	// socket while acknowledgements are still in flight would make the
	// manager's ack writes hit a closed peer — a TCP reset that destroys
	// the final batches sitting unread in its receive buffer.
	drainDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(drainDeadline) {
		e.qMu.Lock()
		empty := len(e.queue) == 0
		e.qMu.Unlock()
		if empty || e.state.Load() != stateOnline || e.liveConn() == nil {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	e.connMu.Lock()
	c, raw := e.conn, e.raw
	e.conn, e.raw = nil, nil
	e.connMu.Unlock()
	var err error
	if c != nil {
		e.bytesOutBase.Add(c.BytesOut())
		_ = c.Send(&wire.Bye{})
		err = raw.Close() // unblocks the control loop's Recv
	}
	e.wgCtl.Wait()
	// Whatever the manager never acknowledged is gone now.
	e.qMu.Lock()
	var lost uint64
	for _, ent := range e.queue {
		lost += uint64(ent.count)
	}
	e.queue, e.qBytes = nil, 0
	e.qMu.Unlock()
	if lost > 0 {
		e.dropped.Add(lost)
	}
	return err
}
