// Package wire implements BRISK's transfer protocol (TP): the framed,
// XDR-encoded message stream spoken between an external sensor and the
// instrumentation-system manager over a TCP stream socket.
//
// Unlike JEWEL's rpcgen/static-typing use of XDR, BRISK ships each
// dynamically-typed record with a compressed meta-information header (see
// package record); the wire layer adds stream framing and the small
// control vocabulary needed for connection setup, clock synchronization
// and shutdown:
//
//	frame   := length(u32) type(u8) payload
//	payload := XDR encoding of the typed message body
//
// The in-order delivery the manager's per-queue merge relies on is
// inherited from the underlying stream transport.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"brisk/internal/xdr"
)

// ProtocolVersion is negotiated in the HELLO exchange. Version 2 added
// session resume (session ids in HELLO, per-batch sequence numbers,
// cumulative DATA_ACKs) and the PING/PONG heartbeat. Version 3 added
// credit-based flow control: HELLO_ACK and DATA_ACK carry a window grant
// (Window field) sized from the manager's sorter headroom. Version 4 adds
// model-based clock sync: ADJUST carries a rate field (RatePPB) and
// HELLO_ACK echoes the negotiated version.
//
// Negotiation: the client's HELLO carries its version; a server accepts
// any version in [MinProtocolVersion, ProtocolVersion], pins the
// connection to it (Conn.SetVersion), and echoes it in the HELLO_ACK's
// Version field (v4+ acks only — a v3 ack is byte-identical to before).
// Version-gated fields are then encoded and decoded only on connections
// pinned at or above the version that introduced them, so a v3 peer's
// frames stay byte-identical in both directions.
const ProtocolVersion = 4

// MinProtocolVersion is the oldest peer version the codec still
// interoperates with. Versions 1 and 2 predate flow control and are no
// longer spoken.
const MinProtocolVersion = 3

// VersionRates is the protocol version that introduced clock-rate
// steering (ADJUST.RatePPB) and the HELLO_ACK Version echo.
const VersionRates = 4

// MaxFrameBytes bounds one frame; larger declared frames abort the
// connection rather than allocate unboundedly.
const MaxFrameBytes = 1 << 22

// MsgType discriminates frame payloads.
type MsgType uint8

// Message types.
const (
	// MsgHello opens a connection: EXS → ISM.
	MsgHello MsgType = iota + 1
	// MsgHelloAck completes setup and assigns the node id: ISM → EXS.
	MsgHelloAck
	// MsgData carries a batch of concatenated records: EXS → ISM.
	MsgData
	// MsgProbe is a clock-synchronization poll: ISM → EXS.
	MsgProbe
	// MsgProbeReply answers a probe with the slave clock reading.
	MsgProbeReply
	// MsgAdjust tells the slave to advance its clock correction.
	MsgAdjust
	// MsgBye announces orderly shutdown (either direction).
	MsgBye
	// MsgDataAck acknowledges data batches cumulatively by sequence
	// number, letting the sensor release its retransmit buffer: ISM → EXS.
	MsgDataAck
	// MsgPing is a liveness heartbeat: ISM → EXS.
	MsgPing
	// MsgPong answers a heartbeat: EXS → ISM.
	MsgPong
	// MsgRelayData carries a batch of origin-attributed records from a
	// relay-tier ISM to its parent: relay → root.
	MsgRelayData
)

var msgNames = map[MsgType]string{
	MsgHello: "HELLO", MsgHelloAck: "HELLO_ACK", MsgData: "DATA",
	MsgProbe: "PROBE", MsgProbeReply: "PROBE_REPLY", MsgAdjust: "ADJUST",
	MsgBye: "BYE", MsgDataAck: "DATA_ACK", MsgPing: "PING", MsgPong: "PONG",
	MsgRelayData: "RELAY_DATA",
}

// String names the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Errors reported by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBytes")
	ErrUnknownType   = errors.New("wire: unknown message type")
	ErrBadMessage    = errors.New("wire: malformed message body")
)

// Message is one protocol message. The codec passes the connection's
// negotiated protocol version so bodies that grew fields across versions
// stay byte-compatible with older peers.
type Message interface {
	// Type returns the frame type code.
	Type() MsgType
	encode(e *xdr.Encoder, v uint32)
	decode(d *xdr.Decoder, v uint32) error
}

// Hello opens a connection. The external sensor identifies its node by
// name; the manager assigns the numeric id in HelloAck. Session is a
// node-chosen identifier that survives reconnects; a sensor re-dialing
// after a link failure sets Resume so the manager can reattach the
// existing per-node state instead of minting a new node id. Session 0
// means the client does not participate in session resume.
type Hello struct {
	// Version is the sender's protocol version (ProtocolVersion).
	Version uint32
	// Name is the human-readable node name.
	Name string
	// Session is the node-chosen session identifier; 0 opts out of
	// session resume.
	Session uint64
	// Resume asks the manager to reattach the existing session state.
	Resume bool
}

// Type implements Message.
func (*Hello) Type() MsgType { return MsgHello }

func (m *Hello) encode(e *xdr.Encoder, _ uint32) {
	e.Uint32(m.Version)
	e.String(m.Name)
	e.Uint64(m.Session)
	e.Bool(m.Resume)
}

func (m *Hello) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Version, err = d.Uint32(); err != nil {
		return err
	}
	if m.Name, err = d.String(); err != nil {
		return err
	}
	if m.Session, err = d.Uint64(); err != nil {
		return err
	}
	m.Resume, err = strictBool(d)
	return err
}

// HelloAck assigns the node id used in batch attribution and trace
// output. Resumed reports that the manager recognized the session and
// reattached it; LastSeq is the highest data-batch sequence number the
// manager has accepted for the session, so the sensor can discard
// already-delivered batches from its retransmit buffer.
type HelloAck struct {
	// Node is the manager-assigned numeric node id.
	Node int32
	// Resumed reports that an existing session was reattached.
	Resumed bool
	// LastSeq is the highest batch sequence the manager has accepted
	// for the session.
	LastSeq uint64
	// Window is the initial credit grant: how many records the sensor may
	// have in flight (sent but unacknowledged) before it must pause.
	// 0 disables flow control (unlimited credit).
	Window uint32
	// Version echoes the negotiated protocol version (v4+ connections
	// only; a v3 ack omits the field and the decoder leaves it 0).
	Version uint32
}

// Type implements Message.
func (*HelloAck) Type() MsgType { return MsgHelloAck }

func (m *HelloAck) encode(e *xdr.Encoder, v uint32) {
	e.Int32(m.Node)
	e.Bool(m.Resumed)
	e.Uint64(m.LastSeq)
	e.Uint32(m.Window)
	if v >= VersionRates {
		e.Uint32(m.Version)
	}
}

func (m *HelloAck) decode(d *xdr.Decoder, v uint32) error {
	var err error
	if m.Node, err = d.Int32(); err != nil {
		return err
	}
	if m.Resumed, err = strictBool(d); err != nil {
		return err
	}
	if m.LastSeq, err = d.Uint64(); err != nil {
		return err
	}
	if m.Window, err = d.Uint32(); err != nil {
		return err
	}
	m.Version = 0
	if v >= VersionRates {
		m.Version, err = d.Uint32()
	}
	return err
}

// strictBool decodes an XDR boolean but rejects words other than 0 and 1,
// keeping the wire format canonical (every accepted frame re-encodes
// byte-identically, which the fuzz harness checks).
func strictBool(d *xdr.Decoder) (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, fmt.Errorf("wire: non-canonical bool %d", v)
	}
	return v == 1, nil
}

// DataBatch carries Count concatenated records (each self-framed by its
// record meta header) produced by one external sensor. Seq numbers the
// batch within its session (1-based, strictly increasing); the manager
// uses it to discard batches replayed after a session resume. Seq 0 marks
// a batch outside any session (no dedup, no ack expected).
type DataBatch struct {
	// Seq numbers the batch within its session (1-based); 0 marks a
	// sessionless batch.
	Seq uint64
	// Count is the number of records encoded in Payload.
	Count uint32
	// Payload is the concatenated record encoding.
	Payload []byte
}

// Type implements Message.
func (*DataBatch) Type() MsgType { return MsgData }

func (m *DataBatch) encode(e *xdr.Encoder, _ uint32) {
	e.Uint64(m.Seq)
	e.Uint32(m.Count)
	e.Opaque(m.Payload)
}

func (m *DataBatch) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Seq, err = d.Uint64(); err != nil {
		return err
	}
	if m.Count, err = d.Uint32(); err != nil {
		return err
	}
	// Copy, reusing the message's payload capacity: the frame buffer is
	// reused by the next Recv, and under RecvReuse the message itself is
	// recycled, making a steady batch stream allocation-free.
	m.Payload, err = d.OpaqueInto(m.Payload[:0])
	return err
}

// DataAck acknowledges every data batch of the session with sequence
// number ≤ Seq. The external sensor drops acknowledged batches from its
// retransmit buffer; unacknowledged ones are replayed after a resume.
// Window is a piggybacked credit grant sized from the manager's sorter
// headroom: the sensor may have at most Window records in flight (sent
// but unacknowledged) before it must pause sending. 0 disables flow
// control (unlimited credit); a flow-controlled manager never grants 0 —
// it defers the ack itself instead, so a missing ack is the halt signal.
type DataAck struct {
	// Seq acknowledges every batch with sequence number <= Seq.
	Seq uint64
	// Window grants credit for up to Window in-flight records;
	// 0 disables flow control.
	Window uint32
}

// Type implements Message.
func (*DataAck) Type() MsgType { return MsgDataAck }

func (m *DataAck) encode(e *xdr.Encoder, _ uint32) {
	e.Uint64(m.Seq)
	e.Uint32(m.Window)
}

func (m *DataAck) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Seq, err = d.Uint64(); err != nil {
		return err
	}
	m.Window, err = d.Uint32()
	return err
}

// RelayBatch carries Count records merged by a relay-tier ISM from its
// regional fleet. Unlike DataBatch — whose records are all attributed to
// the sending session's node — a relay batch interleaves many origin
// nodes, so each record in Payload is prefixed by its 4-byte big-endian
// origin node id (the same entry framing the shm memory buffer uses).
// Seq shares the session's data-batch sequence space: the manager
// dedupes, acks and credits relay batches exactly like data batches, so
// the v3 resume and flow-control machinery applies unchanged.
type RelayBatch struct {
	// Seq numbers the batch within its session (1-based); 0 marks a
	// sessionless batch.
	Seq uint64
	// Count is the number of node-prefixed records encoded in Payload.
	Count uint32
	// Payload is the concatenation of (node id, record) entries.
	Payload []byte
}

// Type implements Message.
func (*RelayBatch) Type() MsgType { return MsgRelayData }

func (m *RelayBatch) encode(e *xdr.Encoder, _ uint32) {
	e.Uint64(m.Seq)
	e.Uint32(m.Count)
	e.Opaque(m.Payload)
}

func (m *RelayBatch) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Seq, err = d.Uint64(); err != nil {
		return err
	}
	if m.Count, err = d.Uint32(); err != nil {
		return err
	}
	// Copy into reused capacity, mirroring DataBatch.decode.
	m.Payload, err = d.OpaqueInto(m.Payload[:0])
	return err
}

// Ping is a manager-issued heartbeat; the peer answers with a Pong
// echoing Seq. Any received frame counts as liveness, so pings only cost
// traffic on otherwise idle connections.
type Ping struct {
	// Seq identifies the heartbeat; the Pong echoes it.
	Seq uint32
}

// Type implements Message.
func (*Ping) Type() MsgType { return MsgPing }

func (m *Ping) encode(e *xdr.Encoder, _ uint32) { e.Uint32(m.Seq) }

func (m *Ping) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	m.Seq, err = d.Uint32()
	return err
}

// Pong answers a Ping.
type Pong struct {
	// Seq echoes the Ping being answered.
	Seq uint32
}

// Type implements Message.
func (*Pong) Type() MsgType { return MsgPong }

func (m *Pong) encode(e *xdr.Encoder, _ uint32) { e.Uint32(m.Seq) }

func (m *Pong) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	m.Seq, err = d.Uint32()
	return err
}

// Probe is one clock-synchronization poll. MasterSend is the master clock
// at transmission, echoed back so the master can pair replies without
// per-slave state.
type Probe struct {
	// Seq pairs the reply with this probe.
	Seq uint32
	// MasterSend is the master clock (µs) at transmission.
	MasterSend int64
}

// Type implements Message.
func (*Probe) Type() MsgType { return MsgProbe }

func (m *Probe) encode(e *xdr.Encoder, _ uint32) {
	e.Uint32(m.Seq)
	e.Int64(m.MasterSend)
}

func (m *Probe) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Seq, err = d.Uint32(); err != nil {
		return err
	}
	m.MasterSend, err = d.Int64()
	return err
}

// ProbeReply reports the slave's corrected clock reading at the moment the
// probe was serviced.
type ProbeReply struct {
	// Seq echoes the probe being answered.
	Seq uint32
	// MasterSend echoes the probe's master clock reading.
	MasterSend int64
	// SlaveTime is the slave's corrected clock (µs) when the probe was
	// serviced.
	SlaveTime int64
}

// Type implements Message.
func (*ProbeReply) Type() MsgType { return MsgProbeReply }

func (m *ProbeReply) encode(e *xdr.Encoder, _ uint32) {
	e.Uint32(m.Seq)
	e.Int64(m.MasterSend)
	e.Int64(m.SlaveTime)
}

func (m *ProbeReply) decode(d *xdr.Decoder, _ uint32) error {
	var err error
	if m.Seq, err = d.Uint32(); err != nil {
		return err
	}
	if m.MasterSend, err = d.Int64(); err != nil {
		return err
	}
	m.SlaveTime, err = d.Int64()
	return err
}

// Adjust advances the slave's clock correction by DeltaMicros and,
// under the model-based synchronization master, steers the correction's
// extrapolation rate. The BRISK algorithm only ever advances clocks, so
// DeltaMicros is non-negative in normal operation.
type Adjust struct {
	// DeltaMicros is the amount (µs, ≥ 0 under AlgBRISK) to advance the
	// slave's clock correction by.
	DeltaMicros int64
	// RatePPB sets the slave's correction extrapolation rate in parts
	// per billion (µs gained per 1000 s of raw time; the integer keeps
	// the frame XDR-plain while carrying sub-ppm precision). Negative
	// means "leave the current rate untouched" — the fixed-cadence
	// master always sends -1, so its slaves never extrapolate.
	//
	// The field exists since protocol version 4 (VersionRates): on a v3
	// connection it is neither encoded nor decoded, and the decoder
	// reports -1 so a v3 master's adjustments never touch the rate.
	RatePPB int64
}

// Type implements Message.
func (*Adjust) Type() MsgType { return MsgAdjust }

func (m *Adjust) encode(e *xdr.Encoder, v uint32) {
	e.Int64(m.DeltaMicros)
	if v >= VersionRates {
		e.Int64(m.RatePPB)
	}
}

func (m *Adjust) decode(d *xdr.Decoder, v uint32) error {
	var err error
	if m.DeltaMicros, err = d.Int64(); err != nil {
		return err
	}
	m.RatePPB = -1
	if v >= VersionRates {
		m.RatePPB, err = d.Int64()
	}
	return err
}

// Bye announces orderly shutdown.
type Bye struct{}

// Type implements Message.
func (*Bye) Type() MsgType { return MsgBye }

func (*Bye) encode(*xdr.Encoder, uint32)       {}
func (*Bye) decode(*xdr.Decoder, uint32) error { return nil }

// newMessage allocates an empty body for a frame type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case MsgHello:
		return &Hello{}, nil
	case MsgHelloAck:
		return &HelloAck{}, nil
	case MsgData:
		return &DataBatch{}, nil
	case MsgProbe:
		return &Probe{}, nil
	case MsgProbeReply:
		return &ProbeReply{}, nil
	case MsgAdjust:
		return &Adjust{}, nil
	case MsgBye:
		return &Bye{}, nil
	case MsgDataAck:
		return &DataAck{}, nil
	case MsgPing:
		return &Ping{}, nil
	case MsgPong:
		return &Pong{}, nil
	case MsgRelayData:
		return &RelayBatch{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// Conn frames messages over any reliable byte stream. Sends are serialized
// by an internal mutex (the external sensor writes data batches and probe
// replies from different goroutines); Recv must be called from a single
// goroutine.
type Conn struct {
	sendMu sync.Mutex
	w      *bufio.Writer
	enc    xdr.Encoder
	hdr    [5]byte

	r       *bufio.Reader
	readBuf []byte
	recvHdr [5]byte // frame-header scratch; a local would escape via c.r
	dec     xdr.Decoder
	cached  [16]Message // per-type bodies recycled by RecvReuse

	bytesOut atomic.Uint64
	bytesIn  atomic.Uint64

	// version is the negotiated protocol version gating version-dependent
	// message fields. Atomic: the handshake pins it from the receive
	// goroutine while senders on other goroutines read it.
	version atomic.Uint32
}

// SetVersion pins the connection to a negotiated protocol version. The
// server side calls it after validating the HELLO (before sending the
// ack); the client side after decoding the HELLO_ACK. Before the
// handshake a Conn speaks ProtocolVersion.
func (c *Conn) SetVersion(v uint32) { c.version.Store(v) }

// Version returns the negotiated protocol version.
func (c *Conn) Version() uint32 {
	if v := c.version.Load(); v != 0 {
		return v
	}
	return ProtocolVersion
}

// BytesOut returns the total frame bytes written, for throughput
// accounting. Safe for concurrent use.
func (c *Conn) BytesOut() uint64 { return c.bytesOut.Load() }

// BytesIn returns the total frame bytes read. Safe for concurrent use.
func (c *Conn) BytesIn() uint64 { return c.bytesIn.Load() }

// NewConn wraps a byte stream.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		w: bufio.NewWriterSize(rw, 64<<10),
		r: bufio.NewReaderSize(rw, 64<<10),
	}
}

// Send frames, writes and flushes one message.
func (c *Conn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.enc.Reset()
	m.encode(&c.enc, c.Version())
	body := c.enc.Bytes()
	n := len(body) + 1
	if n > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	c.hdr[0] = byte(n >> 24)
	c.hdr[1] = byte(n >> 16)
	c.hdr[2] = byte(n >> 8)
	c.hdr[3] = byte(n)
	c.hdr[4] = byte(m.Type())
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(body); err != nil {
		return err
	}
	c.bytesOut.Add(uint64(n + 4))
	return c.w.Flush()
}

// Recv reads the next message. The returned message does not alias the
// connection's internal buffers beyond the next Recv for fixed-size
// bodies; DataBatch payloads are copied.
func (c *Conn) Recv() (Message, error) { return c.recv(false) }

// RecvReuse reads the next message into a per-type body cached on the
// connection. The returned message — including any payload slice it
// carries — is only valid until the next RecvReuse of the same type, but a
// steady stream of data batches decodes with zero allocations once the
// cached payload has grown to the working batch size. A caller handing
// the payload to another goroutine can take ownership by swapping a
// replacement buffer into the message before the next RecvReuse. Recv and
// RecvReuse may be mixed freely on one connection.
func (c *Conn) RecvReuse() (Message, error) { return c.recv(true) }

func (c *Conn) recv(reuse bool) (Message, error) {
	hdr := &c.recvHdr
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 1 || n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: declared %d", ErrFrameTooLarge, n)
	}
	t := MsgType(hdr[4])
	body := n - 1
	if cap(c.readBuf) < body {
		c.readBuf = make([]byte, body)
	}
	buf := c.readBuf[:body]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	c.bytesIn.Add(uint64(n + 4))
	var m Message
	if reuse && int(t) < len(c.cached) && c.cached[t] != nil {
		m = c.cached[t]
	} else {
		var err error
		m, err = newMessage(t)
		if err != nil {
			return nil, err
		}
		if reuse && int(t) < len(c.cached) {
			c.cached[t] = m
		}
	}
	c.dec.Reset(buf)
	c.dec.MaxOpaque = MaxFrameBytes
	if err := m.decode(&c.dec, c.Version()); err != nil {
		return nil, fmt.Errorf("%w: %v body: %v", ErrBadMessage, t, err)
	}
	if c.dec.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %v has %d trailing bytes", ErrBadMessage, t, c.dec.Remaining())
	}
	return m, nil
}
