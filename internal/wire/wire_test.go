package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// pipeConns returns two Conns joined by an in-memory duplex pipe.
func pipeConns(t *testing.T) (*Conn, *Conn, func()) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a), NewConn(b), func() { a.Close(); b.Close() }
}

func exchange(t *testing.T, m Message) Message {
	t.Helper()
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	errCh := make(chan error, 1)
	go func() { errCh <- ca.Send(m) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Send: %v", err)
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&Hello{Version: ProtocolVersion, Name: "node-07"},
		&Hello{Version: ProtocolVersion, Name: "node-07", Session: 0xDEADBEEF, Resume: true},
		&HelloAck{Node: 3},
		&HelloAck{Node: 3, Resumed: true, LastSeq: 42},
		&HelloAck{Node: 3, Resumed: true, LastSeq: 42, Window: 4096},
		&DataBatch{Count: 2, Payload: []byte{1, 2, 3, 4, 5}},
		&DataBatch{Seq: 17, Count: 2, Payload: []byte{1, 2, 3, 4, 5}},
		&RelayBatch{Seq: 23, Count: 1, Payload: []byte{0, 0, 0, 7, 1, 2, 3}},
		&Probe{Seq: 9, MasterSend: 123456789},
		&ProbeReply{Seq: 9, MasterSend: 123456789, SlaveTime: 123456800},
		&Adjust{DeltaMicros: 250},
		&Adjust{DeltaMicros: 250, RatePPB: 12_500},
		&Bye{},
		&DataAck{Seq: 99},
		&DataAck{Seq: 99, Window: 128},
		&Ping{Seq: 7},
		&Pong{Seq: 7},
	}
	for _, m := range msgs {
		got := exchange(t, m)
		if got.Type() != m.Type() {
			t.Fatalf("type mismatch: %v vs %v", got.Type(), m.Type())
		}
		if db, ok := m.(*DataBatch); ok {
			gdb := got.(*DataBatch)
			if gdb.Count != db.Count || !bytes.Equal(gdb.Payload, db.Payload) {
				t.Fatalf("DataBatch mismatch: %+v vs %+v", gdb, db)
			}
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%v round trip mismatch:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	got := exchange(t, &DataBatch{Count: 0, Payload: nil}).(*DataBatch)
	if got.Count != 0 || len(got.Payload) != 0 {
		t.Fatalf("empty batch = %+v", got)
	}
}

func TestSequenceOfMessages(t *testing.T) {
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	go func() {
		ca.Send(&Hello{Version: 1, Name: "n"})
		ca.Send(&DataBatch{Count: 1, Payload: []byte{9, 9}})
		ca.Send(&Bye{})
	}()
	types := []MsgType{MsgHello, MsgData, MsgBye}
	for _, want := range types {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if m.Type() != want {
			t.Fatalf("got %v, want %v", m.Type(), want)
		}
	}
}

func TestDataBatchPayloadIsCopied(t *testing.T) {
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	go func() {
		ca.Send(&DataBatch{Count: 1, Payload: []byte("first!")})
		ca.Send(&DataBatch{Count: 1, Payload: []byte("second")})
	}()
	m1, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.(*DataBatch).Payload
	saved := append([]byte(nil), p1...)
	if _, err := cb.Recv(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, saved) {
		t.Fatal("first payload mutated by second Recv: message payloads must be copied")
	}
}

func TestUnknownType(t *testing.T) {
	var buf bytes.Buffer
	// length=1, type=200
	buf.Write([]byte{0, 0, 0, 1, 200})
	c := NewConn(readWriter{&buf, io.Discard})
	if _, err := c.Recv(); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgBye)})
	c := NewConn(readWriter{&buf, io.Discard})
	if _, err := c.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}

	// Sending an oversized batch fails locally.
	cs := NewConn(readWriter{strings.NewReader(""), io.Discard})
	big := &DataBatch{Count: 1, Payload: make([]byte, MaxFrameBytes)}
	if err := cs.Send(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Send err = %v, want ErrFrameTooLarge", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	var buf bytes.Buffer
	// Bye with 4 extra body bytes.
	buf.Write([]byte{0, 0, 0, 5, byte(MsgBye), 1, 2, 3, 4})
	c := NewConn(readWriter{&buf, io.Discard})
	if _, err := c.Recv(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	// Probe declares 13 bytes of body but stream ends early.
	buf.Write([]byte{0, 0, 0, 13, byte(MsgProbe), 0, 0})
	c := NewConn(readWriter{&buf, io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestEOF(t *testing.T) {
	c := NewConn(readWriter{strings.NewReader(""), io.Discard})
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	const per = 100
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ca.Send(&Probe{Seq: uint32(g*per + i), MasterSend: 1}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	seen := make(map[uint32]bool)
	for i := 0; i < 4*per; i++ {
		m, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		p, ok := m.(*Probe)
		if !ok {
			t.Fatalf("interleaved frame corrupted: got %T", m)
		}
		if seen[p.Seq] {
			t.Fatalf("duplicate seq %d", p.Seq)
		}
		seen[p.Seq] = true
	}
	wg.Wait()
}

func TestByteCounters(t *testing.T) {
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	go ca.Send(&Bye{})
	if _, err := cb.Recv(); err != nil {
		t.Fatal(err)
	}
	// A Bye frame is 4 length bytes + 1 type byte with an empty body.
	if ca.BytesOut() != 5 || cb.BytesIn() != 5 {
		t.Fatalf("BytesOut=%d BytesIn=%d, want 5", ca.BytesOut(), cb.BytesIn())
	}
}

// TestVersionGatedFields pins both ends of a connection to protocol
// version 3 and verifies the v4 additions vanish from the wire: ADJUST
// frames carry only the 8-byte delta (RatePPB decodes as -1, "leave the
// rate untouched") and HELLO_ACK omits the version echo — so a rolling
// upgrade mixing v3 and v4 binaries never aborts mid-stream on a
// length-mismatched body.
func TestVersionGatedFields(t *testing.T) {
	ca, cb, closeFn := pipeConns(t)
	defer closeFn()
	if ca.Version() != ProtocolVersion {
		t.Fatalf("default version = %d, want %d", ca.Version(), ProtocolVersion)
	}
	ca.SetVersion(3)
	cb.SetVersion(3)

	go ca.Send(&Adjust{DeltaMicros: 250, RatePPB: 12_500})
	m, err := cb.Recv()
	if err != nil {
		t.Fatalf("v3 adjust: %v", err)
	}
	adj, ok := m.(*Adjust)
	if !ok {
		t.Fatalf("got %v, want ADJUST", m.Type())
	}
	if adj.DeltaMicros != 250 {
		t.Fatalf("DeltaMicros = %d, want 250", adj.DeltaMicros)
	}
	if adj.RatePPB != -1 {
		t.Fatalf("v3 ADJUST decoded RatePPB = %d, want -1 (no rate on the wire)", adj.RatePPB)
	}
	// Frame = 4 length + 1 type + 8 delta: byte-identical to version 3.
	if got := ca.BytesOut(); got != 13 {
		t.Fatalf("v3 ADJUST frame = %d bytes, want 13", got)
	}

	prev := ca.BytesOut()
	go ca.Send(&HelloAck{Node: 3, LastSeq: 42, Window: 9, Version: 3})
	m, err = cb.Recv()
	if err != nil {
		t.Fatalf("v3 hello ack: %v", err)
	}
	ack := m.(*HelloAck)
	if ack.Node != 3 || ack.LastSeq != 42 || ack.Window != 9 {
		t.Fatalf("v3 ack mismatch: %+v", ack)
	}
	if ack.Version != 0 {
		t.Fatalf("v3 HELLO_ACK decoded Version = %d, want 0 (no echo on the wire)", ack.Version)
	}
	// Frame = 5 header + node(4) + resumed(4) + lastseq(8) + window(4).
	if got := ca.BytesOut() - prev; got != 25 {
		t.Fatalf("v3 HELLO_ACK frame = %d bytes, want 25", got)
	}

	// Back at version 4 both fields round-trip.
	ca.SetVersion(ProtocolVersion)
	cb.SetVersion(ProtocolVersion)
	go ca.Send(&Adjust{DeltaMicros: 7, RatePPB: 2_500})
	m, err = cb.Recv()
	if err != nil {
		t.Fatalf("v4 adjust: %v", err)
	}
	if adj := m.(*Adjust); adj.RatePPB != 2_500 {
		t.Fatalf("v4 ADJUST RatePPB = %d, want 2500", adj.RatePPB)
	}
	go ca.Send(&HelloAck{Node: 3, Version: ProtocolVersion})
	m, err = cb.Recv()
	if err != nil {
		t.Fatalf("v4 hello ack: %v", err)
	}
	if ack := m.(*HelloAck); ack.Version != ProtocolVersion {
		t.Fatalf("v4 HELLO_ACK Version = %d, want %d", ack.Version, ProtocolVersion)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgData.String() != "DATA" || MsgProbe.String() != "PROBE" {
		t.Error("known names wrong")
	}
	if !strings.Contains(MsgType(99).String(), "99") {
		t.Error("unknown type should include code")
	}
}

type readWriter struct {
	io.Reader
	io.Writer
}

func BenchmarkSendRecvBatch(b *testing.B) {
	// In-memory pipe round trip of a 64-record batch (the EXS default).
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	cs := NewConn(cli)
	cr := NewConn(srv)
	payload := make([]byte, 64*40)
	go func() {
		for {
			if _, err := cr.Recv(); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := cs.Send(&DataBatch{Count: 64, Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPropertyMessageStreamRoundTrip sends a random sequence of messages
// through an in-memory stream and verifies every one arrives intact and
// in order.
func TestPropertyMessageStreamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sent []Message
		var buf bytes.Buffer
		cw := NewConn(readWriter{nil, &buf})
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var m Message
			switch rng.Intn(11) {
			case 0:
				m = &Hello{Version: rng.Uint32(), Name: randString(rng, 20),
					Session: rng.Uint64(), Resume: rng.Intn(2) == 1}
			case 1:
				m = &HelloAck{Node: int32(rng.Int31()),
					Resumed: rng.Intn(2) == 1, LastSeq: rng.Uint64()}
			case 2:
				p := make([]byte, rng.Intn(200))
				rng.Read(p)
				m = &DataBatch{Seq: rng.Uint64(), Count: uint32(rng.Intn(50)), Payload: p}
			case 3:
				m = &Probe{Seq: rng.Uint32(), MasterSend: rng.Int63() - rng.Int63()}
			case 4:
				m = &ProbeReply{Seq: rng.Uint32(), MasterSend: rng.Int63(), SlaveTime: -rng.Int63()}
			case 5:
				m = &Adjust{DeltaMicros: rng.Int63() - rng.Int63(), RatePPB: rng.Int63() - rng.Int63()}
			case 6:
				m = &DataAck{Seq: rng.Uint64()}
			case 7:
				m = &Ping{Seq: rng.Uint32()}
			case 8:
				m = &Pong{Seq: rng.Uint32()}
			case 9:
				p := make([]byte, rng.Intn(200))
				rng.Read(p)
				m = &RelayBatch{Seq: rng.Uint64(), Count: uint32(rng.Intn(50)), Payload: p}
			default:
				m = &Bye{}
			}
			if err := cw.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return false
			}
			sent = append(sent, m)
		}
		cr := NewConn(readWriter{bytes.NewReader(buf.Bytes()), io.Discard})
		for i, want := range sent {
			got, err := cr.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return false
			}
			if got.Type() != want.Type() {
				t.Errorf("msg %d type %v != %v", i, got.Type(), want.Type())
				return false
			}
			if db, ok := want.(*DataBatch); ok {
				g := got.(*DataBatch)
				if g.Count != db.Count || !bytes.Equal(g.Payload, db.Payload) {
					t.Errorf("msg %d batch mismatch", i)
					return false
				}
			} else if rb, ok := want.(*RelayBatch); ok {
				g := got.(*RelayBatch)
				if g.Seq != rb.Seq || g.Count != rb.Count || !bytes.Equal(g.Payload, rb.Payload) {
					t.Errorf("msg %d relay batch mismatch", i)
					return false
				}
			} else if !reflect.DeepEqual(got, want) {
				t.Errorf("msg %d mismatch: %+v vs %+v", i, got, want)
				return false
			}
		}
		if _, err := cr.Recv(); !errors.Is(err, io.EOF) {
			t.Errorf("trailing data after stream: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randString(rng *rand.Rand, max int) string {
	b := make([]byte, rng.Intn(max+1))
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	return string(b)
}
