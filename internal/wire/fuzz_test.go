package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecv checks that arbitrary byte streams never panic the frame
// decoder, and that every message it accepts re-encodes byte-identically.
func FuzzRecv(f *testing.F) {
	// Seed with valid frames of each message type.
	msgs := []Message{
		&Hello{Version: ProtocolVersion, Name: "n"},
		&Hello{Version: ProtocolVersion, Name: "n", Session: 0x1122334455667788, Resume: true},
		&HelloAck{Node: 1},
		&HelloAck{Node: 1, Resumed: true, LastSeq: 9},
		&DataBatch{Count: 1, Payload: []byte{1, 2, 3, 4}},
		&DataBatch{Seq: 5, Count: 1, Payload: []byte{1, 2, 3, 4}},
		&Probe{Seq: 1, MasterSend: 2},
		&ProbeReply{Seq: 1, MasterSend: 2, SlaveTime: 3},
		&Adjust{DeltaMicros: -4},
		&Bye{},
		&DataAck{Seq: 5},
		&Ping{Seq: 3},
		&Pong{Seq: 3},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{nil, &buf})
		if err := c.Send(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		consumed := 0
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			// Accepted message must re-encode to the identical frame.
			var out bytes.Buffer
			cw := NewConn(struct {
				io.Reader
				io.Writer
			}{nil, &out})
			if err := cw.Send(m); err != nil {
				t.Fatalf("accepted message does not re-encode: %v", err)
			}
			n := out.Len()
			if consumed+n > len(data) || !bytes.Equal(out.Bytes(), data[consumed:consumed+n]) {
				t.Fatalf("non-canonical frame for %v", m.Type())
			}
			consumed += n
		}
	})
}
