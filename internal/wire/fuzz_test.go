package wire

import (
	"bytes"
	"io"
	"testing"

	"brisk/internal/record"
)

// FuzzRecv checks that arbitrary byte streams never panic the frame
// decoder, and that every message it accepts re-encodes byte-identically.
func FuzzRecv(f *testing.F) {
	// Seed with valid frames of each message type.
	msgs := []Message{
		&Hello{Version: ProtocolVersion, Name: "n"},
		&Hello{Version: ProtocolVersion, Name: "n", Session: 0x1122334455667788, Resume: true},
		&HelloAck{Node: 1},
		&HelloAck{Node: 1, Resumed: true, LastSeq: 9},
		&DataBatch{Count: 1, Payload: []byte{1, 2, 3, 4}},
		&DataBatch{Seq: 5, Count: 1, Payload: []byte{1, 2, 3, 4}},
		&Probe{Seq: 1, MasterSend: 2},
		&ProbeReply{Seq: 1, MasterSend: 2, SlaveTime: 3},
		&Adjust{DeltaMicros: -4, RatePPB: 2500},
		&Bye{},
		&DataAck{Seq: 5},
		&Ping{Seq: 3},
		&Pong{Seq: 3},
		&RelayBatch{Seq: 6, Count: 1, Payload: []byte{0, 0, 0, 2, 1, 2, 3, 4}},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{nil, &buf})
		if err := c.Send(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		consumed := 0
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			// Accepted message must re-encode to the identical frame.
			var out bytes.Buffer
			cw := NewConn(struct {
				io.Reader
				io.Writer
			}{nil, &out})
			if err := cw.Send(m); err != nil {
				t.Fatalf("accepted message does not re-encode: %v", err)
			}
			n := out.Len()
			if consumed+n > len(data) || !bytes.Equal(out.Bytes(), data[consumed:consumed+n]) {
				t.Fatalf("non-canonical frame for %v", m.Type())
			}
			consumed += n
		}
	})
}

// FuzzDataBatch round-trips the pipeline's hot frame: a DataBatch built
// from fuzzed (seq, count, payload) is encoded, decoded with both Recv and
// RecvReuse, and re-encoded — all three byte streams must be identical,
// and the decoded fields must survive unchanged. The corpus is seeded with
// the frames the e2e tests actually ship: NOTICE-encoded records of the
// kinds the sensors produce, plus the degenerate empty batch.
func FuzzDataBatch(f *testing.F) {
	// Realistic payloads: records encoded exactly as the drain loop ships
	// them (timestamp plus small integer fields, and a string notice).
	recs := [][]byte{
		mustEncode(f, record.New(1, record.TSVal(1_000_001), record.I32Val(7), record.I32Val(0))),
		mustEncode(f, record.New(3, record.TSVal(2_000_002), record.I32Val(1), record.I32Val(2),
			record.I32Val(3), record.I32Val(4), record.I32Val(5), record.I32Val(6))),
		mustEncode(f, record.New(9, record.TSVal(42), record.StrVal("phase done"), record.U64Val(99))),
	}
	var batch []byte
	for _, r := range recs {
		batch = append(batch, r...)
	}
	f.Add(uint64(1), uint32(3), batch)
	f.Add(uint64(0), uint32(1), recs[0])
	f.Add(uint64(1<<40), uint32(0), []byte{})
	f.Add(uint64(2), uint32(2), []byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, seq uint64, count uint32, payload []byte) {
		if len(payload) > MaxFrameBytes/2 {
			return
		}
		orig := &DataBatch{Seq: seq, Count: count, Payload: payload}
		first := encodeFrame(t, orig)

		for _, reuse := range []bool{false, true} {
			c := NewConn(struct {
				io.Reader
				io.Writer
			}{bytes.NewReader(first), io.Discard})
			var m Message
			var err error
			if reuse {
				m, err = c.RecvReuse()
			} else {
				m, err = c.Recv()
			}
			if err != nil {
				t.Fatalf("decode of our own frame failed (reuse=%v): %v", reuse, err)
			}
			got, ok := m.(*DataBatch)
			if !ok {
				t.Fatalf("decoded %v, want DataBatch", m.Type())
			}
			if got.Seq != seq || got.Count != count || !bytes.Equal(got.Payload, payload) {
				t.Fatalf("round-trip mutated the batch (reuse=%v): %+v", reuse, got)
			}
			if second := encodeFrame(t, got); !bytes.Equal(first, second) {
				t.Fatalf("re-encode differs (reuse=%v):\n first=%x\nsecond=%x", reuse, first, second)
			}
		}
	})
}

func mustEncode(f *testing.F, r record.Record) []byte {
	f.Helper()
	b, err := r.Append(nil)
	if err != nil {
		f.Fatal(err)
	}
	return b
}

func encodeFrame(t *testing.T, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{nil, &buf})
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
