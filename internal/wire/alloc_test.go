package wire

import (
	"io"
	"testing"
)

// repeatReader replays the same frame bytes forever, so RecvReuse can be
// driven through thousands of identical frames without a socket.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}

// TestAllocsSendRecvReuse pins the wire layer's halves of the pipeline's
// zero-allocation contract: Send encodes into the connection's reused
// encoder and RecvReuse decodes into the per-type cached body, so a steady
// stream of data batches moves with no per-frame heap allocations.
func TestAllocsSendRecvReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := &DataBatch{Seq: 7, Count: 12, Payload: payload}

	send := NewConn(struct {
		io.Reader
		io.Writer
	}{nil, io.Discard})
	if err := send.Send(msg); err != nil { // warm the encoder buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := send.Send(msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Send allocates %.1f times per frame, want 0", allocs)
	}

	var frame []byte
	fc := NewConn(struct {
		io.Reader
		io.Writer
	}{nil, writerFunc(func(p []byte) (int, error) {
		frame = append(frame, p...)
		return len(p), nil
	})})
	if err := fc.Send(msg); err != nil {
		t.Fatal(err)
	}
	recv := NewConn(struct {
		io.Reader
		io.Writer
	}{&repeatReader{frame: frame}, io.Discard})
	if _, err := recv.RecvReuse(); err != nil { // warm the cached body
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		m, err := recv.RecvReuse()
		if err != nil {
			t.Fatal(err)
		}
		if b := m.(*DataBatch); len(b.Payload) != len(payload) {
			t.Fatalf("payload length %d, want %d", len(b.Payload), len(payload))
		}
	})
	if allocs != 0 {
		t.Fatalf("RecvReuse allocates %.1f times per frame, want 0", allocs)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
