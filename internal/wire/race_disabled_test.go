//go:build !race

package wire

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip themselves under it.
const raceEnabled = false
