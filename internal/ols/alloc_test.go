package ols

import (
	"testing"

	"brisk/internal/record"
)

// TestAllocsSteadyStatePushExtract pins the sorter's zero-allocation
// contract: once each source queue has warmed its slot storage, a
// push/extract cycle allocates nothing — Push deep-copies into the slot's
// reused Fields array and Extract hands out borrowed storage.
func TestAllocsSteadyStatePushExtract(t *testing.T) {
	s := New(Config{InitialT: 10, Grow: GrowFixed})
	emit := func(record.Record) {}
	// Warm up: establish both source queues and their slot capacity. Under
	// the calendar core slot storage lives in the 256-bucket ring and is
	// grown lazily as the ring rotates, so the warm phase must cover
	// several full ring revolutions before every bucket's capacity is
	// established.
	now := int64(0)
	for i := 0; i < 4096; i++ {
		now += 100
		s.Push(1, rec(now), now)
		s.Push(2, rec(now+1), now)
		s.Extract(now, emit)
	}
	s.Flush(emit)
	// Reuse two record values across runs: record.New allocates a Fields
	// slice, which is the caller's cost, not the sorter's.
	r1, r2 := rec(0), rec(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 100
		r1.SetTS(now)
		r2.SetTS(now + 1)
		s.Push(1, r1, now)
		s.Push(2, r2, now)
		s.Extract(now, emit)
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/extract allocates %.1f times, want 0", allocs)
	}
}
