package ols

import (
	"fmt"
	"math/rand"
	"testing"

	"brisk/internal/record"
)

// emission is one emitted record reduced to the fields that identify it
// exactly: source, timestamp, and the identity stamp genAdversarial puts
// in the last field. Two runs that produce equal emission slices emitted
// the same records in the same order.
type emission struct {
	src int32
	ts  int64
	id  uint64
}

// runCores pushes the schedule through a fresh sorter per core —
// interleaving Extract(at) after every arrival, then Flush — and returns
// the two emission sequences (calendar first, heap second).
func runCores(m streamModel, cfg Config, shards int) (cal, hp []emission) {
	run := func(core CoreKind) []emission {
		c := cfg
		c.Core = core
		var out []emission
		emit := func(r record.Record) {
			out = append(out, emission{r.Node, r.TS, r.Fields[len(r.Fields)-1].Uint()})
		}
		if shards == 0 {
			s := New(c)
			for _, a := range m.arrivals {
				s.Push(a.src, a.r, a.at)
				s.Extract(a.at, emit)
			}
			s.Flush(emit)
		} else {
			sh := NewSharded(c, shards)
			for _, a := range m.arrivals {
				sh.Push(a.src, a.r, a.at)
				sh.Extract(a.at, emit)
			}
			sh.Flush(emit)
		}
		return out
	}
	return run(CoreCalendar), run(CoreHeap)
}

// diffEmissions fails the test at the first divergence between the two
// cores' emission sequences.
func diffEmissions(t *testing.T, cal, hp []emission) {
	t.Helper()
	if len(cal) != len(hp) {
		t.Fatalf("calendar emitted %d records, heap emitted %d", len(cal), len(hp))
	}
	for i := range hp {
		if cal[i] != hp[i] {
			t.Fatalf("emission %d diverges: calendar %+v, heap %+v", i, cal[i], hp[i])
		}
	}
}

// TestCrossCoreIdentity: on adversarial schedules (stragglers, tachyons)
// under every growth policy, the calendar core emits the exact sequence
// the heap core emits — not merely an equivalent multiset. This is the
// tentpole contract: the calendar is a drop-in core, and its automatic
// heap fallback reproduces the heap byte for byte whenever the bucket
// structure cannot hold the input.
func TestCrossCoreIdentity(t *testing.T) {
	policies := []GrowPolicy{GrowToLateness, GrowDouble, GrowFixed}
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, _ := genAdversarial(rng, 1+rng.Intn(6), 40+rng.Intn(80))
		cfg := Config{
			InitialT: 1 + rng.Int63n(500),
			Grow:     policies[int(seed)%len(policies)],
			HalfLife: rng.Int63n(10_000),
		}
		cal, hp := runCores(m, cfg, 0)
		diffEmissions(t, cal, hp)
	}
}

// TestShardedCrossCoreIdentity: the same identity holds through the
// shard partition and the loser-tree merge at every acceptance shard
// count — calendar and heap cores produce identical merged streams at
// shards 1, 2, 4 and 8.
func TestShardedCrossCoreIdentity(t *testing.T) {
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				rng := rand.New(rand.NewSource(seed * 977))
				m, _ := genAdversarial(rng, 1+rng.Intn(6), 40+rng.Intn(60))
				cfg := Config{InitialT: 200, Grow: GrowToLateness, HalfLife: 5000}
				cal, hp := runCores(m, cfg, shards)
				diffEmissions(t, cal, hp)
			}
		})
	}
}

// TestCalendarFallbackMidStream is the deterministic adversarial case
// from the issue: a tachyon burst lands so far behind the ring's frontier
// that no backward re-anchor can reach it, forcing the calendar→heap
// fallback mid-stream with records already buffered. The test proves the
// switchover is invisible in the output — emission stays monotone in TS
// and the multiset is conserved — and that the sorter returns to the
// calendar once the heap drains.
func TestCalendarFallbackMidStream(t *testing.T) {
	// T fixed at 1000 µs → bucket width calMinWidth (64 µs), so the ring
	// spans ~16.4 ms and the first push centers it with ~8.2 ms of
	// backward slack plus re-anchor room. A burst 50 ms behind the
	// frontier is out of reach of any re-anchor and must trip the
	// fallback.
	s := New(Config{InitialT: 1000, Grow: GrowFixed, Core: CoreCalendar})

	type pushed struct {
		src int32
		ts  int64
	}
	var in []pushed
	push := func(src int32, ts, now int64) {
		r := rec(ts)
		r.Fields = append(r.Fields, record.U64Val(uint64(len(in)+1)))
		in = append(in, pushed{src, ts})
		s.Push(src, r, now)
	}

	var out []pushed
	lastTS := int64(-1 << 62)
	emit := func(r record.Record) {
		if r.TS < lastTS {
			t.Fatalf("emission went backward: %d after %d", r.TS, lastTS)
		}
		lastTS = r.TS
		out = append(out, pushed{r.Node, r.TS})
	}

	// Source 1 streams records that are still inside the window — they
	// stay buffered in the calendar ring.
	for i := int64(0); i < 10; i++ {
		push(1, 100_000+i, 100_000+i)
		s.Extract(100_000+i, emit)
	}
	if got := s.Stats().HeapFallbacks; got != 0 {
		t.Fatalf("fallback fired during the in-window stream: %d", got)
	}
	if len(out) != 0 {
		t.Fatalf("emitted %d records while all are inside the window", len(out))
	}

	// The burst: source 2 delivers records stamped 50 ms in the past.
	for i := int64(0); i < 10; i++ {
		push(2, 50_000+i, 100_009)
	}
	if got := s.Stats().HeapFallbacks; got != 1 {
		t.Fatalf("HeapFallbacks = %d after the tachyon burst, want 1", got)
	}

	// The burst records are already aged (lateness ≈ 50 ms ≫ T) and must
	// emit first — still monotone, because nothing newer has been emitted.
	s.Extract(100_009, emit)
	if len(out) != 10 {
		t.Fatalf("emitted %d records after the burst aged, want the 10 tachyons", len(out))
	}
	for i, e := range out {
		if e.src != 2 || e.ts != 50_000+int64(i) {
			t.Fatalf("emission %d = %+v, want the tachyon burst in TS order", i, e)
		}
	}

	// Drain the rest; the full multiset must come out, in order.
	s.Extract(200_000, emit)
	s.Flush(emit)
	if len(out) != len(in) {
		t.Fatalf("emitted %d records, pushed %d", len(out), len(in))
	}
	if s.Buffered() != 0 {
		t.Fatalf("buffered %d after flush", s.Buffered())
	}

	// With the heap drained the sorter reverts to the calendar: the next
	// push must land in a bucket, not a queue.
	push(1, 300_000, 300_000)
	if got := s.MaxBucketOccupancy(); got != 1 {
		t.Fatalf("MaxBucketOccupancy = %d after revert, want 1 (record in a bucket)", got)
	}
	if got := s.Stats().HeapFallbacks; got != 1 {
		t.Fatalf("HeapFallbacks grew to %d after revert, want still 1", got)
	}
	s.Flush(emit)
}

// TestBucketBoundaryTimestamps pins the aging gate and bucket-edge
// placement for both cores: a record emits exactly when now − TS == T,
// not one microsecond sooner, and records landing exactly on bucket
// edges (ts == frontier, ts == frontier + T) neither vanish nor reorder.
func TestBucketBoundaryTimestamps(t *testing.T) {
	for _, core := range []CoreKind{CoreCalendar, CoreHeap} {
		core := core
		t.Run(core.String(), func(t *testing.T) {
			const T = 640 // bucket width calMinWidth under the calendar core
			s := New(Config{InitialT: T, Grow: GrowFixed, Core: core})
			s.Push(1, rec(10_000), 10_000)
			n := s.Extract(10_000+T-1, func(record.Record) {})
			if n != 0 {
				t.Fatalf("record emitted at age T-1")
			}
			n = s.Extract(10_000+T, func(record.Record) {})
			if n != 1 {
				t.Fatalf("record not emitted at age exactly T")
			}

			// Edge placements relative to the first push that anchors the
			// ring: exactly on the frontier timestamp, exactly one window
			// later, and every bucket-width multiple in between.
			var want []int64
			s.Push(1, rec(20_000), 20_000)
			want = append(want, 20_000)
			for i, ts := range []int64{20_000 + T, 20_000 + T/2, 20_001, 20_000 + T - 1} {
				// One source per edge timestamp: per-source FIFO order is a
				// standing contract, so a single source pushing out of order
				// would (correctly) emit in push order, not TS order.
				s.Push(2+int32(i), rec(ts), 20_000)
				want = append(want, ts)
			}
			var got []int64
			s.Flush(func(r record.Record) { got = append(got, r.TS) })
			if len(got) != len(want) {
				t.Fatalf("flushed %d records, want %d", len(got), len(want))
			}
			prev := int64(-1)
			for _, ts := range got {
				if ts < prev {
					t.Fatalf("flush order not monotone: %v", got)
				}
				prev = ts
			}
		})
	}
}

// TestAllocsSteadyStateBothCores pins AllocsPerRun == 0 on the sorter
// hot path for each core explicitly (the default-config alloc tests
// exercise whatever the default core is; this one outlives any future
// default flip), bare and sharded.
func TestAllocsSteadyStateBothCores(t *testing.T) {
	for _, core := range []CoreKind{CoreCalendar, CoreHeap} {
		core := core
		t.Run("sorter/"+core.String(), func(t *testing.T) {
			s := New(Config{InitialT: 10, Grow: GrowFixed, Core: core})
			emit := func(record.Record) {}
			now := int64(0)
			warmA, warmB := rec(0), rec(1)
			for i := 0; i < 4096; i++ {
				now += 100
				warmA.SetTS(now)
				warmB.SetTS(now + 1)
				s.Push(1, warmA, now)
				s.Push(2, warmB, now)
				s.Extract(now, emit)
			}
			s.Flush(emit)
			allocs := testing.AllocsPerRun(1000, func() {
				now += 100
				warmA.SetTS(now)
				warmB.SetTS(now + 1)
				s.Push(1, warmA, now)
				s.Push(2, warmB, now)
				s.Extract(now, emit)
			})
			if allocs != 0 {
				t.Fatalf("steady-state push/extract allocates %.1f times, want 0", allocs)
			}
		})
		t.Run("sharded/"+core.String(), func(t *testing.T) {
			sh := NewSharded(Config{InitialT: 10, Grow: GrowFixed, Core: core}, 4)
			emit := func(record.Record) {}
			const sources = 8
			now := int64(0)
			warm := make([]record.Record, sources)
			for i := range warm {
				warm[i] = rec(0)
			}
			for i := 0; i < 4096; i++ {
				now += 100
				for s := int32(1); s <= sources; s++ {
					warm[s-1].SetTS(now + int64(s))
					sh.Push(s, warm[s-1], now)
				}
				sh.Extract(now, emit)
			}
			sh.Flush(emit)
			allocs := testing.AllocsPerRun(1000, func() {
				now += 100
				for s := int32(1); s <= sources; s++ {
					warm[s-1].SetTS(now + int64(s))
					sh.Push(s, warm[s-1], now)
				}
				sh.Extract(now, emit)
			})
			if allocs != 0 {
				t.Fatalf("steady-state sharded push/extract allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// FuzzSorterCores feeds arbitrary byte-derived schedules — including
// per-source timestamp regressions, which violate the transport
// invariant on purpose — to both cores and requires identical emission
// sequences. The fallback makes the identity unconditional, so the fuzz
// target needs no input constraints at all.
func FuzzSorterCores(f *testing.F) {
	// Seed: a calm in-order stream.
	f.Add([]byte{0, 10, 5, 1, 10, 5, 0, 10, 5, 1, 10, 5})
	// Seed: bucket-boundary timestamps — deltas of exactly 10 (one bucket
	// width at T=640) and arrivals at exactly age T, so records sit on
	// ts == frontier and age out at now − TS == T precisely.
	f.Add([]byte{0, 64 + 10, 128, 0, 64 + 10, 128, 1, 64, 128, 0, 64 + 10, 128})
	// Seed: a regression (delta byte < 64 walks TS backward) mid-stream —
	// the same-source monotonicity fallback.
	f.Add([]byte{0, 100, 5, 0, 3, 5, 0, 100, 5})
	// Seed: a far tachyon (maximum backward step) behind the frontier.
	f.Add([]byte{0, 255, 0, 1, 0, 0, 0, 255, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 600 {
			data = data[:600]
		}
		var m streamModel
		ts := map[int32]int64{1: 10_000, 2: 10_000, 3: 10_000}
		now := int64(10_000)
		for i := 0; i+2 < len(data); i += 3 {
			src := int32(data[i]%3) + 1
			// Delta byte is biased: values ≥ 64 advance the source's clock,
			// values below walk it backward (tachyons/regressions).
			ts[src] += int64(data[i+1]) - 64
			now += int64(data[i+2]) / 4
			r := rec(ts[src])
			r.Fields = append(r.Fields, record.U64Val(uint64(i+1)))
			m.arrivals = append(m.arrivals, arrival{src, r, now})
		}
		if len(m.arrivals) == 0 {
			t.Skip("no arrivals decoded")
		}
		cal, hp := runCores(m, Config{InitialT: 640, Grow: GrowFixed}, 0)
		diffEmissions(t, cal, hp)
		calSh, hpSh := runCores(m, Config{InitialT: 640, Grow: GrowFixed}, 4)
		diffEmissions(t, calSh, hpSh)
	})
}
