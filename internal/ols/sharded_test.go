package ols

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"brisk/internal/record"
)

// shardCounts are the fan-outs the property tests generalize over, per
// the acceptance bar: 1 must match the single sorter, {2,4,8} must keep
// the global contract.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedSingleShardMatchesSorter: with one shard, Sharded is the
// same code path as a bare Sorter — identical emission sequence
// (source, timestamp, identity) on an adversarial schedule.
func TestShardedSingleShardMatchesSorter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, _ := genAdversarial(rng, 5, 80)
	cfg := Config{InitialT: 300, Grow: GrowToLateness, HalfLife: 5000}

	type ev struct {
		src int32
		ts  int64
		id  uint64
	}
	run := func(push func(int32, record.Record, int64), extract func(int64, func(record.Record)) int, flush func(func(record.Record)) int) []ev {
		var out []ev
		emit := func(r record.Record) {
			out = append(out, ev{r.Node, r.TS, r.Fields[len(r.Fields)-1].Uint()})
		}
		for _, a := range m.arrivals {
			push(a.src, a.r, a.at)
			extract(a.at, emit)
		}
		flush(emit)
		return out
	}

	s := New(cfg)
	want := run(s.Push, s.Extract, s.Flush)
	sh := NewSharded(cfg, 1)
	got := run(sh.Push, sh.Extract, sh.Flush)

	if len(got) != len(want) {
		t.Fatalf("emitted %d records, single sorter emitted %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emission %d diverges: sharded %+v, sorter %+v", i, got[i], want[i])
		}
	}
}

// TestShardedPropertyMultisetConserved: for every shard count, under
// stragglers and tachyons and any growth policy, the sharded sorter
// neither loses nor duplicates a record and per-source FIFO order
// survives the shard partition and the k-way merge.
func TestShardedPropertyMultisetConserved(t *testing.T) {
	for _, shards := range shardCounts {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := func(seed int64, policyPick uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				m, in := genAdversarial(rng, 1+rng.Intn(6), 40+rng.Intn(60))
				policy := []GrowPolicy{GrowToLateness, GrowDouble, GrowFixed}[int(policyPick)%3]
				sh := NewSharded(Config{InitialT: 1 + rng.Int63n(500), Grow: policy,
					HalfLife: rng.Int63n(10_000)}, shards)
				out := make(map[uint64]int, len(in))
				perSourceLast := map[int32]int64{}
				emit := func(r record.Record) {
					id := r.Fields[len(r.Fields)-1].Uint()
					out[key(r.Node, r.TS, id)]++
					if last, ok := perSourceLast[r.Node]; ok && r.TS < last {
						t.Errorf("per-source order violated for source %d", r.Node)
					}
					perSourceLast[r.Node] = r.TS
				}
				for _, a := range m.arrivals {
					sh.Push(a.src, a.r, a.at)
					sh.Extract(a.at, emit)
				}
				sh.Flush(emit)
				if len(out) != len(in) {
					return false
				}
				for k, n := range in {
					if out[k] != n {
						t.Errorf("key %x: in %d, out %d (lost or duplicated)", k, n, out[k])
						return false
					}
				}
				st := sh.Stats()
				if st.Pushed != uint64(len(m.arrivals)) || st.Emitted != uint64(len(m.arrivals)) {
					t.Errorf("stats: pushed %d emitted %d, want %d", st.Pushed, st.Emitted, len(m.arrivals))
					return false
				}
				return sh.Buffered() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedPropertyMonotoneWhenTCovers: when the time frame covers
// the adversarial lateness, the merged emission stream is globally
// non-decreasing in timestamp for every shard count — the tentpole
// guarantee that partitioning the heap does not break the ordering
// contract — and the cross-shard frontier records no inversions.
func TestShardedPropertyMonotoneWhenTCovers(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				m, in := genAdversarial(rng, 1+rng.Intn(5), 30+rng.Intn(60))
				sh := NewSharded(Config{InitialT: m.maxLate + 1, Grow: GrowFixed}, shards)
				var lastTS int64
				n := 0
				ok := true
				emit := func(r record.Record) {
					if n > 0 && r.TS < lastTS {
						ok = false
					}
					lastTS = r.TS
					n++
				}
				for _, a := range m.arrivals {
					sh.Push(a.src, a.r, a.at)
					sh.Extract(a.at, emit)
				}
				sh.Flush(emit)
				return ok && n == len(in) && sh.Stats().Inversions == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedMoreShardsThanSources: shard count exceeding the source
// count leaves some shards permanently empty; the merge must still
// drain the live ones in order.
func TestShardedMoreShardsThanSources(t *testing.T) {
	sh := NewSharded(Config{InitialT: 10, Grow: GrowFixed}, 8)
	sh.Push(1, rec(100), 100)
	sh.Push(2, rec(50), 100)
	sh.Push(1, rec(200), 200)
	var out []int64
	sh.Extract(1000, func(r record.Record) { out = append(out, r.TS) })
	want := []int64{50, 100, 200}
	if len(out) != len(want) {
		t.Fatalf("emitted %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("emitted %v, want %v", out, want)
		}
	}
	if sh.Buffered() != 0 {
		t.Fatalf("buffered %d after drain", sh.Buffered())
	}
}

// TestShardedTimestampTiesDeterministic: equal timestamps across shards
// merge in shard-index order, so repeated runs produce one byte-stable
// stream.
func TestShardedTimestampTiesDeterministic(t *testing.T) {
	var first []int32
	for trial := 0; trial < 5; trial++ {
		sh := NewSharded(Config{InitialT: 1, Grow: GrowFixed}, 4)
		for src := int32(1); src <= 8; src++ {
			r := rec(500)
			sh.Push(src, r, 500)
		}
		var order []int32
		sh.Flush(func(r record.Record) { order = append(order, r.Node) })
		if trial == 0 {
			first = order
			continue
		}
		for i := range first {
			if order[i] != first[i] {
				t.Fatalf("trial %d tie order %v, first trial %v", trial, order, first)
			}
		}
	}
}

// TestShardedAggregateMaxBuffered: MaxBuffered bounds the *aggregate*
// occupancy across shards, not each shard separately, and the drops are
// accounted and harvestable exactly as with one sorter.
func TestShardedAggregateMaxBuffered(t *testing.T) {
	sh := NewSharded(Config{InitialT: 10, MaxBuffered: 100, Grow: GrowFixed}, 4)
	for i := 0; i < 200; i++ {
		src := int32(i%8 + 1)
		sh.Push(src, rec(int64(1000+i)), 0) // now=0: nothing is emittable
	}
	if got := sh.Buffered(); got != 100 {
		t.Fatalf("buffered %d, want the global bound 100", got)
	}
	st := sh.Stats()
	if st.DroppedFull != 100 {
		t.Fatalf("dropped %d, want 100", st.DroppedFull)
	}
	var harvested uint64
	sh.TakeLosses(func(src int32, count uint64, firstTS, lastTS int64) {
		harvested += count
		if firstTS > lastTS {
			t.Errorf("source %d: loss range [%d,%d] inverted", src, firstTS, lastTS)
		}
	})
	if harvested != 100 {
		t.Fatalf("harvested %d losses, want 100", harvested)
	}
	// Loss markers stay exempt from the bound even at full aggregate.
	marker := record.NewLossMarker(5, 10, 20)
	sh.Push(3, marker, 0)
	if got := sh.Buffered(); got != 101 {
		t.Fatalf("buffered %d after marker push, want 101", got)
	}
}

// TestShardedConcurrentConservation: the concurrency contract under the
// race detector — one pusher goroutine per source against a live merger
// — still conserves the multiset and per-source FIFO order for every
// shard count.
func TestShardedConcurrentConservation(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const sources = 8
			const perSource = 400
			sh := NewSharded(Config{InitialT: 50, Grow: GrowToLateness, HalfLife: 2000}, shards)

			var clock atomic.Int64
			var wg sync.WaitGroup
			for src := int32(1); src <= sources; src++ {
				wg.Add(1)
				go func(src int32) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(src)))
					ts := int64(0)
					for i := 0; i < perSource; i++ {
						ts += 1 + rng.Int63n(50)
						r := rec(ts)
						r.Fields = append(r.Fields, record.U64Val(uint64(src)<<32|uint64(i)))
						at := ts + rng.Int63n(200)
						for {
							prev := clock.Load()
							if at <= prev || clock.CompareAndSwap(prev, at) {
								break
							}
						}
						sh.Push(src, r, at)
					}
				}(src)
			}

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()

			out := make(map[uint64]int, sources*perSource)
			perSourceLast := map[int32]int64{}
			emit := func(r record.Record) {
				id := r.Fields[len(r.Fields)-1].Uint()
				out[key(r.Node, r.TS, id)]++
				if last, ok := perSourceLast[r.Node]; ok && r.TS < last {
					t.Errorf("per-source order violated for source %d", r.Node)
				}
				perSourceLast[r.Node] = r.TS
			}
			for {
				select {
				case <-done:
					sh.Flush(emit)
					if got, want := len(out), sources*perSource; got != want {
						t.Fatalf("distinct records out %d, want %d", got, want)
					}
					for k, n := range out {
						if n != 1 {
							t.Fatalf("key %x emitted %d times", k, n)
						}
					}
					if sh.Buffered() != 0 {
						t.Fatalf("buffered %d after flush", sh.Buffered())
					}
					st := sh.Stats()
					if st.Pushed != uint64(sources*perSource) || st.Emitted != st.Pushed {
						t.Fatalf("stats pushed %d emitted %d, want %d", st.Pushed, st.Emitted, sources*perSource)
					}
					return
				default:
					sh.Extract(clock.Load(), emit)
					time.Sleep(100 * time.Microsecond)
				}
			}
		})
	}
}

// TestAllocsShardedSteadyState pins the sharded sorter's steady-state
// zero-allocation contract: once queue slots, merge runs and the loser
// tree are warm, a push/extract/merge cycle allocates nothing — the
// Fields arrays circulate between shard queue slots and merge-run slots
// via extractSwap.
func TestAllocsShardedSteadyState(t *testing.T) {
	sh := NewSharded(Config{InitialT: 10, Grow: GrowFixed}, 4)
	emit := func(record.Record) {}
	const sources = 8
	now := int64(0)
	warm := make([]record.Record, sources)
	for i := range warm {
		warm[i] = rec(0)
	}
	for i := 0; i < 4096; i++ {
		now += 100
		for s := int32(1); s <= sources; s++ {
			warm[s-1].SetTS(now + int64(s))
			sh.Push(s, warm[s-1], now)
		}
		sh.Extract(now, emit)
	}
	sh.Flush(emit)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 100
		for s := int32(1); s <= sources; s++ {
			warm[s-1].SetTS(now + int64(s))
			sh.Push(s, warm[s-1], now)
		}
		sh.Extract(now, emit)
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded push/extract allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkShardedSorter measures the sorter stage alone — parallel
// per-source pushers against one merger — at increasing shard counts.
func BenchmarkShardedSorter(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const sources = 8
			sh := NewSharded(Config{InitialT: 1, Grow: GrowFixed}, shards)
			perSource := b.N/sources + 1
			protos := make([]record.Record, sources)
			for i := range protos {
				protos[i] = rec(0)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for src := int32(1); src <= sources; src++ {
				wg.Add(1)
				go func(src int32) {
					defer wg.Done()
					r := protos[src-1]
					for i := 0; i < perSource; i++ {
						ts := int64(i)*sources + int64(src)
						r.SetTS(ts)
						sh.Push(src, r, ts+1_000_000)
					}
				}(src)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			emit := func(record.Record) {}
			for {
				select {
				case <-done:
					sh.Flush(emit)
					wg.Wait()
					return
				default:
					sh.Extract(int64(perSource)*sources+2_000_000, emit)
				}
			}
		})
	}
}
