// Sharded parallel sorting: sources are partitioned across independent
// sorter shards — each with its own core (calendar bucket ring or heap,
// per Config.Core), adaptive time frame T and per-source bookkeeping —
// whose individually monotone outputs are recombined through a
// loser-tree k-way merge keyed by synchronized timestamps. The
// delay-window semantics only require a totally ordered emission, not a
// single ordering structure, so pushes into different shards can
// proceed in parallel while one merger drains them.
package ols

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"brisk/internal/record"
)

// Sharded partitions sources across n independent Sorters and merges
// their emissions into one timestamp-ordered stream.
//
// Concurrency contract: Push and PushBatch are safe to call from any
// number of goroutines (distinct sources contend only when they hash to
// the same shard). Extract, Flush, TakeLosses and DropsBySource must be
// called from a single merger goroutine. The read-only accessors
// (Buffered, Stats, TimeFrame, shard views) are safe from anywhere.
//
// With n == 1 every call delegates straight to the inner Sorter — same
// code path, same emission order, byte-identical output.
type Sharded struct {
	shards []*shard

	// agg is the aggregate occupancy across all shards. Every shard's
	// MaxBuffered check reads it (via occRef), so the bound stays a
	// global budget; the ISM's ack-gate hysteresis reads it too.
	agg atomic.Int64

	// Global emission frontier of the merged stream. Shards consult it
	// (via orderRef) for inversion detection, so a record that arrives
	// behind the merged output grows its shard's T even when its own
	// shard has emitted nothing newer.
	gLastTS  atomic.Int64
	gLastSrc atomic.Int32
	gEmitted atomic.Bool

	runs   []mergeRun // per-shard staging for the k-way merge
	lt     loserTree
	stalls atomic.Uint64 // Extract passes that emitted nothing while records were buffered
}

// shard pairs a Sorter with the lock that serializes pushes into it
// against the merger's extraction pass.
type shard struct {
	mu sync.Mutex
	s  *Sorter
}

// NewSharded returns a sharded sorter with n shards, each configured
// with cfg. n < 1 is treated as 1.
func NewSharded(cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	sh := &Sharded{shards: make([]*shard, n), runs: make([]mergeRun, n)}
	for i := range sh.shards {
		s := New(cfg)
		if n > 1 {
			s.orderRef = sh.frontier
			s.occRef = func() int { return int(sh.agg.Load()) }
		}
		sh.shards[i] = &shard{s: s}
	}
	return sh
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

func (sh *Sharded) frontier() (int64, int32, bool) {
	return sh.gLastTS.Load(), sh.gLastSrc.Load(), sh.gEmitted.Load()
}

// shardFor routes a source to its shard. All records from one source
// land in one shard, so per-source FIFO order is preserved.
func (sh *Sharded) shardFor(src int32) int {
	return int(uint32(src)) % len(sh.shards)
}

// Push enqueues one record from a source, as Sorter.Push.
func (sh *Sharded) Push(src int32, rec record.Record, now int64) {
	shd := sh.shards[sh.shardFor(src)]
	shd.mu.Lock()
	before := shd.s.buffered
	shd.s.Push(src, rec, now)
	sh.agg.Add(int64(shd.s.buffered - before))
	shd.mu.Unlock()
}

// PushBatch enqueues a decoded batch from one source, taking the shard
// lock once for the whole batch.
func (sh *Sharded) PushBatch(src int32, recs []record.Record, now int64) {
	if len(recs) == 0 {
		return
	}
	shd := sh.shards[sh.shardFor(src)]
	shd.mu.Lock()
	before := shd.s.buffered
	for i := range recs {
		shd.s.Push(src, recs[i], now)
	}
	sh.agg.Add(int64(shd.s.buffered - before))
	shd.mu.Unlock()
}

// PushMixed enqueues a decoded batch whose records carry their own
// origin in rec.Node — a relay-forwarded batch interleaving many
// sources. Records are routed shard-by-shard exactly as Push would route
// them individually, but the shard lock is taken once per consecutive
// same-shard run. Relative order within each source is preserved (the
// batch is scanned front to back), so per-source FIFO holds.
func (sh *Sharded) PushMixed(recs []record.Record, now int64) {
	for i := 0; i < len(recs); {
		si := sh.shardFor(recs[i].Node)
		j := i + 1
		for j < len(recs) && sh.shardFor(recs[j].Node) == si {
			j++
		}
		shd := sh.shards[si]
		shd.mu.Lock()
		before := shd.s.buffered
		for k := i; k < j; k++ {
			shd.s.Push(recs[k].Node, recs[k], now)
		}
		sh.agg.Add(int64(shd.s.buffered - before))
		shd.mu.Unlock()
		i = j
	}
}

// Extract emits, in merged timestamp order, every buffered record that
// has aged at least its shard's T. The same now is applied to every
// shard within the pass, which is what keeps the merged stream monotone
// whenever each T covers its sources' lateness: a record that could
// order before an already-merged one must have been at least as aged at
// the same instant, so it was extracted in the same or an earlier pass.
//
// The records passed to emit are valid only until the next Extract or
// Flush call (their Fields live in merge staging reused per pass);
// callers retaining them longer must record.Detach them.
func (sh *Sharded) Extract(now int64, emit func(record.Record)) int {
	if len(sh.shards) == 1 {
		shd := sh.shards[0]
		shd.mu.Lock()
		before := shd.s.buffered
		n := shd.s.Extract(now, emit)
		sh.agg.Add(int64(shd.s.buffered - before))
		shd.mu.Unlock()
		return n
	}
	for i, shd := range sh.shards {
		shd.mu.Lock()
		shd.s.decay(now)
		before := shd.s.buffered
		shd.s.extractSwap(now, &sh.runs[i])
		sh.agg.Add(int64(shd.s.buffered - before))
		shd.mu.Unlock()
	}
	n := sh.mergeRuns(emit)
	if n == 0 && sh.agg.Load() > 0 {
		sh.stalls.Add(1)
	}
	return n
}

// Flush emits everything still buffered, in merged order, ignoring T.
// Like Sorter.Flush it bypasses decay, so the learned time frames
// survive a mid-stream flush intact.
func (sh *Sharded) Flush(emit func(record.Record)) int {
	if len(sh.shards) == 1 {
		shd := sh.shards[0]
		shd.mu.Lock()
		before := shd.s.buffered
		n := shd.s.Flush(emit)
		sh.agg.Add(int64(shd.s.buffered - before))
		shd.mu.Unlock()
		return n
	}
	for i, shd := range sh.shards {
		shd.mu.Lock()
		before := shd.s.buffered
		shd.s.extractSwap(math.MaxInt64, &sh.runs[i])
		sh.agg.Add(int64(shd.s.buffered - before))
		shd.mu.Unlock()
	}
	return sh.mergeRuns(emit)
}

// mergeRuns drains the staged per-shard runs — each already in
// timestamp order — through the loser tree, emitting the global
// minimum-timestamp head until every run is exhausted. Runs alias no
// shard storage, so no shard lock is held while emit runs.
func (sh *Sharded) mergeRuns(emit func(record.Record)) int {
	k := len(sh.runs)
	sh.lt.build(k, sh.runWins)
	n := 0
	for {
		w := sh.lt.winner()
		if w < 0 {
			break
		}
		ru := &sh.runs[w]
		r := ru.head()
		if r == nil {
			break
		}
		sh.gLastTS.Store(r.TS)
		sh.gLastSrc.Store(r.Node)
		sh.gEmitted.Store(true)
		ru.next++
		emit(*r)
		n++
		sh.lt.adjust(w, sh.runWins)
	}
	for i := range sh.runs {
		sh.runs[i].reset()
	}
	return n
}

// runWins reports whether run a's head sorts before run b's head.
// Exhausted runs (and the -1 sentinel) always lose; timestamp ties
// break by shard index so the merge order is deterministic.
func (sh *Sharded) runWins(a, b int) bool {
	if a < 0 {
		return false
	}
	if b < 0 {
		return true
	}
	ra := sh.runs[a].head()
	rb := sh.runs[b].head()
	if ra == nil {
		return false
	}
	if rb == nil {
		return true
	}
	if ra.TS != rb.TS {
		return ra.TS < rb.TS
	}
	return a < b
}

// Buffered returns the aggregate number of records delayed in memory
// across all shards.
func (sh *Sharded) Buffered() int { return int(sh.agg.Load()) }

// MergeStalls counts Extract passes (with shards > 1) that emitted
// nothing while records were buffered — every shard's head still inside
// its delay window.
func (sh *Sharded) MergeStalls() uint64 { return sh.stalls.Load() }

// Stats aggregates the per-shard counters: sums for the flow counters,
// max for GrownTo, and a union of the per-source drop maps.
func (sh *Sharded) Stats() Stats {
	var st Stats
	for _, shd := range sh.shards {
		shd.mu.Lock()
		s := shd.s.Stats()
		shd.mu.Unlock()
		st.Pushed += s.Pushed
		st.Emitted += s.Emitted
		st.Inversions += s.Inversions
		st.DroppedFull += s.DroppedFull
		st.HeapFallbacks += s.HeapFallbacks
		st.CalendarRebuilds += s.CalendarRebuilds
		if s.GrownTo > st.GrownTo {
			st.GrownTo = s.GrownTo
		}
		for src, n := range s.SourceDrops {
			if st.SourceDrops == nil {
				st.SourceDrops = make(map[int32]uint64)
			}
			st.SourceDrops[src] += n
		}
	}
	return st
}

// TimeFrame returns the largest current time frame across shards — the
// bound on how long any record is delayed.
func (sh *Sharded) TimeFrame() int64 {
	var max int64
	for _, shd := range sh.shards {
		shd.mu.Lock()
		t := shd.s.TimeFrame()
		shd.mu.Unlock()
		if t > max {
			max = t
		}
	}
	return max
}

// MaxBucketOccupancy returns the live-record count of the fullest
// calendar bucket across all shards — the imbalance signal behind the
// per-shard heap fallback. Zero when every shard is on the heap (by
// configuration or fallback).
func (sh *Sharded) MaxBucketOccupancy() int {
	max := 0
	for _, shd := range sh.shards {
		shd.mu.Lock()
		occ := shd.s.MaxBucketOccupancy()
		shd.mu.Unlock()
		if occ > max {
			max = occ
		}
	}
	return max
}

// ShardStats returns shard i's counters.
func (sh *Sharded) ShardStats(i int) Stats {
	shd := sh.shards[i]
	shd.mu.Lock()
	defer shd.mu.Unlock()
	return shd.s.Stats()
}

// ShardTimeFrame returns shard i's current time frame T in µs.
func (sh *Sharded) ShardTimeFrame(i int) int64 {
	shd := sh.shards[i]
	shd.mu.Lock()
	defer shd.mu.Unlock()
	return shd.s.TimeFrame()
}

// ShardBuffered returns the number of records shard i has delayed.
func (sh *Sharded) ShardBuffered(i int) int {
	shd := sh.shards[i]
	shd.mu.Lock()
	defer shd.mu.Unlock()
	return shd.s.Buffered()
}

// BufferedBySource returns the number of records the given source has
// delayed in memory.
func (sh *Sharded) BufferedBySource(src int32) int {
	shd := sh.shards[sh.shardFor(src)]
	shd.mu.Lock()
	defer shd.mu.Unlock()
	return shd.s.BufferedBySource(src)
}

// TakeLosses drains every shard's per-source drop accumulators, as
// Sorter.TakeLosses. fn runs with the shard lock held.
func (sh *Sharded) TakeLosses(fn func(src int32, count uint64, firstTS, lastTS int64)) {
	for _, shd := range sh.shards {
		shd.mu.Lock()
		shd.s.TakeLosses(fn)
		shd.mu.Unlock()
	}
}

// DropsBySource calls fn for every source that has dropped records, as
// Sorter.DropsBySource. fn runs with the shard lock held.
func (sh *Sharded) DropsBySource(fn func(src int32, dropped uint64)) {
	for _, shd := range sh.shards {
		shd.mu.Lock()
		shd.s.DropsBySource(fn)
		shd.mu.Unlock()
	}
}

// NextDeadline returns the earliest manager time at which any shard's
// oldest buffered record becomes emittable, and false when nothing is
// buffered anywhere.
func (sh *Sharded) NextDeadline() (int64, bool) {
	var best int64
	ok := false
	for _, shd := range sh.shards {
		shd.mu.Lock()
		d, has := shd.s.NextDeadline()
		shd.mu.Unlock()
		if has && (!ok || d < best) {
			best, ok = d, true
		}
	}
	return best, ok
}

// extractSwap is extract for a staged shard: every aged record moves
// into dst owning its Fields array outright, and the vacated queue or
// bucket slot receives a recycled array from dst in exchange. The
// staged records therefore stay valid after the shard lock is released
// — a concurrent Push reusing the slot writes into the swapped-in
// spare, not into the array the merge is about to emit — while both
// shard and staging storage stay allocation-free in steady state (the
// arrays circulate between sorter slots and run slots). Like extract,
// it dispatches to the shard's live core.
func (s *Sorter) extractSwap(now int64, dst *mergeRun) int {
	if !s.onHeap {
		return s.calDrainSwap(now, dst)
	}
	n := s.extractSwapHeap(now, dst)
	s.maybeRevert()
	return n
}

// extractSwapHeap is extractSwap's heap-core loop.
func (s *Sorter) extractSwapHeap(now int64, dst *mergeRun) int {
	n := 0
	for len(s.h) > 0 {
		q := s.h[0]
		if now-q.head().TS < int64(s.t) {
			break
		}
		slot := q.head()
		rec := *slot
		slot.Fields = dst.put(rec)
		q.hd++
		if q.empty() {
			q.recs = q.recs[:0]
			q.hd = 0
			heap.Pop(&s.h)
		} else {
			heap.Fix(&s.h, 0)
		}
		q.buffered--
		s.buffered--
		s.lastTS = rec.TS
		s.lastSrc = q.src
		s.emitted = true
		s.stats.Emitted++
		n++
	}
	return n
}

// mergeRun is one shard's staging area for a merge pass: records in
// shard-emission (timestamp) order, consumed head-first by the loser
// tree. Slots are reused across passes, so the Fields arrays parked in
// them by previous passes are handed back to shard queue slots as the
// swap currency of extractSwap.
type mergeRun struct {
	recs []record.Record
	next int
}

// put appends r to the run, taking ownership of r.Fields, and returns
// the Fields array displaced from the reused slot for the caller to
// park in the queue slot r came from.
func (ru *mergeRun) put(r record.Record) []record.Value {
	if len(ru.recs) < cap(ru.recs) {
		ru.recs = ru.recs[:len(ru.recs)+1]
	} else {
		ru.recs = append(ru.recs, record.Record{})
	}
	slot := &ru.recs[len(ru.recs)-1]
	spare := slot.Fields[:0]
	*slot = r
	return spare
}

// head returns the next unconsumed record, or nil when the run is
// exhausted.
func (ru *mergeRun) head() *record.Record {
	if ru.next >= len(ru.recs) {
		return nil
	}
	return &ru.recs[ru.next]
}

// reset empties the run for the next pass, keeping slot storage (and
// the Fields arrays it holds) for reuse. The just-emitted records stay
// readable until the next pass overwrites them, which is the borrow
// window Extract documents.
func (ru *mergeRun) reset() { ru.recs = ru.recs[:0]; ru.next = 0 }

// loserTree is a tournament tree over k merge runs. node[0] holds the
// overall winner; node[1..k-1] hold the loser of the match played at
// that internal node. Leaf i's parent is node[(i+k)/2]. Replaying a
// single leaf-to-root path after the winner advances costs ⌈log₂ k⌉
// comparisons, against k−1 for rescanning heads.
type loserTree struct {
	k    int
	node []int
}

// build initializes the tree over k runs using wins(a, b) — "run a's
// head sorts before run b's" — seeding matches bottom-up.
func (t *loserTree) build(k int, wins func(a, b int) bool) {
	t.k = k
	if cap(t.node) < k {
		t.node = make([]int, k)
	}
	t.node = t.node[:k]
	for i := range t.node {
		t.node[i] = -1
	}
	for i := k - 1; i >= 0; i-- {
		t.seed(i, wins)
	}
}

// seed plays run r up the tree during build. The first run to reach an
// empty internal node parks there and waits for its opponent.
func (t *loserTree) seed(r int, wins func(a, b int) bool) {
	w := r
	for p := (r + t.k) / 2; p > 0; p /= 2 {
		if t.node[p] == -1 {
			t.node[p] = w
			return
		}
		if wins(t.node[p], w) {
			w, t.node[p] = t.node[p], w
		}
	}
	t.node[0] = w
}

// adjust replays the path from leaf r to the root after run r (the
// previous winner) advanced its head, restoring the loser-tree
// invariant.
func (t *loserTree) adjust(r int, wins func(a, b int) bool) {
	w := r
	for p := (r + t.k) / 2; p > 0; p /= 2 {
		if wins(t.node[p], w) {
			w, t.node[p] = t.node[p], w
		}
	}
	t.node[0] = w
}

// winner returns the run index holding the global minimum head, or -1.
func (t *loserTree) winner() int { return t.node[0] }
