package ols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brisk/internal/record"
)

// streamModel is a randomized multi-source arrival schedule that respects
// the transport invariant (per-source delivery is in creation order).
type streamModel struct {
	arrivals []arrival
	maxLate  int64
}

// genStream derives a schedule from quick's random values.
func genStream(rng *rand.Rand, sources, perSource int, maxDelay int64) streamModel {
	var m streamModel
	for src := int32(1); src <= int32(sources); src++ {
		ts := int64(0)
		prevAt := int64(0)
		for i := 0; i < perSource; i++ {
			ts += 1 + rng.Int63n(100)
			at := ts + rng.Int63n(maxDelay+1)
			if at < prevAt {
				at = prevAt
			}
			prevAt = at
			if late := at - ts; late > m.maxLate {
				m.maxLate = late
			}
			m.arrivals = append(m.arrivals, arrival{src, rec(ts), at})
		}
	}
	sortByAt(m.arrivals)
	return m
}

// TestPropertySortedWhenTCoversLateness: for any schedule whose maximum
// lateness is at most T, the sorter's output is globally non-decreasing
// in timestamp and nothing is lost.
func TestPropertySortedWhenTCoversLateness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxDelay := 1 + rng.Int63n(2000)
		m := genStream(rng, 1+rng.Intn(6), 50+rng.Intn(100), maxDelay)
		s := New(Config{InitialT: m.maxLate + 1, Grow: GrowFixed})
		var out []int64
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, func(r record.Record) { out = append(out, r.TS) })
		}
		s.Flush(func(r record.Record) { out = append(out, r.TS) })
		if len(out) != len(m.arrivals) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNothingLostAnyPolicy: whatever the policy and schedule, all
// pushed records are eventually emitted exactly once (no duplication, no
// loss) and per-source order is preserved.
func TestPropertyNothingLostAnyPolicy(t *testing.T) {
	f := func(seed int64, policyPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 1+rng.Intn(5), 30+rng.Intn(80), 1+rng.Int63n(5000))
		policy := []GrowPolicy{GrowToLateness, GrowDouble, GrowFixed}[int(policyPick)%3]
		s := New(Config{InitialT: 1 + rng.Int63n(500), Grow: policy,
			HalfLife: rng.Int63n(10_000)})
		perSourceLast := map[int32]int64{}
		count := 0
		check := func(r record.Record) {
			count++
			if last, ok := perSourceLast[r.Node]; ok && r.TS < last {
				t.Errorf("per-source order violated for %d", r.Node)
			}
			perSourceLast[r.Node] = r.TS
		}
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, check)
		}
		s.Flush(check)
		return count == len(m.arrivals) && s.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTimeFrameBounded: under any schedule T never exceeds MaxT
// and never decays below MinT.
func TestPropertyTimeFrameBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 3, 100, 50_000)
		cfg := Config{InitialT: 50, MinT: 10, MaxT: 5_000,
			HalfLife: 1000, Grow: GrowDouble}
		s := New(cfg)
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, func(record.Record) {})
			if tf := s.TimeFrame(); tf > cfg.MaxT || tf < cfg.MinT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEmittedOnlyWhenAged: no record is ever emitted younger than
// the time frame in force at extraction (latency floor is honoured).
func TestPropertyEmittedOnlyWhenAged(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 4, 60, 1000)
		s := New(Config{InitialT: 700, Grow: GrowFixed})
		ok := true
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			now := a.at
			s.Extract(now, func(r record.Record) {
				if now-r.TS < 700 {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
