package ols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brisk/internal/record"
)

// streamModel is a randomized multi-source arrival schedule that respects
// the transport invariant (per-source delivery is in creation order).
type streamModel struct {
	arrivals []arrival
	maxLate  int64
}

// genStream derives a schedule from quick's random values.
func genStream(rng *rand.Rand, sources, perSource int, maxDelay int64) streamModel {
	var m streamModel
	for src := int32(1); src <= int32(sources); src++ {
		ts := int64(0)
		prevAt := int64(0)
		for i := 0; i < perSource; i++ {
			ts += 1 + rng.Int63n(100)
			at := ts + rng.Int63n(maxDelay+1)
			if at < prevAt {
				at = prevAt
			}
			prevAt = at
			if late := at - ts; late > m.maxLate {
				m.maxLate = late
			}
			m.arrivals = append(m.arrivals, arrival{src, rec(ts), at})
		}
	}
	sortByAt(m.arrivals)
	return m
}

// TestPropertySortedWhenTCoversLateness: for any schedule whose maximum
// lateness is at most T, the sorter's output is globally non-decreasing
// in timestamp and nothing is lost.
func TestPropertySortedWhenTCoversLateness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		maxDelay := 1 + rng.Int63n(2000)
		m := genStream(rng, 1+rng.Intn(6), 50+rng.Intn(100), maxDelay)
		s := New(Config{InitialT: m.maxLate + 1, Grow: GrowFixed})
		var out []int64
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, func(r record.Record) { out = append(out, r.TS) })
		}
		s.Flush(func(r record.Record) { out = append(out, r.TS) })
		if len(out) != len(m.arrivals) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNothingLostAnyPolicy: whatever the policy and schedule, all
// pushed records are eventually emitted exactly once (no duplication, no
// loss) and per-source order is preserved.
func TestPropertyNothingLostAnyPolicy(t *testing.T) {
	f := func(seed int64, policyPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 1+rng.Intn(5), 30+rng.Intn(80), 1+rng.Int63n(5000))
		policy := []GrowPolicy{GrowToLateness, GrowDouble, GrowFixed}[int(policyPick)%3]
		s := New(Config{InitialT: 1 + rng.Int63n(500), Grow: policy,
			HalfLife: rng.Int63n(10_000)})
		perSourceLast := map[int32]int64{}
		count := 0
		check := func(r record.Record) {
			count++
			if last, ok := perSourceLast[r.Node]; ok && r.TS < last {
				t.Errorf("per-source order violated for %d", r.Node)
			}
			perSourceLast[r.Node] = r.TS
		}
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, check)
		}
		s.Flush(check)
		return count == len(m.arrivals) && s.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTimeFrameBounded: under any schedule T never exceeds MaxT
// and never decays below MinT.
func TestPropertyTimeFrameBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 3, 100, 50_000)
		cfg := Config{InitialT: 50, MinT: 10, MaxT: 5_000,
			HalfLife: 1000, Grow: GrowDouble}
		s := New(cfg)
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, func(record.Record) {})
			if tf := s.TimeFrame(); tf > cfg.MaxT || tf < cfg.MinT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEmittedOnlyWhenAged: no record is ever emitted younger than
// the time frame in force at extraction (latency floor is honoured).
func TestPropertyEmittedOnlyWhenAged(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genStream(rng, 4, 60, 1000)
		s := New(Config{InitialT: 700, Grow: GrowFixed})
		ok := true
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			now := a.at
			s.Extract(now, func(r record.Record) {
				if now-r.TS < 700 {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// adversarialStream builds on genStream's random schedules and injects the
// arrivals that defeat naive sorters: stragglers delayed far beyond the
// schedule's bounded skew, and tachyon-style records whose timestamps sit
// in the future of their own arrival (a slave clock running fast). Each
// record carries a unique identity field so conservation can be checked as
// a multiset, not just a count.
func genAdversarial(rng *rand.Rand, sources, perSource int) (streamModel, map[uint64]int) {
	m := genStream(rng, sources, perSource, 1+rng.Int63n(1500))
	// Stragglers: a handful of records arrive much later than any skew
	// bound promised (their source stalls, then floods).
	for i := range m.arrivals {
		if rng.Intn(20) == 0 {
			m.arrivals[i].at += 10_000 + rng.Int63n(50_000)
			if late := m.arrivals[i].at - m.arrivals[i].r.TS; late > m.maxLate {
				m.maxLate = late
			}
		}
	}
	// Tachyons: some records are stamped ahead of the manager clock at
	// arrival time. Keep per-source TS monotone (the transport invariant)
	// by pushing the whole suffix of that source forward.
	for src := int32(1); src <= int32(sources); src++ {
		if rng.Intn(2) == 0 {
			continue
		}
		bump := int64(0)
		for i := range m.arrivals {
			if m.arrivals[i].src != src {
				continue
			}
			if bump == 0 && rng.Intn(perSource/2+1) == 0 {
				bump = 5_000 + rng.Int63n(20_000)
			}
			m.arrivals[i].r.SetTS(m.arrivals[i].r.TS + bump)
		}
	}
	// Re-establish per-source arrival order, then global arrival order,
	// and recompute the true lateness bound afterwards (the fixup can only
	// delay arrivals, never hasten them).
	last := map[int32]int64{}
	m.maxLate = 0
	for i := range m.arrivals {
		if m.arrivals[i].at < last[m.arrivals[i].src] {
			m.arrivals[i].at = last[m.arrivals[i].src]
		}
		last[m.arrivals[i].src] = m.arrivals[i].at
		if late := m.arrivals[i].at - m.arrivals[i].r.TS; late > m.maxLate {
			m.maxLate = late
		}
	}
	sortByAt(m.arrivals)
	// Stamp identities and build the input multiset.
	in := make(map[uint64]int, len(m.arrivals))
	for i := range m.arrivals {
		id := uint64(i + 1)
		m.arrivals[i].r.Fields = append(m.arrivals[i].r.Fields, record.U64Val(id))
		in[key(m.arrivals[i].src, m.arrivals[i].r.TS, id)]++
	}
	return m, in
}

func key(src int32, ts int64, id uint64) uint64 {
	return uint64(src)<<56 ^ uint64(ts)<<16 ^ id
}

// TestPropertyAdversarialMultisetConserved: under stragglers and tachyons,
// whatever the policy, the sorter neither loses nor duplicates a record —
// output is multiset-equal to input (source, timestamp, and identity all
// included in the key) — and per-source FIFO order survives.
func TestPropertyAdversarialMultisetConserved(t *testing.T) {
	f := func(seed int64, policyPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, in := genAdversarial(rng, 1+rng.Intn(6), 40+rng.Intn(80))
		policy := []GrowPolicy{GrowToLateness, GrowDouble, GrowFixed}[int(policyPick)%3]
		s := New(Config{InitialT: 1 + rng.Int63n(500), Grow: policy,
			HalfLife: rng.Int63n(10_000)})
		out := make(map[uint64]int, len(in))
		perSourceLast := map[int32]int64{}
		emit := func(r record.Record) {
			id := r.Fields[len(r.Fields)-1].Uint()
			out[key(r.Node, r.TS, id)]++
			if last, ok := perSourceLast[r.Node]; ok && r.TS < last {
				t.Errorf("per-source order violated for source %d", r.Node)
			}
			perSourceLast[r.Node] = r.TS
		}
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, emit)
		}
		s.Flush(emit)
		if len(out) != len(in) {
			return false
		}
		for k, n := range in {
			if out[k] != n {
				t.Errorf("key %x: in %d, out %d (lost or duplicated)", k, n, out[k])
				return false
			}
		}
		return s.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAdversarialMonotoneWhenTCovers: when the configured time
// frame covers even the adversarial lateness, the emission stream is
// globally non-decreasing in timestamp — stragglers and tachyons included.
func TestPropertyAdversarialMonotoneWhenTCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, in := genAdversarial(rng, 1+rng.Intn(5), 30+rng.Intn(60))
		s := New(Config{InitialT: m.maxLate + 1, Grow: GrowFixed})
		var lastTS int64
		n := 0
		ok := true
		emit := func(r record.Record) {
			if n > 0 && r.TS < lastTS {
				ok = false
			}
			lastTS = r.TS
			n++
		}
		for _, a := range m.arrivals {
			s.Push(a.src, a.r, a.at)
			s.Extract(a.at, emit)
		}
		s.Flush(emit)
		return ok && n == len(in) && s.Stats().Inversions == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
