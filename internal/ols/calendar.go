// Calendar-queue sorter core: the default replacement for the binary
// heap inside each OLS shard. Records that live inside the delay window
// T arrive nearly sorted by construction (each source's stream is
// monotone, skew between sources is bounded by T), which a calendar
// queue turns into O(1) amortized work per record: a push lands in the
// flat bucket keyed by (TS − base) / width, and emission is an
// append-order scan of expired buckets. The comparison heap only earns
// its O(log n) when that structure breaks down, so it is retained as an
// automatic fallback (see fallbackToHeap) for the pathological cases —
// a source regressing its own timeline, tachyons landing further behind
// the ring than a re-anchor can reach, or occupancy collapsing into one
// bucket.
//
// Heap equivalence. The heap core emits the k-way merge of per-source
// FIFO queues ordered by (TS, Seq). Whenever every source's buffered
// records are TS-non-decreasing — the transport invariant: streams
// arrive in creation order over an in-order connection — that merge IS
// the global (TS, Seq) sort of the buffered set, which is exactly what
// the bucket scan emits (buckets partition the TS axis in increasing
// ranges; equal timestamps share a bucket and order by Seq, the same
// tie-break the heap uses). The calendar watches the invariant on every
// push (srcQueue.lastPushTS) and falls back to the heap before the
// first record that would break it, so the two cores are emission-
// identical on arbitrary input — the golden-trace and cross-core
// property tests assert byte equality, not mere equivalence.

package ols

import (
	"container/heap"
	"math/bits"

	"brisk/internal/record"
)

// Calendar geometry. The ring is a fixed power-of-two number of buckets
// whose width tracks the adaptive window T: at T/calWidthDiv per bucket
// the live window spans ~calWidthDiv buckets, leaving the rest of the
// ring as slack — ahead for sources racing past the frontier, behind
// (via re-anchoring) for stragglers — before a rebuild or fallback is
// needed.
const (
	// calBuckets is the ring size. Power of two so index masking is a
	// single AND.
	calBuckets = 256
	// calWidthDiv sets the target bucket width, T/calWidthDiv (rounded up
	// to a power of two, floored at calMinWidth).
	calWidthDiv = 64
	// calMinWidth floors the bucket width at 64 µs. Widths are always
	// powers of two so the per-push bucket index is a shift, not an int64
	// division, and the floor keeps dense streams packing many records per
	// bucket — the drain then runs as a tight scan of one slice instead of
	// paying ring bookkeeping per record. Width never affects what is
	// emitted (the aging gate is per record); only the constant factor.
	calMinWidth = 64
	// calHotBucket is the live-record count in a single bucket past which
	// occupancy imbalance triggers the heap fallback (only when that
	// bucket also holds the majority of all buffered records): a bucket
	// holding "everything" degenerates the per-bucket insertion sort
	// toward O(n²), while the heap handles the same set in O(log n).
	calHotBucket = 4096
)

// calendar is the bucket ring of one Sorter. buckets[cur] covers
// timestamps [base, base+width); offset k from cur covers
// [base+k·width, base+(k+1)·width). It is inert (buckets nil) until the
// first calendar-core insert, so heap-core sorters pay nothing for it.
type calendar struct {
	buckets []calBucket
	width   int64 // bucket width in µs; always 1 << shift
	shift   uint  // log2(width): bucket offsets divide by shifting
	base    int64 // lower timestamp edge of buckets[cur]
	cur     int   // ring index of the front (oldest) bucket
	maxOff  int   // furthest occupied bucket offset from cur
	count   int   // live records across all buckets
}

// calBucket is one timestamp slot of the ring: a flat slice of records
// plus the parallel source-queue pointers needed for per-source
// accounting at emission time. Slot storage is recycled exactly like
// srcQueue slots — a deep-copying append reuses the previous occupant's
// Fields array — so steady-state traffic allocates nothing.
type calBucket struct {
	recs []record.Record
	qs   []*srcQueue // qs[i] owns recs[i]; parallel to recs
	hd   int         // emitted prefix; non-zero only on the front bucket
	// dirty marks the live region recs[hd:] as not known to be
	// (TS, Seq)-sorted. Appends arrive in Seq order, so the region stays
	// sorted for free until a push lands behind the bucket's tail; the
	// sort is deferred until the bucket reaches the front of the drain.
	dirty bool
}

// live returns the number of unemitted records in the bucket.
func (b *calBucket) live() int { return len(b.recs) - b.hd }

// append deep-copies r into the tail slot (reusing the slot's previous
// Fields array, as srcQueue.push does) and records q as its owner.
func (b *calBucket) append(r record.Record, q *srcQueue) {
	if n := len(b.recs); n > b.hd && r.TS < b.recs[n-1].TS {
		b.dirty = true
	}
	if len(b.recs) < cap(b.recs) {
		b.recs = b.recs[:len(b.recs)+1]
	} else {
		b.recs = append(b.recs, record.Record{})
	}
	slot := &b.recs[len(b.recs)-1]
	fields := slot.Fields[:0]
	*slot = r
	slot.Fields = append(fields, r.Fields...)
	b.qs = append(b.qs[:len(b.recs)-1], q)
}

// take appends r moving ownership of r.Fields outright — the rebuild
// path, where r was lifted out of another bucket. The slot's previously
// parked array is dropped; rebuilds are rare and allowed to allocate.
func (b *calBucket) take(r record.Record, q *srcQueue) {
	if n := len(b.recs); n > b.hd && r.TS < b.recs[n-1].TS {
		b.dirty = true
	}
	if len(b.recs) < cap(b.recs) {
		b.recs = b.recs[:len(b.recs)+1]
	} else {
		b.recs = append(b.recs, record.Record{})
	}
	b.recs[len(b.recs)-1] = r
	b.qs = append(b.qs[:len(b.recs)-1], q)
}

// reset empties the bucket for reuse, keeping slot storage (and the
// Fields arrays parked in it) so later appends recycle rather than
// allocate.
func (b *calBucket) reset() {
	b.recs = b.recs[:0]
	b.qs = b.qs[:0]
	b.hd = 0
	b.dirty = false
}

// sortLive insertion-sorts the live region by (TS, Seq), moving the
// parallel qs entries with their records. Buckets are small when width
// tracks T, and appends are Seq-ordered already, so the common dirty
// bucket is nearly sorted — insertion sort's best case.
func (b *calBucket) sortLive() {
	for i := b.hd + 1; i < len(b.recs); i++ {
		r, q := b.recs[i], b.qs[i]
		j := i - 1
		for j >= b.hd && (b.recs[j].TS > r.TS || (b.recs[j].TS == r.TS && b.recs[j].Seq > r.Seq)) {
			b.recs[j+1], b.qs[j+1] = b.recs[j], b.qs[j]
			j--
		}
		b.recs[j+1], b.qs[j+1] = r, q
	}
	b.dirty = false
}

// oldest returns the minimum live timestamp, and false when the ring is
// empty. Read-only: the front bucket is scanned rather than sorted.
func (c *calendar) oldest() (int64, bool) {
	if c.count == 0 {
		return 0, false
	}
	for off := 0; off <= c.maxOff; off++ {
		b := &c.buckets[(c.cur+off)&(calBuckets-1)]
		if b.hd >= len(b.recs) {
			continue
		}
		min := b.recs[b.hd].TS
		for i := b.hd + 1; i < len(b.recs); i++ {
			if b.recs[i].TS < min {
				min = b.recs[i].TS
			}
		}
		return min, true
	}
	return 0, false
}

// calReinit re-centers the empty ring on ts. The bucket width chases
// the adaptive window's target T/calWidthDiv, but stickily: a width
// that rebuilds widened to fit the workload's real in-flight span
// decays only by half per drain-to-empty cycle, so a steady workload
// settles instead of rebuilding every cycle. Centering ts mid-ring
// leaves half the span behind the first record for stragglers and half
// ahead for the sources racing past it.
func (s *Sorter) calReinit(ts int64) {
	c := &s.cal
	if c.buckets == nil {
		c.buckets = make([]calBucket, calBuckets)
	}
	target := int64(s.t) / calWidthDiv
	if target < calMinWidth {
		target = calMinWidth
	}
	tshift := uint(bits.Len64(uint64(target - 1))) // ceil(log2), width pow2
	if c.shift < tshift {
		c.shift = tshift
	} else if c.shift > tshift {
		c.shift-- // decay one doubling per drain-to-empty cycle
	}
	c.width = 1 << c.shift
	c.base = ts - int64(calBuckets/2)*c.width
	c.maxOff = 0
}

// calInsert places rec into the bucket ring, returning false when the
// calendar cannot hold it without breaking heap equivalence — the
// caller must fall back to the heap core and push there instead. The
// three refusals, in check order: the record regresses its own source's
// buffered timeline (the sortedness the global bucket order relies on),
// it lands behind the ring further than a re-anchor can reach, or its
// bucket is pathologically hot (see calHotBucket).
func (s *Sorter) calInsert(q *srcQueue, rec record.Record) bool {
	c := &s.cal
	if c.count == 0 {
		s.calReinit(rec.TS)
	}
	if q.buffered > 0 && rec.TS < q.lastPushTS {
		return false
	}
	if rec.TS < c.base {
		// A straggler behind the ring: re-anchor backward when the
		// unoccupied tail leaves room — O(1), no records move, their ring
		// positions are preserved because cur and base shift together.
		k := int((c.base - rec.TS + c.width - 1) >> c.shift)
		if k > calBuckets-1-c.maxOff {
			return false
		}
		c.cur = (c.cur - k + calBuckets) & (calBuckets - 1)
		c.base -= int64(k) << c.shift
		c.maxOff += k
	}
	off := int((rec.TS - c.base) >> c.shift)
	if off >= calBuckets {
		s.calRebuild(rec.TS)
		off = int((rec.TS - c.base) >> c.shift)
	}
	b := &c.buckets[(c.cur+off)&(calBuckets-1)]
	if l := b.live(); l >= calHotBucket && (l+1)*2 > c.count+1 {
		return false
	}
	b.append(rec, q)
	if off > c.maxOff {
		c.maxOff = off
	}
	c.count++
	return true
}

// calRebuild widens the buckets until ts fits in the ring, re-bucketing
// every live record at the new width. O(count) struct moves and allowed
// to allocate — it is off the steady-state path, and the widened width
// is sticky across drain-to-empty cycles (calReinit), so a workload
// whose in-flight span exceeds T/calWidthDiv pays a few doublings once
// rather than a rebuild per cycle. Counted in Stats.CalendarRebuilds.
func (s *Sorter) calRebuild(ts int64) {
	c := &s.cal
	s.stats.CalendarRebuilds++
	need := ts - c.base
	sh := c.shift
	for int64(calBuckets-1)<<sh <= need {
		sh++
	}
	s.calRecs = s.calRecs[:0]
	s.calQs = s.calQs[:0]
	for off := 0; off <= c.maxOff; off++ {
		b := &c.buckets[(c.cur+off)&(calBuckets-1)]
		for i := b.hd; i < len(b.recs); i++ {
			s.calRecs = append(s.calRecs, b.recs[i])
			s.calQs = append(s.calQs, b.qs[i])
			// Ownership of the Fields array moves with the record; clear
			// the slot so the old bucket cannot park an alias that a later
			// append would overwrite in place.
			b.recs[i].Fields = nil
		}
		b.reset()
	}
	c.shift = sh
	c.width = 1 << sh
	c.cur = 0
	c.maxOff = 0
	// base is unchanged: it already sits at or below the oldest live
	// record, so every existing offset shrinks into range.
	for i, r := range s.calRecs {
		off := int((r.TS - c.base) >> c.shift)
		c.buckets[off].take(r, s.calQs[i])
		if off > c.maxOff {
			c.maxOff = off
		}
	}
	s.calRecs = s.calRecs[:0]
	s.calQs = s.calQs[:0]
}

// calAdvance retires the (drained) front bucket: the ring rotates one
// position and base moves up one width.
func (s *Sorter) calAdvance() {
	c := &s.cal
	c.cur = (c.cur + 1) & (calBuckets - 1)
	c.base += c.width
	if c.maxOff > 0 {
		c.maxOff--
	}
}

// calDrain is extract for the calendar core: an append-order scan of
// expired buckets, emitting each aged record (now − TS ≥ T) in
// (TS, Seq) order and stopping at the first record still inside the
// window. Identical gate, identical order, identical borrow contract to
// extractHeap.
func (s *Sorter) calDrain(now int64, emit func(record.Record)) int {
	c := &s.cal
	n := 0
	for c.count > 0 {
		b := &c.buckets[c.cur]
		if b.hd >= len(b.recs) {
			b.reset()
			s.calAdvance()
			continue
		}
		if b.dirty {
			b.sortLive()
		}
		for b.hd < len(b.recs) {
			r := &b.recs[b.hd]
			if now-r.TS < int64(s.t) {
				return n
			}
			q := b.qs[b.hd]
			b.hd++
			c.count--
			q.buffered--
			s.buffered--
			s.lastTS = r.TS
			s.lastSrc = q.src
			s.emitted = true
			s.stats.Emitted++
			emit(*r)
			n++
		}
		b.reset()
		s.calAdvance()
	}
	return n
}

// calDrainSwap is calDrain for a staged shard (see extractSwap): each
// emitted record moves into dst owning its Fields array, and the
// vacated bucket slot receives a recycled spare in exchange, keeping
// both sides allocation-free.
func (s *Sorter) calDrainSwap(now int64, dst *mergeRun) int {
	c := &s.cal
	n := 0
	for c.count > 0 {
		b := &c.buckets[c.cur]
		if b.hd >= len(b.recs) {
			b.reset()
			s.calAdvance()
			continue
		}
		if b.dirty {
			b.sortLive()
		}
		for b.hd < len(b.recs) {
			slot := &b.recs[b.hd]
			if now-slot.TS < int64(s.t) {
				return n
			}
			q := b.qs[b.hd]
			rec := *slot
			slot.Fields = dst.put(rec)
			b.hd++
			c.count--
			q.buffered--
			s.buffered--
			s.lastTS = rec.TS
			s.lastSrc = q.src
			s.emitted = true
			s.stats.Emitted++
			n++
		}
		b.reset()
		s.calAdvance()
	}
	return n
}

// fallbackToHeap migrates every live record out of the bucket ring into
// its source's FIFO queue and rebuilds the heap over the non-empty
// queues, switching the sorter to the heap core. Migration preserves
// per-source Seq order — bucket ranges increase with the scan, and
// within a bucket both the sorted and the append order restrict to Seq
// order per source — so the rebuilt queues are exactly what an
// always-heap run would hold, and emission continues byte-identically.
// The sorter returns to the calendar once it drains empty (maybeRevert).
func (s *Sorter) fallbackToHeap() {
	s.stats.HeapFallbacks++
	c := &s.cal
	for off := 0; off <= c.maxOff && c.count > 0; off++ {
		b := &c.buckets[(c.cur+off)&(calBuckets-1)]
		for i := b.hd; i < len(b.recs); i++ {
			b.qs[i].push(b.recs[i])
			c.count--
		}
		b.reset()
	}
	c.count = 0
	c.maxOff = 0
	s.h = s.h[:0]
	for _, q := range s.queues {
		if q.empty() {
			q.pos = -1
			continue
		}
		q.pos = len(s.h)
		s.h = append(s.h, q)
	}
	heap.Init(&s.h)
	s.onHeap = true
}

// maybeRevert returns a calendar-core sorter from the heap fallback
// once everything buffered has drained: both cores are indistinguishable
// from an empty state, so the switch cannot perturb emission order.
func (s *Sorter) maybeRevert() {
	if s.onHeap && s.cfg.Core == CoreCalendar && s.buffered == 0 {
		s.onHeap = false
	}
}

// MaxBucketOccupancy returns the live-record count of the fullest
// calendar bucket — the imbalance signal behind the heap fallback, and
// the value the brisk_ols_bucket_occupancy gauge exposes. Zero while
// the heap fallback is active (the ring is empty then) and for
// heap-core sorters.
func (s *Sorter) MaxBucketOccupancy() int {
	max := 0
	for i := range s.cal.buckets {
		if l := s.cal.buckets[i].live(); l > max {
			max = l
		}
	}
	return max
}
