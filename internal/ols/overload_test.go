package ols

import (
	"math/rand"
	"testing"

	"brisk/internal/record"
)

// srcRec builds a record whose payload identifies its source, so emitted
// records can be attributed back in conservation checks.
func srcRec(src int32, ts int64) record.Record {
	return record.New(1, record.TSVal(ts), record.I32Val(src))
}

// TestFlushDoesNotPoisonDecay is the regression test for Flush routing
// through Extract(math.MaxInt64, …): that path ran decay against a
// near-infinite elapsed time, collapsing the learned T to MinT and
// setting lastSeen so far in the future that every later Extract saw a
// negative interval and never decayed again. Flush must leave both T and
// the decay schedule exactly as it found them.
func TestFlushDoesNotPoisonDecay(t *testing.T) {
	s := New(Config{InitialT: 1000, HalfLife: 1000})
	s.Push(1, rec(50), 100)
	s.Extract(100, func(record.Record) {}) // lastSeen = 100
	before := s.TimeFrame()

	if n := s.Flush(func(record.Record) {}); n != 1 {
		t.Fatalf("Flush emitted %d, want 1", n)
	}
	if got := s.TimeFrame(); got != before {
		t.Fatalf("T after Flush = %d, want %d (Flush must not decay)", got, before)
	}

	// One half-life after the last Extract, T must have halved — proving
	// lastSeen survived the flush. With lastSeen poisoned to MaxInt64 the
	// elapsed time would be negative and T would never decay again (and,
	// pre-fix, would already have collapsed to 0 during the flush).
	s.Push(1, rec(200), 1100)
	s.Extract(1100, func(record.Record) {})
	want := before / 2
	if got := s.TimeFrame(); got < want-50 || got > want+50 {
		t.Fatalf("T one half-life after Flush = %d, want ≈%d", got, want)
	}
}

// TestFlushRepeatedlyKeepsT pins that back-to-back flushes (as the ISM
// does at shutdown and drain points) never touch the time frame.
func TestFlushRepeatedlyKeepsT(t *testing.T) {
	s := New(Config{InitialT: 700, HalfLife: 50})
	for i := 0; i < 5; i++ {
		s.Push(1, rec(int64(i)), int64(i))
		s.Flush(func(record.Record) {})
		if got := s.TimeFrame(); got != 700 {
			t.Fatalf("T after flush %d = %d, want 700", i, got)
		}
	}
}

// TestPerSourceDropAccounting pins that MaxBuffered drops are charged to
// the source that overflowed, not pooled into a blind total.
func TestPerSourceDropAccounting(t *testing.T) {
	s := New(Config{InitialT: 1_000_000, MaxBuffered: 4})
	for i := int64(0); i < 4; i++ {
		s.Push(1, srcRec(1, 10+i), 10)
	}
	// The sorter is full: these three, from source 2, all drop.
	for i := int64(0); i < 3; i++ {
		s.Push(2, srcRec(2, 20+i), 20)
	}
	st := s.Stats()
	if st.DroppedFull != 3 {
		t.Fatalf("DroppedFull = %d, want 3", st.DroppedFull)
	}
	if st.SourceDrops[2] != 3 || st.SourceDrops[1] != 0 {
		t.Fatalf("SourceDrops = %v, want 3 on source 2 only", st.SourceDrops)
	}
	if got := s.BufferedBySource(1); got != 4 {
		t.Fatalf("BufferedBySource(1) = %d, want 4", got)
	}
}

// TestSourceQuotaIsolatesNoisySource pins the per-source quota: a source
// over its quota drops while a quieter source is still admitted, even
// though the global bound has room.
func TestSourceQuotaIsolatesNoisySource(t *testing.T) {
	s := New(Config{InitialT: 1_000_000, MaxBuffered: 100, SourceQuota: 3})
	for i := int64(0); i < 10; i++ {
		s.Push(1, srcRec(1, i), 0)
	}
	s.Push(2, srcRec(2, 50), 0) // quieter source still fits
	st := s.Stats()
	if st.SourceDrops[1] != 7 {
		t.Fatalf("noisy source drops = %d, want 7", st.SourceDrops[1])
	}
	if st.SourceDrops[2] != 0 || s.BufferedBySource(2) != 1 {
		t.Fatalf("quiet source was penalized: drops=%d buffered=%d",
			st.SourceDrops[2], s.BufferedBySource(2))
	}
}

// TestTakeLossesCoversDrops pins the loss accumulator: drops harvest as
// per-source counts with a timestamp range covering the dropped records,
// and the accumulator resets after harvest.
func TestTakeLossesCoversDrops(t *testing.T) {
	s := New(Config{InitialT: 1_000_000, MaxBuffered: 2})
	s.Push(1, srcRec(1, 10), 10)
	s.Push(1, srcRec(1, 11), 11)
	s.Push(2, srcRec(2, 30), 30) // drop
	s.Push(2, srcRec(2, 90), 90) // drop
	got := map[int32][3]int64{}
	s.TakeLosses(func(src int32, count uint64, first, last int64) {
		got[src] = [3]int64{int64(count), first, last}
	})
	want, ok := got[2]
	if !ok || want[0] != 2 || want[1] != 30 || want[2] != 90 {
		t.Fatalf("TakeLosses = %v, want source 2: count 2, range [30,90]", got)
	}
	calls := 0
	s.TakeLosses(func(int32, uint64, int64, int64) { calls++ })
	if calls != 0 {
		t.Fatalf("second TakeLosses yielded %d sources, want 0 (reset)", calls)
	}
}

// TestLossMarkerExemptFromBounds pins that loss-marker records are
// admitted even when the sorter is at its bounds: a marker dropped for
// lack of space would silently erase the very testimony of a loss.
func TestLossMarkerExemptFromBounds(t *testing.T) {
	s := New(Config{InitialT: 1_000_000, MaxBuffered: 1, SourceQuota: 1})
	s.Push(1, srcRec(1, 10), 10)
	m := record.NewLossMarker(5, 20, 40)
	s.Push(1, m, 40)
	if got := s.Buffered(); got != 2 {
		t.Fatalf("Buffered = %d, want 2 (marker admitted past bounds)", got)
	}
	if st := s.Stats(); st.DroppedFull != 0 {
		t.Fatalf("marker was counted dropped: %+v", st)
	}
}

// TestPropertyConservationUnderBounds is the overload conservation law:
// under randomized Push/Extract/Flush with both MaxBuffered and a
// per-source quota active, every pushed record is exactly one of emitted,
// still buffered, or counted dropped — globally and per source.
func TestPropertyConservationUnderBounds(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		cfg := Config{
			InitialT:    int64(rng.Intn(500)),
			MaxBuffered: 2 + rng.Intn(16),
		}
		if rng.Intn(2) == 0 {
			cfg.SourceQuota = 1 + rng.Intn(6)
		}
		if rng.Intn(2) == 0 {
			cfg.HalfLife = int64(1 + rng.Intn(1000))
		}
		s := New(cfg)

		nSrc := 1 + rng.Intn(4)
		pushed := map[int32]uint64{}
		emitted := map[int32]uint64{}
		var now int64
		emit := func(r record.Record) { emitted[int32(r.Fields[1].Bits)]++ }

		steps := 200 + rng.Intn(200)
		for i := 0; i < steps; i++ {
			switch rng.Intn(10) {
			case 7:
				now += int64(rng.Intn(300))
				s.Extract(now, emit)
			case 8:
				s.Flush(emit)
			default:
				src := int32(1 + rng.Intn(nSrc))
				ts := now - int64(rng.Intn(200)) + int64(rng.Intn(100))
				s.Push(src, srcRec(src, ts), now)
				pushed[src]++
			}
		}

		st := s.Stats()
		var totalPushed, totalEmitted uint64
		for _, n := range pushed {
			totalPushed += n
		}
		for _, n := range emitted {
			totalEmitted += n
		}
		if totalPushed != totalEmitted+uint64(s.Buffered())+st.DroppedFull {
			t.Fatalf("trial %d: pushed %d != emitted %d + buffered %d + dropped %d",
				trial, totalPushed, totalEmitted, s.Buffered(), st.DroppedFull)
		}
		var sumDrops uint64
		for src, n := range st.SourceDrops {
			sumDrops += n
			if want := pushed[src] - emitted[src] - uint64(s.BufferedBySource(src)); n != want {
				t.Fatalf("trial %d: source %d drops = %d, want %d", trial, src, n, want)
			}
		}
		if sumDrops != st.DroppedFull {
			t.Fatalf("trial %d: SourceDrops sum %d != DroppedFull %d",
				trial, sumDrops, st.DroppedFull)
		}
		// The loss accumulators must testify to exactly the dropped total.
		var harvested uint64
		s.TakeLosses(func(src int32, count uint64, first, last int64) {
			harvested += count
			if first > last {
				t.Fatalf("trial %d: loss range inverted [%d,%d]", trial, first, last)
			}
		})
		if harvested != st.DroppedFull {
			t.Fatalf("trial %d: harvested losses %d != DroppedFull %d",
				trial, harvested, st.DroppedFull)
		}
	}
}
