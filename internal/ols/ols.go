// Package ols implements the manager's dynamic on-line sorting algorithm.
//
// The ISM receives in-order record streams from each external sensor and
// must merge them into one stream ordered by synchronized timestamp. Per
// the paper: using the embedded time-stamps, its current time and a
// user-specified time frame T, the ISM delays each record for T time
// units after its creation; if two successive records from different
// external sensors are extracted out of order, it increases the time
// frame; then it exponentially decreases the time frame to reduce the
// amount of instrumentation data delayed in memory. The method trades
// event ordering against latency.
//
// # Sorter cores
//
// Two interchangeable cores implement the delay-window merge, selected
// by Config.Core and proven emission-identical on arbitrary input:
//
//   - CoreCalendar (the default): a timestamp-bucketed calendar queue.
//     A record lands in the flat bucket keyed by (TS − base) / width,
//     O(1) amortized; emission is an append-order scan of expired
//     buckets; the bucket width tracks the adaptive window T. See
//     calendar.go for the structure and the equivalence argument.
//   - CoreHeap: the paper's ISM heap — per-source FIFO queues whose
//     heads are merged through a min-heap ordered by (TS, Seq),
//     O(log n) per record.
//
// A calendar-core sorter falls back to the heap automatically when the
// input turns pathological for bucketing (a source regressing its own
// timeline, tachyons beyond re-anchor reach behind the ring, occupancy
// collapsing into one bucket), counts the event in Stats.HeapFallbacks,
// and returns to the calendar once it drains empty. Fallback never
// changes what is emitted or in what order — only the cost of producing
// it.
//
// # Adaptive window, quota and loss accounting
//
// Both cores share the surrounding machinery: the adaptive time frame T
// (grown per GrowPolicy on observed inversions, exponentially decayed
// toward MinT with half-life HalfLife), the MaxBuffered global bound
// and per-source SourceQuota with drop-newest accounting, and the
// per-source loss accumulators drained by TakeLosses that let the ISM
// synthesize loss-marker records — markers themselves are exempt from
// the bounds. Per-source FIFO order is always preserved: all of one
// source's records order by Seq whichever core holds them.
package ols

import (
	"container/heap"
	"math"

	"brisk/internal/record"
)

// GrowPolicy selects how the time frame grows when an inversion is
// detected.
type GrowPolicy int

const (
	// GrowToLateness sets T to the latest late event's lateness — the
	// strategy the paper's evaluation found best for latency-critical
	// applications.
	GrowToLateness GrowPolicy = iota
	// GrowDouble doubles T on each inversion.
	GrowDouble
	// GrowFixed never adapts T (the ablation baseline).
	GrowFixed
)

// String names the policy.
func (p GrowPolicy) String() string {
	switch p {
	case GrowToLateness:
		return "lateness"
	case GrowDouble:
		return "double"
	case GrowFixed:
		return "fixed"
	default:
		return "GrowPolicy(?)"
	}
}

// CoreKind selects the data structure a Sorter delays and orders
// records with.
type CoreKind int

const (
	// CoreCalendar is the timestamp-bucketed calendar queue — O(1)
	// amortized per record on the nearly-sorted streams the transport
	// delivers, with an automatic per-sorter heap fallback for
	// pathological skew. The zero value, hence the default.
	CoreCalendar CoreKind = iota
	// CoreHeap is the paper's comparison core: per-source FIFO queues
	// merged through a min-heap of queue heads, O(log n) per record.
	CoreHeap
)

// String names the core ("calendar", "heap").
func (k CoreKind) String() string {
	switch k {
	case CoreCalendar:
		return "calendar"
	case CoreHeap:
		return "heap"
	default:
		return "CoreKind(?)"
	}
}

// Config holds the sorter's tuning knobs.
type Config struct {
	// InitialT is the starting time frame in µs. Default 1000.
	InitialT int64
	// MinT is the floor T decays toward. Default 0.
	MinT int64
	// MaxT caps growth. Default 10 s.
	MaxT int64
	// HalfLife is the exponential-decay half-life of (T − MinT) in µs of
	// manager time; 0 disables decay. The paper: "a small exponent
	// constant for reducing T (i.e., a large T half-life) helps" in
	// non-latency-critical applications.
	HalfLife int64
	// Grow selects the growth rule applied on inversions.
	Grow GrowPolicy
	// MaxBuffered bounds the records delayed in memory; pushes beyond it
	// are dropped and counted (the ISM's event dropping under overload).
	// 0 means unbounded.
	MaxBuffered int
	// SourceQuota bounds the records any single source may have delayed
	// in memory, so one hot sensor cannot consume the whole MaxBuffered
	// budget and force drops onto quiet sensors. 0 means no per-source
	// bound.
	SourceQuota int
	// Core selects the sorting data structure. The zero value is
	// CoreCalendar; both cores emit byte-identical streams, so this is a
	// performance knob, not a semantic one.
	Core CoreKind
}

func (c Config) withDefaults() Config {
	if c.InitialT <= 0 {
		c.InitialT = 1000
	}
	if c.MaxT <= 0 {
		c.MaxT = 10_000_000
	}
	if c.MinT < 0 {
		c.MinT = 0
	}
	if c.InitialT > c.MaxT {
		c.InitialT = c.MaxT
	}
	return c
}

// Stats counts the sorter's observable behaviour.
type Stats struct {
	// Pushed and Emitted count records in and out.
	Pushed, Emitted uint64
	// Inversions counts records that arrived after a later-stamped
	// record from another source had already been emitted — exactly the
	// out-of-order condition the adaptive rule reacts to.
	Inversions uint64
	// DroppedFull counts records dropped because MaxBuffered or the
	// per-source quota was hit.
	DroppedFull uint64
	// SourceDrops attributes every DroppedFull record to the source that
	// lost it. nil until the first drop; the map is freshly built per
	// Stats call, so callers may retain it.
	SourceDrops map[int32]uint64
	// GrownTo is the largest T ever reached.
	GrownTo int64
	// HeapFallbacks counts calendar→heap core switches: pushes the
	// bucket ring could not absorb without breaking heap equivalence
	// (same-source timestamp regression, a tachyon behind the ring's
	// re-anchor reach, or single-bucket occupancy collapse). Always 0
	// for CoreHeap sorters.
	HeapFallbacks uint64
	// CalendarRebuilds counts bucket-ring rebuilds at a wider bucket
	// width, taken when a push lands beyond the ring's forward span.
	CalendarRebuilds uint64
}

// Sorter merges per-source record streams into timestamp order. Not safe
// for concurrent use; the ISM's single merger goroutine owns it.
type Sorter struct {
	cfg      Config
	t        float64 // current time frame, µs
	lastSeen int64   // manager time at last Extract, for decay
	buffered int

	lastTS  int64 // timestamp of the most recently emitted record
	lastSrc int32
	emitted bool

	queues map[int32]*srcQueue
	h      srcHeap
	seq    uint64

	// onHeap is the live core: true for CoreHeap sorters always, and for
	// CoreCalendar sorters while the automatic fallback is engaged. The
	// calendar state below is untouched (and empty) while it is true.
	onHeap bool
	cal    calendar
	// calRebuild scratch, retained to amortize across rebuilds.
	calRecs []record.Record
	calQs   []*srcQueue

	lossPending int // sources with unharvested drop accumulators

	// orderRef, when set, supplies the emission frontier Push checks for
	// inversions instead of the sorter's own lastTS/lastSrc. A Sharded
	// wrapper points every shard here at the merged stream's frontier, so
	// a record late with respect to the *global* output still grows its
	// shard's T even when its own shard has emitted nothing newer.
	orderRef func() (lastTS int64, lastSrc int32, emitted bool)
	// occRef, when set, supplies the occupancy the MaxBuffered bound is
	// enforced against instead of this sorter's own buffered count. A
	// Sharded wrapper points every shard at the aggregate, keeping
	// MaxBuffered a global budget rather than a per-shard one.
	occRef func() int

	stats Stats
}

// New returns a sorter with the given configuration.
func New(cfg Config) *Sorter {
	cfg = cfg.withDefaults()
	return &Sorter{
		cfg:    cfg,
		t:      float64(cfg.InitialT),
		queues: make(map[int32]*srcQueue),
		onHeap: cfg.Core == CoreHeap,
	}
}

// TimeFrame returns the current time frame T in µs.
func (s *Sorter) TimeFrame() int64 { return int64(s.t) }

// Buffered returns the number of records currently delayed in memory.
func (s *Sorter) Buffered() int { return s.buffered }

// Stats returns a copy of the counters.
func (s *Sorter) Stats() Stats {
	st := s.stats
	if st.DroppedFull > 0 {
		st.SourceDrops = make(map[int32]uint64)
		for src, q := range s.queues {
			if q.dropped > 0 {
				st.SourceDrops[src] = q.dropped
			}
		}
	}
	return st
}

// BufferedBySource returns the number of records the given source has
// delayed in memory.
func (s *Sorter) BufferedBySource(src int32) int {
	if q, ok := s.queues[src]; ok {
		return q.buffered
	}
	return 0
}

// DropsBySource calls fn for every source that has dropped records, with
// its cumulative drop count. Allocation-free, for metric reconciliation.
func (s *Sorter) DropsBySource(fn func(src int32, dropped uint64)) {
	if s.stats.DroppedFull == 0 {
		return
	}
	for src, q := range s.queues {
		if q.dropped > 0 {
			fn(src, q.dropped)
		}
	}
}

// TakeLosses drains the per-source drop accumulators: for every source
// that has dropped records since the previous call, fn receives the
// dropped count and the covered timestamp range, and the accumulator
// resets. The ISM merger uses this to synthesize loss-marker records.
// Allocation-free, and O(1) when nothing has been dropped.
func (s *Sorter) TakeLosses(fn func(src int32, count uint64, firstTS, lastTS int64)) {
	if s.lossPending == 0 {
		return
	}
	for src, q := range s.queues {
		if q.lossCount == 0 {
			continue
		}
		fn(src, q.lossCount, q.lossFirst, q.lossLast)
		q.lossCount, q.lossFirst, q.lossLast = 0, 0, 0
	}
	s.lossPending = 0
}

// Push enqueues one record from a source. now is the manager clock (µs),
// used to measure the record's lateness when it arrives behind the
// merged stream. Records without a timestamp are stamped with now so they
// flow through rather than stall the merge.
//
// Push deep-copies rec, including its Fields, into sorter-owned storage
// (a calendar bucket slot or a queue slot, per the live core): the caller
// may recycle rec.Fields (a pooled decode batch, say) as soon as Push
// returns. The copy reuses the slot's previous Fields array, so
// steady-state pushes do not allocate.
//
// A push beyond MaxBuffered or the source's quota is dropped (drop-newest)
// and accounted to the source in Stats.SourceDrops and in the loss
// accumulator drained by TakeLosses. Loss-marker records are exempt from
// both bounds: a marker documents drops that already happened, so dropping
// it would reopen the silent-loss hole the marker exists to close.
func (s *Sorter) Push(src int32, rec record.Record, now int64) {
	s.stats.Pushed++
	q, ok := s.queues[src]
	if !ok {
		q = &srcQueue{src: src}
		s.queues[src] = q
	}
	marker := rec.Event == record.LossEvent && record.IsLossMarker(&rec)
	if !marker {
		occ := s.buffered
		if s.occRef != nil {
			occ = s.occRef()
		}
		full := s.cfg.MaxBuffered > 0 && occ >= s.cfg.MaxBuffered
		overQuota := s.cfg.SourceQuota > 0 && q.buffered >= s.cfg.SourceQuota
		if full || overQuota {
			s.stats.DroppedFull++
			q.dropped++
			ts := now
			if rec.HasTS {
				ts = rec.TS
			}
			if q.lossCount == 0 {
				q.lossFirst, q.lossLast = ts, ts
				s.lossPending++
			} else {
				if ts < q.lossFirst {
					q.lossFirst = ts
				}
				if ts > q.lossLast {
					q.lossLast = ts
				}
			}
			q.lossCount++
			return
		}
	}
	if !rec.HasTS {
		rec.SetTS(now)
	}
	rec.Node = src
	s.seq++
	rec.Seq = s.seq

	// Inversion check: the record is already behind the emitted stream.
	// Loss markers are exempt — they are synthetic and deliberately stamped
	// inside the gap they describe, so their lateness must not inflate T.
	lastTS, lastSrc, emitted := s.lastTS, s.lastSrc, s.emitted
	if s.orderRef != nil {
		lastTS, lastSrc, emitted = s.orderRef()
	}
	if !marker && emitted && rec.TS < lastTS && src != lastSrc {
		s.stats.Inversions++
		s.grow(now - rec.TS)
	}

	if !s.onHeap {
		if s.calInsert(q, rec) {
			q.lastPushTS = rec.TS
			q.buffered++
			s.buffered++
			return
		}
		// The ring cannot absorb this record without breaking heap
		// equivalence: migrate everything buffered into the queues and
		// continue on the heap core (reverted once it drains empty).
		s.fallbackToHeap()
	}
	q.lastPushTS = rec.TS
	wasEmpty := q.empty()
	q.push(rec)
	q.buffered++
	s.buffered++
	if wasEmpty {
		heap.Push(&s.h, q)
	} else if q.pos >= 0 {
		heap.Fix(&s.h, q.pos)
	}
}

// grow raises T according to the configured policy. lateness is how long
// the offending record would have needed to be delayed to stay in order.
func (s *Sorter) grow(lateness int64) {
	switch s.cfg.Grow {
	case GrowToLateness:
		if float64(lateness) > s.t {
			s.t = float64(lateness)
		}
	case GrowDouble:
		s.t *= 2
	case GrowFixed:
		// No adaptation.
	}
	if s.t > float64(s.cfg.MaxT) {
		s.t = float64(s.cfg.MaxT)
	}
	if int64(s.t) > s.stats.GrownTo {
		s.stats.GrownTo = int64(s.t)
	}
}

// decay applies the exponential reduction of T for elapsed manager time.
func (s *Sorter) decay(now int64) {
	if s.cfg.HalfLife <= 0 {
		s.lastSeen = now
		return
	}
	dt := now - s.lastSeen
	s.lastSeen = now
	if dt <= 0 {
		return
	}
	min := float64(s.cfg.MinT)
	s.t = min + (s.t-min)*math.Exp2(-float64(dt)/float64(s.cfg.HalfLife))
	if s.t < min {
		s.t = min
	}
}

// Extract emits, in merged timestamp order, every buffered record that has
// aged at least T (now − TS ≥ T). It returns the number emitted. The
// record passed to emit borrows its Fields from the queue or bucket slot
// that held it, which a later Push into the sorter reuses: it is valid as
// given only until the next Push or Extract call. A callee retaining
// records beyond that window must record.Detach them.
func (s *Sorter) Extract(now int64, emit func(record.Record)) int {
	s.decay(now)
	return s.extract(now, emit)
}

// extract dispatches the drain to the live core. Both cores apply the
// identical aging gate (emit while now − TS ≥ T) in the identical
// (TS, Seq) order; a calendar sorter parked on the heap fallback
// reverts once the drain leaves it empty.
func (s *Sorter) extract(now int64, emit func(record.Record)) int {
	if !s.onHeap {
		return s.calDrain(now, emit)
	}
	n := s.extractHeap(now, emit)
	s.maybeRevert()
	return n
}

// extractHeap is extract for the heap core: pop aged queue heads in
// (TS, Seq) order, re-fixing the heap as each queue's head advances.
func (s *Sorter) extractHeap(now int64, emit func(record.Record)) int {
	n := 0
	for len(s.h) > 0 {
		q := s.h[0]
		if now-q.head().TS < int64(s.t) {
			break
		}
		rec := q.pop()
		q.buffered--
		s.buffered--
		if q.empty() {
			heap.Pop(&s.h)
		} else {
			heap.Fix(&s.h, 0)
		}
		s.lastTS = rec.TS
		s.lastSrc = q.src
		s.emitted = true
		s.stats.Emitted++
		emit(rec)
		n++
	}
	return n
}

// Flush emits everything still buffered, in merged order, ignoring T. Used
// at shutdown and when a caller needs the pipeline drained mid-stream.
// Flush bypasses decay: it does not touch lastSeen or shrink T, so the
// learned time frame survives a mid-stream flush intact. (Routing Flush
// through Extract(math.MaxInt64, …) would make decay see a near-infinite
// elapsed time, collapse T to MinT and poison lastSeen for every
// subsequent Extract.)
func (s *Sorter) Flush(emit func(record.Record)) int {
	return s.extract(math.MaxInt64, emit)
}

// NextDeadline returns the manager time at which the oldest buffered
// record becomes emittable, and false when nothing is buffered. The ISM
// merger uses it to sleep precisely instead of polling.
func (s *Sorter) NextDeadline() (int64, bool) {
	if !s.onHeap {
		ts, ok := s.cal.oldest()
		if !ok {
			return 0, false
		}
		return ts + int64(s.t), true
	}
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].head().TS + int64(s.t), true
}

// srcQueue is one source's FIFO with an amortized head index. Under the
// calendar core the queue itself stays empty (records live in the
// bucket ring) but the struct remains the source's accounting record:
// buffered count, quota, loss accumulators, and the monotonicity
// watermark below.
type srcQueue struct {
	src  int32
	recs []record.Record
	hd   int
	pos  int // index in the heap, -1 when absent

	buffered int    // live records in this queue (or this source's bucket share)
	dropped  uint64 // cumulative records dropped at a buffer bound

	// lastPushTS is the timestamp of this source's most recent push. The
	// calendar's global (TS, Seq) order equals the heap's FIFO merge only
	// while every source's buffered records are TS-non-decreasing; a push
	// behind this watermark (with records still buffered) forces the heap
	// fallback before the invariant breaks.
	lastPushTS int64

	// Unharvested loss accumulator (drained by TakeLosses): how many
	// records dropped since the last harvest and the timestamp range they
	// covered.
	lossCount           uint64
	lossFirst, lossLast int64
}

func (q *srcQueue) empty() bool          { return q.hd >= len(q.recs) }
func (q *srcQueue) head() *record.Record { return &q.recs[q.hd] }

// push deep-copies r into the tail slot, reusing the slot's previous
// Fields array so a queue in steady state never allocates.
func (q *srcQueue) push(r record.Record) {
	// Compact once the dead prefix dominates. The live record moving into
	// slot i still aliases the Fields array sitting in its old slot hd+i,
	// so that slot must not keep it; park the dead record i's array there
	// instead (it was emitted, its borrow window is over), which keeps
	// every slot's storage reusable and compaction allocation-free.
	if q.hd > 64 && q.hd*2 > len(q.recs) {
		n := len(q.recs) - q.hd
		for i := 0; i < n; i++ {
			free := q.recs[i].Fields[:0]
			q.recs[i] = q.recs[q.hd+i]
			q.recs[q.hd+i] = record.Record{Fields: free}
		}
		q.recs = q.recs[:n]
		q.hd = 0
	}
	if len(q.recs) < cap(q.recs) {
		q.recs = q.recs[:len(q.recs)+1]
	} else {
		q.recs = append(q.recs, record.Record{})
	}
	slot := &q.recs[len(q.recs)-1]
	fields := slot.Fields[:0]
	*slot = r
	slot.Fields = append(fields, r.Fields...)
}

// pop removes and returns the head record. The slot — including the
// Fields array the returned record aliases — is left in place for a later
// push to reuse, which is what bounds Extract's borrowing window.
func (q *srcQueue) pop() record.Record {
	r := q.recs[q.hd]
	q.hd++
	if q.empty() {
		q.recs = q.recs[:0]
		q.hd = 0
	}
	return r
}

// srcHeap orders source queues by (head timestamp, head sequence).
type srcHeap []*srcQueue

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	a, b := h[i].head(), h[j].head()
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Seq < b.Seq
}
func (h srcHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *srcHeap) Push(x any) {
	q := x.(*srcQueue)
	q.pos = len(*h)
	*h = append(*h, q)
}
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	q.pos = -1
	*h = old[:n-1]
	return q
}
