package ols

import (
	"fmt"
	"math/rand"
	"testing"

	"brisk/internal/record"
)

func rec(ts int64) record.Record {
	return record.New(1, record.TSVal(ts), record.I32Val(int32(ts%1000)))
}

// collect drains via Extract at the given manager time.
func collect(s *Sorter, now int64) []record.Record {
	var out []record.Record
	s.Extract(now, func(r record.Record) { out = append(out, r) })
	return out
}

func tsOf(rs []record.Record) []int64 {
	out := make([]int64, len(rs))
	for i := range rs {
		out[i] = rs[i].TS
	}
	return out
}

func TestMergeTwoSourcesInOrder(t *testing.T) {
	s := New(Config{InitialT: 100})
	s.Push(1, rec(10), 10)
	s.Push(2, rec(5), 10)
	s.Push(1, rec(20), 20)
	s.Push(2, rec(15), 20)
	got := collect(s, 1000)
	want := []int64{5, 10, 15, 20}
	gotTS := tsOf(got)
	for i := range want {
		if gotTS[i] != want[i] {
			t.Fatalf("merged order = %v, want %v", gotTS, want)
		}
	}
	if got[0].Node != 2 || got[1].Node != 1 {
		t.Fatalf("node attribution lost: %+v", got[:2])
	}
}

func TestDelayWindowHoldsYoungRecords(t *testing.T) {
	s := New(Config{InitialT: 100})
	s.Push(1, rec(50), 50)
	if got := collect(s, 100); len(got) != 0 {
		t.Fatalf("record younger than T emitted: %v", tsOf(got))
	}
	if got := collect(s, 150); len(got) != 1 {
		t.Fatalf("record aged past T not emitted")
	}
}

func TestPerSourceFIFOPreserved(t *testing.T) {
	// Equal timestamps within a source must come out in arrival order.
	s := New(Config{InitialT: 10})
	for i := 0; i < 5; i++ {
		r := record.New(uint8(i), record.TSVal(100), record.I32Val(int32(i)))
		s.Push(1, r, 100)
	}
	got := collect(s, 10_000)
	for i, r := range got {
		if r.Event != uint8(i) {
			t.Fatalf("FIFO violated at %d: %+v", i, got)
		}
	}
}

func TestEqualTimestampsAcrossSourcesStable(t *testing.T) {
	s := New(Config{InitialT: 10})
	s.Push(1, rec(100), 100)
	s.Push(2, rec(100), 100)
	s.Push(3, rec(100), 100)
	got := collect(s, 10_000)
	if got[0].Node != 1 || got[1].Node != 2 || got[2].Node != 3 {
		t.Fatalf("tie-break not arrival-stable: %v", got)
	}
}

func TestInversionDetectionAndGrowToLateness(t *testing.T) {
	s := New(Config{InitialT: 10, Grow: GrowToLateness})
	s.Push(1, rec(100), 100)
	collect(s, 200) // emits ts=100
	// A record stamped 60 arrives at manager time 210: it is 150 µs late.
	s.Push(2, rec(60), 210)
	st := s.Stats()
	if st.Inversions != 1 {
		t.Fatalf("inversions = %d", st.Inversions)
	}
	if s.TimeFrame() != 150 {
		t.Fatalf("T = %d, want lateness 150", s.TimeFrame())
	}
	if st.GrownTo != 150 {
		t.Fatalf("GrownTo = %d", st.GrownTo)
	}
}

func TestInversionSameSourceNotCounted(t *testing.T) {
	// Per-source streams are in order by construction; a same-source
	// record behind the last emitted one is not a cross-sensor inversion.
	s := New(Config{InitialT: 10})
	s.Push(1, rec(100), 100)
	collect(s, 200)
	s.Push(1, rec(60), 210)
	if s.Stats().Inversions != 0 {
		t.Fatalf("same-source arrival counted as inversion")
	}
}

func TestGrowDouble(t *testing.T) {
	s := New(Config{InitialT: 100, Grow: GrowDouble})
	s.Push(1, rec(1000), 1000)
	collect(s, 2000)
	s.Push(2, rec(500), 2000)
	if s.TimeFrame() != 200 {
		t.Fatalf("T = %d, want doubled 200", s.TimeFrame())
	}
}

func TestGrowFixed(t *testing.T) {
	s := New(Config{InitialT: 100, Grow: GrowFixed})
	s.Push(1, rec(1000), 1000)
	collect(s, 2000)
	s.Push(2, rec(500), 2000)
	if s.TimeFrame() != 100 {
		t.Fatalf("fixed T changed: %d", s.TimeFrame())
	}
}

func TestGrowCappedAtMaxT(t *testing.T) {
	s := New(Config{InitialT: 10, MaxT: 500, Grow: GrowToLateness})
	s.Push(1, rec(1_000_000), 1_000_000)
	collect(s, 2_000_000)
	s.Push(2, rec(0), 2_000_000) // lateness 2s, far over cap
	if s.TimeFrame() != 500 {
		t.Fatalf("T = %d, want cap 500", s.TimeFrame())
	}
}

func TestExponentialDecay(t *testing.T) {
	s := New(Config{InitialT: 1000, MinT: 100, HalfLife: 1000})
	collect(s, 0) // anchors lastSeen
	collect(s, 1000)
	// One half-life: T = 100 + 900/2 = 550.
	if got := s.TimeFrame(); got < 540 || got > 560 {
		t.Fatalf("after one half-life T = %d, want ≈550", got)
	}
	collect(s, 11_000) // ten more half-lives: essentially MinT
	if got := s.TimeFrame(); got < 100 || got > 110 {
		t.Fatalf("after decay T = %d, want ≈ MinT 100", got)
	}
}

func TestNoDecayWithoutHalfLife(t *testing.T) {
	s := New(Config{InitialT: 1000})
	collect(s, 0)
	collect(s, 1_000_000)
	if s.TimeFrame() != 1000 {
		t.Fatalf("T decayed without half-life: %d", s.TimeFrame())
	}
}

func TestMaxBufferedDrops(t *testing.T) {
	s := New(Config{InitialT: 1_000_000, MaxBuffered: 3})
	for i := 0; i < 5; i++ {
		s.Push(1, rec(int64(i)), int64(i))
	}
	st := s.Stats()
	if st.DroppedFull != 2 || s.Buffered() != 3 {
		t.Fatalf("dropped=%d buffered=%d", st.DroppedFull, s.Buffered())
	}
}

func TestRecordsWithoutTimestampFlow(t *testing.T) {
	s := New(Config{InitialT: 10})
	r := record.New(1, record.I32Val(5)) // no TS
	s.Push(1, r, 500)
	got := collect(s, 10_000)
	if len(got) != 1 || got[0].TS != 500 {
		t.Fatalf("timestamp-less record mishandled: %+v", got)
	}
}

func TestFlushEmitsEverything(t *testing.T) {
	s := New(Config{InitialT: 1_000_000_000})
	for i := 5; i > 0; i-- {
		s.Push(int32(i), rec(int64(i*10)), 100)
	}
	var out []record.Record
	n := s.Flush(func(r record.Record) { out = append(out, r) })
	if n != 5 || s.Buffered() != 0 {
		t.Fatalf("flush emitted %d, buffered %d", n, s.Buffered())
	}
	for i := 1; i < len(out); i++ {
		if out[i].TS < out[i-1].TS {
			t.Fatalf("flush out of order: %v", tsOf(out))
		}
	}
}

func TestNextDeadline(t *testing.T) {
	s := New(Config{InitialT: 100})
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("deadline on empty sorter")
	}
	s.Push(1, rec(1000), 1000)
	d, ok := s.NextDeadline()
	if !ok || d != 1100 {
		t.Fatalf("deadline = %d, %v; want 1100", d, ok)
	}
}

// TestOrderedWheneverLatenessWithinT is the sorter's core invariant: if
// every record's delivery lateness is at most T, the output is globally
// ordered by timestamp.
func TestOrderedWheneverLatenessWithinT(t *testing.T) {
	const T = 500
	s := New(Config{InitialT: T, Grow: GrowFixed})
	rng := rand.New(rand.NewSource(3))
	// Three sources; each source's timestamps increase; delivery delay
	// up to T-1 µs. Push in manager-time order of arrival.
	var arrivals []arrival
	for src := int32(1); src <= 3; src++ {
		ts := int64(0)
		prevAt := int64(0)
		for i := 0; i < 200; i++ {
			ts += int64(rng.Intn(50))
			// Per-source delivery preserves creation order (the stream
			// socket guarantee), so arrival times are monotone within a
			// source; lateness stays under T.
			at := ts + int64(rng.Intn(T-1))
			if at < prevAt {
				at = prevAt
			}
			if at > ts+T-1 {
				at = ts + T - 1
			}
			prevAt = at
			arrivals = append(arrivals, arrival{src, rec(ts), at})
		}
	}
	sortByAt(arrivals)
	var out []record.Record
	for _, a := range arrivals {
		s.Push(a.src, a.r, a.at)
		s.Extract(a.at, func(r record.Record) { out = append(out, r) })
	}
	s.Flush(func(r record.Record) { out = append(out, r) })
	if len(out) != 600 {
		t.Fatalf("emitted %d, want 600", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].TS < out[i-1].TS {
			t.Fatalf("inversion at %d: %d after %d", i, out[i].TS, out[i-1].TS)
		}
	}
	if s.Stats().Inversions != 0 {
		t.Fatalf("spurious inversions: %d", s.Stats().Inversions)
	}
}

type arrival struct {
	src int32
	r   record.Record
	at  int64
}

func sortByAt(a []arrival) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].at < a[j-1].at; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestAdaptiveTSuppressesFutureInversions drives the adaptive loop: with
// delays exceeding the initial T, the sorter grows T and late-phase
// inversions stop.
func TestAdaptiveTSuppressesFutureInversions(t *testing.T) {
	s := New(Config{InitialT: 10, Grow: GrowToLateness})
	rng := rand.New(rand.NewSource(9))
	// Two sources: source 1 delivers almost immediately, source 2 with a
	// consistent ~400 µs delay — far over the initial T of 10 µs.
	var arrivals []arrival
	for i := 0; i < 2000; i++ {
		ts := int64(i * 100)
		arrivals = append(arrivals, arrival{1, rec(ts), ts + int64(rng.Intn(10))})
		arrivals = append(arrivals, arrival{2, rec(ts + 50), ts + 50 + 380 + int64(rng.Intn(40))})
	}
	sortByAt(arrivals)
	firstHalfInv := uint64(0)
	for i, a := range arrivals {
		s.Push(a.src, a.r, a.at)
		s.Extract(a.at, func(record.Record) {})
		if i == len(arrivals)/2 {
			firstHalfInv = s.Stats().Inversions
		}
	}
	st := s.Stats()
	if firstHalfInv == 0 {
		t.Fatal("expected early inversions with tiny initial T")
	}
	late := st.Inversions - firstHalfInv
	if late > firstHalfInv/10+2 {
		t.Fatalf("adaptation ineffective: %d early vs %d late inversions", firstHalfInv, late)
	}
	if s.TimeFrame() < 380 {
		t.Fatalf("T = %d, expected ≥ dominant lateness", s.TimeFrame())
	}
}

func TestGrowPolicyStrings(t *testing.T) {
	if GrowToLateness.String() != "lateness" || GrowDouble.String() != "double" ||
		GrowFixed.String() != "fixed" || GrowPolicy(9).String() == "" {
		t.Error("policy names")
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push/pop many records through one source to force the FIFO's
	// compaction path.
	s := New(Config{InitialT: 1})
	for i := 0; i < 10_000; i++ {
		s.Push(1, rec(int64(i)), int64(i))
		if i%3 == 0 {
			collect(s, int64(i))
		}
	}
	var n int
	s.Flush(func(record.Record) { n++ })
	if uint64(n)+s.Stats().Emitted-uint64(n) != s.Stats().Emitted {
		t.Fatal("bookkeeping broke") // sanity: all pushed eventually emitted
	}
	if s.Stats().Emitted != 10_000 {
		t.Fatalf("emitted %d, want 10000", s.Stats().Emitted)
	}
}

func BenchmarkPushExtract8Sources(b *testing.B) {
	s := New(Config{InitialT: 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src := int32(i % 8)
		ts := int64(i)
		s.Push(src, rec(ts), ts)
		if i%64 == 63 {
			s.Extract(ts, func(record.Record) {})
		}
	}
}

// ExampleSorter demonstrates the adaptive merge: records from two sources
// arrive interleaved and come out in timestamp order once aged past T.
func ExampleSorter() {
	s := New(Config{InitialT: 100})
	s.Push(1, record.New(1, record.TSVal(300)), 300)
	s.Push(2, record.New(2, record.TSVal(250)), 300)
	s.Push(1, record.New(3, record.TSVal(400)), 400)

	// Nothing is old enough yet at manager time 320.
	n := s.Extract(320, func(record.Record) {})
	fmt.Println("at t=320:", n)

	// At t=600 everything has aged past T=100 and merges in order.
	s.Extract(600, func(r record.Record) { fmt.Println("emit ts", r.TS, "src", r.Node) })
	// Output:
	// at t=320: 0
	// emit ts 250 src 2
	// emit ts 300 src 1
	// emit ts 400 src 1
}
