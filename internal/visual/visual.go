// Package visual reproduces BRISK's on-line visualization hookup: the ISM
// can pass each sorted instrumentation-data record, rendered as a PICL
// string, to a list of remote "visual objects" — components of an
// object-oriented performance-visualization framework.
//
// The paper reaches those objects through MICO, a portable CORBA 2.0
// implementation. CORBA is unavailable here (and beside the point: what
// the paper evaluates is the ISM-side dispatch path), so the substitute is
// a minimal framed TCP protocol that carries the same payloads —
// object-name plus PICL string — with one-way method-call semantics.
// Slow consumers never stall the manager: each remote object has a
// bounded outgoing queue and records are dropped, and counted, when it
// fills (the ISM's event-dropping behaviour).
package visual

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/xdr"
)

// MaxCallBytes bounds one framed call.
const MaxCallBytes = 1 << 20

// Object is a visual object: it consumes instrumentation data records as
// PICL strings, exactly the interface the paper's ISM invokes remotely.
type Object interface {
	// ProcessPICL handles one trace line.
	ProcessPICL(line string) error
}

// ObjectFunc adapts a function to the Object interface.
type ObjectFunc func(line string) error

// ProcessPICL implements Object.
func (f ObjectFunc) ProcessPICL(line string) error { return f(line) }

// Server hosts named visual objects and accepts remote calls.
type Server struct {
	mu      sync.RWMutex
	objects map[string]Object
	conns   map[net.Conn]struct{}

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	// Calls counts delivered calls; Unknown counts calls to unregistered
	// objects.
	Calls   atomic.Uint64
	Unknown atomic.Uint64
}

// NewServer returns a server with no objects registered.
func NewServer() *Server {
	return &Server{
		objects: make(map[string]Object),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Register binds an object name. Registering an existing name replaces it.
func (s *Server) Register(name string, obj Object) {
	s.mu.Lock()
	s.objects[name] = obj
	s.mu.Unlock()
}

// Listen starts accepting calls on addr ("host:port", empty port for
// ephemeral) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var hdr [4]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(xdr.Uint32At(hdr[:]))
		if n <= 0 || n > MaxCallBytes {
			return
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		body := buf[:n]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		d := xdr.NewDecoder(body)
		d.MaxOpaque = MaxCallBytes
		name, err := d.String()
		if err != nil {
			return
		}
		line, err := d.String()
		if err != nil {
			return
		}
		s.mu.RLock()
		obj, ok := s.objects[name]
		s.mu.RUnlock()
		if !ok {
			s.Unknown.Add(1)
			continue
		}
		s.Calls.Add(1)
		// A misbehaving object must not kill the connection handler.
		_ = safeProcess(obj, line)
	}
}

func safeProcess(obj Object, line string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("visual: object panicked: %v", r)
		}
	}()
	return obj.ProcessPICL(line)
}

// Close stops the listener, disconnects clients, and waits for connection
// handlers to drain.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Remote is the ISM-side proxy for one remote visual object: an
// asynchronous, bounded-queue sender of PICL strings.
type Remote struct {
	name string
	conn net.Conn
	q    chan string
	wg   sync.WaitGroup

	dropped atomic.Uint64
	sent    atomic.Uint64
	dead    atomic.Bool
}

// ErrClosed reports a push on a closed remote.
var ErrClosed = errors.New("visual: remote closed")

// Dial connects to a server and binds the named object. queueLen bounds
// the outgoing buffer (≤ 0 means 1024).
func Dial(addr, name string, queueLen int) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if queueLen <= 0 {
		queueLen = 1024
	}
	r := &Remote{name: name, conn: conn, q: make(chan string, queueLen)}
	r.wg.Add(1)
	go r.sendLoop()
	return r, nil
}

func (r *Remote) sendLoop() {
	defer r.wg.Done()
	enc := xdr.NewEncoder(4096)
	var hdr [4]byte
	for line := range r.q {
		enc.Reset()
		enc.String(r.name)
		enc.String(line)
		body := enc.Bytes()
		xdr.PutUint32(hdr[:], uint32(len(body)))
		// A frozen peer must not wedge Close: bound each write.
		_ = r.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if _, err := r.conn.Write(hdr[:]); err != nil {
			r.dead.Store(true)
			continue // keep draining the queue
		}
		if _, err := r.conn.Write(body); err != nil {
			r.dead.Store(true)
			continue
		}
		r.sent.Add(1)
	}
}

// Push enqueues one PICL line; it never blocks. When the queue is full the
// line is dropped and counted.
func (r *Remote) Push(line string) {
	if r.dead.Load() {
		r.dropped.Add(1)
		return
	}
	select {
	case r.q <- line:
	default:
		r.dropped.Add(1)
	}
}

// Sent returns the number of lines written to the socket.
func (r *Remote) Sent() uint64 { return r.sent.Load() }

// Dropped returns the number of lines dropped at the queue or after the
// connection died.
func (r *Remote) Dropped() uint64 { return r.dropped.Load() }

// Close flushes the queue and closes the connection.
func (r *Remote) Close() error {
	close(r.q)
	r.wg.Wait()
	return r.conn.Close()
}

// Dispatcher fans one PICL stream out to a list of remote objects — the
// "list of CORBA-enabled visual objects" attached to the ISM.
type Dispatcher struct {
	mu      sync.RWMutex
	remotes []*Remote
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher { return &Dispatcher{} }

// Attach adds a remote object to the fan-out list.
func (d *Dispatcher) Attach(r *Remote) {
	d.mu.Lock()
	d.remotes = append(d.remotes, r)
	d.mu.Unlock()
}

// Len returns the number of attached remotes.
func (d *Dispatcher) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.remotes)
}

// Totals sums sent and dropped line counts across every attached remote.
func (d *Dispatcher) Totals() (sent, dropped uint64) {
	d.mu.RLock()
	rs := d.remotes
	d.mu.RUnlock()
	for _, r := range rs {
		sent += r.Sent()
		dropped += r.Dropped()
	}
	return sent, dropped
}

// Dispatch pushes a line to every attached object.
func (d *Dispatcher) Dispatch(line string) {
	d.mu.RLock()
	rs := d.remotes
	d.mu.RUnlock()
	for _, r := range rs {
		r.Push(line)
	}
}

// Close closes every attached remote, returning the first error.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	rs := d.remotes
	d.remotes = nil
	d.mu.Unlock()
	var first error
	for _, r := range rs {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
