package visual

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collector is a thread-safe test Object.
type collector struct {
	mu    sync.Mutex
	lines []string
}

func (c *collector) ProcessPICL(line string) error {
	c.mu.Lock()
	c.lines = append(c.lines, line)
	c.mu.Unlock()
	return nil
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestDeliverToRegisteredObject(t *testing.T) {
	s, addr := startServer(t)
	col := &collector{}
	s.Register("view", col)

	r, err := Dial(addr, "view", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Push("-4 1 100 0 0")
	r.Push("-4 2 200 0 0")
	waitFor(t, func() bool { return len(col.snapshot()) == 2 })
	got := col.snapshot()
	if got[0] != "-4 1 100 0 0" || got[1] != "-4 2 200 0 0" {
		t.Fatalf("lines = %v", got)
	}
	if s.Calls.Load() != 2 {
		t.Fatalf("calls = %d", s.Calls.Load())
	}
}

func TestUnknownObjectCounted(t *testing.T) {
	s, addr := startServer(t)
	r, err := Dial(addr, "nobody", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Push("line")
	waitFor(t, func() bool { return s.Unknown.Load() == 1 })
}

func TestPanickingObjectDoesNotKillServer(t *testing.T) {
	s, addr := startServer(t)
	col := &collector{}
	s.Register("bad", ObjectFunc(func(string) error { panic("boom") }))
	s.Register("good", col)

	rb, err := Dial(addr, "bad", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	rg, err := Dial(addr, "good", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rg.Close()

	rb.Push("x")
	waitFor(t, func() bool { return s.Calls.Load() >= 1 })
	rg.Push("y")
	waitFor(t, func() bool { return len(col.snapshot()) == 1 })
}

func TestObjectErrorIgnored(t *testing.T) {
	s, addr := startServer(t)
	s.Register("err", ObjectFunc(func(string) error { return errors.New("no") }))
	r, err := Dial(addr, "err", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Push("a")
	r.Push("b")
	waitFor(t, func() bool { return s.Calls.Load() == 2 })
}

func TestSlowConsumerDrops(t *testing.T) {
	block := make(chan struct{})
	s, addr := startServer(t)
	s.Register("slow", ObjectFunc(func(string) error {
		<-block
		return nil
	}))
	r, err := Dial(addr, "slow", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: with a queue of 2 and a blocked consumer, pushes must
	// start dropping rather than stalling this goroutine.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			r.Push("line")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push blocked on slow consumer")
	}
	if r.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	close(block)
	r.Close()
}

func TestDispatcherFanOut(t *testing.T) {
	s, addr := startServer(t)
	c1, c2 := &collector{}, &collector{}
	s.Register("a", c1)
	s.Register("b", c2)

	d := NewDispatcher()
	for _, name := range []string{"a", "b"} {
		r, err := Dial(addr, name, 64)
		if err != nil {
			t.Fatal(err)
		}
		d.Attach(r)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 10; i++ {
		d.Dispatch("evt")
	}
	waitFor(t, func() bool {
		return len(c1.snapshot()) == 10 && len(c2.snapshot()) == 10
	})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("dispatcher not emptied by Close")
	}
}

func TestRemoteCloseFlushesQueue(t *testing.T) {
	s, addr := startServer(t)
	col := &collector{}
	s.Register("v", col)
	r, err := Dial(addr, "v", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Push("l")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(col.snapshot()) == 100 })
	if r.Sent() != 100 {
		t.Fatalf("sent = %d", r.Sent())
	}
}

func TestServerDoubleClose(t *testing.T) {
	s, _ := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestPushAfterServerGone(t *testing.T) {
	s, addr := startServer(t)
	col := &collector{}
	s.Register("v", col)
	r, err := Dial(addr, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Eventually writes fail; pushes must degrade to drops, not panic.
	for i := 0; i < 1000; i++ {
		r.Push("x")
		time.Sleep(time.Millisecond / 10)
		if r.Dropped() > 0 {
			break
		}
	}
	r.Close()
}
