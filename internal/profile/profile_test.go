package profile

import (
	"strings"
	"testing"

	"brisk/internal/record"
)

func ev(node int32, event uint8, ts int64, id int32) record.Record {
	r := record.New(event, record.TSVal(ts), record.I32Val(id))
	r.Node = node
	return r
}

func TestPairing(t *testing.T) {
	p := New([]PairRule{{Begin: 10, End: 11, Name: "compute"}})
	recs := []record.Record{
		ev(1, 10, 100, 7),
		ev(1, 11, 350, 7),
		ev(1, 10, 400, 7),
		ev(1, 11, 500, 7),
	}
	for i := range recs {
		p.Feed(&recs[i])
	}
	rep := p.Report()
	if len(rep) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	e := rep[0]
	if e.Count != 2 || e.MeanMicros != 175 || e.MaxMicros != 250 || e.TotalMicros != 350 {
		t.Fatalf("entry = %+v", e)
	}
	if p.OpenRegions() != 0 || p.Unmatched != 0 {
		t.Fatalf("open=%d unmatched=%d", p.OpenRegions(), p.Unmatched)
	}
}

func TestInterleavedRegionsAndNodes(t *testing.T) {
	p := New([]PairRule{
		{Begin: 10, End: 11, Name: "io"},
		{Begin: 20, End: 21, Name: "net"},
	})
	recs := []record.Record{
		ev(1, 10, 100, 1), // io id 1 on node 1
		ev(2, 10, 110, 1), // io id 1 on node 2 (independent)
		ev(1, 20, 120, 9), // net on node 1
		ev(1, 11, 200, 1),
		ev(2, 11, 260, 1),
		ev(1, 21, 320, 9),
	}
	for i := range recs {
		p.Feed(&recs[i])
	}
	rep := p.Report()
	if len(rep) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	// Sorted by total time descending: net(200) > io node2(150) > io node1(100).
	if rep[0].Region != "net" || rep[0].TotalMicros != 200 {
		t.Fatalf("rep[0] = %+v", rep[0])
	}
	if rep[1].Node != 2 || rep[1].TotalMicros != 150 {
		t.Fatalf("rep[1] = %+v", rep[1])
	}
}

func TestConcurrentSameRegionDifferentIDs(t *testing.T) {
	p := New([]PairRule{{Begin: 1, End: 2, Name: "req"}})
	// Two overlapping requests distinguished by id.
	feeds := []record.Record{
		ev(1, 1, 100, 1),
		ev(1, 1, 150, 2),
		ev(1, 2, 300, 1), // id 1: 200
		ev(1, 2, 500, 2), // id 2: 350
	}
	for i := range feeds {
		p.Feed(&feeds[i])
	}
	rep := p.Report()
	if len(rep) != 1 || rep[0].Count != 2 || rep[0].MaxMicros != 350 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestUnmatchedCounting(t *testing.T) {
	p := New([]PairRule{{Begin: 1, End: 2, Name: "x"}})
	recs := []record.Record{
		ev(1, 2, 100, 5), // end with no begin
		ev(1, 1, 200, 6),
		ev(1, 1, 300, 6), // begin re-opened
		ev(1, 2, 400, 6),
	}
	for i := range recs {
		p.Feed(&recs[i])
	}
	if p.Unmatched != 2 {
		t.Fatalf("unmatched = %d", p.Unmatched)
	}
	if rep := p.Report(); len(rep) != 1 || rep[0].Count != 1 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestIrrelevantEventsIgnored(t *testing.T) {
	p := New([]PairRule{{Begin: 1, End: 2, Name: "x"}})
	r := ev(1, 99, 100, 1)
	p.Feed(&r)
	noTS := record.New(1, record.I32Val(1))
	p.Feed(&noTS)
	if p.OpenRegions() != 0 || len(p.Report()) != 0 {
		t.Fatal("irrelevant events affected state")
	}
}

func TestBackwardDurationSkipped(t *testing.T) {
	p := New([]PairRule{{Begin: 1, End: 2, Name: "x"}})
	a := ev(1, 1, 500, 1)
	b := ev(1, 2, 400, 1) // end before begin: clock anomaly
	p.Feed(&a)
	p.Feed(&b)
	if p.Unmatched != 1 || len(p.Report()) != 0 {
		t.Fatalf("unmatched=%d rep=%v", p.Unmatched, p.Report())
	}
}

func TestStringReport(t *testing.T) {
	p := New([]PairRule{{Begin: 1, End: 2, Name: "phase"}})
	a := ev(3, 1, 0, 1)
	b := ev(3, 2, 123, 1)
	p.Feed(&a)
	p.Feed(&b)
	out := p.String()
	for _, want := range []string{"phase", "123.0", "node"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRegionIDExtraction(t *testing.T) {
	// The identifier is the first non-system, non-string field.
	r := record.New(1, record.TSVal(5), record.StrVal("skip"), record.I64Val(-7))
	if got := regionID(&r); got != -7 {
		t.Fatalf("regionID = %d", got)
	}
	r2 := record.New(1, record.TSVal(5))
	if got := regionID(&r2); got != 0 {
		t.Fatalf("regionID no-field = %d", got)
	}
}
