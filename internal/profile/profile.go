// Package profile demonstrates BRISK's flexibility claim that its
// software, event-based monitoring can emulate other monitoring methods —
// here, execution profiling built purely from the sorted event stream.
//
// An application brackets each profiled region with a begin notice and an
// end notice of the next event class (begin event e, end event e+1), both
// carrying the same region identifier in their first data field. The
// profiler pairs them per node and accumulates duration statistics, the
// output a hybrid tracing/profiling monitor would have produced in
// hardware-assisted systems.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"brisk/internal/record"
	"brisk/internal/stats"
)

// PairRule describes one begin/end event-class pair to profile.
type PairRule struct {
	// Begin and End are the event classes bracketing a region.
	Begin, End uint8
	// Name labels the region in reports.
	Name string
}

// key identifies one open region instance.
type key struct {
	node  int32
	begin uint8
	id    int64
}

// regionKey identifies one profiled region in the aggregate.
type regionKey struct {
	node int32
	name string
}

// Profiler consumes a sorted record stream and aggregates region
// durations. Not safe for concurrent use.
type Profiler struct {
	rules map[uint8]PairRule // keyed by End event class
	begin map[uint8]PairRule // keyed by Begin event class
	open  map[key]int64      // begin timestamps of open regions

	agg map[regionKey]*stats.Running

	// Unmatched counts end events with no matching begin, and begin
	// events that were re-opened before closing.
	Unmatched uint64
}

// New returns a profiler for the given pair rules.
func New(rules []PairRule) *Profiler {
	p := &Profiler{
		rules: make(map[uint8]PairRule),
		begin: make(map[uint8]PairRule),
		open:  make(map[key]int64),
		agg:   make(map[regionKey]*stats.Running),
	}
	for _, r := range rules {
		p.rules[r.End] = r
		p.begin[r.Begin] = r
	}
	return p
}

// regionID extracts the region identifier: the first non-system integer
// field, or 0 if none.
func regionID(rec *record.Record) int64 {
	for _, f := range rec.Fields {
		switch f.Type {
		case record.TS, record.Reason, record.Conseq, record.String:
			continue
		default:
			return f.Int()
		}
	}
	return 0
}

// Feed consumes one record of the sorted stream.
func (p *Profiler) Feed(rec *record.Record) {
	if !rec.HasTS {
		return
	}
	if rule, ok := p.begin[rec.Event]; ok {
		k := key{rec.Node, rule.Begin, regionID(rec)}
		if _, already := p.open[k]; already {
			p.Unmatched++
		}
		p.open[k] = rec.TS
		return
	}
	if rule, ok := p.rules[rec.Event]; ok {
		k := key{rec.Node, rule.Begin, regionID(rec)}
		beginTS, found := p.open[k]
		if !found {
			p.Unmatched++
			return
		}
		delete(p.open, k)
		if rec.TS < beginTS {
			// Clock repair should prevent this; count and skip.
			p.Unmatched++
			return
		}
		rk := regionKey{rec.Node, rule.Name}
		r, ok := p.agg[rk]
		if !ok {
			r = &stats.Running{}
			p.agg[rk] = r
		}
		r.Add(float64(rec.TS - beginTS))
	}
}

// OpenRegions returns the number of begins still awaiting their end.
func (p *Profiler) OpenRegions() int { return len(p.open) }

// Entry is one line of the profile report.
type Entry struct {
	Node        int32
	Region      string
	Count       uint64
	MeanMicros  float64
	MaxMicros   float64
	TotalMicros float64
}

// Report returns the aggregated profile sorted by total time descending.
func (p *Profiler) Report() []Entry {
	var out []Entry
	for k, r := range p.agg {
		out = append(out, Entry{
			Node:        k.node,
			Region:      k.name,
			Count:       r.N(),
			MeanMicros:  r.Mean(),
			MaxMicros:   r.Max(),
			TotalMicros: r.Mean() * float64(r.N()),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMicros != out[j].TotalMicros {
			return out[i].TotalMicros > out[j].TotalMicros
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// String renders the report.
func (p *Profiler) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %8s %12s %12s %12s\n",
		"node", "region", "count", "mean µs", "max µs", "total µs")
	for _, e := range p.Report() {
		fmt.Fprintf(&b, "%-6d %-16s %8d %12.1f %12.1f %12.1f\n",
			e.Node, e.Region, e.Count, e.MeanMicros, e.MaxMicros, e.TotalMicros)
	}
	if p.Unmatched > 0 {
		fmt.Fprintf(&b, "unmatched events: %d\n", p.Unmatched)
	}
	return b.String()
}
