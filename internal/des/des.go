// Package des is a small discrete-event simulation kernel used to
// reproduce BRISK's distributed experiments deterministically: simulated
// node clocks drift over virtual time, network latencies are sampled from
// seeded streams, and the clock-synchronization and on-line-sorting
// evaluations replay identically on every run.
//
// Time is int64 microseconds, matching BRISK's timestamp unit. Events
// scheduled for the same instant fire in scheduling order (a stable FIFO
// tie-break), which keeps causality intuitive and runs reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all event handlers run on the caller's goroutine inside
// Run/Step.
type Sim struct {
	now   int64
	seq   uint64
	queue eventQueue
	fired uint64
}

// New returns a simulator positioned at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in microseconds.
func (s *Sim) Now() int64 { return s.now }

// NowMicros implements vclock.Clock so simulated node clocks can derive
// from virtual time.
func (s *Sim) NowMicros() int64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a bug in the model.
func (s *Sim) At(t int64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %d before now %d", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d microseconds from now.
func (s *Sim) After(d int64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Step fires the next event, advancing virtual time to it. It reports
// whether an event was fired.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(event)
	s.now = ev.at
	s.fired++
	ev.fn()
	return true
}

// Run fires events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps ≤ t, then sets the clock to t.
// Events scheduled exactly at t do fire.
func (s *Sim) RunUntil(t int64) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*q = old[:n-1]
	return ev
}

// RNG is a deterministic xorshift64* pseudo-random stream. Each simulated
// component takes its own stream so adding a component never perturbs the
// draws of another (the "independent streams" discipline of simulation
// practice).
type RNG struct {
	state uint64
	spare float64
	has   bool
}

// NewRNG returns a stream seeded by seed (0 is remapped to a fixed odd
// constant, since xorshift requires nonzero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform draw in [0, n) as int64. It panics if n ≤ 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("des: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normal draw with the given mean and standard deviation
// using the Marsaglia polar method.
func (r *RNG) Norm(mean, std float64) float64 {
	if r.has {
		r.has = false
		return mean + std*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.has = true
		return mean + std*u*f
	}
}
