package des

import "testing"

// Zero-duration scheduling: After(0) and At(now) must fire at the current
// instant, in FIFO order with everything else scheduled for that instant.
func TestZeroDurationEventsFIFO(t *testing.T) {
	s := New()
	s.RunUntil(100)
	var order []int
	s.After(0, func() { order = append(order, 1) })
	s.At(100, func() { order = append(order, 2) })
	s.After(0, func() { order = append(order, 3) })
	s.RunUntil(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("same-instant events fired out of FIFO order: %v", order)
	}
	if s.Now() != 100 {
		t.Fatalf("clock moved to %d firing zero-duration events at 100", s.Now())
	}
}

// A handler that schedules another zero-delay event must see it fire
// within the same RunUntil, still at the same instant.
func TestZeroDurationCascade(t *testing.T) {
	s := New()
	fired := 0
	s.After(0, func() {
		fired++
		s.After(0, func() { fired++ })
	})
	s.RunUntil(0)
	if fired != 2 {
		t.Fatalf("cascaded zero-delay event did not fire in the same instant: fired=%d", fired)
	}
}

// RunUntil's boundary is inclusive: events exactly at t fire, events one
// microsecond later do not, and the clock lands exactly on t.
func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New()
	var atT, afterT bool
	s.At(100, func() { atT = true })
	s.At(101, func() { afterT = true })
	s.RunUntil(100)
	if !atT {
		t.Fatal("event at exactly t did not fire in RunUntil(t)")
	}
	if afterT {
		t.Fatal("event after t fired in RunUntil(t)")
	}
	if s.Now() != 100 {
		t.Fatalf("clock at %d after RunUntil(100)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending=%d, want the t+1 event still queued", s.Pending())
	}
}

// RunUntil with t in the past must not move the clock backwards.
func TestRunUntilNeverRewinds(t *testing.T) {
	s := New()
	s.RunUntil(100)
	s.RunUntil(50)
	if s.Now() != 100 {
		t.Fatalf("RunUntil rewound the clock to %d", s.Now())
	}
}
