package des

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 || s.Fired() != 3 || s.Pending() != 0 {
		t.Fatalf("final state: now=%d fired=%d pending=%d", s.Now(), s.Fired(), s.Pending())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var hits []int64
	s.After(100, func() {
		hits = append(hits, s.Now())
		s.After(50, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 100 || hits[1] != 150 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (inclusive boundary)", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("now = %d", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// RunUntil with no events still advances the clock.
	s2 := New()
	s2.RunUntil(500)
	if s2.Now() != 500 {
		t.Fatalf("empty RunUntil: now = %d", s2.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestNegativeAfterClamps(t *testing.T) {
	s := New()
	s.At(10, func() {
		s.After(-100, func() {}) // clamps to now
	})
	s.Run()
	if s.Now() != 10 {
		t.Fatalf("now = %d", s.Now())
	}
}

func TestNowMicrosImplementsClock(t *testing.T) {
	s := New()
	s.At(123, func() {})
	s.Run()
	if s.NowMicros() != 123 {
		t.Fatalf("NowMicros = %d", s.NowMicros())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a dead stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(10) bucket %d heavily skewed: %d", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGInt63n(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(100)
		if v < 0 {
			t.Fatal("exponential draw negative")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("Exp(100) mean = %v", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(9)
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(50, 10)
		sum += v
		ss += v * v
	}
	mean := sum / n
	std := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-50) > 0.2 || math.Abs(std-10) > 0.2 {
		t.Fatalf("Norm(50,10): mean=%v std=%v", mean, std)
	}
}

// TestSimulatedPeriodicProcess models the paper's 5-second polling rounds:
// a periodic event rescheduling itself.
func TestSimulatedPeriodicProcess(t *testing.T) {
	s := New()
	const period = 5_000_000
	rounds := 0
	var tick func()
	tick = func() {
		rounds++
		if rounds < 120 { // 10 minutes of 5 s rounds
			s.After(period, tick)
		}
	}
	s.After(period, tick)
	s.Run()
	if rounds != 120 {
		t.Fatalf("rounds = %d", rounds)
	}
	if s.Now() != 120*period {
		t.Fatalf("now = %d, want %d", s.Now(), 120*period)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(int64(i%100), func() {})
		if s.Pending() > 1024 {
			s.RunUntil(s.Now() + 50)
		}
	}
	s.Run()
}
