// Package clocksync implements BRISK's distributed clock-synchronization
// algorithm, a modification of Cristian's probabilistic algorithm [F.
// Cristian, Distributed Computing 3, 1989].
//
// The master (the ISM) polls the slaves (the external sensors) in rounds.
// In each round it probes every slave several times; each probe estimates
// the slave-clock offset against the master clock by the classic
// half-round-trip rule. The BRISK modification then departs from Cristian:
//
//   - The master's time is used only as a common reference point for
//     computing relative skews of the slave clocks: for measurement it is
//     the slaves' mutual agreement that matters, not agreement with the
//     master.
//   - The slave with the maximum positive skew relative to the master
//     (the most-ahead clock) is elected as the round's reference.
//   - The relative skews of the other slaves against the reference, and
//     their average, are computed.
//   - Only slaves whose relative skew is above the average are advanced:
//     by the full relative skew if the average exceeds a small threshold,
//     and otherwise by a fixed portion of it (0.7 in the paper). Both
//     rules are conservative: they avoid erroneously promoting a new
//     fastest clock on network noise, at the price of potentially slower
//     convergence near agreement.
//
// Clocks are only ever advanced, never set back, so timestamp order within
// a node is preserved; the cost is a small positive drift of the slave
// clocks, exactly as the paper notes.
//
// The original Cristian update (every slave steps by the master-slave
// difference, in either direction) is provided as the comparison baseline.
package clocksync

import (
	"errors"
	"fmt"
	"math"
)

// Algorithm selects the round update rule.
type Algorithm int

const (
	// AlgBRISK is the paper's modified algorithm (relative skews against
	// the most-ahead slave, above-average rule, damped correction).
	AlgBRISK Algorithm = iota
	// AlgCristian is the original centralized algorithm: every slave is
	// stepped by its estimated offset from the master, in both
	// directions.
	AlgCristian
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgBRISK:
		return "brisk"
	case AlgCristian:
		return "cristian"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Filter selects how per-slave probe samples reduce to one offset
// estimate.
type Filter int

const (
	// FilterMean averages the samples, the paper's stated reduction.
	FilterMean Filter = iota
	// FilterMinRTT keeps the sample with the smallest round-trip time,
	// whose half-RTT error bound is tightest (Cristian's refinement).
	FilterMinRTT
)

// String names the filter.
func (f Filter) String() string {
	switch f {
	case FilterMean:
		return "mean"
	case FilterMinRTT:
		return "minrtt"
	default:
		return fmt.Sprintf("Filter(%d)", int(f))
	}
}

// Config holds the master's tuning knobs — part of BRISK's "flexibility in
// the performance sense": users trade convergence speed against noise
// robustness for their environment.
type Config struct {
	// ProbesPerSlave is how many probes estimate each slave per round.
	// Default 5.
	ProbesPerSlave int
	// Filter reduces a slave's probe samples to one offset estimate.
	Filter Filter
	// Threshold is the "small threshold" (µs) on the round's average
	// relative skew below which the damped correction applies. Default
	// 100 µs.
	Threshold int64
	// Damping is the fixed portion of the relative skew applied below
	// the threshold. Default 0.7, the paper's value.
	Damping float64
	// MaxRTT discards probe samples with round-trip times above this
	// bound (µs); 0 disables the filter. Discarding congested probes
	// keeps disturbance windows from polluting estimates.
	MaxRTT int64
	// Algorithm selects the update rule; default AlgBRISK.
	Algorithm Algorithm
	// MaxSlew caps the per-round adjustment magnitude under AlgCristian
	// (µs per round; 0 = uncapped). Cristian's algorithm amortizes
	// corrections gradually so the adjusted clock stays monotone and
	// rate-bounded; the cap models that amortization (e.g. an NTP-like
	// 500 ppm slew over a 5 s round gives MaxSlew = 2500). BRISK needs
	// no cap: its corrections only ever move clocks forward, so they are
	// safe to apply as instantaneous steps — the structural reason it
	// converges faster.
	MaxSlew int64

	// UncertaintyBound, when > 0, enables model-based probe scheduling
	// (see model.go): each slave carries a drift + offset estimator and
	// is probed only when its predicted offset uncertainty (one standard
	// deviation, µs) exceeds this bound. 0 keeps the memoryless fixed-
	// cadence rounds, byte-identical to the base algorithm.
	UncertaintyBound int64
	// MinProbeInterval and MaxProbeInterval bracket the per-slave probe
	// gap under model-based scheduling (µs of master time): a slave is
	// never probed again sooner than Min even if its uncertainty has
	// crossed the bound, and never left unprobed longer than Max even if
	// the model still claims confidence. Defaults: Min = 0, Max = 32
	// Min (or 60 s when Min is 0 too).
	MinProbeInterval int64
	MaxProbeInterval int64
	// MeasurementNoise is the assumed standard deviation of one reduced
	// offset estimate (µs); it sets the estimator's measurement variance
	// and the innovation outlier gate's scale. Default 100 µs.
	MeasurementNoise int64
	// DriftWalkPPM is the assumed drift wander: the slave oscillator's
	// frequency error is modelled as a random walk gaining this many ppm
	// of standard deviation per second. Larger values make uncertainty
	// grow faster between probes (more probing, tighter tracking);
	// smaller values trust the drift estimate longer. Default 0.02.
	DriftWalkPPM float64
	// OutlierSigma is the innovation gate: a measurement farther than
	// this many predicted standard deviations from the model's
	// prediction is rejected as an outlier. Default 6.
	OutlierSigma float64
	// FallbackStreak is how many consecutive outliers declare the model
	// diverged, resetting the estimator and falling back to full
	// AlgBRISK rounds until it re-warms. Default 3.
	FallbackStreak int
}

// ModelEnabled reports whether the config selects model-based probe
// scheduling.
func (c Config) ModelEnabled() bool { return c.UncertaintyBound > 0 }

func (c Config) withDefaults() Config {
	if c.ProbesPerSlave <= 0 {
		c.ProbesPerSlave = 5
	}
	if c.Threshold <= 0 {
		c.Threshold = 100
	}
	if c.Damping <= 0 || c.Damping > 1 {
		c.Damping = 0.7
	}
	if c.MinProbeInterval < 0 {
		c.MinProbeInterval = 0
	}
	if c.MaxProbeInterval <= 0 {
		if c.MinProbeInterval > 0 {
			c.MaxProbeInterval = 32 * c.MinProbeInterval
		} else {
			c.MaxProbeInterval = 60_000_000
		}
	}
	if c.MaxProbeInterval < c.MinProbeInterval {
		c.MaxProbeInterval = c.MinProbeInterval
	}
	if c.MeasurementNoise <= 0 {
		c.MeasurementNoise = 100
	}
	if c.DriftWalkPPM <= 0 {
		c.DriftWalkPPM = 0.02
	}
	if c.OutlierSigma <= 0 {
		c.OutlierSigma = 6
	}
	if c.FallbackStreak <= 0 {
		c.FallbackStreak = 3
	}
	return c
}

// Sample is one probe observation of a slave.
type Sample struct {
	// RTT is the master-observed round-trip time in µs.
	RTT int64
	// Offset is the estimated slave-minus-master clock difference in µs:
	// slaveTime - (masterSend + RTT/2).
	Offset int64
}

// EstimateOffset reduces probe samples to a single slave-offset estimate.
// Samples with RTT above maxRTT (if nonzero) are discarded first. The
// second result is false when no usable sample remains. EstimateOffset
// runs in the master's per-round sync loop for every slave, so it reduces
// in a single pass without building a filtered copy — it never allocates.
func EstimateOffset(samples []Sample, filter Filter, maxRTT int64) (int64, bool) {
	var (
		kept     int
		sum      int64
		best     Sample
		haveBest bool
	)
	for _, s := range samples {
		if maxRTT > 0 && s.RTT > maxRTT {
			continue
		}
		kept++
		sum += s.Offset
		if !haveBest || s.RTT < best.RTT {
			best = s
			haveBest = true
		}
	}
	if kept == 0 {
		return 0, false
	}
	if filter == FilterMinRTT {
		return best.Offset, true
	}
	return sum / int64(kept), true // FilterMean
}

// Corrections is the outcome of one round's computation.
type Corrections struct {
	// Ref is the index (into the round's offset slice) of the elected
	// reference slave, or -1 when no slave was usable.
	Ref int
	// RelSkew[i] is slave i's skew behind the reference (µs, ≥ 0);
	// meaningless where Valid[i] is false.
	RelSkew []int64
	// AvgRelSkew is the mean relative skew over the non-reference,
	// valid slaves.
	AvgRelSkew float64
	// Advance[i] is the amount (µs, ≥ 0 under AlgBRISK) by which slave
	// i's clock should be advanced; 0 means no adjustment.
	Advance []int64
}

// ErrNoSlaves reports a round with no usable slave estimates.
var ErrNoSlaves = errors.New("clocksync: no usable slave estimates")

// Compute applies the configured update rule to one round's offset
// estimates. offsets[i] is slave i's estimated slave-minus-master offset;
// valid[i] marks slaves that produced a usable estimate this round.
func Compute(offsets []int64, valid []bool, cfg Config) (Corrections, error) {
	cfg = cfg.withDefaults()
	n := len(offsets)
	if len(valid) != n {
		return Corrections{}, fmt.Errorf("clocksync: %d offsets but %d validity flags", n, len(valid))
	}
	out := Corrections{Ref: -1, RelSkew: make([]int64, n), Advance: make([]int64, n)}

	if cfg.Algorithm == AlgCristian {
		any := false
		for i := 0; i < n; i++ {
			if !valid[i] {
				continue
			}
			any = true
			// Step the slave onto the master clock, either direction,
			// amortized by the slew cap.
			adv := -offsets[i]
			if cfg.MaxSlew > 0 {
				if adv > cfg.MaxSlew {
					adv = cfg.MaxSlew
				} else if adv < -cfg.MaxSlew {
					adv = -cfg.MaxSlew
				}
			}
			out.Advance[i] = adv
			out.RelSkew[i] = abs64(offsets[i])
		}
		if !any {
			return out, ErrNoSlaves
		}
		return out, nil
	}

	// BRISK rule. Elect the most-ahead slave as the reference.
	ref := -1
	var refOffset int64 = math.MinInt64
	for i := 0; i < n; i++ {
		if valid[i] && offsets[i] > refOffset {
			refOffset = offsets[i]
			ref = i
		}
	}
	if ref < 0 {
		return out, ErrNoSlaves
	}
	out.Ref = ref

	// Relative skews of the others against the reference (absolute
	// values: the reference is maximal, so these are non-negative) and
	// their average.
	var sum int64
	var cnt int
	for i := 0; i < n; i++ {
		if !valid[i] || i == ref {
			continue
		}
		out.RelSkew[i] = refOffset - offsets[i]
		sum += out.RelSkew[i]
		cnt++
	}
	if cnt == 0 {
		// A single slave is trivially synchronized with itself.
		return out, nil
	}
	out.AvgRelSkew = float64(sum) / float64(cnt)

	// Advance only the clocks whose relative skew is at or above the
	// average; full skew when the average exceeds the threshold, damped
	// portion otherwise. (The paper says "above the average"; ≥ is used
	// here so that the degenerate two-slave round — where the single
	// non-reference skew equals the average — still makes progress.)
	for i := 0; i < n; i++ {
		if !valid[i] || i == ref {
			continue
		}
		if float64(out.RelSkew[i]) >= out.AvgRelSkew {
			if out.AvgRelSkew > float64(cfg.Threshold) {
				out.Advance[i] = out.RelSkew[i]
			} else {
				out.Advance[i] = int64(cfg.Damping * float64(out.RelSkew[i]))
			}
		}
	}
	return out, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
