package clocksync

import (
	"errors"
	"testing"
)

// stepClock is a hand-advanced master clock for failure-path tests.
type stepClock struct{ now int64 }

func (c *stepClock) NowMicros() int64 { return c.now }

// fakeSlave is a scriptable SlaveConn: a fixed offset against the master
// clock, a fixed probe RTT, and injectable exchange/adjust failures.
type fakeSlave struct {
	clk       *stepClock
	offset    int64
	rtt       int64
	adjustErr error
	adjusts   []int64
	rates     []float64
}

func (f *fakeSlave) Exchange() (int64, error) {
	f.clk.now += f.rtt / 2
	st := f.clk.now + f.offset
	f.clk.now += f.rtt - f.rtt/2
	return st, nil
}

func (f *fakeSlave) Adjust(d int64) error {
	if f.adjustErr != nil {
		return f.adjustErr
	}
	f.offset += d
	f.adjusts = append(f.adjusts, d)
	return nil
}

func (f *fakeSlave) AdjustRate(ppm float64) error {
	f.rates = append(f.rates, ppm)
	return nil
}

// TestMasterAdjustFailureAccounting drives a slave whose Adjust send
// persistently errors: every failed send must be counted in AdjustFailed
// (never in Adjusted), the slave's own clock must stay untouched, and
// after the failure streak the master must drop the slave's model state
// so it is relearned from scratch.
func TestMasterAdjustFailureAccounting(t *testing.T) {
	clk := &stepClock{}
	bad := &fakeSlave{clk: clk, offset: -200_000, rtt: 500, adjustErr: errors.New("conn reset")}
	mid := &fakeSlave{clk: clk, offset: -100_000, rtt: 500}
	ref := &fakeSlave{clk: clk, offset: 0, rtt: 500}
	slaves := []SlaveConn{bad, mid, ref}

	cfg := modelConfig()
	m := NewMaster(clk, cfg, slaves)

	failedRounds := 0
	for r := 0; r < 6; r++ {
		rep, err := m.Round()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if rep.Corrections.Advance[0] > 0 {
			if rep.AdjustFailed < 1 {
				t.Fatalf("round %d: advance pending on failing slave but AdjustFailed=%d",
					r, rep.AdjustFailed)
			}
			failedRounds++
		}
		if rep.Adjusted > 0 && len(bad.adjusts) > 0 {
			t.Fatalf("round %d: failing slave recorded an applied adjustment", r)
		}
		if failedRounds == adjustErrLimit {
			// The streak just completed: the model state must be gone.
			sm := m.models[0]
			if sm.est.Warm() || sm.est.n != 0 {
				t.Fatalf("round %d: model state survived %d failed adjusts", r, failedRounds)
			}
			if sm.lastProbe != 0 || sm.ratePPM != 0 {
				t.Fatalf("round %d: probe/rate state survived reset (lastProbe=%d rate=%f)",
					r, sm.lastProbe, sm.ratePPM)
			}
			return
		}
		clk.now += fiveSeconds
	}
	if failedRounds < adjustErrLimit {
		t.Fatalf("only %d failed-adjust rounds in 6 rounds; streak never completed", failedRounds)
	}
}

// TestMasterAdjustRecoveryResetsStreak checks the converse: a transient
// Adjust failure is repaired by the next successful round and does not
// cost the slave its model.
func TestMasterAdjustRecoveryResetsStreak(t *testing.T) {
	clk := &stepClock{}
	flaky := &fakeSlave{clk: clk, offset: -200_000, rtt: 500, adjustErr: errors.New("transient")}
	ref := &fakeSlave{clk: clk, offset: 0, rtt: 500}
	m := NewMaster(clk, modelConfig(), []SlaveConn{flaky, ref})

	if _, err := m.Round(); err != nil {
		t.Fatal(err)
	}
	if m.models[0].adjustErrs != 1 {
		t.Fatalf("adjustErrs = %d after one failed round, want 1", m.models[0].adjustErrs)
	}
	flaky.adjustErr = nil
	clk.now += fiveSeconds
	rep, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adjusted < 1 || len(flaky.adjusts) == 0 {
		t.Fatal("recovered slave was not adjusted")
	}
	if m.models[0].adjustErrs != 0 {
		t.Fatalf("adjustErrs = %d after recovery, want 0", m.models[0].adjustErrs)
	}
	if m.models[0].est.n == 0 {
		t.Fatal("model state dropped on a transient failure")
	}
}

// TestMasterAllSamplesRTTFiltered runs a round in which every probe of
// every slave exceeds MaxRTT: each slave must be reported Failed (not
// Valid), no adjustments may be issued, and the round as a whole must
// return ErrNoSlaves.
func TestMasterAllSamplesRTTFiltered(t *testing.T) {
	clk := &stepClock{}
	a := &fakeSlave{clk: clk, offset: 50_000, rtt: 10_000}
	b := &fakeSlave{clk: clk, offset: -50_000, rtt: 10_000}
	cfg := Config{MaxRTT: 1500}
	m := NewMaster(clk, cfg, []SlaveConn{a, b})

	rep, err := m.Round()
	if !errors.Is(err, ErrNoSlaves) {
		t.Fatalf("err = %v, want ErrNoSlaves", err)
	}
	if rep.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", rep.Failed)
	}
	for i, v := range rep.Valid {
		if v {
			t.Fatalf("slave %d marked valid with all samples RTT-filtered", i)
		}
	}
	if rep.Adjusted != 0 || len(a.adjusts)+len(b.adjusts) != 0 {
		t.Fatal("adjustments issued in an unusable round")
	}
	// Every probe was still issued (and counted) before being filtered.
	if rep.Probes != 2*5 {
		t.Fatalf("Probes = %d, want 10", rep.Probes)
	}
}

// TestMasterSetSlavesKeyedReconcile checks that models follow their keys
// across fleet changes: a surviving key keeps its estimator, a new key
// starts cold, a departed key's state is dropped.
func TestMasterSetSlavesKeyedReconcile(t *testing.T) {
	clk := &stepClock{}
	s1 := &fakeSlave{clk: clk, offset: 10_000, rtt: 500}
	s2 := &fakeSlave{clk: clk, offset: 0, rtt: 500}
	m := NewMaster(clk, modelConfig(), nil)
	m.SetSlaves([]SlaveConn{s1, s2}, []uint64{101, 102})

	for r := 0; r < 4; r++ {
		if _, err := m.Round(); err != nil {
			t.Fatal(err)
		}
		clk.now += fiveSeconds
	}
	if !m.models[0].est.Warm() {
		t.Fatal("estimator not warm after 4 probed rounds")
	}
	obs := m.models[0].est.n

	// Reorder, drop 102, add 103: 101's model must move with it.
	s3 := &fakeSlave{clk: clk, offset: 5_000, rtt: 500}
	m.SetSlaves([]SlaveConn{s3, s1}, []uint64{103, 101})
	if m.models[1].est.n != obs {
		t.Fatalf("key 101 lost its model across SetSlaves (n=%d, want %d)", m.models[1].est.n, obs)
	}
	if m.models[0].est.n != 0 {
		t.Fatal("new key 103 did not start cold")
	}
}
