package clocksync

import "math"

// This file holds the model-based side of the synchronization master: a
// per-slave drift + offset estimator in the style of the model-based
// clock-synchronization protocol of Freris/Borkar/Kumar. The memoryless
// rounds of the base algorithm probe every slave at a fixed cadence, so
// sync traffic grows linearly with fleet size; the estimator instead
// tracks each slave's clock as
//
//	offset(t) = offset(t0) + drift · (t − t0) + noise
//
// against master time, with an explicit uncertainty that grows between
// observations. Between probes the master extrapolates the slave's offset
// from the estimated drift; a slave is probed again only when its
// predicted uncertainty exceeds Config.UncertaintyBound (bracketed by
// MinProbeInterval/MaxProbeInterval). Measurements whose innovation is
// wildly outside the predicted spread are rejected as outliers; a streak
// of them means the constant-drift model has diverged (a clock step, a
// temperature event) and triggers a fall back to full AlgBRISK rounds
// while the estimator relearns.

// Estimator is a two-state scalar Kalman filter over (masterTime, offset)
// observations for one slave: state [offset µs, drift µs/µs], constant-
// velocity process model with a drift random walk. The zero value is an
// uninitialized estimator; the first observation seeds it.
type Estimator struct {
	n     int   // accepted observations
	lastT int64 // master time of the last accepted observation (µs)

	off   float64 // offset estimate at lastT (µs, slave − master)
	drift float64 // drift estimate (µs per µs of master time)

	// Covariance of [off, drift], symmetric.
	pOO, pOD, pDD float64

	// Noise model (copied from Config at first use).
	measVar   float64 // measurement noise variance (µs²)
	qOffset   float64 // offset process noise density (µs²/µs)
	qDrift    float64 // drift process noise density ((µs/µs)²/µs)
	sigma     float64 // innovation outlier gate, in predicted std devs
	streakMax int     // consecutive outliers that mean divergence

	outliers int // current consecutive-outlier streak
}

// estimatorDefaults derive the noise model from the Config.
func (e *Estimator) configure(cfg Config) {
	mn := float64(cfg.MeasurementNoise)
	e.measVar = mn * mn
	// Offset process noise: a floor so the predicted uncertainty keeps
	// growing even with a perfect drift estimate, forcing an occasional
	// confirming probe. 1e-4 µs²/µs is 100 µs² per second — one σ of
	// unmodeled offset wander reaches 10 µs after a second of silence,
	// so against the ~100–150 µs bounds used in practice this floor alone
	// caps the probe gap at a few minutes.
	e.qOffset = 1e-4 // 100 µs² per second
	// Drift random walk: DriftWalkPPM² of drift variance per second.
	w := cfg.DriftWalkPPM * 1e-6
	e.qDrift = w * w / 1e6
	e.sigma = cfg.OutlierSigma
	e.streakMax = cfg.FallbackStreak
}

// initialDriftSpreadPPM sizes the drift prior: slave oscillators are
// assumed within ±100 ppm of the master, a generous bound for quartz.
const initialDriftSpreadPPM = 100.0

// Warm reports whether the estimator has seen enough observations for
// its drift estimate (and so its extrapolation) to be trustworthy.
func (e *Estimator) Warm() bool { return e.n >= 3 }

// DriftPPM returns the drift estimate in parts per million.
func (e *Estimator) DriftPPM() float64 { return e.drift * 1e6 }

// Reset discards all learned state; the next observation re-seeds.
func (e *Estimator) Reset() { *e = Estimator{} }

// predictCov returns the covariance propagated dt microseconds ahead.
func (e *Estimator) predictCov(dt float64) (pOO, pOD, pDD float64) {
	pOO = e.pOO + 2*dt*e.pOD + dt*dt*e.pDD + e.qOffset*dt
	pOD = e.pOD + dt*e.pDD
	pDD = e.pDD + e.qDrift*dt
	return
}

// PredictAt extrapolates the offset estimate to master time t and returns
// it with its predicted standard deviation (µs). It does not mutate the
// estimator, so the scheduler can poll it every round.
func (e *Estimator) PredictAt(t int64) (offset float64, stddev float64) {
	if e.n == 0 {
		return 0, math.Inf(1)
	}
	dt := float64(t - e.lastT)
	if dt < 0 {
		dt = 0
	}
	pOO, _, _ := e.predictCov(dt)
	return e.off + e.drift*dt, math.Sqrt(pOO)
}

// ObserveResult reports what one measurement did to the estimator.
type ObserveResult struct {
	// Innovation is the measurement minus the prediction (µs).
	Innovation float64
	// Outlier marks a measurement rejected by the innovation gate.
	Outlier bool
	// Diverged marks the rejection that completed an outlier streak: the
	// estimator has reset itself (re-seeded from this measurement) and
	// the caller should fall back to full rounds until it re-warms.
	Diverged bool
}

// Observe folds one reduced offset measurement taken at master time t
// into the estimate.
func (e *Estimator) Observe(t int64, offset int64, cfg Config) ObserveResult {
	z := float64(offset)
	if e.n == 0 {
		e.configure(cfg)
		e.seed(t, z)
		return ObserveResult{}
	}
	dt := float64(t - e.lastT)
	if dt < 0 {
		dt = 0
	}
	pOO, pOD, pDD := e.predictCov(dt)
	pred := e.off + e.drift*dt
	innov := z - pred
	s := pOO + e.measVar

	if e.n >= 2 && innov*innov > e.sigma*e.sigma*s {
		// The measurement is far outside what the model predicts. One or
		// two of these are network noise that survived the RTT filter;
		// a streak means the model itself is wrong.
		e.outliers++
		if e.outliers >= e.streakMax {
			e.configure(cfg)
			e.seed(t, z)
			return ObserveResult{Innovation: innov, Outlier: true, Diverged: true}
		}
		return ObserveResult{Innovation: innov, Outlier: true}
	}
	e.outliers = 0

	kO := pOO / s
	kD := pOD / s
	e.off = pred + kO*innov
	e.drift += kD * innov
	e.pOO = (1 - kO) * pOO
	e.pOD = (1 - kO) * pOD
	e.pDD = pDD - kD*pOD
	e.lastT = t
	e.n++
	return ObserveResult{Innovation: innov}
}

// seed (re)initializes the state from a single measurement: the offset is
// the measurement, the drift is unknown within the oscillator prior.
func (e *Estimator) seed(t int64, z float64) {
	d := initialDriftSpreadPPM * 1e-6
	e.off = z
	e.drift = 0
	e.pOO = e.measVar
	e.pOD = 0
	e.pDD = d * d
	e.lastT = t
	e.n = 1
	e.outliers = 0
}

// ShiftOffset informs the estimator that the slave's clock was stepped by
// delta µs (a master-issued Adjust): the slave−master offset grows by the
// same amount, with no change to uncertainty.
func (e *Estimator) ShiftOffset(delta int64) {
	if e.n > 0 {
		e.off += float64(delta)
	}
}

// ShiftDrift informs the estimator that the slave's effective rate was
// changed by deltaPPM (a master-issued rate command): the residual drift
// the estimator will observe from now on shrinks by the same amount.
func (e *Estimator) ShiftDrift(deltaPPM float64) {
	if e.n > 0 {
		e.drift += deltaPPM * 1e-6
	}
}
