package clocksync

import (
	"fmt"

	"brisk/internal/vclock"
)

// SlaveConn abstracts the master's view of one slave: a synchronous probe
// exchange and an asynchronous clock adjustment. The real implementation
// speaks the wire protocol over the EXS's TCP connection; the simulated
// one advances virtual time across sampled network latencies.
type SlaveConn interface {
	// Exchange performs one probe round trip and returns the slave's
	// clock reading taken while servicing the probe.
	Exchange() (slaveTime int64, err error)
	// Adjust tells the slave to add delta microseconds to its clock
	// correction.
	Adjust(delta int64) error
}

// RoundReport records everything the master learned and did in one
// synchronization round.
type RoundReport struct {
	// Round is the 1-based round number.
	Round uint64
	// Offsets[i] is slave i's estimated slave-minus-master offset (µs).
	Offsets []int64
	// Valid[i] marks slaves that yielded a usable estimate.
	Valid []bool
	// MeanRTT is the mean probe round-trip time across all samples (µs).
	MeanRTT float64
	// Corrections is the computed update.
	Corrections Corrections
	// Adjusted counts slaves actually told to step their clocks.
	Adjusted int
	// Failed counts slaves that yielded no usable estimate this round
	// (all probes lost or filtered) — a dead-peer signal for the caller.
	Failed int
}

// Master drives synchronization rounds against a set of slaves, per the
// paper "a master polls the slaves, determines differences between its
// clock and the slaves' clocks, and updates the slave clocks" — except
// that under AlgBRISK the updates align the slaves with the most-ahead
// slave rather than with the master.
type Master struct {
	clock  vclock.Clock
	cfg    Config
	slaves []SlaveConn
	rounds uint64
}

// NewMaster returns a master reading its own time from clock.
func NewMaster(clock vclock.Clock, cfg Config, slaves []SlaveConn) *Master {
	return &Master{clock: clock, cfg: cfg.withDefaults(), slaves: slaves}
}

// Rounds returns how many rounds have completed.
func (m *Master) Rounds() uint64 { return m.rounds }

// Round performs one full synchronization round: probe every slave
// ProbesPerSlave times, reduce to offset estimates, compute corrections
// under the configured algorithm, and issue the adjustments. A slave whose
// probes all fail is skipped this round (its Valid flag is false); Round
// only returns an error when the round as a whole is unusable.
func (m *Master) Round() (RoundReport, error) {
	m.rounds++
	rep := RoundReport{
		Round:   m.rounds,
		Offsets: make([]int64, len(m.slaves)),
		Valid:   make([]bool, len(m.slaves)),
	}
	var rttSum int64
	var rttN int
	for i, conn := range m.slaves {
		samples := make([]Sample, 0, m.cfg.ProbesPerSlave)
		for p := 0; p < m.cfg.ProbesPerSlave; p++ {
			t0 := m.clock.NowMicros()
			st, err := conn.Exchange()
			if err != nil {
				continue
			}
			t1 := m.clock.NowMicros()
			rtt := t1 - t0
			if rtt < 0 {
				continue
			}
			samples = append(samples, Sample{RTT: rtt, Offset: st - (t0 + rtt/2)})
			rttSum += rtt
			rttN++
		}
		if est, ok := EstimateOffset(samples, m.cfg.Filter, m.cfg.MaxRTT); ok {
			rep.Offsets[i] = est
			rep.Valid[i] = true
		} else {
			rep.Failed++
		}
	}
	if rttN > 0 {
		rep.MeanRTT = float64(rttSum) / float64(rttN)
	}

	corr, err := Compute(rep.Offsets, rep.Valid, m.cfg)
	rep.Corrections = corr
	if err != nil {
		return rep, fmt.Errorf("round %d: %w", m.rounds, err)
	}
	for i, adv := range corr.Advance {
		if adv == 0 || !rep.Valid[i] {
			continue
		}
		if err := m.slaves[i].Adjust(adv); err != nil {
			// A failed adjustment is repaired by the next round; record
			// the slave as unadjusted rather than failing the round.
			continue
		}
		rep.Adjusted++
	}
	return rep, nil
}

// Slave is the passive side of the protocol: it answers probes with its
// corrected clock reading and applies adjustments to the correction value
// maintained for the node's external sensor.
type Slave struct {
	Clock *vclock.Corrected
}

// ProbeTime returns the reading a probe reply should carry.
func (s *Slave) ProbeTime() int64 { return s.Clock.NowMicros() }

// ApplyAdjust folds a master-issued adjustment into the correction value.
func (s *Slave) ApplyAdjust(delta int64) { s.Clock.Adjust(delta) }
