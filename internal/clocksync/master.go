package clocksync

import (
	"fmt"
	"math"

	"brisk/internal/vclock"
)

// SlaveConn abstracts the master's view of one slave: a synchronous probe
// exchange and an asynchronous clock adjustment. The real implementation
// speaks the wire protocol over the EXS's TCP connection; the simulated
// one advances virtual time across sampled network latencies.
type SlaveConn interface {
	// Exchange performs one probe round trip and returns the slave's
	// clock reading taken while servicing the probe.
	Exchange() (slaveTime int64, err error)
	// Adjust tells the slave to add delta microseconds to its clock
	// correction.
	Adjust(delta int64) error
}

// RateConn is the optional extension a slave connection implements when
// its slave can extrapolate between adjustments: AdjustRate sets the
// slave's correction-growth rate (µs per second, never negative). The
// model-based master uses it to cancel estimated drift against the
// round's reference clock, so skew stops growing linearly over a probe
// gap. Connections without it still work — they just get step
// corrections only.
type RateConn interface {
	AdjustRate(ppm float64) error
}

// RoundReport records everything the master learned and did in one
// synchronization round.
type RoundReport struct {
	// Round is the 1-based round number.
	Round uint64
	// Offsets[i] is slave i's estimated slave-minus-master offset (µs).
	// Under model-based scheduling an unprobed slave's entry is the
	// model's extrapolation, not a measurement (see Probed).
	Offsets []int64
	// Valid[i] marks slaves that yielded a usable estimate.
	Valid []bool
	// Probed[i] marks slaves that were actually probed this round (in
	// fixed-cadence mode, every slave).
	Probed []bool
	// MeanRTT is the mean probe round-trip time across all samples (µs).
	MeanRTT float64
	// Corrections is the computed update.
	Corrections Corrections
	// Adjusted counts slaves actually told to step their clocks;
	// AdjustFailed counts slaves whose adjustment send errored (repaired
	// by a later round; a persistent streak resets the slave's model
	// state so it is re-learned from scratch when it returns).
	Adjusted     int
	AdjustFailed int
	// Failed counts slaves that yielded no usable estimate this round
	// (all probes lost or filtered) — a dead-peer signal for the caller.
	Failed int
	// Probes counts probe round trips issued this round; Predicted
	// counts slaves whose offset came from the model instead.
	Probes    int
	Predicted int
	// Fallbacks counts model-divergence events this round (an innovation
	// outlier streak reset an estimator and forced full rounds).
	Fallbacks int
	// DriftPPM[i] and UncertaintyUS[i] expose slave i's model state at
	// the end of the round: the drift estimate (ppm) and the predicted
	// one-σ offset uncertainty (µs). NaN where the model is cold or
	// model-based scheduling is off.
	DriftPPM      []float64
	UncertaintyUS []float64
}

// slaveModel is the master's persistent per-slave state: the estimator,
// probe bookkeeping, and the commanded extrapolation rate.
type slaveModel struct {
	est        Estimator
	lastProbe  int64   // master time of the last probe; 0 = never
	ratePPM    float64 // last rate successfully commanded to the slave
	adjustErrs int     // consecutive failed Adjust sends
}

// adjustErrLimit is how many consecutive failed adjustment sends reset a
// slave's model state: a slave that cannot be steered cannot be trusted
// to match its model when it reappears.
const adjustErrLimit = 3

// fallbackRounds is how many rounds after a model divergence every slave
// is probed (the full AlgBRISK rule) while the estimators relearn.
const fallbackRounds = 2

// Master drives synchronization rounds against a set of slaves, per the
// paper "a master polls the slaves, determines differences between its
// clock and the slaves' clocks, and updates the slave clocks" — except
// that under AlgBRISK the updates align the slaves with the most-ahead
// slave rather than with the master. With Config.UncertaintyBound set,
// the master keeps a drift + offset model per slave and probes a slave
// only when the model's predicted uncertainty demands it (see model.go);
// the Master is then stateful and must be reused across rounds (see
// SetSlaves for a changing fleet).
type Master struct {
	clock  vclock.Clock
	cfg    Config
	slaves []SlaveConn
	keys   []uint64
	models []*slaveModel
	rounds uint64

	fallbackUntil uint64 // rounds ≤ this force full probing
	probesTotal   uint64
	fallbacks     uint64
}

// NewMaster returns a master reading its own time from clock.
func NewMaster(clock vclock.Clock, cfg Config, slaves []SlaveConn) *Master {
	m := &Master{clock: clock, cfg: cfg.withDefaults()}
	m.SetSlaves(slaves, nil)
	return m
}

// SetSlaves replaces the slave set. keys, when non-nil, are stable
// per-slave identities (node ids): a slave that reappears under the same
// key keeps its learned model across the change, new keys start cold,
// and models of departed keys are dropped. A nil keys slice matches
// models positionally (only safe when the set is static).
func (m *Master) SetSlaves(slaves []SlaveConn, keys []uint64) {
	if keys != nil && len(keys) != len(slaves) {
		panic(fmt.Sprintf("clocksync: %d slaves but %d keys", len(slaves), len(keys)))
	}
	models := make([]*slaveModel, len(slaves))
	if keys == nil {
		copy(models, m.models)
	} else {
		byKey := make(map[uint64]*slaveModel, len(m.keys))
		for i, k := range m.keys {
			if i < len(m.models) {
				byKey[k] = m.models[i]
			}
		}
		for i, k := range keys {
			models[i] = byKey[k]
		}
	}
	for i := range models {
		if models[i] == nil {
			models[i] = &slaveModel{}
		}
	}
	m.slaves = slaves
	m.keys = keys
	m.models = models
}

// Rounds returns how many rounds have completed.
func (m *Master) Rounds() uint64 { return m.rounds }

// ProbeRTTs returns the total probe round trips issued over the master's
// lifetime — the sync traffic the model-based scheduler exists to shrink.
func (m *Master) ProbeRTTs() uint64 { return m.probesTotal }

// ModelFallbacks returns how many model-divergence events have forced
// full-round fallbacks.
func (m *Master) ModelFallbacks() uint64 { return m.fallbacks }

// probeSlave issues ProbesPerSlave probe exchanges against one slave and
// reduces them to a single offset estimate.
func (m *Master) probeSlave(conn SlaveConn, rep *RoundReport, rttSum *int64, rttN *int) (int64, bool) {
	samples := make([]Sample, 0, m.cfg.ProbesPerSlave)
	for p := 0; p < m.cfg.ProbesPerSlave; p++ {
		t0 := m.clock.NowMicros()
		rep.Probes++
		m.probesTotal++
		st, err := conn.Exchange()
		if err != nil {
			continue
		}
		t1 := m.clock.NowMicros()
		rtt := t1 - t0
		if rtt < 0 {
			continue
		}
		samples = append(samples, Sample{RTT: rtt, Offset: st - (t0 + rtt/2)})
		*rttSum += rtt
		*rttN += 1
	}
	return EstimateOffset(samples, m.cfg.Filter, m.cfg.MaxRTT)
}

// Round performs one synchronization round. In fixed-cadence mode (the
// default) it probes every slave ProbesPerSlave times, reduces to offset
// estimates, computes corrections under the configured algorithm, and
// issues the adjustments. In model-based mode it probes only the slaves
// whose predicted uncertainty exceeds the bound (or whose probe bracket
// expired), extrapolates the rest from their estimators, and additionally
// commands extrapolation rates that cancel estimated drift. A slave whose
// probes all fail is skipped this round (its Valid flag is false); Round
// only returns an error when the round as a whole is unusable.
func (m *Master) Round() (RoundReport, error) {
	m.rounds++
	n := len(m.slaves)
	rep := RoundReport{
		Round:         m.rounds,
		Offsets:       make([]int64, n),
		Valid:         make([]bool, n),
		Probed:        make([]bool, n),
		DriftPPM:      make([]float64, n),
		UncertaintyUS: make([]float64, n),
	}
	for i := range rep.DriftPPM {
		rep.DriftPPM[i] = math.NaN()
		rep.UncertaintyUS[i] = math.NaN()
	}
	model := m.cfg.ModelEnabled()

	var rttSum int64
	var rttN int
	for i, conn := range m.slaves {
		sm := m.models[i]
		// Read the clock per slave: the serial probe exchanges of earlier
		// slaves advance time by their cumulative RTTs, so a hoisted
		// timestamp would understate gaps and predicted uncertainty for
		// the slaves late in a large fleet.
		now := m.clock.NowMicros()
		if model && !m.slaveDue(sm, now) {
			// Trust the model: extrapolate the offset to now.
			off, sd := sm.est.PredictAt(now)
			rep.Offsets[i] = int64(off)
			rep.Valid[i] = true
			rep.Predicted++
			rep.DriftPPM[i] = sm.est.DriftPPM()
			rep.UncertaintyUS[i] = sd
			continue
		}
		est, ok := m.probeSlave(conn, &rep, &rttSum, &rttN)
		if !ok {
			rep.Failed++
			continue
		}
		rep.Probed[i] = true
		rep.Offsets[i] = est
		rep.Valid[i] = true
		if model {
			t := m.clock.NowMicros()
			sm.lastProbe = t
			res := sm.est.Observe(t, est, m.cfg)
			if res.Diverged {
				// Innovation outlier streak: the constant-drift model no
				// longer describes this clock (a step, a thermal event).
				// The estimator re-seeded itself; force the conservative
				// full-round rule while the fleet relearns.
				rep.Fallbacks++
				m.fallbacks++
				m.fallbackUntil = m.rounds + fallbackRounds
				sm.ratePPM = 0
				if rc, okRate := conn.(RateConn); okRate {
					// Freeze extrapolation until the model re-warms; an
					// error here is repaired with the model itself.
					_ = rc.AdjustRate(0)
				}
			}
			_, sd := sm.est.PredictAt(t)
			rep.DriftPPM[i] = sm.est.DriftPPM()
			rep.UncertaintyUS[i] = sd
		}
	}
	if rttN > 0 {
		rep.MeanRTT = float64(rttSum) / float64(rttN)
	}

	corr, err := Compute(rep.Offsets, rep.Valid, m.cfg)
	rep.Corrections = corr
	if err != nil {
		return rep, fmt.Errorf("round %d: %w", m.rounds, err)
	}
	for i, adv := range corr.Advance {
		if adv == 0 || !rep.Valid[i] {
			continue
		}
		sm := m.models[i]
		if err := m.slaves[i].Adjust(adv); err != nil {
			// A failed adjustment is repaired by the next round; record
			// the slave as unadjusted rather than failing the round. A
			// persistent streak means the slave's clock has departed
			// from anything the model predicted — drop the model.
			rep.AdjustFailed++
			sm.adjustErrs++
			if sm.adjustErrs >= adjustErrLimit {
				sm.est.Reset()
				sm.ratePPM = 0
				sm.lastProbe = 0
			}
			continue
		}
		sm.adjustErrs = 0
		rep.Adjusted++
		if model {
			sm.est.ShiftOffset(adv)
		}
	}
	if model {
		m.commandRates(corr, rep.Valid)
	}
	return rep, nil
}

// slaveDue decides whether a slave must be probed this round.
func (m *Master) slaveDue(sm *slaveModel, now int64) bool {
	if m.rounds <= m.fallbackUntil || !sm.est.Warm() || sm.lastProbe == 0 {
		return true
	}
	gap := now - sm.lastProbe
	if gap >= m.cfg.MaxProbeInterval {
		return true
	}
	if gap < m.cfg.MinProbeInterval {
		return false
	}
	_, sd := sm.est.PredictAt(now)
	return sd > float64(m.cfg.UncertaintyBound)
}

// commandRates steers each warm slave's extrapolation rate so its
// corrected clock tracks the round's reference rate: the residual drift
// the estimator observes (which already includes any previously commanded
// rate) is cancelled against the reference slave's. Rates are clamped at
// zero — extrapolation, like step corrections, only ever advances a
// clock — and only re-sent when they move materially.
func (m *Master) commandRates(corr Corrections, valid []bool) {
	ref := corr.Ref
	if ref < 0 || !m.models[ref].est.Warm() {
		return
	}
	refDrift := m.models[ref].est.DriftPPM()
	const minDelta = 0.01 // ppm; below this, re-sending is pure traffic
	for i, conn := range m.slaves {
		if i == ref || !valid[i] {
			continue
		}
		sm := m.models[i]
		if !sm.est.Warm() {
			continue
		}
		rc, ok := conn.(RateConn)
		if !ok {
			continue
		}
		target := sm.ratePPM + (refDrift - sm.est.DriftPPM())
		if target < 0 {
			target = 0
		}
		if math.Abs(target-sm.ratePPM) < minDelta {
			continue
		}
		if err := rc.AdjustRate(target); err != nil {
			continue
		}
		sm.est.ShiftDrift(target - sm.ratePPM)
		sm.ratePPM = target
	}
}

// Slave is the passive side of the protocol: it answers probes with its
// corrected clock reading and applies adjustments to the correction value
// maintained for the node's external sensor.
type Slave struct {
	Clock *vclock.Corrected
}

// ProbeTime returns the reading a probe reply should carry.
func (s *Slave) ProbeTime() int64 { return s.Clock.NowMicros() }

// ApplyAdjust folds a master-issued adjustment into the correction value.
func (s *Slave) ApplyAdjust(delta int64) { s.Clock.Adjust(delta) }

// ApplyRate folds a master-issued extrapolation rate into the correction
// layer.
func (s *Slave) ApplyRate(ppm float64) { s.Clock.SetRatePPM(ppm) }
