package clocksync

import (
	"errors"
	"math/rand"
	"testing"

	"brisk/internal/vclock"
)

func TestEstimateOffsetMean(t *testing.T) {
	s := []Sample{{RTT: 100, Offset: 10}, {RTT: 100, Offset: 20}, {RTT: 100, Offset: 30}}
	got, ok := EstimateOffset(s, FilterMean, 0)
	if !ok || got != 20 {
		t.Fatalf("mean = %d, %v", got, ok)
	}
}

func TestEstimateOffsetMinRTT(t *testing.T) {
	s := []Sample{{RTT: 300, Offset: 99}, {RTT: 50, Offset: 7}, {RTT: 200, Offset: 55}}
	got, ok := EstimateOffset(s, FilterMinRTT, 0)
	if !ok || got != 7 {
		t.Fatalf("minrtt = %d, %v", got, ok)
	}
}

func TestEstimateOffsetMaxRTTFilter(t *testing.T) {
	s := []Sample{{RTT: 5000, Offset: 100}, {RTT: 100, Offset: 10}}
	got, ok := EstimateOffset(s, FilterMean, 1000)
	if !ok || got != 10 {
		t.Fatalf("filtered mean = %d, %v", got, ok)
	}
	// All samples over the bound → unusable.
	if _, ok := EstimateOffset(s, FilterMean, 10); ok {
		t.Fatal("all-filtered estimate reported usable")
	}
	if _, ok := EstimateOffset(nil, FilterMean, 0); ok {
		t.Fatal("empty estimate reported usable")
	}
}

func TestComputeElectsMostAheadClock(t *testing.T) {
	offsets := []int64{-500, 2000, 300}
	valid := []bool{true, true, true}
	c, err := Compute(offsets, valid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ref != 1 {
		t.Fatalf("ref = %d, want 1 (most ahead)", c.Ref)
	}
	if c.Advance[1] != 0 {
		t.Fatal("reference clock must never be advanced")
	}
	if c.RelSkew[0] != 2500 || c.RelSkew[2] != 1700 {
		t.Fatalf("relative skews = %v", c.RelSkew)
	}
	if c.AvgRelSkew != 2100 {
		t.Fatalf("avg = %v, want 2100", c.AvgRelSkew)
	}
	// Above threshold (avg 2100 > 100): full correction, but only for
	// clocks whose skew exceeds the average — here only slave 0.
	if c.Advance[0] != 2500 {
		t.Fatalf("advance[0] = %d, want full skew 2500", c.Advance[0])
	}
	if c.Advance[2] != 0 {
		t.Fatalf("advance[2] = %d, want 0 (below average)", c.Advance[2])
	}
}

func TestComputeDampedBelowThreshold(t *testing.T) {
	// Average relative skew 60 µs < default threshold 100 µs.
	offsets := []int64{0, 100, 20}
	valid := []bool{true, true, true}
	c, err := Compute(offsets, valid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ref != 1 || c.AvgRelSkew != 90 {
		t.Fatalf("ref=%d avg=%v", c.Ref, c.AvgRelSkew)
	}
	// Slave 0: skew 100 > avg 90 → damped 0.7*100 = 70.
	if c.Advance[0] != 70 {
		t.Fatalf("advance[0] = %d, want 70", c.Advance[0])
	}
	if c.Advance[2] != 0 {
		t.Fatalf("advance[2] = %d, want 0", c.Advance[2])
	}
}

func TestComputeCustomDampingAndThreshold(t *testing.T) {
	offsets := []int64{0, 1000}
	valid := []bool{true, true}
	c, err := Compute(offsets, valid, Config{Threshold: 5000, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// avg = 1000 < threshold 5000 → damped by 0.5.
	if c.Advance[0] != 500 {
		t.Fatalf("advance[0] = %d, want 500", c.Advance[0])
	}
}

func TestComputeInvalidSlavesSkipped(t *testing.T) {
	offsets := []int64{9999, 100, 0}
	valid := []bool{false, true, true}
	c, err := Compute(offsets, valid, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ref != 1 {
		t.Fatalf("ref = %d; invalid slave must not be elected", c.Ref)
	}
	if c.Advance[0] != 0 {
		t.Fatal("invalid slave received a correction")
	}
}

func TestComputeNoUsableSlaves(t *testing.T) {
	_, err := Compute([]int64{1, 2}, []bool{false, false}, Config{})
	if !errors.Is(err, ErrNoSlaves) {
		t.Fatalf("err = %v, want ErrNoSlaves", err)
	}
}

func TestComputeSingleSlave(t *testing.T) {
	c, err := Compute([]int64{123}, []bool{true}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ref != 0 || c.Advance[0] != 0 {
		t.Fatalf("single slave: %+v", c)
	}
}

func TestComputeMismatchedLengths(t *testing.T) {
	if _, err := Compute([]int64{1}, []bool{true, false}, Config{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestComputeCristianBaseline(t *testing.T) {
	offsets := []int64{-500, 2000, 0}
	valid := []bool{true, true, false}
	c, err := Compute(offsets, valid, Config{Algorithm: AlgCristian})
	if err != nil {
		t.Fatal(err)
	}
	// Cristian steps each slave onto the master: advance = -offset,
	// including negative steps.
	if c.Advance[0] != 500 || c.Advance[1] != -2000 || c.Advance[2] != 0 {
		t.Fatalf("cristian advances = %v", c.Advance)
	}
}

// TestComputeBRISKPropertyNonNegative checks the paper's guarantee: under
// AlgBRISK clocks are only advanced, and the reference is never touched.
func TestComputeBRISKPropertyNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(10)
		offsets := make([]int64, n)
		valid := make([]bool, n)
		anyValid := false
		for i := range offsets {
			offsets[i] = rng.Int63n(2_000_001) - 1_000_000
			valid[i] = rng.Intn(4) != 0
			anyValid = anyValid || valid[i]
		}
		c, err := Compute(offsets, valid, Config{})
		if !anyValid {
			if !errors.Is(err, ErrNoSlaves) {
				t.Fatalf("iter %d: err = %v", iter, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i, adv := range c.Advance {
			if adv < 0 {
				t.Fatalf("iter %d: negative advance %d for slave %d", iter, adv, i)
			}
			if !valid[i] && adv != 0 {
				t.Fatalf("iter %d: invalid slave %d advanced", iter, i)
			}
		}
		if c.Advance[c.Ref] != 0 {
			t.Fatalf("iter %d: reference advanced", iter)
		}
		// After applying the advances, no slave may end up ahead of the
		// reference (conservativeness: no erroneous promotion).
		refOff := offsets[c.Ref]
		for i := range offsets {
			if !valid[i] || i == c.Ref {
				continue
			}
			if offsets[i]+c.Advance[i] > refOff {
				t.Fatalf("iter %d: slave %d overshot the reference", iter, i)
			}
		}
	}
}

func TestAlgorithmAndFilterStrings(t *testing.T) {
	if AlgBRISK.String() != "brisk" || AlgCristian.String() != "cristian" {
		t.Error("algorithm names")
	}
	if FilterMean.String() != "mean" || FilterMinRTT.String() != "minrtt" {
		t.Error("filter names")
	}
	if Algorithm(9).String() == "" || Filter(9).String() == "" {
		t.Error("unknown enums must still print")
	}
}

// fakeConn is a scripted SlaveConn for master-driver tests.
type fakeConn struct {
	clock    *vclock.Corrected
	master   *vclock.Manual
	rtt      int64
	failNext int
	adjusts  []int64
}

func (f *fakeConn) Exchange() (int64, error) {
	if f.failNext > 0 {
		f.failNext--
		return 0, errors.New("probe lost")
	}
	// Model a symmetric RTT: master clock advances rtt, slave sampled at
	// the midpoint.
	f.master.Advance(f.rtt / 2)
	st := f.clock.NowMicros()
	f.master.Advance(f.rtt - f.rtt/2)
	return st, nil
}

func (f *fakeConn) Adjust(delta int64) error {
	f.adjusts = append(f.adjusts, delta)
	f.clock.Adjust(delta)
	return nil
}

func TestMasterRoundConvergesFakes(t *testing.T) {
	master := vclock.NewManual(1_000_000)
	mk := func(offset int64) *fakeConn {
		return &fakeConn{
			clock:  vclock.NewCorrected(vclock.ClockFunc(func() int64 { return master.NowMicros() + offset })),
			master: master,
			rtt:    200,
		}
	}
	// Wrap so the corrected layer holds the adjustment.
	conns := []*fakeConn{mk(-3000), mk(500), mk(-1200)}
	slaves := make([]SlaveConn, len(conns))
	for i := range conns {
		slaves[i] = conns[i]
	}
	m := NewMaster(master, Config{ProbesPerSlave: 3}, slaves)
	rep, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrections.Ref != 1 {
		t.Fatalf("ref = %d", rep.Corrections.Ref)
	}
	if rep.Adjusted == 0 {
		t.Fatal("no slave adjusted")
	}
	// After a couple of rounds all clocks should be within a tight bound
	// of the reference (RTT is symmetric so estimates are exact).
	for i := 0; i < 3; i++ {
		if _, err := m.Round(); err != nil {
			t.Fatal(err)
		}
	}
	base := conns[1].clock.NowMicros()
	for i, c := range conns {
		d := c.clock.NowMicros() - base
		if d < -100 || d > 100 {
			t.Fatalf("slave %d still %d µs from reference", i, d)
		}
	}
	if m.Rounds() != 4 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
}

func TestMasterSkipsFailedSlaves(t *testing.T) {
	master := vclock.NewManual(0)
	good := &fakeConn{
		clock:  vclock.NewCorrected(vclock.ClockFunc(master.NowMicros)),
		master: master, rtt: 100,
	}
	bad := &fakeConn{
		clock:  vclock.NewCorrected(vclock.ClockFunc(master.NowMicros)),
		master: master, rtt: 100, failNext: 1 << 30,
	}
	m := NewMaster(master, Config{ProbesPerSlave: 2}, []SlaveConn{good, bad})
	rep, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid[0] || rep.Valid[1] {
		t.Fatalf("valid = %v", rep.Valid)
	}
}

func TestMasterAllSlavesDown(t *testing.T) {
	master := vclock.NewManual(0)
	bad := &fakeConn{
		clock:  vclock.NewCorrected(vclock.ClockFunc(master.NowMicros)),
		master: master, rtt: 100, failNext: 1 << 30,
	}
	m := NewMaster(master, Config{ProbesPerSlave: 2}, []SlaveConn{bad})
	if _, err := m.Round(); !errors.Is(err, ErrNoSlaves) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlaveHelpers(t *testing.T) {
	c := vclock.NewCorrected(vclock.NewManual(500))
	s := &Slave{Clock: c}
	if s.ProbeTime() != 500 {
		t.Fatalf("ProbeTime = %d", s.ProbeTime())
	}
	s.ApplyAdjust(25)
	if s.ProbeTime() != 525 {
		t.Fatalf("after adjust = %d", s.ProbeTime())
	}
}

func TestMasterMaxRTTDiscardsCongestedProbes(t *testing.T) {
	// A slave whose probes alternate between fast and very slow RTTs: the
	// slow ones carry a large bogus offset (as congested probes do). With
	// the MaxRTT filter only the fast, accurate samples survive.
	master := vclock.NewManual(0)
	probeN := 0
	slave := &variableRTTConn{master: master, clock: vclock.NewCorrected(vclock.ClockFunc(func() int64 {
		return master.NowMicros() + 100 // truly 100 µs ahead
	})), probeN: &probeN}

	m := NewMaster(master, Config{ProbesPerSlave: 6, MaxRTT: 1000}, []SlaveConn{slave})
	rep, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid[0] {
		t.Fatal("slave invalid")
	}
	// Offset estimate must reflect the true +100 µs, not the ±ms noise of
	// the congested probes.
	if rep.Offsets[0] < 50 || rep.Offsets[0] > 150 {
		t.Fatalf("offset = %d, want ≈100 (congested probes not filtered)", rep.Offsets[0])
	}
}

// variableRTTConn alternates clean and congested probes.
type variableRTTConn struct {
	master *vclock.Manual
	clock  *vclock.Corrected
	probeN *int
}

func (v *variableRTTConn) Exchange() (int64, error) {
	*v.probeN++
	if *v.probeN%2 == 0 {
		// Congested: 5 ms RTT, heavily asymmetric (4.5 ms out, 0.5 back),
		// which biases the half-RTT estimator by ±2 ms.
		v.master.Advance(4500)
		st := v.clock.NowMicros()
		v.master.Advance(500)
		return st, nil
	}
	v.master.Advance(100)
	st := v.clock.NowMicros()
	v.master.Advance(100)
	return st, nil
}

func (v *variableRTTConn) Adjust(delta int64) error {
	v.clock.Adjust(delta)
	return nil
}
