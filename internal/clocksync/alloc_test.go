package clocksync

import "testing"

// TestAllocsEstimateOffset pins the probe-reduction path's zero-allocation
// contract: EstimateOffset runs per slave per sync round and must reduce
// its samples in place, under both filters and with the RTT cutoff active.
func TestAllocsEstimateOffset(t *testing.T) {
	samples := []Sample{
		{RTT: 120, Offset: 40},
		{RTT: 90, Offset: 35},
		{RTT: 5000, Offset: 900}, // discarded by maxRTT
		{RTT: 250, Offset: 55},
		{RTT: 70, Offset: 30},
	}
	for _, f := range []Filter{FilterMean, FilterMinRTT} {
		allocs := testing.AllocsPerRun(1000, func() {
			if _, ok := EstimateOffset(samples, f, 1000); !ok {
				t.Fatal("no estimate")
			}
		})
		if allocs != 0 {
			t.Fatalf("EstimateOffset(%v) allocates %.1f times, want 0", f, allocs)
		}
	}
}
