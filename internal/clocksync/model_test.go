package clocksync

import (
	"math"
	"testing"

	"brisk/internal/simnet"
)

// modelConfig is the tuned model-based configuration the property tests
// exercise: probe a slave when its predicted uncertainty crosses 150 µs,
// never more often than the 5 s poll period, never less often than every
// 2 minutes.
func modelConfig() Config {
	return Config{
		MaxRTT:           1500,
		UncertaintyBound: 150,
		MinProbeInterval: 5_000_000,
		MaxProbeInterval: 120_000_000,
		MeasurementNoise: 30,
		DriftWalkPPM:     0.01,
	}
}

// maxOf returns the maximum of the last n entries.
func maxOf(skews []int64, n int) int64 {
	var m int64
	for _, s := range skews[len(skews)-n:] {
		if s > m {
			m = s
		}
	}
	return m
}

// TestEstimatorTracksConstantDrift feeds the estimator synthetic
// observations of a linearly drifting clock and checks it recovers the
// drift rate and predicts ahead accurately.
func TestEstimatorTracksConstantDrift(t *testing.T) {
	cfg := Config{}.withDefaults()
	var e Estimator
	const driftPPM = 17.0 // 17 µs/s
	for i := 0; i < 10; i++ {
		tm := int64(i) * 5_000_000
		off := int64(1000 + driftPPM*1e-6*float64(tm))
		res := e.Observe(tm, off, cfg)
		if res.Outlier {
			t.Fatalf("obs %d flagged outlier (innov %.1f)", i, res.Innovation)
		}
	}
	if !e.Warm() {
		t.Fatal("estimator not warm after 10 observations")
	}
	if got := e.DriftPPM(); math.Abs(got-driftPPM) > 1 {
		t.Fatalf("drift estimate %.2f ppm, want ~%.0f", got, driftPPM)
	}
	// Predict 60 s ahead: error should be well under the drift's effect
	// (17 ppm over 60 s = 1020 µs).
	at := int64(10 * 5_000_000 * 6)
	want := 1000 + driftPPM*1e-6*float64(at)
	got, sd := e.PredictAt(at)
	if math.Abs(got-want) > 100 {
		t.Fatalf("prediction at %d: got %.0f want %.0f (sd %.0f)", at, got, want, sd)
	}
	if sd <= 0 || math.IsInf(sd, 1) {
		t.Fatalf("prediction stddev %v", sd)
	}
}

// TestEstimatorOutlierStreakDiverges checks the innovation gate: isolated
// wild measurements are rejected without disturbing the state, and a
// streak of them re-seeds the estimator and reports divergence.
func TestEstimatorOutlierStreakDiverges(t *testing.T) {
	cfg := Config{}.withDefaults()
	var e Estimator
	for i := 0; i < 6; i++ {
		e.Observe(int64(i)*5_000_000, 500, cfg)
	}
	driftBefore := e.DriftPPM()

	// One outlier: rejected, state untouched.
	res := e.Observe(6*5_000_000, 500_000, cfg)
	if !res.Outlier || res.Diverged {
		t.Fatalf("single wild measurement: outlier=%v diverged=%v", res.Outlier, res.Diverged)
	}
	if e.DriftPPM() != driftBefore {
		t.Fatal("outlier mutated the drift estimate")
	}

	// Two more complete the default streak of 3: divergence, re-seeded
	// from the last measurement.
	e.Observe(7*5_000_000, 500_000, cfg)
	res = e.Observe(8*5_000_000, 500_000, cfg)
	if !res.Diverged {
		t.Fatal("outlier streak did not report divergence")
	}
	if e.Warm() {
		t.Fatal("estimator still warm after divergence re-seed")
	}
	off, _ := e.PredictAt(8 * 5_000_000)
	if math.Abs(off-500_000) > 1 {
		t.Fatalf("re-seed offset %.0f, want ~500000", off)
	}
}

// TestModelProbeEfficiencyQuietLAN is the headline property test: on the
// paper's E6 quiet-LAN scenario, model-based scheduling must match or
// beat fixed-cadence steady-state skew at ≥5× fewer probe round trips —
// across several deterministic seeds.
func TestModelProbeEfficiencyQuietLAN(t *testing.T) {
	for _, seed := range []uint64{99, 7, 31, 42, 2026} {
		fixedC := NewSimCluster(8, simnet.QuietLAN(seed), 5_000_000, 2, seed)
		fixed := fixedC.Run(Config{}, 120, fiveSeconds, 100)

		modelC := NewSimCluster(8, simnet.QuietLAN(seed), 5_000_000, 2, seed)
		model := modelC.Run(modelConfig(), 120, fiveSeconds, 100)

		if model.TotalProbes*5 > fixed.TotalProbes {
			t.Errorf("seed %d: model used %d probes, fixed %d — reduction %.1fx < 5x",
				seed, model.TotalProbes, fixed.TotalProbes,
				float64(fixed.TotalProbes)/float64(model.TotalProbes))
		}
		fm, mm := maxOf(fixed.SkewAfterRound, 50), maxOf(model.SkewAfterRound, 50)
		if mm > fm {
			t.Errorf("seed %d: model steady skew %d µs worse than fixed %d µs", seed, mm, fm)
		}
		if model.RoundsToConverge < 0 {
			t.Errorf("seed %d: model run never converged under 100 µs", seed)
		}
	}
}

// TestModelProbeEfficiencyDisturbedLAN repeats the probe-budget property
// under LAN disturbances: the model must keep the paper's "under 200 µs
// most of the time" bound at least as well as fixed cadence, still at
// ≥5× fewer probes.
func TestModelProbeEfficiencyDisturbedLAN(t *testing.T) {
	overFrac := func(skews []int64) float64 {
		over := 0
		for _, s := range skews[20:] {
			if s > 200 {
				over++
			}
		}
		return float64(over) / float64(len(skews)-20)
	}
	fixedC := NewSimCluster(8, simnet.LAN(2), 5_000_000, 2, 7)
	fixed := fixedC.Run(Config{MaxRTT: 1500}, 120, fiveSeconds, 200)

	modelC := NewSimCluster(8, simnet.LAN(2), 5_000_000, 2, 7)
	model := modelC.Run(modelConfig(), 120, fiveSeconds, 200)

	if model.TotalProbes*5 > fixed.TotalProbes {
		t.Errorf("model used %d probes, fixed %d — reduction < 5x",
			model.TotalProbes, fixed.TotalProbes)
	}
	ff, mf := overFrac(fixed.SkewAfterRound), overFrac(model.SkewAfterRound)
	if mf > ff {
		t.Errorf("model over-200µs fraction %.2f worse than fixed %.2f", mf, ff)
	}
	if mf > 0.25 {
		t.Errorf("model over-200µs fraction %.2f exceeds the paper's bound", mf)
	}
}

// TestModelNeverSetBack verifies the paper's invariant survives rate
// extrapolation: with the model commanding rates and step corrections,
// no corrected clock ever reads earlier than it did before.
func TestModelNeverSetBack(t *testing.T) {
	c := NewSimCluster(6, simnet.QuietLAN(3), 1_000_000, 10, 17)
	m := NewMaster(c.MasterClock, modelConfig(), c.Conns())
	prev := c.Readings()
	for r := 0; r < 60; r++ {
		if _, err := m.Round(); err != nil {
			t.Fatal(err)
		}
		// Sample at sub-round granularity so extrapolation between
		// adjustments is covered too.
		for k := 0; k < 5; k++ {
			c.Sim.RunUntil(c.Sim.Now() + fiveSeconds/5)
			cur := c.Readings()
			for i := range cur {
				if cur[i] < prev[i] {
					t.Fatalf("round %d: slave %d clock moved backward (%d -> %d)",
						r, i, prev[i], cur[i])
				}
			}
			prev = cur
		}
	}
}

// TestModelTempRampTracked runs the temperature-ramp regime: node
// frequency errors slew over the run, which the drift random walk must
// track without diverging, still at a probe discount.
func TestModelTempRampTracked(t *testing.T) {
	regime := DriftRegime{Kind: DriftTempRamp, SpreadPPM: 2, RampPPMPerHour: 10}
	fixedC := NewSimClusterRegime(8, simnet.QuietLAN(5), 5_000_000, regime, 13)
	fixed := fixedC.Run(Config{}, 120, fiveSeconds, 100)

	modelC := NewSimClusterRegime(8, simnet.QuietLAN(5), 5_000_000, regime, 13)
	cfg := modelConfig()
	// Expect wander: a larger assumed drift walk and a tighter bracket
	// make the scheduler probe more readily — the regime's stated price.
	cfg.DriftWalkPPM = 0.05
	cfg.UncertaintyBound = 100
	cfg.MaxProbeInterval = 60_000_000
	model := modelC.Run(cfg, 120, fiveSeconds, 100)

	if model.TotalProbes*3 > fixed.TotalProbes {
		t.Errorf("ramp regime: model %d probes vs fixed %d — expected ≥3x reduction",
			model.TotalProbes, fixed.TotalProbes)
	}
	fm, mm := maxOf(fixed.SkewAfterRound, 40), maxOf(model.SkewAfterRound, 40)
	if mm > fm && mm > 100 {
		t.Errorf("ramp regime: model steady skew %d µs vs fixed %d µs", mm, fm)
	}
}

// TestModelStepChangeFallsBack runs the step-change regime: a frequency
// jump mid-run must trip the innovation gate, reset the affected
// estimators, and force full rounds until they relearn — after which the
// cluster re-converges.
func TestModelStepChangeFallsBack(t *testing.T) {
	regime := DriftRegime{
		Kind: DriftStep, SpreadPPM: 2,
		StepAtMicros: 250_000_000, // 250 s in: well after warm-up
		StepPPM:      40,
	}
	c := NewSimClusterRegime(8, simnet.QuietLAN(9), 5_000_000, regime, 21)
	res := c.Run(modelConfig(), 160, fiveSeconds, 100)

	if res.Fallbacks == 0 {
		t.Error("step regime triggered no model fallbacks")
	}
	// Recovered: the last quarter of the run is back under the paper's
	// disturbed bound.
	if mm := maxOf(res.SkewAfterRound, 40); mm > 200 {
		t.Errorf("step regime: skew %d µs in final quarter — did not recover", mm)
	}
	if res.RoundsToConverge < 0 {
		t.Error("step regime never converged")
	}
}

// TestModelFixedCadenceUnchanged pins the compatibility contract: with
// UncertaintyBound zero the master's round-by-round behaviour is
// byte-identical to the pre-model algorithm (same probes, same skew
// trajectory), so existing deployments see no change.
func TestModelFixedCadenceUnchanged(t *testing.T) {
	run := func() RunResult {
		c := NewSimCluster(5, simnet.LAN(77), 2_000_000, 25, 42)
		return c.Run(Config{}, 20, fiveSeconds, 100)
	}
	a, b := run(), run()
	for i := range a.SkewAfterRound {
		if a.SkewAfterRound[i] != b.SkewAfterRound[i] {
			t.Fatalf("round %d skew differs: %d vs %d", i, a.SkewAfterRound[i], b.SkewAfterRound[i])
		}
	}
	if a.TotalProbes != 20*5*5 {
		t.Fatalf("fixed cadence issued %d probes, want %d", a.TotalProbes, 20*5*5)
	}
	if a.Fallbacks != 0 {
		t.Fatalf("fixed cadence recorded %d fallbacks", a.Fallbacks)
	}
}
