package clocksync

import (
	"brisk/internal/des"
	"brisk/internal/simnet"
	"brisk/internal/vclock"
)

// DriftKind selects how a simulated node's frequency error behaves over
// time — the regimes the model-based scheduler must survive.
type DriftKind int

const (
	// DriftConstant is a fixed per-node frequency error: the regime the
	// constant-drift model describes exactly.
	DriftConstant DriftKind = iota
	// DriftTempRamp slews each node's frequency error linearly over the
	// run, like a machine room warming up: the model tracks it through
	// its drift random walk, at the price of more frequent probes.
	DriftTempRamp
	// DriftStep jumps each node's frequency error at a fixed instant,
	// like a fan failure: the model diverges (innovation outlier streak)
	// and must fall back to full rounds while it relearns.
	DriftStep
)

// String names the regime.
func (k DriftKind) String() string {
	switch k {
	case DriftConstant:
		return "constant"
	case DriftTempRamp:
		return "temp-ramp"
	case DriftStep:
		return "step-change"
	default:
		return "DriftKind(?)"
	}
}

// DriftRegime describes the per-node frequency-error behaviour of a
// simulated cluster. Each node draws its parameters from the cluster
// seed, so regimes replay deterministically.
type DriftRegime struct {
	Kind DriftKind
	// SpreadPPM is the half-width of the initial frequency errors:
	// each node draws uniform in ±SpreadPPM.
	SpreadPPM float64
	// RampPPMPerHour (DriftTempRamp) is the half-width of each node's
	// frequency slew rate: drawn uniform in ±RampPPMPerHour.
	RampPPMPerHour float64
	// StepAtMicros and StepPPM (DriftStep): at StepAtMicros of virtual
	// time each node's frequency error jumps by a draw in ±StepPPM.
	StepAtMicros int64
	StepPPM      float64
}

// varDrift is a simulated node clock whose frequency error varies over
// virtual time per a DriftRegime. The accumulated skew is the closed-form
// integral of the drift profile, so readings are exact at any instant.
// The simulator is single-threaded, so no locking is needed; the fields
// are immutable after construction in any case.
type varDrift struct {
	ref    vclock.Clock
	epoch  int64
	offset int64
	base   float64 // ppm
	ramp   float64 // ppm per µs
	stepAt int64   // elapsed µs; 0 = no step
	step   float64 // ppm added after stepAt
}

// NowMicros returns the skewed reading: elapsed true time plus the
// integral of the drift profile.
func (v *varDrift) NowMicros() int64 {
	elapsed := v.ref.NowMicros() - v.epoch
	skew := v.base * float64(elapsed)
	skew += 0.5 * v.ramp * float64(elapsed) * float64(elapsed)
	if v.stepAt > 0 && elapsed > v.stepAt {
		skew += v.step * float64(elapsed-v.stepAt)
	}
	return v.epoch + v.offset + elapsed + int64(skew*1e-6)
}

// SkewAgainstRef returns the clock's current raw offset from the
// reference — what a correction must cancel.
func (v *varDrift) SkewAgainstRef() int64 {
	return v.NowMicros() - v.ref.NowMicros()
}

// SimNode is one simulated external-sensor node: a drifting clock wrapped
// by the correction layer the synchronization protocol adjusts.
type SimNode struct {
	// Clock is the node's corrected clock — what probes report and what
	// record timestamps would use.
	Clock *vclock.Corrected
	// ProcDelay is the probe service time on the node (µs).
	ProcDelay int64
}

// NewSimNode builds a node over the simulator's virtual time with the
// given initial offset (µs) and frequency error (ppm).
func NewSimNode(sim *des.Sim, offset int64, driftPPM float64, procDelay int64) *SimNode {
	return &SimNode{
		Clock:     vclock.NewCorrected(vclock.NewDrift(sim, offset, driftPPM)),
		ProcDelay: procDelay,
	}
}

// SimCluster binds simulated nodes, a latency model and the master clock
// into a synchronization testbed that replays deterministically.
type SimCluster struct {
	Sim   *des.Sim
	Net   *simnet.Net
	Nodes []*SimNode
	// MasterClock is the ISM's clock; by default the simulator's own
	// virtual time (a perfect master), but a drifting clock can stand in
	// to show the algorithm's independence from master accuracy.
	MasterClock vclock.Clock
}

// NewSimCluster assembles a cluster of n nodes whose initial offsets and
// drifts are drawn from the given spreads: offsets uniform in
// [-offsetSpread, +offsetSpread] µs, drifts uniform in [-driftSpread,
// +driftSpread] ppm (the constant-drift regime).
func NewSimCluster(n int, netParams simnet.Params, offsetSpread int64, driftSpread float64, seed uint64) *SimCluster {
	return NewSimClusterRegime(n, netParams, offsetSpread,
		DriftRegime{Kind: DriftConstant, SpreadPPM: driftSpread}, seed)
}

// NewSimClusterRegime assembles a cluster whose node clocks follow the
// given drift regime. Parameter draws are identical to NewSimCluster for
// the constant regime, so existing seeds replay unchanged.
func NewSimClusterRegime(n int, netParams simnet.Params, offsetSpread int64, regime DriftRegime, seed uint64) *SimCluster {
	sim := des.New()
	rng := des.NewRNG(seed ^ 0xC1045)
	c := &SimCluster{
		Sim:         sim,
		Net:         simnet.New(sim, netParams),
		MasterClock: sim,
	}
	for i := 0; i < n; i++ {
		var off int64
		if offsetSpread > 0 {
			off = rng.Int63n(2*offsetSpread+1) - offsetSpread
		}
		drift := (2*rng.Float64() - 1) * regime.SpreadPPM
		proc := int64(5 + rng.Intn(10))
		var raw vclock.Clock
		switch regime.Kind {
		case DriftTempRamp:
			ramp := (2*rng.Float64() - 1) * regime.RampPPMPerHour / 3.6e9
			raw = &varDrift{ref: sim, epoch: sim.Now(), offset: off, base: drift, ramp: ramp}
		case DriftStep:
			step := (2*rng.Float64() - 1) * regime.StepPPM
			raw = &varDrift{ref: sim, epoch: sim.Now(), offset: off, base: drift,
				stepAt: regime.StepAtMicros, step: step}
		default:
			raw = vclock.NewDrift(sim, off, drift)
		}
		c.Nodes = append(c.Nodes, &SimNode{
			Clock:     vclock.NewCorrected(raw),
			ProcDelay: proc,
		})
	}
	return c
}

// simConn adapts one simulated node to the SlaveConn interface.
type simConn struct {
	c    *SimCluster
	node *SimNode
}

// Exchange models a synchronous probe: virtual time advances by the
// sampled outbound latency, the node services the probe after its
// processing delay, and time advances again by the return latency.
func (s *simConn) Exchange() (int64, error) {
	var st int64
	s.c.Net.RoundTrip(func() {
		if s.node.ProcDelay > 0 {
			s.c.Sim.RunUntil(s.c.Sim.Now() + s.node.ProcDelay)
		}
		st = s.node.Clock.NowMicros()
	})
	return st, nil
}

// Adjust delivers the adjustment after a one-way latency.
func (s *simConn) Adjust(delta int64) error {
	node := s.node
	s.c.Net.Send(func() { node.Clock.Adjust(delta) })
	return nil
}

// AdjustRate delivers an extrapolation-rate command after a one-way
// latency, implementing RateConn for the model-based master.
func (s *simConn) AdjustRate(ppm float64) error {
	node := s.node
	s.c.Net.Send(func() { node.Clock.SetRatePPM(ppm) })
	return nil
}

// Conns returns SlaveConn adapters for every node, in order.
func (c *SimCluster) Conns() []SlaveConn {
	out := make([]SlaveConn, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = &simConn{c: c, node: n}
	}
	return out
}

// Readings returns every node's corrected clock reading at the current
// virtual instant.
func (c *SimCluster) Readings() []int64 {
	out := make([]int64, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Clock.NowMicros()
	}
	return out
}

// MaxMutualSkew returns the spread (max − min) of the nodes' corrected
// clocks at the current virtual instant — the quantity the paper's
// evaluation tracks ("the clock synchronization algorithm was able to
// keep EXS clocks within tens of microseconds").
func (c *SimCluster) MaxMutualSkew() int64 {
	r := c.Readings()
	if len(r) == 0 {
		return 0
	}
	lo, hi := r[0], r[0]
	for _, v := range r[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// RunResult is the outcome of a simulated synchronization experiment.
type RunResult struct {
	// SkewAfterRound[k] is the cluster's max mutual skew right after
	// round k+1 completed (and its adjustments were delivered).
	SkewAfterRound []int64
	// MeanRTT is the mean probe RTT over the whole run (µs).
	MeanRTT float64
	// RoundsToConverge is the first round after which skew stayed under
	// the convergence bound, or -1 if it never did.
	RoundsToConverge int
	// TotalProbes is the probe round trips issued over the run — the
	// sync traffic the model-based scheduler trades against skew.
	TotalProbes int
	// Fallbacks counts model-divergence events (0 in fixed-cadence mode).
	Fallbacks uint64
}

// Run drives rounds separated by pollPeriod microseconds and samples the
// mutual skew after each. convergeBound (µs) defines RoundsToConverge.
func (c *SimCluster) Run(cfg Config, rounds int, pollPeriod int64, convergeBound int64) RunResult {
	m := NewMaster(c.MasterClock, cfg, c.Conns())
	res := RunResult{RoundsToConverge: -1}
	var rttSum float64
	var rttN int
	for r := 0; r < rounds; r++ {
		rep, err := m.Round()
		if err == nil && rep.Probes > 0 {
			rttSum += rep.MeanRTT
			rttN++
		}
		// Let in-flight adjustments land before sampling.
		c.Sim.RunUntil(c.Sim.Now() + 10_000)
		res.SkewAfterRound = append(res.SkewAfterRound, c.MaxMutualSkew())
		c.Sim.RunUntil(c.Sim.Now() + pollPeriod)
	}
	res.TotalProbes = int(m.ProbeRTTs())
	res.Fallbacks = m.ModelFallbacks()
	if rttN > 0 {
		res.MeanRTT = rttSum / float64(rttN)
	}
	for k, s := range res.SkewAfterRound {
		if s <= convergeBound {
			ok := true
			for _, s2 := range res.SkewAfterRound[k:] {
				if s2 > convergeBound {
					ok = false
					break
				}
			}
			if ok {
				res.RoundsToConverge = k + 1
				break
			}
		}
	}
	return res
}
