package clocksync

import (
	"brisk/internal/des"
	"brisk/internal/simnet"
	"brisk/internal/vclock"
)

// SimNode is one simulated external-sensor node: a drifting clock wrapped
// by the correction layer the synchronization protocol adjusts.
type SimNode struct {
	// Clock is the node's corrected clock — what probes report and what
	// record timestamps would use.
	Clock *vclock.Corrected
	// ProcDelay is the probe service time on the node (µs).
	ProcDelay int64
}

// NewSimNode builds a node over the simulator's virtual time with the
// given initial offset (µs) and frequency error (ppm).
func NewSimNode(sim *des.Sim, offset int64, driftPPM float64, procDelay int64) *SimNode {
	return &SimNode{
		Clock:     vclock.NewCorrected(vclock.NewDrift(sim, offset, driftPPM)),
		ProcDelay: procDelay,
	}
}

// SimCluster binds simulated nodes, a latency model and the master clock
// into a synchronization testbed that replays deterministically.
type SimCluster struct {
	Sim   *des.Sim
	Net   *simnet.Net
	Nodes []*SimNode
	// MasterClock is the ISM's clock; by default the simulator's own
	// virtual time (a perfect master), but a drifting clock can stand in
	// to show the algorithm's independence from master accuracy.
	MasterClock vclock.Clock
}

// NewSimCluster assembles a cluster of n nodes whose initial offsets and
// drifts are drawn from the given spreads: offsets uniform in
// [-offsetSpread, +offsetSpread] µs, drifts uniform in [-driftSpread,
// +driftSpread] ppm.
func NewSimCluster(n int, netParams simnet.Params, offsetSpread int64, driftSpread float64, seed uint64) *SimCluster {
	sim := des.New()
	rng := des.NewRNG(seed ^ 0xC1045)
	c := &SimCluster{
		Sim:         sim,
		Net:         simnet.New(sim, netParams),
		MasterClock: sim,
	}
	for i := 0; i < n; i++ {
		var off int64
		if offsetSpread > 0 {
			off = rng.Int63n(2*offsetSpread+1) - offsetSpread
		}
		drift := (2*rng.Float64() - 1) * driftSpread
		proc := int64(5 + rng.Intn(10))
		c.Nodes = append(c.Nodes, NewSimNode(sim, off, drift, proc))
	}
	return c
}

// simConn adapts one simulated node to the SlaveConn interface.
type simConn struct {
	c    *SimCluster
	node *SimNode
}

// Exchange models a synchronous probe: virtual time advances by the
// sampled outbound latency, the node services the probe after its
// processing delay, and time advances again by the return latency.
func (s *simConn) Exchange() (int64, error) {
	var st int64
	s.c.Net.RoundTrip(func() {
		if s.node.ProcDelay > 0 {
			s.c.Sim.RunUntil(s.c.Sim.Now() + s.node.ProcDelay)
		}
		st = s.node.Clock.NowMicros()
	})
	return st, nil
}

// Adjust delivers the adjustment after a one-way latency.
func (s *simConn) Adjust(delta int64) error {
	node := s.node
	s.c.Net.Send(func() { node.Clock.Adjust(delta) })
	return nil
}

// Conns returns SlaveConn adapters for every node, in order.
func (c *SimCluster) Conns() []SlaveConn {
	out := make([]SlaveConn, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = &simConn{c: c, node: n}
	}
	return out
}

// Readings returns every node's corrected clock reading at the current
// virtual instant.
func (c *SimCluster) Readings() []int64 {
	out := make([]int64, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Clock.NowMicros()
	}
	return out
}

// MaxMutualSkew returns the spread (max − min) of the nodes' corrected
// clocks at the current virtual instant — the quantity the paper's
// evaluation tracks ("the clock synchronization algorithm was able to
// keep EXS clocks within tens of microseconds").
func (c *SimCluster) MaxMutualSkew() int64 {
	r := c.Readings()
	if len(r) == 0 {
		return 0
	}
	lo, hi := r[0], r[0]
	for _, v := range r[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// RunResult is the outcome of a simulated synchronization experiment.
type RunResult struct {
	// SkewAfterRound[k] is the cluster's max mutual skew right after
	// round k+1 completed (and its adjustments were delivered).
	SkewAfterRound []int64
	// MeanRTT is the mean probe RTT over the whole run (µs).
	MeanRTT float64
	// RoundsToConverge is the first round after which skew stayed under
	// the convergence bound, or -1 if it never did.
	RoundsToConverge int
}

// Run drives rounds separated by pollPeriod microseconds and samples the
// mutual skew after each. convergeBound (µs) defines RoundsToConverge.
func (c *SimCluster) Run(cfg Config, rounds int, pollPeriod int64, convergeBound int64) RunResult {
	m := NewMaster(c.MasterClock, cfg, c.Conns())
	res := RunResult{RoundsToConverge: -1}
	var rttSum float64
	var rttN int
	for r := 0; r < rounds; r++ {
		rep, err := m.Round()
		if err == nil {
			rttSum += rep.MeanRTT
			rttN++
		}
		// Let in-flight adjustments land before sampling.
		c.Sim.RunUntil(c.Sim.Now() + 10_000)
		res.SkewAfterRound = append(res.SkewAfterRound, c.MaxMutualSkew())
		c.Sim.RunUntil(c.Sim.Now() + pollPeriod)
	}
	if rttN > 0 {
		res.MeanRTT = rttSum / float64(rttN)
	}
	for k, s := range res.SkewAfterRound {
		if s <= convergeBound {
			ok := true
			for _, s2 := range res.SkewAfterRound[k:] {
				if s2 > convergeBound {
					ok = false
					break
				}
			}
			if ok {
				res.RoundsToConverge = k + 1
				break
			}
		}
	}
	return res
}
