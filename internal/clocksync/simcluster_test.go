package clocksync

import (
	"fmt"
	"testing"

	"brisk/internal/simnet"
)

// fiveSeconds is the paper's polling period.
const fiveSeconds = 5_000_000

// TestSimQuietLANConvergesToTensOfMicroseconds reproduces E6's headline
// claim at unit-test scale: 8 slave clocks starting milliseconds apart,
// polled every 5 s, end up within tens of microseconds of each other under
// light conditions.
func TestSimQuietLANConvergesToTensOfMicroseconds(t *testing.T) {
	c := NewSimCluster(8, simnet.QuietLAN(1), 5_000_000, 2, 99)
	if c.MaxMutualSkew() < 1_000_000 {
		t.Fatalf("initial spread suspiciously small: %d", c.MaxMutualSkew())
	}
	res := c.Run(Config{}, 120, fiveSeconds, 100)
	if res.RoundsToConverge < 0 {
		t.Fatalf("never converged under 100 µs; final skew %d",
			res.SkewAfterRound[len(res.SkewAfterRound)-1])
	}
	// Steady state: last 50 rounds all within 100 µs.
	for _, s := range res.SkewAfterRound[len(res.SkewAfterRound)-50:] {
		if s > 100 {
			t.Fatalf("steady-state skew %d µs > 100 µs", s)
		}
	}
}

// TestSimDisturbedLANStaysUnder200Microseconds reproduces the paper's
// second clock-sync claim: under LAN disturbances the clocks stay "most of
// the time under 200 microseconds".
func TestSimDisturbedLANStaysUnder200Microseconds(t *testing.T) {
	c := NewSimCluster(8, simnet.LAN(2), 5_000_000, 2, 7)
	res := c.Run(Config{MaxRTT: 1500}, 120, fiveSeconds, 200)
	over := 0
	for _, s := range res.SkewAfterRound[20:] { // after convergence
		if s > 200 {
			over++
		}
	}
	frac := float64(over) / float64(len(res.SkewAfterRound)-20)
	if frac > 0.25 {
		t.Fatalf("skew exceeded 200 µs in %.0f%% of post-convergence rounds", 100*frac)
	}
}

// TestSimBRISKConvergesFasterThanCristian checks the paper's convergence
// claim: the modified algorithm reaches mutual agreement in fewer rounds
// than the original Cristian update, because mutual (not master-relative)
// agreement is the goal and the full skew is applied in one step when far
// apart.
func TestSimBRISKConvergesFasterThanCristian(t *testing.T) {
	// Cristian's algorithm amortizes corrections (an NTP-like 500 ppm
	// slew over a 5 s round = 2.5 ms per round); BRISK's forward-only
	// steps apply in full immediately. Starting 50 ms apart, Cristian
	// needs many rounds to slew while BRISK realigns within a few.
	run := func(alg Algorithm) int {
		c := NewSimCluster(8, simnet.QuietLAN(5), 50_000, 2, 31)
		cfg := Config{Algorithm: alg}
		if alg == AlgCristian {
			cfg.MaxSlew = 2500
		}
		res := c.Run(cfg, 60, fiveSeconds, 150)
		return res.RoundsToConverge
	}
	b := run(AlgBRISK)
	cr := run(AlgCristian)
	if b < 0 {
		t.Fatal("BRISK never converged")
	}
	if cr >= 0 && b >= cr {
		t.Fatalf("BRISK took %d rounds, Cristian %d; expected BRISK < Cristian", b, cr)
	}
}

// TestSimPositiveDriftOnly verifies the paper's stated cost: corrections
// only ever advance slave clocks, so the cluster's clocks drift slightly
// ahead of true time but never step backward.
func TestSimPositiveDriftOnly(t *testing.T) {
	c := NewSimCluster(4, simnet.QuietLAN(3), 1_000_000, 10, 17)
	prev := c.Readings()
	m := NewMaster(c.MasterClock, Config{}, c.Conns())
	for r := 0; r < 30; r++ {
		if _, err := m.Round(); err != nil {
			t.Fatal(err)
		}
		c.Sim.RunUntil(c.Sim.Now() + fiveSeconds)
		cur := c.Readings()
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("round %d: slave %d clock moved backward (%d -> %d)",
					r, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
}

// TestSimDriftingMaster shows the algorithm is insensitive to master
// accuracy: even with the ISM clock far off true time, the slaves still
// agree among themselves.
func TestSimDriftingMaster(t *testing.T) {
	c := NewSimCluster(6, simnet.QuietLAN(8), 3_000_000, 2, 23)
	// Master 7 seconds off with 80 ppm drift.
	c.MasterClock = newOffsetClock(c, 7_000_000, 80)
	res := c.Run(Config{}, 80, fiveSeconds, 150)
	if res.RoundsToConverge < 0 {
		t.Fatalf("no convergence with drifting master; final %d",
			res.SkewAfterRound[len(res.SkewAfterRound)-1])
	}
}

func newOffsetClock(c *SimCluster, off int64, ppm float64) *SimNode {
	n := NewSimNode(c.Sim, off, ppm, 0)
	return n
}

func (n *SimNode) NowMicros() int64 { return n.Clock.NowMicros() }

func TestSimDeterministicReplay(t *testing.T) {
	run := func() []int64 {
		c := NewSimCluster(5, simnet.LAN(77), 2_000_000, 25, 42)
		return c.Run(Config{}, 20, fiveSeconds, 100).SkewAfterRound
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d skew differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSimSingleNode(t *testing.T) {
	c := NewSimCluster(1, simnet.QuietLAN(4), 1_000_000, 10, 3)
	res := c.Run(Config{}, 5, fiveSeconds, 100)
	for _, s := range res.SkewAfterRound {
		if s != 0 {
			t.Fatalf("single node skew = %d", s)
		}
	}
}

func TestSimEmptyClusterSkew(t *testing.T) {
	c := &SimCluster{}
	if c.MaxMutualSkew() != 0 {
		t.Fatal("empty cluster skew nonzero")
	}
}

func BenchmarkSimSyncRound(b *testing.B) {
	c := NewSimCluster(8, simnet.QuietLAN(1), 5_000_000, 20, 9)
	m := NewMaster(c.MasterClock, Config{}, c.Conns())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Round(); err != nil {
			b.Fatal(err)
		}
		c.Sim.RunUntil(c.Sim.Now() + fiveSeconds)
	}
}

// ExampleSimCluster replays a deterministic synchronization run: four
// clocks starting tens of milliseconds apart converge in a handful of
// five-second rounds.
func ExampleSimCluster() {
	c := NewSimCluster(4, simnet.QuietLAN(11), 20_000, 1, 11)
	res := c.Run(Config{}, 6, 5_000_000, 200)
	fmt.Println("converged:", res.RoundsToConverge >= 1 && res.RoundsToConverge <= 6)
	fmt.Println("final skew under 200µs:", res.SkewAfterRound[len(res.SkewAfterRound)-1] < 200)
	// Output:
	// converged: true
	// final skew under 200µs: true
}
