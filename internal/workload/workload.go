// Package workload generates the instrumented-application workloads used
// by BRISK's evaluation:
//
//   - Looper is the paper's "simple looping application using notices
//     having six fields of type integer", at a fixed or unbounded event
//     rate (experiments E1–E3, E5).
//   - Bursty issues exponential bursts, stressing ring and batch sizing.
//   - Diurnal ramps the event rate through a compressed day, the
//     load-follows-users shape production instrumentation sees.
//   - HotSkew spreads one node's events across several sensors with one
//     hot source taking a configurable share, stressing per-source
//     quotas and fairness.
//   - DelayedStream synthesizes the "streams of artificially delayed
//     event records" used to evaluate the on-line sorting algorithm (E7).
//   - CausalPair drives reason/consequence traffic across two sensors for
//     the causally-related-event machinery.
//
// Generators that draw randomness take an explicit seed and use an
// independent des.RNG stream, so the same seed reproduces the same
// notice sequence byte for byte — the property the scenario matrix
// (internal/scenario) builds its reproducible cells on.
package workload

import (
	"math"
	"time"

	"brisk/internal/des"
	"brisk/internal/record"
	"brisk/internal/sensor"
)

// Looper is the paper's looping application.
type Looper struct {
	// Sensor issues the notices.
	Sensor *sensor.Sensor
	// Event is the event class stamped on each notice.
	Event uint8
	// Rate is the target event rate per second; 0 means as fast as
	// possible.
	Rate int
}

// Run issues n notices, pacing to Rate when set. It returns the number of
// notices accepted into the ring.
func (l *Looper) Run(n int) int {
	accepted := 0
	if l.Rate <= 0 {
		for i := 0; i < n; i++ {
			if l.Sensor.Notice6i(l.Event, int32(i), 1, 2, 3, 4, 5) {
				accepted++
			}
		}
		return accepted
	}
	// Pace in ~1 ms chunks: per-event sleeps at tens of µs are dominated
	// by scheduler noise and distort CPU accounting.
	chunk := l.Rate / 1000
	if chunk < 1 {
		chunk = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if i%chunk == 0 {
			target := start.Add(time.Duration(i) * time.Second / time.Duration(l.Rate))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		if l.Sensor.Notice6i(l.Event, int32(i), 1, 2, 3, 4, 5) {
			accepted++
		}
	}
	return accepted
}

// RunFor issues notices at Rate until d elapses, returning issued and
// accepted counts.
func (l *Looper) RunFor(d time.Duration) (issued, accepted int) {
	chunk := 1
	if l.Rate > 0 {
		chunk = l.Rate / 1000
		if chunk < 1 {
			chunk = 1
		}
	}
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		if l.Rate > 0 && issued%chunk == 0 {
			target := start.Add(time.Duration(issued) * time.Second / time.Duration(l.Rate))
			if wait := time.Until(target); wait > 0 {
				time.Sleep(wait)
			}
		}
		issued++
		if l.Sensor.Notice6i(l.Event, int32(issued), 1, 2, 3, 4, 5) {
			accepted++
		}
	}
	return issued, accepted
}

// Bursty issues bursts of back-to-back notices separated by idle gaps.
type Bursty struct {
	Sensor *sensor.Sensor
	Event  uint8
	// BurstLen is the number of notices per burst (the mean burst length
	// when Seed is set).
	BurstLen int
	// Gap is the idle time between bursts.
	Gap time.Duration
	// Seed, when nonzero, jitters individual burst lengths uniformly in
	// [1, 2·BurstLen−1] from a deterministic stream: the same seed
	// reproduces the same burst shape exactly.
	Seed uint64
	// Issued is the total number of notices the last Run attempted
	// (accepted plus ring-refused).
	Issued int
}

// Run issues the given number of bursts, returning accepted notices.
// Each notice stamps (burst index, index within burst) so consumers can
// verify per-source order.
func (b *Bursty) Run(bursts int) int {
	var rng *des.RNG
	if b.Seed != 0 {
		rng = des.NewRNG(b.Seed)
	}
	accepted := 0
	b.Issued = 0
	for k := 0; k < bursts; k++ {
		n := b.BurstLen
		if rng != nil && b.BurstLen > 1 {
			n = 1 + rng.Intn(2*b.BurstLen-1)
		}
		for i := 0; i < n; i++ {
			b.Issued++
			if b.Sensor.Notice6i(b.Event, int32(k), int32(i), 0, 0, 0, 0) {
				accepted++
			}
		}
		time.Sleep(b.Gap)
	}
	return accepted
}

// Diurnal paces notices through a compressed day: the instantaneous rate
// follows one raised-cosine period from FloorRate up to PeakRate and back,
// the diurnal load curve production instrumentation rides.
type Diurnal struct {
	Sensor *sensor.Sensor
	Event  uint8
	// FloorRate and PeakRate bound the event rate (events/s). FloorRate
	// is clamped to at least 1.
	FloorRate int
	PeakRate  int
	// Period is the length of the compressed day. Default 1 s.
	Period time.Duration
}

// Run issues n notices, pacing each by the rate the diurnal curve gives
// at its issue time. It returns the number accepted into the ring. The
// notice content (sequence numbers) is deterministic; only the pacing
// varies with the curve.
func (d *Diurnal) Run(n int) int {
	floor := d.FloorRate
	if floor < 1 {
		floor = 1
	}
	peak := d.PeakRate
	if peak < floor {
		peak = floor
	}
	period := d.Period
	if period <= 0 {
		period = time.Second
	}
	accepted := 0
	start := time.Now()
	var due time.Duration // virtual elapsed time of the next event
	for i := 0; i < n; i++ {
		phase := float64(due%period) / float64(period)
		rate := float64(floor) + (float64(peak-floor))*(1-math.Cos(2*math.Pi*phase))/2
		due += time.Duration(float64(time.Second) / rate)
		if wait := time.Until(start.Add(due)); wait > 0 {
			time.Sleep(wait)
		}
		if d.Sensor.Notice6i(d.Event, int32(i), 1, 2, 3, 4, 5) {
			accepted++
		}
	}
	return accepted
}

// HotSkew drives several sensors of one node with a skewed source
// distribution: Sensors[0] (the hot source) takes HotShare of the events,
// the rest split uniformly. Each notice stamps (per-sensor sequence,
// sensor index) so consumers can verify per-source order and attribute
// drops. Deterministic for a given seed.
type HotSkew struct {
	Sensors []*sensor.Sensor
	Event   uint8
	// HotShare is the fraction of events issued on Sensors[0]; clamped
	// to [0, 1]. With one sensor every event is hot.
	HotShare float64
	// Seed selects the deterministic source-pick stream.
	Seed uint64
	// PerSensor is filled by Run with the per-sensor issued counts.
	PerSensor []int
}

// Run issues n notices across the sensors, returning accepted notices.
func (h *HotSkew) Run(n int) int {
	if len(h.Sensors) == 0 {
		return 0
	}
	share := h.HotShare
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	rng := des.NewRNG(h.Seed)
	h.PerSensor = make([]int, len(h.Sensors))
	seqs := make([]int32, len(h.Sensors))
	accepted := 0
	for i := 0; i < n; i++ {
		j := 0
		if len(h.Sensors) > 1 && rng.Float64() >= share {
			j = 1 + rng.Intn(len(h.Sensors)-1)
		}
		h.PerSensor[j]++
		if h.Sensors[j].Notice2i(h.Event, seqs[j], int32(j)) {
			accepted++
		}
		seqs[j]++
	}
	return accepted
}

// DelayedEvent is one synthetic record for the on-line sorting evaluation:
// created (timestamped) at TS, it reaches the manager at Arrival.
type DelayedEvent struct {
	Source  int32
	TS      int64
	Arrival int64
}

// DelayParams shapes one source's artificial delivery delay.
type DelayParams struct {
	// Base is the deterministic delay floor (µs).
	Base int64
	// JitterMean is the mean of the exponential jitter (µs); 0 disables.
	JitterMean float64
	// SpikeProb is the probability a record suffers an extra spike.
	SpikeProb float64
	// SpikeMean is the mean extra delay of a spike (µs).
	SpikeMean float64
}

// StreamSpec describes one source feeding the sorter.
type StreamSpec struct {
	Source int32
	// MeanGap is the mean inter-event creation gap (µs).
	MeanGap float64
	// Delay shapes the delivery delay.
	Delay DelayParams
}

// GenDelayedStreams synthesizes eventsPerSource records per source with
// per-source in-order delivery (the stream-socket guarantee), merged into
// one list sorted by arrival time. Deterministic for a given seed.
func GenDelayedStreams(specs []StreamSpec, eventsPerSource int, seed uint64) []DelayedEvent {
	var all []DelayedEvent
	for si, spec := range specs {
		rng := des.NewRNG(seed + uint64(si)*0x9E37 + 1)
		ts := int64(0)
		prevArrival := int64(0)
		for i := 0; i < eventsPerSource; i++ {
			gap := int64(rng.Exp(spec.MeanGap))
			if gap < 1 {
				gap = 1
			}
			ts += gap
			delay := spec.Delay.Base
			if spec.Delay.JitterMean > 0 {
				delay += int64(rng.Exp(spec.Delay.JitterMean))
			}
			if spec.Delay.SpikeProb > 0 && rng.Float64() < spec.Delay.SpikeProb {
				delay += int64(rng.Exp(spec.Delay.SpikeMean))
			}
			arrival := ts + delay
			if arrival < prevArrival {
				arrival = prevArrival // in-order per source
			}
			prevArrival = arrival
			all = append(all, DelayedEvent{Source: spec.Source, TS: ts, Arrival: arrival})
		}
	}
	sortByArrival(all)
	return all
}

func sortByArrival(orig []DelayedEvent) {
	// Stable merge sort on arrival; input is per-source sorted already,
	// so a simple bottom-up merge is efficient and stable.
	n := len(orig)
	if n < 2 {
		return
	}
	evs := orig
	buf := make([]DelayedEvent, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if evs[j].Arrival < evs[i].Arrival {
					buf[k] = evs[j]
					j++
				} else {
					buf[k] = evs[i]
					i++
				}
				k++
			}
			for i < mid {
				buf[k] = evs[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = evs[j]
				j++
				k++
			}
		}
		evs, buf = buf, evs
	}
	// An odd number of passes leaves the result in the scratch array;
	// copy it back into the caller's slice.
	if &evs[0] != &orig[0] {
		copy(orig, evs)
	}
}

// Record materializes the delayed event as a sorter-ready record.
func (e DelayedEvent) Record() record.Record {
	return record.New(1, record.TSVal(e.TS), record.I32Val(e.Source))
}

// CausalPair drives reason/consequence traffic: each Fire issues a reason
// on the first sensor and, after the given think time, the matching
// consequence on the second.
type CausalPair struct {
	Reasoner   *sensor.Sensor
	Consequent *sensor.Sensor
	Event      uint8
	Think      time.Duration
	// Accepted counts notices (reasons plus consequences) the rings
	// accepted across all Fires.
	Accepted uint64
	nextID   uint64
}

// Fire issues one reason/consequence pair and returns its identifier.
func (c *CausalPair) Fire() uint64 {
	c.nextID++
	id := c.nextID
	if c.Reasoner.NoticeReason(c.Event, id, 0) {
		c.Accepted++
	}
	if c.Think > 0 {
		time.Sleep(c.Think)
	}
	if c.Consequent.NoticeConseq(c.Event+1, id, 0) {
		c.Accepted++
	}
	return id
}
