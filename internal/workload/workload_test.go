package workload

import (
	"testing"
	"time"

	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

func newSensor() *sensor.Sensor {
	return sensor.New(shm.NewRegion(), "w", sensor.Options{
		RingBytes: 1 << 20,
		Clock:     vclock.NewManual(0),
	})
}

func TestLooperUnpaced(t *testing.T) {
	s := newSensor()
	l := &Looper{Sensor: s, Event: 1}
	if got := l.Run(1000); got != 1000 {
		t.Fatalf("accepted %d", got)
	}
	if s.Notices() != 1000 {
		t.Fatalf("notices = %d", s.Notices())
	}
	var first record.Record
	s.Ring().Drain(1, func(b []byte) {
		var err error
		first, _, err = record.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(first.Fields) != 7 || first.Fields[1].Int() != 0 {
		t.Fatalf("first = %+v", first)
	}
}

func TestLooperPacedRate(t *testing.T) {
	s := newSensor()
	l := &Looper{Sensor: s, Event: 1, Rate: 10000}
	start := time.Now()
	l.Run(500)
	elapsed := time.Since(start)
	// 500 events at 10k/s should take ≈50 ms; allow generous slop but
	// catch "no pacing at all" (would finish in microseconds).
	if elapsed < 25*time.Millisecond {
		t.Fatalf("pacing ineffective: %v", elapsed)
	}
}

func TestLooperRunFor(t *testing.T) {
	s := newSensor()
	l := &Looper{Sensor: s, Event: 1, Rate: 50000}
	issued, accepted := l.RunFor(30 * time.Millisecond)
	if issued == 0 || accepted == 0 || accepted > issued {
		t.Fatalf("issued=%d accepted=%d", issued, accepted)
	}
	// ~1500 expected; catch order-of-magnitude runaways.
	if issued > 20000 {
		t.Fatalf("rate not honoured: issued %d in 30ms", issued)
	}
}

func TestBursty(t *testing.T) {
	s := newSensor()
	b := &Bursty{Sensor: s, Event: 2, BurstLen: 50, Gap: time.Millisecond}
	if got := b.Run(4); got != 200 {
		t.Fatalf("accepted %d", got)
	}
}

func TestGenDelayedStreamsShape(t *testing.T) {
	specs := []StreamSpec{
		{Source: 1, MeanGap: 100, Delay: DelayParams{Base: 50}},
		{Source: 2, MeanGap: 100, Delay: DelayParams{Base: 500, JitterMean: 100}},
	}
	evs := GenDelayedStreams(specs, 500, 42)
	if len(evs) != 1000 {
		t.Fatalf("len = %d", len(evs))
	}
	// Arrival-sorted overall.
	for i := 1; i < len(evs); i++ {
		if evs[i].Arrival < evs[i-1].Arrival {
			t.Fatalf("arrivals unsorted at %d", i)
		}
	}
	// Per-source: both TS and Arrival monotone; delay ≥ base.
	lastTS := map[int32]int64{}
	lastArr := map[int32]int64{}
	for _, e := range evs {
		if e.TS <= lastTS[e.Source] && lastTS[e.Source] != 0 {
			t.Fatalf("source %d ts not increasing", e.Source)
		}
		if e.Arrival < lastArr[e.Source] {
			t.Fatalf("source %d arrivals reordered", e.Source)
		}
		if e.Arrival-e.TS < 50 {
			t.Fatalf("delay below base: %+v", e)
		}
		lastTS[e.Source] = e.TS
		lastArr[e.Source] = e.Arrival
	}
}

func TestGenDelayedStreamsDeterministic(t *testing.T) {
	specs := []StreamSpec{{Source: 1, MeanGap: 50, Delay: DelayParams{Base: 10, JitterMean: 30, SpikeProb: 0.1, SpikeMean: 500}}}
	a := GenDelayedStreams(specs, 200, 7)
	b := GenDelayedStreams(specs, 200, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := GenDelayedStreams(specs, 200, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenDelayedStreamsSpikes(t *testing.T) {
	noSpike := GenDelayedStreams([]StreamSpec{
		{Source: 1, MeanGap: 100, Delay: DelayParams{Base: 10}},
	}, 1000, 3)
	spiky := GenDelayedStreams([]StreamSpec{
		{Source: 1, MeanGap: 100, Delay: DelayParams{Base: 10, SpikeProb: 0.2, SpikeMean: 2000}},
	}, 1000, 3)
	var meanA, meanB float64
	for i := range noSpike {
		meanA += float64(noSpike[i].Arrival - noSpike[i].TS)
		meanB += float64(spiky[i].Arrival - spiky[i].TS)
	}
	if meanB <= meanA {
		t.Fatal("spikes did not raise mean delay")
	}
}

func TestDelayedEventRecord(t *testing.T) {
	e := DelayedEvent{Source: 3, TS: 12345, Arrival: 99999}
	r := e.Record()
	if r.TS != 12345 || r.Fields[1].Int() != 3 {
		t.Fatalf("record = %+v", r)
	}
}

func TestCausalPair(t *testing.T) {
	region := shm.NewRegion()
	clk := vclock.NewManual(0)
	a := sensor.New(region, "a", sensor.Options{Clock: clk})
	b := sensor.New(region, "b", sensor.Options{Clock: clk})
	cp := &CausalPair{Reasoner: a, Consequent: b, Event: 10}
	id1 := cp.Fire()
	id2 := cp.Fire()
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	var recs []record.Record
	for _, ring := range region.Rings() {
		ring.Drain(0, func(buf []byte) {
			r, _, err := record.Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		})
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	reasons, conseqs := 0, 0
	for _, r := range recs {
		if r.Reason != 0 {
			reasons++
		}
		if r.Conseq != 0 {
			conseqs++
		}
	}
	if reasons != 2 || conseqs != 2 {
		t.Fatalf("reasons=%d conseqs=%d", reasons, conseqs)
	}
}
