package workload

import (
	"bytes"
	"testing"
	"time"

	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// counterClock returns a clock whose reading advances by one microsecond
// per call, so timestamps depend only on the call sequence, never on wall
// time. Sensors are single-goroutine, so no synchronization is needed.
func counterClock() vclock.Clock {
	var n int64
	return vclock.ClockFunc(func() int64 {
		n++
		return n
	})
}

// drainBytes empties the sensor's ring into one flat byte slice.
func drainBytes(t *testing.T, s *sensor.Sensor) []byte {
	t.Helper()
	var out []byte
	s.Ring().Drain(1<<20, func(rec []byte) {
		out = append(out, rec...)
	})
	if d := s.Dropped(); d != 0 {
		t.Fatalf("ring dropped %d notices; size the ring so determinism tests see every record", d)
	}
	return out
}

func newTestSensor(ringBytes int) *sensor.Sensor {
	return sensor.New(shm.NewRegion(), "app", sensor.Options{
		RingBytes: ringBytes,
		Clock:     counterClock(),
	})
}

func TestBurstySeedDeterminism(t *testing.T) {
	run := func(seed uint64) (issued, accepted int, raw []byte) {
		s := newTestSensor(1 << 20)
		b := &Bursty{Sensor: s, Event: 9, BurstLen: 16, Gap: 0, Seed: seed}
		accepted = b.Run(20)
		return b.Issued, accepted, drainBytes(t, s)
	}
	i1, a1, b1 := run(42)
	i2, a2, b2 := run(42)
	if i1 != i2 || a1 != a2 || !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different sequences: issued %d/%d accepted %d/%d bytes equal=%v",
			i1, i2, a1, a2, bytes.Equal(b1, b2))
	}
	if i1 == 20*16 {
		t.Fatalf("seeded bursty issued exactly bursts*BurstLen (%d): burst lengths were not jittered", i1)
	}
	i3, _, b3 := run(43)
	if i1 == i3 && bytes.Equal(b1, b3) {
		t.Fatalf("different seeds produced identical sequences (issued=%d)", i1)
	}
}

func TestBurstyUnseededFixedLengths(t *testing.T) {
	s := newTestSensor(1 << 20)
	b := &Bursty{Sensor: s, Event: 9, BurstLen: 8, Gap: 0}
	accepted := b.Run(5)
	if b.Issued != 5*8 || accepted != 5*8 {
		t.Fatalf("unseeded bursty: issued=%d accepted=%d, want 40/40", b.Issued, accepted)
	}
}

func TestHotSkewSeedDeterminism(t *testing.T) {
	run := func(seed uint64) ([]int, []byte) {
		region := shm.NewRegion()
		clk := counterClock()
		sensors := make([]*sensor.Sensor, 3)
		for i := range sensors {
			sensors[i] = sensor.New(region, string(rune('a'+i)), sensor.Options{
				RingBytes: 1 << 19,
				Clock:     clk,
			})
		}
		h := &HotSkew{Sensors: sensors, Event: 7, HotShare: 0.7, Seed: seed}
		h.Run(500)
		var raw []byte
		for _, s := range sensors {
			raw = append(raw, drainBytes(t, s)...)
		}
		return h.PerSensor, raw
	}
	p1, b1 := run(7)
	p2, b2 := run(7)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different hot-skew sequences")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed produced different per-sensor counts: %v vs %v", p1, p2)
		}
	}
	if p1[0] <= p1[1] || p1[0] <= p1[2] {
		t.Fatalf("hot source not hot: per-sensor counts %v", p1)
	}
	_, b3 := run(8)
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds produced identical hot-skew sequences")
	}
}

func TestDelayedStreamSeedDeterminism(t *testing.T) {
	specs := []StreamSpec{
		{Source: 1, MeanGap: 100, Delay: DelayParams{Base: 50, JitterMean: 200, SpikeProb: 0.05, SpikeMean: 5000}},
		{Source: 2, MeanGap: 150, Delay: DelayParams{Base: 80, JitterMean: 300}},
	}
	a := GenDelayedStreams(specs, 400, 99)
	b := GenDelayedStreams(specs, 400, 99)
	if len(a) != len(b) {
		t.Fatalf("same seed produced different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := GenDelayedStreams(specs, 400, 100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical delayed streams")
	}
}

func TestCausalPairDeterminism(t *testing.T) {
	run := func() (uint64, []byte) {
		region := shm.NewRegion()
		clk := counterClock()
		reason := sensor.New(region, "reason", sensor.Options{RingBytes: 1 << 18, Clock: clk})
		conseq := sensor.New(region, "conseq", sensor.Options{RingBytes: 1 << 18, Clock: clk})
		cp := &CausalPair{Reasoner: reason, Consequent: conseq, Event: 20, Think: 0}
		for i := 0; i < 200; i++ {
			cp.Fire()
		}
		raw := drainBytes(t, reason)
		raw = append(raw, drainBytes(t, conseq)...)
		return cp.Accepted, raw
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != 400 || a2 != 400 {
		t.Fatalf("accepted counts %d/%d, want 400", a1, a2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical causal-pair runs produced different byte sequences")
	}
}

func TestDiurnalStampsSequence(t *testing.T) {
	s := newTestSensor(1 << 20)
	d := &Diurnal{Sensor: s, Event: 5, FloorRate: 50_000, PeakRate: 200_000, Period: 50 * time.Millisecond}
	accepted := d.Run(300)
	if accepted != 300 {
		t.Fatalf("diurnal accepted %d of 300", accepted)
	}
	raw1 := drainBytes(t, s)
	s2 := newTestSensor(1 << 20)
	d2 := &Diurnal{Sensor: s2, Event: 5, FloorRate: 50_000, PeakRate: 200_000, Period: 50 * time.Millisecond}
	d2.Run(300)
	raw2 := drainBytes(t, s2)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("diurnal notice content not deterministic (pacing may vary, content must not)")
	}
}
