package relay

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/ism"
	"brisk/internal/picl"
	"brisk/internal/record"
	"brisk/internal/vclock"
	"brisk/internal/workload"
)

// goldenFederatedTrace runs the ism package's golden workload through a
// federated topology — three sources split across `relays` relay tiers
// (0 = direct attachment) — and returns the root's PICL trace.
//
// Every tier's clock is pinned below all record timestamps, so nothing
// is emitted until the ordered shutdown flushes: the relay tier flushes
// (and ships) in its merged order first, then the root flushes in pure
// timestamp order. With skew-free clocks the corrections are zero, the
// relays rebase origin ids onto exactly the ids a direct run assigns,
// and the workload's unique timestamps make the final order — and the
// trace bytes — a pure function of the workload, whatever the topology.
func goldenFederatedTrace(t *testing.T, relays, shards int) []byte {
	t.Helper()
	trace, _ := goldenFederatedTraceSync(t, relays, shards, false)
	return trace
}

// goldenFederatedTraceSync is goldenFederatedTrace with an optional
// model-based sync scheduler at BOTH tiers: the root's master probes the
// relay uplinks (which answer natively and apply adjusts), each relay's
// embedded manager probes its leaf sessions (answered by waitAck from the
// pinned clock), and the control traffic shares every connection with the
// data batches. Returns the trace plus the root's probe count.
func goldenFederatedTraceSync(t *testing.T, relays, shards int, sync bool) ([]byte, uint64) {
	t.Helper()
	syncCfg := clocksync.Config{
		UncertaintyBound: 100,
		MinProbeInterval: 1_000,
		MaxProbeInterval: 50_000,
		MeasurementNoise: 30,
		DriftWalkPPM:     0.01,
	}
	var trace bytes.Buffer
	pw := picl.NewWriter(&trace, picl.TimeUTC, 0)
	rootCfg := ism.Config{
		Addr:              "127.0.0.1:0",
		Clock:             vclock.NewManual(1),
		PICL:              pw,
		MergeInterval:     time.Millisecond,
		HeartbeatInterval: -1,
		OLSShards:         shards,
		Logf:              quietLog,
	}
	if sync {
		rootCfg.SyncPeriod = time.Millisecond
		rootCfg.Sync = syncCfg
	}
	root, err := ism.New(rootCfg)
	if err != nil {
		t.Fatal(err)
	}
	root.Start()

	const sources = 3
	// Contiguous split: relay r owns sources [r*per, ...), its NodeBase
	// the count of sources before it — so relay-local session ids (pinned
	// by serial connect order) rebase onto the direct topology's ids.
	owner := make([]int, sources+1)
	base := make([]int, relays)
	if relays > 0 {
		per := (sources + relays - 1) / relays
		for s := 1; s <= sources; s++ {
			owner[s] = (s - 1) / per
		}
		for r := 1; r < relays; r++ {
			base[r] = r * per
		}
	}
	tier := make([]*Relay, relays)
	for r := 0; r < relays; r++ {
		relayISM := ism.Config{
			MergeInterval:     time.Millisecond,
			HeartbeatInterval: -1,
			OLSShards:         shards,
			Logf:              quietLog,
		}
		if sync {
			relayISM.SyncPeriod = time.Millisecond
			relayISM.Sync = syncCfg
		}
		tier[r], err = New(Config{
			Addr:          "127.0.0.1:0",
			Parent:        root.Addr(),
			Name:          fmt.Sprintf("relay%d", r),
			NodeBase:      int32(base[r]),
			Clock:         vclock.NewManual(1),
			ISM:           relayISM,
			FlushInterval: time.Millisecond,
			Logf:          quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// The exact workload the committed ism golden trace was generated
	// from: fixed seed, timestamps spread so no two sources collide.
	specs := make([]workload.StreamSpec, sources)
	for i := range specs {
		specs[i] = workload.StreamSpec{
			Source:  int32(i + 1),
			MeanGap: 300,
			Delay:   workload.DelayParams{Base: 50, JitterMean: 200, SpikeProb: 0.05, SpikeMean: 3000},
		}
	}
	events := workload.GenDelayedStreams(specs, 120, 0xB1253)
	perSource := make(map[int32][]record.Record, sources)
	for _, ev := range events {
		rec := record.New(1, record.TSVal(ev.TS*4+int64(ev.Source)), record.I32Val(ev.Source))
		perSource[ev.Source] = append(perSource[ev.Source], rec)
	}

	const batchLen = 7
	for src := int32(1); src <= sources; src++ {
		addr := root.Addr()
		wantNode := src
		if relays > 0 {
			r := owner[src]
			addr = tier[r].Addr()
			wantNode = src - int32(base[r])
		}
		leaf := dialLeaf(t, addr, 0xD00+uint64(src))
		if leaf.node != wantNode {
			t.Fatalf("source %d got session node id %d, want %d (serial connect order must pin ids)",
				src, leaf.node, wantNode)
		}
		recs := perSource[src]
		for off := 0; off < len(recs); off += batchLen {
			end := off + batchLen
			if end > len(recs) {
				end = len(recs)
			}
			seq := leaf.send(recs[off:end]...)
			leaf.waitAck(seq)
		}
		leaf.close()
	}

	// Tier-ordered shutdown: each relay's Close flushes its sorter
	// through the uplink and waits for the root's acks, then the root's
	// Close emits the globally ordered trace.
	for r, rl := range tier {
		if err := rl.Close(); err != nil {
			t.Fatalf("relay %d close: %v", r, err)
		}
		if st := rl.Stats(); st.Dropped != 0 {
			t.Fatalf("relay %d dropped %d records at close", r, st.Dropped)
		}
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	st := root.Stats()
	if got, want := int(st.Emitted), len(events); got != want {
		t.Fatalf("relays=%d shards=%d: emitted %d records, want %d", relays, shards, got, want)
	}
	return trace.Bytes(), st.SyncProbes
}

// TestGoldenTraceFederationTransparent locks the federation tier's
// transparency at the byte level: the skew-free fixed-seed workload must
// produce the IDENTICAL root PICL trace whether the sources attach
// directly (relays=0) or through one or two relay tiers, at one and at
// four sorter shards — and that trace must match the golden file the
// direct pipeline committed. A relay may batch, re-sort, re-encode and
// re-attribute, but it may not change a single emitted byte.
func TestGoldenTraceFederationTransparent(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "ism", "testdata", "golden_trace.picl"))
	if err != nil {
		t.Fatalf("read golden file (regenerate in internal/ism with GOLDEN_UPDATE=1): %v", err)
	}
	direct := goldenFederatedTrace(t, 0, 1)
	if !bytes.Equal(direct, want) {
		t.Fatalf("direct trace diverges from the committed golden file (%d bytes vs %d)", len(direct), len(want))
	}
	for _, relays := range []int{1, 2} {
		for _, shards := range []int{1, 4} {
			got := goldenFederatedTrace(t, relays, shards)
			if !bytes.Equal(got, want) {
				t.Fatalf("relays=%d shards=%d: trace diverges from the direct golden trace (%d bytes vs %d)",
					relays, shards, len(got), len(want))
			}
		}
	}
}

// TestGoldenTraceFederatedModelSync locks the probe scheduler's data-path
// transparency across the federation: with the model-based sync master
// running at both the root tier (probing relay uplinks) and the relay
// tier (probing leaf sessions), the root's trace must still equal the
// committed golden file byte for byte. Control traffic shares every
// connection with the data batches; it may never reorder, drop, or
// mutate a record.
func TestGoldenTraceFederatedModelSync(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("..", "ism", "testdata", "golden_trace.picl"))
	if err != nil {
		t.Fatalf("read golden file (regenerate in internal/ism with GOLDEN_UPDATE=1): %v", err)
	}
	var probes uint64
	for _, relays := range []int{1, 2} {
		got, p := goldenFederatedTraceSync(t, relays, 1, true)
		probes += p
		if !bytes.Equal(got, want) {
			t.Fatalf("relays=%d: sync-enabled trace diverges from the golden file (%d bytes vs %d)",
				relays, len(got), len(want))
		}
	}
	if probes == 0 {
		t.Fatal("root sync master issued no probes across both topologies; the scheduler never engaged")
	}
}
