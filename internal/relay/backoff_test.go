package relay

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffDeterministicWithInjectedRand pins the uplink's backoff
// schedule byte-exactly through an injected jitter source — the
// regression test for the untestable wall-clock-seeded RNG. rnd=0.5
// makes the ±20% jitter factor exactly 1, leaving the pure exponential.
func TestBackoffDeterministicWithInjectedRand(t *testing.T) {
	const base, max = 10 * time.Millisecond, 80 * time.Millisecond
	r := &Relay{
		cfg:        Config{ReconnectBase: base, ReconnectMax: max},
		jitterRand: func() float64 { return 0.5 },
	}
	want := []time.Duration{base, 2 * base, 4 * base, max, max, max}
	for attempt, w := range want {
		if got := r.backoffDelay(attempt); got != w {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, w)
		}
	}
	// Two walks of the same schedule must agree exactly.
	for attempt := range want {
		if a, b := r.backoffDelay(attempt), r.backoffDelay(attempt); a != b {
			t.Fatalf("attempt %d: schedule not deterministic (%v vs %v)", attempt, a, b)
		}
	}
}

// TestBackoffJitterBounds covers the jitter band at the extremes of the
// random source: the factor is 1±0.2, and the floor clamps at 1ms.
func TestBackoffJitterBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	for _, tc := range []struct {
		rnd  float64
		want time.Duration
	}{
		{0, 80 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
		{1, 120 * time.Millisecond},
	} {
		r := &Relay{
			cfg:        Config{ReconnectBase: base, ReconnectMax: time.Second},
			jitterRand: func() float64 { return tc.rnd },
		}
		if got := r.backoffDelay(0); got != tc.want {
			t.Errorf("rnd=%v: delay = %v, want %v", tc.rnd, got, tc.want)
		}
	}
	floor := &Relay{
		cfg:        Config{ReconnectBase: 1, ReconnectMax: time.Second},
		jitterRand: func() float64 { return 0 },
	}
	if got := floor.backoffDelay(0); got < time.Millisecond {
		t.Fatalf("delay = %v, want the 1ms floor", got)
	}
}

// TestReconnectRandReachesLiveRelay verifies New wires Config's source
// into the running relay: an outage's backoff draws from it.
func TestReconnectRandReachesLiveRelay(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	var calls atomic.Int64
	rl, err := New(Config{
		Addr:                 "127.0.0.1:0",
		Parent:               root.Addr(),
		ISM:                  testISM(),
		ReconnectBase:        2 * time.Millisecond,
		ReconnectMax:         10 * time.Millisecond,
		MaxReconnectAttempts: 2,
		ReconnectRand:        func() float64 { calls.Add(1); return 0.5 },
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	root.Close() // sever the parent: the uplink enters its retry schedule
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("outage backoff never drew from the injected jitter source")
		}
		time.Sleep(time.Millisecond)
	}
}
