package relay

import (
	"fmt"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/ism"
	"brisk/internal/shm"
	"brisk/internal/vclock"
)

// TestMultiHopSkewComposition proves BRISK's relative clock correction
// composes across the federation. The sync rule is relative and
// forward-only: each master elects its most-ahead slave as the round's
// reference and advances the laggards toward it. Run over two tiers that
// means:
//
//   - hop 1: within each relay's fleet, the leaves' corrected clocks
//     converge to the fleet's most-ahead leaf;
//   - hop 2: across the root's fleet of relays, the relays' corrected
//     clocks (raw + accumulated root adjustments) converge to the
//     most-ahead relay;
//   - composed: a forwarded timestamp carries leaf correction plus relay
//     correction additively, so the cross-fleet disagreement in the root
//     frame equals the predictable inter-frame gap — the per-hop
//     corrections sum along the path, with residual error bounded by the
//     sum of the per-hop sync accuracies.
//
// Every correction must be non-negative: BRISK only ever steps clocks
// forward, at both tiers.
func TestMultiHopSkewComposition(t *testing.T) {
	const (
		syncPeriod = 10 * time.Millisecond
		// Per-hop accuracy bound for loopback sync rounds, generous for
		// CI noise.
		hopBound = int64(2_500)
	)
	relayOffsets := []int64{15_000, -4_000}    // relay raw clocks vs true time
	leafOffsets := [][]int64{{-12_000, 8_000}, // fleet 0: most-ahead +8000
		{-9_000, 2_000}} // fleet 1: most-ahead +2000

	root := newRoot(t, func(cfg *ism.Config) {
		cfg.SyncPeriod = syncPeriod
	})
	defer root.Close()

	relays := make([]*Relay, len(relayOffsets))
	relayDrifts := make([]*vclock.Drift, len(relayOffsets))
	for x, off := range relayOffsets {
		relayDrifts[x] = vclock.NewDrift(vclock.System{}, off, 0)
		icfg := testISM()
		icfg.SyncPeriod = syncPeriod
		var err error
		relays[x], err = New(Config{
			Addr:          "127.0.0.1:0",
			Parent:        root.Addr(),
			Name:          fmt.Sprintf("relay%d", x),
			NodeBase:      int32(x * 1000),
			Clock:         relayDrifts[x],
			ISM:           icfg,
			FlushInterval: time.Millisecond,
			Logf:          quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer relays[x].Close()
	}

	leafDrifts := make([][]*vclock.Drift, len(relays))
	leafCorr := make([][]*vclock.Corrected, len(relays))
	for x := range relays {
		leafDrifts[x] = make([]*vclock.Drift, len(leafOffsets[x]))
		leafCorr[x] = make([]*vclock.Corrected, len(leafOffsets[x]))
		for i, off := range leafOffsets[x] {
			leafDrifts[x][i] = vclock.NewDrift(vclock.System{}, off, 0)
			leafCorr[x][i] = vclock.NewCorrected(leafDrifts[x][i])
			e, err := exs.Dial(exs.Config{
				ManagerAddr:   relays[x].Addr(),
				NodeName:      fmt.Sprintf("leaf%d.%d", x, i),
				Region:        shm.NewRegion(),
				Clock:         leafCorr[x][i],
				FlushInterval: time.Millisecond,
				Logf:          quietLog,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
		}
	}

	// leafFrame is leaf (x,i)'s corrected clock offset vs true time;
	// relayFrame likewise for relay x.
	leafFrame := func(x, i int) int64 {
		return leafDrifts[x][i].SkewAgainstRef() + leafCorr[x][i].Correction()
	}
	relayFrame := func(x int) int64 {
		return relayDrifts[x].SkewAgainstRef() + relays[x].Clock().Correction()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for x := range relays { // hop 1, per fleet
			if abs(leafFrame(x, 0)-leafFrame(x, 1)) > hopBound {
				converged = false
			}
		}
		if abs(relayFrame(0)-relayFrame(1)) > hopBound { // hop 2
			converged = false
		}
		if converged {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("multi-hop sync never converged: fleet0 leaves (%d,%d) fleet1 leaves (%d,%d) relays (%d,%d) µs",
				leafFrame(0, 0), leafFrame(0, 1), leafFrame(1, 0), leafFrame(1, 1),
				relayFrame(0), relayFrame(1))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hop 1: each fleet sits on its most-ahead leaf's frame, and no
	// clock stepped backward.
	for x := range relays {
		maxOff := leafOffsets[x][0]
		if leafOffsets[x][1] > maxOff {
			maxOff = leafOffsets[x][1]
		}
		for i := range leafOffsets[x] {
			if c := leafCorr[x][i].Correction(); c < 0 {
				t.Fatalf("leaf %d.%d correction %dµs is negative — BRISK must only advance clocks", x, i, c)
			}
			if resid := abs(leafFrame(x, i) - maxOff); resid > hopBound {
				t.Fatalf("leaf %d.%d frame %dµs, want the fleet's most-ahead %dµs (resid %d > %d)",
					x, i, leafFrame(x, i), maxOff, resid, hopBound)
			}
		}
	}

	// Hop 2: the laggard relay stepped forward by ≈ the inter-relay
	// skew; the most-ahead relay stayed put.
	cA, cB := relays[0].Clock().Correction(), relays[1].Clock().Correction()
	if cA < 0 || cB < 0 {
		t.Fatalf("relay corrections (%d, %d)µs: negative — BRISK must only advance clocks", cA, cB)
	}
	if wantB := relayOffsets[0] - relayOffsets[1]; abs(cB-wantB) > hopBound || cA > hopBound {
		t.Fatalf("relay corrections (%d, %d)µs, want ≈(0, %d): laggard steps to the most-ahead relay",
			cA, cB, wantB)
	}
	for x, rl := range relays {
		st := rl.Stats()
		if st.Probes == 0 {
			t.Fatalf("relay %d answered no root probes", x)
		}
		if st.ISM.SyncRounds == 0 {
			t.Fatalf("relay %d ran no sync rounds over its own fleet", x)
		}
	}
	if relays[1].Stats().Adjusts == 0 {
		t.Fatal("laggard relay received no adjustments from the root")
	}

	// Composition: a record forwarded from fleet x reaches the root in
	// frame (most-ahead leaf of x) + (relay x's correction) — the two
	// hops' corrections add. The cross-fleet disagreement must therefore
	// equal the predictable inter-frame gap within the summed per-hop
	// bounds, not drift off unpredictably.
	composed := func(x, i int) int64 { return leafFrame(x, i) + relays[x].Clock().Correction() }
	predicted := (leafOffsets[0][1] + cA) - (leafOffsets[1][1] + cB)
	for i := range leafOffsets[0] {
		for j := range leafOffsets[1] {
			got := composed(0, i) - composed(1, j)
			if abs(got-predicted) > 2*hopBound {
				t.Fatalf("composed cross-fleet skew leaf0.%d vs leaf1.%d = %dµs, predicted %dµs (±%d)",
					i, j, got, predicted, 2*hopBound)
			}
		}
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
