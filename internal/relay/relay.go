// Package relay implements the intermediate tier of a hierarchical
// (federated) BRISK deployment: a relay owns a regional fleet of
// external sensors — running the full manager pipeline against them
// (per-session decode, on-line sort, causal matching, clock sync) — and
// forwards its already-monotone merged stream upward to a parent ISM
// over the ordinary wire protocol as one high-rate session.
//
// The relay is two halves bolted together:
//
//   - downstream, an embedded ism.Manager whose Forward sink tap feeds
//     every emitted record (origin-attributed, loss markers included)
//     into the uplink, and whose GateBacklog hook counts the uplink's
//     unacknowledged backlog toward the ack-gate occupancy — so a parent
//     withholding acks closes this tier's gate and the halt propagates
//     to the leaves;
//   - upstream, an EXS-shaped client (sequence-numbered retransmit
//     queue, credit flow control, session resume, drop-oldest eviction
//     folding into loss markers) that ships RelayBatch frames whose
//     entries carry their 4-byte origin node ids, rebased by NodeBase so
//     origins stay globally unique across relays.
//
// Clock correction composes per hop: the relay's child-tier sync master
// runs on the relay's raw clock (children converge to the relay frame),
// the parent's probes are answered with the relay's corrected clock and
// its adjustments accumulate in that correction, and every forwarded
// timestamp is patched by the correction at encode time — so a leaf
// record reaches the root in the root frame with error bounded by the
// sum of the per-hop residuals.
//
// Loss markers never disappear: a marker emitted downstream is forwarded
// like any record, and batches evicted from the uplink queue are folded
// (marker coverage included) into a pending-loss accumulator whose next
// synthesized marker rides at the head of a later batch. The composed
// contract "acked ⇒ emitted at the root or represented by a loss
// marker" therefore holds across both hops.
package relay

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"brisk/internal/ism"
	"brisk/internal/metrics"
	"brisk/internal/record"
	"brisk/internal/vclock"
	"brisk/internal/wire"
)

// DefaultReconnectAttempts bounds one uplink outage's retry schedule.
const DefaultReconnectAttempts = 20

// Uplink connection states.
const (
	stateOnline = iota
	stateReconnecting
	stateDead
)

// Config configures a Relay. Addr and Parent are required.
type Config struct {
	// Addr is the downstream TCP listen address for this relay's
	// regional sensor fleet (port 0 for ephemeral; see Relay.Addr).
	Addr string
	// Parent is the parent manager's address the merged stream is
	// forwarded to.
	Parent string
	// Name is the node name announced upstream. Default "relay".
	Name string
	// NodeBase is added to every forwarded origin node id (and stamps
	// uplink-synthesized loss markers), keeping origins globally unique
	// when several relays feed one root: give relay i a base of
	// i×(its fleet size).
	NodeBase int32
	// Clock is the relay's raw local clock; nil means the system clock.
	// The downstream manager (and so the child-tier sync master) runs
	// directly on it; the uplink wraps it in the corrected clock the
	// parent's sync rounds adjust.
	Clock vclock.Clock
	// ISM tunes the downstream manager (sorter, shards, watermarks,
	// sync cadence, …). Addr, Clock, Forward, GateBacklog and Metrics
	// are overridden by the relay.
	ISM ism.Config
	// BatchRecords is how many forwarded records one uplink batch
	// carries before it is sealed. Default 256.
	BatchRecords int
	// FlushInterval bounds how long a partial batch may wait before
	// shipping. Default 2 ms.
	FlushInterval time.Duration
	// QueueBytes bounds the uplink retransmit queue; the oldest sealed
	// batch is evicted (folded into a loss marker) past it. Default 4 MiB.
	QueueBytes int
	// DialTimeout bounds one parent dial + handshake. Default 5 s.
	DialTimeout time.Duration
	// ReconnectBase and ReconnectMax shape the uplink's exponential
	// backoff. Defaults 50 ms and 5 s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// MaxReconnectAttempts caps one outage's retries; 0 means
	// DefaultReconnectAttempts, negative retries forever.
	MaxReconnectAttempts int
	// ReconnectRand, when non-nil, is the [0,1) source the uplink's
	// ±20% backoff jitter is drawn from. Injectable so backoff schedules
	// are deterministic under test; nil uses a private PRNG seeded from
	// the session id and the wall clock.
	ReconnectRand func() float64
	// Metrics, when non-nil, receives both the relay's uplink series and
	// the embedded manager's series; nil means a private registry.
	Metrics *metrics.Registry
	// Logf logs diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of relay counters.
type Stats struct {
	// Node is the parent-assigned node id of the uplink session.
	Node int32
	// Session is the uplink's resume-session identifier.
	Session uint64
	// Online reports a live parent connection.
	Online bool
	// Forwarded counts records tapped off the downstream emission.
	Forwarded uint64
	// Shipped counts records first-sent upstream (marker records
	// included); Batches counts RelayBatch frames, retransmits included.
	Shipped uint64
	Batches uint64
	// Retransmits counts batches replayed after a session resume.
	Retransmits uint64
	// Reconnects counts successful uplink reconnections.
	Reconnects uint64
	// Dropped counts records discarded from the uplink queue (eviction
	// or unacknowledged at close); every evicted record is folded into a
	// loss marker first.
	Dropped uint64
	// LossMarkers counts uplink-synthesized markers; MarkedLost is the
	// record count they testify to.
	LossMarkers uint64
	MarkedLost  uint64
	// BacklogRecords is the current unacknowledged uplink backlog (the
	// quantity GateBacklog feeds the downstream ack gate).
	BacklogRecords int64
	// QueuedBytes is the sealed-batch queue's current size.
	QueuedBytes int
	// CreditWindow is the parent's current grant (-1 without flow
	// control); CreditStalls counts pump passes stopped on empty credit.
	CreditWindow int64
	CreditStalls uint64
	// Probes and Adjusts count parent sync traffic served; Correction is
	// the accumulated relay→root clock correction in µs.
	Probes     uint64
	Adjusts    uint64
	Correction int64
	// ISM is the embedded downstream manager's snapshot.
	ISM ism.Stats
}

// qEntry is one sealed, sequence-numbered uplink batch.
type qEntry struct {
	seq      uint64
	count    int
	payload  []byte
	sent     bool
	everSent bool
}

// Relay is one intermediate-tier node. Create with New, stop with Close.
type Relay struct {
	cfg     Config
	logf    func(string, ...any)
	rawClk  vclock.Clock
	clock   *vclock.Corrected
	mgr     *ism.Manager
	reg     *metrics.Registry
	session uint64

	// Uplink batch assembly and retransmit queue. cur accumulates
	// encoded entries between seals; queue holds sealed batches until
	// the parent acks them.
	qMu       sync.Mutex
	cur       []byte
	curCount  int
	queue     []qEntry
	qBytes    int
	nextSeq   uint64
	freeBufs  [][]byte
	inflight  int64
	creditOn  bool
	creditW   int64
	stalled   bool
	lossCount uint64
	lossFirst int64
	lossLast  int64

	backlog atomic.Int64 // records in cur + queue (pending-loss coverage excluded)

	connMu sync.Mutex
	conn   *wire.Conn
	raw    net.Conn

	state       atomic.Int32
	node        atomic.Int32
	closed      atomic.Bool
	done        chan struct{}
	flushNow    chan struct{}
	reconnectCh chan struct{}
	wgCtl       sync.WaitGroup
	wgFlush     sync.WaitGroup
	jitterRand  func() float64 // guarded by rngMu
	rngMu       sync.Mutex

	forwarded    *metrics.Counter
	shipped      *metrics.Counter
	batches      *metrics.Counter
	retransmits  *metrics.Counter
	reconnects   *metrics.Counter
	dropped      *metrics.Counter
	lossMarkersC *metrics.Counter
	markedLostC  *metrics.Counter
	creditStalls *metrics.Counter
	probes       *metrics.Counter
	adjusts      *metrics.Counter
}

// New creates a relay: it starts the downstream manager on cfg.Addr,
// dials the parent, and begins forwarding.
func New(cfg Config) (*Relay, error) {
	if cfg.Addr == "" || cfg.Parent == "" {
		return nil, errors.New("relay: Config.Addr and Config.Parent are required")
	}
	if cfg.Name == "" {
		cfg.Name = "relay"
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.System{}
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Millisecond
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 4 << 20
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 50 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 5 * time.Second
	}
	if cfg.MaxReconnectAttempts == 0 {
		cfg.MaxReconnectAttempts = DefaultReconnectAttempts
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	r := &Relay{
		cfg:         cfg,
		logf:        logf,
		rawClk:      cfg.Clock,
		clock:       vclock.NewCorrected(cfg.Clock),
		session:     newSessionID(),
		done:        make(chan struct{}),
		flushNow:    make(chan struct{}, 1),
		reconnectCh: make(chan struct{}, 1),
	}
	r.jitterRand = cfg.ReconnectRand
	if r.jitterRand == nil {
		r.jitterRand = mrand.New(mrand.NewSource(int64(r.session) ^ time.Now().UnixNano())).Float64
	}
	r.registerMetrics(cfg.Metrics)

	mcfg := cfg.ISM
	mcfg.Addr = cfg.Addr
	mcfg.Clock = r.rawClk
	mcfg.Forward = r.forward
	mcfg.GateBacklog = func() int { return int(r.backlog.Load()) }
	mcfg.Metrics = r.reg
	if mcfg.Logf == nil {
		mcfg.Logf = logf
	}
	mgr, err := ism.New(mcfg)
	if err != nil {
		return nil, fmt.Errorf("relay: downstream manager: %w", err)
	}
	r.mgr = mgr

	raw, conn, ack, err := r.connect(false)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	r.raw, r.conn = raw, conn
	r.node.Store(ack.Node)
	r.applyWindow(ack.Window)
	r.state.Store(stateOnline)

	mgr.Start()
	r.wgCtl.Add(1)
	go r.controlLoop(conn)
	r.wgCtl.Add(1)
	go r.reconnector()
	r.wgFlush.Add(1)
	go r.flushLoop()
	return r, nil
}

// newSessionID returns a random non-zero session identifier.
func newSessionID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

func (r *Relay) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r.reg = reg
	r.forwarded = reg.Counter(metrics.Desc{Name: "brisk_relay_forwarded_total",
		Help: "records tapped off the downstream emission into the uplink", Unit: "records"})
	r.shipped = reg.Counter(metrics.Desc{Name: "brisk_relay_shipped_total",
		Help: "records first-sent to the parent (uplink markers included)", Unit: "records"})
	r.batches = reg.Counter(metrics.Desc{Name: "brisk_relay_batches_total",
		Help: "relay-batch frames written upstream, retransmits included", Unit: "batches"})
	r.retransmits = reg.Counter(metrics.Desc{Name: "brisk_relay_retransmit_batches_total",
		Help: "uplink batches replayed after a session resume", Unit: "batches"})
	r.reconnects = reg.Counter(metrics.Desc{Name: "brisk_relay_reconnects_total",
		Help: "successful uplink reconnections to the parent", Unit: "connections"})
	r.dropped = reg.Counter(metrics.Desc{Name: "brisk_relay_dropped_total",
		Help: "records discarded from the uplink queue (evicted into a loss marker, or unacknowledged at close)",
		Unit: "records"})
	r.lossMarkersC = reg.Counter(metrics.Desc{Name: "brisk_relay_loss_markers_total",
		Help: "loss markers synthesized by the uplink for evicted batches", Unit: "markers"})
	r.markedLostC = reg.Counter(metrics.Desc{Name: "brisk_relay_marked_lost_total",
		Help: "records represented by uplink-synthesized loss markers", Unit: "records"})
	r.creditStalls = reg.Counter(metrics.Desc{Name: "brisk_relay_credit_stalls_total",
		Help: "uplink pump passes stopped on exhausted parent credit", Unit: "stalls"})
	r.probes = reg.Counter(metrics.Desc{Name: "brisk_relay_clock_probes_total",
		Help: "parent clock-synchronization probes answered", Unit: "probes"})
	r.adjusts = reg.Counter(metrics.Desc{Name: "brisk_relay_clock_adjusts_total",
		Help: "parent clock adjustments applied to the relay correction", Unit: "adjustments"})
	reg.GaugeFunc(metrics.Desc{Name: "brisk_relay_backlog_records",
		Help: "unacknowledged uplink backlog counted toward the downstream ack gate", Unit: "records"},
		func() float64 { return float64(r.backlog.Load()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_relay_correction_microseconds",
		Help: "accumulated relay-to-root clock correction (this hop's offset estimate)", Unit: "microseconds"},
		func() float64 { return float64(r.clock.Correction()) })
	reg.GaugeFunc(metrics.Desc{Name: "brisk_relay_online",
		Help: "1 while the uplink session is attached to the parent"},
		func() float64 {
			if r.state.Load() == stateOnline {
				return 1
			}
			return 0
		})
}

// Metrics returns the registry holding the relay's (and its embedded
// manager's) series.
func (r *Relay) Metrics() *metrics.Registry { return r.reg }

// Manager returns the embedded downstream manager (for its Addr, buffer
// cursors and stats).
func (r *Relay) Manager() *ism.Manager { return r.mgr }

// Addr returns the downstream listen address sensors dial.
func (r *Relay) Addr() string { return r.mgr.Addr() }

// Node returns the parent-assigned uplink node id.
func (r *Relay) Node() int32 { return r.node.Load() }

// Clock returns the relay's corrected clock (raw clock plus the
// correction accumulated from parent sync rounds).
func (r *Relay) Clock() *vclock.Corrected { return r.clock }

// connect dials the parent and runs the HELLO exchange.
func (r *Relay) connect(resume bool) (net.Conn, *wire.Conn, *wire.HelloAck, error) {
	d := net.Dialer{Timeout: r.cfg.DialTimeout}
	raw, err := d.Dial("tcp", r.cfg.Parent)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("relay: dial parent: %w", err)
	}
	raw.SetDeadline(time.Now().Add(r.cfg.DialTimeout))
	conn := wire.NewConn(raw)
	hello := &wire.Hello{
		Version: wire.ProtocolVersion,
		Name:    r.cfg.Name,
		Session: r.session,
		Resume:  resume,
	}
	if err := conn.Send(hello); err != nil {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("relay: hello: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("relay: hello ack: %w", err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		raw.Close()
		return nil, nil, nil, fmt.Errorf("relay: expected HELLO_ACK, got %v", msg.Type())
	}
	if ack.Version >= wire.MinProtocolVersion && ack.Version <= wire.ProtocolVersion {
		// Pin the uplink to the version the parent negotiated.
		conn.SetVersion(ack.Version)
	}
	raw.SetDeadline(time.Time{})
	return raw, conn, ack, nil
}

// forward is the downstream manager's Forward tap: it encodes one
// emitted record as a node-prefixed entry into the batch under
// assembly, rebasing the origin id and patching the timestamp into the
// parent frame. Runs on the downstream merger with its pipeline lock
// held, so it only appends — sealing moves the batch to the queue but
// never touches the network.
func (r *Relay) forward(rec *record.Record) {
	node := rec.Node + r.cfg.NodeBase
	corr := r.clock.Correction()
	r.qMu.Lock()
	mark := len(r.cur)
	buf := append(r.cur,
		byte(uint32(node)>>24), byte(uint32(node)>>16),
		byte(uint32(node)>>8), byte(uint32(node)))
	var err error
	if corr != 0 && rec.HasTS {
		// Shift into the parent frame for the encode only; the record is
		// borrowed and feeds the local sinks after us.
		rec.TS += corr
		buf, err = rec.Append(buf)
		rec.TS -= corr
	} else {
		buf, err = rec.Append(buf)
	}
	if err != nil {
		r.cur = buf[:mark]
		r.qMu.Unlock()
		r.logf("relay: encode for uplink: %v", err)
		return
	}
	r.cur = buf
	r.curCount++
	r.backlog.Add(1)
	seal := r.curCount >= r.cfg.BatchRecords
	if seal {
		r.sealLocked()
	}
	r.qMu.Unlock()
	r.forwarded.Inc()
	if seal {
		r.kick()
	}
}

// kick asks the flush loop to pump now.
func (r *Relay) kick() {
	select {
	case r.flushNow <- struct{}{}:
	default:
	}
}

// appendMarker encodes one node-prefixed loss marker entry.
func appendMarker(buf []byte, node int32, count uint64, firstTS, lastTS int64) ([]byte, error) {
	rec := record.NewLossMarker(count, firstTS, lastTS)
	buf = append(buf,
		byte(uint32(node)>>24), byte(uint32(node)>>16),
		byte(uint32(node)>>8), byte(uint32(node)))
	return rec.Append(buf)
}

// sealLocked closes the batch under assembly into a queue entry,
// prefixing a loss marker when evictions are pending, and applies the
// drop-oldest queue bound. Caller holds qMu.
func (r *Relay) sealLocked() {
	if r.curCount == 0 && r.lossCount == 0 {
		return
	}
	var payload []byte
	if n := len(r.freeBufs); n > 0 {
		payload = r.freeBufs[n-1]
		r.freeBufs = r.freeBufs[:n-1]
	}
	count := 0
	if r.lossCount > 0 {
		var err error
		payload, err = appendMarker(payload, r.cfg.NodeBase, r.lossCount, r.lossFirst, r.lossLast)
		if err == nil {
			count++
			r.backlog.Add(1)
			r.lossMarkersC.Inc()
			r.markedLostC.Add(r.lossCount)
			r.lossCount, r.lossFirst, r.lossLast = 0, 0, 0
		}
	}
	payload = append(payload, r.cur...)
	count += r.curCount
	r.cur = r.cur[:0]
	r.curCount = 0
	r.nextSeq++
	r.queue = append(r.queue, qEntry{seq: r.nextSeq, count: count, payload: payload})
	r.qBytes += len(payload)
	var evicted uint64
	for r.qBytes > r.cfg.QueueBytes && len(r.queue) > 1 {
		old := r.queue[0]
		r.queue = r.queue[1:]
		r.qBytes -= len(old.payload)
		if old.sent {
			r.inflight -= int64(old.count)
		}
		if n, f, l := tallyPrefixed(old.payload); n > 0 {
			r.addLossLocked(n, f, l)
		}
		r.recycleBuf(old.payload)
		r.backlog.Add(-int64(old.count))
		evicted += uint64(old.count)
	}
	if evicted > 0 {
		r.dropped.Add(evicted)
	}
}

// tallyPrefixed sums the records of one node-prefixed uplink payload,
// folding nested loss markers into the count and covered range — so an
// evicted batch's own markers survive into the replacement marker.
func tallyPrefixed(payload []byte) (count uint64, firstTS, lastTS int64) {
	first := true
	note := func(ts int64) {
		if first {
			firstTS, lastTS, first = ts, ts, false
			return
		}
		if ts < firstTS {
			firstTS = ts
		}
		if ts > lastTS {
			lastTS = ts
		}
	}
	for len(payload) >= 4 {
		payload = payload[4:]
		rec, n, err := record.Decode(payload)
		if err != nil || n == 0 {
			break
		}
		payload = payload[n:]
		if c, f, l, ok := record.LossInfo(&rec); ok {
			count += c
			note(f)
			note(l)
			continue
		}
		count++
		if rec.HasTS {
			note(rec.TS)
		}
	}
	return count, firstTS, lastTS
}

// addLossLocked folds evicted records into the pending-loss
// accumulator. Caller holds qMu.
func (r *Relay) addLossLocked(count uint64, firstTS, lastTS int64) {
	if count == 0 {
		return
	}
	if r.lossCount == 0 {
		r.lossFirst, r.lossLast = firstTS, lastTS
	} else {
		if firstTS < r.lossFirst {
			r.lossFirst = firstTS
		}
		if lastTS > r.lossLast {
			r.lossLast = lastTS
		}
	}
	r.lossCount += count
}

// maxFreeBufs bounds the recycled-payload free list.
const maxFreeBufs = 8

// recycleBuf returns an acked or evicted payload's storage to the free
// list. Caller holds qMu.
func (r *Relay) recycleBuf(b []byte) {
	if b != nil && len(r.freeBufs) < maxFreeBufs {
		r.freeBufs = append(r.freeBufs, b[:0])
	}
}

// applyWindow installs a parent credit grant; 0 disables flow control.
func (r *Relay) applyWindow(w uint32) {
	r.qMu.Lock()
	if w == 0 {
		r.creditOn, r.creditW = false, 0
	} else {
		r.creditOn, r.creditW = true, int64(w)
	}
	r.qMu.Unlock()
}

// pump writes every not-yet-sent sealed batch to c in sequence order,
// within the parent's credit window (the first batch is always
// sendable, as in the sensor pump).
func (r *Relay) pump(c *wire.Conn) error {
	r.qMu.Lock()
	defer r.qMu.Unlock()
	blocked := false
	for i := range r.queue {
		ent := &r.queue[i]
		if ent.sent {
			continue
		}
		if r.creditOn && r.inflight > 0 && r.inflight+int64(ent.count) > r.creditW {
			blocked = true
			if !r.stalled {
				r.stalled = true
				r.creditStalls.Inc()
			}
			break
		}
		msg := &wire.RelayBatch{Seq: ent.seq, Count: uint32(ent.count), Payload: ent.payload}
		if err := c.Send(msg); err != nil {
			return err
		}
		ent.sent = true
		r.inflight += int64(ent.count)
		r.batches.Inc()
		if ent.everSent {
			r.retransmits.Inc()
		} else {
			ent.everSent = true
			r.shipped.Add(uint64(ent.count))
		}
	}
	if !blocked {
		r.stalled = false
	}
	return nil
}

// ackTo releases every sealed batch with sequence ≤ seq.
func (r *Relay) ackTo(seq uint64) {
	r.qMu.Lock()
	for len(r.queue) > 0 && r.queue[0].seq <= seq {
		ent := r.queue[0]
		if ent.sent {
			r.inflight -= int64(ent.count)
		}
		r.qBytes -= len(ent.payload)
		r.recycleBuf(ent.payload)
		r.backlog.Add(-int64(ent.count))
		r.queue = r.queue[1:]
	}
	if len(r.queue) == 0 {
		r.queue = nil
	}
	if r.inflight < 0 {
		r.inflight = 0
	}
	r.qMu.Unlock()
}

// liveConn returns the current uplink connection, or nil.
func (r *Relay) liveConn() *wire.Conn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.conn
}

// markDisconnected tears the uplink down (if c is still current), flags
// queued batches for retransmission and wakes the reconnector.
func (r *Relay) markDisconnected(c *wire.Conn, err error) {
	r.connMu.Lock()
	if r.conn != c || c == nil {
		r.connMu.Unlock()
		return
	}
	raw := r.raw
	r.conn, r.raw = nil, nil
	r.connMu.Unlock()
	raw.Close()
	r.resetTransmitState()
	if r.closed.Load() {
		return
	}
	if r.state.CompareAndSwap(stateOnline, stateReconnecting) {
		r.logf("relay: parent connection lost (%v), reconnecting", err)
	}
	select {
	case r.reconnectCh <- struct{}{}:
	default:
	}
}

// resetTransmitState flags every sealed batch for retransmission and
// clears the in-flight window. It must run whenever an uplink connection
// is abandoned — including a redial whose replay pump failed before the
// link went online. A batch left marked sent would be skipped by the
// next replay, and the parent's cumulative ack for a later sequence
// (gaps are legal: eviction creates them) would release it undelivered.
func (r *Relay) resetTransmitState() {
	r.qMu.Lock()
	for i := range r.queue {
		r.queue[i].sent = false
	}
	r.inflight = 0
	r.stalled = false
	r.qMu.Unlock()
}

// markDead gives up on the parent permanently: the queue is discarded
// (counted) and forwarding degrades to accumulating then evicting.
func (r *Relay) markDead(reason string) {
	if r.state.Swap(stateDead) == stateDead {
		return
	}
	r.qMu.Lock()
	var lost uint64
	for _, ent := range r.queue {
		lost += uint64(ent.count)
		r.backlog.Add(-int64(ent.count))
	}
	r.queue, r.qBytes = nil, 0
	r.inflight = 0
	r.stalled = false
	r.qMu.Unlock()
	if lost > 0 {
		r.dropped.Add(lost)
	}
	if !r.closed.Load() {
		r.logf("relay: giving up on parent (%s), discarding forwarded records", reason)
	}
}

// backoffDelay computes the exponential-backoff delay for the 0-based
// attempt: base·2^attempt capped at max with ±20% jitter.
func (r *Relay) backoffDelay(attempt int) time.Duration {
	d := r.cfg.ReconnectBase
	for i := 0; i < attempt && d < r.cfg.ReconnectMax; i++ {
		d *= 2
	}
	if d > r.cfg.ReconnectMax {
		d = r.cfg.ReconnectMax
	}
	r.rngMu.Lock()
	f := 1 + 0.2*(2*r.jitterRand()-1)
	r.rngMu.Unlock()
	d = time.Duration(float64(d) * f)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// reconnector owns redialing the parent: backoff, HELLO with resume,
// trim to the parent's resume point, replay, then back online.
func (r *Relay) reconnector() {
	defer r.wgCtl.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.reconnectCh:
		}
		if r.state.Load() != stateReconnecting {
			continue
		}
		if !r.reconnectLoop() {
			return
		}
	}
}

// reconnectLoop runs one outage's retry schedule; false means the
// reconnector should exit (shutdown or permanent give-up).
func (r *Relay) reconnectLoop() bool {
	max := r.cfg.MaxReconnectAttempts
	for attempt := 0; ; attempt++ {
		if max >= 0 && attempt >= max {
			r.markDead(fmt.Sprintf("retry cap %d reached", max))
			return false
		}
		timer := time.NewTimer(r.backoffDelay(attempt))
		select {
		case <-r.done:
			timer.Stop()
			return false
		case <-timer.C:
		}
		raw, conn, ack, err := r.connect(true)
		if err != nil {
			continue
		}
		r.node.Store(ack.Node)
		r.applyWindow(ack.Window)
		if ack.Resumed {
			r.ackTo(ack.LastSeq)
		}
		// A replay failure abandons a connection markDisconnected never
		// saw (r.conn is still nil): re-flag the batches this pump wrote
		// into the dead socket, or the next replay would skip them.
		if err := r.pump(conn); err != nil {
			raw.Close()
			r.resetTransmitState()
			continue
		}
		r.connMu.Lock()
		r.raw, r.conn = raw, conn
		r.connMu.Unlock()
		r.state.Store(stateOnline)
		r.reconnects.Inc()
		r.logf("relay: reconnected to parent as node %d (resumed=%v)", ack.Node, ack.Resumed)
		r.wgCtl.Add(1)
		go r.controlLoop(conn)
		if err := r.pump(conn); err != nil {
			r.markDisconnected(conn, err)
		}
		return true
	}
}

// flushLoop seals aged partial batches and pumps the queue, on the
// flush interval and on demand.
func (r *Relay) flushLoop() {
	defer r.wgFlush.Done()
	ticker := time.NewTicker(r.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-r.flushNow:
		case <-ticker.C:
			r.qMu.Lock()
			r.sealLocked()
			r.qMu.Unlock()
		}
		if c := r.liveConn(); c != nil {
			if err := r.pump(c); err != nil {
				r.markDisconnected(c, err)
			}
		}
	}
}

// controlLoop serves one uplink connection's inbound frames: the
// parent's sync probes and adjustments (this hop's clock correction),
// acks, and heartbeats.
func (r *Relay) controlLoop(c *wire.Conn) {
	defer r.wgCtl.Done()
	for {
		msg, err := c.Recv()
		if err != nil {
			if !r.closed.Load() {
				r.markDisconnected(c, err)
			}
			return
		}
		switch t := msg.(type) {
		case *wire.Probe:
			r.probes.Inc()
			reply := &wire.ProbeReply{
				Seq:        t.Seq,
				MasterSend: t.MasterSend,
				SlaveTime:  r.clock.NowMicros(),
			}
			if err := c.Send(reply); err != nil {
				r.markDisconnected(c, err)
				return
			}
		case *wire.Adjust:
			r.adjusts.Inc()
			r.clock.Adjust(t.DeltaMicros)
			if t.RatePPB >= 0 {
				// Model-based parent: this hop's correction extrapolates
				// between the parent's probes, and composes additively
				// with the child tier exactly like step corrections.
				r.clock.SetRatePPM(float64(t.RatePPB) / 1000)
			}
		case *wire.DataAck:
			r.ackTo(t.Seq)
			r.applyWindow(t.Window)
			if err := r.pump(c); err != nil {
				r.markDisconnected(c, err)
				return
			}
		case *wire.Ping:
			if err := c.Send(&wire.Pong{Seq: t.Seq}); err != nil {
				r.markDisconnected(c, err)
				return
			}
		case *wire.Bye:
			r.markDisconnected(c, errors.New("parent sent BYE"))
			return
		default:
			r.logf("relay: unexpected %v from parent", msg.Type())
			r.markDisconnected(c, fmt.Errorf("unexpected %v", msg.Type()))
			return
		}
	}
}

// Stats returns a snapshot of the relay counters.
func (r *Relay) Stats() Stats {
	r.qMu.Lock()
	queued := r.qBytes
	creditW := int64(-1)
	if r.creditOn {
		creditW = r.creditW
	}
	r.qMu.Unlock()
	return Stats{
		Node:           r.node.Load(),
		Session:        r.session,
		Online:         r.state.Load() == stateOnline,
		Forwarded:      r.forwarded.Value(),
		Shipped:        r.shipped.Value(),
		Batches:        r.batches.Value(),
		Retransmits:    r.retransmits.Value(),
		Reconnects:     r.reconnects.Value(),
		Dropped:        r.dropped.Value(),
		LossMarkers:    r.lossMarkersC.Value(),
		MarkedLost:     r.markedLostC.Value(),
		BacklogRecords: r.backlog.Load(),
		QueuedBytes:    queued,
		CreditWindow:   creditW,
		CreditStalls:   r.creditStalls.Value(),
		Probes:         r.probes.Value(),
		Adjusts:        r.adjusts.Value(),
		Correction:     r.clock.Correction(),
		ISM:            r.mgr.Stats(),
	}
}

// Close shuts the relay down tier by tier: the downstream manager first
// (severing leaf sessions and flushing its sorter through the Forward
// tap), then the uplink tail is sealed and pumped, acknowledged batches
// are awaited (bounded), and the parent link closes with a BYE. Records
// the parent never acknowledged are counted as dropped.
func (r *Relay) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	// Downstream flush: every record acked to a leaf is now either
	// emitted (and so in the uplink) or represented by a marker.
	err := r.mgr.Close()
	r.qMu.Lock()
	r.sealLocked()
	r.qMu.Unlock()
	if c := r.liveConn(); c != nil {
		if perr := r.pump(c); perr != nil {
			r.markDisconnected(c, perr)
		}
	}
	// Wait (bounded) for the parent to acknowledge the tail; closing the
	// socket with acks in flight would reset the final batches out of
	// the parent's receive buffer.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.qMu.Lock()
		empty := len(r.queue) == 0 && r.curCount == 0 && r.lossCount == 0
		r.qMu.Unlock()
		if empty || r.state.Load() != stateOnline || r.liveConn() == nil {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(r.done)
	r.wgFlush.Wait()
	r.connMu.Lock()
	c, raw := r.conn, r.raw
	r.conn, r.raw = nil, nil
	r.connMu.Unlock()
	if c != nil {
		_ = c.Send(&wire.Bye{})
		if cerr := raw.Close(); err == nil {
			err = cerr
		}
	}
	r.wgCtl.Wait()
	r.qMu.Lock()
	var lost uint64
	for _, ent := range r.queue {
		lost += uint64(ent.count)
		r.backlog.Add(-int64(ent.count))
	}
	r.queue, r.qBytes = nil, 0
	r.qMu.Unlock()
	if lost > 0 {
		r.dropped.Add(lost)
	}
	return err
}
