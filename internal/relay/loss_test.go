package relay

import (
	"fmt"
	"testing"
	"time"

	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/workload"
)

// TestLossMarkerAggregationAcrossTiers is the composed-loss property
// test: faultnet cuts overload BOTH tiers' bounded queues — the leaves'
// spill queues while their links are down, and the relay's uplink queue
// while the parent link is down — so loss markers are synthesized at
// both hops, relay-tier markers folding evicted batches that may
// themselves carry leaf markers. At the root, the aggregate must
// account for every acknowledged-but-dropped record: nothing emitted
// twice, nothing that disappears without marker coverage, and no
// coverage invented beyond what the tiers marked.
func TestLossMarkerAggregationAcrossTiers(t *testing.T) {
	testStart := time.Now().UnixMicro()
	root := newRoot(t, nil)
	defer root.Close()

	uplink, err := faultnet.Listen(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer uplink.Close()

	icfg := testISM()
	icfg.Sorter = ols.Config{InitialT: 5000}
	rl, err := New(Config{
		Addr:   "127.0.0.1:0",
		Parent: uplink.Addr(),
		ISM:    icfg,
		// A tiny uplink queue: a parent outage forces drop-oldest
		// evictions (and so relay-tier markers) almost immediately.
		QueueBytes:           4096,
		BatchRecords:         16,
		FlushInterval:        time.Millisecond,
		ReconnectBase:        2 * time.Millisecond,
		ReconnectMax:         20 * time.Millisecond,
		MaxReconnectAttempts: -1,
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	const nLeaves = 2
	type leaf struct {
		proxy  *faultnet.Proxy
		region *shm.Region
		exs    *exs.EXS
		sensor *sensor.Sensor
	}
	leaves := make([]*leaf, nLeaves)
	for i := range leaves {
		l := &leaf{}
		l.proxy, err = faultnet.Listen(rl.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer l.proxy.Close()
		l.region = shm.NewRegion()
		l.exs, err = exs.Dial(exs.Config{
			ManagerAddr:   l.proxy.Addr(),
			NodeName:      fmt.Sprintf("leaf%d", i),
			Region:        l.region,
			Clock:         vclock.NewCorrected(vclock.System{}),
			BatchBytes:    1024,
			FlushInterval: time.Millisecond,
			PollInterval:  200 * time.Microsecond,
			ReconnectBase: 2 * time.Millisecond,
			ReconnectMax:  20 * time.Millisecond,
			// Never give up: a dead sensor discards its loss accounting.
			MaxReconnectAttempts: -1,
			// A tiny spill queue: a link outage evicts into leaf markers.
			SpillBytes: 4096,
			Logf:       quietLog,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.exs.Close()
		l.sensor = sensor.New(l.region, "app", sensor.Options{RingBytes: 1 << 18})
		leaves[i] = l
	}

	const phaseEvents = 2500
	drive := func(phase int) {
		for i, l := range leaves {
			lp := &workload.Looper{Sensor: l.sensor, Event: uint8(10 + i)}
			got := lp.Run(phaseEvents)
			if got != phaseEvents {
				t.Fatalf("phase %d leaf %d: ring accepted %d of %d (size the ring up)", phase, i, got, phaseEvents)
			}
		}
	}

	// Phase A — parent outage: leaves flow into the relay freely, the
	// relay's uplink queue overflows and evicts into relay-tier markers.
	uplink.SetAccepting(false)
	uplink.CutNow()
	drive(0)
	deadline := time.Now().Add(10 * time.Second)
	for rl.Stats().LossMarkers == 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("relay synthesized no uplink loss markers: %+v", rl.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	uplink.SetAccepting(true)

	// Phase B — leaf outages: the leaves' spill queues overflow and
	// evict into leaf-tier markers, which then transit the healed relay.
	for _, l := range leaves {
		l.proxy.SetAccepting(false)
		l.proxy.CutNow()
	}
	drive(1)
	for {
		var evicted uint64
		for _, l := range leaves {
			evicted += l.exs.Stats().Dropped
		}
		if evicted > 0 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("leaves evicted nothing despite the outage")
		}
		time.Sleep(time.Millisecond)
	}
	for _, l := range leaves {
		l.proxy.SetAccepting(true)
		l.exs.Flush()
	}

	// Drain: every leaf back online with an empty queue, then the relay's
	// uplink backlog gone.
	var produced, refused uint64
	produced = uint64(2 * nLeaves * phaseEvents)
	for _, l := range leaves {
		refused += l.sensor.Dropped()
	}
	for i, l := range leaves {
		for {
			st := l.exs.Stats()
			if st.Online && st.QueuedBytes == 0 {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("leaf %d never drained: %+v", i, st)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for rl.Stats().BacklogRecords > 0 {
		if !time.Now().Before(deadline) {
			t.Fatalf("relay uplink never drained: %+v", rl.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Account every record at the root.
	cur := root.NewCursor()
	type key struct {
		node  int32
		event uint8
		seq   int64
	}
	seen := map[key]bool{}
	var emitted, markerCovered, markers uint64
	floor := produced + refused
	for {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			t.Fatalf("root cursor lost %d records", lost)
		}
		if !ok {
			if emitted+markerCovered >= floor {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("drain stuck: emitted=%d covered=%d of %d", emitted, markerCovered, floor)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		rec, err := ism.DecodeBuffered(raw)
		if err != nil {
			t.Fatal(err)
		}
		if record.IsLossMarker(&rec) {
			cnt, first, last, _ := record.LossInfo(&rec)
			if first > last {
				t.Fatalf("marker range inverted: [%d, %d]", first, last)
			}
			now := time.Now().UnixMicro()
			if first < testStart-int64(time.Second/time.Microsecond) || last > now+int64(time.Second/time.Microsecond) {
				t.Fatalf("marker covers [%d, %d], outside the run's timestamp range [%d, %d]",
					first, last, testStart, now)
			}
			markerCovered += cnt
			markers++
			continue
		}
		k := key{node: rec.Node, event: rec.Event, seq: rec.Fields[1].Int()}
		if seen[k] {
			t.Fatalf("record %+v emitted twice", k)
		}
		seen[k] = true
		emitted++
	}

	// Marked totals across every tier.
	var exsMarked, exsEvicted uint64
	for _, l := range leaves {
		st := l.exs.Stats()
		exsMarked += st.MarkedLost
		exsEvicted += st.Dropped
	}
	rs := rl.Stats()
	rootStats := root.Stats()
	marked := exsMarked + rs.MarkedLost + rs.ISM.MarkedLost + rootStats.MarkedLost

	if rs.LossMarkers == 0 || rs.MarkedLost == 0 {
		t.Fatal("relay tier marked nothing — the two-tier property is vacuous")
	}
	if exsMarked == 0 || exsEvicted == 0 {
		t.Fatal("leaf tier marked nothing — the two-tier property is vacuous")
	}
	if markers == 0 {
		t.Fatal("no loss markers reached the root")
	}
	if emitted > produced {
		t.Fatalf("emitted %d > produced %d (records invented)", emitted, produced)
	}
	if emitted+markerCovered < floor {
		t.Fatalf("disappearance: emitted %d + covered %d < produced %d + refused %d",
			emitted, markerCovered, produced, refused)
	}
	// Evictions fold marker coverage back into the accumulator, so the
	// marked totals may legitimately over-count — but the output can
	// never cover more than the tiers marked.
	if markerCovered > marked {
		t.Fatalf("coverage invented: output covers %d, tiers marked %d (exs=%d relay=%d+%d root=%d)",
			markerCovered, marked, exsMarked, rs.MarkedLost, rs.ISM.MarkedLost, rootStats.MarkedLost)
	}
}
