package relay

import (
	"fmt"
	mrand "math/rand"
	"net"
	"testing"
	"time"

	"brisk/internal/faultnet"
	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/wire"
)

func quietLog(string, ...any) {}

// newRoot builds a root manager for relay tests: tiny sorter window so
// system-clock records age out fast, heartbeats off for quiet links.
func newRoot(t *testing.T, mut func(*ism.Config)) *ism.Manager {
	t.Helper()
	cfg := ism.Config{
		Addr:              "127.0.0.1:0",
		Sorter:            ols.Config{InitialT: 2000},
		MergeInterval:     time.Millisecond,
		HeartbeatInterval: -1,
		Logf:              quietLog,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := ism.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	return m
}

// testISM is the downstream sub-config relay tests hand to New.
func testISM() ism.Config {
	return ism.Config{
		Sorter:            ols.Config{InitialT: 2000},
		MergeInterval:     time.Millisecond,
		HeartbeatInterval: -1,
		Logf:              quietLog,
	}
}

// rawLeaf is a hand-driven sensor session attached to a relay.
type rawLeaf struct {
	t    *testing.T
	raw  net.Conn
	conn *wire.Conn
	node int32
	seq  uint64
}

// dialLeaf opens a raw wire session against addr. Sessions dialed
// serially get deterministic node ids.
func dialLeaf(t *testing.T, addr string, session uint64) *rawLeaf {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(raw)
	if err := wc.Send(&wire.Hello{Version: wire.ProtocolVersion, Name: "leaf", Session: session}); err != nil {
		t.Fatal(err)
	}
	msg, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.HelloAck)
	if !ok {
		t.Fatalf("expected HELLO_ACK, got %v", msg.Type())
	}
	return &rawLeaf{t: t, raw: raw, conn: wc, node: ack.Node}
}

// send ships one batch of records and returns its sequence number.
func (l *rawLeaf) send(recs ...record.Record) uint64 {
	l.t.Helper()
	var payload []byte
	var err error
	for i := range recs {
		payload, err = recs[i].Append(payload)
		if err != nil {
			l.t.Fatal(err)
		}
	}
	l.seq++
	if err := l.conn.Send(&wire.DataBatch{Seq: l.seq, Count: uint32(len(recs)), Payload: payload}); err != nil {
		l.t.Fatal(err)
	}
	return l.seq
}

// waitAck blocks until a DataAck with Seq ≥ seq arrives. Sync-master
// probes are answered from the tests' pinned skew-free clock (time 1);
// any other frame is skipped.
func (l *rawLeaf) waitAck(seq uint64) {
	l.t.Helper()
	for {
		msg, err := l.conn.Recv()
		if err != nil {
			l.t.Fatalf("waiting for ack %d: %v", seq, err)
		}
		switch f := msg.(type) {
		case *wire.DataAck:
			if f.Seq >= seq {
				return
			}
		case *wire.Probe:
			reply := &wire.ProbeReply{Seq: f.Seq, MasterSend: f.MasterSend, SlaveTime: 1}
			if err := l.conn.Send(reply); err != nil {
				l.t.Fatal(err)
			}
		}
	}
}

func (l *rawLeaf) close() {
	l.conn.Send(&wire.Bye{})
	l.raw.Close()
}

// drained is one record pulled off the root's merged output.
type drained struct {
	rec    record.Record
	marker bool
}

// drainRoot consumes the root cursor until want records (markers
// included) have arrived or the deadline passes.
func drainRoot(t *testing.T, m *ism.Manager, want int, deadline time.Duration) []drained {
	t.Helper()
	cur := m.NewCursor()
	limit := time.Now().Add(deadline)
	var out []drained
	for len(out) < want {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			t.Fatalf("root cursor lost %d records", lost)
		}
		if !ok {
			if !time.Now().Before(limit) {
				t.Fatalf("drained %d of %d records before deadline", len(out), want)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		rec, err := ism.DecodeBuffered(raw)
		if err != nil {
			t.Fatal(err)
		}
		rec.Detach()
		out = append(out, drained{rec: rec, marker: record.IsLossMarker(&rec)})
	}
	return out
}

// TestRelayForwardsAndRebases pushes two leaves' interleaved streams
// through one relay and checks the root sees every record exactly once,
// attributed to its NodeBase-rebased origin, in per-source FIFO order.
func TestRelayForwardsAndRebases(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	rl, err := New(Config{
		Addr:          "127.0.0.1:0",
		Parent:        root.Addr(),
		NodeBase:      500,
		ISM:           testISM(),
		FlushInterval: time.Millisecond,
		Logf:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	leaves := []*rawLeaf{dialLeaf(t, rl.Addr(), 0xA1), dialLeaf(t, rl.Addr(), 0xA2)}
	if leaves[0].node != 1 || leaves[1].node != 2 {
		t.Fatalf("serial connects got node ids %d,%d; want 1,2", leaves[0].node, leaves[1].node)
	}
	const perLeaf = 120
	for i := 0; i < perLeaf; i++ {
		for li, l := range leaves {
			ts := time.Now().UnixMicro()
			seq := l.send(record.New(uint8(10+li), record.TSVal(ts), record.I32Val(int32(i))))
			l.waitAck(seq)
		}
	}
	for _, l := range leaves {
		l.close()
	}

	out := drainRoot(t, root, 2*perLeaf, 10*time.Second)
	lastSeq := map[int32]int32{501: -1, 502: -1}
	for _, d := range out {
		if d.marker {
			t.Fatal("unexpected loss marker in a lossless run")
		}
		prev, known := lastSeq[d.rec.Node]
		if !known {
			t.Fatalf("record attributed to unexpected node %d", d.rec.Node)
		}
		seq := d.rec.Fields[1].Int()
		if int32(seq) <= prev {
			t.Fatalf("node %d: seq %d after %d — per-source FIFO broken", d.rec.Node, seq, prev)
		}
		lastSeq[d.rec.Node] = int32(seq)
	}
	for node, last := range lastSeq {
		if last != perLeaf-1 {
			t.Fatalf("node %d: last seq %d, want %d", node, last, perLeaf-1)
		}
	}
	st := rl.Stats()
	if st.Forwarded != 2*perLeaf || st.Shipped != 2*perLeaf || st.Dropped != 0 {
		t.Fatalf("relay stats forwarded=%d shipped=%d dropped=%d, want %d/%d/0",
			st.Forwarded, st.Shipped, st.Dropped, 2*perLeaf, 2*perLeaf)
	}
	if got := root.Stats().RelayBatches; got == 0 {
		t.Error("root counted no relay batches")
	}
}

// TestRelayBackpressureComposes stalls the uplink and checks the halt
// propagates DOWN: the unacknowledged uplink backlog counts toward the
// relay's ack-gate occupancy, so the relay defers its leaves' acks while
// the parent withholds its own — the PR 4 contract composed across
// tiers. After the stall heals, everything drains exactly once.
func TestRelayBackpressureComposes(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	proxy, err := faultnet.Listen(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	icfg := testISM()
	icfg.AckHighWater = 48
	icfg.AckLowWater = 24
	rl, err := New(Config{
		Addr:          "127.0.0.1:0",
		Parent:        proxy.Addr(),
		ISM:           icfg,
		FlushInterval: time.Millisecond,
		Logf:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	leaf := dialLeaf(t, rl.Addr(), 0xB1)
	acked := make(chan uint64, 1024)
	go func() {
		for {
			msg, err := leaf.conn.Recv()
			if err != nil {
				close(acked)
				return
			}
			if a, ok := msg.(*wire.DataAck); ok {
				acked <- a.Seq
			}
		}
	}()

	proxy.Stall(true)
	const batches, perBatch = 40, 5
	for b := 0; b < batches; b++ {
		recs := make([]record.Record, perBatch)
		for i := range recs {
			recs[i] = record.New(7, record.TSVal(time.Now().UnixMicro()),
				record.I32Val(int32(b*perBatch+i)))
		}
		leaf.send(recs...)
		time.Sleep(500 * time.Microsecond)
	}

	// The backlog (stalled uplink, no parent acks) must push the relay's
	// gate over AckHighWater and defer leaf acks.
	deadline := time.Now().Add(5 * time.Second)
	for rl.Stats().ISM.AckDeferred == 0 {
		if !time.Now().Before(deadline) {
			st := rl.Stats()
			t.Fatalf("relay never deferred leaf acks: backlog=%d ism=%+v", st.BacklogRecords, st.ISM)
		}
		time.Sleep(time.Millisecond)
	}
	if got := rl.Stats().BacklogRecords; got < 48 {
		t.Errorf("gate closed with backlog %d < high water 48", got)
	}

	proxy.Stall(false)
	var last uint64
	for seq := range acked {
		if seq > last {
			last = seq
		}
		if last == uint64(batches) {
			break
		}
	}
	if last != uint64(batches) {
		t.Fatalf("final leaf ack %d, want %d", last, batches)
	}
	leaf.close()

	out := drainRoot(t, root, batches*perBatch, 10*time.Second)
	seen := map[int64]bool{}
	for _, d := range out {
		if d.marker {
			t.Fatal("loss marker in a stall-only run (nothing may be dropped)")
		}
		k := d.rec.Fields[1].Int()
		if seen[k] {
			t.Fatalf("record %d emitted twice", k)
		}
		seen[k] = true
	}
	if st := rl.Stats(); st.CreditStalls+st.ISM.AckDeferred == 0 {
		t.Error("no backpressure observed at all")
	}
}

// TestRelayReconnectResume cuts the uplink mid-stream: the relay must
// redial, resume its session, and replay unacknowledged batches with the
// root deduplicating — every record exactly once, none lost.
func TestRelayReconnectResume(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	proxy, err := faultnet.Listen(root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rl, err := New(Config{
		Addr:                 "127.0.0.1:0",
		Parent:               proxy.Addr(),
		ISM:                  testISM(),
		FlushInterval:        time.Millisecond,
		ReconnectBase:        2 * time.Millisecond,
		ReconnectMax:         20 * time.Millisecond,
		MaxReconnectAttempts: -1,
		Logf:                 quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	leaf := dialLeaf(t, rl.Addr(), 0xC1)
	const total = 400
	for i := 0; i < total; i++ {
		seq := leaf.send(record.New(9, record.TSVal(time.Now().UnixMicro()), record.I32Val(int32(i))))
		leaf.waitAck(seq)
		if i == total/3 {
			proxy.CutNow()
		}
		if i == 2*total/3 {
			proxy.CutNow()
		}
	}
	leaf.close()

	out := drainRoot(t, root, total, 15*time.Second)
	seen := map[int64]bool{}
	for _, d := range out {
		if d.marker {
			t.Fatal("loss marker after cut+resume (resume must be lossless)")
		}
		k := d.rec.Fields[1].Int()
		if seen[k] {
			t.Fatalf("record %d emitted twice after resume", k)
		}
		seen[k] = true
	}
	if st := rl.Stats(); st.Reconnects < 1 {
		t.Fatalf("relay never reconnected (stats %+v)", st)
	}
	if rs := root.Stats().ResumedSessions; rs < 1 {
		t.Error("root recorded no resumed sessions")
	}
}

// TestRelayCloseFlushesTail checks shutdown ordering: records still
// buffered in the relay's sorter at Close must flush downstream-first
// through the uplink before the link closes — nothing acked to a leaf
// may vanish.
func TestRelayCloseFlushesTail(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	// A wide relay sorter window parks everything in the relay's sorter
	// so only Close's ordered flush can deliver it.
	icfg := testISM()
	icfg.Sorter = ols.Config{InitialT: 60_000_000}
	rl, err := New(Config{
		Addr:          "127.0.0.1:0",
		Parent:        root.Addr(),
		ISM:           icfg,
		FlushInterval: time.Millisecond,
		Logf:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}

	leaf := dialLeaf(t, rl.Addr(), 0xD1)
	const total = 64
	for i := 0; i < total; i++ {
		seq := leaf.send(record.New(3, record.TSVal(time.Now().UnixMicro()), record.I32Val(int32(i))))
		leaf.waitAck(seq)
	}
	leaf.close()
	if err := rl.Close(); err != nil {
		t.Fatalf("relay close: %v", err)
	}
	if st := rl.Stats(); st.Dropped != 0 || st.Forwarded != total {
		t.Fatalf("close dropped acked records: %+v", st)
	}
	out := drainRoot(t, root, total, 10*time.Second)
	for i, d := range out {
		if d.marker {
			t.Fatalf("record %d is a loss marker", i)
		}
	}
}

// TestRelayConfigValidation covers the constructor's error paths.
func TestRelayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Addr: "127.0.0.1:0", Parent: "127.0.0.1:1",
		DialTimeout: 50 * time.Millisecond, ISM: testISM(), Logf: quietLog}); err == nil {
		t.Error("unreachable parent accepted")
	}
}

// TestTallyPrefixed checks the eviction tally folds nested markers
// instead of counting them as single records.
func TestTallyPrefixed(t *testing.T) {
	var payload []byte
	var err error
	add := func(rec record.Record) {
		payload = append(payload, 0, 0, 0, 9)
		payload, err = rec.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	add(record.New(1, record.TSVal(100), record.I32Val(1)))
	add(record.New(1, record.TSVal(700), record.I32Val(2)))
	add(record.NewLossMarker(5, 40, 90))
	count, first, last := tallyPrefixed(payload)
	if count != 7 {
		t.Fatalf("tally count %d, want 7 (2 data + 5 marker-covered)", count)
	}
	if first != 40 || last != 700 {
		t.Fatalf("tally range [%d,%d], want [40,700]", first, last)
	}
	if c, f, l := tallyPrefixed(nil); c != 0 || f != 0 || l != 0 {
		t.Fatalf("empty tally = (%d,%d,%d)", c, f, l)
	}
}

// TestBackoffDelayBounds pins the retry schedule's envelope.
func TestBackoffDelayBounds(t *testing.T) {
	r := &Relay{cfg: Config{ReconnectBase: 10 * time.Millisecond, ReconnectMax: 80 * time.Millisecond}}
	r.jitterRand = mrand.New(mrand.NewSource(1)).Float64
	for attempt := 0; attempt < 10; attempt++ {
		d := r.backoffDelay(attempt)
		if d < time.Millisecond || d > time.Duration(1.2*float64(80*time.Millisecond)) {
			t.Fatalf("attempt %d: delay %v outside envelope", attempt, d)
		}
	}
}

// Stats stringer smoke so failures print usefully.
func TestStatsSnapshot(t *testing.T) {
	root := newRoot(t, nil)
	defer root.Close()
	rl, err := New(Config{Addr: "127.0.0.1:0", Parent: root.Addr(), ISM: testISM(), Logf: quietLog})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	st := rl.Stats()
	if !st.Online || st.Session == 0 {
		t.Fatalf("fresh relay not online: %s", fmt.Sprintf("%+v", st))
	}
	if st.CreditWindow == 0 {
		t.Errorf("credit window %d: 0 is neither a grant nor the -1 no-flow-control marker", st.CreditWindow)
	}
}
