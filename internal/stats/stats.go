// Package stats provides the small statistics toolkit used by BRISK's
// evaluation harness and runtime counters: streaming moments, bounded
// reservoirs with percentiles, and logarithmic latency histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates streaming count/mean/variance/min/max using
// Welford's algorithm. The zero value is ready to use.
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (n-1 denominator).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or 0 with none.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with none.
func (r *Running) Max() float64 { return r.max }

// String summarizes the distribution.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g max=%.3g",
		r.n, r.Mean(), r.Std(), r.min, r.max)
}

// Reservoir keeps up to a fixed number of observations for exact
// percentile queries; past capacity it keeps a uniform random sample via
// reservoir sampling with a deterministic linear-congruential stream so
// experiments reproduce bit-for-bit.
type Reservoir struct {
	cap   int
	seen  uint64
	vals  []float64
	state uint64
}

// NewReservoir returns a reservoir holding up to capacity samples.
func NewReservoir(capacity int) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, state: 0x9E3779B97F4A7C15}
}

func (r *Reservoir) next() uint64 {
	// xorshift64*: deterministic, fast, good enough for sampling.
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Add records one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, x)
		return
	}
	if j := r.next() % r.seen; j < uint64(r.cap) {
		r.vals[j] = x
	}
}

// N returns the total number of observations offered.
func (r *Reservoir) N() uint64 { return r.seen }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the retained sample,
// or 0 when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	s := append([]float64(nil), r.vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func (r *Reservoir) Median() float64 { return r.Quantile(0.5) }

// LogBuckets is the number of buckets in a logarithmic histogram.
const LogBuckets = 64

// LogBucketIndex returns the logarithmic-histogram bucket for a
// non-negative value: bucket i covers [2^i, 2^(i+1)), with bucket 0
// covering [0, 2). Negative values clamp to bucket 0.
func LogBucketIndex(v float64) int {
	i := 0
	if v > 0 {
		for x := uint64(v); x > 1 && i < LogBuckets-1; x >>= 1 {
			i++
		}
	}
	return i
}

// LogBucketUpper returns the exclusive upper edge of logarithmic bucket i,
// i.e. 2^(i+1).
func LogBucketUpper(i int) float64 {
	if i >= LogBuckets-1 {
		return math.Ldexp(1, LogBuckets)
	}
	return float64(uint64(1) << uint(i+1))
}

// LogBucketQuantile returns an upper bound on the q-th quantile of n
// observations spread over logarithmic buckets, using bucket upper edges.
// It returns 0 when n is 0.
func LogBucketQuantile(buckets []uint64, n uint64, q float64) float64 {
	if n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			return LogBucketUpper(i)
		}
	}
	return LogBucketUpper(LogBuckets - 1)
}

// Hist is a logarithmic histogram for non-negative microsecond latencies:
// bucket i covers [2^i, 2^(i+1)) µs, with bucket 0 covering [0, 2).
type Hist struct {
	buckets [LogBuckets]uint64
	n       uint64
	sum     float64
}

// Add records one non-negative observation; negative values clamp to 0.
func (h *Hist) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += v
	h.buckets[LogBucketIndex(v)]++
}

// N returns the observation count.
func (h *Hist) N() uint64 { return h.n }

// Mean returns the mean of all observations.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound on the q-th quantile using bucket upper
// edges.
func (h *Hist) Quantile(q float64) float64 {
	return LogBucketQuantile(h.buckets[:], h.n, q)
}

// String renders the non-empty buckets.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f", h.n, h.Mean())
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, " [<%d]=%d", uint64(1)<<uint(i+1), c)
	}
	return b.String()
}
