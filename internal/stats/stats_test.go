package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if !strings.Contains(r.String(), "n=8") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestRunningSingleAndNegative(t *testing.T) {
	var r Running
	r.Add(-3)
	if r.Mean() != -3 || r.Min() != -3 || r.Max() != -3 || r.Var() != 0 {
		t.Fatalf("single obs: %v", r.String())
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, v := range clean {
			r.Add(v)
			sum += v
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, v := range clean {
			ss += (v - mean) * (v - mean)
		}
		wantVar := ss / float64(len(clean)-1)
		return math.Abs(r.Mean()-mean) < 1e-6 && math.Abs(r.Var()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(100)
	for i := 1; i <= 99; i++ {
		r.Add(float64(i))
	}
	if r.Median() != 50 {
		t.Fatalf("median = %v, want 50", r.Median())
	}
	if r.Quantile(0) != 1 || r.Quantile(1) != 99 {
		t.Fatalf("extremes = %v, %v", r.Quantile(0), r.Quantile(1))
	}
	if got := r.Quantile(0.25); math.Abs(got-25.5) > 0.5 {
		t.Fatalf("q25 = %v", got)
	}
	if r.N() != 99 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10)
	if r.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestReservoirSamplingStaysInRange(t *testing.T) {
	r := NewReservoir(64)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i % 1000))
	}
	med := r.Median()
	// The median of uniform 0..999 should be near 500 even when sampled.
	if med < 300 || med > 700 {
		t.Fatalf("sampled median drifted: %v", med)
	}
	if len(r.vals) != 64 {
		t.Fatalf("reservoir grew: %d", len(r.vals))
	}
}

func TestReservoirDeterministic(t *testing.T) {
	r1 := NewReservoir(16)
	r2 := NewReservoir(16)
	for i := 0; i < 10000; i++ {
		r1.Add(float64(i))
		r2.Add(float64(i))
	}
	if r1.Median() != r2.Median() {
		t.Fatal("reservoir sampling not deterministic")
	}
}

func TestReservoirMinCapacity(t *testing.T) {
	r := NewReservoir(0)
	r.Add(5)
	if r.Quantile(0.5) != 5 {
		t.Fatal("capacity clamp broken")
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Add(1) // bucket [0,2)
	}
	h.Add(1000) // bucket [512,1024) upper edge 1024
	if h.N() != 101 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("q50 = %v, want 2", q)
	}
	if q := h.Quantile(1.0); q != 1024 {
		t.Fatalf("q100 = %v, want 1024", q)
	}
	if math.Abs(h.Mean()-(100+1000)/101.0) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "n=101") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistNegativeClamp(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Quantile(1.0) != 2 {
		t.Fatal("negative value should land in the first bucket")
	}
}

func TestHistEmptyQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.9) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist should report zeros")
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Add(float64(i * 37 % 5000))
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
