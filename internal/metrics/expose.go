package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"

	"brisk/internal/stats"
)

// escapeLabelValue escapes a label value for the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string for the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeLabels renders {k="v",...}; extra, when non-empty, is appended as a
// pre-rendered last pair (the histogram le label).
func writeLabels(w *bufio.Writer, ls Labels, extra string) {
	if len(ls) == 0 && extra == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteByte('"')
	}
	if extra != "" {
		if len(ls) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extra)
	}
	w.WriteByte('}')
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// histograms as cumulative le-labeled buckets plus _sum and _count.
// Families are sorted by name and series by label set, so output is
// deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, s := range f.Series {
			if f.Kind == KindHistogram && s.Hist != nil {
				writeHistSeries(bw, f.Name, s)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistSeries renders one histogram series in Prometheus layout.
func writeHistSeries(bw *bufio.Writer, name string, s SeriesSnapshot) {
	var cum uint64
	for i, c := range s.Hist.Buckets {
		cum += c
		le := `le="` + formatValue(stats.LogBucketUpper(i)) + `"`
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, le)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.Labels, `le="+Inf"`)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.Hist.Sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	bw.WriteByte('\n')
}

// jsonSeries is the JSON rendering of one series.
type jsonSeries struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Buckets []uint64          `json:"buckets,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
}

// jsonFamily is the JSON rendering of one family.
type jsonFamily struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Help   string       `json:"help,omitempty"`
	Unit   string       `json:"unit,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders every registered metric as an indented JSON array of
// families, for tooling that prefers structure over the text format.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	out := make([]jsonFamily, 0, len(snap))
	for _, f := range snap {
		jf := jsonFamily{Name: f.Name, Kind: f.Kind.String(), Help: f.Help, Unit: f.Unit}
		for _, s := range f.Series {
			js := jsonSeries{}
			if len(s.Labels) > 0 {
				js.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					js.Labels[l.Key] = l.Value
				}
			}
			if s.Hist != nil {
				js.Buckets = s.Hist.Buckets
				count, sum := s.Hist.Count, s.Hist.Sum
				js.Count, js.Sum = &count, &sum
			} else {
				v := s.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
