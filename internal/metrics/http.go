package metrics

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text format; with ?format=json (or an Accept header preferring
// application/json) it serves the JSON rendering instead.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// NewMux builds the introspection mux served by Serve:
//
//   - /metrics — the registry (Prometheus text, or JSON via ?format=json)
//   - /healthz — 200 "ok" while healthy (or healthy == nil), 503 with the
//     error text otherwise
//   - /debug/pprof/ — the standard runtime profiles
func NewMux(r *Registry, healthy func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint. Create with Serve, stop with
// Close.
type Server struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
}

// CloseGrace is how long Close waits for in-flight requests (a /metrics
// scrape mid-body, a pprof profile, a streaming subscriber draining its
// last batch) before force-closing their connections.
const CloseGrace = time.Second

// Serve binds addr (host:port, port 0 for ephemeral) and serves the
// introspection mux for reg on it. healthy, when non-nil, backs /healthz.
func Serve(addr string, reg *Registry, healthy func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := NewMux(reg, healthy)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, mux: mux, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers an extra handler on the introspection mux — how the
// subscription API (/subscribe, /query, /topk) mounts next to /metrics.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Close stops the server gracefully: the listener closes immediately,
// in-flight requests get up to CloseGrace to finish their bodies (so a
// scrape racing Close still reads a complete exposition and a streaming
// subscriber sees a clean EOF rather than a mid-body reset), and
// whatever is still running after the grace is force-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		// Still-running handlers (a hung client, an endless stream) have
		// had their chance; sever them.
		return s.srv.Close()
	}
	return err
}
