package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text format; with ?format=json (or an Accept header preferring
// application/json) it serves the JSON rendering instead.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// NewMux builds the introspection mux served by Serve:
//
//   - /metrics — the registry (Prometheus text, or JSON via ?format=json)
//   - /healthz — 200 "ok" while healthy (or healthy == nil), 503 with the
//     error text otherwise
//   - /debug/pprof/ — the standard runtime profiles
func NewMux(r *Registry, healthy func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint. Create with Serve, stop with
// Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port, port 0 for ephemeral) and serves the
// introspection mux for reg on it. healthy, when non-nil, backs /healthz.
func Serve(addr string, reg *Registry, healthy func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewMux(reg, healthy),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
