// Package metrics is BRISK's self-instrumentation substrate: a
// dependency-free registry of atomic counters, gauges and log-bucketed
// histograms with Prometheus-style text exposition, JSON rendering, and an
// opt-in HTTP introspection endpoint.
//
// The instrumentation system measures the target system; this package
// makes the instrumentation system measure itself, the way the paper's
// evaluation does by hand: perturbation per notice, OLS window adaptation,
// tachyon repair rates, drop counts at every bound. Every pipeline stage
// registers its counters here, and the per-package Stats snapshot structs
// become typed views over the registry.
//
// # Model
//
// A Registry holds metric families keyed by name; each family holds one or
// more series distinguished by constant labels. Three live kinds exist —
// Counter (monotone), Gauge (instantaneous) and Histogram (log-bucketed
// distribution, sharing the bucket math of internal/stats) — plus
// func-backed counters and gauges that read state maintained elsewhere
// (heap depths, session-table sizes, ring drop counts) at snapshot time.
//
// Registration is idempotent: re-registering the same name+labels returns
// the existing metric, so a reconnecting session can reclaim its series.
// Snapshot, and the renderers built on it, never hold the registry lock
// while evaluating func-backed metrics, so those callbacks may take
// arbitrary component locks without ordering concerns.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"brisk/internal/stats"
)

// Kind discriminates the metric kinds of a family.
type Kind int

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that can move both ways.
	KindGauge
	// KindHistogram is a log-bucketed distribution of observations.
	KindHistogram
)

// String names the kind in Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one constant name/value pair attached to a series.
type Label struct {
	// Key is the label name ([a-zA-Z_][a-zA-Z0-9_]*).
	Key string
	// Value is the label value (any UTF-8 string; escaped on exposition).
	Value string
}

// Labels is an ordered list of labels. Order is normalized (sorted by key)
// when a series is registered, so {a,b} and {b,a} address the same series.
type Labels []Label

// L is shorthand for building a Labels list from alternating key, value
// strings: L("node", "3", "session", "f00d").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics: L requires an even number of arguments")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// key renders the normalized series key used for lookup.
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// normalized returns a sorted copy of the labels.
func (ls Labels) normalized() Labels {
	if len(ls) == 0 {
		return nil
	}
	cp := append(Labels(nil), ls...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	return cp
}

// Desc describes one series being registered.
type Desc struct {
	// Name is the family name ([a-zA-Z_:][a-zA-Z0-9_:]*). By convention
	// counters end in _total and unit-carrying names embed the unit
	// (…_bytes, …_microseconds).
	Name string
	// Help is the one-line family description emitted as # HELP.
	Help string
	// Unit names the unit of the value ("records", "bytes",
	// "microseconds"); informational, carried into the JSON rendering.
	Unit string
	// Labels are the constant labels of this series; nil for the bare
	// series of the family.
	Labels Labels
}

// Counter is a monotone cumulative counter. The zero value is usable, but
// counters are normally created through Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a concurrency-safe logarithmic histogram of non-negative
// integer observations (µs, bytes, …): bucket i covers [2^i, 2^(i+1))
// with bucket 0 covering [0, 2) — the same bucket layout as stats.Hist,
// whose math it reuses.
type Histogram struct {
	buckets [stats.LogBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one observation; negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[stats.LogBucketIndex(float64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Buckets holds per-bucket counts, trimmed after the last non-empty
	// bucket; Buckets[i] covers [2^i, 2^(i+1)).
	Buckets []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observations.
	Sum float64
}

// Snapshot copies the histogram. Concurrent Observe calls may or may not
// be included; the copy is internally consistent enough for monitoring
// (bucket totals may briefly lag Count by in-flight observations).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = float64(h.sum.Load())
	last := -1
	var buckets [stats.LogBuckets]uint64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]uint64(nil), buckets[:last+1]...)
	return s
}

// Mean returns the mean observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper bound on the q-th quantile using bucket upper
// edges (see stats.LogBucketQuantile).
func (s HistSnapshot) Quantile(q float64) float64 {
	return stats.LogBucketQuantile(s.Buckets, s.Count, q)
}

// series is one registered time series.
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	unit   string
	kind   Kind
	series map[string]*series
}

// Registry holds metric families. Create with NewRegistry; the zero value
// is not usable.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s is a legal metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal label name.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register finds or creates the series for d under the registry lock and
// runs init on it while still holding the lock. It panics on invalid
// names or on a kind conflict with an existing family — both programmer
// errors caught at wiring time.
func (r *Registry) register(d Desc, kind Kind, init func(*series)) {
	if !validName(d.Name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", d.Name))
	}
	labels := d.Labels.normalized()
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Key, d.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[d.Name]
	if !ok {
		f = &family{name: d.Name, help: d.Help, unit: d.Unit, kind: kind,
			series: make(map[string]*series)}
		r.families[d.Name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v",
			d.Name, f.kind, kind))
	}
	key := labels.key()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		f.series[key] = s
	}
	init(s)
}

// Counter registers (or returns the existing) counter series for d.
func (r *Registry) Counter(d Desc) *Counter {
	var c *Counter
	r.register(d, KindCounter, func(s *series) {
		if s.counter == nil && s.cfn == nil {
			s.counter = &Counter{}
		}
		if s.counter == nil {
			panic(fmt.Sprintf("metrics: %s{%s} registered as a func counter", d.Name, d.Labels.key()))
		}
		c = s.counter
	})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// snapshot time. fn must be monotone non-decreasing and safe to call from
// any goroutine; it is never called with the registry lock held, so it may
// take component locks freely. Re-registering replaces the function.
func (r *Registry) CounterFunc(d Desc, fn func() uint64) {
	r.register(d, KindCounter, func(s *series) {
		if s.counter != nil {
			panic(fmt.Sprintf("metrics: %s{%s} registered as a live counter", d.Name, d.Labels.key()))
		}
		s.cfn = fn
	})
}

// Gauge registers (or returns the existing) gauge series for d.
func (r *Registry) Gauge(d Desc) *Gauge {
	var g *Gauge
	r.register(d, KindGauge, func(s *series) {
		if s.gauge == nil && s.gfn == nil {
			s.gauge = &Gauge{}
		}
		if s.gauge == nil {
			panic(fmt.Sprintf("metrics: %s{%s} registered as a func gauge", d.Name, d.Labels.key()))
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// snapshot time, under the same locking freedom as CounterFunc.
// Re-registering replaces the function.
func (r *Registry) GaugeFunc(d Desc, fn func() float64) {
	r.register(d, KindGauge, func(s *series) {
		if s.gauge != nil {
			panic(fmt.Sprintf("metrics: %s{%s} registered as a live gauge", d.Name, d.Labels.key()))
		}
		s.gfn = fn
	})
}

// Histogram registers (or returns the existing) histogram series for d.
func (r *Registry) Histogram(d Desc) *Histogram {
	var h *Histogram
	r.register(d, KindHistogram, func(s *series) {
		if s.hist == nil {
			s.hist = &Histogram{}
		}
		h = s.hist
	})
	return h
}

// Unregister removes the series with the given name and labels, and its
// family once empty. It reports whether a series was removed. Used when a
// labeled entity (a resumable session, say) is permanently retired.
func (r *Registry) Unregister(name string, labels Labels) bool {
	key := labels.normalized().key()
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return false
	}
	if _, ok := f.series[key]; !ok {
		return false
	}
	delete(f.series, key)
	if len(f.series) == 0 {
		delete(r.families, name)
	}
	return true
}

// SeriesSnapshot is one series' point-in-time state.
type SeriesSnapshot struct {
	// Labels are the series' constant labels (normalized order).
	Labels Labels
	// Value is the counter or gauge value; 0 for histograms.
	Value float64
	// Hist is set for histogram series.
	Hist *HistSnapshot
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	// Name, Help, Unit and Kind echo the registration Desc.
	Name, Help, Unit string
	// Kind is the family's metric kind.
	Kind Kind
	// Series lists every series of the family, sorted by label key.
	Series []SeriesSnapshot
}

// Snapshot captures every registered metric, families sorted by name and
// series by label set. Func-backed metrics are evaluated after the
// registry lock is released, so their callbacks may take component locks.
func (r *Registry) Snapshot() []FamilySnapshot {
	type pending struct {
		fam int
		ser *series
	}
	r.mu.RLock()
	out := make([]FamilySnapshot, 0, len(r.families))
	var refs []pending
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Unit: f.unit, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			refs = append(refs, pending{fam: len(out), ser: f.series[k]})
			fs.Series = append(fs.Series, SeriesSnapshot{})
		}
		out = append(out, fs)
	}
	r.mu.RUnlock()

	// Evaluate outside the lock; refs are appended in series order per
	// family, so a per-family cursor maps them back.
	cursor := make([]int, len(out))
	for _, p := range refs {
		ss := &out[p.fam].Series[cursor[p.fam]]
		cursor[p.fam]++
		ss.Labels = p.ser.labels
		switch {
		case p.ser.counter != nil:
			ss.Value = float64(p.ser.counter.Value())
		case p.ser.cfn != nil:
			ss.Value = float64(p.ser.cfn())
		case p.ser.gauge != nil:
			ss.Value = float64(p.ser.gauge.Value())
		case p.ser.gfn != nil:
			ss.Value = p.ser.gfn()
		case p.ser.hist != nil:
			h := p.ser.hist.Snapshot()
			ss.Hist = &h
		}
	}
	return out
}
