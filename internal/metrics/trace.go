package metrics

import "sync/atomic"

// StageTracer is the lightweight pipeline trace hook: each stage of the
// instrumentation pipeline (ring → EXS → wire → queue → sorter → sink)
// observes the age of a sampled record — the record's synchronized
// timestamp subtracted from the local clock — into a per-stage histogram.
// The difference between successive stage distributions is the dwell time
// in the stage between them, so one cheap probe per stage reconstructs
// where pipeline latency accumulates without changing the record format.
//
// Sampling is per stage (every Nth eligible record), so a stage that sees
// batches and a stage that sees single records stay independently paced.
type StageTracer struct {
	every  uint64
	stages []tracerStage
}

// tracerStage pairs one stage's sampling counter with its histogram.
type tracerStage struct {
	n    atomic.Uint64
	hist *Histogram
}

// NewStageTracer registers one histogram series per stage name under the
// given family name, labeled stage=<name>, and returns the tracer.
// sampleEvery is the per-stage sampling period; values below 1 mean every
// record. help documents the family.
func NewStageTracer(reg *Registry, name, help string, sampleEvery int, stageNames ...string) *StageTracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &StageTracer{every: uint64(sampleEvery), stages: make([]tracerStage, len(stageNames))}
	for i, sn := range stageNames {
		t.stages[i].hist = reg.Histogram(Desc{
			Name:   name,
			Help:   help,
			Unit:   "microseconds",
			Labels: L("stage", sn),
		})
	}
	return t
}

// ShouldSample advances stage's sampling counter and reports whether the
// caller should measure this record (true once per sampling period). Using
// it lets a stage skip the cost of computing the record's age — decoding a
// timestamp out of an encoded batch, say — for unsampled records.
func (t *StageTracer) ShouldSample(stage int) bool {
	return t.stages[stage].n.Add(1)%t.every == 1 || t.every == 1
}

// Observe records one sampled record's age at the stage, in µs. Negative
// ages (a record stamped ahead of the observing clock) clamp to 0.
func (t *StageTracer) Observe(stage int, ageMicros int64) {
	t.stages[stage].hist.Observe(ageMicros)
}
