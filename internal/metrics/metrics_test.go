package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration, increments, observations, unregistration and snapshots all
// interleaved — and checks the final counts. Run under -race.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	shared := reg.Counter(Desc{Name: "shared_total", Help: "shared counter"})
	hist := reg.Histogram(Desc{Name: "lat_microseconds", Help: "latencies"})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := reg.Counter(Desc{Name: "per_worker_total", Labels: L("worker", fmt.Sprint(w))})
			g := reg.Gauge(Desc{Name: "worker_gauge", Labels: L("worker", fmt.Sprint(w))})
			for i := 0; i < perW; i++ {
				shared.Inc()
				mine.Inc()
				g.Set(int64(i))
				hist.Observe(int64(i % 4096))
				if i%500 == 0 {
					// Idempotent re-registration must return the same cell.
					if again := reg.Counter(Desc{Name: "per_worker_total",
						Labels: L("worker", fmt.Sprint(w))}); again != mine {
						t.Error("re-registration returned a different counter")
						return
					}
				}
				if i%700 == 0 {
					reg.Snapshot()
				}
			}
		}(w)
	}
	// A scraper running concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := shared.Value(); got != workers*perW {
		t.Fatalf("shared counter = %d, want %d", got, workers*perW)
	}
	hs := hist.Snapshot()
	if hs.Count != workers*perW {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*perW)
	}
	for w := 0; w < workers; w++ {
		if !reg.Unregister("per_worker_total", L("worker", fmt.Sprint(w))) {
			t.Fatalf("worker %d series missing at unregister", w)
		}
	}
	for _, f := range reg.Snapshot() {
		if f.Name == "per_worker_total" {
			t.Fatal("family survived unregistering every series")
		}
	}
}

// TestPrometheusExposition is the exposition-format golden test: a fixed
// registry must render byte-for-byte deterministically.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(Desc{Name: "brisk_test_records_total",
		Help: "records through the test pipeline", Unit: "records"})
	c.Add(42)
	reg.Counter(Desc{Name: "brisk_test_session_batches_total",
		Help: "per-session batches", Labels: L("session", "f00d", "node", "1")}).Add(7)
	reg.Counter(Desc{Name: "brisk_test_session_batches_total",
		Labels: L("node", "2", "session", "beef")}).Add(3)
	g := reg.Gauge(Desc{Name: "brisk_test_window_t_microseconds",
		Help: "sorter window", Unit: "microseconds"})
	g.Set(1500)
	reg.GaugeFunc(Desc{Name: "brisk_test_heap_depth", Help: "buffered records"},
		func() float64 { return 12 })
	h := reg.Histogram(Desc{Name: "brisk_test_latency_microseconds", Help: "emit latency"})
	for _, v := range []int64{0, 1, 3, 5, 100} {
		h.Observe(v)
	}
	reg.Counter(Desc{Name: "brisk_test_escaped_total",
		Labels: L("name", "a\"b\\c\nd")}).Inc()

	const want = `# TYPE brisk_test_escaped_total counter
brisk_test_escaped_total{name="a\"b\\c\nd"} 1
# HELP brisk_test_heap_depth buffered records
# TYPE brisk_test_heap_depth gauge
brisk_test_heap_depth 12
# HELP brisk_test_latency_microseconds emit latency
# TYPE brisk_test_latency_microseconds histogram
brisk_test_latency_microseconds_bucket{le="2"} 2
brisk_test_latency_microseconds_bucket{le="4"} 3
brisk_test_latency_microseconds_bucket{le="8"} 4
brisk_test_latency_microseconds_bucket{le="16"} 4
brisk_test_latency_microseconds_bucket{le="32"} 4
brisk_test_latency_microseconds_bucket{le="64"} 4
brisk_test_latency_microseconds_bucket{le="128"} 5
brisk_test_latency_microseconds_bucket{le="+Inf"} 5
brisk_test_latency_microseconds_sum 109
brisk_test_latency_microseconds_count 5
# HELP brisk_test_records_total records through the test pipeline
# TYPE brisk_test_records_total counter
brisk_test_records_total 42
# HELP brisk_test_session_batches_total per-session batches
# TYPE brisk_test_session_batches_total counter
brisk_test_session_batches_total{node="1",session="f00d"} 7
brisk_test_session_batches_total{node="2",session="beef"} 3
# HELP brisk_test_window_t_microseconds sorter window
# TYPE brisk_test_window_t_microseconds gauge
brisk_test_window_t_microseconds 1500
`
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramEmptyExposition checks the degenerate empty histogram.
func TestHistogramEmptyExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(Desc{Name: "empty_hist"})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE empty_hist histogram\n" +
		"empty_hist_bucket{le=\"+Inf\"} 0\n" +
		"empty_hist_sum 0\n" +
		"empty_hist_count 0\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestJSONRendering checks the JSON form round-trips through encoding/json
// and carries labels, values and histogram buckets.
func TestJSONRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Desc{Name: "a_total", Help: "h", Unit: "records",
		Labels: L("k", "v")}).Add(5)
	h := reg.Histogram(Desc{Name: "b_microseconds"})
	h.Observe(3)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Kind   string `json:"kind"`
		Unit   string `json:"unit"`
		Series []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Buckets []uint64          `json:"buckets"`
			Count   *uint64           `json:"count"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &fams); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if fams[0].Name != "a_total" || fams[0].Kind != "counter" || fams[0].Unit != "records" {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	if *fams[0].Series[0].Value != 5 || fams[0].Series[0].Labels["k"] != "v" {
		t.Fatalf("series 0 = %+v", fams[0].Series[0])
	}
	if *fams[1].Series[0].Count != 1 || len(fams[1].Series[0].Buckets) != 2 {
		t.Fatalf("histogram series = %+v", fams[1].Series[0])
	}
}

// TestHistogramQuantile checks the snapshot summary math against the
// shared stats bucket bounds.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean(); got != 499.5 {
		t.Fatalf("mean = %v", got)
	}
	// 999 lives in [512,1024); the q=1 upper bound is 1024.
	if got := s.Quantile(1); got != 1024 {
		t.Fatalf("q100 = %v, want 1024", got)
	}
	if got := s.Quantile(0.5); got > 1024 || got < 256 {
		t.Fatalf("q50 = %v out of plausible range", got)
	}
	h.Observe(-5)                                 // clamps to bucket 0
	if got := h.Snapshot().Buckets[0]; got != 3 { // 0, 1, -5
		t.Fatalf("bucket0 = %d, want 3", got)
	}
}

// TestStageTracer checks per-stage sampling pacing and histogram routing.
func TestStageTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewStageTracer(reg, "stage_age_microseconds", "pipeline ages", 4,
		"drain", "sink")
	sampled := 0
	for i := 0; i < 16; i++ {
		if tr.ShouldSample(0) {
			sampled++
			tr.Observe(0, int64(i))
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at every=4", sampled)
	}
	tr.Observe(1, 7)
	snap := reg.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	if snap[0].Series[0].Hist.Count != 4 || snap[0].Series[1].Hist.Count != 1 {
		t.Fatalf("per-stage counts: %d, %d",
			snap[0].Series[0].Hist.Count, snap[0].Series[1].Hist.Count)
	}
	every1 := NewStageTracer(reg, "all_age_microseconds", "", 0, "s")
	n := 0
	for i := 0; i < 5; i++ {
		if every1.ShouldSample(0) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("every=1 sampled %d of 5", n)
	}
}

// TestServe spins up the introspection endpoint and exercises /metrics
// (both formats) and /healthz.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Desc{Name: "up_total"}).Inc()
	var unhealthy atomic.Bool
	srv, err := Serve("127.0.0.1:0", reg, func() error {
		if unhealthy.Load() {
			return fmt.Errorf("merge loop wedged")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"up_total"`) {
		t.Fatalf("/metrics json: %d\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	unhealthy.Store(true)
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "wedged") {
		t.Fatalf("unhealthy /healthz: %d %s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// TestKindConflictPanics pins the misuse diagnostics.
func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Desc{Name: "x_total"})
	mustPanic(t, func() { reg.Gauge(Desc{Name: "x_total"}) })
	mustPanic(t, func() { reg.CounterFunc(Desc{Name: "x_total"}, func() uint64 { return 0 }) })
	mustPanic(t, func() { reg.Counter(Desc{Name: "bad name"}) })
	mustPanic(t, func() { reg.Counter(Desc{Name: "ok_total", Labels: L("bad key", "v")}) })
	mustPanic(t, func() { L("odd") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
