package metrics

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestCloseWaitsForInFlightScrape is the regression test for the
// hard-abort shutdown bug: Close used to call http.Server.Close, which
// severs open connections, so a scrape racing shutdown got a truncated
// body (or a reset) and the final state of a run was lost to the
// scraper. Close must now let the in-flight response finish.
func TestCloseWaitsForInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(Desc{Name: "test_scrape_total", Help: "h"})
	c.Add(41)
	started := make(chan struct{}, 1)
	reg.GaugeFunc(Desc{Name: "test_slow_gauge", Help: "h"}, func() float64 {
		// Simulate an expensive collection so the scrape is reliably
		// mid-body when Close lands.
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(200 * time.Millisecond)
		return 7
	})
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), err: err}
	}()

	<-started // the handler is inside the exposition now
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()

	res := <-got
	if res.err != nil {
		t.Fatalf("scrape racing Close failed: %v", res.err)
	}
	for _, series := range []string{"test_scrape_total 41", "test_slow_gauge 7"} {
		if !strings.Contains(res.body, series) {
			t.Fatalf("scrape body incomplete: missing %q in:\n%s", series, res.body)
		}
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseForcesHungHandlers bounds the grace: a handler that never
// returns (a dead streaming client, a stuck profile) must not wedge
// Close forever — after CloseGrace it is severed.
func TestCloseForcesHungHandlers(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	srv.Handle("/hang", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(entered)
		<-req.Context().Done() // holds the connection until forced closure
	}))
	go http.Get("http://" + srv.Addr() + "/hang")
	<-entered

	start := time.Now()
	err = srv.Close()
	elapsed := time.Since(start)
	if err != nil && !isServerClosed(err) {
		t.Fatalf("Close after forcing: %v", err)
	}
	if elapsed < CloseGrace {
		t.Fatalf("Close returned in %v, before the %v grace elapsed", elapsed, CloseGrace)
	}
	if elapsed > CloseGrace+2*time.Second {
		t.Fatalf("Close took %v; the grace deadline did not bound it", elapsed)
	}
}

func isServerClosed(err error) bool {
	return err == http.ErrServerClosed || err == context.DeadlineExceeded
}

// TestHandleMountsExtraEndpoints covers the post-start mount path the
// subscription API uses.
func TestHandleMountsExtraEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "mounted")
	}))
	resp, err := http.Get("http://" + srv.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "mounted" {
		t.Fatalf("GET /extra = %q, want %q", b, "mounted")
	}
}
