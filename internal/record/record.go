// Package record defines the BRISK instrumentation-data record: a
// dynamically-typed event notification of up to eight fields, encoded in
// XDR with a compressed meta-information header.
//
// The paper's internal sensors write records of heterogeneous fields with
// "over ten basic types ... ranging from bytes, to floats, to
// null-terminated strings", plus three system types used for coordination
// between BRISK, the application and the analysis tools:
//
//   - TS holds BRISK's internal timestamp, an eight-byte count of
//     microseconds of UTC;
//   - Reason and Conseq carry user-supplied identifiers marking
//     causally-related events for the manager's tachyon repair.
//
// On the wire a record is a fixed 8-byte meta header followed by the XDR
// encoding of each field:
//
//	offset  size  contents
//	0       2     record length in bytes, including this header (big endian)
//	2       1     event class (application-chosen small identifier)
//	3       1     high nibble: field count (0..8); low nibble: flags (0)
//	4       4     field type codes, one nibble per field, field 0 in the
//	              high nibble of byte 4; unused nibbles are zero
//
// The header is the "compressed meta-information" of the paper's transfer
// protocol: with it, the evaluation's record of six int fields plus an
// embedded timestamp occupies exactly 40 bytes (8 header + 8 TS + 6*4).
package record

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"brisk/internal/xdr"
)

// MaxFields is the largest number of fields in one record. The paper keeps
// the sensor header file at eight dynamically-typed fields, observing that
// more "adds excessive code to a compiled application" and therefore
// intrusion; the same bound keeps this implementation's meta header at a
// single 4-byte nibble array.
const MaxFields = 8

// HeaderSize is the size of the record meta header in bytes.
const HeaderSize = 8

// MaxStringLen bounds an XString field so a corrupt record cannot demand a
// huge allocation in the manager.
const MaxStringLen = 4096

// Type identifies the wire type of one record field. Type codes fit in a
// nibble so that eight of them pack into the 4-byte meta header.
type Type uint8

// Field type codes. Invalid (0) never appears in a valid record.
const (
	Invalid Type = iota
	Int8
	Uint8
	Int16
	Uint16
	Int32
	Uint32
	Int64
	Uint64
	Float32
	Float64
	String
	Bool
	// TS embeds the BRISK internal timestamp: microseconds of UTC as a
	// signed 64-bit integer. The external sensor adds its clock-correction
	// value to this field before shipping the record to the manager.
	TS
	// Reason marks this record as a cause: the manager retains its
	// identifier so matching Conseq records are never emitted first.
	Reason
	// Conseq marks this record as an effect of the Reason record carrying
	// the same identifier.
	Conseq
)

var typeNames = [...]string{
	Invalid: "invalid",
	Int8:    "i8", Uint8: "u8", Int16: "i16", Uint16: "u16",
	Int32: "i32", Uint32: "u32", Int64: "i64", Uint64: "u64",
	Float32: "f32", Float64: "f64", String: "str", Bool: "bool",
	TS: "X_TS", Reason: "X_REASON", Conseq: "X_CONSEQ",
}

// String returns the short mnemonic for the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "type(" + strconv.Itoa(int(t)) + ")"
}

// Valid reports whether t is a defined field type.
func (t Type) Valid() bool { return t > Invalid && t <= Conseq }

// WireSize returns the encoded size in bytes of a field of this type, or
// -1 for variable-size types (String).
func (t Type) WireSize() int {
	switch t {
	case Int8, Uint8, Int16, Uint16, Int32, Uint32, Float32, Bool:
		return 4
	case Int64, Uint64, Float64, TS, Reason, Conseq:
		return 8
	case String:
		return -1
	default:
		return -1
	}
}

// Errors reported by the decoder.
var (
	ErrTooManyFields = errors.New("record: more than MaxFields fields")
	ErrBadHeader     = errors.New("record: malformed meta header")
	ErrBadType       = errors.New("record: invalid field type code")
	ErrTruncated     = errors.New("record: truncated")
)

// Value is one dynamically-typed field value. Construct values with the
// typed helpers (IntVal, StrVal, ...) rather than filling the struct
// directly; the helpers keep the numeric payload normalized.
type Value struct {
	Type Type
	// Bits holds the numeric payload: sign-extended integers, float bit
	// patterns, bool as 0/1, and the identifiers of Reason/Conseq fields.
	Bits uint64
	// Str holds the payload of String fields.
	Str string
}

// I8Val returns an Int8 field value.
func I8Val(v int8) Value { return Value{Type: Int8, Bits: uint64(int64(v))} }

// U8Val returns a Uint8 field value.
func U8Val(v uint8) Value { return Value{Type: Uint8, Bits: uint64(v)} }

// I16Val returns an Int16 field value.
func I16Val(v int16) Value { return Value{Type: Int16, Bits: uint64(int64(v))} }

// U16Val returns a Uint16 field value.
func U16Val(v uint16) Value { return Value{Type: Uint16, Bits: uint64(v)} }

// I32Val returns an Int32 field value.
func I32Val(v int32) Value { return Value{Type: Int32, Bits: uint64(int64(v))} }

// U32Val returns a Uint32 field value.
func U32Val(v uint32) Value { return Value{Type: Uint32, Bits: uint64(v)} }

// I64Val returns an Int64 field value.
func I64Val(v int64) Value { return Value{Type: Int64, Bits: uint64(v)} }

// U64Val returns a Uint64 field value.
func U64Val(v uint64) Value { return Value{Type: Uint64, Bits: v} }

// F32Val returns a Float32 field value.
func F32Val(v float32) Value { return Value{Type: Float32, Bits: uint64(math.Float32bits(v))} }

// F64Val returns a Float64 field value.
func F64Val(v float64) Value { return Value{Type: Float64, Bits: math.Float64bits(v)} }

// StrVal returns a String field value.
func StrVal(s string) Value { return Value{Type: String, Str: s} }

// BoolVal returns a Bool field value.
func BoolVal(v bool) Value {
	var b uint64
	if v {
		b = 1
	}
	return Value{Type: Bool, Bits: b}
}

// TSVal returns a TS system field carrying the given microsecond UTC time.
func TSVal(usec int64) Value { return Value{Type: TS, Bits: uint64(usec)} }

// ReasonVal returns a Reason system field with the given causal identifier.
func ReasonVal(id uint64) Value { return Value{Type: Reason, Bits: id} }

// ConseqVal returns a Conseq system field with the given causal identifier.
func ConseqVal(id uint64) Value { return Value{Type: Conseq, Bits: id} }

// Int returns the field interpreted as a signed integer.
func (v Value) Int() int64 { return int64(v.Bits) }

// Uint returns the field interpreted as an unsigned integer.
func (v Value) Uint() uint64 { return v.Bits }

// Float returns the field interpreted as a float.
func (v Value) Float() float64 {
	switch v.Type {
	case Float32:
		return float64(math.Float32frombits(uint32(v.Bits)))
	case Float64:
		return math.Float64frombits(v.Bits)
	default:
		return float64(int64(v.Bits))
	}
}

// Bool returns the field interpreted as a boolean.
func (v Value) Bool() bool { return v.Bits != 0 }

// WireSize returns the encoded size of this value in bytes.
func (v Value) WireSize() int {
	if v.Type == String {
		return xdr.OpaqueLen(len(v.Str))
	}
	return v.Type.WireSize()
}

// GoString formats the value as "type:payload" for diagnostics.
func (v Value) GoString() string {
	switch v.Type {
	case Int8, Int16, Int32, Int64, TS:
		return fmt.Sprintf("%v:%d", v.Type, int64(v.Bits))
	case Uint8, Uint16, Uint32, Uint64, Reason, Conseq:
		return fmt.Sprintf("%v:%d", v.Type, v.Bits)
	case Float32, Float64:
		return fmt.Sprintf("%v:%g", v.Type, v.Float())
	case String:
		return fmt.Sprintf("%v:%q", v.Type, v.Str)
	case Bool:
		return fmt.Sprintf("%v:%t", v.Type, v.Bool())
	default:
		return v.Type.String()
	}
}

// Record is one decoded instrumentation-data record. Node identifies the
// originating node; it travels in the batch header rather than the record
// itself and is filled in by the manager on receipt.
type Record struct {
	// Node is the originating node identifier (assigned at EXS HELLO).
	Node int32
	// Event is the application-chosen event class.
	Event uint8
	// Fields holds every field in positional order, including the system
	// fields, so encoding round-trips exactly.
	Fields []Value

	// TS caches the value of the first TS field, in microseconds of UTC,
	// or 0 if the record carries none. HasTS distinguishes a genuine zero.
	TS    int64
	HasTS bool
	// Reason and Conseq cache the identifiers of the first Reason/Conseq
	// fields; 0 means absent (identifier 0 is reserved).
	Reason uint64
	Conseq uint64

	// Seq is a manager-side per-source sequence number used by the
	// on-line sorter to keep per-source FIFO order among equal timestamps.
	Seq uint64
}

// reindex refreshes the cached system-field views from Fields.
func (r *Record) reindex() {
	r.TS, r.HasTS, r.Reason, r.Conseq = 0, false, 0, 0
	for _, f := range r.Fields {
		switch f.Type {
		case TS:
			if !r.HasTS {
				r.TS = int64(f.Bits)
				r.HasTS = true
			}
		case Reason:
			if r.Reason == 0 {
				r.Reason = f.Bits
			}
		case Conseq:
			if r.Conseq == 0 {
				r.Conseq = f.Bits
			}
		}
	}
}

// New assembles a record from an event class and field values. It is the
// slow-path constructor used by tests, tools and the manager; sensors
// encode directly to bytes instead.
func New(event uint8, fields ...Value) Record {
	r := Record{Event: event, Fields: fields}
	r.reindex()
	return r
}

// SetTS overwrites the record's first TS field (and cache) with the given
// microsecond timestamp. The manager uses this to repair tachyons; the
// external sensor uses it to apply the clock-correction value.
func (r *Record) SetTS(usec int64) {
	for i, f := range r.Fields {
		if f.Type == TS {
			r.Fields[i].Bits = uint64(usec)
			r.TS = usec
			r.HasTS = true
			return
		}
	}
	// No TS field: prepend one so downstream consumers always see it.
	r.Fields = append([]Value{TSVal(usec)}, r.Fields...)
	r.TS = usec
	r.HasTS = true
}

// Detach gives the record a private copy of its Fields array. Decoded and
// sorter-emitted records borrow storage that their producer reuses (a
// pooled batch slice, a source-queue slot); any consumer that retains a
// record beyond the borrowing window documented by its producer must
// Detach it first.
func (r *Record) Detach() {
	if len(r.Fields) == 0 {
		r.Fields = nil
		return
	}
	r.Fields = append([]Value(nil), r.Fields...)
}

// WireSize returns the encoded size of the record in bytes.
func (r *Record) WireSize() int {
	n := HeaderSize
	for _, f := range r.Fields {
		n += f.WireSize()
	}
	return n
}

// String formats the record compactly for logs and trace dumps.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ev=%d node=%d", r.Event, r.Node)
	if r.HasTS {
		fmt.Fprintf(&b, " ts=%d", r.TS)
	}
	for _, f := range r.Fields {
		if f.Type == TS {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(f.GoString())
	}
	return b.String()
}

// Append encodes the record (meta header plus XDR fields) onto dst and
// returns the extended slice. It never allocates beyond growing dst.
func (r *Record) Append(dst []byte) ([]byte, error) {
	if len(r.Fields) > MaxFields {
		return dst, ErrTooManyFields
	}
	size := r.WireSize()
	if size > math.MaxUint16 {
		return dst, fmt.Errorf("record: encoded size %d exceeds 64 KiB", size)
	}
	start := len(dst)
	dst = append(dst, 0, 0, r.Event, byte(len(r.Fields))<<4, 0, 0, 0, 0)
	dst[start] = byte(size >> 8)
	dst[start+1] = byte(size)
	for i, f := range r.Fields {
		if !f.Type.Valid() {
			return dst[:start], fmt.Errorf("%w: field %d has type %v", ErrBadType, i, f.Type)
		}
		nib := start + 4 + i/2
		if i%2 == 0 {
			dst[nib] |= byte(f.Type) << 4
		} else {
			dst[nib] |= byte(f.Type)
		}
		dst = appendFieldPayload(dst, f)
	}
	return dst, nil
}

func appendFieldPayload(dst []byte, f Value) []byte {
	switch f.Type {
	case Int8, Int16, Int32:
		return xdr.AppendInt32(dst, int32(int64(f.Bits)))
	case Uint8, Uint16, Uint32, Bool:
		return xdr.AppendUint32(dst, uint32(f.Bits))
	case Float32:
		return xdr.AppendUint32(dst, uint32(f.Bits))
	case Int64, Uint64, Float64, TS, Reason, Conseq:
		return xdr.AppendUint64(dst, f.Bits)
	case String:
		return xdr.AppendString(dst, f.Str)
	default:
		return dst
	}
}

// Decode parses one record from the front of buf, returning the record and
// the number of bytes consumed. The record's Fields slice is freshly
// allocated; String payloads are copied, so the record does not alias buf.
func Decode(buf []byte) (Record, int, error) {
	var r Record
	n, err := DecodeInto(&r, buf)
	return r, n, err
}

// DecodeInto parses one record from the front of buf into r, reusing r's
// Fields slice when capacity allows. It returns the number of bytes
// consumed.
func DecodeInto(r *Record, buf []byte) (int, error) {
	if len(buf) < HeaderSize {
		return 0, fmt.Errorf("%w: %d bytes, need %d for header", ErrTruncated, len(buf), HeaderSize)
	}
	size := int(buf[0])<<8 | int(buf[1])
	if size < HeaderSize {
		return 0, fmt.Errorf("%w: declared size %d < header size", ErrBadHeader, size)
	}
	if size > len(buf) {
		return 0, fmt.Errorf("%w: declared size %d > available %d", ErrTruncated, size, len(buf))
	}
	nf := int(buf[3] >> 4)
	if nf > MaxFields {
		return 0, ErrTooManyFields
	}
	if buf[3]&0x0F != 0 {
		return 0, fmt.Errorf("%w: reserved flags 0x%x set", ErrBadHeader, buf[3]&0x0F)
	}
	r.Node = 0
	r.Event = buf[2]
	r.Seq = 0
	if cap(r.Fields) >= nf {
		r.Fields = r.Fields[:nf]
	} else {
		r.Fields = make([]Value, nf)
	}
	// A stack-allocated decoder: DecodeInto is the per-record hot path of
	// the manager's ingest workers and must not allocate.
	var d xdr.Decoder
	d.Reset(buf[HeaderSize:size])
	d.MaxOpaque = MaxStringLen
	for i := 0; i < nf; i++ {
		code := buf[4+i/2]
		if i%2 == 0 {
			code >>= 4
		} else {
			code &= 0x0F
		}
		t := Type(code)
		if !t.Valid() {
			return 0, fmt.Errorf("%w: field %d code %d", ErrBadType, i, code)
		}
		v, err := decodeFieldPayload(&d, t)
		if err != nil {
			return 0, fmt.Errorf("record: field %d (%v): %w", i, t, err)
		}
		r.Fields[i] = v
	}
	// Verify trailing nibbles are zero so the header is canonical.
	for i := nf; i < MaxFields; i++ {
		code := buf[4+i/2]
		if i%2 == 0 {
			code >>= 4
		} else {
			code &= 0x0F
		}
		if code != 0 {
			return 0, fmt.Errorf("%w: nonzero nibble past field count", ErrBadHeader)
		}
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes inside record", ErrBadHeader, d.Remaining())
	}
	r.reindex()
	return size, nil
}

func decodeFieldPayload(d *xdr.Decoder, t Type) (Value, error) {
	switch t {
	case Int8:
		v, err := d.Int32()
		if err == nil && v != int32(int8(v)) {
			return Value{}, fmt.Errorf("%w: i8 payload %d out of range", ErrBadHeader, v)
		}
		return Value{Type: t, Bits: uint64(int64(int8(v)))}, err
	case Int16:
		v, err := d.Int32()
		if err == nil && v != int32(int16(v)) {
			return Value{}, fmt.Errorf("%w: i16 payload %d out of range", ErrBadHeader, v)
		}
		return Value{Type: t, Bits: uint64(int64(int16(v)))}, err
	case Int32:
		v, err := d.Int32()
		return Value{Type: t, Bits: uint64(int64(v))}, err
	case Uint8:
		v, err := d.Uint32()
		if err == nil && v > 0xFF {
			return Value{}, fmt.Errorf("%w: u8 payload %d out of range", ErrBadHeader, v)
		}
		return Value{Type: t, Bits: uint64(uint8(v))}, err
	case Uint16:
		v, err := d.Uint32()
		if err == nil && v > 0xFFFF {
			return Value{}, fmt.Errorf("%w: u16 payload %d out of range", ErrBadHeader, v)
		}
		return Value{Type: t, Bits: uint64(uint16(v))}, err
	case Uint32, Float32:
		v, err := d.Uint32()
		return Value{Type: t, Bits: uint64(v)}, err
	case Bool:
		v, err := d.Uint32()
		if err == nil && v > 1 {
			return Value{}, fmt.Errorf("%w: bool payload %d", ErrBadHeader, v)
		}
		return Value{Type: t, Bits: uint64(v)}, err
	case Int64, Uint64, Float64, TS, Reason, Conseq:
		v, err := d.Uint64()
		return Value{Type: t, Bits: v}, err
	case String:
		s, err := d.String()
		return Value{Type: t, Str: s}, err
	default:
		return Value{}, ErrBadType
	}
}

// PeekSize returns the declared wire size of the record at the front of
// buf without decoding it, so stream readers can frame records cheaply.
func PeekSize(buf []byte) (int, error) {
	if len(buf) < 2 {
		return 0, ErrTruncated
	}
	size := int(buf[0])<<8 | int(buf[1])
	if size < HeaderSize {
		return 0, ErrBadHeader
	}
	return size, nil
}

// PeekTS extracts the first TS field from an encoded record without a full
// decode. It returns hasTS=false for records with no timestamp. The
// external sensor uses this together with PatchTS to apply its clock
// correction without re-encoding whole batches.
func PeekTS(buf []byte) (ts int64, off int, hasTS bool) {
	if len(buf) < HeaderSize {
		return 0, 0, false
	}
	size := int(buf[0])<<8 | int(buf[1])
	if size > len(buf) {
		return 0, 0, false
	}
	nf := int(buf[3] >> 4)
	if nf > MaxFields {
		return 0, 0, false
	}
	off = HeaderSize
	for i := 0; i < nf; i++ {
		code := buf[4+i/2]
		if i%2 == 0 {
			code >>= 4
		} else {
			code &= 0x0F
		}
		t := Type(code)
		if t == TS {
			if off+8 > size {
				return 0, 0, false
			}
			return int64(xdr.Uint64At(buf[off:])), off, true
		}
		w := t.WireSize()
		if w < 0 {
			// Variable-size field: read its length word.
			if off+4 > size {
				return 0, 0, false
			}
			w = xdr.OpaqueLen(int(xdr.Uint32At(buf[off:])))
		}
		off += w
		if off > size {
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// PatchTS overwrites the TS field at the given offset (from PeekTS) inside
// an encoded record.
func PatchTS(buf []byte, off int, usec int64) {
	xdr.PutUint64(buf[off:], uint64(usec))
}
