package record

import (
	"errors"
	"sync"
)

// DecodeAppend parses every record concatenated in payload, appends each
// onto dst and returns the extended slice — the manager's batch-decode hot
// path. Element storage is reused: when dst has spare capacity, the
// element occupying the next slot keeps its Fields array and DecodeInto
// fills it in place, so a batch slice recycled through GetBatch/PutBatch
// decodes with zero steady-state allocations.
//
// Decoded records borrow that recycled storage: they are valid until the
// batch is returned with PutBatch. Consumers keeping a record longer must
// Detach it. On a malformed payload the successfully decoded prefix is
// returned together with the error.
func DecodeAppend(dst []Record, payload []byte) ([]Record, error) {
	for len(payload) > 0 {
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
		} else {
			dst = append(dst, Record{})
		}
		n, err := DecodeInto(&dst[len(dst)-1], payload)
		if err != nil {
			return dst[:len(dst)-1], err
		}
		payload = payload[n:]
	}
	return dst, nil
}

// ErrShortPrefix reports a node-prefixed payload that ends inside a
// 4-byte origin prefix.
var ErrShortPrefix = errors.New("record: truncated node prefix")

// DecodeNodeAppend parses a payload of node-prefixed entries — each
// record preceded by its 4-byte big-endian origin node id, the framing
// shared by the shm memory buffer and the wire RelayBatch — appending
// each onto dst with Node set from its prefix. Storage reuse and
// error-prefix semantics match DecodeAppend.
func DecodeNodeAppend(dst []Record, payload []byte) ([]Record, error) {
	for len(payload) > 0 {
		if len(payload) < 4 {
			return dst, ErrShortPrefix
		}
		node := int32(uint32(payload[0])<<24 | uint32(payload[1])<<16 |
			uint32(payload[2])<<8 | uint32(payload[3]))
		payload = payload[4:]
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
		} else {
			dst = append(dst, Record{})
		}
		n, err := DecodeInto(&dst[len(dst)-1], payload)
		if err != nil {
			return dst[:len(dst)-1], err
		}
		dst[len(dst)-1].Node = node
		payload = payload[n:]
	}
	return dst, nil
}

// batchPool recycles record-batch slices between the manager's parallel
// decode workers and its single merge goroutine.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]Record, 0, 256)
		return &b
	},
}

// GetBatch returns an empty record batch from the pool. The pointer (not
// the slice) travels between goroutines so the capacity grown by
// DecodeAppend survives recycling.
func GetBatch() *[]Record {
	return batchPool.Get().(*[]Record)
}

// PutBatch recycles a batch obtained from GetBatch. Only the length is
// reset: the elements keep their Fields arrays so the next DecodeAppend
// into the batch reuses them. The caller must no longer touch any record
// borrowed from the batch.
func PutBatch(b *[]Record) {
	*b = (*b)[:0]
	batchPool.Put(b)
}
