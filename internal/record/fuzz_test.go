package record

import (
	"reflect"
	"testing"
)

// FuzzDecode checks that arbitrary bytes never panic the decoder and that
// anything it accepts re-encodes to the identical byte string (canonical
// round trip).
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid records of several shapes plus mutations.
	seed := []Record{
		New(1, TSVal(123), I32Val(1), I32Val(2), I32Val(3), I32Val(4), I32Val(5), I32Val(6)),
		New(2, TSVal(-5), StrVal("hello"), F64Val(2.5)),
		New(3),
		New(4, ReasonVal(9), ConseqVal(10), BoolVal(true)),
	}
	for i := range seed {
		buf, err := seed[i].Append(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Record
		n, err := DecodeInto(&r, data)
		if err != nil {
			return
		}
		re, err := r.Append(nil)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v (%+v)", err, r)
		}
		if !reflect.DeepEqual(re, data[:n]) {
			t.Fatalf("non-canonical decode:\n in  % x\n out % x", data[:n], re)
		}
		// PeekTS must agree with the decoded cache.
		ts, _, ok := PeekTS(data[:n])
		if ok != r.HasTS || (ok && ts != r.TS) {
			t.Fatalf("PeekTS (%d,%v) disagrees with decode (%d,%v)", ts, ok, r.TS, r.HasTS)
		}
	})
}
