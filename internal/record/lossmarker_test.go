package record

import "testing"

func TestLossMarkerRoundTrip(t *testing.T) {
	m := NewLossMarker(42, 100, 900)
	if !IsLossMarker(&m) {
		t.Fatal("NewLossMarker not recognized by IsLossMarker")
	}
	count, first, last, ok := LossInfo(&m)
	if !ok || count != 42 || first != 100 || last != 900 {
		t.Fatalf("LossInfo = (%d, %d, %d, %v), want (42, 100, 900, true)", count, first, last, ok)
	}
	if !m.HasTS || m.TS != 900 {
		t.Fatalf("marker TS = %d (HasTS=%v), want 900: markers must sort at the end of the range they cover", m.TS, m.HasTS)
	}

	// Wire round trip preserves marker-ness.
	buf, err := m.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !IsLossMarker(&got) {
		t.Fatal("decoded marker not recognized")
	}
	if c, f, l, _ := LossInfo(&got); c != 42 || f != 100 || l != 900 {
		t.Fatalf("decoded LossInfo = (%d, %d, %d)", c, f, l)
	}
}

func TestIsLossMarkerRejectsLookalikes(t *testing.T) {
	cases := []Record{
		New(LossEvent),                                            // no fields
		New(LossEvent, TSVal(1), U64Val(2)),                       // too few
		New(LossEvent, TSVal(1), I64Val(2), U64Val(3)),            // wrong order
		New(1, TSVal(1), U64Val(2), I64Val(3)),                    // wrong event
		New(LossEvent, TSVal(1), U64Val(2), I64Val(3), U64Val(4)), // too many
		New(LossEvent, U64Val(1), U64Val(2), I64Val(3)),           // no TS field
	}
	for i, r := range cases {
		if IsLossMarker(&r) {
			t.Fatalf("case %d accepted as loss marker: %+v", i, r)
		}
	}
}
