package record

// LossEvent is the reserved event class of loss-marker records: synthetic
// records injected into the merged stream wherever the pipeline had to
// drop data it had already accepted. The marker makes the gap explicit to
// every downstream consumer — PICL traces, the causal matcher, memory
// buffers and visual objects all see where and how much was lost instead
// of a silent hole in the sequence.
//
// A loss marker carries exactly three fields, in order:
//
//	TS      — the last (latest) timestamp covered by the loss, so the
//	          marker sorts at the end of the gap it describes
//	Uint64  — the number of records dropped
//	Int64   — the first (earliest) timestamp covered, 0 if unknown
//
// Node attribution uses the normal Record.Node mechanism: the marker's
// Node names the source whose records were lost.
const LossEvent uint8 = 0xFF

// NewLossMarker builds a loss-marker record describing count dropped
// records covering [firstTS, lastTS]. The caller sets Node to attribute
// the loss to a source.
func NewLossMarker(count uint64, firstTS, lastTS int64) Record {
	return New(LossEvent, TSVal(lastTS), U64Val(count), I64Val(firstTS))
}

// IsLossMarker reports whether r is a loss-marker record (event class
// LossEvent with the marker field shape).
func IsLossMarker(r *Record) bool {
	return r.Event == LossEvent && len(r.Fields) == 3 &&
		r.Fields[0].Type == TS && r.Fields[1].Type == Uint64 &&
		r.Fields[2].Type == Int64
}

// LossInfo extracts the dropped-record count and covered timestamp range
// from a loss marker. ok is false if r is not a loss marker.
func LossInfo(r *Record) (count uint64, firstTS, lastTS int64, ok bool) {
	if !IsLossMarker(r) {
		return 0, 0, 0, false
	}
	return r.Fields[1].Bits, int64(r.Fields[2].Bits), int64(r.Fields[0].Bits), true
}
