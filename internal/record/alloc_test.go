package record

import "testing"

// The ingest pipeline's per-record budget is zero heap allocations in
// steady state; these tests pin the two record-layer halves of that
// contract (encode into a reused buffer, decode into a reused batch) with
// testing.AllocsPerRun so a regression fails loudly rather than showing up
// as a throughput drift.

func TestAllocsEncodeAppend(t *testing.T) {
	rec := New(3, TSVal(1234567), I32Val(1), I32Val(2), I32Val(3),
		I32Val(4), I32Val(5), I32Val(6))
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = rec.Append(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode Append allocates %.1f times per record, want 0", allocs)
	}
}

func TestAllocsDecodeAppend(t *testing.T) {
	rec := New(3, TSVal(1234567), I32Val(1), I32Val(2), I32Val(3),
		I32Val(4), I32Val(5), I32Val(6))
	var payload []byte
	for i := 0; i < 64; i++ {
		var err error
		payload, err = rec.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]Record, 0, 64)
	// Warm the per-element Fields arrays once; steady state reuses them.
	batch, err := DecodeAppend(batch[:0], payload)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		batch, err = DecodeAppend(batch[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != 64 {
			t.Fatalf("decoded %d records, want 64", len(batch))
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeAppend allocates %.1f times per batch, want 0", allocs)
	}
}

func TestAllocsBatchPool(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		bp := GetBatch()
		*bp = append((*bp)[:0], Record{})
		PutBatch(bp)
	})
	if allocs != 0 {
		t.Fatalf("batch pool round-trip allocates %.1f times, want 0", allocs)
	}
}
