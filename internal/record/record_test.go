package record

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAppend(t *testing.T, r *Record) []byte {
	t.Helper()
	buf, err := r.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return buf
}

func TestPaperRecordIsFortyBytes(t *testing.T) {
	// The evaluation's record: six int fields plus the embedded timestamp
	// and type information must require exactly 40 bytes on the wire.
	r := New(1, TSVal(123456789),
		I32Val(1), I32Val(2), I32Val(3), I32Val(4), I32Val(5), I32Val(6))
	if got := r.WireSize(); got != 40 {
		t.Fatalf("six-int record wire size = %d, want 40", got)
	}
	buf := mustAppend(t, &r)
	if len(buf) != 40 {
		t.Fatalf("encoded length = %d, want 40", len(buf))
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	r := New(7,
		TSVal(-5),
		I8Val(-8), U8Val(200), I16Val(-3000), U16Val(60000),
		StrVal("hello, BRISK"),
		ReasonVal(42),
	)
	buf := mustAppend(t, &r)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("Decode consumed %d, want %d", n, len(buf))
	}
	if got.Event != 7 || got.TS != -5 || !got.HasTS || got.Reason != 42 || got.Conseq != 0 {
		t.Fatalf("decoded caches wrong: %+v", got)
	}
	if !reflect.DeepEqual(got.Fields, r.Fields) {
		t.Fatalf("fields mismatch:\n got %#v\nwant %#v", got.Fields, r.Fields)
	}

	r2 := New(9,
		I32Val(math.MinInt32), U32Val(math.MaxUint32),
		I64Val(math.MinInt64), U64Val(math.MaxUint64),
		F32Val(3.25), F64Val(-1e300), BoolVal(true), ConseqVal(99),
	)
	buf2 := mustAppend(t, &r2)
	got2, _, err := Decode(buf2)
	if err != nil {
		t.Fatalf("Decode 2: %v", err)
	}
	if !reflect.DeepEqual(got2.Fields, r2.Fields) {
		t.Fatalf("fields mismatch:\n got %#v\nwant %#v", got2.Fields, r2.Fields)
	}
	if got2.Conseq != 99 {
		t.Fatalf("Conseq cache = %d, want 99", got2.Conseq)
	}
}

func TestEmptyRecord(t *testing.T) {
	r := New(0)
	buf := mustAppend(t, &r)
	if len(buf) != HeaderSize {
		t.Fatalf("empty record size = %d, want %d", len(buf), HeaderSize)
	}
	got, n, err := Decode(buf)
	if err != nil || n != HeaderSize || len(got.Fields) != 0 {
		t.Fatalf("empty record decode: %v %d %v", got, n, err)
	}
}

func TestTooManyFields(t *testing.T) {
	fields := make([]Value, MaxFields+1)
	for i := range fields {
		fields[i] = I32Val(int32(i))
	}
	r := New(1, fields...)
	if _, err := r.Append(nil); !errors.Is(err, ErrTooManyFields) {
		t.Fatalf("Append with 9 fields: err = %v, want ErrTooManyFields", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	r := New(3, TSVal(1), I32Val(2))
	buf := mustAppend(t, &r)

	// Truncated header.
	if _, _, err := Decode(buf[:4]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: err = %v", err)
	}
	// Truncated body.
	if _, _, err := Decode(buf[:len(buf)-2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short body: err = %v", err)
	}
	// Declared size below header size.
	bad := append([]byte(nil), buf...)
	bad[0], bad[1] = 0, 3
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadHeader) {
		t.Errorf("tiny declared size: err = %v", err)
	}
	// Reserved flag bits set.
	bad = append([]byte(nil), buf...)
	bad[3] |= 0x01
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadHeader) {
		t.Errorf("flag bits: err = %v", err)
	}
	// Invalid nibble past the field count.
	bad = append([]byte(nil), buf...)
	bad[5] |= 0x0F // field index 3 nibble (count is 2)
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadHeader) {
		t.Errorf("dirty trailing nibble: err = %v", err)
	}
	// Field count over the maximum.
	bad = append([]byte(nil), buf...)
	bad[3] = 0x90
	if _, _, err := Decode(bad); !errors.Is(err, ErrTooManyFields) {
		t.Errorf("nf=9: err = %v", err)
	}
}

func TestSetTS(t *testing.T) {
	r := New(1, I32Val(5), TSVal(100), I32Val(6))
	r.SetTS(250)
	if r.TS != 250 || r.Fields[1].Int() != 250 {
		t.Fatalf("SetTS did not patch in place: %+v", r)
	}

	// A record without a TS field gets one prepended.
	r2 := New(1, I32Val(5))
	r2.SetTS(77)
	if !r2.HasTS || r2.TS != 77 || r2.Fields[0].Type != TS || len(r2.Fields) != 2 {
		t.Fatalf("SetTS on TS-less record: %+v", r2)
	}
}

func TestPeekSize(t *testing.T) {
	r := New(1, TSVal(9), StrVal("abcdef"))
	buf := mustAppend(t, &r)
	n, err := PeekSize(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("PeekSize = %d, %v; want %d", n, err, len(buf))
	}
	if _, err := PeekSize(buf[:1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("PeekSize short: %v", err)
	}
}

func TestPeekAndPatchTS(t *testing.T) {
	// TS after a variable-length string exercises the skip logic.
	r := New(4, StrVal("variable!"), I32Val(1), TSVal(1000), I32Val(2))
	buf := mustAppend(t, &r)
	ts, off, ok := PeekTS(buf)
	if !ok || ts != 1000 {
		t.Fatalf("PeekTS = %d, %v, %v", ts, off, ok)
	}
	PatchTS(buf, off, 2000)
	got, _, err := Decode(buf)
	if err != nil || got.TS != 2000 {
		t.Fatalf("after PatchTS decode: ts=%d err=%v", got.TS, err)
	}

	// Record with no TS.
	r2 := New(4, I32Val(1))
	buf2 := mustAppend(t, &r2)
	if _, _, ok := PeekTS(buf2); ok {
		t.Fatal("PeekTS found a TS in a TS-less record")
	}
}

func TestDecodeIntoReuse(t *testing.T) {
	r := New(2, TSVal(5), I32Val(9), StrVal("x"))
	buf := mustAppend(t, &r)
	var dst Record
	for i := 0; i < 3; i++ {
		if _, err := DecodeInto(&dst, buf); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(dst.Fields, r.Fields) {
		t.Fatalf("reuse decode mismatch: %#v", dst.Fields)
	}
}

func TestConcatenatedRecordsFrame(t *testing.T) {
	var buf []byte
	var err error
	recs := []Record{
		New(1, TSVal(10), I32Val(1)),
		New(2, TSVal(20), StrVal("two")),
		New(3, TSVal(30)),
	}
	for i := range recs {
		buf, err = recs[i].Append(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	for len(buf) > 0 {
		r, n, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		buf = buf[n:]
	}
	if len(got) != 3 || got[0].TS != 10 || got[1].TS != 20 || got[2].TS != 30 {
		t.Fatalf("stream decode mismatch: %+v", got)
	}
}

// randomValue draws one well-formed field value.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(12) {
	case 0:
		return I8Val(int8(rng.Int63()))
	case 1:
		return U8Val(uint8(rng.Int63()))
	case 2:
		return I16Val(int16(rng.Int63()))
	case 3:
		return U16Val(uint16(rng.Int63()))
	case 4:
		return I32Val(int32(rng.Int63()))
	case 5:
		return U32Val(uint32(rng.Int63()))
	case 6:
		return I64Val(rng.Int63() - rng.Int63())
	case 7:
		return U64Val(rng.Uint64())
	case 8:
		return F32Val(float32(rng.NormFloat64()))
	case 9:
		return F64Val(rng.NormFloat64())
	case 10:
		n := rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return StrVal(string(b))
	default:
		return BoolVal(rng.Intn(2) == 0)
	}
}

func TestPropertyRoundTripRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		nf := rng.Intn(MaxFields + 1)
		fields := make([]Value, 0, nf)
		for j := 0; j < nf; j++ {
			fields = append(fields, randomValue(rng))
		}
		// Half the records carry a timestamp like real sensors emit.
		if nf > 0 && rng.Intn(2) == 0 {
			fields[0] = TSVal(rng.Int63() - rng.Int63())
		}
		r := New(uint8(rng.Intn(256)), fields...)
		buf, err := r.Append(nil)
		if err != nil {
			t.Fatalf("iter %d: Append: %v", i, err)
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v (%+v)", i, err, r)
		}
		if n != len(buf) {
			t.Fatalf("iter %d: partial consume %d/%d", i, n, len(buf))
		}
		got.Seq = r.Seq
		if len(got.Fields) == 0 && len(r.Fields) == 0 {
			continue
		}
		if got.Event != r.Event || !reflect.DeepEqual(got.Fields, r.Fields) {
			t.Fatalf("iter %d: mismatch\n got %#v\nwant %#v", i, got.Fields, r.Fields)
		}
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Arbitrary bytes must never panic the decoder; they may only fail.
	f := func(b []byte) bool {
		var r Record
		_, _ = DecodeInto(&r, b)
		_, _, _ = PeekTS(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStringAndValid(t *testing.T) {
	if Invalid.Valid() || Type(200).Valid() {
		t.Error("Invalid/out-of-range types must not be valid")
	}
	for ty := Int8; ty <= Conseq; ty++ {
		if !ty.Valid() {
			t.Errorf("%v not valid", ty)
		}
		if ty.String() == "" {
			t.Errorf("type %d has empty name", ty)
		}
	}
	if !strings.Contains(Type(200).String(), "200") {
		t.Error("unknown type String() should carry the code")
	}
	if TS.String() != "X_TS" || Reason.String() != "X_REASON" || Conseq.String() != "X_CONSEQ" {
		t.Error("system type names must match the paper's X_* identifiers")
	}
}

func TestValueAccessors(t *testing.T) {
	if I32Val(-9).Int() != -9 {
		t.Error("Int accessor")
	}
	if U64Val(9).Uint() != 9 {
		t.Error("Uint accessor")
	}
	if F32Val(1.5).Float() != 1.5 || F64Val(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if I64Val(-2).Float() != -2 {
		t.Error("Float accessor on integer")
	}
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Error("Bool accessor")
	}
	if got := StrVal("q").GoString(); got != `str:"q"` {
		t.Errorf("GoString = %s", got)
	}
}

func TestRecordString(t *testing.T) {
	r := New(5, TSVal(100), I32Val(7), StrVal("hey"))
	r.Node = 3
	s := r.String()
	for _, want := range []string{"ev=5", "node=3", "ts=100", `str:"hey"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func BenchmarkAppendSixIntRecord(b *testing.B) {
	r := New(1, TSVal(1), I32Val(1), I32Val(2), I32Val(3), I32Val(4), I32Val(5), I32Val(6))
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = r.Append(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSixIntRecord(b *testing.B) {
	r := New(1, TSVal(1), I32Val(1), I32Val(2), I32Val(3), I32Val(4), I32Val(5), I32Val(6))
	buf, _ := r.Append(nil)
	var dst Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeekTS(b *testing.B) {
	r := New(1, TSVal(1), I32Val(1), I32Val(2), I32Val(3), I32Val(4), I32Val(5), I32Val(6))
	buf, _ := r.Append(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := PeekTS(buf); !ok {
			b.Fatal("no ts")
		}
	}
}
