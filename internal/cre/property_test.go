package cre

import (
	"math/rand"
	"testing"
	"testing/quick"

	"brisk/internal/record"
)

// TestPropertyConsequenceNeverBeforeReason: over random interleavings of
// reasons, consequences and plain records, a consequence whose reason
// appears in the stream is never emitted before that reason, and every
// record is emitted exactly once.
func TestPropertyConsequenceNeverBeforeReason(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{Timeout: 1 << 40}) // no timeouts in this property
		type item struct {
			kind int // 0 plain, 1 reason, 2 conseq
			id   uint64
		}
		nPairs := 1 + rng.Intn(20)
		var items []item
		for id := uint64(1); id <= uint64(nPairs); id++ {
			items = append(items, item{1, id}, item{2, id})
		}
		for i := 0; i < 10; i++ {
			items = append(items, item{0, 0})
		}
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

		emittedReason := map[uint64]bool{}
		emitted := 0
		ok := true
		emit := func(r record.Record) {
			emitted++
			if r.Reason != 0 {
				emittedReason[r.Reason] = true
			}
			if r.Conseq != 0 && !emittedReason[r.Conseq] {
				ok = false
			}
		}
		now := int64(0)
		for _, it := range items {
			now += 1 + rng.Int63n(50)
			switch it.kind {
			case 0:
				m.Process(plain(now), now, emit)
			case 1:
				m.Process(reason(it.id, now), now, emit)
			case 2:
				m.Process(conseq(it.id, now), now, emit)
			}
		}
		m.Flush(emit)
		return ok && emitted == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRepairedTimestampsRespectCausality: whenever a matched pair
// is emitted, the consequence's final timestamp is never earlier than the
// reason's, whatever the original stamps were (a tachyon is a consequence
// that appears strictly before its reason; equal stamps are legal).
func TestPropertyRepairedTimestampsRespectCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{Timeout: 1 << 40})
		reasonTS := map[uint64]int64{}
		ok := true
		emit := func(r record.Record) {
			if r.Reason != 0 {
				reasonTS[r.Reason] = r.TS
			}
			if r.Conseq != 0 {
				if rts, matched := reasonTS[r.Conseq]; matched && r.TS < rts {
					ok = false
				}
			}
		}
		now := int64(1000)
		for i := 0; i < 50; i++ {
			id := uint64(1 + rng.Intn(10))
			// Random, possibly causality-violating stamps.
			ts := now + rng.Int63n(2001) - 1000
			if rng.Intn(2) == 0 {
				m.Process(reason(id, ts), now, emit)
			} else {
				m.Process(conseq(id, ts), now, emit)
			}
			now += 1 + rng.Int63n(100)
		}
		m.Flush(emit)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoUnboundedRetention: with a finite timeout and advancing
// time, the matcher's held set returns to empty even when half the peers
// never arrive.
func TestPropertyNoUnboundedRetention(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{Timeout: 500})
		now := int64(0)
		emitted := 0
		emit := func(record.Record) { emitted++ }
		sent := 0
		for i := 0; i < 100; i++ {
			now += 1 + rng.Int63n(40)
			// Orphan consequences: ids that get no reason.
			m.Process(conseq(uint64(1000+i), now), now, emit)
			sent++
		}
		// Let every deadline pass.
		m.Tick(now+1000, emit)
		st := m.Stats()
		return st.HeldNow == 0 && emitted == sent && st.HeldTimedOut == uint64(sent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
