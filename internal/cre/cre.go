// Package cre implements the ISM's causally-related-event matching.
//
// Applications mark cause/effect pairs with the X_REASON and X_CONSEQ
// system field types, supplying matching identifiers. The manager matches
// them in a hash table on the sorted output stream:
//
//   - A consequence record whose reason has not yet been processed is kept
//     in memory until the reason arrives.
//   - When a just-arrived reason matches a waiting consequence whose
//     time-stamp is smaller than the reason's — a tachyon, meaning the
//     clock-synchronization algorithm failed to keep those nodes close
//     enough — the consequence's time-stamp is overridden by a larger
//     value, and an extra round of clock synchronization is requested
//     immediately (the OnTachyon hook).
//   - A causally-marked record of either type is kept no longer than a
//     configured timeout, because its peer may have been dropped.
package cre

import (
	"brisk/internal/record"
)

// DefaultTimeout is the default retention bound for unmatched causal
// records, in µs of manager time.
const DefaultTimeout = 5_000_000

// Config tunes the matcher.
type Config struct {
	// Timeout bounds how long an unmatched consequence is held and how
	// long a reason's timestamp is remembered (µs). 0 means
	// DefaultTimeout.
	Timeout int64
	// OnTachyon is invoked once per repaired tachyon, with the reason
	// timestamp and the consequence record before repair. The ISM hooks
	// the clock-synchronization master here.
	OnTachyon func(reasonTS int64, conseq *record.Record)
}

// Stats counts matcher activity.
type Stats struct {
	// Processed counts records passed through Process.
	Processed uint64
	// Matched counts consequences that found their reason (held or not).
	Matched uint64
	// Tachyons counts consequences whose timestamps had to be overridden.
	Tachyons uint64
	// HeldTimedOut counts consequences released because their reason
	// never arrived within the timeout.
	HeldTimedOut uint64
	// ReasonsExpired counts reason table entries aged out.
	ReasonsExpired uint64
	// HeldNow is the number of consequences currently waiting.
	HeldNow int
}

type heldConseq struct {
	rec      record.Record
	deadline int64
}

type reasonEntry struct {
	ts       int64
	deadline int64
}

type expiry struct {
	id       uint64
	deadline int64
}

// Matcher holds the reason table and waiting consequences. Not safe for
// concurrent use; it lives on the ISM's merger goroutine downstream of the
// on-line sorter.
type Matcher struct {
	cfg     Config
	reasons map[uint64]reasonEntry
	held    map[uint64][]heldConseq

	reasonQ []expiry // FIFO of reason-table expirations
	heldQ   []expiry // FIFO of held-consequence expirations

	stats Stats
}

// New returns an empty matcher.
func New(cfg Config) *Matcher {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Matcher{
		cfg:     cfg,
		reasons: make(map[uint64]reasonEntry),
		held:    make(map[uint64][]heldConseq),
	}
}

// Stats returns a copy of the counters.
func (m *Matcher) Stats() Stats {
	s := m.stats
	s.HeldNow = 0
	for _, hs := range m.held {
		s.HeldNow += len(hs)
	}
	return s
}

// Process accepts the next record of the sorted stream and emits zero or
// more records: the input itself (immediately, delayed, or repaired) plus
// any waiting consequences released by it. now is manager time in µs.
func (m *Matcher) Process(rec record.Record, now int64, emit func(record.Record)) {
	m.stats.Processed++
	m.expire(now, emit)

	if rec.Reason != 0 {
		id := rec.Reason
		m.reasons[id] = reasonEntry{ts: rec.TS, deadline: now + m.cfg.Timeout}
		m.reasonQ = append(m.reasonQ, expiry{id: id, deadline: now + m.cfg.Timeout})
		emit(rec)
		// Release any consequences that were waiting for this reason.
		if hs, ok := m.held[id]; ok {
			delete(m.held, id)
			for _, h := range hs {
				m.stats.Matched++
				m.repairAndEmit(rec.TS, h.rec, emit)
			}
		}
		return
	}

	if rec.Conseq != 0 {
		id := rec.Conseq
		if re, ok := m.reasons[id]; ok {
			m.stats.Matched++
			m.repairAndEmit(re.ts, rec, emit)
			return
		}
		// Reason not seen yet: keep the consequence in memory. The record
		// borrows sorter-owned Fields storage that a later push reuses, so
		// holding it across Process calls requires a private copy.
		h := heldConseq{rec: rec, deadline: now + m.cfg.Timeout}
		h.rec.Detach()
		m.held[id] = append(m.held[id], h)
		m.heldQ = append(m.heldQ, expiry{id: id, deadline: now + m.cfg.Timeout})
		return
	}

	emit(rec)
}

// repairAndEmit fixes a tachyon if present and emits the consequence.
func (m *Matcher) repairAndEmit(reasonTS int64, conseq record.Record, emit func(record.Record)) {
	if conseq.TS < reasonTS {
		// The time-stamps must reflect the causality: override with a
		// larger value and ask for an extra synchronization round.
		m.stats.Tachyons++
		if m.cfg.OnTachyon != nil {
			m.cfg.OnTachyon(reasonTS, &conseq)
		}
		conseq.SetTS(reasonTS + 1)
	}
	emit(conseq)
}

// expire releases timed-out held consequences (their peers may have been
// dropped) and ages out stale reason entries.
func (m *Matcher) expire(now int64, emit func(record.Record)) {
	for len(m.heldQ) > 0 && m.heldQ[0].deadline <= now {
		id := m.heldQ[0].id
		m.heldQ = m.heldQ[1:]
		hs, ok := m.held[id]
		if !ok {
			continue
		}
		var keep []heldConseq
		for _, h := range hs {
			if h.deadline <= now {
				m.stats.HeldTimedOut++
				emit(h.rec)
			} else {
				keep = append(keep, h)
			}
		}
		if len(keep) == 0 {
			delete(m.held, id)
		} else {
			m.held[id] = keep
		}
	}
	for len(m.reasonQ) > 0 && m.reasonQ[0].deadline <= now {
		id := m.reasonQ[0].id
		dl := m.reasonQ[0].deadline
		m.reasonQ = m.reasonQ[1:]
		if re, ok := m.reasons[id]; ok && re.deadline <= dl {
			delete(m.reasons, id)
			m.stats.ReasonsExpired++
		}
	}
}

// Tick lets the caller drive expiration when no records are flowing.
func (m *Matcher) Tick(now int64, emit func(record.Record)) {
	m.expire(now, emit)
}

// Flush releases every held consequence regardless of timeouts; used at
// shutdown so no record is silently lost.
func (m *Matcher) Flush(emit func(record.Record)) {
	for id, hs := range m.held {
		for _, h := range hs {
			m.stats.HeldTimedOut++
			emit(h.rec)
		}
		delete(m.held, id)
	}
	m.heldQ = nil
}
