package cre

import (
	"testing"

	"brisk/internal/record"
)

func reason(id uint64, ts int64) record.Record {
	return record.New(1, record.TSVal(ts), record.ReasonVal(id))
}

func conseq(id uint64, ts int64) record.Record {
	return record.New(2, record.TSVal(ts), record.ConseqVal(id))
}

func plain(ts int64) record.Record {
	return record.New(3, record.TSVal(ts))
}

type sink struct{ out []record.Record }

func (s *sink) emit(r record.Record) { s.out = append(s.out, r) }

func TestPlainRecordsPassThrough(t *testing.T) {
	m := New(Config{})
	var s sink
	m.Process(plain(10), 10, s.emit)
	m.Process(plain(20), 20, s.emit)
	if len(s.out) != 2 || s.out[0].TS != 10 || s.out[1].TS != 20 {
		t.Fatalf("out = %+v", s.out)
	}
}

func TestReasonThenConsequenceInOrder(t *testing.T) {
	m := New(Config{})
	var s sink
	m.Process(reason(7, 100), 100, s.emit)
	m.Process(conseq(7, 200), 200, s.emit)
	if len(s.out) != 2 {
		t.Fatalf("out = %+v", s.out)
	}
	if s.out[1].TS != 200 {
		t.Fatalf("well-ordered consequence mutated: %+v", s.out[1])
	}
	st := m.Stats()
	if st.Matched != 1 || st.Tachyons != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConsequenceHeldUntilReason(t *testing.T) {
	m := New(Config{})
	var s sink
	m.Process(conseq(9, 150), 150, s.emit)
	if len(s.out) != 0 {
		t.Fatal("consequence emitted before its reason")
	}
	if m.Stats().HeldNow != 1 {
		t.Fatalf("held = %d", m.Stats().HeldNow)
	}
	m.Process(reason(9, 100), 160, s.emit)
	if len(s.out) != 2 {
		t.Fatalf("out = %+v", s.out)
	}
	if s.out[0].Reason != 9 || s.out[1].Conseq != 9 {
		t.Fatalf("order wrong: %+v", s.out)
	}
	// Consequence ts 150 > reason ts 100: no tachyon, no override.
	if s.out[1].TS != 150 || m.Stats().Tachyons != 0 {
		t.Fatalf("unnecessary repair: %+v", s.out[1])
	}
}

func TestTachyonRepairOnHeldConsequence(t *testing.T) {
	var hookReason int64
	var hookConseq uint64
	m := New(Config{OnTachyon: func(rts int64, c *record.Record) {
		hookReason = rts
		hookConseq = c.Conseq
	}})
	var s sink
	// Consequence stamped *before* its reason — the clocks were apart.
	m.Process(conseq(4, 50), 60, s.emit)
	m.Process(reason(4, 100), 110, s.emit)
	if len(s.out) != 2 {
		t.Fatalf("out = %+v", s.out)
	}
	if s.out[1].TS != 101 {
		t.Fatalf("tachyon not overridden: ts = %d, want 101", s.out[1].TS)
	}
	if s.out[1].TS <= s.out[0].TS {
		t.Fatal("consequence still precedes reason")
	}
	if m.Stats().Tachyons != 1 {
		t.Fatalf("tachyons = %d", m.Stats().Tachyons)
	}
	if hookReason != 100 || hookConseq != 4 {
		t.Fatalf("hook saw (%d, %d)", hookReason, hookConseq)
	}
}

func TestTachyonRepairOnLateConsequence(t *testing.T) {
	// Reason first, then a consequence with an older stamp.
	m := New(Config{})
	var s sink
	m.Process(reason(5, 100), 100, s.emit)
	m.Process(conseq(5, 80), 105, s.emit)
	if len(s.out) != 2 || s.out[1].TS != 101 {
		t.Fatalf("out = %+v", s.out)
	}
	st := m.Stats()
	if st.Matched != 1 || st.Tachyons != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultipleConsequencesOneReason(t *testing.T) {
	m := New(Config{})
	var s sink
	m.Process(conseq(3, 10), 10, s.emit)
	m.Process(conseq(3, 20), 20, s.emit)
	m.Process(reason(3, 15), 30, s.emit)
	if len(s.out) != 3 {
		t.Fatalf("out = %+v", s.out)
	}
	// First held conseq (ts 10) is a tachyon, second (ts 20) is not.
	if s.out[1].TS != 16 || s.out[2].TS != 20 {
		t.Fatalf("release order/repair wrong: %d, %d", s.out[1].TS, s.out[2].TS)
	}
	if m.Stats().Tachyons != 1 || m.Stats().Matched != 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestHeldConsequenceTimesOut(t *testing.T) {
	m := New(Config{Timeout: 1000})
	var s sink
	m.Process(conseq(8, 100), 100, s.emit)
	if len(s.out) != 0 {
		t.Fatal("emitted early")
	}
	// Nothing flows; drive time with Tick past the deadline.
	m.Tick(1099, s.emit)
	if len(s.out) != 0 {
		t.Fatal("released before timeout")
	}
	m.Tick(1100, s.emit)
	if len(s.out) != 1 || s.out[0].Conseq != 8 {
		t.Fatalf("timeout release failed: %+v", s.out)
	}
	st := m.Stats()
	if st.HeldTimedOut != 1 || st.HeldNow != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A reason arriving after the timeout matches nothing held.
	m.Process(reason(8, 90), 1200, s.emit)
	if len(s.out) != 2 {
		t.Fatalf("late reason: %+v", s.out)
	}
}

func TestReasonEntryExpires(t *testing.T) {
	m := New(Config{Timeout: 1000})
	var s sink
	m.Process(reason(2, 100), 100, s.emit)
	m.Tick(1101, s.emit)
	if m.Stats().ReasonsExpired != 1 {
		t.Fatalf("reasons expired = %d", m.Stats().ReasonsExpired)
	}
	// A consequence arriving now is held (reason forgotten), not matched.
	m.Process(conseq(2, 50), 1200, s.emit)
	if m.Stats().Matched != 0 || m.Stats().HeldNow != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestReasonRefreshExtendsLifetime(t *testing.T) {
	m := New(Config{Timeout: 1000})
	var s sink
	m.Process(reason(2, 100), 100, s.emit)
	m.Process(reason(2, 600), 600, s.emit) // refresh with later ts
	m.Tick(1150, s.emit)                   // past first deadline, not second
	if m.Stats().ReasonsExpired != 0 {
		t.Fatal("refreshed reason expired at stale deadline")
	}
	m.Process(conseq(2, 550), 1200, s.emit)
	if m.Stats().Matched != 1 {
		t.Fatal("refreshed reason not matched")
	}
}

func TestFlushReleasesHeld(t *testing.T) {
	m := New(Config{})
	var s sink
	m.Process(conseq(1, 10), 10, s.emit)
	m.Process(conseq(2, 20), 20, s.emit)
	m.Flush(s.emit)
	if len(s.out) != 2 || m.Stats().HeldNow != 0 {
		t.Fatalf("flush: %+v", s.out)
	}
}

func TestRepairedRecordKeepsPayload(t *testing.T) {
	m := New(Config{})
	var s sink
	c := record.New(2, record.TSVal(50), record.ConseqVal(4), record.I32Val(77))
	m.Process(c, 60, s.emit)
	m.Process(reason(4, 100), 110, s.emit)
	got := s.out[1]
	if got.Fields[2].Int() != 77 {
		t.Fatalf("payload lost in repair: %+v", got)
	}
	if got.Fields[0].Int() != 101 {
		t.Fatalf("TS field not patched in place: %+v", got.Fields)
	}
}

func TestStatsProcessedCount(t *testing.T) {
	m := New(Config{})
	var s sink
	for i := 0; i < 5; i++ {
		m.Process(plain(int64(i)), int64(i), s.emit)
	}
	if m.Stats().Processed != 5 {
		t.Fatalf("processed = %d", m.Stats().Processed)
	}
}

func BenchmarkProcessPlain(b *testing.B) {
	m := New(Config{})
	r := plain(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Process(r, int64(i), func(record.Record) {})
	}
}

func BenchmarkProcessCausalPair(b *testing.B) {
	m := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		ts := int64(i * 10)
		m.Process(reason(id, ts), ts, func(record.Record) {})
		m.Process(conseq(id, ts+5), ts+5, func(record.Record) {})
	}
}
