package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioSpec hardens the spec parser: arbitrary bytes must never
// panic, and any spec that parses must survive a marshal→reparse round
// trip (the validator is deterministic and marshalling loses nothing the
// validator checks).
func FuzzScenarioSpec(f *testing.F) {
	seed := [][]byte{
		[]byte(`{}`),
		[]byte(`{"name":"m"}`),
		[]byte(`not json at all`),
		[]byte(`{"name":"m","workloads":[{"name":"w","shape":"steady"}],` +
			`"topologies":[{"name":"t","nodes":1}],` +
			`"clocks":[{"name":"c"}],"faults":[{"name":"f"}]}`),
		[]byte(`{"name":"m","seed":18446744073709551615,` +
			`"defaults":{"sorter_initial_t_micros":500000},` +
			`"workloads":[{"name":"w","shape":"causal","events":600,"think_micros":50}],` +
			`"topologies":[{"name":"t","nodes":3,"sensors_per_node":2}],` +
			`"clocks":[{"name":"c","offset_spread_micros":5000,"drift_spread_ppm":100,` +
			`"noise_mean_micros":20,"sync_period_ms":50}],` +
			`"faults":[{"name":"f","script":[{"at_ms":10,"op":"cut","nodes":[0,1]}]}]}`),
		[]byte(`{"name":"m","workloads":[{"name":"w","shape":"hotskew","hot_share":2}],` +
			`"topologies":[{"name":"t","nodes":1}],"clocks":[{"name":"c"}],"faults":[{"name":"f"}]}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMatrix(data)
		if err != nil {
			return
		}
		// A parsed matrix is valid by construction; exercising the
		// derived accessors must not panic either.
		for _, cell := range m.Expand() {
			cell := cell
			_ = cell.Name()
			_ = cell.Seed()
			_ = cell.Params()
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("valid matrix failed to marshal: %v", err)
		}
		if _, err := ParseMatrix(out); err != nil {
			t.Fatalf("marshal→reparse of a valid matrix failed: %v\ninput: %q\nremarshalled: %s", err, data, out)
		}
	})
}
