package scenario

import "testing"

// TestSetDebugOverridesEnvDefault verifies the programmatic switch the
// briskbench -v flag uses: SetDebug flips the gate both ways regardless
// of what SCEN_DEBUG initialized it to.
func TestSetDebugOverridesEnvDefault(t *testing.T) {
	orig := DebugEnabled()
	defer SetDebug(orig)
	SetDebug(true)
	if !DebugEnabled() {
		t.Fatal("SetDebug(true) did not enable diagnostics")
	}
	SetDebug(false)
	if DebugEnabled() {
		t.Fatal("SetDebug(false) did not disable diagnostics")
	}
}
