package scenario

import (
	"testing"
	"time"
)

// TestRunCellRelayedSteady is the federation smoke: two leaves attach to
// one relay, the relay forwards to the root, and every standing contract
// — conservation, monotone emission, loss accounting, per-source FIFO —
// must hold on the root's merged output exactly as in the direct
// topology.
func TestRunCellRelayedSteady(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 400},
		Topology{Name: "t", Nodes: 2, Relays: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
	if res.Produced != 800 || res.Emitted != 800 {
		t.Fatalf("produced=%d emitted=%d, want 800/800", res.Produced, res.Emitted)
	}
	if res.Relays != 1 {
		t.Fatalf("relays=%d not recorded in result", res.Relays)
	}
}

// TestRunCellTwoRelays splits four leaves across two relays: origin ids
// must stay globally unique (NodeBase spacing) or the conservation and
// FIFO checks — keyed on the emitted node id — would collide.
func TestRunCellTwoRelays(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeBursty, Events: 256, BurstLen: 32},
		Topology{Name: "t", Nodes: 4, Relays: 2},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
}

// TestRunCellRelayedSynced runs two hops of skewed clocks with both sync
// masters on: leaves converge to their relay's frame and relays to the
// root's, so the composed residual (leaf skew + leaf correction + relay
// correction) must come out far below the raw offset spread.
func TestRunCellRelayedSynced(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 2500, Rate: 30000,
			Params: Params{SorterInitialTMicros: 100_000}},
		Topology{Name: "t", Nodes: 2, Relays: 1},
		ClockRegime{Name: "c", OffsetSpreadMicros: 20_000, SyncPeriodMS: 10},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
	if res.MaxAbsSkewMicros >= 20_000 {
		t.Fatalf("composed residual skew %dµs not reduced below the 20000µs spread", res.MaxAbsSkewMicros)
	}
}

// TestRunCellRelayedOverload bounds both tiers' sorters and the spill
// queues, forcing loss markers at the leaves AND the relay: the composed
// loss contract (root marker coverage == sensors + relays + root marked)
// is what's under test. Monotone is advisory here, as in direct
// overload cells.
func TestRunCellRelayedOverload(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 1500,
			Params: Params{SorterMaxBuffered: 100, SpillBytes: 8192,
				BatchBytes: 1024, SorterInitialTMicros: 50_000}},
		Topology{Name: "t", Nodes: 2, Relays: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	if !res.Passed() {
		t.Fatalf("relayed overload cell failed: %v (contracts %v)", res.Failures, res.Contracts)
	}
	for _, name := range []string{ContractConservation, ContractLoss, ContractFIFO} {
		if ok, present := res.Contracts[name]; !present || !ok {
			t.Errorf("contract %q = (%v, present=%v), want held", name, ok, present)
		}
	}
}

// TestRunCellRelayedCutRecovers cuts the leaf links mid-load: the leaves
// resume against the relay and nothing is lost end to end.
func TestRunCellRelayedCutRecovers(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 600, Rate: 20000,
			Params: Params{SorterInitialTMicros: 500_000}},
		Topology{Name: "t", Nodes: 2, Relays: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "cut", Script: []FaultStep{{AtMS: 8, Op: OpCut}}},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
}
