package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"brisk/internal/clocksync"
	"brisk/internal/des"
	"brisk/internal/exs"
	"brisk/internal/faultnet"
	"brisk/internal/ism"
	"brisk/internal/ols"
	"brisk/internal/record"
	"brisk/internal/relay"
	"brisk/internal/sensor"
	"brisk/internal/shm"
	"brisk/internal/vclock"
	"brisk/internal/workload"
)

// Event-class bytes the drivers stamp, one base per shape so a record's
// provenance is readable in traces. Multi-sensor shapes add the sensor
// index to the base.
const (
	evSteady  = 10
	evBursty  = 30
	evDiurnal = 50
	evHotSkew = 70
	evDelayed = 80
	evReason  = 90 // causal consequence uses evReason+1
)

// Contract names reported per cell.
const (
	ContractConservation = "conservation" // multiset conservation per source
	ContractMonotone     = "monotone"     // monotone TS emission (markers exempt)
	ContractLoss         = "loss"         // acked ⇒ emitted or loss-marker
	ContractFIFO         = "fifo"         // per-source order preserved
	ContractProbeBudget  = "probe-budget" // sync probe RTTs within the cell's budget
)

// RunOptions configures a matrix run.
type RunOptions struct {
	Filter Filter
	// Timeout overrides every cell's timeout when nonzero.
	Timeout time.Duration
	// Logf receives one progress line per cell; nil means silent.
	Logf func(format string, args ...any)
}

// RunMatrices expands, filters and runs every cell of the given matrices,
// in order, and collects the results into a Report.
func RunMatrices(ms []*Matrix, opt RunOptions) *Report {
	rep := NewReport()
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, m := range ms {
		if !opt.Filter.MatchMatrix(m) {
			continue
		}
		for _, cell := range m.Expand() {
			cell := cell
			if !opt.Filter.MatchCell(&cell) {
				continue
			}
			res := RunCell(&cell, opt.Timeout)
			rep.Add(res)
			status := "ok"
			if len(res.Failures) > 0 {
				status = "FAIL: " + res.Failures[0]
			}
			logf("%-60s %8.0f rec/s  p99=%6.0fµs  markers=%d  %s",
				res.Cell, res.RecordsPerSec, res.EmitLatencyP99Micros, res.Markers, status)
		}
	}
	return rep
}

// ident names one produced record uniquely within a cell.
type ident struct {
	node int32
	key  uint64
}

// cellNode is one simulated node's wiring.
type cellNode struct {
	proxy     *faultnet.Proxy
	region    *shm.Region
	exs       *exs.EXS
	sensors   []*sensor.Sensor
	drift     *vclock.Drift  // nil when the regime has no offset/drift
	manual    *vclock.Manual // delayed shape only
	corrected *vclock.Corrected
	produced  uint64 // notices accepted into rings
	attempted uint64 // notices offered (accepted + refused)
}

// RunCell runs one cell end to end and returns its result. It never
// panics on pipeline trouble; failures are reported in the result.
func RunCell(c *Cell, timeoutOverride time.Duration) (res CellResult) {
	params := c.Params()
	timeout := time.Duration(params.TimeoutS) * time.Second
	if timeoutOverride > 0 {
		timeout = timeoutOverride
	}
	res = CellResult{
		Cell:     c.Name(),
		Matrix:   c.Matrix.Name,
		Workload: c.Workload.Name,
		Topology: c.Topology.Name,
		Clock:    c.Clock.Name,
		Fault:    c.Fault.Name,
		Seed:     c.Seed(),
		Contracts: map[string]bool{
			ContractConservation: false,
			ContractMonotone:     false,
			ContractLoss:         false,
			ContractFIFO:         false,
		},
	}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}
	quiet := func(f string, a ...any) {
		if DebugEnabled() {
			fmt.Fprintf(os.Stderr, f+"\n", a...)
		}
	}

	events := c.Workload.Events
	if events == 0 {
		events = 1000
	}
	sensorsPerNode := c.Topology.SensorsPerNode
	if sensorsPerNode == 0 {
		sensorsPerNode = 1
	}
	switch c.Workload.Shape {
	case ShapeCausal:
		sensorsPerNode = 2
	case ShapeDelayed:
		sensorsPerNode = 1
	}
	// Upper bound on data records a cell can emit, for buffer sizing.
	expect := events * c.Topology.Nodes * sensorsPerNode
	if c.Workload.Shape == ShapeCausal {
		expect = 2 * events * c.Topology.Nodes
	}

	// Composed sorter window: a relayed record dwells in its relay's
	// sorter for up to that tier's window before it is forwarded, so the
	// root must tolerate that much extra lateness on top of the leaf
	// lateness the base window covers — otherwise the interleave of two
	// relays' (individually monotone) streams inverts. One relay hop
	// therefore doubles the root window, plus shipping slack.
	rootInitialT := params.SorterInitialTMicros
	if c.Topology.Relays > 0 {
		rootInitialT = 2*params.SorterInitialTMicros +
			int64(4*(params.MergeIntervalMS+params.FlushIntervalMS)+10)*1000
	}

	// Synchronization configuration shared by the root and relay masters:
	// fixed-cadence rounds by default; model-based probe scheduling when
	// the regime sets an uncertainty bound.
	syncCfg := clocksync.Config{
		UncertaintyBound: c.Clock.SyncUncertaintyUS,
		MinProbeInterval: int64(c.Clock.SyncMinProbeMS) * 1000,
		MaxProbeInterval: int64(c.Clock.SyncMaxProbeMS) * 1000,
	}

	mgr, err := ism.New(ism.Config{
		Addr: "127.0.0.1:0",
		Sorter: ols.Config{
			InitialT:    rootInitialT,
			MaxBuffered: params.SorterMaxBuffered,
			SourceQuota: params.SorterSourceQuota,
		},
		MergeInterval:     time.Duration(params.MergeIntervalMS) * time.Millisecond,
		BufferRecords:     2*expect + 8192,
		HeartbeatInterval: 250 * time.Millisecond,
		SyncPeriod:        time.Duration(c.Clock.SyncPeriodMS) * time.Millisecond,
		Sync:              syncCfg,
		Logf:              quiet,
	})
	if err != nil {
		fail("manager: %v", err)
		return res
	}
	mgr.Start()
	defer mgr.Close()

	rng := des.NewRNG(c.Seed())

	// Federation tier: Relays intermediate managers, each owning the
	// nodes round-robin-assigned to it and forwarding its merged stream
	// to the root. Relay clocks draw from the same regime stream as node
	// clocks, so a relayed cell exercises two hops of skew. NodeBase
	// spacing keeps forwarded origin ids globally unique across relays.
	relays := c.Topology.Relays
	relayTier := make([]*relay.Relay, 0, relays)
	relayDrift := make([]*vclock.Drift, relays)
	for r := 0; r < relays; r++ {
		offset := rng.Int63n(2*c.Clock.OffsetSpreadMicros+1) - c.Clock.OffsetSpreadMicros
		driftPPM := (rng.Float64()*2 - 1) * c.Clock.DriftSpreadPPM
		var raw vclock.Clock = vclock.System{}
		if c.Clock.OffsetSpreadMicros > 0 || c.Clock.DriftSpreadPPM > 0 {
			relayDrift[r] = vclock.NewDrift(vclock.System{}, offset, driftPPM)
			raw = relayDrift[r]
		}
		rl, err := relay.New(relay.Config{
			Addr:     "127.0.0.1:0",
			Parent:   mgr.Addr(),
			Name:     fmt.Sprintf("%s/relay%d", c.Name(), r),
			NodeBase: int32(r * 1000),
			Clock:    raw,
			ISM: ism.Config{
				Sorter: ols.Config{
					InitialT:    params.SorterInitialTMicros,
					MaxBuffered: params.SorterMaxBuffered,
					SourceQuota: params.SorterSourceQuota,
				},
				MergeInterval:     time.Duration(params.MergeIntervalMS) * time.Millisecond,
				BufferRecords:     2*expect + 8192,
				HeartbeatInterval: 250 * time.Millisecond,
				SyncPeriod:        time.Duration(c.Clock.SyncPeriodMS) * time.Millisecond,
				Sync:              syncCfg,
				Logf:              quiet,
			},
			FlushInterval: time.Duration(params.FlushIntervalMS) * time.Millisecond,
			// Reuse the spill bound so overload cells evict (and mark) at
			// the relay tier too. Never give up on the parent: a dead
			// relay discards its loss accounting by design.
			QueueBytes:           params.SpillBytes,
			MaxReconnectAttempts: -1,
			Logf:                 quiet,
		})
		if err != nil {
			fail("relay %d: %v", r, err)
			return res
		}
		defer rl.Close()
		relayTier = append(relayTier, rl)
	}
	attachAddr := func(i int) string {
		if relays > 0 {
			return relayTier[i%relays].Addr()
		}
		return mgr.Addr()
	}

	nodes := make([]*cellNode, c.Topology.Nodes)
	for i := range nodes {
		n := &cellNode{}
		// Draw the node's clock regime from the cell stream. The draws
		// happen for every node in every regime so cells with the same
		// seed and topology assign identical per-node streams regardless
		// of regime.
		offset := rng.Int63n(2*c.Clock.OffsetSpreadMicros+1) - c.Clock.OffsetSpreadMicros
		driftPPM := (rng.Float64()*2 - 1) * c.Clock.DriftSpreadPPM
		if i < len(c.Clock.NodeDriftPPM) {
			// Pinned drift: the draw above still happens so the regime's
			// stream stays aligned with unpinned cells of the same seed.
			driftPPM = c.Clock.NodeDriftPPM[i]
		}
		noiseSeed := rng.Uint64()
		var raw vclock.Clock = vclock.System{}
		if c.Workload.Shape == ShapeDelayed {
			n.manual = vclock.NewManual(time.Now().UnixMicro())
			raw = n.manual
		} else if c.Clock.OffsetSpreadMicros > 0 || c.Clock.DriftSpreadPPM > 0 {
			n.drift = vclock.NewDrift(vclock.System{}, offset, driftPPM)
			raw = n.drift
		}
		if c.Clock.NoiseMeanMicros > 0 && c.Workload.Shape != ShapeDelayed {
			raw = vclock.NewNoisy(raw, c.Clock.NoiseMeanMicros, noiseSeed)
		}
		n.corrected = vclock.NewCorrected(raw)

		proxy, err := faultnet.Listen(attachAddr(i))
		if err != nil {
			fail("node %d proxy: %v", i, err)
			return res
		}
		n.proxy = proxy
		defer proxy.Close()

		n.region = shm.NewRegion()
		e, err := exs.Dial(exs.Config{
			ManagerAddr:   proxy.Addr(),
			NodeName:      fmt.Sprintf("%s/n%d", c.Name(), i),
			Region:        n.region,
			Clock:         n.corrected,
			BatchBytes:    params.BatchBytes,
			FlushInterval: time.Duration(params.FlushIntervalMS) * time.Millisecond,
			PollInterval:  200 * time.Microsecond,
			ReconnectBase: 2 * time.Millisecond,
			ReconnectMax:  20 * time.Millisecond,
			// Never give up: a dead sensor discards its pending loss
			// accounting, which would break the loss contract by design.
			MaxReconnectAttempts: -1,
			SpillBytes:           params.SpillBytes,
			Logf:                 quiet,
		})
		if err != nil {
			fail("node %d exs: %v", i, err)
			return res
		}
		n.exs = e
		defer e.Close()

		for s := 0; s < sensorsPerNode; s++ {
			n.sensors = append(n.sensors, sensor.New(n.region, fmt.Sprintf("app%d", s), sensor.Options{
				RingBytes: params.RingBytes,
				Clock:     raw,
			}))
		}
		nodes[i] = n
	}

	// Fault script: steps fire relative to driver start, on their own
	// goroutine. After the script and the drivers finish, every link is
	// healed so the pipeline can drain.
	steps := append([]FaultStep(nil), c.Fault.Script...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtMS < steps[j].AtMS })
	start := time.Now()
	scriptDone := make(chan struct{})
	go func() {
		defer close(scriptDone)
		for _, st := range steps {
			if d := time.Until(start.Add(time.Duration(st.AtMS) * time.Millisecond)); d > 0 {
				time.Sleep(d)
			}
			targets := st.Nodes
			if len(targets) == 0 {
				targets = make([]int, len(nodes))
				for i := range targets {
					targets[i] = i
				}
			}
			for _, idx := range targets {
				if idx >= len(nodes) {
					continue
				}
				p := nodes[idx].proxy
				switch st.Op {
				case OpCut:
					p.CutNow()
				case OpStall:
					p.Stall(true)
				case OpResume:
					p.Stall(false)
				case OpRefuse:
					p.SetAccepting(false)
				case OpAccept:
					p.SetAccepting(true)
				case OpLatency:
					p.SetLatency(time.Duration(st.MS) * time.Millisecond)
				}
			}
		}
	}()

	// Drivers: one goroutine per node. They never retry a refused notice
	// — a refusal is a counted ring drop the EXS folds into loss markers,
	// and a retry would double-count it against conservation.
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *cellNode) {
			defer wg.Done()
			runDriver(c, n, i, events)
		}(i, n)
	}
	wg.Wait()
	<-scriptDone
	elapsedLoad := time.Since(start)

	// Heal every link and flush so the tail (including marker-only
	// batches) can ship.
	for _, n := range nodes {
		n.proxy.SetAccepting(true)
		n.proxy.Stall(false)
		n.proxy.SetLatency(0)
		n.exs.Flush()
	}

	deadline := start.Add(timeout)
	var produced, refused uint64
	for _, n := range nodes {
		produced += n.produced
		for _, s := range n.sensors {
			refused += s.Dropped()
		}
	}

	// Wait for every sensor to drain its queue (manager acked everything
	// it will ever ack), then close them so final batches ship.
	for i, n := range nodes {
		for time.Now().Before(deadline) {
			st := n.exs.Stats()
			if st.Online && st.QueuedBytes == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if st := n.exs.Stats(); !st.Online || st.QueuedBytes != 0 {
			fail("node %d never drained: online=%v queued=%d reconnects=%d", i, st.Online, st.QueuedBytes, st.Reconnects)
		}
	}
	var exsMarked, evicted, creditStalls, reconnects uint64
	var maxSkew int64
	for i, n := range nodes {
		if err := n.exs.Close(); err != nil {
			fail("exs close: %v", err)
		}
		st := n.exs.Stats()
		exsMarked += st.MarkedLost
		evicted += st.Dropped
		creditStalls += st.CreditStalls
		reconnects += st.Reconnects
		if n.drift != nil {
			// Multi-hop composition: a leaf record reaches the root with
			// the leaf's correction (into the relay frame) plus the owning
			// relay's correction (into the root frame) applied on top of
			// its raw skew, so the residual is their sum.
			resid := n.drift.SkewAgainstRef() + n.corrected.Correction()
			if relays > 0 {
				resid += relayTier[i%relays].Clock().Correction()
			}
			if skew := abs64(resid); skew > maxSkew {
				maxSkew = skew
			}
		}
	}
	for r, rl := range relayTier {
		if relayDrift[r] != nil {
			if skew := abs64(relayDrift[r].SkewAgainstRef() + rl.Clock().Correction()); skew > maxSkew {
				maxSkew = skew
			}
		}
	}

	// Drain the merged output, accounting every record.
	extract := identExtractor(c.Workload.Shape)
	seen := make(map[ident]int, expect)
	lastSeq := make(map[ident]uint64) // per (node, stream) FIFO cursor
	var emitted, markerCovered, markers, dup, fifoViolations, orderViolations uint64
	var lastTS int64
	consumed := uint64(0)
	cur := mgr.NewCursor()
	floor := produced + refused
	timedOut := false
	for {
		raw, lost, ok := cur.TryNext()
		if lost > 0 {
			fail("memory-buffer consumer lost %d records", lost)
			break
		}
		if !ok {
			st := mgr.Stats()
			if emitted+markerCovered >= floor && st.SorterBuffered == 0 && consumed == st.Emitted {
				break
			}
			if !time.Now().Before(deadline) {
				timedOut = true
				relayState := ""
				for r, rl := range relayTier {
					relayState += fmt.Sprintf(" relay%d %+v;", r, rl.Stats())
				}
				for i, n := range nodes {
					ns := n.exs.Stats()
					relayState += fmt.Sprintf(" node%d produced=%d sent=%d dropped=%d marked=%d lostOffline=%d ringDropped=%d;",
						i, n.produced, ns.Sent, ns.Dropped, ns.MarkedLost, ns.LostOffline, ns.RingDropped)
				}
				fail("timeout draining: %d emitted + %d marker-covered of %d produced + %d refused (manager %+v;%s)",
					emitted, markerCovered, produced, refused, st, relayState)
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		consumed++
		rec, err := ism.DecodeBuffered(raw)
		if err != nil {
			fail("DecodeBuffered: %v", err)
			break
		}
		if record.IsLossMarker(&rec) {
			cnt, first, last, _ := record.LossInfo(&rec)
			if first > last {
				fail("loss marker range inverted: [%d, %d]", first, last)
			}
			markerCovered += cnt
			markers++
			continue
		}
		if rec.TS < lastTS {
			orderViolations++
		} else {
			lastTS = rec.TS
		}
		id, stream, seq, okID := extract(&rec)
		if !okID {
			fail("unrecognized record in output: event=%d node=%d", rec.Event, rec.Node)
			continue
		}
		id.node = rec.Node
		if seen[id]++; seen[id] > 1 {
			dup++
		}
		emitted++
		sk := ident{node: rec.Node, key: stream}
		if prev, ok := lastSeq[sk]; ok && seq <= prev {
			fifoViolations++
		}
		lastSeq[sk] = seq
	}

	// Relay-tier accounting: markers synthesized by a relay's own sorter
	// (ISM.MarkedLost) and by its uplink queue evictions (MarkedLost)
	// both surface as marker records at the root.
	var relayMarked, relayEvicted, relayReconnects uint64
	for _, rl := range relayTier {
		rs := rl.Stats()
		relayMarked += rs.MarkedLost + rs.ISM.MarkedLost
		relayEvicted += rs.Dropped
		relayReconnects += rs.Reconnects
	}

	st := mgr.Stats()
	res.ElapsedMicros = time.Since(start).Microseconds()
	res.LoadMicros = elapsedLoad.Microseconds()
	res.Produced = produced
	res.Refused = refused
	res.Emitted = emitted
	res.MarkerCovered = markerCovered
	res.Markers = markers
	if res.ElapsedMicros > 0 {
		res.RecordsPerSec = float64(emitted) / (float64(res.ElapsedMicros) / 1e6)
	}
	res.EmitLatencyMeanMicros = st.EmitLatencyMeanMicros
	res.EmitLatencyP99Micros = st.EmitLatencyP99Micros
	res.AckDeferred = st.AckDeferred
	res.CreditStalls = creditStalls
	res.Resumes = st.ResumedSessions
	res.DedupedBatches = st.DedupedBatches
	res.Inversions = st.Sorter.Inversions
	res.MaxAbsSkewMicros = maxSkew
	res.SyncProbes = st.SyncProbes
	res.SyncFallbacks = st.SyncFallbacks
	res.Relays = relays
	res.RelayMarkedLost = relayMarked
	res.RelayReconnects = relayReconnects

	if timedOut {
		return res
	}

	// Contract 1 — multiset conservation per source: nothing invented
	// (emitted ≤ produced, no duplicates) and nothing silently lost
	// (every produced or refused record is emitted or marker-covered).
	conserved := dup == 0 && emitted <= produced && emitted+markerCovered >= produced+refused
	res.Contracts[ContractConservation] = conserved
	if !conserved {
		fail("conservation: produced=%d refused=%d emitted=%d dup=%d marker-covered=%d",
			produced, refused, emitted, dup, markerCovered)
	}

	// Contract 2 — monotone emission: data records leave the pipeline in
	// nondecreasing corrected-timestamp order (markers exempt). The
	// shipped regimes keep clock spread + fault lateness inside the
	// sorter window, so this is exact, not statistical — except in
	// deliberate overload cells (bounded sorter): there the ack gate
	// halts sensor drains for as long as the manager stays saturated, so
	// ring dwell (and hence arrival lateness) is unbounded by design and
	// no finite window can keep the guarantee. Those cells report the
	// violation count but are not failed on it.
	res.OrderViolations = orderViolations
	if c.Params().SorterMaxBuffered == 0 {
		res.Contracts[ContractMonotone] = orderViolations == 0
		if orderViolations > 0 {
			fail("monotone: %d order violations (sorter saw %d inversions)", orderViolations, st.Sorter.Inversions)
		}
	} else {
		// Advisory only (see above): drop the preset entry so the cell
		// is judged on the contracts that apply to it.
		delete(res.Contracts, ContractMonotone)
	}

	// Contract 3 — acked ⇒ emitted or loss-marker, composed across tiers:
	// the marker coverage in the output matches what the sensors, the
	// relay tier (its sorters and its uplink queues) and the root manager
	// say they marked. Exact equality — except when spill or uplink
	// evictions occurred: an evicted batch may itself have carried a
	// marker record, whose coverage folds back into the pending-loss
	// accumulator and so is marked a second time; the marked totals then
	// legitimately over-count what can surface. The output can never
	// cover MORE than was marked (markers are a subset of shipped ones),
	// and conservation pins the floor — so markers aggregate across hops
	// but never disappear.
	marked := exsMarked + relayMarked + st.MarkedLost
	lossOK := markerCovered == marked
	if evicted > 0 || relayEvicted > 0 {
		lossOK = markerCovered <= marked
	}
	res.Contracts[ContractLoss] = lossOK
	if !lossOK {
		fail("loss accounting: output markers cover %d, sensors marked %d + relays marked %d + manager marked %d (evicted %d+%d)",
			markerCovered, exsMarked, relayMarked, st.MarkedLost, evicted, relayEvicted)
	}

	// Auxiliary — per-source FIFO: each source's emitted subsequence
	// keeps its issue order (holes from drops allowed).
	res.Contracts[ContractFIFO] = fifoViolations == 0
	if fifoViolations > 0 {
		fail("fifo: %d per-source order violations", fifoViolations)
	}

	// Probe-budget contract (only in cells that declare one): the root
	// master's probe RTTs stay within the per-node budget — the cell-level
	// assertion that model-based scheduling actually pays for itself.
	if budget := c.Clock.MaxProbesPerNode; budget > 0 {
		limit := uint64(budget) * uint64(c.Topology.Nodes)
		ok := st.SyncProbes <= limit
		res.Contracts[ContractProbeBudget] = ok
		if !ok {
			fail("probe budget: %d probe RTTs > %d (%d per node × %d nodes)",
				st.SyncProbes, limit, budget, c.Topology.Nodes)
		}
	}
	return res
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// runDriver issues node i's workload, recording produced/attempted counts.
func runDriver(c *Cell, n *cellNode, i int, events int) {
	seed := c.Seed() ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
	switch c.Workload.Shape {
	case ShapeSteady:
		for si, s := range n.sensors {
			lp := &workload.Looper{Sensor: s, Event: uint8(evSteady + si), Rate: c.Workload.Rate}
			n.produced += uint64(lp.Run(events))
			n.attempted += uint64(events)
		}
	case ShapeBursty:
		burstLen := c.Workload.BurstLen
		if burstLen == 0 {
			burstLen = 64
		}
		gap := time.Duration(c.Workload.GapMS) * time.Millisecond
		if c.Workload.GapMS == 0 {
			gap = time.Millisecond
		}
		bursts := events / burstLen
		if bursts < 1 {
			bursts = 1
		}
		for si, s := range n.sensors {
			b := &workload.Bursty{Sensor: s, Event: uint8(evBursty + si), BurstLen: burstLen, Gap: gap,
				Seed: seed + uint64(si)}
			n.produced += uint64(b.Run(bursts))
			n.attempted += uint64(b.Issued)
		}
	case ShapeDiurnal:
		period := time.Duration(c.Workload.PeriodMS) * time.Millisecond
		if c.Workload.PeriodMS == 0 {
			period = 200 * time.Millisecond
		}
		for si, s := range n.sensors {
			d := &workload.Diurnal{Sensor: s, Event: uint8(evDiurnal + si),
				FloorRate: c.Workload.Rate, PeakRate: c.Workload.PeakRate, Period: period}
			n.produced += uint64(d.Run(events))
			n.attempted += uint64(events)
		}
	case ShapeHotSkew:
		share := c.Workload.HotShare
		if share == 0 {
			share = 0.7
		}
		h := &workload.HotSkew{Sensors: n.sensors, Event: evHotSkew, HotShare: share, Seed: seed}
		n.produced += uint64(h.Run(events))
		n.attempted += uint64(events)
	case ShapeDelayed:
		meanGap := c.Workload.MeanGapMicros
		if meanGap == 0 {
			meanGap = 200
		}
		evs := workload.GenDelayedStreams([]workload.StreamSpec{{
			Source:  1,
			MeanGap: meanGap,
			Delay: workload.DelayParams{
				Base:       c.Workload.DelayBaseMicros,
				JitterMean: c.Workload.DelayJitterMicros,
				SpikeProb:  c.Workload.SpikeProb,
				SpikeMean:  c.Workload.SpikeMeanMicros,
			},
		}}, events, seed)
		epoch := n.manual.NowMicros()
		wall := time.Now()
		s := n.sensors[0]
		for j, ev := range evs {
			// Pace by arrival, stamp by creation: the record reaches the
			// manager later than its timestamp suggests — E7's
			// artificially delayed streams.
			if d := time.Until(wall.Add(time.Duration(ev.Arrival) * time.Microsecond)); d > 0 {
				time.Sleep(d)
			}
			n.manual.Set(epoch + ev.TS)
			n.attempted++
			if s.Notice2i(evDelayed, int32(j), 0) {
				n.produced++
			}
		}
		// Park the clock past every stamp so nothing else (the EXS's
		// correction layer reads it too) observes time running backwards.
		n.manual.Set(epoch + evs[len(evs)-1].Arrival + 1)
	case ShapeCausal:
		cp := &workload.CausalPair{
			Reasoner:   n.sensors[0],
			Consequent: n.sensors[1],
			Event:      evReason,
			Think:      time.Duration(c.Workload.ThinkMicros) * time.Microsecond,
		}
		for j := 0; j < events; j++ {
			cp.Fire()
		}
		n.produced += cp.Accepted
		n.attempted += uint64(2 * events)
	}
}

// identExtractor returns the per-shape record identity function: a unique
// key per produced record, plus a (stream, seq) pair for the per-source
// FIFO check. ok is false for records no driver of this shape produced.
func identExtractor(shape string) func(*record.Record) (id ident, stream, seq uint64, ok bool) {
	fieldKey := func(r *record.Record, idx int) (uint64, bool) {
		// Fields[0] is the auto-embedded TS; payload starts at 1.
		if idx >= len(r.Fields) {
			return 0, false
		}
		return uint64(r.Fields[idx].Int()), true
	}
	switch shape {
	case ShapeSteady, ShapeDiurnal, ShapeDelayed:
		return func(r *record.Record) (ident, uint64, uint64, bool) {
			seq, ok := fieldKey(r, 1)
			if !ok {
				return ident{}, 0, 0, false
			}
			stream := uint64(r.Event)
			return ident{key: stream<<40 | seq}, stream, seq, true
		}
	case ShapeBursty:
		return func(r *record.Record) (ident, uint64, uint64, bool) {
			k, ok1 := fieldKey(r, 1)
			i, ok2 := fieldKey(r, 2)
			if !ok1 || !ok2 {
				return ident{}, 0, 0, false
			}
			stream := uint64(r.Event)
			seq := k<<20 | i
			return ident{key: stream<<44 | seq}, stream, seq, true
		}
	case ShapeHotSkew:
		return func(r *record.Record) (ident, uint64, uint64, bool) {
			seq, ok1 := fieldKey(r, 1)
			idx, ok2 := fieldKey(r, 2)
			if !ok1 || !ok2 {
				return ident{}, 0, 0, false
			}
			return ident{key: idx<<40 | seq}, idx, seq, true
		}
	case ShapeCausal:
		return func(r *record.Record) (ident, uint64, uint64, bool) {
			switch {
			case r.Reason != 0:
				return ident{key: r.Reason}, 0, r.Reason, true
			case r.Conseq != 0:
				return ident{key: 1<<62 | r.Conseq}, 1, r.Conseq, true
			}
			return ident{}, 0, 0, false
		}
	default:
		return func(r *record.Record) (ident, uint64, uint64, bool) {
			return ident{}, 0, 0, false
		}
	}
}
