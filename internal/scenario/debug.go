package scenario

import (
	"os"
	"sync/atomic"
)

// debugOn gates the runner's per-cell pipeline diagnostics. It is
// initialized from the SCEN_DEBUG environment variable (any non-empty
// value enables it; see EXPERIMENTS.md) and flipped programmatically by
// SetDebug — `briskbench matrix -v` uses the latter, so verbosity is a
// first-class flag rather than a magic env read at each call site.
var debugOn atomic.Bool

func init() {
	if os.Getenv("SCEN_DEBUG") != "" {
		debugOn.Store(true)
	}
}

// SetDebug enables or disables the runner's per-cell pipeline
// diagnostics (EXS/ISM logs, cell progress) on stderr. It overrides the
// SCEN_DEBUG environment default for the rest of the process.
func SetDebug(on bool) { debugOn.Store(on) }

// DebugEnabled reports whether per-cell diagnostics are on.
func DebugEnabled() bool { return debugOn.Load() }
