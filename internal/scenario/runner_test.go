package scenario

import (
	"path/filepath"
	"testing"
	"time"
)

// liveMatrix builds a tiny in-code matrix for live-pipeline tests. Cells
// stay small so the suite remains fast under -race.
func liveMatrix(w Workload, tp Topology, ck ClockRegime, f FaultScript) *Cell {
	m := &Matrix{
		Name:       "live",
		Seed:       7,
		Workloads:  []Workload{w},
		Topologies: []Topology{tp},
		Clocks:     []ClockRegime{ck},
		Faults:     []FaultScript{f},
	}
	cells := m.Expand()
	return &cells[0]
}

func requirePass(t *testing.T, res CellResult) {
	t.Helper()
	if !res.Passed() {
		t.Fatalf("cell %s failed: %v", res.Cell, res.Failures)
	}
	for _, name := range []string{ContractConservation, ContractMonotone, ContractLoss, ContractFIFO} {
		ok, present := res.Contracts[name]
		if !present {
			t.Errorf("contract %q missing from result", name)
		} else if !ok {
			t.Errorf("contract %q failed: %v", name, res.Failures)
		}
	}
}

func TestRunCellSteady(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 400},
		Topology{Name: "t", Nodes: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
	if res.Produced != 400 || res.Emitted != 400 {
		t.Fatalf("produced=%d emitted=%d, want 400/400", res.Produced, res.Emitted)
	}
	if res.RecordsPerSec <= 0 {
		t.Error("records_per_sec not populated")
	}
}

// TestRunCellMultiSensorNode drives two sensor rings on one node — the
// configuration that requires the EXS's timestamp-ordered ring merge for
// the monotone contract to hold exactly.
func TestRunCellMultiSensorNode(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 300},
		Topology{Name: "t", Nodes: 1, SensorsPerNode: 2},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
	if res.Produced != 600 {
		t.Fatalf("produced=%d, want 600 (300 events × 2 sensors)", res.Produced)
	}
}

func TestRunCellCutRecovers(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 600, Rate: 20000,
			Params: Params{SorterInitialTMicros: 500_000}},
		Topology{Name: "t", Nodes: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "cut", Script: []FaultStep{{AtMS: 8, Op: OpCut}}},
	)
	res := RunCell(cell, 30*time.Second)
	requirePass(t, res)
}

func TestRunCellDeterministicAcrossRuns(t *testing.T) {
	mk := func() CellResult {
		return RunCell(liveMatrix(
			Workload{Name: "w", Shape: ShapeBursty, Events: 512, BurstLen: 32},
			Topology{Name: "t", Nodes: 2},
			ClockRegime{Name: "c", OffsetSpreadMicros: 1000},
			FaultScript{Name: "f"},
		), 30*time.Second)
	}
	a, b := mk(), mk()
	requirePass(t, a)
	requirePass(t, b)
	if a.Seed != b.Seed || a.Produced != b.Produced || a.Emitted != b.Emitted {
		t.Fatalf("same cell diverged across runs: %+v vs %+v", a, b)
	}
}

// TestRunCellOverloadProfile exercises a bounded-sorter cell: the
// monotone contract is advisory there (the ack gate makes lateness
// unbounded), so the cell must be judged only on conservation, loss
// accounting and FIFO.
func TestRunCellOverloadProfile(t *testing.T) {
	cell := liveMatrix(
		Workload{Name: "w", Shape: ShapeSteady, Events: 1500,
			Params: Params{SorterMaxBuffered: 100, SpillBytes: 8192,
				BatchBytes: 1024, SorterInitialTMicros: 50_000}},
		Topology{Name: "t", Nodes: 1},
		ClockRegime{Name: "c"},
		FaultScript{Name: "f"},
	)
	res := RunCell(cell, 30*time.Second)
	if !res.Passed() {
		t.Fatalf("overload cell failed: %v (contracts %v)", res.Failures, res.Contracts)
	}
	if _, present := res.Contracts[ContractMonotone]; present {
		t.Error("monotone contract asserted on a bounded-sorter cell")
	}
	for _, name := range []string{ContractConservation, ContractLoss, ContractFIFO} {
		if ok, present := res.Contracts[name]; !present || !ok {
			t.Errorf("contract %q = (%v, present=%v), want held", name, ok, present)
		}
	}
}

func TestRunMatricesFiltersAndReports(t *testing.T) {
	m := &Matrix{
		Name: "mini",
		Seed: 9,
		Workloads: []Workload{
			{Name: "a", Shape: ShapeSteady, Events: 150},
			{Name: "b", Shape: ShapeSteady, Events: 150},
		},
		Topologies: []Topology{{Name: "t", Nodes: 1}},
		Clocks:     []ClockRegime{{Name: "c"}},
		Faults:     []FaultScript{{Name: "f"}},
	}
	rep := RunMatrices([]*Matrix{m}, RunOptions{
		Filter:  Filter{Workloads: []string{"a"}},
		Timeout: 30 * time.Second,
	})
	if len(rep.Cells) != 1 || rep.Cells[0].Workload != "a" {
		t.Fatalf("filter selected wrong cells: %+v", rep.Cells)
	}
	if rep.Failed != 0 {
		t.Fatalf("mini matrix failed: %+v", rep.Cells[0].Failures)
	}
	if rep.Schema != ReportSchema || rep.Env.GOMAXPROCS == 0 {
		t.Error("report env/schema not stamped")
	}

	path := filepath.Join(t.TempDir(), "rep.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Cells[0].Cell != rep.Cells[0].Cell {
		t.Fatal("report did not round-trip through disk")
	}
}
