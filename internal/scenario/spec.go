// Package scenario is BRISK's declarative scenario matrix: one JSON spec
// names a workload shape, a topology, a clock regime and a fault script,
// and the harness runs the full cross-product of those axes against a
// real EXS↔ISM pipeline. Every cell produces a RunStatistics-style report
// (throughput, emit-latency quantiles, credit stalls, loss markers, max
// skew) and is simultaneously a property test: the three standing
// contracts of the pipeline — multiset conservation per source, monotone
// emission, and "an acked record is either emitted or represented by a
// loss marker" — are asserted inside the harness for every cell.
//
// The paper's evaluation (E1–E8) is a hand-picked set of such
// combinations; the matrix turns them into data. A scenario file is a
// Matrix; `briskbench matrix` loads a directory of them, expands the
// cross-products, applies include/exclude filters, runs the cells with
// deterministic per-cell seeds, and writes BENCH_scenarios.json.
package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Shapes a workload may take. Each reuses a generator from
// internal/workload.
const (
	ShapeSteady  = "steady"  // fixed-rate looper (E1–E3)
	ShapeBursty  = "bursty"  // bursts with idle gaps, seeded lengths
	ShapeDiurnal = "diurnal" // raised-cosine rate ramp, a compressed day
	ShapeHotSkew = "hotskew" // one hot source among several per node
	ShapeDelayed = "delayed" // artificially delayed streams (E7)
	ShapeCausal  = "causal"  // reason/consequence pairs
)

var validShapes = map[string]bool{
	ShapeSteady: true, ShapeBursty: true, ShapeDiurnal: true,
	ShapeHotSkew: true, ShapeDelayed: true, ShapeCausal: true,
}

// Fault-script operations, applied to a node's faultnet proxy.
const (
	OpCut     = "cut"     // sever live connections now
	OpStall   = "stall"   // stop relaying bytes (connection stays up)
	OpResume  = "resume"  // undo stall
	OpRefuse  = "refuse"  // refuse new connections
	OpAccept  = "accept"  // undo refuse
	OpLatency = "latency" // add per-write relay latency of MS milliseconds
)

var validOps = map[string]bool{
	OpCut: true, OpStall: true, OpResume: true,
	OpRefuse: true, OpAccept: true, OpLatency: true,
}

// Params are the pipeline knobs a matrix (or one workload) may tune.
// Zero values mean "use the harness default" noted per field.
type Params struct {
	// SorterInitialTMicros is the OLS initial time frame. Default 20 ms —
	// wide enough to cover the clock spreads and retransmit lateness the
	// shipped regimes induce, so monotone emission is exact.
	SorterInitialTMicros int64 `json:"sorter_initial_t_micros,omitempty"`
	// SorterMaxBuffered bounds the sorter (0 = unbounded); crossing it
	// engages the ack gate and synthesizes loss markers.
	SorterMaxBuffered int `json:"sorter_max_buffered,omitempty"`
	// SorterSourceQuota bounds any single source's buffered records.
	SorterSourceQuota int `json:"sorter_source_quota,omitempty"`
	// MergeIntervalMS is the manager merge period. Default 1 ms.
	MergeIntervalMS int `json:"merge_interval_ms,omitempty"`
	// FlushIntervalMS is the EXS partial-batch flush bound. Default 1 ms.
	FlushIntervalMS int `json:"flush_interval_ms,omitempty"`
	// BatchBytes is the EXS batch-send threshold. Default 4096.
	BatchBytes int `json:"batch_bytes,omitempty"`
	// SpillBytes bounds the EXS retransmit/spill queue (0 = EXS default).
	// Small values make outages evict batches into loss markers.
	SpillBytes int `json:"spill_bytes,omitempty"`
	// RingBytes is the per-sensor ring capacity. Default 256 KiB.
	RingBytes int `json:"ring_bytes,omitempty"`
	// TimeoutS bounds one cell end to end. Default 30 s.
	TimeoutS int `json:"timeout_s,omitempty"`
}

// merged returns p with any zero field replaced from o.
func (p Params) merged(o Params) Params {
	if p.SorterInitialTMicros == 0 {
		p.SorterInitialTMicros = o.SorterInitialTMicros
	}
	if p.SorterMaxBuffered == 0 {
		p.SorterMaxBuffered = o.SorterMaxBuffered
	}
	if p.SorterSourceQuota == 0 {
		p.SorterSourceQuota = o.SorterSourceQuota
	}
	if p.MergeIntervalMS == 0 {
		p.MergeIntervalMS = o.MergeIntervalMS
	}
	if p.FlushIntervalMS == 0 {
		p.FlushIntervalMS = o.FlushIntervalMS
	}
	if p.BatchBytes == 0 {
		p.BatchBytes = o.BatchBytes
	}
	if p.SpillBytes == 0 {
		p.SpillBytes = o.SpillBytes
	}
	if p.RingBytes == 0 {
		p.RingBytes = o.RingBytes
	}
	if p.TimeoutS == 0 {
		p.TimeoutS = o.TimeoutS
	}
	return p
}

// withDefaults fills the harness defaults documented on Params.
func (p Params) withDefaults() Params {
	return p.merged(Params{
		SorterInitialTMicros: 20_000,
		MergeIntervalMS:      1,
		FlushIntervalMS:      1,
		BatchBytes:           4096,
		RingBytes:            1 << 18,
		TimeoutS:             30,
	})
}

// Workload names one workload shape and its knobs. Only the fields the
// shape reads need be set; Validate rejects shapes missing required ones.
type Workload struct {
	Name  string `json:"name"`
	Shape string `json:"shape"`
	// Events is the event count per sensor (per node for hotskew and
	// delayed, pairs per node for causal). Default 1000.
	Events int `json:"events,omitempty"`
	// Rate is the steady rate, or the diurnal floor rate (events/s);
	// 0 means unpaced for steady.
	Rate int `json:"rate,omitempty"`
	// PeakRate is the diurnal peak rate (events/s).
	PeakRate int `json:"peak_rate,omitempty"`
	// PeriodMS is the diurnal period. Default 200 ms.
	PeriodMS int `json:"period_ms,omitempty"`
	// BurstLen is the bursty mean burst length. Default 64.
	BurstLen int `json:"burst_len,omitempty"`
	// GapMS is the bursty inter-burst gap. Default 1 ms.
	GapMS int `json:"gap_ms,omitempty"`
	// HotShare is the hotskew hot source's share of events. Default 0.7.
	HotShare float64 `json:"hot_share,omitempty"`
	// ThinkMicros is the causal reason→consequence think time.
	ThinkMicros int `json:"think_micros,omitempty"`
	// MeanGapMicros is the delayed-stream mean creation gap. Default 200.
	MeanGapMicros float64 `json:"mean_gap_micros,omitempty"`
	// DelayBaseMicros/DelayJitterMicros/SpikeProb/SpikeMeanMicros shape
	// the delayed-stream delivery delay (see workload.DelayParams).
	DelayBaseMicros   int64   `json:"delay_base_micros,omitempty"`
	DelayJitterMicros float64 `json:"delay_jitter_micros,omitempty"`
	SpikeProb         float64 `json:"spike_prob,omitempty"`
	SpikeMeanMicros   float64 `json:"spike_mean_micros,omitempty"`
	// Params override the matrix defaults for cells of this workload.
	Params Params `json:"params,omitempty"`
}

// Topology is the process layout of a cell: how many EXS nodes attach to
// the manager and how many sensor rings each node's region holds.
type Topology struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	// SensorsPerNode is the ring fan-in per node. Default 1. Causal cells
	// always use two sensors per node (reason and consequence); hotskew
	// spreads its sources across this many.
	SensorsPerNode int `json:"sensors_per_node,omitempty"`
	// Relays inserts a federation tier between the EXS nodes and the
	// manager: this many relay processes each own a share of the nodes
	// (round-robin), run the full manager pipeline against them, and
	// forward their merged streams to the root. 0 (the default) attaches
	// nodes directly; at most 4 relays, and never more relays than nodes.
	Relays int `json:"relays,omitempty"`
}

// ClockRegime describes per-node clock behaviour. Each node draws its
// offset and drift uniformly from the spreads using the cell's seed, so a
// cell's clock assignment is reproducible.
type ClockRegime struct {
	Name string `json:"name"`
	// OffsetSpreadMicros draws each node's initial offset in ±spread.
	OffsetSpreadMicros int64 `json:"offset_spread_micros,omitempty"`
	// DriftSpreadPPM draws each node's frequency error in ±spread ppm.
	DriftSpreadPPM float64 `json:"drift_spread_ppm,omitempty"`
	// NoiseMeanMicros adds exponential read noise of this mean to each
	// node clock (monotone-clamped).
	NoiseMeanMicros float64 `json:"noise_mean_micros,omitempty"`
	// SyncPeriodMS enables the manager's clock-synchronization master at
	// this round period; 0 leaves synchronization off.
	SyncPeriodMS int `json:"sync_period_ms,omitempty"`
	// NodeDriftPPM pins per-node drift rates explicitly: node i uses
	// entry i instead of its DriftSpreadPPM draw (nodes beyond the list
	// still draw). Signed ppm. Lets a cell stage known drift contrasts
	// for the model-based scheduler to learn.
	NodeDriftPPM []float64 `json:"node_drift_ppm,omitempty"`
	// SyncUncertaintyUS switches the cell's synchronization masters
	// (root and relay tiers) to model-based probe scheduling: a slave is
	// probed only when its predicted one-σ offset uncertainty exceeds
	// this bound (µs). 0 keeps the fixed-cadence rounds. Requires
	// SyncPeriodMS > 0.
	SyncUncertaintyUS int64 `json:"sync_uncertainty_us,omitempty"`
	// SyncMinProbeMS / SyncMaxProbeMS bracket the per-slave probe gap
	// under model-based scheduling (defaults from clocksync.Config).
	SyncMinProbeMS int `json:"sync_min_probe_ms,omitempty"`
	SyncMaxProbeMS int `json:"sync_max_probe_ms,omitempty"`
	// MaxProbesPerNode is the cell's probe-budget contract: when set,
	// the root master must issue at most this many probe RTTs per node
	// over the whole cell, asserted like the pipeline contracts.
	// Requires SyncPeriodMS > 0.
	MaxProbesPerNode int `json:"max_probes_per_node,omitempty"`
}

// FaultStep is one scripted fault action, applied AtMS milliseconds after
// the cell's drivers start.
type FaultStep struct {
	AtMS int    `json:"at_ms"`
	Op   string `json:"op"`
	// MS is the latency value for the "latency" op.
	MS int `json:"ms,omitempty"`
	// Nodes selects which node links the step hits (indices into the
	// topology); empty means all. Indices beyond the cell's node count
	// are ignored, so one script crosses topologies of different sizes.
	Nodes []int `json:"nodes,omitempty"`
}

// FaultScript is a named sequence of fault steps. An empty script is the
// fault-free baseline.
type FaultScript struct {
	Name   string      `json:"name"`
	Script []FaultStep `json:"script,omitempty"`
}

// Matrix is one scenario file: the axes whose cross-product the harness
// runs, plus shared defaults.
type Matrix struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Tags        []string      `json:"tags,omitempty"`
	Seed        uint64        `json:"seed,omitempty"`
	Defaults    Params        `json:"defaults,omitempty"`
	Workloads   []Workload    `json:"workloads"`
	Topologies  []Topology    `json:"topologies"`
	Clocks      []ClockRegime `json:"clocks"`
	Faults      []FaultScript `json:"faults"`
}

// ParseMatrix decodes and validates one scenario file. Unknown fields are
// rejected so typos in spec files fail loudly instead of silently running
// a different experiment.
func ParseMatrix(data []byte) (*Matrix, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Matrix
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing garbage after the object is a malformed file.
	if dec.More() {
		return nil, fmt.Errorf("scenario %q: trailing data after matrix object", m.Name)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the matrix for the mistakes that would otherwise
// surface as confusing runtime behaviour.
func (m *Matrix) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("scenario: matrix has no name")
	}
	if strings.ContainsAny(m.Name, "/ \t\n") {
		return fmt.Errorf("scenario %q: name must not contain '/' or whitespace", m.Name)
	}
	if len(m.Workloads) == 0 || len(m.Topologies) == 0 || len(m.Clocks) == 0 || len(m.Faults) == 0 {
		return fmt.Errorf("scenario %q: every axis needs at least one entry (workloads=%d topologies=%d clocks=%d faults=%d)",
			m.Name, len(m.Workloads), len(m.Topologies), len(m.Clocks), len(m.Faults))
	}
	seen := map[string]bool{}
	axisName := func(axis, name string) error {
		if name == "" {
			return fmt.Errorf("scenario %q: unnamed %s entry", m.Name, axis)
		}
		if strings.ContainsAny(name, "/× \t\n") {
			return fmt.Errorf("scenario %q: %s name %q must not contain '/', '×' or whitespace", m.Name, axis, name)
		}
		key := axis + ":" + name
		if seen[key] {
			return fmt.Errorf("scenario %q: duplicate %s name %q", m.Name, axis, name)
		}
		seen[key] = true
		return nil
	}
	for i := range m.Workloads {
		w := &m.Workloads[i]
		if err := axisName("workload", w.Name); err != nil {
			return err
		}
		if !validShapes[w.Shape] {
			return fmt.Errorf("scenario %q: workload %q has unknown shape %q", m.Name, w.Name, w.Shape)
		}
		if w.Events < 0 {
			return fmt.Errorf("scenario %q: workload %q: negative events", m.Name, w.Name)
		}
		if w.Shape == ShapeDiurnal && w.PeakRate > 0 && w.PeakRate < w.Rate {
			return fmt.Errorf("scenario %q: workload %q: peak_rate below rate", m.Name, w.Name)
		}
		if w.HotShare < 0 || w.HotShare > 1 {
			return fmt.Errorf("scenario %q: workload %q: hot_share outside [0,1]", m.Name, w.Name)
		}
		if w.SpikeProb < 0 || w.SpikeProb > 1 {
			return fmt.Errorf("scenario %q: workload %q: spike_prob outside [0,1]", m.Name, w.Name)
		}
	}
	for i := range m.Topologies {
		tp := &m.Topologies[i]
		if err := axisName("topology", tp.Name); err != nil {
			return err
		}
		if tp.Nodes < 1 || tp.Nodes > 16 {
			return fmt.Errorf("scenario %q: topology %q: nodes must be 1..16, got %d", m.Name, tp.Name, tp.Nodes)
		}
		if tp.SensorsPerNode < 0 || tp.SensorsPerNode > 8 {
			return fmt.Errorf("scenario %q: topology %q: sensors_per_node must be 0..8", m.Name, tp.Name)
		}
		if tp.Relays < 0 || tp.Relays > 4 {
			return fmt.Errorf("scenario %q: topology %q: relays must be 0..4, got %d", m.Name, tp.Name, tp.Relays)
		}
		if tp.Relays > tp.Nodes {
			return fmt.Errorf("scenario %q: topology %q: more relays (%d) than nodes (%d)", m.Name, tp.Name, tp.Relays, tp.Nodes)
		}
	}
	for i := range m.Clocks {
		c := &m.Clocks[i]
		if err := axisName("clock", c.Name); err != nil {
			return err
		}
		if c.OffsetSpreadMicros < 0 || c.DriftSpreadPPM < 0 || c.NoiseMeanMicros < 0 || c.SyncPeriodMS < 0 {
			return fmt.Errorf("scenario %q: clock %q: spreads must be non-negative", m.Name, c.Name)
		}
		if c.SyncUncertaintyUS < 0 || c.SyncMinProbeMS < 0 || c.SyncMaxProbeMS < 0 || c.MaxProbesPerNode < 0 {
			return fmt.Errorf("scenario %q: clock %q: sync knobs must be non-negative", m.Name, c.Name)
		}
		if (c.SyncUncertaintyUS > 0 || c.MaxProbesPerNode > 0) && c.SyncPeriodMS == 0 {
			return fmt.Errorf("scenario %q: clock %q: sync_uncertainty_us/max_probes_per_node need sync_period_ms", m.Name, c.Name)
		}
		if c.SyncMaxProbeMS > 0 && c.SyncMaxProbeMS < c.SyncMinProbeMS {
			return fmt.Errorf("scenario %q: clock %q: sync_max_probe_ms below sync_min_probe_ms", m.Name, c.Name)
		}
	}
	for i := range m.Faults {
		f := &m.Faults[i]
		if err := axisName("fault", f.Name); err != nil {
			return err
		}
		for j, st := range f.Script {
			if st.AtMS < 0 {
				return fmt.Errorf("scenario %q: fault %q step %d: negative at_ms", m.Name, f.Name, j)
			}
			if !validOps[st.Op] {
				return fmt.Errorf("scenario %q: fault %q step %d: unknown op %q", m.Name, f.Name, j, st.Op)
			}
			if st.Op == OpLatency && st.MS < 0 {
				return fmt.Errorf("scenario %q: fault %q step %d: negative latency", m.Name, f.Name, j)
			}
			for _, n := range st.Nodes {
				if n < 0 {
					return fmt.Errorf("scenario %q: fault %q step %d: negative node index", m.Name, f.Name, j)
				}
			}
		}
	}
	return nil
}

// Cell is one point of a matrix's cross-product.
type Cell struct {
	Matrix   *Matrix
	Workload Workload
	Topology Topology
	Clock    ClockRegime
	Fault    FaultScript
}

// Name is the cell's stable identifier: matrix/workload×topology×clock×fault.
func (c *Cell) Name() string {
	return fmt.Sprintf("%s/%s×%s×%s×%s",
		c.Matrix.Name, c.Workload.Name, c.Topology.Name, c.Clock.Name, c.Fault.Name)
}

// Seed derives the cell's deterministic seed from its name and the
// matrix seed, so renaming an axis entry (intentionally) re-rolls the
// cell while unrelated cells keep their draws.
func (c *Cell) Seed() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Name()))
	return h.Sum64() ^ (c.Matrix.Seed * 0x9E3779B97F4A7C15)
}

// Params resolves the cell's effective knobs: workload overrides, then
// matrix defaults, then harness defaults.
func (c *Cell) Params() Params {
	return c.Workload.Params.merged(c.Matrix.Defaults).withDefaults()
}

// Expand returns every cell of the matrix cross-product, in spec order
// (workloads outermost, faults innermost).
func (m *Matrix) Expand() []Cell {
	cells := make([]Cell, 0, len(m.Workloads)*len(m.Topologies)*len(m.Clocks)*len(m.Faults))
	for _, w := range m.Workloads {
		for _, tp := range m.Topologies {
			for _, ck := range m.Clocks {
				for _, f := range m.Faults {
					cells = append(cells, Cell{Matrix: m, Workload: w, Topology: tp, Clock: ck, Fault: f})
				}
			}
		}
	}
	return cells
}

// Filter selects matrices (by tag) and cells (by per-axis include and
// exclude name lists). Empty include lists admit everything.
type Filter struct {
	// Tag admits only matrices carrying it; empty admits all.
	Tag string
	// Include lists per axis; an empty list admits all names.
	Workloads, Topologies, Clocks, Faults []string
	// Exclude lists per axis; names here are dropped even if included.
	SkipWorkloads, SkipTopologies, SkipClocks, SkipFaults []string
}

func containsName(list []string, name string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// MatchMatrix reports whether the matrix passes the tag filter.
func (f *Filter) MatchMatrix(m *Matrix) bool {
	return f.Tag == "" || containsName(m.Tags, f.Tag)
}

// MatchCell reports whether the cell passes the axis filters.
func (f *Filter) MatchCell(c *Cell) bool {
	admit := func(include, skip []string, name string) bool {
		if len(include) > 0 && !containsName(include, name) {
			return false
		}
		return !containsName(skip, name)
	}
	return admit(f.Workloads, f.SkipWorkloads, c.Workload.Name) &&
		admit(f.Topologies, f.SkipTopologies, c.Topology.Name) &&
		admit(f.Clocks, f.SkipClocks, c.Clock.Name) &&
		admit(f.Faults, f.SkipFaults, c.Fault.Name)
}

// LoadDir parses every *.json file in dir as a Matrix, sorted by file
// name for a stable run order.
func LoadDir(dir string) ([]*Matrix, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	seen := map[string]string{}
	var out []*Matrix
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		m, err := ParseMatrix(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if prev, dup := seen[m.Name]; dup {
			return nil, fmt.Errorf("scenario: matrix name %q used by both %s and %s", m.Name, prev, name)
		}
		seen[m.Name] = name
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no *.json matrices in %s", dir)
	}
	return out, nil
}
