package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// minimal returns a valid one-cell matrix that tests mutate.
func minimal() *Matrix {
	return &Matrix{
		Name:       "m",
		Workloads:  []Workload{{Name: "w", Shape: ShapeSteady}},
		Topologies: []Topology{{Name: "t", Nodes: 1}},
		Clocks:     []ClockRegime{{Name: "c"}},
		Faults:     []FaultScript{{Name: "f"}},
	}
}

func mustJSON(t *testing.T, m *Matrix) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseMatrixRoundTrip(t *testing.T) {
	m, err := ParseMatrix(mustJSON(t, minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "m" || len(m.Workloads) != 1 {
		t.Fatalf("parsed matrix mangled: %+v", m)
	}
}

func TestParseMatrixRejectsUnknownFields(t *testing.T) {
	_, err := ParseMatrix([]byte(`{"name": "m", "wrokloads": []}`))
	if err == nil || !strings.Contains(err.Error(), "wrokloads") {
		t.Fatalf("typo'd field not rejected: %v", err)
	}
}

func TestParseMatrixRejectsTrailingData(t *testing.T) {
	data := append(mustJSON(t, minimal()), []byte(`{"name":"again"}`)...)
	if _, err := ParseMatrix(data); err == nil {
		t.Fatal("trailing object after matrix accepted")
	}
}

func TestValidateCatchesSpecMistakes(t *testing.T) {
	cases := []struct {
		desc   string
		mutate func(*Matrix)
	}{
		{"empty name", func(m *Matrix) { m.Name = "" }},
		{"slash in name", func(m *Matrix) { m.Name = "a/b" }},
		{"no workloads", func(m *Matrix) { m.Workloads = nil }},
		{"no topologies", func(m *Matrix) { m.Topologies = nil }},
		{"no clocks", func(m *Matrix) { m.Clocks = nil }},
		{"no faults", func(m *Matrix) { m.Faults = nil }},
		{"duplicate workload name", func(m *Matrix) {
			m.Workloads = append(m.Workloads, Workload{Name: "w", Shape: ShapeBursty})
		}},
		{"cross-sign in axis name", func(m *Matrix) { m.Workloads[0].Name = "a×b" }},
		{"unknown shape", func(m *Matrix) { m.Workloads[0].Shape = "zigzag" }},
		{"negative events", func(m *Matrix) { m.Workloads[0].Events = -1 }},
		{"hot_share above 1", func(m *Matrix) { m.Workloads[0].HotShare = 1.5 }},
		{"spike_prob below 0", func(m *Matrix) { m.Workloads[0].SpikeProb = -0.1 }},
		{"diurnal peak below floor", func(m *Matrix) {
			m.Workloads[0].Shape = ShapeDiurnal
			m.Workloads[0].Rate = 100
			m.Workloads[0].PeakRate = 50
		}},
		{"zero nodes", func(m *Matrix) { m.Topologies[0].Nodes = 0 }},
		{"too many nodes", func(m *Matrix) { m.Topologies[0].Nodes = 17 }},
		{"too many sensors", func(m *Matrix) { m.Topologies[0].SensorsPerNode = 9 }},
		{"too many relays", func(m *Matrix) { m.Topologies[0].Relays = 5 }},
		{"more relays than nodes", func(m *Matrix) {
			m.Topologies[0].Nodes = 2
			m.Topologies[0].Relays = 3
		}},
		{"negative relays", func(m *Matrix) { m.Topologies[0].Relays = -1 }},
		{"negative offset spread", func(m *Matrix) { m.Clocks[0].OffsetSpreadMicros = -1 }},
		{"unknown fault op", func(m *Matrix) {
			m.Faults[0].Script = []FaultStep{{Op: "explode"}}
		}},
		{"negative at_ms", func(m *Matrix) {
			m.Faults[0].Script = []FaultStep{{AtMS: -5, Op: OpCut}}
		}},
		{"negative latency", func(m *Matrix) {
			m.Faults[0].Script = []FaultStep{{Op: OpLatency, MS: -1}}
		}},
		{"negative node index", func(m *Matrix) {
			m.Faults[0].Script = []FaultStep{{Op: OpCut, Nodes: []int{-1}}}
		}},
	}
	for _, tc := range cases {
		m := minimal()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.desc)
		}
	}
}

func TestExpandCrossProduct(t *testing.T) {
	m := minimal()
	m.Workloads = append(m.Workloads, Workload{Name: "w2", Shape: ShapeBursty})
	m.Clocks = append(m.Clocks, ClockRegime{Name: "c2"})
	cells := m.Expand()
	if len(cells) != 4 {
		t.Fatalf("Expand returned %d cells, want 4", len(cells))
	}
	names := map[string]bool{}
	for i := range cells {
		names[cells[i].Name()] = true
	}
	for _, want := range []string{"m/w×t×c×f", "m/w×t×c2×f", "m/w2×t×c×f", "m/w2×t×c2×f"} {
		if !names[want] {
			t.Errorf("cell %q missing from expansion (got %v)", want, names)
		}
	}
}

func TestCellSeedsAreStableAndDistinct(t *testing.T) {
	m := minimal()
	m.Seed = 42
	m.Workloads = append(m.Workloads, Workload{Name: "w2", Shape: ShapeSteady})
	cells := m.Expand()
	if cells[0].Seed() != cells[0].Seed() {
		t.Fatal("seed not stable across calls")
	}
	if cells[0].Seed() == cells[1].Seed() {
		t.Fatal("distinct cells drew the same seed")
	}
	m2 := minimal()
	m2.Seed = 43
	m2.Workloads = append(m2.Workloads, Workload{Name: "w2", Shape: ShapeSteady})
	if m2.Expand()[0].Seed() == cells[0].Seed() {
		t.Fatal("matrix seed does not perturb cell seeds")
	}
}

func TestParamsResolutionPrecedence(t *testing.T) {
	m := minimal()
	m.Defaults = Params{SorterInitialTMicros: 111, BatchBytes: 222}
	m.Workloads[0].Params = Params{BatchBytes: 333}
	p := m.Expand()[0].Params()
	if p.BatchBytes != 333 {
		t.Errorf("workload override lost: batch_bytes = %d, want 333", p.BatchBytes)
	}
	if p.SorterInitialTMicros != 111 {
		t.Errorf("matrix default lost: sorter_initial_t = %d, want 111", p.SorterInitialTMicros)
	}
	if p.RingBytes != 1<<18 {
		t.Errorf("harness default lost: ring_bytes = %d, want %d", p.RingBytes, 1<<18)
	}
	if p.TimeoutS != 30 {
		t.Errorf("harness default lost: timeout_s = %d, want 30", p.TimeoutS)
	}
}

func TestFilterSelection(t *testing.T) {
	m := minimal()
	m.Tags = []string{"smoke"}
	m.Workloads = append(m.Workloads, Workload{Name: "w2", Shape: ShapeSteady})
	cells := m.Expand()

	var f Filter
	if !f.MatchMatrix(m) || !f.MatchCell(&cells[0]) {
		t.Fatal("empty filter must admit everything")
	}
	f = Filter{Tag: "full"}
	if f.MatchMatrix(m) {
		t.Fatal("tag filter admitted an untagged matrix")
	}
	f = Filter{Workloads: []string{"w2"}}
	if f.MatchCell(&cells[0]) || !f.MatchCell(&cells[1]) {
		t.Fatal("include filter selected the wrong cells")
	}
	f = Filter{Workloads: []string{"w", "w2"}, SkipWorkloads: []string{"w2"}}
	if !f.MatchCell(&cells[0]) || f.MatchCell(&cells[1]) {
		t.Fatal("exclude must override include")
	}
}

// TestShippedScenarios guards the committed scenario files: they must
// parse, and the smoke-tagged subset must cover at least the 12 distinct
// cells the check target promises.
func TestShippedScenarios(t *testing.T) {
	ms, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	names := map[string]bool{}
	for _, m := range ms {
		for _, cell := range m.Expand() {
			cell := cell
			if names[cell.Name()] {
				t.Errorf("duplicate cell name %q across shipped scenarios", cell.Name())
			}
			names[cell.Name()] = true
			for _, tag := range m.Tags {
				count[tag]++
			}
		}
	}
	if count["smoke"] < 12 {
		t.Errorf("smoke tag covers %d cells, want >= 12", count["smoke"])
	}
	if count["full"] == 0 {
		t.Error("no full-tagged cells shipped; the nightly matrix would be empty")
	}
}

func TestLoadDirRejectsDuplicateMatrixNames(t *testing.T) {
	dir := t.TempDir()
	data := mustJSON(t, minimal())
	for _, name := range []string{"a.json", "b.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "used by both") {
		t.Fatalf("duplicate matrix name not rejected: %v", err)
	}
}
