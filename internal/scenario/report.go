package scenario

import (
	"encoding/json"
	"os"
	"runtime"
)

// ReportSchema versions BENCH_scenarios.json.
const ReportSchema = 1

// Env records the machine the cells ran on, so numbers are never
// compared across incomparable boxes without noticing.
type Env struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// CellResult is one cell's RunStatistics: the bench numbers plus the
// contract verdicts.
type CellResult struct {
	Cell     string `json:"cell"`
	Matrix   string `json:"matrix"`
	Workload string `json:"workload"`
	Topology string `json:"topology"`
	Clock    string `json:"clock"`
	Fault    string `json:"fault"`
	Seed     uint64 `json:"seed"`

	// ElapsedMicros covers the whole cell (load + drain); LoadMicros
	// covers only the driver phase.
	ElapsedMicros int64 `json:"elapsed_micros"`
	LoadMicros    int64 `json:"load_micros"`

	// Produced counts notices accepted into sensor rings; Refused counts
	// ring-full rejections (covered by loss markers downstream).
	Produced uint64 `json:"produced"`
	Refused  uint64 `json:"refused"`
	// Emitted counts data records that reached the merged output;
	// MarkerCovered is the record total the Markers loss markers attest.
	Emitted       uint64  `json:"emitted"`
	MarkerCovered uint64  `json:"marker_covered"`
	Markers       uint64  `json:"markers"`
	RecordsPerSec float64 `json:"records_per_sec"`

	EmitLatencyMeanMicros float64 `json:"emit_latency_mean_micros"`
	EmitLatencyP99Micros  float64 `json:"emit_latency_p99_micros"`

	// Overload and fault observables.
	AckDeferred    uint64 `json:"ack_deferred"`
	CreditStalls   uint64 `json:"credit_stalls"`
	Resumes        uint64 `json:"resumes"`
	DedupedBatches uint64 `json:"deduped_batches"`
	Inversions     uint64 `json:"inversions"`
	// OrderViolations counts strict timestamp decreases in the merged
	// output. Zero is asserted as the monotone contract except in
	// bounded-sorter overload cells, where it is reported but advisory.
	OrderViolations uint64 `json:"order_violations"`
	// MaxAbsSkewMicros is the largest |node skew + composed correction|
	// at cell end — the residual clock error after any synchronization,
	// with both hops' corrections applied in relayed topologies.
	MaxAbsSkewMicros int64 `json:"max_abs_skew_micros"`

	// SyncProbes counts probe round trips the root synchronization
	// master issued over the cell; SyncFallbacks counts model-divergence
	// events. Both zero with synchronization off.
	SyncProbes    uint64 `json:"sync_probes,omitempty"`
	SyncFallbacks uint64 `json:"sync_fallbacks,omitempty"`

	// Federation-tier observables (zero in direct topologies): the relay
	// count, records marked lost by relay sorters and uplink queues, and
	// relay uplink reconnections.
	Relays          int    `json:"relays,omitempty"`
	RelayMarkedLost uint64 `json:"relay_marked_lost,omitempty"`
	RelayReconnects uint64 `json:"relay_reconnects,omitempty"`

	// Contracts holds the per-contract verdicts (see Contract* consts).
	Contracts map[string]bool `json:"contracts"`
	// Failures holds human-readable diagnostics; empty means the cell
	// passed.
	Failures []string `json:"failures,omitempty"`
}

// Passed reports whether every contract held and nothing else failed.
func (r *CellResult) Passed() bool {
	if len(r.Failures) > 0 {
		return false
	}
	for _, ok := range r.Contracts {
		if !ok {
			return false
		}
	}
	return true
}

// Report is the whole matrix run: BENCH_scenarios.json.
type Report struct {
	Schema int          `json:"schema"`
	Env    Env          `json:"env"`
	Cells  []CellResult `json:"cells"`
	Failed int          `json:"failed"`
}

// NewReport returns an empty report stamped with the current environment.
func NewReport() *Report {
	return &Report{
		Schema: ReportSchema,
		Env: Env{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		},
	}
}

// Add appends one cell result, tracking the failure count.
func (rep *Report) Add(res CellResult) {
	rep.Cells = append(rep.Cells, res)
	if !res.Passed() {
		rep.Failed++
	}
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReportFile loads a previously written report.
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
