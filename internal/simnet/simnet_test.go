package simnet

import (
	"testing"

	"brisk/internal/des"
)

func TestOneWayFloor(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 100, Seed: 1})
	for i := 0; i < 1000; i++ {
		if l := n.OneWay(); l < 100 {
			t.Fatalf("latency %d below base", l)
		}
	}
}

func TestOneWayJitterMean(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 100, JitterMean: 50, Seed: 2})
	var sum int64
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += n.OneWay()
	}
	mean := float64(sum) / draws
	if mean < 145 || mean > 155 {
		t.Fatalf("mean latency = %v, want ≈150", mean)
	}
}

func TestMinimumLatencyIsOne(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 0, Seed: 3})
	if l := n.OneWay(); l < 1 {
		t.Fatalf("latency %d < 1", l)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []int64 {
		sim := des.New()
		n := New(sim, LAN(42))
		out := make([]int64, 100)
		for i := range out {
			sim.RunUntil(sim.Now() + 1000)
			out[i] = n.OneWay()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDisturbanceWindows(t *testing.T) {
	sim := des.New()
	p := Params{
		BaseLatency:      100,
		DisturbMeanGap:   10_000,
		DisturbMeanDur:   10_000,
		DisturbExtraMean: 10_000,
		Seed:             5,
	}
	n := New(sim, p)
	disturbed, total := 0, 0
	var sumD, sumQ int64
	var nD, nQ int
	for i := 0; i < 20000; i++ {
		sim.RunUntil(sim.Now() + 100)
		d := n.Disturbed(sim.Now())
		l := n.OneWay()
		total++
		if d {
			disturbed++
			sumD += l
			nD++
		} else {
			sumQ += l
			nQ++
		}
	}
	if disturbed == 0 || disturbed == total {
		t.Fatalf("disturbance windows degenerate: %d/%d", disturbed, total)
	}
	if nD > 0 && nQ > 0 {
		meanD := float64(sumD) / float64(nD)
		meanQ := float64(sumQ) / float64(nQ)
		if meanD < meanQ+1000 {
			t.Fatalf("disturbed mean %v not clearly above quiet mean %v", meanD, meanQ)
		}
	}
}

func TestQuietLANNeverDisturbed(t *testing.T) {
	sim := des.New()
	n := New(sim, QuietLAN(7))
	for i := 0; i < 1000; i++ {
		sim.RunUntil(sim.Now() + 100000)
		if n.Disturbed(sim.Now()) {
			t.Fatal("QuietLAN reported a disturbance")
		}
	}
}

func TestRoundTripAdvancesClock(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 200, Seed: 9})
	served := false
	var serveAt int64
	start := sim.Now()
	rtt := n.RoundTrip(func() {
		served = true
		serveAt = sim.Now()
	})
	if !served {
		t.Fatal("serve not invoked")
	}
	if rtt < 400 {
		t.Fatalf("rtt = %d below 2*base", rtt)
	}
	if sim.Now() != start+rtt {
		t.Fatalf("clock advanced %d, rtt %d", sim.Now()-start, rtt)
	}
	if serveAt <= start || serveAt >= sim.Now() {
		t.Fatalf("serve time %d outside (start, end)", serveAt)
	}
}

func TestSendDeliversAsynchronously(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 300, Seed: 11})
	delivered := int64(0)
	n.Send(func() { delivered = sim.Now() })
	if delivered != 0 {
		t.Fatal("delivered synchronously")
	}
	sim.Run()
	if delivered < 300 {
		t.Fatalf("delivered at %d, want ≥300", delivered)
	}
}

func TestLANPresets(t *testing.T) {
	l := LAN(1)
	if l.BaseLatency <= 0 || l.DisturbMeanGap <= 0 {
		t.Fatal("LAN preset incomplete")
	}
	q := QuietLAN(1)
	if q.DisturbMeanGap != 0 {
		t.Fatal("QuietLAN still has disturbances")
	}
}
