// Package simnet models the local-area network of the paper's testbed (a
// 155 Mbps ATM LAN of Sun workstations) for deterministic replay of the
// distributed experiments.
//
// A Net samples one-way message latencies as
//
//	latency = base + jitter + disturbance
//
// where jitter is an exponential draw and disturbance is an extra
// exponential delay applied only inside "disturbance windows" — bursty
// periods, scheduled by a renewal process, that stand in for the paper's
// "disturbances of various sources in the LAN [that] interfered" with
// clock synchronization. Windows are correlated across all links, as real
// LAN congestion is.
//
// All draws come from a seeded stream, so a given seed reproduces an
// experiment exactly.
package simnet

import (
	"brisk/internal/des"
)

// Params configures the latency model. All times are microseconds.
type Params struct {
	// BaseLatency is the deterministic one-way latency floor.
	BaseLatency int64
	// JitterMean is the mean of the always-present exponential jitter.
	JitterMean float64
	// DisturbMeanGap is the mean time between disturbance windows.
	// Zero disables disturbances.
	DisturbMeanGap float64
	// DisturbMeanDur is the mean duration of one disturbance window.
	DisturbMeanDur float64
	// DisturbExtraMean is the mean extra latency added inside a window.
	DisturbExtraMean float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// LAN returns parameters approximating the paper's lightly loaded ATM LAN:
// ~250 µs one-way base latency with 50 µs mean jitter and occasional
// multi-hundred-microsecond disturbance bursts.
func LAN(seed uint64) Params {
	return Params{
		BaseLatency:      250,
		JitterMean:       50,
		DisturbMeanGap:   30_000_000, // every ~30 s
		DisturbMeanDur:   2_000_000,  // lasting ~2 s
		DisturbExtraMean: 400,
		Seed:             seed,
	}
}

// QuietLAN returns LAN parameters with disturbances disabled — the
// "light working conditions" of the clock-synchronization evaluation.
func QuietLAN(seed uint64) Params {
	p := LAN(seed)
	p.DisturbMeanGap = 0
	return p
}

// Net samples one-way latencies against a simulator's virtual clock.
type Net struct {
	sim    *des.Sim
	rng    *des.RNG
	params Params

	burstStart int64
	burstEnd   int64
	nextSched  int64

	down    bool
	dropped uint64
}

// New returns a network over the given simulator.
func New(sim *des.Sim, params Params) *Net {
	return &Net{sim: sim, rng: des.NewRNG(params.Seed), params: params}
}

// advanceBursts rolls the disturbance-window schedule forward to cover
// time t.
func (n *Net) advanceBursts(t int64) {
	if n.params.DisturbMeanGap <= 0 {
		return
	}
	for n.nextSched <= t {
		gap := int64(n.rng.Exp(n.params.DisturbMeanGap))
		dur := int64(n.rng.Exp(n.params.DisturbMeanDur))
		n.burstStart = n.nextSched + gap
		n.burstEnd = n.burstStart + dur
		n.nextSched = n.burstEnd
	}
}

// Disturbed reports whether time t falls inside a disturbance window.
func (n *Net) Disturbed(t int64) bool {
	if n.params.DisturbMeanGap <= 0 {
		return false
	}
	n.advanceBursts(t)
	return t >= n.burstStart && t < n.burstEnd
}

// OneWay samples a one-way latency for a message sent at the simulator's
// current time.
func (n *Net) OneWay() int64 {
	t := n.sim.Now()
	lat := n.params.BaseLatency
	if n.params.JitterMean > 0 {
		lat += int64(n.rng.Exp(n.params.JitterMean))
	}
	if n.Disturbed(t) && n.params.DisturbExtraMean > 0 {
		lat += int64(n.rng.Exp(n.params.DisturbExtraMean))
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}

// SetDown severs or restores the link. While down, Send discards messages
// and TryRoundTrip fails; both count into Dropped. RoundTrip is unaffected
// (legacy callers model links that never fail).
func (n *Net) SetDown(down bool) { n.down = down }

// Down reports whether the link is currently severed.
func (n *Net) Down() bool { return n.down }

// Dropped returns how many messages the severed link has discarded.
func (n *Net) Dropped() uint64 { return n.dropped }

// Send schedules fn to run after a sampled one-way latency, modelling an
// asynchronous message delivery. On a severed link the message is
// discarded and counted; fn never runs.
func (n *Net) Send(fn func()) {
	if n.down {
		n.dropped++
		return
	}
	n.sim.After(n.OneWay(), fn)
}

// RoundTrip advances virtual time across a synchronous request/response:
// it samples the outbound latency, runs the simulator to the arrival
// instant, calls serve (the remote handler), samples the return latency,
// runs to the reply arrival, and returns the total round-trip time.
func (n *Net) RoundTrip(serve func()) int64 {
	start := n.sim.Now()
	out := n.OneWay()
	n.sim.RunUntil(start + out)
	serve()
	back := n.OneWay()
	n.sim.RunUntil(start + out + back)
	return out + back
}

// TryRoundTrip is RoundTrip for links that can fail: on a severed link the
// request is discarded and counted, virtual time does not advance, serve
// never runs, and ok is false. Callers model their own retry/timeout
// policy on top.
func (n *Net) TryRoundTrip(serve func()) (rtt int64, ok bool) {
	if n.down {
		n.dropped++
		return 0, false
	}
	return n.RoundTrip(serve), true
}
