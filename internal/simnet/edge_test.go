package simnet

import (
	"testing"

	"brisk/internal/des"
)

// Burst-window boundaries: the window is half-open [burstStart, burstEnd),
// so the exact start instant is disturbed and the exact end instant is
// not. The expected window is recomputed from an identical RNG replica.
func TestDisturbanceWindowBoundaries(t *testing.T) {
	p := Params{
		BaseLatency:      100,
		DisturbMeanGap:   10_000,
		DisturbMeanDur:   2_000,
		DisturbExtraMean: 500,
		Seed:             5,
	}
	// Replica of advanceBursts' draw sequence for the first two windows.
	ref := des.NewRNG(p.Seed)
	gap := int64(ref.Exp(p.DisturbMeanGap))
	dur := int64(ref.Exp(p.DisturbMeanDur))
	start, end := gap, gap+dur
	gap2 := int64(ref.Exp(p.DisturbMeanGap))
	if gap < 1 || dur < 2 || gap2 < 1 {
		t.Fatalf("seed %d gives degenerate windows (gap=%d dur=%d gap2=%d); pick another seed",
			p.Seed, gap, dur, gap2)
	}

	n := New(des.New(), p)
	for _, tc := range []struct {
		at   int64
		want bool
		desc string
	}{
		{start - 1, false, "instant before burstStart"},
		{start, true, "exactly burstStart"},
		{end - 1, true, "last instant inside the window"},
		{end, false, "exactly burstEnd (exclusive)"},
	} {
		if got := n.Disturbed(tc.at); got != tc.want {
			t.Errorf("Disturbed(%d) [%s] = %v, want %v", tc.at, tc.desc, got, tc.want)
		}
	}
}

// Disturbances disabled: no instant is ever disturbed and no RNG draws
// are consumed for window scheduling.
func TestNoDisturbancesWhenGapZero(t *testing.T) {
	n := New(des.New(), Params{BaseLatency: 50, Seed: 1})
	for _, at := range []int64{0, 1, 1 << 40} {
		if n.Disturbed(at) {
			t.Fatalf("Disturbed(%d) with disturbances disabled", at)
		}
	}
}

// A severed link: TryRoundTrip fails without advancing virtual time or
// running the handler, Send discards, and both count into Dropped.
// Restoring the link restores delivery.
func TestSeveredLink(t *testing.T) {
	sim := des.New()
	n := New(sim, Params{BaseLatency: 200, Seed: 9})

	n.SetDown(true)
	served := 0
	rtt, ok := n.TryRoundTrip(func() { served++ })
	if ok || rtt != 0 {
		t.Fatalf("TryRoundTrip on severed link = (%d, %v), want (0, false)", rtt, ok)
	}
	if served != 0 {
		t.Fatal("severed link ran the remote handler")
	}
	if sim.Now() != 0 {
		t.Fatalf("severed TryRoundTrip advanced virtual time to %d", sim.Now())
	}
	delivered := false
	n.Send(func() { delivered = true })
	sim.Run()
	if delivered {
		t.Fatal("severed link delivered a Send")
	}
	if n.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", n.Dropped())
	}

	n.SetDown(false)
	rtt, ok = n.TryRoundTrip(func() { served++ })
	if !ok || rtt < 2 || served != 1 {
		t.Fatalf("restored link TryRoundTrip = (%d, %v) served=%d", rtt, ok, served)
	}
	if sim.Now() != rtt {
		t.Fatalf("virtual time %d after round trip of %d", sim.Now(), rtt)
	}
	if n.Dropped() != 2 {
		t.Fatalf("Dropped grew to %d after link restored", n.Dropped())
	}
}
