package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemClockAdvances(t *testing.T) {
	var s System
	a := s.NowMicros()
	time.Sleep(2 * time.Millisecond)
	b := s.NowMicros()
	if b <= a {
		t.Fatalf("system clock did not advance: %d then %d", a, b)
	}
	// Sanity: within a decade of the current date.
	if a < time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC).UnixMicro() {
		t.Fatalf("system clock reads before year 2000: %d", a)
	}
}

func TestManualClock(t *testing.T) {
	m := NewManual(100)
	if m.NowMicros() != 100 {
		t.Fatalf("start = %d", m.NowMicros())
	}
	if got := m.Advance(50); got != 150 {
		t.Fatalf("Advance returned %d", got)
	}
	m.Set(7)
	if m.NowMicros() != 7 {
		t.Fatalf("Set failed: %d", m.NowMicros())
	}
}

func TestManualClockConcurrent(t *testing.T) {
	m := NewManual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Advance(1)
			}
		}()
	}
	wg.Wait()
	if m.NowMicros() != 8000 {
		t.Fatalf("concurrent advances lost: %d", m.NowMicros())
	}
}

func TestDriftOffsetOnly(t *testing.T) {
	ref := NewManual(1_000_000)
	d := NewDrift(ref, 500, 0)
	if got := d.NowMicros(); got != 1_000_500 {
		t.Fatalf("offset clock = %d, want 1000500", got)
	}
	ref.Advance(1000)
	if got := d.NowMicros(); got != 1_001_500 {
		t.Fatalf("after ref advance = %d, want 1001500", got)
	}
}

func TestDriftRate(t *testing.T) {
	ref := NewManual(0)
	d := NewDrift(ref, 0, 100) // +100 ppm
	ref.Advance(1_000_000)     // one true second
	if got := d.NowMicros(); got != 1_000_100 {
		t.Fatalf("100ppm over 1s = %d, want 1000100", got)
	}
	if got := d.SkewAgainstRef(); got != 100 {
		t.Fatalf("SkewAgainstRef = %d, want 100", got)
	}
}

func TestDriftNegativeRate(t *testing.T) {
	ref := NewManual(0)
	d := NewDrift(ref, 0, -50)
	ref.Advance(2_000_000)
	if got := d.NowMicros(); got != 1_999_900 {
		t.Fatalf("-50ppm over 2s = %d, want 1999900", got)
	}
}

func TestDriftStep(t *testing.T) {
	ref := NewManual(0)
	d := NewDrift(ref, -300, 0)
	d.Step(300)
	if got := d.NowMicros(); got != 0 {
		t.Fatalf("after corrective step = %d, want 0", got)
	}
	if got := d.SkewAgainstRef(); got != 0 {
		t.Fatalf("skew after step = %d, want 0", got)
	}
}

func TestCorrected(t *testing.T) {
	raw := NewManual(1000)
	c := NewCorrected(raw)
	if c.NowMicros() != 1000 || c.Raw() != 1000 || c.Correction() != 0 {
		t.Fatal("fresh corrected clock misreads")
	}
	if got := c.Adjust(250); got != 250 {
		t.Fatalf("Adjust returned %d", got)
	}
	if c.NowMicros() != 1250 {
		t.Fatalf("corrected = %d, want 1250", c.NowMicros())
	}
	if c.Raw() != 1000 {
		t.Fatalf("raw changed: %d", c.Raw())
	}
	c.Adjust(-50)
	if c.Correction() != 200 {
		t.Fatalf("correction = %d, want 200", c.Correction())
	}
}

func TestClockFunc(t *testing.T) {
	c := ClockFunc(func() int64 { return 42 })
	if c.NowMicros() != 42 {
		t.Fatal("ClockFunc adapter broken")
	}
}

func TestCorrectedConcurrentAdjust(t *testing.T) {
	raw := NewManual(0)
	c := NewCorrected(raw)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Adjust(1)
				_ = c.NowMicros()
			}
		}()
	}
	wg.Wait()
	if c.Correction() != 4000 {
		t.Fatalf("concurrent adjusts lost: %d", c.Correction())
	}
}

func TestCorrectedRateExtrapolation(t *testing.T) {
	m := NewManual(1_000_000)
	c := NewCorrected(m)
	c.SetRatePPM(100) // 100 µs per second
	if got := c.NowMicros(); got != 1_000_000 {
		t.Fatalf("reading moved at rate-set instant: %d", got)
	}
	m.Advance(10_000_000) // 10 s
	if got := c.NowMicros(); got != 11_000_000+1000 {
		t.Fatalf("after 10 s at 100 ppm: got %d want %d", got, 11_000_000+1000)
	}
	if got := c.Correction(); got != 1000 {
		t.Fatalf("Correction() = %d, want 1000", got)
	}
	if got := c.RatePPM(); got != 100 {
		t.Fatalf("RatePPM() = %v, want 100", got)
	}
}

func TestCorrectedRateSwitchContinuous(t *testing.T) {
	m := NewManual(0)
	c := NewCorrected(m)
	c.SetRatePPM(50)
	m.Advance(20_000_000) // accrues 1000 µs
	before := c.NowMicros()
	c.SetRatePPM(10) // regime switch must not move the reading
	if got := c.NowMicros(); got != before {
		t.Fatalf("reading jumped across rate switch: %d -> %d", before, got)
	}
	m.Advance(10_000_000) // 10 s at 10 ppm = 100 µs more
	if got := c.NowMicros(); got != before+10_000_000+100 {
		t.Fatalf("after switch: got %d want %d", got, before+10_000_000+100)
	}
	// Dropping to zero freezes the accrued extrapolation in place.
	c.SetRatePPM(0)
	frozen := c.Correction()
	m.Advance(30_000_000)
	if got := c.Correction(); got != frozen {
		t.Fatalf("correction moved with rate 0: %d -> %d", frozen, got)
	}
}

func TestCorrectedRateNeverNegative(t *testing.T) {
	m := NewManual(0)
	c := NewCorrected(m)
	c.SetRatePPM(-500)
	if got := c.RatePPM(); got != 0 {
		t.Fatalf("negative rate accepted: %v", got)
	}
	m.Advance(1_000_000)
	if got := c.NowMicros(); got != 1_000_000 {
		t.Fatalf("clock moved under clamped rate: %d", got)
	}
}

func TestCorrectedRateAdjustCompose(t *testing.T) {
	m := NewManual(0)
	c := NewCorrected(m)
	c.SetRatePPM(100)
	m.Advance(5_000_000) // 500 µs accrued
	c.Adjust(2000)
	if got := c.Correction(); got != 2500 {
		t.Fatalf("Correction() = %d, want 2500", got)
	}
	if got := c.NowMicros(); got != 5_000_000+2500 {
		t.Fatalf("NowMicros() = %d, want %d", got, 5_000_000+2500)
	}
}

// TestCorrectedRateConcurrentReads hammers readers against rate switches
// and checks monotonicity — the invariant the single-store regime switch
// exists to protect (run under -race).
func TestCorrectedRateConcurrentReads(t *testing.T) {
	m := NewManual(0)
	c := NewCorrected(m)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			m.Advance(1000)
			c.SetRatePPM(float64(i % 7 * 25))
		}
	}()
	for w := 0; w < 4; w++ {
		go func() {
			var last int64
			for {
				select {
				case <-done:
					return
				default:
				}
				now := c.NowMicros()
				if now < last {
					panic("corrected clock ran backwards")
				}
				last = now
			}
		}()
	}
	<-done
}
